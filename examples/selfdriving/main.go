// Selfdriving: the paper's motivating example (§I, §II-B). A car runs
// multiple detection tasks whose importance depends on context — on the
// highway, neighboring-car detection dominates; downtown, pedestrian
// detection does. The example builds context-dependent environments, trains
// a CRL model over them, and shows the policy allocating different tasks as
// the car moves between contexts.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/mathx"
)

// The car's perception tasks.
var taskNames = []string{
	"neighboring-car", "traffic-sign", "pedestrian", "cyclist",
	"lane-marking", "traffic-light", "animal", "road-debris",
}

// importanceFor returns task importance as a function of the driving
// context z ∈ [0,1]: 0 = highway, 1 = downtown.
func importanceFor(z float64, rng interface{ NormFloat64() float64 }) []float64 {
	base := []struct{ highway, downtown float64 }{
		{0.95, 0.40}, // neighboring-car
		{0.50, 0.70}, // traffic-sign
		{0.05, 0.95}, // pedestrian
		{0.05, 0.80}, // cyclist
		{0.80, 0.30}, // lane-marking
		{0.20, 0.90}, // traffic-light
		{0.30, 0.05}, // animal
		{0.25, 0.15}, // road-debris
	}
	imp := make([]float64, len(base))
	for i, b := range base {
		v := b.highway*(1-z) + b.downtown*z + rng.NormFloat64()*0.05
		imp[i] = mathx.Clamp(v, 0, 1)
	}
	return imp
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The car's compute: 3 heterogeneous processors (CPU, GPU, NPU).
	problem := &dcta.Problem{TimeLimit: 3}
	for j := range taskNames {
		problem.Tasks = append(problem.Tasks, dcta.TaskSpec{
			ID: j, TimeCost: 1, Resource: 0.6, InputBits: 4e6,
		})
	}
	for i, cap := range []float64{1.0, 2.0, 1.2} {
		problem.Processors = append(problem.Processors, dcta.Processor{
			ID: i, Capacity: cap, SpeedFactor: 1 + float64(i),
		})
	}

	// Historical environments from past drives across contexts.
	rng := mathx.NewRand(7)
	store := dcta.NewEnvironmentStore()
	caps := []float64{1.0, 2.0, 1.2}
	for drive := 0; drive < 60; drive++ {
		z := rng.Float64()
		if err := store.Add(&dcta.Environment{
			Importance: importanceFor(z, rng),
			Capacity:   caps,
			Signature:  []float64{z},
		}); err != nil {
			return err
		}
	}
	cfg := dcta.DefaultCRLConfig()
	cfg.Episodes = 80
	crl, err := dcta.NewCRL(problem, store, cfg)
	if err != nil {
		return err
	}
	fmt.Println("training CRL over historical drives...")
	if _, err := crl.Train(); err != nil {
		return err
	}

	for _, scene := range []struct {
		name string
		z    float64
	}{
		{"highway", 0.05},
		{"suburban", 0.5},
		{"downtown school zone", 0.95},
	} {
		allocation, env, err := crl.Predict([]float64{scene.z})
		if err != nil {
			return err
		}
		fmt.Printf("\n── context: %s (z=%.2f)\n", scene.name, scene.z)
		for j, proc := range allocation {
			status := "dropped"
			if proc != dcta.Unassigned {
				status = fmt.Sprintf("→ processor %d", proc)
			}
			fmt.Printf("  %-16s importance %.2f  %s\n", taskNames[j], env.Importance[j], status)
		}
	}
	fmt.Println("\nthe same policy allocates different tasks as the context changes —")
	fmt.Println("that is the environment-dynamic knapsack of §III-C.")
	return nil
}
