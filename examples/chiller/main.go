// Chiller: the paper's AIOps scenario end to end — generate the
// green-building dataset, fit the 50 transfer-learning tasks, measure task
// importance (Definition 1), verify the long tail (Observation 1), and
// compare all four allocation strategies' processing time on the simulated
// Raspberry-Pi testbed.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== DCTA on the green-building AIOps scenario ==")
	fmt.Println("building the world (trace, MTL tasks, importance, CRL, SVM)...")
	cfg := dcta.DefaultScenarioConfig(1)
	cfg.HistoryContexts = 40
	cfg.EvalContexts = 8
	s, err := dcta.NewScenario(cfg)
	if err != nil {
		return err
	}

	// Observation 1: long-tail importance.
	fig2, err := dcta.Fig2LongTail(s)
	if err != nil {
		return err
	}
	fmt.Printf("\n%d tasks; top %.1f%% of tasks carry 80%% of importance (Gini %.2f)\n",
		len(fig2.SortedImportance), fig2.Stats.TopFractionFor80*100, fig2.Stats.Gini)

	// Observation 2: importance-aware allocation improves the decision.
	fig3, err := dcta.Fig3AccurateVsRandom(s)
	if err != nil {
		return err
	}
	fmt.Printf("accurate vs random allocation: H %.4f vs %.4f (+%.1f%%)\n",
		fig3.MeanAccurate, fig3.MeanRandom, fig3.ImprovementPct)

	// §V: processing time of the four strategies on one evaluation epoch.
	allocators, err := s.Allocators()
	if err != nil {
		return err
	}
	req, err := s.RequestFor(s.Eval[0])
	if err != nil {
		return err
	}
	fmt.Printf("\nepoch %s — PT per strategy:\n", s.Eval[0].Plant.Time.Format("2006-01-02"))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tassigned\tPT(s)\tmakespan(s)")
	for _, name := range dcta.MethodOrder {
		res, err := allocators[name].Allocate(req)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		sim, err := dcta.Simulate(s.Cluster, req.Problem, res, s.Config.CoverageTarget)
		if err != nil {
			return err
		}
		assigned := 0
		for _, p := range res.Allocation {
			if p != dcta.Unassigned {
				assigned++
			}
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%.2f\t%.2f\n",
			name, assigned, len(res.Allocation), sim.ProcessingTime, sim.Makespan)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nDCTA runs only the important tasks on the right nodes —")
	fmt.Println("that is the paper's 3.24x processing-time headline.")
	return nil
}
