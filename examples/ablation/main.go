// Ablation: probes the design choices DESIGN.md §5 calls out —
// (1) cooperative weights w1/w2 of Eq. (6), (2) kNN environment clustering
// vs stale environments, and (3) terminal-only vs dense reward in the
// allocation MDP.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("building scenario...")
	cfg := dcta.DefaultScenarioConfig(1)
	cfg.HistoryContexts = 40
	cfg.EvalContexts = 8
	s, err := dcta.NewScenario(cfg)
	if err != nil {
		return err
	}

	// Ablation 1: the cooperative weights of Eq. (6).
	fmt.Println("\n── ablation 1: cooperative weights w1 (general) / w2 (local)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "w1\tw2\tmean PT (s)")
	for _, w1 := range []float64{0, 0.25, 0.5, 0.75, 1} {
		d, err := dcta.NewDCTA(s.CRL, s.Local)
		if err != nil {
			return err
		}
		d.W1, d.W2 = w1, 1-w1
		pt, err := meanPT(s, d)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.2f\t%.2f\t%.2f\n", w1, 1-w1, pt)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("(the optimal Eq.-6 mix depends on how accurate each process is;")
	fmt.Println(" at the paper-scale scenario the balanced mix wins — see EXPERIMENTS.md)")

	// Ablation 2: environment clustering.
	fmt.Println("\n── ablation 2: kNN environment definition vs stale environment")
	mm, err := dcta.EnvMismatchPenalties(s)
	if err != nil {
		return err
	}
	fmt.Printf("captured importance: accurate %.4f | kNN-defined %.4f | stale %.4f\n",
		mm.AccurateObjective, mm.DefinedObjective, mm.StaleObjective)
	fmt.Printf("penalty without clustering: %.1f%%; with clustering: %.1f%%\n",
		mm.RLPenaltyPct, mm.CRLPenaltyPct)

	// Ablation 3: §VII offline (k-means) vs online (kNN) environment modes.
	fmt.Println("\n── ablation 3: offline vs online environment definition (§VII)")
	modes, err := dcta.OfflineVsOnlineModes(s, 6)
	if err != nil {
		return err
	}
	fmt.Printf("captured importance: accurate %.4f | online kNN %.4f | offline k-means %.4f\n",
		modes.AccurateObjective, modes.OnlineObjective, modes.OfflineObjective)
	fmt.Printf("penalties: online %.1f%%, offline %.1f%% (the paper adopts the online mode)\n",
		modes.OnlinePenaltyPct, modes.OfflinePenaltyPct)

	// Ablation 4: the source of DCTA's general term F1.
	fmt.Println("\n── ablation 4: F1 from defined importance vs Eq.-5 Q-scores")
	for _, fromQ := range []bool{false, true} {
		d, err := dcta.NewDCTA(s.CRL, s.Local)
		if err != nil {
			return err
		}
		d.GeneralFromQ = fromQ
		pt, err := meanPT(s, d)
		if err != nil {
			return err
		}
		src := "defined importance"
		if fromQ {
			src = "Q-scores (Eq. 5)"
		}
		fmt.Printf("F1 = %-22s mean PT %.2f s\n", src, pt)
	}

	// Ablation 5: reward shaping in the allocation MDP.
	fmt.Println("\n── ablation 5: terminal-only vs dense reward (§III-D)")
	for _, dense := range []bool{false, true} {
		cfg := dcta.DefaultCRLConfig()
		cfg.Episodes = 60
		cfg.DenseReward = dense
		crl, err := dcta.NewCRL(s.Template.Clone(), s.Store, cfg)
		if err != nil {
			return err
		}
		res, err := crl.Train()
		if err != nil {
			return err
		}
		label := "terminal-only"
		if dense {
			label = "dense"
		}
		fmt.Printf("%-13s reward: mean episode return %.3f over %d episodes\n",
			label, res.MeanReward, res.Episodes)
	}
	return nil
}

func meanPT(s *dcta.Scenario, d *dcta.DCTAAllocator) (float64, error) {
	var sum float64
	for _, ep := range s.Eval {
		req, err := s.RequestFor(ep)
		if err != nil {
			return 0, err
		}
		res, err := d.Allocate(req)
		if err != nil {
			return 0, err
		}
		sim, err := dcta.Simulate(s.Cluster, req.Problem, res, s.Config.CoverageTarget)
		if err != nil {
			return 0, err
		}
		sum += sim.ProcessingTime
	}
	return sum / float64(len(s.Eval)), nil
}
