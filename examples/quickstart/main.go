// Quickstart: build a TATIM problem by hand, solve it with the knapsack
// reference and the cooperative pipeline, and simulate the processing time
// on the Raspberry-Pi testbed — the whole public API in ~100 lines.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/mathx"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A cluster: 4 Raspberry Pis + laptop controller (Fig. 8 topology).
	cluster, err := dcta.NewCluster(4)
	if err != nil {
		return err
	}

	// 2. A workload: 12 tasks with long-tail importance — a few matter a
	// lot, most barely at all (Observation 1).
	importance := []float64{0.9, 0.75, 0.6, 0.05, 0.04, 0.04, 0.03, 0.03, 0.02, 0.02, 0.01, 0.01}
	inputBits := make([]float64, len(importance))
	for i := range inputBits {
		inputBits[i] = 6e6 // 6 Mbit per task
	}
	problem, err := cluster.ProblemFor(importance, inputBits, 30 /* T seconds */)
	if err != nil {
		return err
	}

	// 3. Solve TATIM directly (Theorem 1: it is a multiple knapsack).
	exact, err := problem.SolveExact()
	if err != nil {
		return err
	}
	fmt.Printf("optimal captured importance: %.2f of %.2f\n",
		problem.Objective(exact), problem.TotalImportance())

	// 4. The data-driven path: a store of historical environments, a CRL
	// model, and a prediction for today's sensing signature.
	store := dcta.NewEnvironmentStore()
	rng := mathx.NewRand(1)
	caps := make([]float64, len(problem.Processors))
	for i, p := range problem.Processors {
		caps[i] = p.Capacity
	}
	for day := 0; day < 20; day++ {
		z := rng.Float64()
		hist := make([]float64, len(importance))
		for j := range hist {
			// Historical importance resembles today's, with daily noise.
			hist[j] = mathx.Clamp(importance[j]+rng.NormFloat64()*0.05, 0, 1)
		}
		if err := store.Add(&dcta.Environment{
			Importance: hist, Capacity: caps, Signature: []float64{z},
		}); err != nil {
			return err
		}
	}
	cfg := dcta.DefaultCRLConfig()
	cfg.Episodes = 40
	crl, err := dcta.NewCRL(problem, store, cfg)
	if err != nil {
		return err
	}
	if _, err := crl.Train(); err != nil {
		return err
	}
	allocation, env, err := crl.Predict([]float64{0.4})
	if err != nil {
		return err
	}
	fmt.Printf("CRL allocation captures %.2f (believed %.2f) importance\n",
		problem.Objective(allocation), sum(env.Importance, allocation))

	// 5. Simulate the processing time of the plan on the edge testbed.
	crlAlloc, err := dcta.NewCRLAllocator(crl)
	if err != nil {
		return err
	}
	res, err := crlAlloc.Allocate(dcta.Request{Problem: problem, Signature: []float64{0.4}})
	if err != nil {
		return err
	}
	sim, err := dcta.Simulate(cluster, problem, res, 0.8)
	if err != nil {
		return err
	}
	fmt.Printf("processing time on the edge: %.2f s (makespan %.2f s)\n",
		sim.ProcessingTime, sim.Makespan)
	return nil
}

func sum(importance []float64, a dcta.Allocation) float64 {
	var v float64
	for j, proc := range a {
		if proc != dcta.Unassigned && j < len(importance) {
			v += importance[j]
		}
	}
	return v
}
