// Package dcta is the public facade of this repository: a Go implementation
// of "Data-driven Task Allocation for Multi-task Transfer Learning on the
// Edge" (Chen, Zheng, Hu, Wang, Liu — IEEE ICDCS 2019).
//
// The paper allocates multi-task transfer-learning (MTL) work across
// heterogeneous edge devices by task importance: the measured drop in final
// decision performance when a task is not conducted (Definition 1). The
// allocation problem (TATIM, Definition 4) is a 0-1 multiply-constrained
// multiple knapsack; because task importance varies with the environment,
// the paper solves it with a Data-driven Cooperative Task Allocation (DCTA)
// pipeline: a Clustered Reinforcement Learning general process (kNN
// environment definition + Deep Q-Network, Algorithm 1) corrected by an SVM
// local process over domain features (Table I), combined per Eq. (6).
//
// Layout:
//
//   - the TATIM problem, allocation MDP, environment store and CRL live in
//     internal/core — re-exported here;
//   - the four §V allocation strategies (RM, DML, CRL, DCTA) live in
//     internal/alloc;
//   - the green-building chiller substrate replacing the paper's
//     proprietary dataset lives in internal/building, with the MTL engine
//     and task importance in internal/mtl;
//   - the Raspberry-Pi testbed simulator lives in internal/edgesim;
//   - one harness per paper figure/table lives in internal/experiments.
//
// Quickstart (see examples/quickstart):
//
//	scn, err := dcta.NewScenario(dcta.DefaultScenarioConfig(1))
//	...
//	series, err := dcta.Fig9ProcessorSweep(scn, nil)
//
// Everything is stdlib-only and deterministic per seed.
package dcta

import (
	"repro/internal/alloc"
	"repro/internal/building"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/experiments"
	"repro/internal/mtl"
)

// Core TATIM types (Definitions 2-4 and §III-D).
type (
	// Problem is a TATIM instance: tasks, processors, and the time limit T.
	Problem = core.Problem
	// TaskSpec is one allocatable task with importance I_j, time t_j and
	// resource v_j.
	TaskSpec = core.TaskSpec
	// Processor is one edge processor with capacity V_p.
	Processor = core.Processor
	// Allocation maps each task to a processor index or Unassigned.
	Allocation = core.Allocation
	// Environment is the RL environment of §III-D (importance × capacity).
	Environment = core.Environment
	// EnvironmentStore is the historical environment set ℰ of §III-C.
	EnvironmentStore = core.EnvironmentStore
	// CRL is the Clustered Reinforcement Learning model of Algorithm 1.
	CRL = core.CRL
	// CRLConfig tunes CRL training and environment definition.
	CRLConfig = core.CRLConfig
	// AllocEnv is the allocation episode MDP.
	AllocEnv = core.AllocEnv
)

// Unassigned marks a task dropped from the allocation.
const Unassigned = core.Unassigned

// Allocation strategies of §V.
type (
	// Allocator is the shared strategy interface.
	Allocator = alloc.Allocator
	// Request is one allocation query.
	Request = alloc.Request
	// Result is an allocator's plan plus decision-cost estimate.
	Result = alloc.Result
	// RandomMapping is the RM baseline.
	RandomMapping = alloc.RandomMapping
	// DML is the distributed-machine-learning baseline.
	DML = alloc.DML
	// CRLAllocator wraps CRL as an §V strategy.
	CRLAllocator = alloc.CRLAllocator
	// DCTAAllocator is the paper's cooperative allocator (Eq. 6).
	DCTAAllocator = alloc.DCTA
	// LocalModel is the SVM local process F₂.
	LocalModel = alloc.LocalModel
	// LocalSample is one local-process training example.
	LocalSample = alloc.LocalSample
	// OracleGreedy allocates with known true importance (Fig. 3's
	// "accurate" allocator).
	OracleGreedy = alloc.OracleGreedy
)

// Building substrate and MTL engine.
type (
	// Trace is a generated multi-year chiller-plant operation dataset.
	Trace = building.Trace
	// TraceConfig parameterizes dataset generation.
	TraceConfig = building.Config
	// MTLEngine owns the 50 transfer-learning tasks and their models.
	MTLEngine = mtl.Engine
	// MTLEngineConfig tunes the engine.
	MTLEngineConfig = mtl.EngineConfig
	// Task is one (chiller, load band) transfer-learning task.
	Task = mtl.Task
	// PlantContext is one decision epoch across buildings.
	PlantContext = mtl.PlantContext
	// LongTailStats summarizes an importance distribution (Fig. 2).
	LongTailStats = mtl.LongTailStats
)

// Edge testbed simulator.
type (
	// Cluster is the star-topology Raspberry-Pi testbed of Fig. 8.
	Cluster = edgesim.Cluster
	// SimResult carries the PT metric for one simulated allocation.
	SimResult = edgesim.SimResult
)

// Experiment harnesses (one per paper figure/table).
type (
	// Scenario is the end-to-end experimental world.
	Scenario = experiments.Scenario
	// ScenarioConfig sizes it.
	ScenarioConfig = experiments.ScenarioConfig
	// PTSeries is a processing-time figure (Figs. 9-11).
	PTSeries = experiments.PTSeries
	// Fig2Result is the long-tail analysis of Fig. 2.
	Fig2Result = experiments.Fig2Result
	// Fig3Result compares accurate vs random allocation (Fig. 3).
	Fig3Result = experiments.Fig3Result
	// Fig45Row is one machine × operation cell of Figs. 4-5.
	Fig45Row = experiments.Fig45Row
	// EnvMismatchResult reproduces the §III-C / §IV-A inline numbers.
	EnvMismatchResult = experiments.EnvMismatchResult
	// TableIRow summarizes one Table-I feature.
	TableIRow = experiments.TableIRow
	// ModelComparisonRow is one §IV-B local-model candidate.
	ModelComparisonRow = experiments.ModelComparisonRow
	// ModeComparisonResult compares §VII offline vs online modes.
	ModeComparisonResult = experiments.ModeComparisonResult
	// RobustnessPoint is one fault-rate point of the robustness extension.
	RobustnessPoint = experiments.RobustnessPoint
	// MTLModeRow evaluates one §V-B MTL mode/learner combination.
	MTLModeRow = experiments.MTLModeRow
	// ScalingPoint times the TATIM solvers at one problem size.
	ScalingPoint = experiments.ScalingPoint
	// MTLMode selects the multi-task learning regime.
	MTLMode = mtl.Mode
	// MTLLearner selects the per-task base model.
	MTLLearner = mtl.Learner
	// NodeFault is a crash-stop worker failure for the fault simulator.
	NodeFault = edgesim.NodeFault
	// OfflineStore is the §VII offline (k-means) environment definition.
	OfflineStore = core.OfflineStore
)

// Construction helpers.
var (
	// GenerateTrace builds the synthetic building dataset.
	GenerateTrace = building.Generate
	// DefaultTraceConfig mirrors the paper's dataset shape.
	DefaultTraceConfig = building.DefaultConfig
	// NewMTLEngine builds the task engine over a trace.
	NewMTLEngine = mtl.NewEngine
	// DefaultMTLEngineConfig is the paper-scale engine configuration.
	DefaultMTLEngineConfig = mtl.DefaultEngineConfig
	// SampleContexts draws decision epochs from a trace.
	SampleContexts = mtl.SampleContexts
	// AnalyzeLongTail computes Fig.2-style distribution statistics.
	AnalyzeLongTail = mtl.AnalyzeLongTail
	// NewEnvironmentStore creates an empty historical store ℰ.
	NewEnvironmentStore = core.NewEnvironmentStore
	// NewCRL builds a Clustered Reinforcement Learning model.
	NewCRL = core.NewCRL
	// DefaultCRLConfig is the experiments' CRL configuration.
	DefaultCRLConfig = core.DefaultCRLConfig
	// NewAllocEnv builds the §III-D allocation MDP for a problem.
	NewAllocEnv = core.NewAllocEnv
	// NewRandomMapping builds the RM baseline.
	NewRandomMapping = alloc.NewRandomMapping
	// NewDML builds the DML baseline.
	NewDML = alloc.NewDML
	// NewCRLAllocator wraps a CRL model as an allocator.
	NewCRLAllocator = alloc.NewCRLAllocator
	// NewDCTA builds the cooperative allocator.
	NewDCTA = alloc.NewDCTA
	// NewLocalModel builds the SVM local process.
	NewLocalModel = alloc.NewLocalModel
	// NewOracleGreedy builds the importance oracle.
	NewOracleGreedy = alloc.NewOracleGreedy
	// SamplesFromDecision labels local-process training data.
	SamplesFromDecision = alloc.SamplesFromDecision
	// NewCluster builds the Fig. 8 testbed with n Raspberry-Pi workers.
	NewCluster = edgesim.NewCluster
	// Simulate measures the PT of an allocation on a cluster.
	Simulate = edgesim.Simulate
	// NewScenario builds the full experimental world.
	NewScenario = experiments.NewScenario
	// DefaultScenarioConfig is the paper-scale scenario configuration.
	DefaultScenarioConfig = experiments.DefaultScenarioConfig
	// Fig2LongTail regenerates Fig. 2.
	Fig2LongTail = experiments.Fig2LongTail
	// Fig3AccurateVsRandom regenerates Fig. 3.
	Fig3AccurateVsRandom = experiments.Fig3AccurateVsRandom
	// Fig45ImportanceByOperation regenerates Figs. 4-5.
	Fig45ImportanceByOperation = experiments.Fig45ImportanceByOperation
	// Fig9ProcessorSweep regenerates Fig. 9.
	Fig9ProcessorSweep = experiments.Fig9ProcessorSweep
	// Fig10DataSizeSweep regenerates Fig. 10.
	Fig10DataSizeSweep = experiments.Fig10DataSizeSweep
	// Fig11BandwidthSweep regenerates Fig. 11.
	Fig11BandwidthSweep = experiments.Fig11BandwidthSweep
	// EnvMismatchPenalties regenerates the §III-C / §IV-A inline numbers.
	EnvMismatchPenalties = experiments.EnvMismatchPenalties
	// TableIFeatures regenerates Table I.
	TableIFeatures = experiments.TableIFeatures
	// LocalModelComparison regenerates the §IV-B model selection.
	LocalModelComparison = experiments.LocalModelComparison
	// OfflineVsOnlineModes reproduces the §VII mode discussion.
	OfflineVsOnlineModes = experiments.OfflineVsOnlineModes
	// RobustnessSweep measures PT under crash-stop worker failures.
	RobustnessSweep = experiments.RobustnessSweep
	// MTLModeComparison evaluates the §V-B MTL modes and learners.
	MTLModeComparison = experiments.MTLModeComparison
	// SolverScaling times exact vs greedy TATIM solving across sizes.
	SolverScaling = experiments.SolverScaling
	// SampleFaults draws crash-stop faults for SimulateWithFaults.
	SampleFaults = edgesim.SampleFaults
	// SimulateWithFaults measures PT under worker failures.
	SimulateWithFaults = edgesim.SimulateWithFaults
	// LoadCRL restores a persisted CRL policy.
	LoadCRL = core.LoadCRL
	// NewOfflineStore pre-clusters a store per the §VII offline mode.
	NewOfflineStore = core.NewOfflineStore
)

// MethodOrder is the canonical RM/DML/CRL/DCTA table ordering.
var MethodOrder = experiments.MethodOrder
