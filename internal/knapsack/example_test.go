package knapsack_test

import (
	"fmt"

	"repro/internal/knapsack"
)

// ExampleSolveExact packs three items into one knapsack: the optimal answer
// skips the "greedy-looking" big item in favor of two smaller ones.
func ExampleSolveExact() {
	in := &knapsack.Instance{
		Items: []knapsack.Item{
			{Value: 6, Weight: 6},
			{Value: 5, Weight: 5},
			{Value: 5, Weight: 5},
		},
		Sacks: []knapsack.Sack{{WeightCap: 10}},
	}
	sol, err := knapsack.SolveExact(in)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("value=%.0f assignment=%v\n", sol.Value, sol.Assignment)
	// Output: value=10 assignment=[-1 0 0]
}

// ExampleSolveGreedy shows the fast heuristic on the same instance: density
// order ties, so it takes the big item first and ends one point short of
// optimal — the classic greedy gap the exact solver closes.
func ExampleSolveGreedy() {
	in := &knapsack.Instance{
		Items: []knapsack.Item{
			{Value: 6, Weight: 6},
			{Value: 5, Weight: 5},
			{Value: 5, Weight: 5},
		},
		Sacks: []knapsack.Sack{{WeightCap: 10}},
	}
	sol, err := knapsack.SolveGreedy(in)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("value=%.0f\n", sol.Value)
	// Output: value=6
}
