// Package knapsack implements the 0-1 multiply-constrained multiple
// knapsack problem (MCMK) that Theorem 1 reduces TATIM to: items with a
// value (task importance), a weight (execution time) and a volume (resource
// demand) are packed into knapsacks (processors) with per-knapsack weight
// and volume capacities. Items may be left unpacked.
//
// Three solvers are provided:
//   - SolveExact: branch-and-bound, the reference optimum for small N;
//   - SolveGreedy: density-greedy first-fit, the scalable heuristic the
//     synthetic (non-data-driven) allocators build on;
//   - SolveDP: textbook single-knapsack dynamic program, used by tests to
//     cross-validate the other two on M=1 instances.
package knapsack

import (
	"errors"
	"fmt"
	"sort"
)

// Common errors.
var (
	// ErrBadInstance is returned for malformed problem instances.
	ErrBadInstance = errors.New("knapsack: invalid instance")
	// ErrTooLarge is returned when SolveExact would explode.
	ErrTooLarge = errors.New("knapsack: instance too large for exact solver")
)

// Item is one packable item (a task in TATIM).
type Item struct {
	// Value is the packing profit (task importance).
	Value float64
	// Weight consumes the knapsack's weight capacity (execution time).
	Weight float64
	// Volume consumes the knapsack's volume capacity (resource demand).
	Volume float64
}

// Sack is one knapsack (a processor in TATIM).
type Sack struct {
	// WeightCap bounds the summed Weight of packed items (time limit T).
	WeightCap float64
	// VolumeCap bounds the summed Volume of packed items (resource V_p).
	VolumeCap float64
}

// Instance is a full MCMK problem.
type Instance struct {
	Items []Item
	Sacks []Sack
}

// Unassigned marks an item left out of every sack.
const Unassigned = -1

// Solution is an assignment of items to sacks.
type Solution struct {
	// Assignment[i] is the sack index of item i, or Unassigned.
	Assignment []int
	// Value is the summed value of assigned items.
	Value float64
}

// Validate checks instance well-formedness.
func (in *Instance) Validate() error {
	if len(in.Items) == 0 {
		return fmt.Errorf("no items: %w", ErrBadInstance)
	}
	if len(in.Sacks) == 0 {
		return fmt.Errorf("no sacks: %w", ErrBadInstance)
	}
	for i, it := range in.Items {
		if it.Weight < 0 || it.Volume < 0 {
			return fmt.Errorf("item %d has negative size: %w", i, ErrBadInstance)
		}
		if it.Value < 0 {
			return fmt.Errorf("item %d has negative value: %w", i, ErrBadInstance)
		}
	}
	for s, sk := range in.Sacks {
		if sk.WeightCap < 0 || sk.VolumeCap < 0 {
			return fmt.Errorf("sack %d has negative capacity: %w", s, ErrBadInstance)
		}
	}
	return nil
}

// CheckFeasible verifies that an assignment respects every capacity.
func (in *Instance) CheckFeasible(assignment []int) error {
	if len(assignment) != len(in.Items) {
		return fmt.Errorf("assignment length %d vs %d items: %w",
			len(assignment), len(in.Items), ErrBadInstance)
	}
	usedW := make([]float64, len(in.Sacks))
	usedV := make([]float64, len(in.Sacks))
	for i, s := range assignment {
		if s == Unassigned {
			continue
		}
		if s < 0 || s >= len(in.Sacks) {
			return fmt.Errorf("item %d assigned to sack %d: %w", i, s, ErrBadInstance)
		}
		usedW[s] += in.Items[i].Weight
		usedV[s] += in.Items[i].Volume
	}
	const eps = 1e-9
	for s := range in.Sacks {
		if usedW[s] > in.Sacks[s].WeightCap+eps {
			return fmt.Errorf("sack %d weight %.4f > cap %.4f: %w",
				s, usedW[s], in.Sacks[s].WeightCap, ErrBadInstance)
		}
		if usedV[s] > in.Sacks[s].VolumeCap+eps {
			return fmt.Errorf("sack %d volume %.4f > cap %.4f: %w",
				s, usedV[s], in.Sacks[s].VolumeCap, ErrBadInstance)
		}
	}
	return nil
}

// ValueOf sums the value of assigned items.
func (in *Instance) ValueOf(assignment []int) float64 {
	var v float64
	for i, s := range assignment {
		if s != Unassigned {
			v += in.Items[i].Value
		}
	}
	return v
}

// WithValues returns a copy of the instance whose item values are replaced
// by scores, keeping every size and capacity. Callers pack by an external
// per-item score — e.g. a locally-corrected importance estimate — while the
// physical constraints stay those of the original instance. Scores must be
// non-negative and match the item count.
func (in *Instance) WithValues(scores []float64) (*Instance, error) {
	if len(scores) != len(in.Items) {
		return nil, fmt.Errorf("%d scores for %d items: %w", len(scores), len(in.Items), ErrBadInstance)
	}
	out := &Instance{
		Items: append([]Item(nil), in.Items...),
		Sacks: append([]Sack(nil), in.Sacks...),
	}
	for i, s := range scores {
		if s < 0 || s != s { // negative or NaN
			return nil, fmt.Errorf("score %d is %v: %w", i, s, ErrBadInstance)
		}
		out.Items[i].Value = s
	}
	return out, nil
}

// density orders items by value per unit of normalized size, the classic
// greedy criterion; zero-size valuable items sort first.
func (in *Instance) density(i int) float64 {
	it := in.Items[i]
	var maxW, maxV float64
	for _, s := range in.Sacks {
		if s.WeightCap > maxW {
			maxW = s.WeightCap
		}
		if s.VolumeCap > maxV {
			maxV = s.VolumeCap
		}
	}
	size := 0.0
	if maxW > 0 {
		size += it.Weight / maxW
	}
	if maxV > 0 {
		size += it.Volume / maxV
	}
	if size <= 0 {
		size = 1e-12
	}
	return it.Value / size
}

// SolveGreedy packs items in decreasing density into the first sack that
// fits (sacks tried in order of remaining weight capacity, largest first).
// It runs in O(N log N + N·M) and is the building block of the synthetic
// baselines.
func SolveGreedy(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order := make([]int, len(in.Items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := in.density(order[a]), in.density(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	remW := make([]float64, len(in.Sacks))
	remV := make([]float64, len(in.Sacks))
	for s, sk := range in.Sacks {
		remW[s] = sk.WeightCap
		remV[s] = sk.VolumeCap
	}
	assignment := make([]int, len(in.Items))
	for i := range assignment {
		assignment[i] = Unassigned
	}
	sackOrder := make([]int, len(in.Sacks))
	for i := range sackOrder {
		sackOrder[i] = i
	}
	for _, i := range order {
		it := in.Items[i]
		// Prefer the sack with the most remaining weight headroom.
		sort.Slice(sackOrder, func(a, b int) bool {
			if remW[sackOrder[a]] != remW[sackOrder[b]] {
				return remW[sackOrder[a]] > remW[sackOrder[b]]
			}
			return sackOrder[a] < sackOrder[b]
		})
		for _, s := range sackOrder {
			if it.Weight <= remW[s]+1e-12 && it.Volume <= remV[s]+1e-12 {
				assignment[i] = s
				remW[s] -= it.Weight
				remV[s] -= it.Volume
				break
			}
		}
	}
	return &Solution{Assignment: assignment, Value: in.ValueOf(assignment)}, nil
}

// SolveExact finds the optimal assignment by depth-first branch-and-bound.
// The bound is the sum of remaining item values, tightened by density order.
// Instances with more than MaxExactItems items are rejected.
func SolveExact(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(in.Items) > MaxExactItems {
		return nil, fmt.Errorf("%d items: %w", len(in.Items), ErrTooLarge)
	}
	order := make([]int, len(in.Items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return in.density(order[a]) > in.density(order[b]) })
	// suffixValue[k] = total value of items order[k:].
	suffixValue := make([]float64, len(order)+1)
	for k := len(order) - 1; k >= 0; k-- {
		suffixValue[k] = suffixValue[k+1] + in.Items[order[k]].Value
	}
	state := &bbState{
		in:      in,
		order:   order,
		suffix:  suffixValue,
		remW:    make([]float64, len(in.Sacks)),
		remV:    make([]float64, len(in.Sacks)),
		current: make([]int, len(in.Items)),
		best:    make([]int, len(in.Items)),
	}
	for s, sk := range in.Sacks {
		state.remW[s] = sk.WeightCap
		state.remV[s] = sk.VolumeCap
	}
	for i := range state.current {
		state.current[i] = Unassigned
		state.best[i] = Unassigned
	}
	state.search(0, 0)
	return &Solution{Assignment: state.best, Value: state.bestValue}, nil
}

// MaxExactItems bounds SolveExact's input size.
const MaxExactItems = 24

type bbState struct {
	in        *Instance
	order     []int
	suffix    []float64
	remW      []float64
	remV      []float64
	current   []int
	best      []int
	bestValue float64
}

func (b *bbState) search(k int, value float64) {
	if value+b.suffix[k] <= b.bestValue {
		return // even packing everything left cannot beat the incumbent
	}
	if k == len(b.order) {
		if value > b.bestValue {
			b.bestValue = value
			copy(b.best, b.current)
		}
		return
	}
	i := b.order[k]
	it := b.in.Items[i]
	// Branch: place into each sack that fits. De-duplicate sacks with
	// identical remaining capacities to curb symmetric branching.
	type cap2 struct{ w, v float64 }
	seen := make(map[cap2]bool, len(b.remW))
	for s := range b.remW {
		if it.Weight > b.remW[s]+1e-12 || it.Volume > b.remV[s]+1e-12 {
			continue
		}
		c := cap2{b.remW[s], b.remV[s]}
		if seen[c] {
			continue
		}
		seen[c] = true
		b.remW[s] -= it.Weight
		b.remV[s] -= it.Volume
		b.current[i] = s
		b.search(k+1, value+it.Value)
		b.current[i] = Unassigned
		b.remW[s] += it.Weight
		b.remV[s] += it.Volume
	}
	// Branch: skip the item.
	b.search(k+1, value)
}

// SolveDP solves the single-sack, weight-only special case exactly via the
// classic 0-1 knapsack dynamic program over an integer weight grid.
// Weights and the capacity are scaled by `scale` and truncated to integers;
// volumes must be zero and exactly one sack is required.
func SolveDP(in *Instance, scale float64) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(in.Sacks) != 1 {
		return nil, fmt.Errorf("dp needs exactly 1 sack, got %d: %w", len(in.Sacks), ErrBadInstance)
	}
	for i, it := range in.Items {
		if it.Volume != 0 {
			return nil, fmt.Errorf("dp item %d has volume: %w", i, ErrBadInstance)
		}
	}
	if scale <= 0 {
		scale = 1
	}
	capW := int(in.Sacks[0].WeightCap * scale)
	w := make([]int, len(in.Items))
	for i, it := range in.Items {
		w[i] = int(it.Weight * scale)
	}
	// dp[c] = best value using capacity c; keep[i][c] records choices.
	dp := make([]float64, capW+1)
	keep := make([][]bool, len(in.Items))
	for i := range in.Items {
		keep[i] = make([]bool, capW+1)
		for c := capW; c >= w[i]; c-- {
			if cand := dp[c-w[i]] + in.Items[i].Value; cand > dp[c] {
				dp[c] = cand
				keep[i][c] = true
			}
		}
	}
	assignment := make([]int, len(in.Items))
	for i := range assignment {
		assignment[i] = Unassigned
	}
	c := capW
	for i := len(in.Items) - 1; i >= 0; i-- {
		if keep[i][c] {
			assignment[i] = 0
			c -= w[i]
		}
	}
	return &Solution{Assignment: assignment, Value: in.ValueOf(assignment)}, nil
}
