package knapsack

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func singleSack(capW, capV float64, items ...Item) *Instance {
	return &Instance{Items: items, Sacks: []Sack{{WeightCap: capW, VolumeCap: capV}}}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		in   *Instance
	}{
		{"no items", &Instance{Sacks: []Sack{{}}}},
		{"no sacks", &Instance{Items: []Item{{Value: 1}}}},
		{"negative weight", singleSack(1, 1, Item{Weight: -1})},
		{"negative value", singleSack(1, 1, Item{Value: -1})},
		{"negative cap", &Instance{Items: []Item{{}}, Sacks: []Sack{{WeightCap: -1}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.in.Validate(); !errors.Is(err, ErrBadInstance) {
				t.Errorf("Validate = %v, want ErrBadInstance", err)
			}
		})
	}
	ok := singleSack(1, 1, Item{Value: 1, Weight: 0.5})
	if err := ok.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestCheckFeasible(t *testing.T) {
	in := singleSack(10, 5, Item{Weight: 6, Volume: 3}, Item{Weight: 6, Volume: 3})
	if err := in.CheckFeasible([]int{0, Unassigned}); err != nil {
		t.Errorf("feasible rejected: %v", err)
	}
	if err := in.CheckFeasible([]int{0, 0}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("overweight accepted: %v", err)
	}
	if err := in.CheckFeasible([]int{5, Unassigned}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("bad sack index accepted: %v", err)
	}
	if err := in.CheckFeasible([]int{0}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("short assignment accepted: %v", err)
	}
	// Volume overflow.
	if err := in.CheckFeasible([]int{0, Unassigned}); err != nil {
		t.Fatal(err)
	}
	vol := singleSack(100, 2, Item{Volume: 3})
	if err := vol.CheckFeasible([]int{0}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("over-volume accepted: %v", err)
	}
}

func TestSolveExactSimple(t *testing.T) {
	// Classic: capacity 10; items (v=6,w=6), (v=5,w=5), (v=5,w=5).
	// Optimal picks the two 5s (value 10), not the greedy-looking 6.
	in := singleSack(10, 0,
		Item{Value: 6, Weight: 6},
		Item{Value: 5, Weight: 5},
		Item{Value: 5, Weight: 5},
	)
	sol, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 10 {
		t.Fatalf("exact value = %v, want 10", sol.Value)
	}
	if err := in.CheckFeasible(sol.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestSolveExactMultipleSacks(t *testing.T) {
	in := &Instance{
		Items: []Item{
			{Value: 10, Weight: 4}, {Value: 9, Weight: 4},
			{Value: 8, Weight: 4}, {Value: 2, Weight: 4},
		},
		Sacks: []Sack{{WeightCap: 8, VolumeCap: 0}, {WeightCap: 4, VolumeCap: 0}},
	}
	sol, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 27 { // 10+9 in sack 0, 8 in sack 1
		t.Fatalf("exact value = %v, want 27", sol.Value)
	}
	if err := in.CheckFeasible(sol.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestSolveExactRespectsVolume(t *testing.T) {
	in := singleSack(100, 1,
		Item{Value: 5, Weight: 1, Volume: 1},
		Item{Value: 4, Weight: 1, Volume: 1},
	)
	sol, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 5 {
		t.Fatalf("volume-bound value = %v, want 5", sol.Value)
	}
}

func TestSolveExactTooLarge(t *testing.T) {
	items := make([]Item, MaxExactItems+1)
	for i := range items {
		items[i] = Item{Value: 1, Weight: 1}
	}
	in := &Instance{Items: items, Sacks: []Sack{{WeightCap: 5}}}
	if _, err := SolveExact(in); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize err = %v", err)
	}
}

func TestSolveGreedyFeasibleAndReasonable(t *testing.T) {
	rng := mathx.NewRand(1)
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Value:  rng.Float64(),
				Weight: rng.Float64() * 4,
				Volume: rng.Float64() * 4,
			}
		}
		in := &Instance{
			Items: items,
			Sacks: []Sack{
				{WeightCap: 6, VolumeCap: 6},
				{WeightCap: 3, VolumeCap: 3},
			},
		}
		greedy, err := SolveGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.CheckFeasible(greedy.Assignment); err != nil {
			t.Fatalf("trial %d: greedy infeasible: %v", trial, err)
		}
		exact, err := SolveExact(in)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Value > exact.Value+1e-9 {
			t.Fatalf("trial %d: greedy %v beats exact %v", trial, greedy.Value, exact.Value)
		}
		// Density greedy on small instances stays within 50% of optimal.
		if exact.Value > 0 && greedy.Value < 0.5*exact.Value {
			t.Fatalf("trial %d: greedy %v under half of exact %v", trial, greedy.Value, exact.Value)
		}
	}
}

func TestSolveDPMatchesExact(t *testing.T) {
	rng := mathx.NewRand(2)
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Value:  float64(1 + rng.Intn(20)),
				Weight: float64(1 + rng.Intn(10)),
			}
		}
		in := &Instance{Items: items, Sacks: []Sack{{WeightCap: float64(5 + rng.Intn(25))}}}
		dp, err := SolveDP(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := SolveExact(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Value-exact.Value) > 1e-9 {
			t.Fatalf("trial %d: dp %v vs exact %v", trial, dp.Value, exact.Value)
		}
		if err := in.CheckFeasible(dp.Assignment); err != nil {
			t.Fatalf("trial %d: dp infeasible: %v", trial, err)
		}
	}
}

func TestSolveDPValidation(t *testing.T) {
	two := &Instance{
		Items: []Item{{Value: 1, Weight: 1}},
		Sacks: []Sack{{WeightCap: 1}, {WeightCap: 1}},
	}
	if _, err := SolveDP(two, 1); !errors.Is(err, ErrBadInstance) {
		t.Fatalf("two-sack dp err = %v", err)
	}
	vol := singleSack(5, 5, Item{Value: 1, Weight: 1, Volume: 1})
	if _, err := SolveDP(vol, 1); !errors.Is(err, ErrBadInstance) {
		t.Fatalf("volume dp err = %v", err)
	}
	ok := singleSack(5, 0, Item{Value: 1, Weight: 1})
	if sol, err := SolveDP(ok, 0); err != nil || sol.Value != 1 {
		t.Fatalf("scale<=0 should default: %v %v", sol, err)
	}
}

func TestValueOf(t *testing.T) {
	in := singleSack(10, 10, Item{Value: 3}, Item{Value: 4})
	if v := in.ValueOf([]int{0, Unassigned}); v != 3 {
		t.Fatalf("ValueOf = %v", v)
	}
	if v := in.ValueOf([]int{0, 0}); v != 7 {
		t.Fatalf("ValueOf = %v", v)
	}
}

// Property: on random small instances, exact ≥ greedy and both feasible.
func TestExactDominatesGreedyProperty(t *testing.T) {
	rng := mathx.NewRand(3)
	f := func(seed int64) bool {
		r := mathx.NewRand(seed%1000 + 1)
		n := 2 + r.Intn(8)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Value:  r.Float64() * 10,
				Weight: r.Float64() * 5,
				Volume: r.Float64() * 5,
			}
		}
		m := 1 + r.Intn(3)
		sacks := make([]Sack, m)
		for i := range sacks {
			sacks[i] = Sack{WeightCap: 2 + r.Float64()*6, VolumeCap: 2 + r.Float64()*6}
		}
		in := &Instance{Items: items, Sacks: sacks}
		g, err := SolveGreedy(in)
		if err != nil {
			return false
		}
		e, err := SolveExact(in)
		if err != nil {
			return false
		}
		if in.CheckFeasible(g.Assignment) != nil || in.CheckFeasible(e.Assignment) != nil {
			return false
		}
		return e.Value >= g.Value-1e-9
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestWithValues(t *testing.T) {
	in := singleSack(2, 2,
		Item{Value: 0.1, Weight: 1, Volume: 1},
		Item{Value: 0.9, Weight: 1, Volume: 1},
	)
	out, err := in.WithValues([]float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Values replaced, sizes preserved, original untouched.
	if out.Items[0].Value != 5 || out.Items[1].Value != 1 {
		t.Fatalf("values = %v/%v, want 5/1", out.Items[0].Value, out.Items[1].Value)
	}
	if out.Items[0].Weight != 1 || out.Items[0].Volume != 1 {
		t.Fatalf("sizes mutated: %+v", out.Items[0])
	}
	if in.Items[0].Value != 0.1 {
		t.Fatalf("original instance mutated: %v", in.Items[0].Value)
	}
	// Rescored values drive the greedy solution.
	sol, err := SolveGreedy(out)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assignment[0] == Unassigned {
		t.Fatalf("highest rescored item dropped: %v", sol.Assignment)
	}

	if _, err := in.WithValues([]float64{1}); !errors.Is(err, ErrBadInstance) {
		t.Fatalf("length mismatch err = %v", err)
	}
	if _, err := in.WithValues([]float64{1, -1}); !errors.Is(err, ErrBadInstance) {
		t.Fatalf("negative score err = %v", err)
	}
	if _, err := in.WithValues([]float64{1, math.NaN()}); !errors.Is(err, ErrBadInstance) {
		t.Fatalf("NaN score err = %v", err)
	}
}
