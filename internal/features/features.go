// Package features implements the domain-assisted feature engineering of
// §IV-D (Table I) for the DCTA local process. Each task in a decision
// context is described by two general features (Past Success, Prediction
// Accuracy) and the domain features of a chiller-sequencing plant (building,
// model type, operating power, weather condition, outdoor temperature,
// latest cooling load, water mass-flow rate, water ΔT).
package features

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/building"
	"repro/internal/mtl"
)

// ErrUnknownTask is returned for task IDs outside the extractor's task set.
var ErrUnknownTask = errors.New("features: unknown task")

// Dim is the feature vector length:
// 2 general + building-id + 3 model one-hot + power + condition + outdoor
// temp + latest load + flow + ΔT. There is no separate band column: the
// task's load band is encoded as a bias added onto the latest-cooling-load
// feature (see bandBias), so the vector stays at 12 columns.
const Dim = 12

// Names lists the feature vector's columns in order (for documentation and
// table output).
func Names() []string {
	return []string{
		"past_success",        // general: selections in past optimal decisions
		"prediction_accuracy", // general: 1/(1+RMSE) of the task model
		"building",            // domain: building ID
		"model_centrifugal",   // domain: model type one-hot
		"model_screw",
		"model_absorption",
		"operating_power_kw",  // domain: latest operating power
		"weather_condition",   // domain: ordinal condition
		"outdoor_temp_c",      // domain: current outdoor temperature
		"latest_cooling_load", // domain: last recorded cooling load
		"water_flow_kgs",      // domain: latest water mass flow
		"water_delta_t",       // domain: latest water ΔT
	}
}

// Context is the sensing snapshot a feature vector is computed against.
type Context struct {
	// Time bounds the "latest record" lookups (records after Time are
	// invisible — no peeking into the future).
	Time time.Time
	// OutdoorTempC and Condition describe current weather.
	OutdoorTempC float64
	Condition    building.WeatherCondition
}

// Extractor computes Table-I feature vectors for the tasks of an MTL engine.
type Extractor struct {
	trace *building.Trace
	tasks []mtl.Task
	// rmse answers the Prediction Accuracy general feature.
	rmse func(taskID int) float64
	// success counts how often each task appeared in past optimal
	// decisions; updated by RecordSuccess as decisions are made.
	success []float64
	// perChiller indexes record positions by chiller, time-sorted.
	perChiller map[int][]int
}

// NewExtractor builds an extractor over the engine's task set.
func NewExtractor(tr *building.Trace, engine *mtl.Engine) (*Extractor, error) {
	if tr == nil || len(tr.Records) == 0 {
		return nil, building.ErrNoRecords
	}
	tasks := engine.Tasks()
	e := &Extractor{
		trace:      tr,
		tasks:      tasks,
		rmse:       engine.PredictionRMSE,
		success:    make([]float64, len(tasks)),
		perChiller: make(map[int][]int),
	}
	for i, r := range tr.Records {
		e.perChiller[r.ChillerID] = append(e.perChiller[r.ChillerID], i)
	}
	// Records are generated chronologically, but sort defensively.
	for id := range e.perChiller {
		idx := e.perChiller[id]
		sort.Slice(idx, func(a, b int) bool {
			return tr.Records[idx[a]].Time.Before(tr.Records[idx[b]].Time)
		})
	}
	return e, nil
}

// TaskCount returns the number of tasks the extractor serves.
func (e *Extractor) TaskCount() int { return len(e.tasks) }

// RecordSuccess increments a task's Past Success counter ("the number of
// cases that a task is selected in the optimal decision in the past").
func (e *Extractor) RecordSuccess(taskID int) error {
	if taskID < 0 || taskID >= len(e.tasks) {
		return fmt.Errorf("%w: id %d", ErrUnknownTask, taskID)
	}
	e.success[taskID]++
	return nil
}

// PastSuccess returns the counter value.
func (e *Extractor) PastSuccess(taskID int) float64 {
	if taskID < 0 || taskID >= len(e.success) {
		return 0
	}
	return e.success[taskID]
}

// latestRecord finds the chiller's newest record at or before t, or nil.
func (e *Extractor) latestRecord(chillerID int, t time.Time) *building.Record {
	idx := e.perChiller[chillerID]
	// Binary search for the first record after t.
	lo := sort.Search(len(idx), func(i int) bool {
		return e.trace.Records[idx[i]].Time.After(t)
	})
	if lo == 0 {
		return nil
	}
	return &e.trace.Records[idx[lo-1]]
}

// Vector computes the Table-I feature vector for one task under ctx.
func (e *Extractor) Vector(taskID int, ctx Context) ([]float64, error) {
	if taskID < 0 || taskID >= len(e.tasks) {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownTask, taskID)
	}
	t := e.tasks[taskID]
	out := make([]float64, Dim)
	// General features.
	out[0] = e.success[taskID]
	out[1] = 1 / (1 + e.rmse(taskID))
	// Domain features.
	out[2] = float64(t.Building)
	switch t.Model {
	case building.ModelCentrifugal:
		out[3] = 1
	case building.ModelScrew:
		out[4] = 1
	case building.ModelAbsorption:
		out[5] = 1
	}
	if r := e.latestRecord(t.ChillerID, ctx.Time); r != nil {
		out[6] = r.OperatingPowerKW
		out[9] = r.CoolingLoadKW
		out[10] = r.WaterFlowKgS
		out[11] = r.WaterDeltaTC
	}
	out[7] = float64(ctx.Condition)
	out[8] = ctx.OutdoorTempC
	// Encode the task's operating band via its midpoint PLR so the local
	// model can separate bands of the same chiller.
	out[9] += bandBias(t.Band)
	return out, nil
}

// Vectors computes feature vectors for all tasks under ctx.
func (e *Extractor) Vectors(ctx Context) ([][]float64, error) {
	out := make([][]float64, len(e.tasks))
	for i := range e.tasks {
		v, err := e.Vector(i, ctx)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// bandBias separates load bands within the latest-cooling-load feature so
// tasks of one chiller do not collapse to identical vectors.
func bandBias(b building.LoadBand) float64 {
	switch b {
	case building.BandLow:
		return 0
	case building.BandMid:
		return 1
	default:
		return 2
	}
}

// Sanitize clips non-finite values (defensive: upstream physics should never
// produce them, but the SVM must never see NaN).
func Sanitize(v []float64) {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			v[i] = 0
		}
	}
}
