package features

import (
	"errors"
	"testing"
	"time"

	"repro/internal/building"
	"repro/internal/mtl"
)

func fixture(t *testing.T) (*building.Trace, *mtl.Engine, *Extractor) {
	t.Helper()
	tr, err := building.Generate(building.Config{
		Seed: 1, StartYear: 2015, Years: 1, StepHours: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := mtl.NewEngine(tr, mtl.DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Fit(); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExtractor(tr, engine)
	if err != nil {
		t.Fatal(err)
	}
	return tr, engine, ex
}

func midTraceContext(tr *building.Trace) Context {
	mid := tr.Records[len(tr.Records)/2]
	return Context{
		Time:         mid.Time,
		OutdoorTempC: mid.OutdoorTempC,
		Condition:    mid.Condition,
	}
}

func TestNamesMatchDim(t *testing.T) {
	if len(Names()) != Dim {
		t.Fatalf("Names() has %d entries, Dim = %d", len(Names()), Dim)
	}
}

func TestNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

// TestBandBiasInLoadColumn pins where the band encoding lives: two tasks of
// the same chiller in different bands differ exactly at the
// latest_cooling_load column (index 9), by the band-bias delta.
func TestBandBiasInLoadColumn(t *testing.T) {
	tr, engine, ex := fixture(t)
	ctx := midTraceContext(tr)
	tasks := engine.Tasks()
	for i := range tasks {
		for j := i + 1; j < len(tasks); j++ {
			if tasks[i].ChillerID != tasks[j].ChillerID || tasks[i].Band == tasks[j].Band {
				continue
			}
			vi, err := ex.Vector(tasks[i].ID, ctx)
			if err != nil {
				t.Fatal(err)
			}
			vj, err := ex.Vector(tasks[j].ID, ctx)
			if err != nil {
				t.Fatal(err)
			}
			for k := range vi {
				switch k {
				case 0, 1:
					// past_success and prediction_accuracy are per-task.
				case 9:
					want := bandBias(tasks[i].Band) - bandBias(tasks[j].Band)
					if got := vi[k] - vj[k]; got != want {
						t.Fatalf("column 9 delta = %v, want band bias delta %v", got, want)
					}
				default:
					if vi[k] != vj[k] {
						t.Fatalf("column %d differs (%v vs %v); only column 9 encodes the band", k, vi[k], vj[k])
					}
				}
			}
			return
		}
	}
	t.Skip("no same-chiller band pair in task set")
}

func TestVectorShapeAndContent(t *testing.T) {
	tr, _, ex := fixture(t)
	ctx := midTraceContext(tr)
	v, err := ex.Vector(0, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != Dim {
		t.Fatalf("vector length = %d, want %d", len(v), Dim)
	}
	// Exactly one model one-hot fires.
	if v[3]+v[4]+v[5] != 1 {
		t.Fatalf("model one-hot = %v %v %v", v[3], v[4], v[5])
	}
	// Weather features present.
	if v[8] != ctx.OutdoorTempC || v[7] != float64(ctx.Condition) {
		t.Fatalf("weather features wrong: %v", v)
	}
	// Latest-record features should be populated mid-trace.
	if v[6] <= 0 || v[10] <= 0 || v[11] <= 0 {
		t.Fatalf("latest-record features empty: %v", v)
	}
	if _, err := ex.Vector(-1, ctx); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("bad id err = %v", err)
	}
	if _, err := ex.Vector(9999, ctx); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("big id err = %v", err)
	}
}

func TestVectorBeforeTraceStart(t *testing.T) {
	tr, _, ex := fixture(t)
	ctx := Context{
		Time:         tr.Records[0].Time.Add(-24 * time.Hour),
		OutdoorTempC: 25,
		Condition:    building.WeatherWarm,
	}
	v, err := ex.Vector(0, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// No history yet: record-derived features are zero (plus band bias).
	if v[6] != 0 || v[10] != 0 || v[11] != 0 {
		t.Fatalf("pre-history features should be zero: %v", v)
	}
}

func TestPastSuccessCounter(t *testing.T) {
	tr, _, ex := fixture(t)
	ctx := midTraceContext(tr)
	if ex.PastSuccess(3) != 0 {
		t.Fatal("fresh counter should be 0")
	}
	if err := ex.RecordSuccess(3); err != nil {
		t.Fatal(err)
	}
	if err := ex.RecordSuccess(3); err != nil {
		t.Fatal(err)
	}
	if ex.PastSuccess(3) != 2 {
		t.Fatalf("PastSuccess = %v", ex.PastSuccess(3))
	}
	v, err := ex.Vector(3, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 2 {
		t.Fatalf("past_success feature = %v, want 2", v[0])
	}
	if err := ex.RecordSuccess(-1); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("bad id err = %v", err)
	}
	if ex.PastSuccess(-1) != 0 || ex.PastSuccess(9999) != 0 {
		t.Fatal("out-of-range PastSuccess should be 0")
	}
}

func TestPredictionAccuracyBounded(t *testing.T) {
	tr, _, ex := fixture(t)
	ctx := midTraceContext(tr)
	vs, err := ex.Vectors(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != ex.TaskCount() {
		t.Fatalf("Vectors count = %d", len(vs))
	}
	for i, v := range vs {
		if v[1] <= 0 || v[1] > 1 {
			t.Fatalf("task %d prediction_accuracy = %v outside (0,1]", i, v[1])
		}
	}
}

func TestBandsDistinguishable(t *testing.T) {
	tr, engine, ex := fixture(t)
	ctx := midTraceContext(tr)
	// Find two tasks on the same chiller with different bands.
	tasks := engine.Tasks()
	for i := range tasks {
		for j := i + 1; j < len(tasks); j++ {
			if tasks[i].ChillerID == tasks[j].ChillerID && tasks[i].Band != tasks[j].Band {
				vi, err := ex.Vector(tasks[i].ID, ctx)
				if err != nil {
					t.Fatal(err)
				}
				vj, err := ex.Vector(tasks[j].ID, ctx)
				if err != nil {
					t.Fatal(err)
				}
				same := true
				for k := range vi {
					if vi[k] != vj[k] {
						same = false
					}
				}
				if same {
					t.Fatalf("tasks %v and %v have identical features", tasks[i], tasks[j])
				}
				return
			}
		}
	}
	t.Skip("no same-chiller band pair in task set")
}

func TestSanitize(t *testing.T) {
	v := []float64{1, nan(), inf(), -inf(), 2}
	Sanitize(v)
	if v[1] != 0 || v[2] != 0 || v[3] != 0 || v[0] != 1 || v[4] != 2 {
		t.Fatalf("Sanitize = %v", v)
	}
}

func nan() float64 { return zero() / zero() }
func inf() float64 { return 1 / zero() }
func zero() float64 {
	var z float64
	return z
}

func TestNewExtractorValidation(t *testing.T) {
	if _, err := NewExtractor(nil, nil); !errors.Is(err, building.ErrNoRecords) {
		t.Fatalf("nil trace err = %v", err)
	}
}
