package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mathx"
)

// tinyProblem is a 4-task, 2-processor instance with a known optimum.
func tinyProblem() *Problem {
	return &Problem{
		Tasks: []TaskSpec{
			{ID: 0, Importance: 0.9, TimeCost: 2, Resource: 1},
			{ID: 1, Importance: 0.8, TimeCost: 2, Resource: 1},
			{ID: 2, Importance: 0.1, TimeCost: 2, Resource: 1},
			{ID: 3, Importance: 0.05, TimeCost: 2, Resource: 1},
		},
		Processors: []Processor{
			{ID: 0, Capacity: 1, SpeedFactor: 1},
			{ID: 1, Capacity: 1, SpeedFactor: 1},
		},
		TimeLimit: 2,
	}
}

// randomProblem builds a feasible-but-tight random instance.
func randomProblem(seed int64, n, m int) *Problem {
	rng := mathx.NewRand(seed)
	p := &Problem{TimeLimit: 4}
	for j := 0; j < n; j++ {
		p.Tasks = append(p.Tasks, TaskSpec{
			ID:         j,
			Importance: rng.Float64(),
			TimeCost:   0.5 + rng.Float64()*2,
			Resource:   0.2 + rng.Float64(),
		})
	}
	for i := 0; i < m; i++ {
		p.Processors = append(p.Processors, Processor{
			ID: i, Capacity: 1 + rng.Float64()*2, SpeedFactor: 1,
		})
	}
	return p
}

func TestProblemValidate(t *testing.T) {
	ok := tinyProblem()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Problem)
	}{
		{"no tasks", func(p *Problem) { p.Tasks = nil }},
		{"no processors", func(p *Problem) { p.Processors = nil }},
		{"zero time limit", func(p *Problem) { p.TimeLimit = 0 }},
		{"bad task id", func(p *Problem) { p.Tasks[1].ID = 7 }},
		{"importance > 1", func(p *Problem) { p.Tasks[0].Importance = 1.5 }},
		{"negative time", func(p *Problem) { p.Tasks[0].TimeCost = -1 }},
		{"bad proc id", func(p *Problem) { p.Processors[0].ID = 3 }},
		{"negative capacity", func(p *Problem) { p.Processors[0].Capacity = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := tinyProblem()
			tt.mutate(p)
			if err := p.Validate(); !errors.Is(err, ErrBadProblem) {
				t.Errorf("Validate = %v, want ErrBadProblem", err)
			}
		})
	}
}

func TestObjectiveAndFeasibility(t *testing.T) {
	p := tinyProblem()
	a := Allocation{0, 1, Unassigned, Unassigned}
	if err := p.CheckFeasible(a); err != nil {
		t.Fatalf("feasible allocation rejected: %v", err)
	}
	if got := p.Objective(a); math.Abs(got-1.7) > 1e-12 {
		t.Fatalf("Objective = %v, want 1.7", got)
	}
	// Two tasks on one processor exceed T=2 (2+2=4).
	if err := p.CheckFeasible(Allocation{0, 0, Unassigned, Unassigned}); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("time violation accepted: %v", err)
	}
	if err := p.CheckFeasible(Allocation{5, Unassigned, Unassigned, Unassigned}); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("bad processor accepted: %v", err)
	}
	if err := p.CheckFeasible(Allocation{0}); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("short allocation accepted: %v", err)
	}
	if got := p.TotalImportance(); math.Abs(got-1.85) > 1e-12 {
		t.Fatalf("TotalImportance = %v", got)
	}
}

func TestSolveGreedyAndExact(t *testing.T) {
	p := tinyProblem()
	exact, err := p.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(exact); err != nil {
		t.Fatal(err)
	}
	// Each processor fits one task (resource cap 1); optimum picks tasks 0,1.
	if got := p.Objective(exact); math.Abs(got-1.7) > 1e-12 {
		t.Fatalf("exact objective = %v, want 1.7", got)
	}
	greedy, err := p.SolveGreedy()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(greedy); err != nil {
		t.Fatal(err)
	}
	if p.Objective(greedy) > p.Objective(exact)+1e-9 {
		t.Fatal("greedy beats exact")
	}
}

func TestSolversOnRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := randomProblem(seed, 10, 3)
		exact, err := p.SolveExact()
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := p.SolveGreedy()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckFeasible(exact); err != nil {
			t.Fatalf("seed %d: exact infeasible: %v", seed, err)
		}
		if err := p.CheckFeasible(greedy); err != nil {
			t.Fatalf("seed %d: greedy infeasible: %v", seed, err)
		}
		if p.Objective(greedy) > p.Objective(exact)+1e-9 {
			t.Fatalf("seed %d: greedy %v > exact %v", seed,
				p.Objective(greedy), p.Objective(exact))
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := tinyProblem()
	c := p.Clone()
	c.Tasks[0].Importance = 0.123
	c.Processors[0].Capacity = 99
	if p.Tasks[0].Importance == 0.123 || p.Processors[0].Capacity == 99 {
		t.Fatal("Clone shares state with original")
	}
}

func TestEnvironmentMatrix(t *testing.T) {
	e := &Environment{
		Importance: []float64{1, 0.5},
		Capacity:   []float64{4, 2},
	}
	m := e.Matrix()
	want := []float64{1 * 1, 1 * 0.5, 0.5 * 1, 0.5 * 0.5}
	for i := range want {
		if math.Abs(m[i]-want[i]) > 1e-12 {
			t.Fatalf("Matrix = %v, want %v", m, want)
		}
	}
	// Zero capacities should not divide by zero.
	z := &Environment{Importance: []float64{1}, Capacity: []float64{0}}
	if got := z.Matrix(); math.IsNaN(got[0]) {
		t.Fatal("zero-capacity matrix is NaN")
	}
}

func TestEnvironmentOf(t *testing.T) {
	p := tinyProblem()
	env := EnvironmentOf(p, []float64{7, 8})
	if len(env.Importance) != 4 || len(env.Capacity) != 2 {
		t.Fatalf("EnvironmentOf sizes wrong: %+v", env)
	}
	if env.Importance[0] != 0.9 || env.Capacity[1] != 1 {
		t.Fatalf("EnvironmentOf values wrong: %+v", env)
	}
	if env.Signature[0] != 7 {
		t.Fatal("signature not copied")
	}
}
