package core

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/rl"
)

// CRLConfig tunes the Clustered Reinforcement Learning model.
type CRLConfig struct {
	// K is the kNN neighborhood size for environment definition.
	K int
	// Blend averages the K nearest environments instead of taking the single
	// nearest (K=1 and Blend are equivalent).
	Blend bool
	// Episodes is the training episode budget across historical
	// environments.
	Episodes int
	// DQN configures the underlying agent.
	DQN rl.DQNConfig
	// DenseReward is the ablation switch for per-step rewards (the paper
	// uses terminal-only).
	DenseReward bool
	// StopWindow enables convergence-based early stopping: training stops
	// once the mean episode return of the most recent StopWindow episodes
	// improves on the preceding window by less than StopEpsilon (relative).
	// 0 disables early stopping and the full Episodes budget is spent.
	StopWindow int
	// StopEpsilon is the relative-improvement plateau threshold (default
	// 0.01 when StopWindow > 0).
	StopEpsilon float64
	// MinEpisodes floors early stopping: the plateau check never fires
	// before this many episodes (default 2·StopWindow). The budget still
	// caps at Episodes.
	MinEpisodes int
	// Interrupt, when non-nil, is polled between episodes; returning true
	// ends training after the current episode with rl.StopInterrupted. The
	// serving layer's speculative pre-trainer uses this to yield to
	// foreground demand training. Never serialized.
	Interrupt func() bool `json:"-"`
	// Seed drives the training-time environment sampling.
	Seed int64
}

// DefaultCRLConfig returns the configuration used across the experiments.
func DefaultCRLConfig() CRLConfig {
	return CRLConfig{
		K:        3,
		Blend:    true,
		Episodes: 150,
		Seed:     1,
	}
}

// CRL is Algorithm 1: a Deep-Q-Network allocation policy trained over the
// historical environment store, with kNN environment definition at
// prediction time. The problem *structure* (task costs, processors, time
// limit) is fixed; only the importance vector varies between environments —
// the paper's "item value changed randomly over time" Knapsack variant.
type CRL struct {
	cfg       CRLConfig
	template  *Problem
	store     *EnvironmentStore
	agent     *rl.DQN
	trained   bool
	warmStart *WarmStart
	rollout   rolloutScratch
}

// WarmStart records transfer provenance for a warm-started model: which
// cluster's policy seeded this one and how far apart their signatures were.
// It rides along in the persisted snapshot so restored policies keep their
// lineage.
type WarmStart struct {
	// Source identifies the donor cluster (the serving layer's store index).
	Source int `json:"source"`
	// Distance is the signature-space distance to the donor.
	Distance float64 `json:"distance"`
}

// NewCRL builds a CRL model over a problem template and historical store.
func NewCRL(template *Problem, store *EnvironmentStore, cfg CRLConfig) (*CRL, error) {
	if err := template.Validate(); err != nil {
		return nil, fmt.Errorf("crl template: %w", err)
	}
	if store == nil || store.Len() == 0 {
		return nil, ErrEmptyStore
	}
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.Episodes < 1 {
		cfg.Episodes = 1
	}
	// Probe the state/action sizes with a throwaway env.
	probe, err := NewAllocEnv(template, nil)
	if err != nil {
		return nil, err
	}
	dqnCfg := cfg.DQN
	if dqnCfg.Seed == 0 {
		dqnCfg.Seed = cfg.Seed
	}
	agent, err := rl.NewDQN(probe.StateSize(), probe.ActionSize(), dqnCfg)
	if err != nil {
		return nil, fmt.Errorf("crl agent: %w", err)
	}
	return &CRL{cfg: cfg, template: template, store: store, agent: agent}, nil
}

// problemFor instantiates the template with an environment's importance.
func (c *CRL) problemFor(env *Environment) (*Problem, error) {
	if len(env.Importance) != len(c.template.Tasks) {
		return nil, fmt.Errorf("core: environment has %d importances for %d tasks",
			len(env.Importance), len(c.template.Tasks))
	}
	p := c.template.Clone()
	for i := range p.Tasks {
		p.Tasks[i].Importance = mathx.Clamp(env.Importance[i], 0, 1)
	}
	return p, nil
}

// Train runs the training phase of Alg. 1: episodes over environments
// sampled from the historical store, updating the shared DQN. With
// StopWindow set, training early-stops once episode returns plateau
// (relative improvement between consecutive StopWindow-episode windows below
// StopEpsilon), never before the MinEpisodes floor; the outcome is reported
// in TrainResult.StopReason.
func (c *CRL) Train() (*rl.TrainResult, error) {
	rng := mathx.NewRand(c.cfg.Seed)
	envs := c.store.All()
	minEp := c.cfg.MinEpisodes
	if minEp <= 0 {
		minEp = 2 * c.cfg.StopWindow
	}
	stopEps := c.cfg.StopEpsilon
	if stopEps <= 0 {
		stopEps = 0.01
	}
	// Each store environment keeps one AllocEnv for the whole run: the
	// problem structure is fixed and Train resets the env per episode, so
	// rebuilding the problem clone and MDP every episode is pure overhead.
	cache := make([]*AllocEnv, len(envs))
	agg := &rl.TrainResult{StopReason: rl.StopBudget}
	for ep := 0; ep < c.cfg.Episodes; ep++ {
		if c.cfg.Interrupt != nil && ep > 0 && c.cfg.Interrupt() {
			agg.StopReason = rl.StopInterrupted
			break
		}
		ei := rng.Intn(len(envs))
		alloc := cache[ei]
		if alloc == nil {
			env := envs[ei]
			prob, err := c.problemFor(env)
			if err != nil {
				return nil, err
			}
			alloc, err = NewAllocEnv(prob, env.Signature)
			if err != nil {
				return nil, err
			}
			alloc.DenseReward = c.cfg.DenseReward
			cache[ei] = alloc
		}
		res, err := c.agent.Train(alloc, 1, alloc.N()+alloc.M()+1)
		if err != nil {
			return nil, fmt.Errorf("crl episode %d: %w", ep, err)
		}
		agg.Episodes++
		agg.TotalSteps += res.TotalSteps
		agg.RewardsPerEp = append(agg.RewardsPerEp, res.RewardsPerEp...)
		if c.cfg.StopWindow > 0 && agg.Episodes >= minEp &&
			plateaued(agg.RewardsPerEp, c.cfg.StopWindow, stopEps) {
			agg.StopReason = rl.StopPlateau
			break
		}
	}
	if n := len(agg.RewardsPerEp); n > 0 {
		agg.MeanReward = mathx.Mean(agg.RewardsPerEp)
		agg.FinalReward = agg.RewardsPerEp[n-1]
	}
	c.trained = true
	return agg, nil
}

// plateaued reports whether the most recent `window` episode returns improve
// on the preceding `window` returns by less than eps, relative to the earlier
// window's magnitude — the convergence criterion behind early stopping.
func plateaued(rewards []float64, window int, eps float64) bool {
	if len(rewards) < 2*window {
		return false
	}
	recent := mathx.Mean(rewards[len(rewards)-window:])
	prev := mathx.Mean(rewards[len(rewards)-2*window : len(rewards)-window])
	denom := math.Abs(prev)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return (recent-prev)/denom < eps
}

// WarmStartFrom seeds c's agent from an already-trained donor model instead
// of training from random initialization: online and target networks AND
// optimizer state are copied (rl.DQN.CloneFrom), so the subsequent Train
// call fine-tunes the transferred policy with a decayed ε-schedule. Both
// models must share the problem shape (state/action sizes). info records the
// transfer provenance, surfaced by WarmStarted and persisted in snapshots.
func (c *CRL) WarmStartFrom(src *CRL, info WarmStart) error {
	if src == nil {
		return fmt.Errorf("crl warm start: nil source")
	}
	if !src.trained {
		return ErrNotTrained
	}
	if err := c.agent.CloneFrom(src.agent); err != nil {
		return fmt.Errorf("crl warm start: %w", err)
	}
	ws := info
	c.warmStart = &ws
	return nil
}

// WarmStarted returns the model's transfer provenance, or nil for policies
// trained from scratch.
func (c *CRL) WarmStarted() *WarmStart { return c.warmStart }

// DefineEnvironment answers the environment-definition query for sensing
// data Z per the configured kNN policy.
func (c *CRL) DefineEnvironment(z []float64) (*Environment, error) {
	if c.cfg.Blend && c.cfg.K > 1 {
		return c.store.DefineBlended(z, c.cfg.K)
	}
	return c.store.Define(z)
}

// DefineEnvironmentInto is DefineEnvironment writing into a caller-owned
// environment with reusable kNN scratch — the zero-allocation variant the
// serving warm path uses. Environment definition only reads the (concurrency
// safe) store, so any goroutine may call this on a shared CRL.
func (c *CRL) DefineEnvironmentInto(z []float64, dst *Environment, scratch *KNNScratch) error {
	if c.cfg.Blend && c.cfg.K > 1 {
		return c.store.DefineBlendedInto(z, c.cfg.K, dst, scratch)
	}
	// k=1 inside DefineBlendedInto copies the single nearest entry verbatim —
	// bitwise-identical to Define — without Define's result allocation.
	return c.store.DefineBlendedInto(z, 1, dst, scratch)
}

// Predict is the prediction phase of Alg. 1: define the environment for Z,
// then roll the greedy policy to an allocation. The MDP construction makes
// every greedy rollout feasible by design.
func (c *CRL) Predict(z []float64) (Allocation, *Environment, error) {
	if !c.trained {
		return nil, nil, ErrNotTrained
	}
	env, err := c.DefineEnvironment(z)
	if err != nil {
		return nil, nil, err
	}
	alloc, err := c.PredictWithEnvironment(env)
	return alloc, env, err
}

// PredictWithEnvironment rolls the greedy policy against an explicit
// environment (used by DCTA, which may refine the defined environment).
func (c *CRL) PredictWithEnvironment(env *Environment) (Allocation, error) {
	if !c.trained {
		return nil, ErrNotTrained
	}
	prob, err := c.problemFor(env)
	if err != nil {
		return nil, err
	}
	ae, err := NewAllocEnv(prob, env.Signature)
	if err != nil {
		return nil, err
	}
	if _, _, err := c.agent.RunGreedy(ae, ae.N()+ae.M()+1); err != nil {
		return nil, fmt.Errorf("crl greedy rollout: %w", err)
	}
	return ae.Allocation(), nil
}

// rolloutScratch is the reusable workspace behind PredictBatchInto: one MDP
// lane per batch slot, a state matrix sized to the largest batch seen, and
// per-lane action buffers. It belongs to exactly one CRL (an inference
// replica), which the serving layer checks out exclusively per batch.
type rolloutScratch struct {
	lanes    []*AllocEnv
	states   *mathx.Matrix
	view     mathx.Matrix // row-window header over states, reused per step
	valid    [][]int      // per-lane valid-action buffers
	rowValid [][]int      // per-live-row views into valid
	acts     []int
	live     []int // lane indices still mid-episode
}

// PredictBatchInto rolls the greedy policy for a batch of environments in
// lockstep: every step evaluates all live episodes' states through one
// neural.ForwardBatch pass and advances each episode by its own argmax
// action. out[i] receives the allocation for envs[i], appended into its
// existing backing array.
//
// Equivalence invariant: the batched GEMM kernels compute every output row
// from that row's inputs alone, with a deterministic ascending-k
// accumulation per element, so PredictBatchInto(envs, out) is bitwise
// identical to B separate single-environment calls — batch composition can
// never change an answer. The request coalescer in internal/serve leans on
// this, and the property is pinned by TestPredictBatchMatchesSequential.
//
// Not goroutine-safe: the rollout runs through the agent's and the scratch's
// shared buffers, so concurrent callers need separate Clone replicas.
func (c *CRL) PredictBatchInto(envs []*Environment, out []Allocation) error {
	if !c.trained {
		return ErrNotTrained
	}
	b := len(envs)
	if b == 0 {
		return nil
	}
	if len(out) < b {
		return fmt.Errorf("core: %d outputs for %d environments", len(out), b)
	}
	s := &c.rollout
	for len(s.lanes) < b {
		lane, err := NewAllocEnv(c.template.Clone(), nil)
		if err != nil {
			return fmt.Errorf("crl batch lane: %w", err)
		}
		lane.DenseReward = c.cfg.DenseReward
		s.lanes = append(s.lanes, lane)
		s.valid = append(s.valid, make([]int, 0, lane.ActionSize()))
	}
	stateSize := s.lanes[0].StateSize()
	if s.states == nil || s.states.Rows < b {
		s.states = mathx.NewMatrix(b, stateSize)
		s.rowValid = make([][]int, b)
		s.acts = make([]int, b)
		s.live = make([]int, 0, b)
	}
	s.live = s.live[:0]
	for i := 0; i < b; i++ {
		if len(envs[i].Importance) != len(c.template.Tasks) {
			return fmt.Errorf("core: environment %d has %d importances for %d tasks",
				i, len(envs[i].Importance), len(c.template.Tasks))
		}
		if err := s.lanes[i].Reinit(envs[i].Importance); err != nil {
			return fmt.Errorf("crl batch lane %d: %w", i, err)
		}
		s.live = append(s.live, i)
	}
	maxSteps := s.lanes[0].N() + s.lanes[0].M() + 1
	for step := 0; step < maxSteps && len(s.live) > 0; step++ {
		rows := len(s.live)
		for r, li := range s.live {
			lane := s.lanes[li]
			lane.StateInto(s.states.Row(r))
			s.valid[li] = lane.ValidActionsInto(s.valid[li])
			s.rowValid[r] = s.valid[li]
		}
		s.view = mathx.Matrix{Rows: rows, Cols: stateSize, Data: s.states.Data[:rows*stateSize]}
		if err := c.agent.GreedyActionsBatch(&s.view, s.rowValid[:rows], s.acts[:rows]); err != nil {
			return fmt.Errorf("crl batch rollout: %w", err)
		}
		w := 0
		for r, li := range s.live {
			done, err := s.lanes[li].Apply(s.acts[r])
			if err != nil {
				return fmt.Errorf("crl batch rollout lane %d: %w", li, err)
			}
			if !done {
				s.live[w] = li
				w++
			}
		}
		s.live = s.live[:w]
	}
	for i := 0; i < b; i++ {
		out[i] = s.lanes[i].CopyAllocation(out[i])
	}
	return nil
}

// TaskScores returns a per-task desirability score in [0, 1] from the
// trained Q-function evaluated at the initial state of the defined
// environment. DCTA consumes these as the general-process term F₁ of
// Eq. (6).
func (c *CRL) TaskScores(z []float64) ([]float64, *Environment, error) {
	if !c.trained {
		return nil, nil, ErrNotTrained
	}
	env, err := c.DefineEnvironment(z)
	if err != nil {
		return nil, nil, err
	}
	prob, err := c.problemFor(env)
	if err != nil {
		return nil, nil, err
	}
	ae, err := NewAllocEnv(prob, env.Signature)
	if err != nil {
		return nil, nil, err
	}
	q, err := c.agent.QValues(ae.Reset())
	if err != nil {
		return nil, nil, err
	}
	n := len(prob.Tasks)
	scores := make([]float64, n)
	lo, hi := mathx.MinOf(q[:n]), mathx.MaxOf(q[:n])
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	for i := 0; i < n; i++ {
		scores[i] = (q[i] - lo) / span
	}
	return scores, env, nil
}

// Clone returns an independent inference replica of the model: the agent's
// networks are deep-copied while the (concurrency-safe, append-only)
// environment store is shared. A CRL is not goroutine-safe — Predict,
// PredictWithEnvironment and TaskScores run forward passes through the
// agent's shared activation scratch — so concurrent serving uses one clone
// per in-flight rollout (see internal/serve's per-cluster replica pools).
func (c *CRL) Clone() (*CRL, error) {
	agent, err := c.agent.Clone()
	if err != nil {
		return nil, fmt.Errorf("crl clone: %w", err)
	}
	return &CRL{
		cfg:       c.cfg,
		template:  c.template.Clone(),
		store:     c.store,
		agent:     agent,
		trained:   c.trained,
		warmStart: c.warmStart,
	}, nil
}

// Template returns the problem structure the model allocates for.
func (c *CRL) Template() *Problem { return c.template }

// Store returns the historical environment store predictions cluster over.
func (c *CRL) Store() *EnvironmentStore { return c.store }

// Trained reports whether Train has completed.
func (c *CRL) Trained() bool { return c.trained }

// crlSnapshot is the persisted form of a trained CRL model. The environment
// store is not serialized — it is the deployment's historical data and is
// reattached on load.
type crlSnapshot struct {
	Config   CRLConfig       `json:"config"`
	Template *Problem        `json:"template"`
	Policy   json.RawMessage `json:"policy"`
	Trained  bool            `json:"trained"`
	// WarmStart is the transfer provenance of warm-started policies; absent
	// in snapshots written before it existed and for from-scratch policies,
	// so old checkpoints load unchanged.
	WarmStart *WarmStart `json:"warm_start,omitempty"`
}

// MarshalJSON persists the trained policy, configuration and problem
// template ("the training phase merely needs to be conducted once in
// advance" — footnote 1). Pair with LoadCRL.
func (c *CRL) MarshalJSON() ([]byte, error) {
	policy, err := c.agent.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("crl marshal policy: %w", err)
	}
	return json.Marshal(crlSnapshot{
		Config:    c.cfg,
		Template:  c.template,
		Policy:    policy,
		Trained:   c.trained,
		WarmStart: c.warmStart,
	})
}

// LoadCRL restores a model persisted with MarshalJSON, reattaching the
// given historical environment store for prediction-time kNN definition.
func LoadCRL(data []byte, store *EnvironmentStore) (*CRL, error) {
	if store == nil || store.Len() == 0 {
		return nil, ErrEmptyStore
	}
	var snap crlSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("crl unmarshal: %w", err)
	}
	if snap.Template == nil {
		return nil, fmt.Errorf("crl unmarshal: missing template")
	}
	c, err := NewCRL(snap.Template, store, snap.Config)
	if err != nil {
		return nil, fmt.Errorf("crl restore: %w", err)
	}
	if err := c.agent.UnmarshalPolicy(snap.Policy); err != nil {
		return nil, fmt.Errorf("crl restore policy: %w", err)
	}
	c.trained = snap.Trained
	c.warmStart = snap.WarmStart
	return c, nil
}
