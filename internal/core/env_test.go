package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rl"
)

func TestAllocEnvLifecycle(t *testing.T) {
	p := tinyProblem()
	env, err := NewAllocEnv(p, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if env.N() != 4 || env.M() != 2 {
		t.Fatalf("N/M = %d/%d", env.N(), env.M())
	}
	if env.StateSize() != 2*4*2 {
		t.Fatalf("StateSize = %d", env.StateSize())
	}
	if env.ActionSize() != 5 {
		t.Fatalf("ActionSize = %d", env.ActionSize())
	}
	s := env.Reset()
	if len(s) != env.StateSize() {
		t.Fatalf("state length %d", len(s))
	}
	// Initially the selection half is all zero, the env half carries e.
	for i := 0; i < 8; i++ {
		if s[i] != 0 {
			t.Fatal("selection matrix must start zero")
		}
	}
	valid := env.ValidActions()
	// Each processor fits one task (resource 1/1): all 4 tasks + skip.
	if len(valid) != 5 {
		t.Fatalf("valid actions = %v", valid)
	}
}

func TestAllocEnvAssignmentFlow(t *testing.T) {
	p := tinyProblem()
	env, err := NewAllocEnv(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	env.Reset()
	// Assign task 0 to processor 0.
	s, r, done, err := env.Step(0)
	if err != nil || done {
		t.Fatalf("step: %v done=%v", err, done)
	}
	if r != 0 {
		t.Fatalf("intermediate reward = %v, want 0 (terminal-only)", r)
	}
	if s[0*2+0] != 1 {
		t.Fatal("selection matrix not updated")
	}
	// Processor 0 is now resource-full; only skip is valid.
	valid := env.ValidActions()
	if len(valid) != 1 || valid[0] != env.SkipAction() {
		t.Fatalf("after filling proc 0, valid = %v", valid)
	}
	// Re-assigning task 0 errors.
	if _, _, _, err := env.Step(0); err == nil {
		t.Fatal("double assignment accepted")
	}
	// Skip to processor 1, assign task 1 → terminal via skip of last proc.
	if _, _, _, err := env.Step(env.SkipAction()); err != nil {
		t.Fatal(err)
	}
	_, r, done, err = env.Step(1)
	if err != nil || done {
		t.Fatalf("assign on proc 1: %v done=%v", err, done)
	}
	_, r, done, err = env.Step(env.SkipAction())
	if err != nil || !done {
		t.Fatalf("final skip: %v done=%v", err, done)
	}
	if math.Abs(r-1.7) > 1e-12 {
		t.Fatalf("terminal reward = %v, want Σ importance = 1.7", r)
	}
	alloc := env.Allocation()
	if alloc[0] != 0 || alloc[1] != 1 || alloc[2] != Unassigned {
		t.Fatalf("allocation = %v", alloc)
	}
	if err := p.CheckFeasible(alloc); err != nil {
		t.Fatal(err)
	}
	// Episode over.
	if env.ValidActions() != nil {
		t.Fatal("done episode still lists actions")
	}
	if _, _, _, err := env.Step(0); !errors.Is(err, rl.ErrEpisodeDone) {
		t.Fatalf("step after done err = %v", err)
	}
}

func TestAllocEnvDenseReward(t *testing.T) {
	p := tinyProblem()
	env, err := NewAllocEnv(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	env.DenseReward = true
	env.Reset()
	_, r, _, err := env.Step(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.9) > 1e-12 {
		t.Fatalf("dense reward = %v, want 0.9", r)
	}
}

func TestAllocEnvAllAssignedTerminates(t *testing.T) {
	// Roomy instance: everything fits on processor 0.
	p := &Problem{
		Tasks: []TaskSpec{
			{ID: 0, Importance: 0.5, TimeCost: 1, Resource: 1},
			{ID: 1, Importance: 0.5, TimeCost: 1, Resource: 1},
		},
		Processors: []Processor{{ID: 0, Capacity: 10, SpeedFactor: 1}},
		TimeLimit:  10,
	}
	env, err := NewAllocEnv(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	env.Reset()
	if _, _, done, err := env.Step(0); err != nil || done {
		t.Fatalf("first assign: %v done=%v", err, done)
	}
	_, r, done, err := env.Step(1)
	if err != nil || !done {
		t.Fatalf("all-assigned should terminate: %v done=%v", err, done)
	}
	if math.Abs(r-1.0) > 1e-12 {
		t.Fatalf("terminal reward = %v, want 1.0", r)
	}
}

func TestAllocEnvRejectsMisfit(t *testing.T) {
	p := tinyProblem()
	env, err := NewAllocEnv(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	env.Reset()
	if _, _, _, err := env.Step(0); err != nil {
		t.Fatal(err)
	}
	// Task 1 no longer fits processor 0's resource capacity.
	if _, _, _, err := env.Step(1); err == nil {
		t.Fatal("misfit assignment accepted")
	}
	if _, _, _, err := env.Step(99); err == nil {
		t.Fatal("out-of-range action accepted")
	}
}

func TestAllocEnvInvalidProblem(t *testing.T) {
	bad := tinyProblem()
	bad.TimeLimit = 0
	if _, err := NewAllocEnv(bad, nil); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("invalid problem err = %v", err)
	}
}

func TestAllocEnvEpisodeWithRandomPolicy(t *testing.T) {
	// A random rollout always ends and always yields a feasible allocation.
	p := randomProblem(5, 8, 3)
	env, err := NewAllocEnv(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		env.Reset()
		steps := 0
		for steps < 100 {
			valid := env.ValidActions()
			if len(valid) == 0 {
				break
			}
			_, _, done, err := env.Step(valid[steps%len(valid)])
			if err != nil {
				t.Fatal(err)
			}
			steps++
			if done {
				break
			}
		}
		if steps >= 100 {
			t.Fatal("episode did not terminate")
		}
		if err := p.CheckFeasible(env.Allocation()); err != nil {
			t.Fatalf("trial %d: rollout infeasible: %v", trial, err)
		}
	}
}
