package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleProblem_SolveGreedy builds a tiny TATIM instance (Definition 4)
// and solves it: two high-importance tasks land on the two processors, the
// unimportant tail is dropped.
func ExampleProblem_SolveGreedy() {
	p := &core.Problem{
		Tasks: []core.TaskSpec{
			{ID: 0, Importance: 0.9, TimeCost: 2, Resource: 1},
			{ID: 1, Importance: 0.8, TimeCost: 2, Resource: 1},
			{ID: 2, Importance: 0.1, TimeCost: 2, Resource: 1},
		},
		Processors: []core.Processor{
			{ID: 0, Capacity: 1, SpeedFactor: 1},
			{ID: 1, Capacity: 1, SpeedFactor: 1},
		},
		TimeLimit: 2,
	}
	a, err := p.SolveGreedy()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("captured importance: %.1f of %.1f\n", p.Objective(a), p.TotalImportance())
	fmt.Printf("task 2 dropped: %v\n", a[2] == core.Unassigned)
	// Output:
	// captured importance: 1.7 of 1.8
	// task 2 dropped: true
}

// ExampleEnvironmentStore_Define shows the §III-C environment definition:
// the store answers a sensing query with its most similar historical entry.
func ExampleEnvironmentStore_Define() {
	store := core.NewEnvironmentStore()
	for _, e := range []struct {
		z   float64
		imp []float64
	}{
		{0.1, []float64{0.9, 0.1}},
		{0.9, []float64{0.1, 0.9}},
	} {
		_ = store.Add(&core.Environment{
			Importance: e.imp,
			Capacity:   []float64{1},
			Signature:  []float64{e.z},
		})
	}
	env, err := store.Define([]float64{0.85})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("defined importance: %v\n", env.Importance)
	// Output: defined importance: [0.1 0.9]
}
