package core

import (
	"fmt"

	"repro/internal/mathx"
)

// EnvironmentStore is the historical environment set ℰ of §III-C. Each entry
// pairs a sensing signature Z with the environment observed under it. The
// store answers the environment-definition query e = kNN(ℰ, Z).
type EnvironmentStore struct {
	entries []*Environment
}

// NewEnvironmentStore returns an empty store.
func NewEnvironmentStore() *EnvironmentStore { return &EnvironmentStore{} }

// Add appends a historical environment. Entries must share signature,
// importance, and capacity dimensionality with the first entry.
func (s *EnvironmentStore) Add(e *Environment) error {
	if e == nil || len(e.Importance) == 0 || len(e.Capacity) == 0 {
		return fmt.Errorf("core: empty environment")
	}
	if len(s.entries) > 0 {
		first := s.entries[0]
		if len(e.Signature) != len(first.Signature) ||
			len(e.Importance) != len(first.Importance) ||
			len(e.Capacity) != len(first.Capacity) {
			return fmt.Errorf("core: environment dimensions mismatch store")
		}
	}
	s.entries = append(s.entries, e)
	return nil
}

// Len returns the number of stored environments.
func (s *EnvironmentStore) Len() int { return len(s.entries) }

// All returns the stored environments (shared, not copied).
func (s *EnvironmentStore) All() []*Environment { return s.entries }

// Nearest returns the k stored environments whose signatures are closest to
// Z in Euclidean distance, nearest first — the clustering step of Alg. 1
// line 2.
func (s *EnvironmentStore) Nearest(z []float64, k int) ([]*Environment, error) {
	if len(s.entries) == 0 {
		return nil, ErrEmptyStore
	}
	if len(z) != len(s.entries[0].Signature) {
		return nil, fmt.Errorf("core: signature length %d, want %d",
			len(z), len(s.entries[0].Signature))
	}
	if k < 1 {
		k = 1
	}
	type scored struct {
		env  *Environment
		dist float64
	}
	all := make([]scored, len(s.entries))
	for i, e := range s.entries {
		all[i] = scored{env: e, dist: mathx.EuclideanDistance(z, e.Signature)}
	}
	// Selection sort of the top-k: k is tiny (usually 1-5).
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].dist < all[best].dist {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	out := make([]*Environment, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].env
	}
	return out, nil
}

// Define answers e = kNN(ℰ, Z) with k=1: the single most similar historical
// environment.
func (s *EnvironmentStore) Define(z []float64) (*Environment, error) {
	nearest, err := s.Nearest(z, 1)
	if err != nil {
		return nil, err
	}
	return nearest[0], nil
}

// DefineBlended returns an importance vector averaged over the k nearest
// environments, inverse-distance weighted. Blending softens the cliff when
// the store is sparse; k=1 degenerates to Define.
func (s *EnvironmentStore) DefineBlended(z []float64, k int) (*Environment, error) {
	nearest, err := s.Nearest(z, k)
	if err != nil {
		return nil, err
	}
	if len(nearest) == 1 {
		return nearest[0], nil
	}
	n := len(nearest[0].Importance)
	imp := make([]float64, n)
	var wsum float64
	for _, e := range nearest {
		d := mathx.EuclideanDistance(z, e.Signature)
		w := 1 / (d + 1e-9)
		wsum += w
		for i, v := range e.Importance {
			imp[i] += w * v
		}
	}
	for i := range imp {
		imp[i] /= wsum
	}
	return &Environment{
		Importance: imp,
		Capacity:   mathx.Clone(nearest[0].Capacity),
		Signature:  mathx.Clone(z),
	}, nil
}
