package core

import (
	"fmt"
	"sync"

	"repro/internal/mathx"
)

// EnvironmentStore is the historical environment set ℰ of §III-C. Each entry
// pairs a sensing signature Z with the environment observed under it. The
// store answers the environment-definition query e = kNN(ℰ, Z).
//
// The store is safe for concurrent use: Add may race with any number of
// Nearest/Define/All readers (the serving path queries the store from many
// goroutines while feedback appends fresh history). Entries themselves are
// treated as immutable once added — callers must not mutate an *Environment
// after handing it to Add.
type EnvironmentStore struct {
	mu      sync.RWMutex
	entries []*Environment
}

// NewEnvironmentStore returns an empty store.
func NewEnvironmentStore() *EnvironmentStore { return &EnvironmentStore{} }

// Add appends a historical environment. Entries must share signature,
// importance, and capacity dimensionality with the first entry.
func (s *EnvironmentStore) Add(e *Environment) error {
	if e == nil || len(e.Importance) == 0 || len(e.Capacity) == 0 {
		return fmt.Errorf("core: empty environment")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) > 0 {
		first := s.entries[0]
		if len(e.Signature) != len(first.Signature) ||
			len(e.Importance) != len(first.Importance) ||
			len(e.Capacity) != len(first.Capacity) {
			return fmt.Errorf("core: environment dimensions mismatch store")
		}
	}
	s.entries = append(s.entries, e)
	return nil
}

// Len returns the number of stored environments.
func (s *EnvironmentStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// All returns a copy of the stored environment slice, so callers may iterate
// (or mutate the slice itself) without racing concurrent Adds. The pointed-to
// environments are shared and must be treated as read-only.
func (s *EnvironmentStore) All() []*Environment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Environment(nil), s.entries...)
}

// At returns the i-th stored environment. Indices are stable: the store is
// append-only, so an index observed via NearestIndex keeps naming the same
// environment for the lifetime of the store.
func (s *EnvironmentStore) At(i int) (*Environment, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.entries) {
		return nil, fmt.Errorf("core: environment index %d outside [0,%d)", i, len(s.entries))
	}
	return s.entries[i], nil
}

// Nearest returns the k stored environments whose signatures are closest to
// Z in Euclidean distance, nearest first — the clustering step of Alg. 1
// line 2.
func (s *EnvironmentStore) Nearest(z []float64, k int) ([]*Environment, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nearestLocked(z, k)
}

// nearestLocked implements Nearest; the caller holds at least a read lock.
func (s *EnvironmentStore) nearestLocked(z []float64, k int) ([]*Environment, error) {
	if len(s.entries) == 0 {
		return nil, ErrEmptyStore
	}
	if len(z) != len(s.entries[0].Signature) {
		return nil, fmt.Errorf("core: signature length %d, want %d",
			len(z), len(s.entries[0].Signature))
	}
	if k < 1 {
		k = 1
	}
	type scored struct {
		env  *Environment
		dist float64
	}
	all := make([]scored, len(s.entries))
	for i, e := range s.entries {
		all[i] = scored{env: e, dist: mathx.EuclideanDistance(z, e.Signature)}
	}
	// Selection sort of the top-k: k is tiny (usually 1-5).
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].dist < all[best].dist {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	out := make([]*Environment, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].env
	}
	return out, nil
}

// NearestIndex returns the store index and environment nearest to Z. The
// index is the serving layer's cluster key: append-only storage keeps it
// stable, so a policy trained for index i keeps answering for the same
// historical environment even as feedback grows the store.
func (s *EnvironmentStore) NearestIndex(z []float64) (int, *Environment, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.entries) == 0 {
		return 0, nil, ErrEmptyStore
	}
	if len(z) != len(s.entries[0].Signature) {
		return 0, nil, fmt.Errorf("core: signature length %d, want %d",
			len(z), len(s.entries[0].Signature))
	}
	best, bestDist := 0, mathx.EuclideanDistance(z, s.entries[0].Signature)
	for i := 1; i < len(s.entries); i++ {
		if d := mathx.EuclideanDistance(z, s.entries[i].Signature); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, s.entries[best], nil
}

// Define answers e = kNN(ℰ, Z) with k=1: the single most similar historical
// environment.
func (s *EnvironmentStore) Define(z []float64) (*Environment, error) {
	nearest, err := s.Nearest(z, 1)
	if err != nil {
		return nil, err
	}
	return nearest[0], nil
}

// DefineBlended returns an importance vector averaged over the k nearest
// environments, inverse-distance weighted. Blending softens the cliff when
// the store is sparse; k=1 degenerates to Define.
func (s *EnvironmentStore) DefineBlended(z []float64, k int) (*Environment, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	nearest, err := s.nearestLocked(z, k)
	if err != nil {
		return nil, err
	}
	if len(nearest) == 1 {
		return nearest[0], nil
	}
	n := len(nearest[0].Importance)
	imp := make([]float64, n)
	var wsum float64
	for _, e := range nearest {
		d := mathx.EuclideanDistance(z, e.Signature)
		w := 1 / (d + 1e-9)
		wsum += w
		for i, v := range e.Importance {
			imp[i] += w * v
		}
	}
	for i := range imp {
		imp[i] /= wsum
	}
	return &Environment{
		Importance: imp,
		Capacity:   mathx.Clone(nearest[0].Capacity),
		Signature:  mathx.Clone(z),
	}, nil
}

// KNNScratch is reusable workspace for DefineBlendedInto, so the serving
// warm path performs zero steady-state allocations per kNN query.
type KNNScratch struct {
	scored []envDist
}

type envDist struct {
	env  *Environment
	dist float64
}

// DefineBlendedInto is DefineBlended writing into a caller-owned dst
// environment using scratch instead of allocating. The blended importance is
// bitwise-identical to DefineBlended's: the same selection sort (strict <,
// earlier index wins ties) orders the candidates, and the inverse-distance
// accumulation visits them in the same nearest-first order. dst's buffers are
// grown once and reused afterwards.
func (s *EnvironmentStore) DefineBlendedInto(z []float64, k int, dst *Environment, scratch *KNNScratch) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.entries) == 0 {
		return ErrEmptyStore
	}
	if len(z) != len(s.entries[0].Signature) {
		return fmt.Errorf("core: signature length %d, want %d",
			len(z), len(s.entries[0].Signature))
	}
	if k < 1 {
		k = 1
	}
	all := scratch.scored[:0]
	for _, e := range s.entries {
		all = append(all, envDist{env: e, dist: mathx.EuclideanDistance(z, e.Signature)})
	}
	scratch.scored = all
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].dist < all[best].dist {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	if k == 1 {
		// Degenerate to Define: copy the single nearest entry verbatim.
		e := all[0].env
		dst.Importance = append(dst.Importance[:0], e.Importance...)
		dst.Capacity = append(dst.Capacity[:0], e.Capacity...)
		dst.Signature = append(dst.Signature[:0], e.Signature...)
		return nil
	}
	n := len(all[0].env.Importance)
	if cap(dst.Importance) < n {
		dst.Importance = make([]float64, n)
	}
	imp := dst.Importance[:n]
	for i := range imp {
		imp[i] = 0
	}
	var wsum float64
	for i := 0; i < k; i++ {
		e := all[i].env
		d := mathx.EuclideanDistance(z, e.Signature)
		w := 1 / (d + 1e-9)
		wsum += w
		for j, v := range e.Importance {
			imp[j] += w * v
		}
	}
	for i := range imp {
		imp[i] /= wsum
	}
	dst.Importance = imp
	dst.Capacity = append(dst.Capacity[:0], all[0].env.Capacity...)
	dst.Signature = append(dst.Signature[:0], z...)
	return nil
}
