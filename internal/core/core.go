// Package core implements the paper's primary contribution: the TATIM
// problem (task allocation with task importance for MTL on the edge,
// Definitions 2–4), its environment-dynamic allocation MDP (§III-D), the
// historical-environment store with kNN environment definition (§III-C), and
// the Clustered Reinforcement Learning model of Algorithm 1.
package core

import (
	"errors"
	"fmt"

	"repro/internal/knapsack"
)

// Common errors.
var (
	// ErrBadProblem is returned for malformed TATIM instances.
	ErrBadProblem = errors.New("core: invalid TATIM problem")
	// ErrEmptyStore is returned when environment definition has no history.
	ErrEmptyStore = errors.New("core: empty environment store")
	// ErrNotTrained is returned when predicting with an untrained model.
	ErrNotTrained = errors.New("core: model not trained")
)

// TaskSpec is one allocatable task j with the quantities of Eqs. (2)–(4).
type TaskSpec struct {
	// ID is the dense task index.
	ID int
	// Importance is I_j ∈ [0, 1].
	Importance float64
	// TimeCost is t_j, the execution time consumed on a processor.
	TimeCost float64
	// Resource is v_j, the resource demand.
	Resource float64
	// InputBits is the task's input data size (drives transmission time in
	// the edge simulator; not a knapsack constraint).
	InputBits float64
}

// Processor is one edge processor p.
type Processor struct {
	// ID is the dense processor index.
	ID int
	// Capacity is V_p, the resource capacity of Eq. (4).
	Capacity float64
	// SpeedFactor scales effective execution time (1 = nominal); the
	// knapsack abstraction uses nominal t_j, while the edge simulator
	// divides by this factor.
	SpeedFactor float64
}

// Problem is a TATIM instance (Definition 4).
type Problem struct {
	Tasks      []TaskSpec
	Processors []Processor
	// TimeLimit is T of Eq. (3), shared by all processors.
	TimeLimit float64
}

// Unassigned marks a task left off every processor. Dropping unimportant
// tasks is the mechanism by which importance-aware allocation saves
// resources (§II-B).
const Unassigned = -1

// Allocation is the task-allocation matrix u flattened to one processor
// index (or Unassigned) per task, valid because Eq. (2) admits at most one
// processor per task.
type Allocation []int

// Validate checks the problem's well-formedness.
func (p *Problem) Validate() error {
	if len(p.Tasks) == 0 {
		return fmt.Errorf("no tasks: %w", ErrBadProblem)
	}
	if len(p.Processors) == 0 {
		return fmt.Errorf("no processors: %w", ErrBadProblem)
	}
	if p.TimeLimit <= 0 {
		return fmt.Errorf("time limit %.3f: %w", p.TimeLimit, ErrBadProblem)
	}
	for i, t := range p.Tasks {
		if t.ID != i {
			return fmt.Errorf("task %d has ID %d: %w", i, t.ID, ErrBadProblem)
		}
		if t.Importance < 0 || t.Importance > 1 {
			return fmt.Errorf("task %d importance %.3f: %w", i, t.Importance, ErrBadProblem)
		}
		if t.TimeCost < 0 || t.Resource < 0 {
			return fmt.Errorf("task %d negative cost: %w", i, ErrBadProblem)
		}
	}
	for i, pr := range p.Processors {
		if pr.ID != i {
			return fmt.Errorf("processor %d has ID %d: %w", i, pr.ID, ErrBadProblem)
		}
		if pr.Capacity < 0 {
			return fmt.Errorf("processor %d capacity %.3f: %w", i, pr.Capacity, ErrBadProblem)
		}
	}
	return nil
}

// ToKnapsack maps the TATIM instance to the MCMK instance of Theorem 1:
// tasks→items (importance→value, time→weight, resource→volume) and
// processors→sacks (T→weight cap, V_p→volume cap).
func (p *Problem) ToKnapsack() *knapsack.Instance {
	items := make([]knapsack.Item, len(p.Tasks))
	for i, t := range p.Tasks {
		items[i] = knapsack.Item{Value: t.Importance, Weight: t.TimeCost, Volume: t.Resource}
	}
	sacks := make([]knapsack.Sack, len(p.Processors))
	for i, pr := range p.Processors {
		sacks[i] = knapsack.Sack{WeightCap: p.TimeLimit, VolumeCap: pr.Capacity}
	}
	return &knapsack.Instance{Items: items, Sacks: sacks}
}

// Objective is the TATIM objective Σ_j Σ_p I_j·u_{j,p} for an allocation.
func (p *Problem) Objective(a Allocation) float64 {
	var v float64
	for j, proc := range a {
		if proc != Unassigned && j < len(p.Tasks) {
			v += p.Tasks[j].Importance
		}
	}
	return v
}

// CheckFeasible verifies Eqs. (2)–(4) for an allocation.
func (p *Problem) CheckFeasible(a Allocation) error {
	if len(a) != len(p.Tasks) {
		return fmt.Errorf("allocation length %d vs %d tasks: %w", len(a), len(p.Tasks), ErrBadProblem)
	}
	usedT := make([]float64, len(p.Processors))
	usedV := make([]float64, len(p.Processors))
	for j, proc := range a {
		if proc == Unassigned {
			continue
		}
		if proc < 0 || proc >= len(p.Processors) {
			return fmt.Errorf("task %d on processor %d: %w", j, proc, ErrBadProblem)
		}
		usedT[proc] += p.Tasks[j].TimeCost
		usedV[proc] += p.Tasks[j].Resource
	}
	const eps = 1e-9
	for i := range p.Processors {
		if usedT[i] > p.TimeLimit+eps {
			return fmt.Errorf("processor %d time %.4f > T=%.4f: %w",
				i, usedT[i], p.TimeLimit, ErrBadProblem)
		}
		if usedV[i] > p.Processors[i].Capacity+eps {
			return fmt.Errorf("processor %d resource %.4f > V=%.4f: %w",
				i, usedV[i], p.Processors[i].Capacity, ErrBadProblem)
		}
	}
	return nil
}

// SolveGreedy solves the TATIM instance with the density-greedy MCMK
// heuristic, returning a feasible allocation.
func (p *Problem) SolveGreedy() (Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sol, err := knapsack.SolveGreedy(p.ToKnapsack())
	if err != nil {
		return nil, fmt.Errorf("greedy: %w", err)
	}
	return Allocation(sol.Assignment), nil
}

// SolveExact solves small TATIM instances optimally via branch-and-bound.
func (p *Problem) SolveExact() (Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sol, err := knapsack.SolveExact(p.ToKnapsack())
	if err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	return Allocation(sol.Assignment), nil
}

// TotalImportance is Σ_j I_j over all tasks (assigned or not).
func (p *Problem) TotalImportance() float64 {
	var v float64
	for _, t := range p.Tasks {
		v += t.Importance
	}
	return v
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	out := &Problem{TimeLimit: p.TimeLimit}
	out.Tasks = append([]TaskSpec(nil), p.Tasks...)
	out.Processors = append([]Processor(nil), p.Processors...)
	return out
}
