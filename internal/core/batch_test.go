package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mathx"
	"repro/internal/rl"
)

// randomCRLFixture builds a randomized template/store pair (task count,
// processor count, store size and contents all drawn from rng) and trains a
// small CRL on it. Batch equivalence must hold for every problem shape, not
// just the shared fixture's.
func randomCRLFixture(t *testing.T, rng *rand.Rand) *CRL {
	t.Helper()
	n := 4 + rng.Intn(6)  // tasks
	m := 2 + rng.Intn(3)  // processors
	entries := 8 + rng.Intn(24)
	p := &Problem{TimeLimit: 2 + rng.Float64()*2}
	for j := 0; j < n; j++ {
		p.Tasks = append(p.Tasks, TaskSpec{
			ID: j, TimeCost: 0.5 + rng.Float64(), Resource: 0.2 + rng.Float64()*0.6,
		})
	}
	for i := 0; i < m; i++ {
		p.Processors = append(p.Processors, Processor{
			ID: i, Capacity: 0.8 + rng.Float64(), SpeedFactor: 0.5 + rng.Float64(),
		})
	}
	store := NewEnvironmentStore()
	for e := 0; e < entries; e++ {
		z := rng.Float64()
		caps := make([]float64, m)
		for i := range caps {
			caps[i] = 0.8 + rng.Float64()
		}
		if err := store.Add(&Environment{
			Importance: fixtureImportance(n, z),
			Capacity:   caps,
			Signature:  []float64{z},
		}); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultCRLConfig()
	cfg.Episodes = 40
	cfg.DQN = rl.DQNConfig{
		Hidden:      []int{24},
		Epsilon:     rl.EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 200},
		WarmupSteps: 16,
		Seed:        rng.Int63n(1 << 30),
	}
	crl, err := NewCRL(p, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crl.Train(); err != nil {
		t.Fatal(err)
	}
	return crl
}

// TestPredictBatchMatchesSequential is the coalescer's load-bearing property:
// rolling B environments through one PredictBatchInto call returns exactly —
// bitwise — the allocations of B separate batch-of-1 calls, for every batch
// size the serving layer can form. If this breaks, request coalescing changes
// answers and the whole warm path is wrong.
func TestPredictBatchMatchesSequential(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("world%d", trial), func(t *testing.T) {
			rng := mathx.NewRand(int64(1000 + 37*trial))
			crl := randomCRLFixture(t, rng)
			// A second, independently-scratched replica answers the solo
			// calls, so agreement proves batch composition is invisible —
			// not just that one scratch is self-consistent.
			solo, err := crl.Clone()
			if err != nil {
				t.Fatal(err)
			}
			var scratch KNNScratch
			for _, b := range []int{1, 2, 3, 4, 7, 8, 13, 16, 27, 32} {
				envs := make([]*Environment, b)
				for i := range envs {
					env := &Environment{}
					if err := crl.DefineEnvironmentInto(
						[]float64{rng.Float64()}, env, &scratch); err != nil {
						t.Fatal(err)
					}
					envs[i] = env
				}
				batched := make([]Allocation, b)
				if err := crl.PredictBatchInto(envs, batched); err != nil {
					t.Fatalf("batch %d: %v", b, err)
				}
				for i := range envs {
					one := make([]Allocation, 1)
					if err := solo.PredictBatchInto(envs[i:i+1], one); err != nil {
						t.Fatalf("batch %d solo %d: %v", b, i, err)
					}
					if len(batched[i]) != len(one[0]) {
						t.Fatalf("batch %d env %d: len %d vs solo %d",
							b, i, len(batched[i]), len(one[0]))
					}
					for j := range one[0] {
						if batched[i][j] != one[0][j] {
							t.Fatalf("batch %d env %d task %d: batched %d, solo %d",
								b, i, j, batched[i][j], one[0][j])
						}
					}
				}
			}
		})
	}
}

// TestPredictBatchReusesOutputBuffers pins the zero-allocation contract: a
// second call with the same out slice must append into the existing backing
// arrays rather than allocating fresh ones.
func TestPredictBatchReusesOutputBuffers(t *testing.T) {
	rng := mathx.NewRand(5)
	crl := randomCRLFixture(t, rng)
	var scratch KNNScratch
	env := &Environment{}
	if err := crl.DefineEnvironmentInto([]float64{0.5}, env, &scratch); err != nil {
		t.Fatal(err)
	}
	envs := []*Environment{env}
	out := make([]Allocation, 1)
	if err := crl.PredictBatchInto(envs, out); err != nil {
		t.Fatal(err)
	}
	first := &out[0][0]
	if err := crl.PredictBatchInto(envs, out); err != nil {
		t.Fatal(err)
	}
	if &out[0][0] != first {
		t.Fatal("second batch call reallocated the output backing array")
	}
}

// TestPredictBatchErrors covers the guard rails around the batch entry point.
func TestPredictBatchErrors(t *testing.T) {
	p, store := storeFixture(t, 4, 2, 5)
	crl, err := NewCRL(p, store, DefaultCRLConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := &Environment{Importance: []float64{1, 0, 0, 1}, Capacity: []float64{1, 1}}
	if err := crl.PredictBatchInto([]*Environment{env}, make([]Allocation, 1)); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("untrained err = %v", err)
	}
	rng := mathx.NewRand(9)
	trained := randomCRLFixture(t, rng)
	if err := trained.PredictBatchInto(nil, nil); err != nil {
		t.Fatalf("empty batch err = %v", err)
	}
	var scratch KNNScratch
	good := &Environment{}
	if err := trained.DefineEnvironmentInto([]float64{0.2}, good, &scratch); err != nil {
		t.Fatal(err)
	}
	if err := trained.PredictBatchInto([]*Environment{good, good}, make([]Allocation, 1)); err == nil {
		t.Fatal("short out slice accepted")
	}
	bad := &Environment{Importance: []float64{1}, Capacity: good.Capacity}
	if err := trained.PredictBatchInto([]*Environment{bad}, make([]Allocation, 1)); err == nil {
		t.Fatal("mismatched environment accepted")
	}
}
