package core

import (
	"errors"
	"testing"

	"repro/internal/rl"
)

// fastCRL builds a small CRL over the shared store fixture with an
// inexpensive DQN, optionally tweaking the config first.
func fastCRL(t *testing.T, mutate func(*CRLConfig)) *CRL {
	t.Helper()
	p, store := storeFixture(t, 6, 2, 10)
	cfg := DefaultCRLConfig()
	cfg.Episodes = 40
	cfg.DQN = rl.DQNConfig{
		Hidden:      []int{16},
		Epsilon:     rl.EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 200},
		WarmupSteps: 16,
		BatchSize:   8,
		Seed:        7,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	crl, err := NewCRL(p, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return crl
}

func TestPlateaued(t *testing.T) {
	flat := []float64{1, 1, 1, 1, 1, 1}
	if !plateaued(flat, 3, 0.01) {
		t.Fatal("flat returns should plateau")
	}
	rising := []float64{1, 1, 1, 2, 2, 2}
	if plateaued(rising, 3, 0.01) {
		t.Fatal("doubling returns should not plateau")
	}
	// Fewer than 2·window rewards can never plateau.
	if plateaued([]float64{1, 1, 1, 1, 1}, 3, 0.01) {
		t.Fatal("five rewards cannot fill two windows of three")
	}
	// Near-zero baseline: the epsilon denominator guard must not divide by 0.
	if plateaued([]float64{0, 0, 0, 1, 1, 1}, 3, 0.01) {
		t.Fatal("improvement from zero should not plateau")
	}
}

// TestTrainEarlyStopNeverBeforeFloor: with a plateau detector armed from the
// very first comparable window, the MinEpisodes floor must still hold — and
// when the run does stop early, the result says so.
func TestTrainEarlyStopNeverBeforeFloor(t *testing.T) {
	const floor = 12
	crl := fastCRL(t, func(cfg *CRLConfig) {
		cfg.StopWindow = 2
		cfg.StopEpsilon = 10 // everything counts as a plateau
		cfg.MinEpisodes = floor
	})
	res, err := crl.Train()
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != rl.StopPlateau {
		t.Fatalf("stop reason = %q, want plateau with eps=10", res.StopReason)
	}
	if res.Episodes < floor {
		t.Fatalf("stopped after %d episodes, floor is %d", res.Episodes, floor)
	}
	if res.Episodes != floor {
		t.Fatalf("an always-true plateau should fire exactly at the floor, got %d", res.Episodes)
	}
}

// TestTrainEarlyStopDisabled: StopWindow = 0 spends the whole budget.
func TestTrainEarlyStopDisabled(t *testing.T) {
	crl := fastCRL(t, nil)
	res, err := crl.Train()
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != rl.StopBudget || res.Episodes != 40 {
		t.Fatalf("no-stop run: %d episodes, reason %q; want 40/budget",
			res.Episodes, res.StopReason)
	}
}

// TestTrainInterrupt: the cooperative interrupt ends the run after the
// current episode and reports StopInterrupted — the speculative pre-trainer's
// yield contract.
func TestTrainInterrupt(t *testing.T) {
	crl := fastCRL(t, func(cfg *CRLConfig) {
		cfg.Interrupt = func() bool { return true }
	})
	res, err := crl.Train()
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != rl.StopInterrupted {
		t.Fatalf("stop reason = %q, want interrupted", res.StopReason)
	}
	if res.Episodes != 1 {
		t.Fatalf("always-true interrupt should leave exactly the first episode, got %d", res.Episodes)
	}
	if !crl.Trained() {
		t.Fatal("an interrupted model is still trained (partially)")
	}
}

// TestWarmStartFrom checks the transfer contract: an untrained donor is
// refused, a trained donor's policy carries over exactly, and the provenance
// survives snapshot round trips.
func TestWarmStartFrom(t *testing.T) {
	donor := fastCRL(t, nil)
	fresh := fastCRL(t, nil)
	if err := fresh.WarmStartFrom(nil, WarmStart{}); err == nil {
		t.Fatal("nil donor accepted")
	}
	if err := fresh.WarmStartFrom(donor, WarmStart{}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("untrained donor err = %v", err)
	}
	if _, err := donor.Train(); err != nil {
		t.Fatal(err)
	}

	info := WarmStart{Source: 4, Distance: 0.25}
	if err := fresh.WarmStartFrom(donor, info); err != nil {
		t.Fatal(err)
	}
	got := fresh.WarmStarted()
	if got == nil || *got != info {
		t.Fatalf("provenance = %+v, want %+v", got, info)
	}
	if donor.WarmStarted() != nil {
		t.Fatal("donor must not inherit the recipient's provenance")
	}

	// Before any fine-tuning the recipient's greedy policy IS the donor's.
	fresh.trained = true
	for _, z := range []float64{0.1, 0.6, 0.9} {
		a1, _, err := donor.Predict([]float64{z})
		if err != nil {
			t.Fatal(err)
		}
		a2, _, err := fresh.Predict([]float64{z})
		if err != nil {
			t.Fatal(err)
		}
		for j := range a1 {
			if a1[j] != a2[j] {
				t.Fatalf("z=%v: transferred allocation differs at task %d", z, j)
			}
		}
	}

	// Snapshot round trip keeps the lineage; scratch models stay lineage-free.
	data, err := fresh.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadCRL(data, fresh.store)
	if err != nil {
		t.Fatal(err)
	}
	if ws := restored.WarmStarted(); ws == nil || *ws != info {
		t.Fatalf("restored provenance = %+v, want %+v", ws, info)
	}
	scratch, err := donor.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := LoadCRL(scratch, donor.store)
	if err != nil {
		t.Fatal(err)
	}
	if plain.WarmStarted() != nil {
		t.Fatal("scratch-trained snapshot grew a warm-start provenance")
	}
}
