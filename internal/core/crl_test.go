package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/rl"
)

// fixtureImportance is the synthetic context→importance law shared by the
// store fixtures: low z favours low-index tasks, high z the high-index ones.
func fixtureImportance(n int, z float64) []float64 {
	imp := make([]float64, n)
	center := z * float64(n-1)
	for j := range imp {
		d := math.Abs(float64(j) - center)
		imp[j] = math.Exp(-d * d / 4)
	}
	return imp
}

// storeFixture builds a problem template plus a store of environments whose
// importance depends on a 1-D signature: signature z makes the "z-ish" half
// of the tasks important.
func storeFixture(t *testing.T, n, m, entries int) (*Problem, *EnvironmentStore) {
	t.Helper()
	rng := mathx.NewRand(42)
	p := &Problem{TimeLimit: 3}
	for j := 0; j < n; j++ {
		p.Tasks = append(p.Tasks, TaskSpec{
			ID: j, TimeCost: 1, Resource: 0.5,
		})
	}
	for i := 0; i < m; i++ {
		p.Processors = append(p.Processors, Processor{ID: i, Capacity: 1, SpeedFactor: 1})
	}
	store := NewEnvironmentStore()
	for e := 0; e < entries; e++ {
		z := rng.Float64() // scenario knob in [0,1]
		imp := fixtureImportance(n, z)
		caps := make([]float64, m)
		for i := range caps {
			caps[i] = 1
		}
		if err := store.Add(&Environment{
			Importance: imp, Capacity: caps, Signature: []float64{z},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return p, store
}

func TestEnvironmentStoreBasics(t *testing.T) {
	store := NewEnvironmentStore()
	if _, err := store.Define([]float64{1}); !errors.Is(err, ErrEmptyStore) {
		t.Fatalf("empty store err = %v", err)
	}
	if err := store.Add(nil); err == nil {
		t.Fatal("nil env accepted")
	}
	e1 := &Environment{Importance: []float64{1}, Capacity: []float64{1}, Signature: []float64{0}}
	e2 := &Environment{Importance: []float64{0.5}, Capacity: []float64{1}, Signature: []float64{10}}
	if err := store.Add(e1); err != nil {
		t.Fatal(err)
	}
	if err := store.Add(e2); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("Len = %d", store.Len())
	}
	// Dimension mismatch rejected.
	if err := store.Add(&Environment{
		Importance: []float64{1, 2}, Capacity: []float64{1}, Signature: []float64{0},
	}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	got, err := store.Define([]float64{9})
	if err != nil {
		t.Fatal(err)
	}
	if got != e2 {
		t.Fatal("Define picked the wrong neighbor")
	}
	if _, err := store.Define([]float64{1, 2}); err == nil {
		t.Fatal("bad signature length accepted")
	}
	nearest, err := store.Nearest([]float64{0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nearest) != 2 || nearest[0] != e1 {
		t.Fatalf("Nearest = %v", nearest)
	}
}

func TestDefineBlended(t *testing.T) {
	store := NewEnvironmentStore()
	mk := func(imp, z float64) *Environment {
		return &Environment{
			Importance: []float64{imp}, Capacity: []float64{1}, Signature: []float64{z},
		}
	}
	if err := store.Add(mk(0.0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := store.Add(mk(1.0, 1)); err != nil {
		t.Fatal(err)
	}
	blend, err := store.DefineBlended([]float64{0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if blend.Importance[0] <= 0.2 || blend.Importance[0] >= 0.8 {
		t.Fatalf("blend at midpoint = %v, want interior mix", blend.Importance[0])
	}
	// k=1 degenerates to nearest.
	one, err := store.DefineBlended([]float64{0.9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Importance[0] != 1.0 {
		t.Fatalf("k=1 blend = %v, want nearest (1.0)", one.Importance[0])
	}
}

func crlFixture(t *testing.T) *CRL {
	t.Helper()
	p, store := storeFixture(t, 6, 2, 30)
	cfg := DefaultCRLConfig()
	cfg.Episodes = 120
	cfg.DQN = rl.DQNConfig{
		Hidden:      []int{32},
		Epsilon:     rl.EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 600},
		WarmupSteps: 32,
		Seed:        7,
	}
	crl, err := NewCRL(p, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return crl
}

func TestCRLTrainAndPredict(t *testing.T) {
	crl := crlFixture(t)
	if _, _, err := crl.Predict([]float64{0.5}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("untrained predict err = %v", err)
	}
	res, err := crl.Train()
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 120 || res.TotalSteps == 0 {
		t.Fatalf("train result %+v", res)
	}
	if !crl.Trained() {
		t.Fatal("Trained() false after Train")
	}
	alloc, env, err := crl.Predict([]float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	if env == nil || len(alloc) != 6 {
		t.Fatalf("predict outputs: %v %v", alloc, env)
	}
	// Prediction must be feasible for the realized problem.
	prob, err := crl.problemFor(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.CheckFeasible(alloc); err != nil {
		t.Fatalf("CRL allocation infeasible: %v", err)
	}
}

func TestCRLBeatsRandomAllocation(t *testing.T) {
	crl := crlFixture(t)
	if _, err := crl.Train(); err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRand(3)
	var crlSum, rndSum float64
	queries := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	for _, z := range queries {
		alloc, env, err := crl.Predict([]float64{z})
		if err != nil {
			t.Fatal(err)
		}
		prob, err := crl.problemFor(env)
		if err != nil {
			t.Fatal(err)
		}
		crlSum += prob.Objective(alloc)
		// Random baseline on the same problem: random feasible rollout.
		ae, err := NewAllocEnv(prob, nil)
		if err != nil {
			t.Fatal(err)
		}
		ae.Reset()
		for {
			valid := ae.ValidActions()
			if len(valid) == 0 {
				break
			}
			if _, _, done, err := ae.Step(valid[rng.Intn(len(valid))]); err != nil {
				t.Fatal(err)
			} else if done {
				break
			}
		}
		rndSum += prob.Objective(ae.Allocation())
	}
	if !(crlSum > rndSum) {
		t.Fatalf("CRL %.3f should beat random %.3f on defined environments", crlSum, rndSum)
	}
}

func TestCRLTaskScores(t *testing.T) {
	crl := crlFixture(t)
	if _, _, err := crl.TaskScores([]float64{0.5}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("untrained scores err = %v", err)
	}
	if _, err := crl.Train(); err != nil {
		t.Fatal(err)
	}
	scores, env, err := crl.TaskScores([]float64{0.8})
	if err != nil {
		t.Fatal(err)
	}
	if env == nil || len(scores) != 6 {
		t.Fatalf("scores = %v", scores)
	}
	for i, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v outside [0,1]", i, s)
		}
	}
}

func TestNewCRLValidation(t *testing.T) {
	p, store := storeFixture(t, 4, 2, 5)
	bad := p.Clone()
	bad.TimeLimit = 0
	if _, err := NewCRL(bad, store, DefaultCRLConfig()); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("bad template err = %v", err)
	}
	if _, err := NewCRL(p, NewEnvironmentStore(), DefaultCRLConfig()); !errors.Is(err, ErrEmptyStore) {
		t.Fatalf("empty store err = %v", err)
	}
	// Mismatched environment dimensionality surfaces at problemFor time.
	crl, err := NewCRL(p, store, DefaultCRLConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crl.problemFor(&Environment{
		Importance: []float64{1}, Capacity: []float64{1},
	}); err == nil {
		t.Fatal("mismatched environment accepted")
	}
}

func TestCRLPredictWithEnvironment(t *testing.T) {
	crl := crlFixture(t)
	if _, err := crl.Train(); err != nil {
		t.Fatal(err)
	}
	imp := []float64{1, 0, 0, 0, 0, 1}
	env := &Environment{Importance: imp, Capacity: []float64{1, 1}, Signature: []float64{0.5}}
	alloc, err := crl.PredictWithEnvironment(env)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := crl.problemFor(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.CheckFeasible(alloc); err != nil {
		t.Fatal(err)
	}
}

func TestCRLPersistence(t *testing.T) {
	crl := crlFixture(t)
	if _, err := crl.Train(); err != nil {
		t.Fatal(err)
	}
	data, err := crl.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadCRL(data, crl.store)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Trained() {
		t.Fatal("restored model should be trained")
	}
	// The restored policy must reproduce the original's predictions.
	for _, z := range []float64{0.1, 0.5, 0.9} {
		a1, _, err := crl.Predict([]float64{z})
		if err != nil {
			t.Fatal(err)
		}
		a2, _, err := restored.Predict([]float64{z})
		if err != nil {
			t.Fatal(err)
		}
		for j := range a1 {
			if a1[j] != a2[j] {
				t.Fatalf("z=%v: restored allocation differs at task %d", z, j)
			}
		}
	}
	// Error paths.
	if _, err := LoadCRL(data, NewEnvironmentStore()); !errors.Is(err, ErrEmptyStore) {
		t.Fatalf("empty store err = %v", err)
	}
	if _, err := LoadCRL([]byte("not json"), crl.store); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := LoadCRL([]byte(`{"trained":true}`), crl.store); err == nil {
		t.Fatal("missing template accepted")
	}
}

// TestCRLCloneReplicas verifies Clone produces independent inference
// replicas: identical predictions, and (under -race) safe concurrent
// rollouts when each goroutine owns its own clone — the serving layer's
// replica-pool contract.
func TestCRLCloneReplicas(t *testing.T) {
	crl := crlFixture(t)
	if _, err := crl.Train(); err != nil {
		t.Fatal(err)
	}
	want, _, err := crl.Predict([]float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	const replicas = 4
	var wg sync.WaitGroup
	errs := make(chan error, replicas)
	for r := 0; r < replicas; r++ {
		clone, err := crl.Clone()
		if err != nil {
			t.Fatal(err)
		}
		if !clone.Trained() {
			t.Fatal("clone lost trained flag")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				got, _, err := clone.Predict([]float64{0.4})
				if err != nil {
					errs <- err
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs <- fmt.Errorf("clone allocation differs at task %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCRLConvergesTowardOptimal is the §III-D convergence analysis: on a
// small, FIXED environment (stationary MDP), a well-trained policy's greedy
// allocation should approach the branch-and-bound optimum.
func TestCRLConvergesTowardOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence training is slow")
	}
	// 5 tasks, 2 processors, a single environment in the store.
	p := &Problem{TimeLimit: 2}
	imp := []float64{0.9, 0.7, 0.5, 0.1, 0.05}
	for j := 0; j < 5; j++ {
		p.Tasks = append(p.Tasks, TaskSpec{ID: j, TimeCost: 1, Resource: 0.5})
	}
	for i := 0; i < 2; i++ {
		p.Processors = append(p.Processors, Processor{ID: i, Capacity: 1, SpeedFactor: 1})
	}
	store := NewEnvironmentStore()
	if err := store.Add(&Environment{
		Importance: imp, Capacity: []float64{1, 1}, Signature: []float64{0},
	}); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCRLConfig()
	cfg.Episodes = 400
	cfg.K = 1
	cfg.Blend = false
	cfg.DQN = rl.DQNConfig{
		Hidden:      []int{32},
		Epsilon:     rl.EpsilonSchedule{Start: 1, End: 0.02, DecaySteps: 1500},
		WarmupSteps: 32,
		Seed:        11,
	}
	crl, err := NewCRL(p, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crl.Train(); err != nil {
		t.Fatal(err)
	}
	allocation, env, err := crl.Predict([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	realized, err := crl.problemFor(env)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := realized.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	got, want := realized.Objective(allocation), realized.Objective(exact)
	if want <= 0 {
		t.Fatal("degenerate optimum")
	}
	if ratio := got / want; ratio < 0.9 {
		t.Fatalf("trained policy captures %.0f%% of optimum (%v vs %v)",
			ratio*100, got, want)
	}
}

// Property: any sequence of valid actions keeps the allocation feasible and
// the episode terminates.
func TestAllocEnvFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed%1000 + 1)
		n := 3 + rng.Intn(8)
		m := 1 + rng.Intn(3)
		p := &Problem{TimeLimit: 1 + rng.Float64()*3}
		for j := 0; j < n; j++ {
			p.Tasks = append(p.Tasks, TaskSpec{
				ID:         j,
				Importance: rng.Float64(),
				TimeCost:   0.2 + rng.Float64(),
				Resource:   rng.Float64(),
			})
		}
		for i := 0; i < m; i++ {
			p.Processors = append(p.Processors, Processor{
				ID: i, Capacity: 0.5 + rng.Float64()*2, SpeedFactor: 0.5 + rng.Float64(),
			})
		}
		env, err := NewAllocEnv(p, nil)
		if err != nil {
			return false
		}
		env.Reset()
		for steps := 0; steps < n*m+m+2; steps++ {
			valid := env.ValidActions()
			if len(valid) == 0 {
				break
			}
			if _, _, done, err := env.Step(valid[rng.Intn(len(valid))]); err != nil {
				return false
			} else if done {
				break
			}
		}
		return p.CheckFeasible(env.Allocation()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
