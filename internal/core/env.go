package core

import (
	"fmt"
	"sort"

	"repro/internal/rl"
)

// Environment is the RL environment matrix of §III-D,
// e = [I_j × V_p]_{N×M}, together with the raw quantities needed to rebuild
// an allocation problem and the sensing signature Z used for clustering.
type Environment struct {
	// Importance is I per task (length N).
	Importance []float64
	// Capacity is V per processor (length M).
	Capacity []float64
	// Signature is the sensing data Z (current scenario and configuration
	// settings) the kNN environment definition clusters on.
	Signature []float64
}

// Matrix materializes e = [I_j × V_p], row-major tasks × processors, with
// capacities normalized by their maximum so inputs stay in [0, 1].
func (e *Environment) Matrix() []float64 {
	n, m := len(e.Importance), len(e.Capacity)
	maxCap := 0.0
	for _, c := range e.Capacity {
		if c > maxCap {
			maxCap = c
		}
	}
	if maxCap == 0 {
		maxCap = 1
	}
	out := make([]float64, n*m)
	for j := 0; j < n; j++ {
		for p := 0; p < m; p++ {
			out[j*m+p] = e.Importance[j] * (e.Capacity[p] / maxCap)
		}
	}
	return out
}

// EnvironmentOf extracts the Environment of a TATIM problem with the given
// sensing signature.
func EnvironmentOf(p *Problem, signature []float64) *Environment {
	imp := make([]float64, len(p.Tasks))
	for i, t := range p.Tasks {
		imp[i] = t.Importance
	}
	caps := make([]float64, len(p.Processors))
	for i, pr := range p.Processors {
		caps[i] = pr.Capacity
	}
	sig := make([]float64, len(signature))
	copy(sig, signature)
	return &Environment{Importance: imp, Capacity: caps, Signature: sig}
}

// AllocEnv is the allocation episode MDP of §III-D implemented as an
// rl.Environment:
//
//   - state: the N×M binary selection matrix S (flattened), concatenated
//     with the environment matrix e so one policy generalizes across
//     environments (the paper's feature space X = (e, s₀));
//   - actions: one task per time step ("we allow the agent to execute merely
//     one action in each time step"), assigned to the episode's current
//     processor, plus one skip action that advances to the next processor —
//     keeping the action space linear instead of 2^(N×M);
//   - reward: Σ_j I_j of all allocated tasks, granted only at the terminal
//     state, 0 otherwise (§III-D "Reward Function").
type AllocEnv struct {
	problem *Problem
	env     *Environment
	// DenseReward switches to per-step rewards (ablation of the paper's
	// terminal-only design).
	DenseReward bool

	envMatrix []float64
	state     []float64 // selection matrix S, length N*M
	assigned  []int     // task → processor or Unassigned
	remTime   []float64
	remRes    []float64
	// procOrder visits processors fastest-first: the operator fills the
	// most capable node before advancing, so skipping early costs the most
	// valuable capacity — a natural curriculum for the agent.
	procOrder []int
	current   int // index into procOrder
	done      bool
}

// NewAllocEnv builds the MDP for one TATIM problem.
func NewAllocEnv(p *Problem, signature []float64) (*AllocEnv, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &AllocEnv{
		problem: p,
		env:     EnvironmentOf(p, signature),
	}
	e.envMatrix = e.env.Matrix()
	e.procOrder = make([]int, len(p.Processors))
	for i := range e.procOrder {
		e.procOrder[i] = i
	}
	sort.SliceStable(e.procOrder, func(a, b int) bool {
		return p.Processors[e.procOrder[a]].SpeedFactor > p.Processors[e.procOrder[b]].SpeedFactor
	})
	e.Reset()
	return e, nil
}

// N returns the task count.
func (e *AllocEnv) N() int { return len(e.problem.Tasks) }

// M returns the processor count.
func (e *AllocEnv) M() int { return len(e.problem.Processors) }

// SkipAction is the action index that advances to the next processor.
func (e *AllocEnv) SkipAction() int { return e.N() }

// Reset starts a fresh episode. Internal episode buffers are reused across
// resets (nothing outside the env aliases them — encode and Allocation both
// copy), so per-episode setup is allocation-free after the first call.
func (e *AllocEnv) Reset() []float64 {
	e.reset()
	return e.encode()
}

// reset reinitializes the episode state in place.
func (e *AllocEnv) reset() {
	n, m := e.N(), e.M()
	if len(e.state) != n*m {
		e.state = make([]float64, n*m)
		e.assigned = make([]int, n)
		e.remTime = make([]float64, m)
		e.remRes = make([]float64, m)
	}
	for i := range e.state {
		e.state[i] = 0
	}
	for i := range e.assigned {
		e.assigned[i] = Unassigned
	}
	for i, pr := range e.problem.Processors {
		e.remTime[i] = e.problem.TimeLimit
		e.remRes[i] = pr.Capacity
	}
	e.current = 0
	e.done = false
}

// Reinit rebinds the env to a new importance vector and starts a fresh
// episode, all in place: the owned problem's task importances are overwritten
// (clamped to [0,1], matching CRL.problemFor) and the environment matrix is
// recomputed into its existing buffer. The problem structure (costs,
// processors, time limit) is unchanged, so a pooled inference lane serves any
// request against the same template without per-request allocation. The
// sensing signature is not part of the state encoding and is left alone.
func (e *AllocEnv) Reinit(importance []float64) error {
	n, m := e.N(), e.M()
	if len(importance) != n {
		return fmt.Errorf("core: reinit with %d importances for %d tasks", len(importance), n)
	}
	for j := range e.problem.Tasks {
		v := importance[j]
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		e.problem.Tasks[j].Importance = v
		e.env.Importance[j] = v
	}
	maxCap := 0.0
	for _, c := range e.env.Capacity {
		if c > maxCap {
			maxCap = c
		}
	}
	if maxCap == 0 {
		maxCap = 1
	}
	for j := 0; j < n; j++ {
		for p := 0; p < m; p++ {
			e.envMatrix[j*m+p] = e.env.Importance[j] * (e.env.Capacity[p] / maxCap)
		}
	}
	e.reset()
	return nil
}

// StateSize is N*M (selection matrix) + N*M (environment matrix).
func (e *AllocEnv) StateSize() int { return 2 * e.N() * e.M() }

// ActionSize is N tasks + 1 skip.
func (e *AllocEnv) ActionSize() int { return e.N() + 1 }

func (e *AllocEnv) encode() []float64 {
	out := make([]float64, e.StateSize())
	e.StateInto(out)
	return out
}

// StateInto writes the current state encoding (selection matrix ++
// environment matrix) into dst, which must have length StateSize. The
// allocation-free variant of the encoding Reset/Step return.
func (e *AllocEnv) StateInto(dst []float64) {
	copy(dst, e.state)
	copy(dst[len(e.state):], e.envMatrix)
}

// curProc returns the processor the episode is currently filling.
func (e *AllocEnv) curProc() int { return e.procOrder[e.current] }

// ValidActions lists assignable tasks for the current processor plus skip.
// A finished episode has no valid actions.
func (e *AllocEnv) ValidActions() []int {
	if e.done {
		return nil
	}
	cur := e.curProc()
	var acts []int
	for j, t := range e.problem.Tasks {
		if e.assigned[j] != Unassigned {
			continue
		}
		if t.TimeCost <= e.remTime[cur]+1e-12 && t.Resource <= e.remRes[cur]+1e-12 {
			acts = append(acts, j)
		}
	}
	acts = append(acts, e.SkipAction())
	return acts
}

// ValidActionsInto is ValidActions appending into buf[:0], so steady-state
// batched rollouts reuse one buffer per lane. The action order (ascending
// task index, then skip) matches ValidActions exactly.
func (e *AllocEnv) ValidActionsInto(buf []int) []int {
	buf = buf[:0]
	if e.done {
		return buf
	}
	cur := e.curProc()
	for j, t := range e.problem.Tasks {
		if e.assigned[j] != Unassigned {
			continue
		}
		if t.TimeCost <= e.remTime[cur]+1e-12 && t.Resource <= e.remRes[cur]+1e-12 {
			buf = append(buf, j)
		}
	}
	return append(buf, e.SkipAction())
}

// Step applies an action per the MDP above.
func (e *AllocEnv) Step(action int) ([]float64, float64, bool, error) {
	if e.done {
		return nil, 0, true, rl.ErrEpisodeDone
	}
	reward, err := e.apply(action)
	if err != nil {
		return nil, 0, false, err
	}
	if e.done && !e.DenseReward {
		// Terminal-only reward: Σ I_j over allocated tasks.
		reward = e.problem.Objective(e.assigned)
	}
	return e.encode(), reward, e.done, nil
}

// Apply advances the episode like Step but materializes neither the state
// encoding nor the reward — the batched greedy rollout reads the state via
// StateInto and only needs the final assignment, so the per-step encode
// allocation (and the Objective scan on sparse-reward terminals) is pure
// waste there. Returns whether the episode finished.
func (e *AllocEnv) Apply(action int) (bool, error) {
	if e.done {
		return true, rl.ErrEpisodeDone
	}
	if _, err := e.apply(action); err != nil {
		return false, err
	}
	return e.done, nil
}

// apply mutates the episode per the MDP, returning the dense-reward portion.
func (e *AllocEnv) apply(action int) (float64, error) {
	n, m := e.N(), e.M()
	if action < 0 || action > n {
		return 0, fmt.Errorf("core: action %d out of range [0,%d]", action, n)
	}
	reward := 0.0
	if action == e.SkipAction() {
		e.current++
		if e.current >= m {
			e.done = true
		}
	} else {
		j := action
		cur := e.curProc()
		t := e.problem.Tasks[j]
		if e.assigned[j] != Unassigned {
			return 0, fmt.Errorf("core: task %d already assigned", j)
		}
		if t.TimeCost > e.remTime[cur]+1e-12 || t.Resource > e.remRes[cur]+1e-12 {
			return 0, fmt.Errorf("core: task %d does not fit processor %d", j, cur)
		}
		e.assigned[j] = cur
		e.remTime[cur] -= t.TimeCost
		e.remRes[cur] -= t.Resource
		e.state[j*m+cur] = 1
		if e.DenseReward {
			reward = t.Importance
		}
		if e.allAssigned() {
			e.done = true
		}
	}
	return reward, nil
}

// Done reports whether the episode has terminated.
func (e *AllocEnv) Done() bool { return e.done }

func (e *AllocEnv) allAssigned() bool {
	for _, a := range e.assigned {
		if a == Unassigned {
			return false
		}
	}
	return true
}

// Allocation returns a copy of the current assignment.
func (e *AllocEnv) Allocation() Allocation {
	return e.CopyAllocation(nil)
}

// CopyAllocation appends the current assignment into dst[:0], reusing its
// backing array when it is large enough.
func (e *AllocEnv) CopyAllocation(dst Allocation) Allocation {
	return append(dst[:0], e.assigned...)
}

var _ rl.Environment = (*AllocEnv)(nil)
