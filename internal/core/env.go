package core

import (
	"fmt"
	"sort"

	"repro/internal/rl"
)

// Environment is the RL environment matrix of §III-D,
// e = [I_j × V_p]_{N×M}, together with the raw quantities needed to rebuild
// an allocation problem and the sensing signature Z used for clustering.
type Environment struct {
	// Importance is I per task (length N).
	Importance []float64
	// Capacity is V per processor (length M).
	Capacity []float64
	// Signature is the sensing data Z (current scenario and configuration
	// settings) the kNN environment definition clusters on.
	Signature []float64
}

// Matrix materializes e = [I_j × V_p], row-major tasks × processors, with
// capacities normalized by their maximum so inputs stay in [0, 1].
func (e *Environment) Matrix() []float64 {
	n, m := len(e.Importance), len(e.Capacity)
	maxCap := 0.0
	for _, c := range e.Capacity {
		if c > maxCap {
			maxCap = c
		}
	}
	if maxCap == 0 {
		maxCap = 1
	}
	out := make([]float64, n*m)
	for j := 0; j < n; j++ {
		for p := 0; p < m; p++ {
			out[j*m+p] = e.Importance[j] * (e.Capacity[p] / maxCap)
		}
	}
	return out
}

// EnvironmentOf extracts the Environment of a TATIM problem with the given
// sensing signature.
func EnvironmentOf(p *Problem, signature []float64) *Environment {
	imp := make([]float64, len(p.Tasks))
	for i, t := range p.Tasks {
		imp[i] = t.Importance
	}
	caps := make([]float64, len(p.Processors))
	for i, pr := range p.Processors {
		caps[i] = pr.Capacity
	}
	sig := make([]float64, len(signature))
	copy(sig, signature)
	return &Environment{Importance: imp, Capacity: caps, Signature: sig}
}

// AllocEnv is the allocation episode MDP of §III-D implemented as an
// rl.Environment:
//
//   - state: the N×M binary selection matrix S (flattened), concatenated
//     with the environment matrix e so one policy generalizes across
//     environments (the paper's feature space X = (e, s₀));
//   - actions: one task per time step ("we allow the agent to execute merely
//     one action in each time step"), assigned to the episode's current
//     processor, plus one skip action that advances to the next processor —
//     keeping the action space linear instead of 2^(N×M);
//   - reward: Σ_j I_j of all allocated tasks, granted only at the terminal
//     state, 0 otherwise (§III-D "Reward Function").
type AllocEnv struct {
	problem *Problem
	env     *Environment
	// DenseReward switches to per-step rewards (ablation of the paper's
	// terminal-only design).
	DenseReward bool

	envMatrix []float64
	state     []float64 // selection matrix S, length N*M
	assigned  []int     // task → processor or Unassigned
	remTime   []float64
	remRes    []float64
	// procOrder visits processors fastest-first: the operator fills the
	// most capable node before advancing, so skipping early costs the most
	// valuable capacity — a natural curriculum for the agent.
	procOrder []int
	current   int // index into procOrder
	done      bool
}

// NewAllocEnv builds the MDP for one TATIM problem.
func NewAllocEnv(p *Problem, signature []float64) (*AllocEnv, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &AllocEnv{
		problem: p,
		env:     EnvironmentOf(p, signature),
	}
	e.envMatrix = e.env.Matrix()
	e.procOrder = make([]int, len(p.Processors))
	for i := range e.procOrder {
		e.procOrder[i] = i
	}
	sort.SliceStable(e.procOrder, func(a, b int) bool {
		return p.Processors[e.procOrder[a]].SpeedFactor > p.Processors[e.procOrder[b]].SpeedFactor
	})
	e.Reset()
	return e, nil
}

// N returns the task count.
func (e *AllocEnv) N() int { return len(e.problem.Tasks) }

// M returns the processor count.
func (e *AllocEnv) M() int { return len(e.problem.Processors) }

// SkipAction is the action index that advances to the next processor.
func (e *AllocEnv) SkipAction() int { return e.N() }

// Reset starts a fresh episode.
func (e *AllocEnv) Reset() []float64 {
	n, m := e.N(), e.M()
	e.state = make([]float64, n*m)
	e.assigned = make([]int, n)
	for i := range e.assigned {
		e.assigned[i] = Unassigned
	}
	e.remTime = make([]float64, m)
	e.remRes = make([]float64, m)
	for i, pr := range e.problem.Processors {
		e.remTime[i] = e.problem.TimeLimit
		e.remRes[i] = pr.Capacity
	}
	e.current = 0
	e.done = false
	return e.encode()
}

// StateSize is N*M (selection matrix) + N*M (environment matrix).
func (e *AllocEnv) StateSize() int { return 2 * e.N() * e.M() }

// ActionSize is N tasks + 1 skip.
func (e *AllocEnv) ActionSize() int { return e.N() + 1 }

func (e *AllocEnv) encode() []float64 {
	out := make([]float64, e.StateSize())
	copy(out, e.state)
	copy(out[len(e.state):], e.envMatrix)
	return out
}

// curProc returns the processor the episode is currently filling.
func (e *AllocEnv) curProc() int { return e.procOrder[e.current] }

// ValidActions lists assignable tasks for the current processor plus skip.
// A finished episode has no valid actions.
func (e *AllocEnv) ValidActions() []int {
	if e.done {
		return nil
	}
	cur := e.curProc()
	var acts []int
	for j, t := range e.problem.Tasks {
		if e.assigned[j] != Unassigned {
			continue
		}
		if t.TimeCost <= e.remTime[cur]+1e-12 && t.Resource <= e.remRes[cur]+1e-12 {
			acts = append(acts, j)
		}
	}
	acts = append(acts, e.SkipAction())
	return acts
}

// Step applies an action per the MDP above.
func (e *AllocEnv) Step(action int) ([]float64, float64, bool, error) {
	if e.done {
		return nil, 0, true, rl.ErrEpisodeDone
	}
	n, m := e.N(), e.M()
	if action < 0 || action > n {
		return nil, 0, false, fmt.Errorf("core: action %d out of range [0,%d]", action, n)
	}
	reward := 0.0
	if action == e.SkipAction() {
		e.current++
		if e.current >= m {
			e.done = true
		}
	} else {
		j := action
		cur := e.curProc()
		t := e.problem.Tasks[j]
		if e.assigned[j] != Unassigned {
			return nil, 0, false, fmt.Errorf("core: task %d already assigned", j)
		}
		if t.TimeCost > e.remTime[cur]+1e-12 || t.Resource > e.remRes[cur]+1e-12 {
			return nil, 0, false, fmt.Errorf("core: task %d does not fit processor %d", j, cur)
		}
		e.assigned[j] = cur
		e.remTime[cur] -= t.TimeCost
		e.remRes[cur] -= t.Resource
		e.state[j*m+cur] = 1
		if e.DenseReward {
			reward = t.Importance
		}
		if e.allAssigned() {
			e.done = true
		}
	}
	if e.done && !e.DenseReward {
		// Terminal-only reward: Σ I_j over allocated tasks.
		reward = e.problem.Objective(e.assigned)
	}
	return e.encode(), reward, e.done, nil
}

func (e *AllocEnv) allAssigned() bool {
	for _, a := range e.assigned {
		if a == Unassigned {
			return false
		}
	}
	return true
}

// Allocation returns a copy of the current assignment.
func (e *AllocEnv) Allocation() Allocation {
	out := make(Allocation, len(e.assigned))
	copy(out, e.assigned)
	return out
}

var _ rl.Environment = (*AllocEnv)(nil)
