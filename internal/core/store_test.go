package core

import (
	"fmt"
	"sync"
	"testing"
)

// storeEnv builds a store environment whose signature encodes its index.
func storeEnv(i int) *Environment {
	return &Environment{
		Importance: []float64{float64(i%10) / 10, 0.5},
		Capacity:   []float64{2, 2},
		Signature:  []float64{float64(i), float64(i) / 2},
	}
}

func TestStoreAllReturnsCopy(t *testing.T) {
	s := NewEnvironmentStore()
	for i := 0; i < 4; i++ {
		if err := s.Add(storeEnv(i)); err != nil {
			t.Fatal(err)
		}
	}
	all := s.All()
	if len(all) != 4 {
		t.Fatalf("All len = %d", len(all))
	}
	// Mutating the returned slice must not disturb the store.
	all[0] = nil
	all = all[:1]
	fresh := s.All()
	if len(fresh) != 4 || fresh[0] == nil {
		t.Fatalf("store aliased its internal slice: %v", fresh)
	}
}

func TestStoreAtAndNearestIndex(t *testing.T) {
	s := NewEnvironmentStore()
	for i := 0; i < 8; i++ {
		if err := s.Add(storeEnv(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.At(-1); err == nil {
		t.Fatal("At(-1) accepted")
	}
	if _, err := s.At(8); err == nil {
		t.Fatal("At(8) accepted")
	}
	for i := 0; i < 8; i++ {
		e, err := s.At(i)
		if err != nil {
			t.Fatal(err)
		}
		idx, got, err := s.NearestIndex(e.Signature)
		if err != nil {
			t.Fatal(err)
		}
		if idx != i || got != e {
			t.Fatalf("NearestIndex(sig %d) = %d, %p (want %d, %p)", i, idx, got, i, e)
		}
	}
	if _, _, err := s.NearestIndex([]float64{1}); err == nil {
		t.Fatal("bad signature length accepted")
	}
	empty := NewEnvironmentStore()
	if _, _, err := empty.NearestIndex([]float64{0, 0}); err == nil {
		t.Fatal("empty store accepted")
	}
}

// TestStoreConcurrentAddAndQuery races Add against every read path; run with
// -race it verifies the serving-side guarantee that kNN queries never tear
// while feedback appends fresh history.
func TestStoreConcurrentAddAndQuery(t *testing.T) {
	s := NewEnvironmentStore()
	// Seed a first entry so dimensions are pinned and reads never hit an
	// empty store.
	if err := s.Add(storeEnv(0)); err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		readers = 8
		perGoro = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				if err := s.Add(storeEnv(w*perGoro + i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			z := []float64{float64(r), 1}
			for i := 0; i < perGoro; i++ {
				if _, err := s.Nearest(z, 3); err != nil {
					errs <- err
					return
				}
				if _, err := s.DefineBlended(z, 2); err != nil {
					errs <- err
					return
				}
				if _, env, err := s.NearestIndex(z); err != nil || env == nil {
					errs <- fmt.Errorf("nearest index: %v", err)
					return
				}
				if got := s.All(); len(got) < 1 {
					errs <- fmt.Errorf("All shrank to %d", len(got))
					return
				}
				_ = s.Len()
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if want := 1 + writers*perGoro; s.Len() != want {
		t.Fatalf("store len = %d, want %d", s.Len(), want)
	}
}
