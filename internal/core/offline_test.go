package core

import (
	"errors"
	"testing"

	"repro/internal/mathx"
)

func TestNewOfflineStoreValidation(t *testing.T) {
	if _, err := NewOfflineStore(nil, 3, 1); !errors.Is(err, ErrEmptyStore) {
		t.Fatalf("nil store err = %v", err)
	}
	if _, err := NewOfflineStore(NewEnvironmentStore(), 3, 1); !errors.Is(err, ErrEmptyStore) {
		t.Fatalf("empty store err = %v", err)
	}
}

func TestOfflineStoreClustersAndDefines(t *testing.T) {
	_, store := storeFixture(t, 6, 2, 40)
	off, err := NewOfflineStore(store, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if off.Clusters() < 1 || off.Clusters() > 4 {
		t.Fatalf("clusters = %d", off.Clusters())
	}
	env, err := off.Define([]float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Importance) != 6 {
		t.Fatalf("importance length = %d", len(env.Importance))
	}
	for _, v := range env.Importance {
		if v < 0 || v > 1 {
			t.Fatalf("averaged importance %v out of range", v)
		}
	}
	// k clamps to store size.
	small, err := NewOfflineStore(store, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.Clusters() > store.Len() {
		t.Fatalf("clusters %d exceed store size %d", small.Clusters(), store.Len())
	}
	if _, err := off.Define([]float64{1, 2, 3}); err == nil {
		t.Fatal("bad signature length should error")
	}
}

// Online kNN should track a query's environment at least as closely as the
// offline cluster average, on average.
func TestOnlineBeatsOfflineOnAccuracy(t *testing.T) {
	_, store := storeFixture(t, 8, 2, 60)
	off, err := NewOfflineStore(store, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var onlineErr, offlineErr float64
	n := 0
	for _, z := range []float64{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95} {
		query := []float64{z}
		online, err := store.DefineBlended(query, 3)
		if err != nil {
			t.Fatal(err)
		}
		offline, err := off.Define(query)
		if err != nil {
			t.Fatal(err)
		}
		// Ground truth: the importance profile the fixture generates for z.
		truth := fixtureImportance(8, z)
		onlineErr += mathx.RMSE(online.Importance, truth)
		offlineErr += mathx.RMSE(offline.Importance, truth)
		n++
	}
	if !(onlineErr/float64(n) <= offlineErr/float64(n)+0.02) {
		t.Fatalf("online RMSE %v should not trail offline %v by much",
			onlineErr/float64(n), offlineErr/float64(n))
	}
}
