package core

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/mlearn"
)

// OfflineStore is the paper's §VII offline mode: historical environments are
// clustered in advance with k-means, and a query is answered with its
// cluster's averaged environment. It trades the online kNN mode's accuracy
// for a constant-time lookup — "its drawback lies in the possibly low
// prediction accuracy due to the offline clustering".
type OfflineStore struct {
	km        *mlearn.KMeans
	centroids []*Environment
}

// NewOfflineStore pre-clusters a historical store into k clusters.
func NewOfflineStore(store *EnvironmentStore, k int, seed int64) (*OfflineStore, error) {
	if store == nil || store.Len() == 0 {
		return nil, ErrEmptyStore
	}
	if k < 1 {
		k = 1
	}
	entries := store.All()
	sigs := make([][]float64, len(entries))
	for i, e := range entries {
		sigs[i] = e.Signature
	}
	km := mlearn.NewKMeans(k)
	km.Seed = seed
	if err := km.Fit(sigs); err != nil {
		return nil, fmt.Errorf("offline store clustering: %w", err)
	}
	// Average the environments per cluster.
	kk := len(km.Centroids())
	n := len(entries[0].Importance)
	sums := make([][]float64, kk)
	counts := make([]int, kk)
	for i := range sums {
		sums[i] = make([]float64, n)
	}
	for i, e := range entries {
		c, err := km.Assign(sigs[i])
		if err != nil {
			return nil, fmt.Errorf("offline store assign: %w", err)
		}
		counts[c]++
		mathx.AXPY(1, e.Importance, sums[c])
	}
	o := &OfflineStore{km: km, centroids: make([]*Environment, kk)}
	cents := km.Centroids()
	for c := 0; c < kk; c++ {
		imp := sums[c]
		if counts[c] > 0 {
			mathx.Scale(1/float64(counts[c]), imp)
		}
		o.centroids[c] = &Environment{
			Importance: imp,
			Capacity:   mathx.Clone(entries[0].Capacity),
			Signature:  cents[c],
		}
	}
	return o, nil
}

// Clusters returns the number of fitted clusters.
func (o *OfflineStore) Clusters() int { return len(o.centroids) }

// Define answers an environment-definition query with the averaged
// environment of the query's cluster.
func (o *OfflineStore) Define(z []float64) (*Environment, error) {
	c, err := o.km.Assign(z)
	if err != nil {
		return nil, fmt.Errorf("offline define: %w", err)
	}
	return o.centroids[c], nil
}
