package mathx

import "math/rand"

// NewRand returns a deterministic PRNG seeded with seed.
// Every stochastic component of the repository (dataset generation, SGD
// shuffles, DQN exploration, the simulator) takes an explicit *rand.Rand so
// experiments are reproducible end to end.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Perm fills a permutation of [0, n) using rng.
func Perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// Shuffle permutes idx in place using rng.
func Shuffle(rng *rand.Rand, idx []int) {
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// Gaussian returns a normal sample with the given mean and standard deviation.
func Gaussian(rng *rand.Rand, mean, std float64) float64 {
	return mean + std*rng.NormFloat64()
}

// Uniform returns a sample from [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*rng.Float64()
}

// Choice returns a uniformly random index in [0, n), or -1 when n <= 0.
func Choice(rng *rand.Rand, n int) int {
	if n <= 0 {
		return -1
	}
	return rng.Intn(n)
}

// WeightedChoice samples an index with probability proportional to weights.
// Non-positive total weight falls back to a uniform choice.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	if len(weights) == 0 {
		return -1
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return Choice(rng, len(weights))
	}
	target := rng.Float64() * total
	var cum float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		cum += w
		if cum >= target {
			return i
		}
	}
	return len(weights) - 1
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}
