package mathx

import (
	"math"
	"testing"
)

func TestNewRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestPermAndShuffle(t *testing.T) {
	rng := NewRand(1)
	p := Perm(rng, 10)
	seen := make(map[int]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	Shuffle(rng, idx)
	sum := 0
	for _, v := range idx {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", idx)
	}
}

func TestGaussianMoments(t *testing.T) {
	rng := NewRand(7)
	n := 20000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = Gaussian(rng, 3, 2)
	}
	if m := Mean(samples); math.Abs(m-3) > 0.1 {
		t.Errorf("Gaussian mean = %v, want ≈3", m)
	}
	if s := StdDev(samples); math.Abs(s-2) > 0.1 {
		t.Errorf("Gaussian std = %v, want ≈2", s)
	}
}

func TestUniformRange(t *testing.T) {
	rng := NewRand(3)
	for i := 0; i < 1000; i++ {
		v := Uniform(rng, -2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestChoice(t *testing.T) {
	rng := NewRand(5)
	if Choice(rng, 0) != -1 || Choice(rng, -3) != -1 {
		t.Fatal("Choice of empty should be -1")
	}
	for i := 0; i < 100; i++ {
		if c := Choice(rng, 4); c < 0 || c >= 4 {
			t.Fatalf("Choice out of range: %d", c)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := NewRand(11)
	if WeightedChoice(rng, nil) != -1 {
		t.Fatal("empty weights should be -1")
	}
	// Only index 2 has positive weight.
	for i := 0; i < 50; i++ {
		if c := WeightedChoice(rng, []float64{0, 0, 1, 0}); c != 2 {
			t.Fatalf("deterministic weighted choice = %d, want 2", c)
		}
	}
	// All-zero weights fall back to uniform, still in range.
	for i := 0; i < 50; i++ {
		if c := WeightedChoice(rng, []float64{0, 0, 0}); c < 0 || c > 2 {
			t.Fatalf("fallback choice out of range: %d", c)
		}
	}
	// Heavier weight wins more often.
	counts := [2]int{}
	for i := 0; i < 5000; i++ {
		counts[WeightedChoice(rng, []float64{1, 9})]++
	}
	if counts[1] < counts[0]*3 {
		t.Fatalf("weighted sampling skew wrong: %v", counts)
	}
}

func TestBernoulli(t *testing.T) {
	rng := NewRand(13)
	hits := 0
	n := 10000
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", frac)
	}
	if Bernoulli(rng, 0) {
		t.Fatal("p=0 must never fire")
	}
}
