package mathx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(x); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(x); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{3, 1, 2, 4}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, tt := range tests {
		if got := Quantile(x, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	if got := Median([]float64{5, 1, 9}); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
	// Quantile must not mutate its input.
	orig := []float64{9, 1}
	Quantile(orig, 0.5)
	if orig[0] != 9 {
		t.Error("Quantile mutated input")
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{1, 3}
	Normalize(x)
	if !almostEqual(x[0], 0.25, 1e-12) || !almostEqual(x[1], 0.75, 1e-12) {
		t.Fatalf("Normalize = %v", x)
	}
	zero := []float64{0, 0}
	Normalize(zero)
	if zero[0] != 0 {
		t.Fatal("all-zero Normalize should be a no-op")
	}
}

func TestGiniCoefficient(t *testing.T) {
	if got := GiniCoefficient([]float64{1, 1, 1, 1}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("equal Gini = %v, want 0", got)
	}
	concentrated := GiniCoefficient([]float64{0, 0, 0, 100})
	if concentrated < 0.7 {
		t.Errorf("concentrated Gini = %v, want ≥ 0.7", concentrated)
	}
	if GiniCoefficient(nil) != 0 || GiniCoefficient([]float64{0, 0}) != 0 {
		t.Error("degenerate Gini should be 0")
	}
}

func TestTopShare(t *testing.T) {
	// One element holds everything.
	x := []float64{10, 0, 0, 0}
	if got := TopShare(x, 0.25); !almostEqual(got, 1, 1e-12) {
		t.Errorf("TopShare = %v, want 1", got)
	}
	// Uniform: the top 50% holds 50%.
	u := []float64{1, 1, 1, 1}
	if got := TopShare(u, 0.5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("uniform TopShare = %v, want 0.5", got)
	}
	if TopShare(nil, 0.5) != 0 || TopShare([]float64{0}, 0.5) != 0 {
		t.Error("degenerate TopShare should be 0")
	}
}

func TestMinTopFractionForShare(t *testing.T) {
	x := []float64{80, 10, 5, 5}
	if got := MinTopFractionForShare(x, 0.8); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("MinTopFractionForShare = %v, want 0.25", got)
	}
	if got := MinTopFractionForShare([]float64{1, 1}, 1.0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("full share fraction = %v, want 1", got)
	}
	if MinTopFractionForShare(nil, 0.5) != 0 {
		t.Error("empty input should be 0")
	}
	if got := MinTopFractionForShare([]float64{0, 0}, 0.5); got != 1 {
		t.Errorf("zero-total should be 1, got %v", got)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Pearson(a, b); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v, want 1", got)
	}
	c := []float64{8, 6, 4, 2}
	if got := Pearson(a, c); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v, want -1", got)
	}
	if Pearson(a, []float64{1, 1, 1, 1}) != 0 {
		t.Error("zero-variance Pearson should be 0")
	}
	if Pearson(a, a[:2]) != 0 {
		t.Error("length-mismatch Pearson should be 0")
	}
}

func TestRMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	target := []float64{1, 2, 5}
	if got := RMSE(pred, target); !almostEqual(got, math.Sqrt(4.0/3), 1e-12) {
		t.Errorf("RMSE = %v", got)
	}
	if got := MAE(pred, target); !almostEqual(got, 2.0/3, 1e-12) {
		t.Errorf("MAE = %v", got)
	}
	if RMSE(nil, nil) != 0 || MAE(nil, nil) != 0 {
		t.Error("empty errors should be 0")
	}
}

// Property: quantile output is within [min, max] and monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		x := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				x = append(x, v)
			}
		}
		if len(x) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := Quantile(x, q)
			if v < prev {
				return false
			}
			prev = v
		}
		s := Clone(x)
		sort.Float64s(s)
		return Quantile(x, 0) == s[0] && Quantile(x, 1) == s[len(s)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Gini is in [0, 1) for non-negative inputs.
func TestGiniRangeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		x := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				x = append(x, math.Abs(math.Mod(v, 1e6)))
			}
		}
		g := GiniCoefficient(x)
		return g >= -1e-9 && g < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
