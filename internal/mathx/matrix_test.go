package mathx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 7)
	if m.At(0, 0) != 1 || m.At(1, 2) != 7 || m.At(0, 1) != 0 {
		t.Fatalf("At/Set broken: %v", m.Data)
	}
	r := m.Row(1)
	r[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row should be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone should be independent")
	}
	m.Fill(3)
	for _, v := range m.Data {
		if v != 3 {
			t.Fatal("Fill incomplete")
		}
	}
	if nm := NewMatrix(-1, 5); nm.Rows != 0 || nm.Cols != 0 {
		t.Fatal("negative dims should clamp to zero")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("content wrong: %v", m.Data)
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("ragged rows error = %v, want ErrDimensionMismatch", err)
	}
	empty, err := MatrixFromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Fatalf("empty rows: %v %v", empty, err)
	}
}

func TestMulVec(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	y, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := m.MulVec([]float64{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("MulVec mismatch error = %v", err)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %s", tr)
	}
}

func TestMatrixString(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}})
	if m.String() != "1 2\n" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestSolveRidgeExact(t *testing.T) {
	// y = 2*x0 - x1 exactly; lambda=0 must recover the weights.
	a, _ := MatrixFromRows([][]float64{
		{1, 0}, {0, 1}, {1, 1}, {2, 1},
	})
	y := []float64{2, -1, 1, 3}
	w, err := SolveRidge(a, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(w[0], 2, 1e-9) || !almostEqual(w[1], -1, 1e-9) {
		t.Fatalf("SolveRidge w = %v, want [2 -1]", w)
	}
}

func TestSolveRidgeShrinks(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1}, {1}, {1}})
	y := []float64{3, 3, 3}
	w0, err := SolveRidge(a, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	wBig, err := SolveRidge(a, y, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !(math.Abs(wBig[0]) < math.Abs(w0[0])) {
		t.Fatalf("ridge penalty should shrink weights: λ=0 → %v, λ=100 → %v", w0, wBig)
	}
}

func TestSolveRidgeErrors(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}})
	if _, err := SolveRidge(a, []float64{1, 2}, 0); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("rows/targets mismatch error = %v", err)
	}
	// Duplicate column with lambda 0 → singular Gram matrix.
	dup, _ := MatrixFromRows([][]float64{{1, 1}, {2, 2}})
	if _, err := SolveRidge(dup, []float64{1, 2}, 0); err == nil {
		t.Fatal("singular system should error")
	}
	// Regularization rescues it.
	if _, err := SolveRidge(dup, []float64{1, 2}, 1e-3); err != nil {
		t.Fatalf("ridge should regularize singularity: %v", err)
	}
}

// Property: for random well-conditioned diagonal systems the solver inverts
// exactly.
func TestSolveDiagonalProperty(t *testing.T) {
	f := func(d1, d2, y1, y2 float64) bool {
		// Keep diagonals away from zero and values bounded.
		scale := func(v float64) float64 { return 1 + math.Mod(math.Abs(v), 9) }
		bound := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 1e3)
		}
		a, _ := MatrixFromRows([][]float64{{scale(d1), 0}, {0, scale(d2)}})
		y := []float64{bound(y1), bound(y2)}
		w, err := SolveRidge(a, y, 0)
		if err != nil {
			return false
		}
		// AᵀA w = Aᵀ y → for diagonal A: d² w = d y → w = y/d.
		return almostEqual(w[0], y[0]/scale(d1), 1e-6) && almostEqual(w[1], y[1]/scale(d2), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
