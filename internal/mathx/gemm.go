package mathx

import (
	"fmt"

	"repro/internal/conc"
)

// GEMM-shaped kernels for the batched neural/RL training hot path. Three
// layouts cover everything a dense-layer forward/backward needs without ever
// materializing a transpose:
//
//	MatMul       dst = a·b    — back-propagated deltas (Δ_next · W_next)
//	MatMulTransA dst = aᵀ·b   — gradient accumulation (Δᵀ · activations)
//	MatMulTransB dst = a·bᵀ   — batched forward (X · Wᵀ, W row-major out×in)
//
// All kernels overwrite dst, validate shapes, allocate nothing, and use a
// fixed, deterministic accumulation order (ascending k per output element) so
// seeded training runs are bit-for-bit reproducible at a given size. Inputs
// are assumed finite: exact zeros in the streamed operand are skipped, which
// turns the structural sparsity of RL state encodings (binary selection
// matrices, masked Q-targets, dead ReLU units) into proportional time savings
// without changing the result.
//
// Work above parallelThreshold multiply-adds is split row-wise across
// GOMAXPROCS goroutines via conc.ForEach ("optional parallel outer loop");
// below it the kernels run serially and allocation-free, which keeps
// DQN-scale mini-batches suitable for ReportAllocs-verified steady state.

// parallelThreshold is the multiply-add count above which the kernels spread
// dst rows across goroutines. DQN-scale batches (32×900×64 ≈ 1.8M) stay just
// below; bulk evaluation batches go parallel.
const parallelThreshold = 1 << 21

// gemmWorkers returns the worker count for a kernel of the given flop count
// and dst row count: 0 (meaning GOMAXPROCS) above the threshold, 1 otherwise.
func gemmWorkers(flops, rows int) int {
	if flops >= parallelThreshold && rows > 1 {
		return 0
	}
	return 1
}

// MatMul computes dst = a·b. Shapes: a is n×k, b is k×m, dst must be n×m.
func MatMul(dst, a, b *Matrix) error {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		return fmt.Errorf("matmul: (%dx%d)·(%dx%d)→(%dx%d): %w",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols, ErrDimensionMismatch)
	}
	workers := gemmWorkers(a.Rows*a.Cols*b.Cols, dst.Rows)
	if workers == 1 {
		matMulRows(dst, a, b, 0, dst.Rows)
		return nil
	}
	return blockedRows(dst.Rows, workers, func(r0, r1 int) {
		matMulRows(dst, a, b, r0, r1)
	})
}

// matMulRows computes dst rows [r0, r1) of a·b in row-axpy (ikj) form:
// dst[i,:] accumulates a[i,k]·b[k,:] for ascending k, skipping zero a[i,k].
func matMulRows(dst, a, b *Matrix, r0, r1 int) {
	for i := r0; i < r1; i++ {
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		arow := a.Row(i)
		for k, v := range arow {
			if v == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += v * bv
			}
		}
	}
}

// MatMulTransA computes dst = aᵀ·b. Shapes: a is k×n, b is k×m, dst must be
// n×m. Rows of a are streamed once (ascending k), so zero entries of a — e.g.
// masked or dead-unit delta columns — cost one compare each.
func MatMulTransA(dst, a, b *Matrix) error {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		return fmt.Errorf("matmul transA: (%dx%d)ᵀ·(%dx%d)→(%dx%d): %w",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols, ErrDimensionMismatch)
	}
	workers := gemmWorkers(a.Rows*a.Cols*b.Cols, dst.Rows)
	if workers == 1 {
		transARows(dst, a, b, 0, dst.Rows)
		return nil
	}
	return blockedRows(dst.Rows, workers, func(r0, r1 int) {
		transARows(dst, a, b, r0, r1)
	})
}

// transARows computes dst rows [r0, r1) of aᵀ·b: dst[i,:] += a[k,i]·b[k,:]
// for ascending k, restricted to the row range so parallel workers never
// share output rows.
func transARows(dst, a, b *Matrix, r0, r1 int) {
	for i := r0; i < r1; i++ {
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := r0; i < r1; i++ {
			v := arow[i]
			if v == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += v * bv
			}
		}
	}
}

// MatMulTransB computes dst = a·bᵀ. Shapes: a is n×k, b is m×k, dst must be
// n×m. This is the batched dense-layer forward X·Wᵀ with W stored row-major
// out×in; both operands stream contiguous rows.
func MatMulTransB(dst, a, b *Matrix) error {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		return fmt.Errorf("matmul transB: (%dx%d)·(%dx%d)ᵀ→(%dx%d): %w",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols, ErrDimensionMismatch)
	}
	workers := gemmWorkers(a.Rows*a.Cols*b.Rows, dst.Rows)
	if workers == 1 {
		transBRows(dst, a, b, nil, 0, dst.Rows)
		return nil
	}
	return blockedRows(dst.Rows, workers, func(r0, r1 int) {
		transBRows(dst, a, b, nil, r0, r1)
	})
}

// MatMulTransBCols computes dst = a·bᵀ like MatMulTransB but sums only over
// the given ascending k-column subset, which must index only columns of a
// that are zero elsewhere for the result to equal the full product. The
// batched forward pass uses this to skip input columns that are zero across
// the whole mini-batch (untouched cells of the allocation selection matrix).
// A nil cols is the dense product.
func MatMulTransBCols(dst, a, b *Matrix, cols []int) error {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		return fmt.Errorf("matmul transB cols: (%dx%d)·(%dx%d)ᵀ→(%dx%d): %w",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols, ErrDimensionMismatch)
	}
	inner := a.Cols
	if cols != nil {
		inner = len(cols)
	}
	workers := gemmWorkers(a.Rows*inner*b.Rows, dst.Rows)
	if workers == 1 {
		transBRows(dst, a, b, cols, 0, dst.Rows)
		return nil
	}
	return blockedRows(dst.Rows, workers, func(r0, r1 int) {
		transBRows(dst, a, b, cols, r0, r1)
	})
}

// transBRows computes dst rows [r0, r1) of a·bᵀ with a 2×2 register tile:
// two a-rows × two b-rows per pass, four independent accumulator chains, all
// operand streams contiguous (or forward-strided gathers under a cols
// subset). Remainder rows fall back to single-row dot products.
func transBRows(dst, a, b *Matrix, cols []int, r0, r1 int) {
	i := r0
	for ; i+1 < r1; i += 2 {
		a0, a1 := a.Row(i), a.Row(i+1)
		d0, d1 := dst.Row(i), dst.Row(i+1)
		j := 0
		for ; j+1 < b.Rows; j += 2 {
			b0, b1 := b.Row(j), b.Row(j+1)
			var s00, s01, s10, s11 float64
			if cols == nil {
				for k, bv0 := range b0 {
					bv1 := b1[k]
					av0, av1 := a0[k], a1[k]
					s00 += av0 * bv0
					s01 += av0 * bv1
					s10 += av1 * bv0
					s11 += av1 * bv1
				}
			} else {
				for _, k := range cols {
					av0, av1 := a0[k], a1[k]
					bv0, bv1 := b0[k], b1[k]
					s00 += av0 * bv0
					s01 += av0 * bv1
					s10 += av1 * bv0
					s11 += av1 * bv1
				}
			}
			d0[j], d0[j+1] = s00, s01
			d1[j], d1[j+1] = s10, s11
		}
		for ; j < b.Rows; j++ {
			brow := b.Row(j)
			var s0, s1 float64
			if cols == nil {
				for k, bv := range brow {
					s0 += a0[k] * bv
					s1 += a1[k] * bv
				}
			} else {
				for _, k := range cols {
					s0 += a0[k] * brow[k]
					s1 += a1[k] * brow[k]
				}
			}
			d0[j], d1[j] = s0, s1
		}
	}
	for ; i < r1; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			if cols == nil {
				for k, bv := range brow {
					s += arow[k] * bv
				}
			} else {
				for _, k := range cols {
					s += arow[k] * brow[k]
				}
			}
			drow[j] = s
		}
	}
}

// NonzeroColumns appends to buf[:0] the ascending indices of columns of m
// that hold at least one nonzero, and returns the extended slice. It is the
// sparsity probe the batched forward uses to decide between the dense and
// column-subset kernels.
func NonzeroColumns(m *Matrix, buf []int) []int {
	buf = buf[:0]
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			if m.Data[i*m.Cols+j] != 0 {
				buf = append(buf, j)
				break
			}
		}
	}
	return buf
}

// blockedRows splits [0, rows) into one contiguous block per worker and runs
// fn on each block via conc.ForEach.
func blockedRows(rows, workers int, fn func(r0, r1 int)) error {
	blocks := conc.Workers(workers)
	if blocks > rows {
		blocks = rows
	}
	per := (rows + blocks - 1) / blocks
	return conc.ForEach(blocks, blocks, func(w int) error {
		r0 := w * per
		r1 := r0 + per
		if r1 > rows {
			r1 = rows
		}
		if r0 < r1 {
			fn(r0, r1)
		}
		return nil
	})
}
