package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// naiveMatMul is the reference triple loop for dst = a·b.
func naiveMatMul(a, b *Matrix) *Matrix {
	dst := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

// naiveTransA is the reference triple loop for dst = aᵀ·b.
func naiveTransA(a, b *Matrix) *Matrix {
	dst := NewMatrix(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

// naiveTransB is the reference triple loop for dst = a·bᵀ.
func naiveTransB(a, b *Matrix) *Matrix {
	dst := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

// randMatrix fills a matrix with values in [-1, 1), zeroing a sparseFrac
// fraction so the zero-skip paths are exercised.
func randMatrix(rng *rand.Rand, rows, cols int, sparseFrac float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Float64() < sparseFrac {
			continue
		}
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

func matricesClose(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if math.Abs(v-want.Data[i]) > tol {
			t.Fatalf("element %d: got %v, want %v", i, v, want.Data[i])
		}
	}
}

// gemmShapes covers odd/even and degenerate sizes so the 2×2 tile remainder
// paths all run.
var gemmShapes = []struct{ n, k, m int }{
	{1, 1, 1}, {1, 5, 3}, {2, 4, 2}, {3, 7, 5}, {4, 9, 1},
	{5, 3, 8}, {8, 16, 8}, {7, 11, 13}, {16, 30, 17},
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range gemmShapes {
		for _, sparse := range []float64{0, 0.5, 0.95} {
			a := randMatrix(rng, sh.n, sh.k, sparse)
			b := randMatrix(rng, sh.k, sh.m, sparse)
			dst := NewMatrix(sh.n, sh.m)
			dst.Fill(math.NaN()) // kernels must fully overwrite dst
			if err := MatMul(dst, a, b); err != nil {
				t.Fatalf("MatMul %+v: %v", sh, err)
			}
			matricesClose(t, dst, naiveMatMul(a, b), 1e-12)
		}
	}
}

func TestMatMulTransAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range gemmShapes {
		for _, sparse := range []float64{0, 0.5, 0.95} {
			a := randMatrix(rng, sh.k, sh.n, sparse)
			b := randMatrix(rng, sh.k, sh.m, sparse)
			dst := NewMatrix(sh.n, sh.m)
			dst.Fill(math.NaN())
			if err := MatMulTransA(dst, a, b); err != nil {
				t.Fatalf("MatMulTransA %+v: %v", sh, err)
			}
			matricesClose(t, dst, naiveTransA(a, b), 1e-12)
		}
	}
}

func TestMatMulTransBMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sh := range gemmShapes {
		for _, sparse := range []float64{0, 0.5} {
			a := randMatrix(rng, sh.n, sh.k, sparse)
			b := randMatrix(rng, sh.m, sh.k, sparse)
			dst := NewMatrix(sh.n, sh.m)
			dst.Fill(math.NaN())
			if err := MatMulTransB(dst, a, b); err != nil {
				t.Fatalf("MatMulTransB %+v: %v", sh, err)
			}
			matricesClose(t, dst, naiveTransB(a, b), 1e-12)
		}
	}
}

func TestMatMulTransBColsMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, sh := range gemmShapes {
		// Column-sparse a: the subset product over a's nonzero columns must
		// equal the dense product.
		a := NewMatrix(sh.n, sh.k)
		for j := 0; j < sh.k; j++ {
			if rng.Float64() < 0.6 {
				continue // whole column stays zero
			}
			for i := 0; i < sh.n; i++ {
				a.Set(i, j, rng.Float64()*2-1)
			}
		}
		b := randMatrix(rng, sh.m, sh.k, 0)
		cols := NonzeroColumns(a, nil)
		dst := NewMatrix(sh.n, sh.m)
		dst.Fill(math.NaN())
		if err := MatMulTransBCols(dst, a, b, cols); err != nil {
			t.Fatalf("MatMulTransBCols %+v: %v", sh, err)
		}
		matricesClose(t, dst, naiveTransB(a, b), 1e-12)
	}
}

func TestGemmDimensionMismatch(t *testing.T) {
	a := NewMatrix(3, 4)
	b := NewMatrix(5, 6)
	dst := NewMatrix(3, 6)
	for name, err := range map[string]error{
		"MatMul":           MatMul(dst, a, b),
		"MatMulTransA":     MatMulTransA(dst, a, b),
		"MatMulTransB":     MatMulTransB(dst, a, b),
		"MatMulTransBCols": MatMulTransBCols(dst, a, b, nil),
	} {
		if !errors.Is(err, ErrDimensionMismatch) {
			t.Errorf("%s: got %v, want ErrDimensionMismatch", name, err)
		}
	}
	// dst shape must match too, even when a·b is conformable.
	if err := MatMul(NewMatrix(3, 5), NewMatrix(4, 2), NewMatrix(2, 6)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MatMul wrong dst: got %v, want ErrDimensionMismatch", err)
	}
}

func TestNonzeroColumns(t *testing.T) {
	m := NewMatrix(3, 5)
	m.Set(0, 1, 2)
	m.Set(2, 1, -1)
	m.Set(1, 4, 0.5)
	got := NonzeroColumns(m, nil)
	want := []int{1, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Reuse path: a larger buffer is truncated and refilled.
	buf := make([]int, 0, 16)
	buf = append(buf, 9, 9, 9)
	if again := NonzeroColumns(m, buf); len(again) != 2 || again[0] != 1 || again[1] != 4 {
		t.Fatalf("reused buffer: got %v", again)
	}
	if empty := NonzeroColumns(NewMatrix(2, 3), nil); len(empty) != 0 {
		t.Fatalf("zero matrix: got %v", empty)
	}
}

// TestGemmParallelPath pushes all kernels past parallelThreshold so the
// conc.ForEach row-partitioned path runs (and is exercised under -race), and
// checks the parallel result is identical to the serial one.
func TestGemmParallelPath(t *testing.T) {
	// 260×130 · 130×130 ≈ 4.4M multiply-adds > 1<<21.
	const n, k, m = 260, 130, 130
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, n, k, 0.2)
	b := randMatrix(rng, k, m, 0.2)
	if n*k*m < parallelThreshold {
		t.Fatalf("test shape below parallelThreshold; enlarge it")
	}

	par := NewMatrix(n, m)
	if err := MatMul(par, a, b); err != nil {
		t.Fatal(err)
	}
	ser := NewMatrix(n, m)
	matMulRows(ser, a, b, 0, n)
	matricesClose(t, par, ser, 0) // deterministic: bit-identical

	at := randMatrix(rng, k, n, 0.2)
	parA := NewMatrix(n, m)
	if err := MatMulTransA(parA, at, b); err != nil {
		t.Fatal(err)
	}
	serA := NewMatrix(n, m)
	transARows(serA, at, b, 0, n)
	matricesClose(t, parA, serA, 0)

	bt := randMatrix(rng, m, k, 0.2)
	parB := NewMatrix(n, m)
	if err := MatMulTransB(parB, a, bt); err != nil {
		t.Fatal(err)
	}
	serB := NewMatrix(n, m)
	transBRows(serB, a, bt, nil, 0, n)
	matricesClose(t, parB, serB, 0)
}

// TestGemmDeterministic re-runs a kernel and requires bit-identical output —
// the contract seeded DQN training relies on.
func TestGemmDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMatrix(rng, 9, 31, 0.3)
	b := randMatrix(rng, 17, 31, 0.3)
	d1 := NewMatrix(9, 17)
	d2 := NewMatrix(9, 17)
	for i := 0; i < 2; i++ {
		if err := MatMulTransB(d1, a, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := MatMulTransB(d2, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range d1.Data {
		if d1.Data[i] != d2.Data[i] {
			t.Fatalf("nondeterministic element %d: %v vs %v", i, d1.Data[i], d2.Data[i])
		}
	}
}
