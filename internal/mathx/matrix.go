package mathx

import (
	"fmt"
	"strings"
)

// Matrix is a dense row-major matrix backed by a single slice.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		rows, cols = 0, 0
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix by copying the given rows.
// All rows must share a length; a mismatch returns an error.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix from rows: row %d has %d cols, want %d: %w",
				i, len(r), cols, ErrDimensionMismatch)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// MulVec computes m·x and returns a new vector of length m.Rows.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("mulvec: %d cols vs %d: %w", m.Cols, len(x), ErrDimensionMismatch)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out, nil
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SolveRidge solves (AᵀA + λI) w = Aᵀy for w via Gaussian elimination with
// partial pivoting. It is the normal-equation path used by the ridge
// regression learner. λ must be ≥ 0; a singular system returns an error.
func SolveRidge(a *Matrix, y []float64, lambda float64) ([]float64, error) {
	if a.Rows != len(y) {
		return nil, fmt.Errorf("solve ridge: %d rows vs %d targets: %w",
			a.Rows, len(y), ErrDimensionMismatch)
	}
	n := a.Cols
	// Gram matrix G = AᵀA + λI and right-hand side b = Aᵀy.
	g := NewMatrix(n, n)
	b := make([]float64, n)
	for r := 0; r < a.Rows; r++ {
		row := a.Row(r)
		for i := 0; i < n; i++ {
			b[i] += row[i] * y[r]
			for j := i; j < n; j++ {
				g.Data[i*n+j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		g.Data[i*n+i] += lambda
		for j := 0; j < i; j++ {
			g.Data[i*n+j] = g.Data[j*n+i]
		}
	}
	return solveLinear(g, b)
}

// solveLinear solves g·w = b in place using Gaussian elimination with partial
// pivoting. g and b are clobbered.
func solveLinear(g *Matrix, b []float64) ([]float64, error) {
	n := g.Rows
	if g.Cols != n || len(b) != n {
		return nil, fmt.Errorf("solve linear: non-square or bad rhs: %w", ErrDimensionMismatch)
	}
	const eps = 1e-12
	for col := 0; col < n; col++ {
		// Pivot selection.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(g.At(r, col)) > abs(g.At(pivot, col)) {
				pivot = r
			}
		}
		if abs(g.At(pivot, col)) < eps {
			return nil, fmt.Errorf("solve linear: singular system at column %d", col)
		}
		if pivot != col {
			swapRows(g, pivot, col)
			b[pivot], b[col] = b[col], b[pivot]
		}
		inv := 1.0 / g.At(col, col)
		for r := col + 1; r < n; r++ {
			f := g.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				g.Set(r, c, g.At(r, c)-f*g.At(col, c))
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	w := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= g.At(i, j) * w[j]
		}
		w[i] = s / g.At(i, i)
	}
	return w, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
