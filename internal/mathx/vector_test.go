package mathx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{name: "empty", a: nil, b: nil, want: 0},
		{name: "unit", a: []float64{1, 0}, b: []float64{0, 1}, want: 0},
		{name: "basic", a: []float64{1, 2, 3}, b: []float64{4, 5, 6}, want: 32},
		{name: "negative", a: []float64{-1, 2}, b: []float64{3, -4}, want: -11},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dot(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDotCheckedMismatch(t *testing.T) {
	_, err := DotChecked([]float64{1}, []float64{1, 2})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("DotChecked mismatch error = %v, want ErrDimensionMismatch", err)
	}
}

func TestAXPYAndScale(t *testing.T) {
	dst := []float64{1, 2, 3}
	AXPY(2, []float64{1, 1, 1}, dst)
	want := []float64{3, 4, 5}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AXPY dst = %v, want %v", dst, want)
		}
	}
	Scale(0.5, dst)
	want = []float64{1.5, 2, 2.5}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Scale dst = %v, want %v", dst, want)
		}
	}
}

func TestAddSub(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := Add(a, b); got[0] != 4 || got[1] != 7 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); got[0] != 2 || got[1] != 3 {
		t.Errorf("Sub = %v", got)
	}
}

func TestNormAndDistance(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("EuclideanDistance = %v, want 5", got)
	}
	if got := SquaredDistance([]float64{1, 1}, []float64{2, 3}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("SquaredDistance = %v, want 5", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := []float64{1, 2, 3}
	cp := Clone(orig)
	cp[0] = 99
	if orig[0] != 1 {
		t.Fatal("Clone shares backing array with original")
	}
	if Clone(nil) != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestArgMaxArgMin(t *testing.T) {
	x := []float64{1, 5, 5, -2}
	if got := ArgMax(x); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := ArgMin(x); got != 3 {
		t.Errorf("ArgMin = %d, want 3", got)
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("ArgMax/ArgMin of empty should be -1")
	}
	if !math.IsInf(MaxOf(nil), -1) || !math.IsInf(MinOf(nil), 1) {
		t.Error("MaxOf/MinOf of empty should be ∓Inf")
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	if !almostEqual(Sum(p), 1, 1e-12) {
		t.Fatalf("softmax sums to %v, want 1", Sum(p))
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("softmax not monotone: %v", p)
	}
	// Large inputs must not overflow thanks to max-subtraction.
	p = Softmax([]float64{1000, 1000})
	if math.IsNaN(p[0]) || !almostEqual(p[0], 0.5, 1e-12) {
		t.Fatalf("softmax overflow handling broken: %v", p)
	}
	if Softmax(nil) != nil {
		t.Fatal("Softmax(nil) should be nil")
	}
}

func TestLinspace(t *testing.T) {
	pts := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(pts[i], want[i], 1e-12) {
			t.Fatalf("Linspace = %v, want %v", pts, want)
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Linspace degenerate = %v", got)
	}
}

// Property: dot product is symmetric.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		x, y := Dot(a, b), Dot(b, a)
		if math.IsNaN(x) && math.IsNaN(y) {
			return true
		}
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ||a+b|| <= ||a|| + ||b|| (triangle inequality).
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw[:2*n] {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological float inputs
			}
		}
		return Norm2(Add(a, b)) <= Norm2(a)+Norm2(b)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
