// Package mathx provides small numeric primitives shared by the learning and
// simulation substrates: dense vectors and matrices, descriptive statistics,
// and deterministic random helpers.
//
// Everything here is intentionally simple and allocation-conscious; the
// learning code paths (SGD loops, tree building, Q-learning updates) are the
// hot paths of the repository.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two operands have incompatible sizes.
var ErrDimensionMismatch = errors.New("mathx: dimension mismatch")

// Dot returns the inner product of a and b.
// It panics only via index bounds if the lengths differ; callers that cannot
// statically guarantee equal lengths should use DotChecked.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// DotChecked returns the inner product of a and b, or ErrDimensionMismatch.
func DotChecked(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dot: %d vs %d: %w", len(a), len(b), ErrDimensionMismatch)
	}
	return Dot(a, b), nil
}

// AXPY computes dst[i] += alpha*x[i] in place.
func AXPY(alpha float64, x, dst []float64) {
	for i := range x {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add returns a new vector a+b.
func Add(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a new vector a-b.
func Sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// SquaredDistance returns ||a-b||^2.
func SquaredDistance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// EuclideanDistance returns ||a-b||.
func EuclideanDistance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// Clone returns a copy of x. A nil input yields a nil output.
func Clone(x []float64) []float64 {
	if x == nil {
		return nil
	}
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ArgMax returns the index of the largest element of x, or -1 for empty x.
// Ties resolve to the lowest index.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element of x, or -1 for empty x.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] < x[best] {
			best = i
		}
	}
	return best
}

// MaxOf returns the largest element of x, or -Inf for empty x.
func MaxOf(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	return x[ArgMax(x)]
}

// MinOf returns the smallest element of x, or +Inf for empty x.
func MinOf(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(1)
	}
	return x[ArgMin(x)]
}

// Sum returns the sum of all elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Softmax writes the softmax of x into a new slice.
// It is numerically stabilized by subtracting the max.
func Softmax(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	m := MaxOf(x)
	out := make([]float64, len(x))
	var z float64
	for i, v := range x {
		e := math.Exp(v - m)
		out[i] = e
		z += e
	}
	for i := range out {
		out[i] /= z
	}
	return out
}

// Linspace returns n evenly spaced points from lo to hi inclusive.
// n < 2 returns []float64{lo}.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
