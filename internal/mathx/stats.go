package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for empty x.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Variance returns the population variance of x, or 0 for len(x) < 2.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of x using linear
// interpolation between order statistics. Empty x returns 0.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := Clone(x)
	sort.Float64s(s)
	q = Clamp(q, 0, 1)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of x.
func Median(x []float64) float64 { return Quantile(x, 0.5) }

// Normalize scales x in place so its elements sum to 1.
// All-zero (or empty) input is left untouched.
func Normalize(x []float64) {
	s := Sum(x)
	if s == 0 {
		return
	}
	Scale(1/s, x)
}

// GiniCoefficient measures the inequality of the non-negative values in x.
// 0 means perfectly equal; values near 1 mean a long-tail concentration.
// It is used to quantify the paper's Observation 1 (long-tail importance).
func GiniCoefficient(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	s := Clone(x)
	sort.Float64s(s)
	var cum, total float64
	for i, v := range s {
		cum += float64(i+1) * v
		total += v
	}
	if total == 0 {
		return 0
	}
	return (2*cum/(float64(n)*total) - float64(n+1)/float64(n))
}

// TopShare returns the fraction of Sum(x) contributed by the largest
// `frac` (0..1) share of elements. TopShare(x, 0.127) answering ">0.8"
// reproduces the paper's "12.72% of tasks contribute over 80%" statistic.
func TopShare(x []float64, frac float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	s := Clone(x)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	k := int(math.Ceil(Clamp(frac, 0, 1) * float64(n)))
	if k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	total := Sum(s)
	if total == 0 {
		return 0
	}
	return Sum(s[:k]) / total
}

// MinTopFractionForShare returns the smallest fraction of elements (largest
// first) whose combined contribution reaches `share` of the total.
func MinTopFractionForShare(x []float64, share float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	s := Clone(x)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	total := Sum(s)
	if total <= 0 {
		return 1
	}
	target := Clamp(share, 0, 1) * total
	var cum float64
	for i, v := range s {
		cum += v
		if cum >= target {
			return float64(i+1) / float64(n)
		}
	}
	return 1
}

// Pearson returns the Pearson correlation coefficient of paired samples.
// Returns 0 when either side has zero variance or the lengths differ.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// RMSE returns the root mean squared error between predictions and targets.
// Mismatched lengths compare the common prefix; empty input returns 0.
func RMSE(pred, target []float64) float64 {
	n := len(pred)
	if len(target) < n {
		n = len(target)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		d := pred[i] - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, target []float64) float64 {
	n := len(pred)
	if len(target) < n {
		n = len(target)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += math.Abs(pred[i] - target[i])
	}
	return s / float64(n)
}
