package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// checkpointVersion guards the wire format.
const checkpointVersion = 1

// checkpoint is the persisted form of the policy cache. Each entry carries a
// full core.CRL snapshot (config + template + policy weights), so a restart
// resumes serving warm without retraining ("the training phase merely needs
// to be conducted once in advance" — paper footnote 1). The historical store
// itself is the deployment's data and is reattached on load, exactly like
// core.LoadCRL.
type checkpoint struct {
	Version int               `json:"version"`
	SavedAt time.Time         `json:"saved_at"`
	Entries []checkpointEntry `json:"entries"`
}

type checkpointEntry struct {
	Cluster    int             `json:"cluster"`
	TrainedAt  time.Time       `json:"trained_at"`
	Importance []float64       `json:"importance"`
	Policy     json.RawMessage `json:"policy"`
}

// SaveCheckpoint serializes every resident, healthy cache entry, most
// recently used first.
func (s *Server) SaveCheckpoint(w io.Writer) error {
	entries := s.cache.snapshot()
	ck := checkpoint{
		Version: checkpointVersion,
		SavedAt: s.cfg.Now(),
		Entries: make([]checkpointEntry, 0, len(entries)),
	}
	for _, e := range entries {
		policy, err := e.crl.MarshalJSON()
		if err != nil {
			return fmt.Errorf("serve: checkpoint cluster %d: %w", e.key, err)
		}
		ck.Entries = append(ck.Entries, checkpointEntry{
			Cluster:    e.key,
			TrainedAt:  e.trainedAt,
			Importance: e.imp,
			Policy:     policy,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(ck); err != nil {
		return fmt.Errorf("serve: checkpoint encode: %w", err)
	}
	return nil
}

// LoadCheckpoint restores cache entries saved by SaveCheckpoint, returning
// how many were installed. Entries whose cluster index no longer exists in
// the store are skipped (the checkpoint outlived its history); a decode
// error fails the whole load so a corrupt file never half-restores.
func (s *Server) LoadCheckpoint(r io.Reader) (int, error) {
	var ck checkpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return 0, fmt.Errorf("serve: checkpoint decode: %w", err)
	}
	if ck.Version != checkpointVersion {
		return 0, fmt.Errorf("serve: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	restored := 0
	for _, e := range ck.Entries {
		if _, err := s.store.At(e.Cluster); err != nil {
			continue
		}
		sub, err := s.clusterStore(e.Cluster)
		if err != nil {
			return restored, fmt.Errorf("serve: checkpoint cluster %d store: %w", e.Cluster, err)
		}
		crl, err := core.LoadCRL(e.Policy, sub)
		if err != nil {
			return restored, fmt.Errorf("serve: checkpoint cluster %d: %w", e.Cluster, err)
		}
		s.cache.install(e.Cluster, crl, e.Importance, e.TrainedAt)
		restored++
	}
	return restored, nil
}
