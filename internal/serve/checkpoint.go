package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
)

// checkpointVersion guards the wire format. Version 2 frames every section
// with a length + CRC so a torn write or a flipped bit damages one cluster's
// snapshot, not the whole restore.
const checkpointVersion = 2

// checkpointMagic opens every v2 checkpoint. Version 1 files were bare JSON
// (which can never start with these bytes), so LoadCheckpoint sniffs the
// magic to stay compatible with old checkpoints.
var checkpointMagic = []byte("DCTACKP\x02")

// checkpointCRC is CRC32-Castagnoli, hardware-accelerated on amd64/arm64.
var checkpointCRC = crc32.MakeTable(crc32.Castagnoli)

// maxSectionBytes bounds a single framed section; a length beyond this means
// the frame stream itself is corrupt (not just one payload), so the restore
// stops rather than reading garbage.
const maxSectionBytes = 64 << 20

// checkpoint is the persisted form of the policy cache. Each entry carries a
// full core.CRL snapshot (config + template + policy weights), so a restart
// resumes serving warm without retraining ("the training phase merely needs
// to be conducted once in advance" — paper footnote 1). The historical store
// itself is the deployment's data and is reattached on load, exactly like
// core.LoadCRL.
//
// On disk (v2) the layout is:
//
//	magic | section(header) | section(entry 0) | section(entry 1) | ...
//
// where each section is [4-byte BE payload length][4-byte BE CRC32-C][JSON].
// v1 files were one bare JSON checkpoint object and still load.
type checkpoint struct {
	Version int               `json:"version"`
	SavedAt time.Time         `json:"saved_at"`
	Entries []checkpointEntry `json:"entries,omitempty"`
}

type checkpointEntry struct {
	Cluster    int       `json:"cluster"`
	TrainedAt  time.Time `json:"trained_at"`
	Importance []float64 `json:"importance"`
	// Provenance is "speculative" for pre-trained policies no request has
	// confirmed yet — they restore with the same discounted TTL/drift budget
	// they had in the saving process. Absent (pre-PR7 checkpoints included)
	// means demand-confirmed; such entries restore as plain warm policies.
	Provenance string          `json:"provenance,omitempty"`
	Policy     json.RawMessage `json:"policy"`
}

// provSpeculativeName is checkpointEntry.Provenance's wire value for
// unpromoted speculative entries.
const provSpeculativeName = "speculative"

// provReplicaName is checkpointEntry.Provenance's wire value for policies a
// peer replicated here: they restore with the same TTL exemption they had.
const provReplicaName = "replica"

// writeSection frames one JSON payload.
func writeSection(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, checkpointCRC))
	if _, err := w.Write(frame[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readSection returns the next framed payload and whether its CRC matched.
// io.EOF means a clean end of stream; any other error means the framing
// itself is broken (truncated frame, absurd length) and the stream cannot be
// advanced further.
func readSection(r io.Reader) (payload []byte, ok bool, err error) {
	var frame [8]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		if err == io.EOF {
			return nil, false, io.EOF
		}
		return nil, false, fmt.Errorf("truncated section frame: %w", err)
	}
	n := binary.BigEndian.Uint32(frame[0:4])
	if n > maxSectionBytes {
		return nil, false, fmt.Errorf("section length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, false, fmt.Errorf("truncated section payload: %w", err)
	}
	want := binary.BigEndian.Uint32(frame[4:8])
	return payload, crc32.Checksum(payload, checkpointCRC) == want, nil
}

// SaveCheckpoint serializes every resident, healthy cache entry, most
// recently used first, in the CRC-framed v2 format.
func (s *Server) SaveCheckpoint(w io.Writer) error {
	return s.SaveCheckpointFor(w, nil)
}

// SaveCheckpointFor is SaveCheckpoint restricted to the clusters keep admits
// (nil keeps everything). The cluster tier uses it to export exactly the
// sections a joining shard owns — the stream is a complete, self-contained
// v2 checkpoint either way.
func (s *Server) SaveCheckpointFor(w io.Writer, keep func(cluster int) bool) error {
	if _, err := w.Write(checkpointMagic); err != nil {
		return fmt.Errorf("serve: checkpoint write: %w", err)
	}
	header := checkpoint{Version: checkpointVersion, SavedAt: s.cfg.Now()}
	if err := writeSection(w, header); err != nil {
		return fmt.Errorf("serve: checkpoint header: %w", err)
	}
	for _, e := range s.cache.snapshot() {
		if keep != nil && !keep(e.key) {
			continue
		}
		if err := s.writeEntrySection(w, e); err != nil {
			return err
		}
	}
	return nil
}

// SaveCheckpointPage is SaveCheckpointFor in ascending-cluster order with a
// resumable cursor: only clusters strictly greater than after are written,
// at most limit entries (limit <= 0 means all). The deterministic order is
// what makes GET /v1/checkpoint?after=K chunkable — a puller walks the key
// space in pages, and a page short of limit entries signals the end. Returns
// the number of entry sections written.
func (s *Server) SaveCheckpointPage(w io.Writer, keep func(cluster int) bool, after, limit int) (int, error) {
	entries := s.cache.snapshot()
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	if _, err := w.Write(checkpointMagic); err != nil {
		return 0, fmt.Errorf("serve: checkpoint write: %w", err)
	}
	header := checkpoint{Version: checkpointVersion, SavedAt: s.cfg.Now()}
	if err := writeSection(w, header); err != nil {
		return 0, fmt.Errorf("serve: checkpoint header: %w", err)
	}
	written := 0
	for _, e := range entries {
		if e.key <= after || (keep != nil && !keep(e.key)) {
			continue
		}
		if limit > 0 && written >= limit {
			break
		}
		if err := s.writeEntrySection(w, e); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}

// writeEntrySection frames one cache entry in the checkpoint wire format.
func (s *Server) writeEntrySection(w io.Writer, e *policyEntry) error {
	policy, err := e.crl.MarshalJSON()
	if err != nil {
		return fmt.Errorf("serve: checkpoint cluster %d: %w", e.key, err)
	}
	entry := checkpointEntry{
		Cluster:    e.key,
		TrainedAt:  e.trainedAt,
		Importance: e.imp,
		Policy:     policy,
	}
	switch e.prov {
	case provSpeculative:
		if p := e.promotedAt.Load(); p != 0 {
			// Promoted by real traffic: persists as a demand-confirmed
			// policy whose TTL clock started at promotion.
			entry.TrainedAt = time.Unix(0, p)
		} else {
			entry.Provenance = provSpeculativeName
		}
	case provReplica:
		entry.Provenance = provReplicaName
	}
	if err := writeSection(w, entry); err != nil {
		return fmt.Errorf("serve: checkpoint cluster %d: %w", e.key, err)
	}
	return nil
}

// LoadCheckpoint restores cache entries saved by SaveCheckpoint, returning
// how many were installed. Damage is contained per section: an entry whose
// CRC fails, whose policy no longer decodes, or whose cluster index outlived
// the store is skipped (logged and counted in Stats.CheckpointSkips) and the
// server simply boots cold for that cluster. Only structural damage — a bad
// magic/header or a truncated frame stream — aborts the restore, and even
// then the entries already installed stay.
func (s *Server) LoadCheckpoint(r io.Reader) (int, error) {
	return s.loadCheckpointStream(r, true, s.restoreEntry)
}

// loadCheckpointStream walks a checkpoint stream and calls apply per
// undamaged entry section, counting the entries apply accepted. allowV1
// enables the bare-JSON fallback (file restores keep it; peer streams are
// always v2). Damage containment is apply-independent: readSection framing
// and per-section CRC decide what apply ever sees.
func (s *Server) loadCheckpointStream(r io.Reader, allowV1 bool, apply func(checkpointEntry) bool) (int, error) {
	magic := make([]byte, len(checkpointMagic))
	n, _ := io.ReadFull(r, magic)
	if !bytes.Equal(magic[:n], checkpointMagic) {
		if !allowV1 {
			return 0, fmt.Errorf("serve: checkpoint decode: bad magic")
		}
		// Not a v2 stream: replay the sniffed bytes and try the v1 bare-JSON
		// format.
		return s.loadCheckpointV1(io.MultiReader(bytes.NewReader(magic[:n]), r), apply)
	}

	restored := 0
	sawHeader := false
	for {
		payload, ok, err := readSection(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Framing lost — cannot locate later sections. Keep what loaded.
			if restored > 0 || sawHeader {
				s.skipCheckpointSection("rest of file", err)
				break
			}
			return restored, fmt.Errorf("serve: checkpoint decode: %w", err)
		}
		if !sawHeader {
			sawHeader = true
			if !ok {
				s.skipCheckpointSection("header", fmt.Errorf("crc mismatch"))
				continue
			}
			var header checkpoint
			if err := json.Unmarshal(payload, &header); err != nil {
				return restored, fmt.Errorf("serve: checkpoint header decode: %w", err)
			}
			if header.Version != checkpointVersion {
				return restored, fmt.Errorf("serve: checkpoint version %d, want %d",
					header.Version, checkpointVersion)
			}
			continue
		}
		if !ok {
			s.skipCheckpointSection("entry", fmt.Errorf("crc mismatch"))
			continue
		}
		var entry checkpointEntry
		if err := json.Unmarshal(payload, &entry); err != nil {
			s.skipCheckpointSection("entry", err)
			continue
		}
		if apply(entry) {
			restored++
		}
	}
	return restored, nil
}

// loadCheckpointV1 decodes the original bare-JSON format. Per-entry damage
// is skipped just like v2, but there is no per-entry CRC: a corrupt v1 file
// usually fails the whole JSON decode.
func (s *Server) loadCheckpointV1(r io.Reader, apply func(checkpointEntry) bool) (int, error) {
	var ck checkpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return 0, fmt.Errorf("serve: checkpoint decode: %w", err)
	}
	if ck.Version != 1 {
		return 0, fmt.Errorf("serve: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	restored := 0
	for _, e := range ck.Entries {
		if apply(e) {
			restored++
		}
	}
	return restored, nil
}

// restoreEntry installs one checkpointed cluster, reporting whether it took.
// Failures skip the entry: the cluster boots cold and retrains on demand.
func (s *Server) restoreEntry(e checkpointEntry) bool {
	if _, err := s.store.At(e.Cluster); err != nil {
		return false // checkpoint outlived its history; not damage
	}
	sub, err := s.clusterStore(e.Cluster)
	if err != nil {
		s.skipCheckpointSection(fmt.Sprintf("cluster %d store", e.Cluster), err)
		return false
	}
	crl, err := core.LoadCRL(e.Policy, sub)
	if err != nil {
		s.skipCheckpointSection(fmt.Sprintf("cluster %d policy", e.Cluster), err)
		return false
	}
	prov := provCheckpoint
	switch e.Provenance {
	case provSpeculativeName:
		prov = provSpeculative
	case provReplicaName:
		prov = provReplica
	}
	s.cache.install(e.Cluster, crl, e.Importance, e.TrainedAt, prov)
	return true
}

// decodeEntryPolicy resolves one checkpoint entry's policy against this
// server's store, or reports why it cannot install (a nil error with ok ==
// false means the entry outlived the store — not damage).
func (s *Server) decodeEntryPolicy(e checkpointEntry) (crl *core.CRL, ok bool) {
	if _, err := s.store.At(e.Cluster); err != nil {
		return nil, false // checkpoint outlived its history; not damage
	}
	sub, err := s.clusterStore(e.Cluster)
	if err != nil {
		s.skipCheckpointSection(fmt.Sprintf("cluster %d store", e.Cluster), err)
		return nil, false
	}
	crl, err = core.LoadCRL(e.Policy, sub)
	if err != nil {
		s.skipCheckpointSection(fmt.Sprintf("cluster %d policy", e.Cluster), err)
		return nil, false
	}
	return crl, true
}

func (s *Server) skipCheckpointSection(what string, err error) {
	s.ckptSkips.Add(1)
	s.cfg.Logf("serve: checkpoint: skipping %s: %v", what, err)
}

// SaveCheckpointFile writes the checkpoint atomically: a temp file in the
// same directory is fsynced, renamed over path, and the directory fsynced,
// so a crash mid-save leaves either the old checkpoint or the new one —
// never a torn file.
func (s *Server) SaveCheckpointFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: checkpoint temp: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := s.SaveCheckpoint(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("serve: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: checkpoint close: %w", err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: checkpoint rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // best effort; not all filesystems support dir fsync
		d.Close()
	}
	return nil
}

// LoadCheckpointFile restores from a checkpoint file written by
// SaveCheckpointFile. A missing file is not an error — the server simply
// boots cold — so callers can pass the same path unconditionally.
func (s *Server) LoadCheckpointFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("serve: checkpoint open: %w", err)
	}
	defer f.Close()
	return s.LoadCheckpoint(f)
}
