package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// capturedImportance sums the cluster's true importance over assigned tasks —
// the yardstick for the degraded-vs-warm acceptance bar.
func capturedImportance(allocation []int, cluster int) float64 {
	imp := clusterImportance(cluster)
	var v float64
	for j, proc := range allocation {
		if proc != core.Unassigned {
			v += imp[j]
		}
	}
	return v
}

// TestFallbackAcceptance is the tentpole's acceptance test: with trainings
// failing hard, the degraded path still answers, the answer is feasible, and
// it captures at least 70% of the importance the warm CRL answer captures on
// the same request.
func TestFallbackAcceptance(t *testing.T) {
	ctx := context.Background()
	for cluster := 0; cluster < 2; cluster++ {
		req := AllocateRequest{Signature: []float64{float64(cluster)}}

		// Warm reference: a healthy server trains and serves the CRL answer.
		healthy := newTestServer(t, fastConfig())
		warm, err := healthy.Allocate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Mode != ModeNormal {
			t.Fatalf("healthy answer mode = %q", warm.Mode)
		}

		// Broken server: every training fails, so the same request must come
		// back degraded.
		broken := newTestServer(t, fastConfig())
		broken.cache.train = func(int) (*core.CRL, []float64, error) {
			return nil, nil, errors.New("injected training failure")
		}
		deg, err := broken.Allocate(ctx, req)
		if err != nil {
			t.Fatalf("degraded path errored: %v", err)
		}
		if deg.Mode != ModeDegraded || deg.DegradedReason != DegradedTrainFailed {
			t.Fatalf("mode=%q reason=%q, want degraded/train_failed", deg.Mode, deg.DegradedReason)
		}
		if deg.Cache != CacheBypass {
			t.Fatalf("degraded cache = %q, want %q", deg.Cache, CacheBypass)
		}

		// Feasibility under the true cluster environment.
		prob := broken.problemWithImportance(clusterImportance(cluster))
		if err := prob.CheckFeasible(deg.Allocation); err != nil {
			t.Fatalf("degraded allocation infeasible: %v", err)
		}

		// Quality bar: ≥70% of the warm answer's captured importance.
		warmV := capturedImportance(warm.Allocation, cluster)
		degV := capturedImportance(deg.Allocation, cluster)
		if degV < 0.7*warmV {
			t.Fatalf("cluster %d: degraded captures %.3f < 70%% of warm %.3f (%v vs %v)",
				cluster, degV, warmV, deg.Allocation, warm.Allocation)
		}

		if got := broken.Stats().DegradedCount; got != 1 {
			t.Fatalf("DegradedCount = %d, want 1", got)
		}
	}
}

// TestFallbackUsesLocalModelWhenFitted checks the degraded path keeps the
// DCTA shape: with a fitted local model and features supplied, the combined
// scores flow through CombineScores without erroring, and the answer stays
// feasible.
func TestFallbackUsesLocalModelWhenFitted(t *testing.T) {
	ctx := context.Background()
	cfg := fastConfig()
	cfg.RefitEvery = 4
	s := newTestServer(t, cfg)
	// Fit the local model through the normal feedback path.
	imp := clusterImportance(0)
	for i := 0; i < 6; i++ {
		if _, err := s.Feedback(ctx, FeedbackRequest{
			Signature:  []float64{0.01 * float64(i)},
			Features:   mkFeatures(imp, 0.05, int64(40+i)),
			Allocation: []int{0, 0, 1, 1, core.Unassigned, core.Unassigned},
			Importance: imp,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if local := s.localModel(); local == nil || !local.Fitted() {
		t.Skip("local model did not fit under this refit schedule")
	}
	s.cache.train = func(int) (*core.CRL, []float64, error) {
		return nil, nil, errors.New("down")
	}
	resp, err := s.Allocate(ctx, AllocateRequest{
		Signature: []float64{0},
		Features:  mkFeatures(imp, 0.05, 99),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeDegraded {
		t.Fatalf("mode = %q", resp.Mode)
	}
	prob := s.problemWithImportance(imp)
	if err := prob.CheckFeasible(resp.Allocation); err != nil {
		t.Fatal(err)
	}
}

// TestFallbackValidationStillRejects proves degraded mode never swallows
// malformed requests: validation errors stay 4xx-class even while the policy
// path is down.
func TestFallbackValidationStillRejects(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, fastConfig())
	s.cache.train = func(int) (*core.CRL, []float64, error) {
		return nil, nil, errors.New("down")
	}
	cases := []AllocateRequest{
		{},                           // empty signature
		{Signature: []float64{0, 1}}, // wrong dimension
		{Signature: []float64{0}, Allocator: "nope"},
		{Signature: []float64{0}, Allocator: "dcta"}, // no features/local model
	}
	for i, req := range cases {
		if _, err := s.Allocate(ctx, req); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("case %d: err = %v, want ErrBadRequest", i, err)
		}
	}
}

// TestFallbackOnCanceledContext: a caller that is already gone gets its
// context error back, not a degraded answer nobody will read.
func TestFallbackOnCanceledContext(t *testing.T) {
	s := newTestServer(t, fastConfig())
	s.cache.train = func(int) (*core.CRL, []float64, error) {
		time.Sleep(50 * time.Millisecond)
		return nil, nil, errors.New("slow failure")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFallbackDeadlineDegrades: an expired request deadline while waiting on
// a slow training produces a degraded answer tagged "deadline" — the HTTP
// client still gets a 200 with a feasible allocation.
func TestFallbackDeadlineDegrades(t *testing.T) {
	s := newTestServer(t, fastConfig())
	release := make(chan struct{})
	s.cache.train = func(int) (*core.CRL, []float64, error) {
		<-release
		return nil, nil, fmt.Errorf("released")
	}
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	resp, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeDegraded || resp.DegradedReason != DegradedDeadline {
		t.Fatalf("mode=%q reason=%q, want degraded/deadline", resp.Mode, resp.DegradedReason)
	}
}
