package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func postJSON(t *testing.T, client *http.Client, url string, body any, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, buf.String())
		}
	}
	return resp.StatusCode, buf.String()
}

// TestHTTPEndToEnd drives all four endpoints through the real handler stack.
func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, fastConfig())
	ts := httptest.NewServer(NewHandler(s, HTTPOptions{}))
	defer ts.Close()

	// healthz while live.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Allocate: cold then warm.
	var ar AllocateResponse
	code, body := postJSON(t, ts.Client(), ts.URL+"/v1/allocate",
		AllocateRequest{Signature: []float64{0}}, &ar)
	if code != http.StatusOK {
		t.Fatalf("allocate = %d: %s", code, body)
	}
	if ar.Cache != CacheMiss || len(ar.Allocation) != 6 {
		t.Fatalf("cold allocate = %+v", ar)
	}
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/allocate",
		AllocateRequest{Signature: []float64{0}}, &ar)
	if code != http.StatusOK || ar.Cache != CacheHit {
		t.Fatalf("warm allocate = %d %+v", code, ar)
	}

	// Feedback.
	var fr FeedbackResponse
	code, body = postJSON(t, ts.Client(), ts.URL+"/v1/feedback", FeedbackRequest{
		Signature:  []float64{0},
		Features:   mkFeatures(clusterImportance(0), 0.05, 9),
		Allocation: ar.Allocation,
	}, &fr)
	if code != http.StatusOK {
		t.Fatalf("feedback = %d: %s", code, body)
	}
	if fr.Samples != 6 {
		t.Fatalf("feedback = %+v", fr)
	}

	// Stats reflects the traffic.
	resp, err = ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Allocates != 2 || stats.Feedbacks != 1 || stats.Cache.Trainings != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Latency.Count != 2 || stats.Latency.P99 < stats.Latency.P50 {
		t.Fatalf("latency stats = %+v", stats.Latency)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := newTestServer(t, fastConfig())
	ts := httptest.NewServer(NewHandler(s, HTTPOptions{}))
	defer ts.Close()

	// Bad request body.
	resp, err := ts.Client().Post(ts.URL+"/v1/allocate", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", resp.StatusCode)
	}

	// Unknown fields rejected.
	code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/allocate",
		map[string]any{"signature": []float64{0}, "bogus": 1}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown field = %d", code)
	}

	// Validation error surfaces as 400.
	code, body := postJSON(t, ts.Client(), ts.URL+"/v1/allocate",
		AllocateRequest{Signature: []float64{0}, Allocator: "bogus"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown allocator = %d: %s", code, body)
	}

	// Wrong methods.
	for _, url := range []string{"/v1/allocate", "/v1/feedback"} {
		resp, err := ts.Client().Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/stats", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats = %d", resp.StatusCode)
	}
}

// TestServeListenerGracefulDrain covers the SIGTERM path: canceling the serve
// context flips healthz to 503, rejects new work with 503, and returns once
// in-flight requests finish.
func TestServeListenerGracefulDrain(t *testing.T) {
	s := newTestServer(t, fastConfig())
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- ListenAndServe(ctx, "127.0.0.1:0", s, HTTPOptions{DrainTimeout: 5 * time.Second},
			func(a net.Addr) { addrc <- a.String() })
	}()
	base := "http://" + <-addrc

	var ar AllocateResponse
	if code, body := postJSON(t, http.DefaultClient, base+"/v1/allocate",
		AllocateRequest{Signature: []float64{1}}, &ar); code != http.StatusOK {
		t.Fatalf("allocate before drain = %d: %s", code, body)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("drain returned %v", err)
	}
	// The in-process server object is now draining: allocates keep answering
	// but through the degraded path, with no new trainings.
	resp, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{1}})
	if err != nil {
		t.Fatalf("allocate after drain: %v", err)
	}
	if resp.Mode != ModeDegraded || resp.DegradedReason != DegradedDraining {
		t.Fatalf("post-drain mode=%q reason=%q, want degraded/draining", resp.Mode, resp.DegradedReason)
	}
	if _, err := s.Feedback(context.Background(), FeedbackRequest{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain feedback err = %v", err)
	}
}
