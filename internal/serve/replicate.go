package serve

// Replica-group replication: the serve-side half of the cluster tier's R=2
// ownership. After every successful demand training (and the first promotion
// of a speculative policy) the primary owner pushes the cluster's policy
// snapshot to its replica owners over a bounded, retrying, strictly
// asynchronous queue. The wire format is the checkpoint-v2 section framing —
// magic, CRC-framed header, one CRC-framed entry per cluster — POSTed to
// /v1/replicate; the receiver installs each entry through the versioned
// idempotence rule (newer trainedAt wins, stale pushes are no-ops), so
// pushes can repeat, reorder, or race local trainings safely.
//
// The availability contract: replication never blocks the allocate path.
// Enqueue is a non-blocking channel send — a full queue (slow or dead
// replica) degrades that training to unreplicated and counts it in
// replication.dropped rather than applying backpressure.

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/rawhttp"
)

// Replication defaults.
const (
	// DefaultReplicationQueue bounds pending replication jobs; overflow
	// degrades to unreplicated.
	DefaultReplicationQueue = 256
	// DefaultReplicationRetries is the per-peer retry budget beyond the
	// first attempt.
	DefaultReplicationRetries = 2
	// DefaultReplicationTimeout bounds one push round trip.
	DefaultReplicationTimeout = 2 * time.Second
	// DefaultReplicationBackoff spaces retry attempts.
	DefaultReplicationBackoff = 25 * time.Millisecond
)

// ReplicationConfig wires a server's replication sender.
type ReplicationConfig struct {
	// PeersFor returns the replica peers' addresses for a cluster key —
	// typically the ring's successor owners minus this node. Empty means the
	// cluster has no replica (single-shard fleet) and the job is a no-op.
	PeersFor func(cluster int) []string
	// QueueLen bounds pending replication jobs (default 256). Overflow drops
	// the job (the training stays unreplicated) — never blocks.
	QueueLen int
	// Retries is the per-peer retry budget beyond the first attempt
	// (default 2).
	Retries int
	// RetryBackoff spaces retries (default 25ms).
	RetryBackoff time.Duration
	// Timeout bounds one push round trip (default 2s).
	Timeout time.Duration
	// Send overrides the transport (tests inject blackholes and fakes). The
	// default POSTs the snapshot to /v1/replicate on the peer over a fresh
	// rawhttp connection.
	Send func(addr string, snapshot []byte) error
	// Logf sinks replication errors (default: the server's Logf).
	Logf func(format string, args ...any)
}

// replicator is the background push queue: one sender goroutine drains
// cluster keys and ships each key's current snapshot to its replica peers.
type replicator struct {
	s   *Server
	cfg ReplicationConfig

	// peersFor is the live peer-resolution function. It starts as
	// cfg.PeersFor and is swapped by SetReplicationPeers when the gossip
	// membership plane moves ownership.
	peersFor atomic.Pointer[func(cluster int) []string]

	jobs chan int
	stop chan struct{}
	done chan struct{}

	enqueued atomic.Int64 // jobs accepted onto the queue
	jobsDone atomic.Int64 // jobs fully processed (pushed, failed, or empty)
	pushes   atomic.Int64 // successful per-peer pushes
	dropped  atomic.Int64 // jobs refused by a full queue
	errors   atomic.Int64 // per-peer pushes that exhausted their retries
}

// EnableReplication starts the replication sender. Call once, after
// SetClusterIdentity and before serving; Drain stops the sender. The
// receiver side (POST /v1/replicate) is always mounted and needs no
// enabling.
func (s *Server) EnableReplication(cfg ReplicationConfig) error {
	if cfg.PeersFor == nil {
		return fmt.Errorf("serve: replication needs PeersFor")
	}
	if s.repl != nil {
		return fmt.Errorf("serve: replication already enabled")
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultReplicationQueue
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = DefaultReplicationRetries
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultReplicationBackoff
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultReplicationTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = s.cfg.Logf
	}
	if cfg.Send == nil {
		cfg.Send = func(addr string, snapshot []byte) error {
			conn, err := rawhttp.Dial(addr)
			if err != nil {
				return err
			}
			defer conn.Close()
			conn.Timeout = cfg.Timeout
			code, body, err := conn.Do(rawhttp.BuildFrame("/v1/replicate", snapshot))
			if err != nil {
				return err
			}
			if code != http.StatusOK {
				return fmt.Errorf("peer answered %d: %s", code, body)
			}
			return nil
		}
	}
	r := &replicator{
		s:    s,
		cfg:  cfg,
		jobs: make(chan int, cfg.QueueLen),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	r.peersFor.Store(&cfg.PeersFor)
	s.repl = r
	s.cache.onReplicate = r.enqueue
	go r.run()
	return nil
}

// SetReplicationPeers swaps the replication sender's peer-resolution
// function in place. The gossip membership plane calls this when the
// member set changes, so pushes re-target the new owners without
// restarting the sender or losing queued jobs. Returns an error if
// replication was never enabled (single-owner deployments have no sender).
func (s *Server) SetReplicationPeers(peersFor func(cluster int) []string) error {
	if peersFor == nil {
		return fmt.Errorf("serve: replication needs PeersFor")
	}
	if s.repl == nil {
		return fmt.Errorf("serve: replication not enabled")
	}
	s.repl.peersFor.Store(&peersFor)
	return nil
}

// enqueue is the cache's onReplicate hook: strictly non-blocking, so the
// training goroutine (and through it the allocate path) never waits on a
// slow replica.
func (r *replicator) enqueue(cluster int) {
	select {
	case r.jobs <- cluster:
		r.enqueued.Add(1)
	default:
		r.dropped.Add(1)
	}
}

func (r *replicator) run() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		case cluster := <-r.jobs:
			r.push(cluster)
			r.jobsDone.Add(1)
		}
	}
}

// push snapshots one cluster's policy and ships it to every replica peer
// with bounded retries. The snapshot is taken at push time, not enqueue
// time, so a queue of stale jobs for a retrained cluster ships the newest
// version (and the receiver's version gate makes the repeats no-ops).
func (r *replicator) push(cluster int) {
	peers := (*r.peersFor.Load())(cluster)
	if len(peers) == 0 {
		return
	}
	var buf bytes.Buffer
	n, err := r.s.SaveCheckpointPage(&buf, func(k int) bool { return k == cluster }, -1, 0)
	if err != nil || n == 0 {
		// The entry was evicted or invalidated between training and push;
		// nothing to replicate.
		return
	}
	for _, peer := range peers {
		if r.sendWithRetry(peer, buf.Bytes()) {
			r.pushes.Add(1)
		} else {
			r.errors.Add(1)
			r.cfg.Logf("serve: replicate cluster %d to %s: push failed (replica stays behind until anti-entropy)", cluster, peer)
		}
	}
}

func (r *replicator) sendWithRetry(addr string, snapshot []byte) bool {
	for attempt := 0; ; attempt++ {
		if err := r.cfg.Send(addr, snapshot); err == nil {
			return true
		}
		if attempt >= r.cfg.Retries {
			return false
		}
		select {
		case <-r.stop:
			return false
		case <-time.After(r.cfg.RetryBackoff):
		}
	}
}

// settled reports whether every accepted job has been fully processed — the
// quiescence check tests and the load generator poll before killing a
// primary.
func (r *replicator) settled() bool {
	return r.enqueued.Load() == r.jobsDone.Load()
}

// stopReplication signals the sender to exit. Idempotent; called from Drain.
func (s *Server) stopReplication() {
	if s.repl == nil {
		return
	}
	s.replStop.Do(func() { close(s.repl.stop) })
}

// ReplicationSettled reports whether the replication queue is fully drained
// (trivially true when replication is not enabled).
func (s *Server) ReplicationSettled() bool {
	if s.repl == nil {
		return true
	}
	return s.repl.settled()
}

// ReplicationStats is the replication section of /v1/stats (present only
// when the sender is enabled; the receiver-side install counters live in
// CacheStats either way).
type ReplicationStats struct {
	QueueLen int `json:"queue_len"`
	// Enqueued counts jobs accepted onto the queue, Pushes successful
	// per-peer transfers, Dropped jobs refused by a full queue (those
	// trainings stay unreplicated until anti-entropy), and Errors per-peer
	// pushes that exhausted their retries.
	Enqueued int64 `json:"enqueued"`
	Pushes   int64 `json:"pushes"`
	Dropped  int64 `json:"replication_dropped"`
	Errors   int64 `json:"errors"`
}

func (s *Server) replicationStats() *ReplicationStats {
	r := s.repl
	if r == nil {
		return nil
	}
	return &ReplicationStats{
		QueueLen: cap(r.jobs),
		Enqueued: r.enqueued.Load(),
		Pushes:   r.pushes.Load(),
		Dropped:  r.dropped.Load(),
		Errors:   r.errors.Load(),
	}
}

// handleReplicate serves POST /v1/replicate: a checkpoint-v2 stream of
// policy entries pushed by a peer (normally the clusters' primary owner).
// Installation is versioned per entry — only strictly-newer policies
// replace resident ones — which makes the endpoint idempotent by
// (cluster, TrainedAt).
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	res, err := s.InstallReplicated(http.MaxBytesReader(w, r.Body, maxBodyBytes), s.isPrimaryFor)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// isPrimaryFor reports whether this node's recorded cluster identity names
// the cluster as primary-owned. Standalone servers (no identity) hold
// everything as replica.
func (s *Server) isPrimaryFor(cluster int) bool {
	id := s.ClusterIdentity()
	if id == nil {
		return false
	}
	i := sort.SearchInts(id.OwnedClusters, cluster)
	return i < len(id.OwnedClusters) && id.OwnedClusters[i] == cluster
}

// PolicyDigest identifies one resident policy's exact version: the training
// timestamp plus a CRC32-C over the marshaled policy bytes. Two owners hold
// bitwise-identical state for a cluster iff their digests match — the
// anti-entropy convergence check.
type PolicyDigest struct {
	Cluster   int       `json:"cluster"`
	TrainedAt time.Time `json:"trained_at"`
	CRC       uint32    `json:"crc"`
	// Bytes is the marshaled policy length (a cheap second collision guard).
	Bytes int `json:"bytes"`
}

// PolicyDigests snapshots the digest of every resident, healthy policy.
func (s *Server) PolicyDigests() (map[int]PolicyDigest, error) {
	out := make(map[int]PolicyDigest)
	for _, e := range s.cache.snapshot() {
		blob, err := e.crl.MarshalJSON()
		if err != nil {
			return nil, fmt.Errorf("serve: digest cluster %d: %w", e.key, err)
		}
		out[e.key] = PolicyDigest{
			Cluster:   e.key,
			TrainedAt: e.trainedAt,
			CRC:       crc32.Checksum(blob, checkpointCRC),
			Bytes:     len(blob),
		}
	}
	return out, nil
}

// InstallResult summarizes one replicated-stream install.
type InstallResult struct {
	// Sections is the number of undamaged entry sections decoded (installed
	// or not) — the page-size signal anti-entropy pagination terminates on.
	Sections int `json:"sections"`
	// Installed counts entries that were strictly newer than resident state.
	Installed int `json:"installed"`
	// Stale counts entries refused by the version gate (idempotent no-ops).
	Stale int `json:"stale"`
	// MaxCluster is the highest cluster key seen (-1 when none) — the
	// ?after= cursor for the next anti-entropy page.
	MaxCluster int `json:"max_cluster"`
}

// InstallReplicated installs a peer's checkpoint-v2 stream through the
// versioned idempotence gate. primary, when non-nil, decides the installed
// provenance per cluster: primary-owned clusters install as warm
// (checkpoint) entries, everything else as replica-held copies (TTL-exempt).
// Unlike LoadCheckpoint this never accepts the v1 bare-JSON format — peers
// always speak v2.
func (s *Server) InstallReplicated(r io.Reader, primary func(cluster int) bool) (InstallResult, error) {
	res := InstallResult{MaxCluster: -1}
	_, err := s.loadCheckpointStream(r, false, func(e checkpointEntry) bool {
		res.Sections++
		if e.Cluster > res.MaxCluster {
			res.MaxCluster = e.Cluster
		}
		crl, ok := s.decodeEntryPolicy(e)
		if !ok {
			return false
		}
		prov := provReplica
		if primary != nil && primary(e.Cluster) {
			prov = provCheckpoint
		}
		if !s.cache.installVersioned(e.Cluster, crl, e.Importance, e.TrainedAt, prov) {
			res.Stale++
			return false
		}
		res.Installed++
		return true
	})
	return res, err
}
