// Package serve turns the one-shot TATIM pipeline into a long-running
// allocation service: the serve-side shape of Alg. 1. A request carries the
// sensing signature Z observed right now; the service clusters it onto the
// nearest historical environment (§III-C's e = kNN(ℰ, Z)), looks the cluster
// up in a per-cluster policy cache, and rolls the cached policy to a
// feasible allocation. Cold clusters train exactly once under concurrent
// identical requests (singleflight); warm answers are a kNN probe plus a
// greedy DQN rollout on a pooled inference replica. Feedback requests stream
// alloc.LocalModel samples online and may append observed environments to
// the historical store, so the service keeps re-solving TATIM as importance
// drifts — the paper's motivating loop (§III, Theorem 1) — without ever
// retraining from scratch: entries retrain per cluster on TTL expiry or
// observed importance drift, and checkpoints serialize the cache through
// core.CRL.MarshalJSON so a restarted server resumes warm.
//
// The package splits into:
//
//   - cache.go      — the per-cluster policy cache (LRU + TTL + drift +
//     singleflight + inference-replica pools), the per-cluster training
//     circuit breaker and the global bounded-concurrency training gate
//   - server.go     — Server: allocate/feedback/stats against a template,
//     store and local model
//   - fallback.go   — the degraded-mode allocator: when the policy path
//     fails (training error, budget overrun, open breaker, saturated
//     gate, draining), answer from a density-greedy knapsack pack over
//     the kNN-matched importance, corrected by the local SVM when fitted
//   - http.go       — the HTTP/JSON API (/v1/allocate, /v1/feedback,
//     /v1/stats, /healthz) with request timeouts, panic recovery and
//     graceful drain
//   - checkpoint.go — warm-start snapshots of the policy cache with
//     CRC-framed sections and atomic file replacement
package serve

import (
	"errors"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
)

// Common errors.
var (
	// ErrBadRequest is returned for malformed allocation/feedback requests.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrNonFinite is returned (wrapped in ErrBadRequest) when a request
	// carries NaN or ±Inf where a finite number is required. JSON cannot
	// encode them natively, but a client using an extended encoder could
	// smuggle one in — and a single NaN data size silently poisons every
	// knapsack feasibility comparison downstream, so they are rejected at
	// the boundary.
	ErrNonFinite = errors.New("non-finite number")
	// ErrDraining is returned once the server has begun shutting down.
	ErrDraining = errors.New("serve: draining")
	// ErrCircuitOpen reports that a cluster's training circuit breaker is
	// open: recent trainings kept failing, so the policy path refuses to
	// retry until the backoff window elapses. Allocate answers such
	// requests from the degraded fallback path instead of surfacing this.
	ErrCircuitOpen = errors.New("serve: training circuit open")
	// ErrTrainSaturated reports that the global training gate is full: the
	// concurrency semaphore and its queue are both occupied, so no new
	// cluster training may start. Allocate degrades instead of queueing.
	ErrTrainSaturated = errors.New("serve: training gate saturated")
	// ErrTrainBudget reports that a training ran longer than
	// Config.TrainBudget. The training continues in the background and
	// will warm the cache; the waiting request degrades.
	ErrTrainBudget = errors.New("serve: training exceeded budget")
)

// Config tunes the allocation service.
type Config struct {
	// ClusterNeighborhood is the number of nearest stored environments that
	// form a cluster's training sub-store — the per-cluster slice of history
	// the policy generalizes over (default 5).
	ClusterNeighborhood int
	// CRL is the per-cluster training configuration (episode budget, kNN
	// blending, DQN shape). Zero values fall back to core defaults; a zero
	// StopWindow additionally enables serve's convergence-based early
	// stopping (window 3, floor 6 episodes — set StopWindow < 0 to burn the
	// full budget unconditionally).
	CRL core.CRLConfig
	// DisableWarmStart turns off neighbour warm-start: by default a cold
	// cluster's training seeds its DQN from the nearest already-trained
	// resident policy (signature distance) and fine-tunes on a reduced
	// episode budget instead of training from scratch.
	DisableWarmStart bool
	// WarmEpisodeFrac scales the episode budget of warm-started trainings
	// (default 1/4, at least one episode). The transferred policy only
	// needs fine-tuning, not a full from-scratch run.
	WarmEpisodeFrac float64
	// SpeculateNeighbors enables the background pre-trainer: after every
	// successful demand training, up to this many nearest untrained
	// neighbour clusters are trained speculatively on idle training-gate
	// capacity, strictly subordinate to demand trainings (a speculative run
	// only starts when the gate has a free slot and nothing demand-side is
	// pending, and yields between episodes as soon as demand arrives).
	// 0 (the default) disables speculation.
	SpeculateNeighbors int
	// CacheCapacity bounds resident cluster policies; least-recently-used
	// entries are evicted beyond it (default 64).
	CacheCapacity int
	// PolicyTTL retrains entries older than this on their next use.
	// 0 disables age-based retraining.
	PolicyTTL time.Duration
	// DriftThreshold invalidates a cluster's policy when feedback reports an
	// observed importance whose relative L2 distance from the policy's
	// train-time importance exceeds it (default 0.35; <0 disables).
	DriftThreshold float64
	// Replicas bounds each entry's pool of inference clones; excess
	// concurrent rollouts clone on demand and the extras are dropped
	// (default 8).
	Replicas int
	// CacheShards is the target shard count for the policy-cache lock:
	// cluster keys map onto a power-of-two shard array so cache hits never
	// serialize behind one global mutex or an unrelated cluster's cold
	// train. Rounded down to the largest power of two ≤ min(CacheShards,
	// CacheCapacity), so a capacity-1 cache keeps exact global LRU
	// semantics (default 8).
	CacheShards int
	// MaxBatch bounds the request coalescer's micro-batch: concurrent
	// warm CRL rollouts for one cluster gather onto a single
	// neural.ForwardBatch pass of at most this many requests (default 16;
	// 1 disables coalescing).
	MaxBatch int
	// BatchWindow is how long the first queued request waits for
	// batch-mates before the partial batch flushes (default 200µs). The
	// uncontended batch-1 fast path never arms this timer.
	BatchWindow time.Duration
	// RefitEvery refits the local model after this many fresh feedback
	// samples (default 256).
	RefitEvery int
	// MaxFeedback bounds the retained feedback sample window (default 4096).
	MaxFeedback int
	// W1, W2 and CoverageTarget mirror the alloc.DCTA knobs for requests
	// that carry per-task features (defaults 0.5 / 0.5 / 0.9).
	W1, W2         float64
	CoverageTarget float64
	// Seed derives deterministic per-cluster training seeds.
	Seed int64
	// Now is the service clock (tests inject a fake; default time.Now).
	Now func() time.Time

	// TrainBudget bounds how long an allocate request waits for the policy
	// training it leads or joins; past the budget the request answers from
	// the degraded fallback path while the training finishes in the
	// background and warms the cache. 0 (the default) waits until the
	// request context expires. The budget timer runs on the wall clock,
	// not Now.
	TrainBudget time.Duration
	// BreakerThreshold opens a cluster's training circuit breaker after
	// this many consecutive training failures (default 3; <0 disables the
	// breaker). While open, requests for the cluster degrade instead of
	// retraining; after the backoff window a single half-open probe
	// training decides whether the breaker closes or reopens.
	BreakerThreshold int
	// BreakerBackoff is the first open window. Each reopen doubles it
	// (with up to 20% deterministic jitter) up to BreakerMaxBackoff
	// (defaults 1s / 2min).
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// TrainConcurrency bounds concurrently running cluster trainings — the
	// global gate that keeps a cold burst of distinct signatures from
	// fork-bombing trainings (default GOMAXPROCS/2, min 1).
	TrainConcurrency int
	// TrainQueue bounds trainings waiting on the gate beyond the running
	// ones; when queue and gate are both full, new cold clusters answer
	// degraded instead of queueing (default 2×TrainConcurrency).
	TrainQueue int
	// Logf sinks service logs: recovered panics, breaker transitions,
	// skipped checkpoint sections (default log.Printf).
	Logf func(format string, args ...any)
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) withDefaults() Config {
	if c.ClusterNeighborhood < 1 {
		c.ClusterNeighborhood = 5
	}
	if c.CacheCapacity < 1 {
		c.CacheCapacity = 64
	}
	if c.WarmEpisodeFrac <= 0 || c.WarmEpisodeFrac > 1 {
		c.WarmEpisodeFrac = 1.0 / 4
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.35
	}
	if c.Replicas < 1 {
		c.Replicas = 8
	}
	if c.CacheShards < 1 {
		c.CacheShards = 8
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 16
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.RefitEvery < 1 {
		c.RefitEvery = 256
	}
	if c.MaxFeedback < 1 {
		c.MaxFeedback = 4096
	}
	if c.W1 == 0 && c.W2 == 0 {
		c.W1, c.W2 = 0.5, 0.5
	}
	if c.CoverageTarget <= 0 || c.CoverageTarget > 1 {
		c.CoverageTarget = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = time.Second
	}
	if c.BreakerMaxBackoff <= 0 {
		c.BreakerMaxBackoff = 2 * time.Minute
	}
	if c.TrainConcurrency < 1 {
		c.TrainConcurrency = runtime.GOMAXPROCS(0) / 2
		if c.TrainConcurrency < 1 {
			c.TrainConcurrency = 1
		}
	}
	if c.TrainQueue < 1 {
		c.TrainQueue = 2 * c.TrainConcurrency
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}
