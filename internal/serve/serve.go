// Package serve turns the one-shot TATIM pipeline into a long-running
// allocation service: the serve-side shape of Alg. 1. A request carries the
// sensing signature Z observed right now; the service clusters it onto the
// nearest historical environment (§III-C's e = kNN(ℰ, Z)), looks the cluster
// up in a per-cluster policy cache, and rolls the cached policy to a
// feasible allocation. Cold clusters train exactly once under concurrent
// identical requests (singleflight); warm answers are a kNN probe plus a
// greedy DQN rollout on a pooled inference replica. Feedback requests stream
// alloc.LocalModel samples online and may append observed environments to
// the historical store, so the service keeps re-solving TATIM as importance
// drifts — the paper's motivating loop (§III, Theorem 1) — without ever
// retraining from scratch: entries retrain per cluster on TTL expiry or
// observed importance drift, and checkpoints serialize the cache through
// core.CRL.MarshalJSON so a restarted server resumes warm.
//
// The package splits into:
//
//   - cache.go      — the per-cluster policy cache (LRU + TTL + drift +
//     singleflight + inference-replica pools)
//   - server.go     — Server: allocate/feedback/stats against a template,
//     store and local model
//   - http.go       — the HTTP/JSON API (/v1/allocate, /v1/feedback,
//     /v1/stats, /healthz) with request timeouts and graceful drain
//   - checkpoint.go — warm-start snapshots of the policy cache
package serve

import (
	"errors"
	"time"

	"repro/internal/core"
)

// Common errors.
var (
	// ErrBadRequest is returned for malformed allocation/feedback requests.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrDraining is returned once the server has begun shutting down.
	ErrDraining = errors.New("serve: draining")
)

// Config tunes the allocation service.
type Config struct {
	// ClusterNeighborhood is the number of nearest stored environments that
	// form a cluster's training sub-store — the per-cluster slice of history
	// the policy generalizes over (default 5).
	ClusterNeighborhood int
	// CRL is the per-cluster training configuration (episode budget, kNN
	// blending, DQN shape). Zero values fall back to core defaults.
	CRL core.CRLConfig
	// CacheCapacity bounds resident cluster policies; least-recently-used
	// entries are evicted beyond it (default 64).
	CacheCapacity int
	// PolicyTTL retrains entries older than this on their next use.
	// 0 disables age-based retraining.
	PolicyTTL time.Duration
	// DriftThreshold invalidates a cluster's policy when feedback reports an
	// observed importance whose relative L2 distance from the policy's
	// train-time importance exceeds it (default 0.35; <0 disables).
	DriftThreshold float64
	// Replicas bounds each entry's pool of inference clones; excess
	// concurrent rollouts clone on demand and the extras are dropped
	// (default 8).
	Replicas int
	// RefitEvery refits the local model after this many fresh feedback
	// samples (default 256).
	RefitEvery int
	// MaxFeedback bounds the retained feedback sample window (default 4096).
	MaxFeedback int
	// W1, W2 and CoverageTarget mirror the alloc.DCTA knobs for requests
	// that carry per-task features (defaults 0.5 / 0.5 / 0.9).
	W1, W2         float64
	CoverageTarget float64
	// Seed derives deterministic per-cluster training seeds.
	Seed int64
	// Now is the service clock (tests inject a fake; default time.Now).
	Now func() time.Time
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) withDefaults() Config {
	if c.ClusterNeighborhood < 1 {
		c.ClusterNeighborhood = 5
	}
	if c.CacheCapacity < 1 {
		c.CacheCapacity = 64
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.35
	}
	if c.Replicas < 1 {
		c.Replicas = 8
	}
	if c.RefitEvery < 1 {
		c.RefitEvery = 256
	}
	if c.MaxFeedback < 1 {
		c.MaxFeedback = 4096
	}
	if c.W1 == 0 && c.W2 == 0 {
		c.W1, c.W2 = 0.5, 0.5
	}
	if c.CoverageTarget <= 0 || c.CoverageTarget > 1 {
		c.CoverageTarget = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}
