package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// errBatchError marks a warm rollout that died because its micro-batch
// panicked. The requests sharing that batch degrade to the fallback path
// tagged DegradedBatch; requests in other batches (and later requests on the
// same cluster) are untouched.
var errBatchError = errors.New("serve: batch rollout panicked")

// batchWaiter is one warm CRL rollout waiting in a coalescer. The caller
// fills env (the request's defined environment) before handing the waiter
// in; the batch leader writes the allocation into out (reusing its backing
// array) and signals sig exactly once. Waiters are embedded in the pooled
// per-request workspace, so steady state allocates none of this.
type batchWaiter struct {
	env *core.Environment
	out core.Allocation
	sig chan batchSignal // buffered 1

	// soloEnvs/soloOut are the batch-1 fast path's preallocated
	// single-element batch views.
	soloEnvs [1]*core.Environment
	soloOut  [1]core.Allocation
}

type batchSignal struct {
	err error
}

// coalescer gathers concurrent warm rollouts for one cached policy into
// micro-batches over a single pooled replica, so N requests cost one
// neural.ForwardBatch pass per MDP step instead of N sequential forwards.
//
// Shape:
//
//   - Uncontended requests take the batch-1 fast path: no queue, no timer,
//     no extra latency — exactly the pre-coalescer behavior. The fast path
//     is taken while the queue is empty and fewer than poolCap rollout
//     batches are in flight (the replica pool still has headroom, so
//     batching would only add window latency).
//   - Once the pool is saturated, arrivals queue. The queue flushes when it
//     reaches maxBatch (the arriving request runs the batch inline — no
//     goroutine handoff) or when the window timer fires, whichever first.
//   - A queued request whose context ends before its batch flushes removes
//     itself and degrades; it never waits past its own deadline for
//     batch-mates. Once flushed into a running batch it is committed and
//     the (bounded, compute-only) batch delivers its answer.
//   - A panicking batch rollout poisons only its own batch: every waiter in
//     it gets errBatchError, the replica is dropped, and the entry keeps
//     serving.
//
// Correctness leans on the bitwise row-independence of core.PredictBatchInto:
// batching never changes any request's allocation, so coalesced and serial
// execution are observably identical (pinned by the equivalence tests).
type coalescer struct {
	c       *policyCache
	entry   *policyEntry
	poolCap int64

	running atomic.Int64 // rollout batches in flight (solo included)
	qlen    atomic.Int64 // queued waiters (lock-free fast-path probe)

	mu      sync.Mutex
	queue   []*batchWaiter
	spare   []*batchWaiter // recycled queue backing array
	timerOn bool
	gen     uint64 // flush generation; stale window timers no-op

	// predict runs one batch on a replica; tests swap in failure modes.
	predict func(replica *core.CRL, envs []*core.Environment, out []core.Allocation) error
}

func newCoalescer(c *policyCache, e *policyEntry) *coalescer {
	return &coalescer{
		c:       c,
		entry:   e,
		poolCap: int64(c.replicas),
		predict: func(replica *core.CRL, envs []*core.Environment, out []core.Allocation) error {
			return replica.PredictBatchInto(envs, out)
		},
	}
}

// rollout resolves one waiter: solo on the uncontended fast path, otherwise
// through the micro-batch queue. On success w.out holds the allocation.
func (co *coalescer) rollout(ctx context.Context, w *batchWaiter) error {
	if co.c.maxBatch <= 1 || (co.qlen.Load() == 0 && co.running.Load() < co.poolCap) {
		co.c.soloReqs.Add(1)
		return co.runSolo(w)
	}
	co.mu.Lock()
	if co.queue == nil && co.spare != nil {
		co.queue, co.spare = co.spare[:0], nil
	}
	co.queue = append(co.queue, w)
	co.qlen.Store(int64(len(co.queue)))
	if len(co.queue) >= co.c.maxBatch {
		batch := co.takeLocked()
		co.mu.Unlock()
		// The arriving request is the leader: run the full batch inline.
		co.runBatch(batch)
		sig := <-w.sig
		return sig.err
	}
	if !co.timerOn {
		co.timerOn = true
		gen := co.gen
		co.c.batchAfter(co.c.batchWindow, func() { co.onTimer(gen) })
	}
	co.mu.Unlock()

	select {
	case sig := <-w.sig:
		return sig.err
	case <-ctx.Done():
		co.mu.Lock()
		for i, q := range co.queue {
			if q == w {
				copy(co.queue[i:], co.queue[i+1:])
				co.queue = co.queue[:len(co.queue)-1]
				co.qlen.Store(int64(len(co.queue)))
				co.mu.Unlock()
				return ctx.Err()
			}
		}
		co.mu.Unlock()
		// Already flushed into a running batch: the rollout is pure bounded
		// compute, so the answer arrives promptly; deliver it rather than
		// abandoning a waiter another goroutine will signal.
		sig := <-w.sig
		return sig.err
	}
}

// runSolo is the batch-1 fast path: acquire a pooled replica, roll the
// single episode, hand the replica back. No queue, no timer, no channel
// round-trip.
func (co *coalescer) runSolo(w *batchWaiter) error {
	co.running.Add(1)
	defer co.running.Add(-1)
	replica, err := co.entry.acquire()
	if err != nil {
		return fmt.Errorf("serve: replica: %w", err)
	}
	w.soloEnvs[0], w.soloOut[0] = w.env, w.out
	err = co.safePredict(replica, w.soloEnvs[:], w.soloOut[:])
	w.out = w.soloOut[0]
	if err != nil {
		// The replica may hold a half-mutated rollout scratch; drop it and
		// let the pool re-clone from the pristine entry model.
		return err
	}
	co.entry.release(replica)
	return nil
}

// takeLocked claims the pending queue for a flush. Called with mu held.
func (co *coalescer) takeLocked() []*batchWaiter {
	batch := co.queue
	co.queue = nil
	co.qlen.Store(0)
	co.gen++
	co.timerOn = false
	return batch
}

// onTimer is the window-expiry flush. Stale timers (their batch already
// flushed by maxBatch or drain) see a generation mismatch and do nothing.
func (co *coalescer) onTimer(gen uint64) {
	co.mu.Lock()
	if gen != co.gen || len(co.queue) == 0 {
		co.mu.Unlock()
		return
	}
	batch := co.takeLocked()
	co.mu.Unlock()
	co.runBatch(batch)
}

// flush force-flushes the pending queue (drain/SIGTERM).
func (co *coalescer) flush() {
	co.mu.Lock()
	if len(co.queue) == 0 {
		co.mu.Unlock()
		return
	}
	batch := co.takeLocked()
	co.mu.Unlock()
	co.runBatch(batch)
}

// runBatch rolls one flushed batch on a pooled replica and signals every
// waiter exactly once.
func (co *coalescer) runBatch(batch []*batchWaiter) {
	co.running.Add(1)
	defer co.running.Add(-1)
	co.c.batchRuns.Add(1)
	co.c.batchedReqs.Add(int64(len(batch)))

	envs := make([]*core.Environment, len(batch))
	outs := make([]core.Allocation, len(batch))
	for i, w := range batch {
		envs[i] = w.env
		outs[i] = w.out
	}
	var err error
	replica, err := co.entry.acquire()
	if err != nil {
		err = fmt.Errorf("serve: replica: %w", err)
	} else {
		err = co.safePredict(replica, envs, outs)
		if err == nil {
			co.entry.release(replica)
		}
	}
	for i, w := range batch {
		w.out = outs[i]
		w.sig <- batchSignal{err: err}
	}
	// Recycle the queue backing array once every waiter has been signaled.
	co.mu.Lock()
	if co.spare == nil {
		co.spare = batch[:0]
	}
	co.mu.Unlock()
}

// safePredict runs the batch rollout, converting a panic into errBatchError
// so one poisoned batch never kills the process or the cluster's policy.
func (co *coalescer) safePredict(replica *core.CRL, envs []*core.Environment, out []core.Allocation) (err error) {
	defer func() {
		if r := recover(); r != nil {
			co.c.batchPanics.Add(1)
			co.c.logf("serve: batch rollout (size %d) panicked: %v", len(envs), r)
			err = fmt.Errorf("%w: %v", errBatchError, r)
		}
	}()
	return co.predict(replica, envs, out)
}
