package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeClock drives Config.Now in breaker tests so open windows elapse
// without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// multiClusterStore builds n well-separated environments at signatures
// 0..n-1, alternating the two importance patterns of clusterImportance.
func multiClusterStore(t *testing.T, n int) *core.EnvironmentStore {
	t.Helper()
	store := core.NewEnvironmentStore()
	for c := 0; c < n; c++ {
		if err := store.Add(&core.Environment{
			Importance: clusterImportance(c % 2),
			Capacity:   []float64{2, 2},
			Signature:  []float64{float64(c)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func serverWithStore(t *testing.T, cfg Config, store *core.EnvironmentStore) *Server {
	t.Helper()
	s, err := NewServer(testTemplate(), store, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBreakerOpenProbeClose walks the full breaker lifecycle on one cluster:
// consecutive failures open it, requests during the window are rejected
// without touching the trainer, an elapsed window admits exactly one
// half-open probe, and a successful probe closes the breaker.
func TestBreakerOpenProbeClose(t *testing.T) {
	ctx := context.Background()
	clock := newFakeClock()
	cfg := fastConfig()
	cfg.Now = clock.Now
	cfg.BreakerThreshold = 2
	cfg.BreakerBackoff = time.Second
	cfg.Logf = t.Logf
	s := newTestServer(t, cfg)

	fail := true
	var attempts int
	realTrain := s.cache.train
	var mu sync.Mutex
	s.cache.train = func(cluster int) (*core.CRL, []float64, error) {
		mu.Lock()
		attempts++
		broken := fail
		mu.Unlock()
		if broken {
			return nil, nil, errors.New("injected")
		}
		return realTrain(cluster)
	}
	req := AllocateRequest{Signature: []float64{0}}

	// Two consecutive failures cross the threshold and open the breaker.
	for i := 0; i < 2; i++ {
		resp, err := s.Allocate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.DegradedReason != DegradedTrainFailed {
			t.Fatalf("attempt %d: reason = %q", i, resp.DegradedReason)
		}
	}
	if state, failures := s.cache.breakerState(0); state != BreakerOpen || failures != 2 {
		t.Fatalf("breaker = %s/%d, want open/2", state, failures)
	}

	// While open: rejected before the trainer is ever called.
	resp, err := s.Allocate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.DegradedReason != DegradedCircuitOpen {
		t.Fatalf("open-window reason = %q", resp.DegradedReason)
	}
	if attempts != 2 {
		t.Fatalf("trainer called %d times during open window, want 2", attempts)
	}

	// Elapse the window (base 1s, ≤20% jitter): a probe is admitted but the
	// trainer still fails, so the breaker reopens with a doubled window.
	clock.Advance(1500 * time.Millisecond)
	if resp, err = s.Allocate(ctx, req); err != nil {
		t.Fatal(err)
	}
	if resp.DegradedReason != DegradedTrainFailed {
		t.Fatalf("failed-probe reason = %q", resp.DegradedReason)
	}
	if state, _ := s.cache.breakerState(0); state != BreakerOpen {
		t.Fatalf("breaker after failed probe = %s, want open", state)
	}
	// The reopened window doubled to ~2s: 1.5s is not enough.
	clock.Advance(1500 * time.Millisecond)
	if resp, err = s.Allocate(ctx, req); err != nil {
		t.Fatal(err)
	}
	if resp.DegradedReason != DegradedCircuitOpen {
		t.Fatalf("inside doubled window reason = %q", resp.DegradedReason)
	}

	// Heal the trainer, elapse the rest of the window: the probe succeeds and
	// the breaker closes; the same request now serves normally.
	mu.Lock()
	fail = false
	mu.Unlock()
	clock.Advance(time.Second)
	if resp, err = s.Allocate(ctx, req); err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeNormal {
		t.Fatalf("post-recovery mode = %q (reason %q)", resp.Mode, resp.DegradedReason)
	}
	if state, failures := s.cache.breakerState(0); state != BreakerClosed || failures != 0 {
		t.Fatalf("breaker after recovery = %s/%d, want closed/0", state, failures)
	}
	stats := s.Stats().Cache
	if stats.BreakerOpens < 2 || stats.BreakerProbes != 2 || stats.BreakerRejects < 2 {
		t.Fatalf("breaker counters = opens %d probes %d rejects %d",
			stats.BreakerOpens, stats.BreakerProbes, stats.BreakerRejects)
	}
}

// TestTrainGateSaturation fills the training gate and its queue with hanging
// trainings; the next cold cluster must answer degraded immediately instead
// of queueing (and never 5xx).
func TestTrainGateSaturation(t *testing.T) {
	cfg := fastConfig()
	cfg.TrainConcurrency = 1
	cfg.TrainQueue = 1
	cfg.Logf = t.Logf
	s := serverWithStore(t, cfg, multiClusterStore(t, 3))

	release := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()
	started := make(chan int, 3)
	s.cache.train = func(cluster int) (*core.CRL, []float64, error) {
		started <- cluster
		<-release
		return nil, nil, errors.New("released")
	}

	// Two background requests occupy the running slot and the queue slot.
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, _ = s.Allocate(ctx, AllocateRequest{Signature: []float64{float64(c)}})
		}(c)
	}
	<-started // the running training is underway; the other is gated or queued
	for s.cache.pending.Load() < 2 {
		time.Sleep(time.Millisecond)
	}

	resp, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeDegraded || resp.DegradedReason != DegradedSaturated {
		t.Fatalf("mode=%q reason=%q, want degraded/train_saturated", resp.Mode, resp.DegradedReason)
	}
	if got := s.Stats().Cache.Saturations; got != 1 {
		t.Fatalf("saturations = %d, want 1", got)
	}
	released = true
	close(release)
	wg.Wait()
}

// TestTrainBudgetDegradesThenWarms bounds the cold-path wait: a training
// slower than TrainBudget answers degraded, the training finishes in the
// background, and the next request hits the warmed cache.
func TestTrainBudgetDegradesThenWarms(t *testing.T) {
	cfg := fastConfig()
	cfg.TrainBudget = 20 * time.Millisecond
	cfg.Logf = t.Logf
	s := newTestServer(t, cfg)

	realTrain := s.cache.train
	gate := make(chan struct{})
	s.cache.train = func(cluster int) (*core.CRL, []float64, error) {
		<-gate
		return realTrain(cluster)
	}

	resp, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeDegraded || resp.DegradedReason != DegradedTrainBudget {
		t.Fatalf("mode=%q reason=%q, want degraded/train_budget", resp.Mode, resp.DegradedReason)
	}

	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Cache.Trainings == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background training never completed")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err = s.Allocate(context.Background(), AllocateRequest{Signature: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeNormal || resp.Cache != CacheHit {
		t.Fatalf("post-warm mode=%q cache=%q, want normal/hit", resp.Mode, resp.Cache)
	}
	if got := s.Stats().Cache.BudgetMisses; got != 1 {
		t.Fatalf("budget misses = %d, want 1", got)
	}
}

// TestEvictionSkipsInFlight pins evictLocked's in-flight rule: entries whose
// leader has not published survive even when the cache is over capacity.
func TestEvictionSkipsInFlight(t *testing.T) {
	cfg := fastConfig()
	cfg.CacheCapacity = 1
	cfg.TrainConcurrency = 4
	cfg.TrainQueue = 4
	cfg.Logf = t.Logf
	s := serverWithStore(t, cfg, multiClusterStore(t, 4))

	realTrain := s.cache.train
	release := make(chan struct{})
	s.cache.train = func(cluster int) (*core.CRL, []float64, error) {
		<-release
		return realTrain(cluster)
	}

	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if _, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{float64(c)}}); err != nil {
				t.Errorf("cluster %d: %v", c, err)
			}
		}(c)
	}
	for s.cache.pending.Load() < 3 {
		time.Sleep(time.Millisecond)
	}
	over, evictions := s.cache.entryCount(), s.cache.evictions.Load()
	if over != 3 || evictions != 0 {
		t.Fatalf("in-flight: %d entries, %d evictions; want 3 entries, 0 evictions", over, evictions)
	}

	close(release)
	wg.Wait()
	// The next training re-runs eviction and shrinks the cache to capacity.
	if _, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{3}}); err != nil {
		t.Fatal(err)
	}
	size := s.cache.entryCount()
	if size > 1 {
		t.Fatalf("post-churn cache size = %d, want ≤ capacity 1", size)
	}
}

// TestEvictionChurnWithCheckedOutReplicas is satellite (d): a replica checked
// out of an entry stays usable — and its release stays safe — after churn
// evicts the entry, and the evicted cluster simply retrains on next use.
func TestEvictionChurnWithCheckedOutReplicas(t *testing.T) {
	ctx := context.Background()
	cfg := fastConfig()
	cfg.CacheCapacity = 1
	cfg.Logf = t.Logf
	s := serverWithStore(t, cfg, multiClusterStore(t, 3))

	if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	e0 := s.cache.entry(0)
	if e0 == nil {
		t.Fatal("cluster 0 entry missing after allocate")
	}
	replica, err := e0.acquire()
	if err != nil {
		t.Fatal(err)
	}

	// Churn the capacity-1 cache through two other clusters; cluster 0's
	// entry is evicted while its replica is checked out.
	for c := 1; c <= 2; c++ {
		if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{float64(c)}}); err != nil {
			t.Fatal(err)
		}
	}
	if s.cache.entry(0) != nil {
		t.Fatal("cluster 0 still resident after churn past capacity")
	}
	if s.Stats().Cache.Evictions < 2 {
		t.Fatalf("evictions = %d, want ≥2", s.Stats().Cache.Evictions)
	}

	// The orphaned replica still rolls out, and release is a no-op crash-free.
	if _, err := replica.DefineEnvironment([]float64{0}); err != nil {
		t.Fatalf("checked-out replica broken after eviction: %v", err)
	}
	e0.release(replica)

	// The evicted cluster retrains on demand.
	resp, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != CacheMiss {
		t.Fatalf("post-eviction cache outcome = %q, want miss", resp.Cache)
	}
}
