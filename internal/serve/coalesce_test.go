package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeBatchTimer captures coalescer window timers instead of scheduling them, so
// tests drive window expiry deterministically without sleeping.
type fakeBatchTimer struct {
	mu      sync.Mutex
	pending []func()
	armed   int // total timers ever armed
}

func (fc *fakeBatchTimer) after(d time.Duration, f func()) {
	fc.mu.Lock()
	fc.pending = append(fc.pending, f)
	fc.armed++
	fc.mu.Unlock()
}

// fire runs (and forgets) every pending timer callback.
func (fc *fakeBatchTimer) fire() {
	fc.mu.Lock()
	cbs := fc.pending
	fc.pending = nil
	fc.mu.Unlock()
	for _, f := range cbs {
		f()
	}
}

func (fc *fakeBatchTimer) armedCount() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.armed
}

// waitUntil polls cond for up to 5s — used for "request is queued" states
// that a goroutine reaches asynchronously.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// warmEntry trains cluster's policy with one allocate and returns its cache
// entry (and the baseline allocation a solo warm request produces).
func warmEntry(t *testing.T, s *Server, cluster int) (*policyEntry, []int) {
	t.Helper()
	resp, err := s.Allocate(context.Background(),
		AllocateRequest{Signature: []float64{float64(cluster)}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeNormal {
		t.Fatalf("warming allocate degraded: %+v", resp)
	}
	e := s.cache.entry(cluster)
	if e == nil {
		t.Fatal("no cache entry after warming allocate")
	}
	return e, resp.Allocation
}

// TestCoalescerWindowFlush drives the window-expiry path with a fake clock:
// two concurrent warm requests queue (the pool is forced to look saturated),
// the window timer fires, and one batched forward pass answers both with the
// same allocation a solo request gets.
func TestCoalescerWindowFlush(t *testing.T) {
	fc := &fakeBatchTimer{}
	s := newTestServer(t, fastConfig())
	s.cache.batchAfter = fc.after
	entry, baseline := warmEntry(t, s, 0)
	before := s.Stats().Cache

	// Force the "pool saturated" branch so warm requests queue instead of
	// taking the batch-1 fast path.
	entry.co.poolCap = 0

	const n = 2
	results := make([]*AllocateResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Allocate(context.Background(),
				AllocateRequest{Signature: []float64{0}})
		}(i)
	}
	waitUntil(t, "both requests queued", func() bool { return entry.co.qlen.Load() == n })
	if fc.armedCount() != 1 {
		t.Fatalf("armed timers = %d, want exactly 1 for one open window", fc.armedCount())
	}
	fc.fire()
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].Mode != ModeNormal {
			t.Fatalf("request %d degraded: %+v", i, results[i])
		}
		for j := range baseline {
			if results[i].Allocation[j] != baseline[j] {
				t.Fatalf("request %d allocation %v differs from solo baseline %v",
					i, results[i].Allocation, baseline)
			}
		}
	}
	after := s.Stats().Cache
	if got := after.BatchRuns - before.BatchRuns; got != 1 {
		t.Fatalf("batch runs = %d, want 1", got)
	}
	if got := after.BatchedRequests - before.BatchedRequests; got != n {
		t.Fatalf("batched requests = %d, want %d", got, n)
	}
}

// TestCoalescerMaxBatchFlushesInline pins the size-triggered flush: with
// MaxBatch=2 the second arrival runs the batch itself — no timer ever needs
// to fire, so completion without fc.fire() proves the inline path.
func TestCoalescerMaxBatchFlushesInline(t *testing.T) {
	fc := &fakeBatchTimer{}
	cfg := fastConfig()
	cfg.MaxBatch = 2
	s := newTestServer(t, cfg)
	s.cache.batchAfter = fc.after
	entry, baseline := warmEntry(t, s, 0)
	entry.co.poolCap = 0

	var wg sync.WaitGroup
	results := make([]*AllocateResponse, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Allocate(context.Background(),
				AllocateRequest{Signature: []float64{0}})
		}(i)
	}
	// Deliberately never fire the fake clock: the maxBatch flush must
	// complete both requests on its own.
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].Mode != ModeNormal {
			t.Fatalf("request %d degraded: %+v", i, results[i])
		}
		for j := range baseline {
			if results[i].Allocation[j] != baseline[j] {
				t.Fatalf("request %d allocation differs from baseline", i)
			}
		}
	}
	if stats := s.Stats().Cache; stats.BatchRuns < 1 {
		t.Fatalf("no batch run recorded: %+v", stats)
	}
}

// TestCoalescerRespectsRequestDeadline: a queued request whose own context
// expires before the window flushes never waits for batch-mates — it leaves
// the queue and answers degraded with reason "deadline".
func TestCoalescerRespectsRequestDeadline(t *testing.T) {
	fc := &fakeBatchTimer{}
	s := newTestServer(t, fastConfig())
	s.cache.batchAfter = fc.after
	entry, _ := warmEntry(t, s, 0)
	entry.co.poolCap = 0

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	resp, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeDegraded || resp.DegradedReason != DegradedDeadline {
		t.Fatalf("deadline-expired queued request = %+v, want degraded %q",
			resp, DegradedDeadline)
	}
	if got := entry.co.qlen.Load(); got != 0 {
		t.Fatalf("queue length after self-removal = %d, want 0", got)
	}
	// The stale window timer must be harmless once it finally fires.
	fc.fire()
	if stats := s.Stats().Cache; stats.BatchRuns != 0 {
		t.Fatalf("stale timer ran a batch: %+v", stats)
	}
}

// TestCoalescerDrainFlushesPartialBatch: Drain (the SIGTERM path) flushes a
// queued partial batch immediately — the queued request answers normally
// instead of waiting out a window that may never fire.
func TestCoalescerDrainFlushesPartialBatch(t *testing.T) {
	fc := &fakeBatchTimer{}
	s := newTestServer(t, fastConfig())
	s.cache.batchAfter = fc.after
	entry, baseline := warmEntry(t, s, 0)
	entry.co.poolCap = 0

	var resp *AllocateResponse
	var aerr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, aerr = s.Allocate(context.Background(), AllocateRequest{Signature: []float64{0}})
	}()
	waitUntil(t, "request queued", func() bool { return entry.co.qlen.Load() == 1 })
	s.Drain()
	<-done
	if aerr != nil {
		t.Fatal(aerr)
	}
	if resp.Mode != ModeNormal {
		t.Fatalf("drained queued request = %+v, want normal", resp)
	}
	for j := range baseline {
		if resp.Allocation[j] != baseline[j] {
			t.Fatalf("drained allocation %v differs from baseline %v",
				resp.Allocation, baseline)
		}
	}
}

// TestCoalescerPanicPoisonsOnlyItsBatch: a panicking batch rollout degrades
// exactly the requests that rode in it (tagged batch_error), and the policy
// keeps serving normal answers afterwards.
func TestCoalescerPanicPoisonsOnlyItsBatch(t *testing.T) {
	fc := &fakeBatchTimer{}
	cfg := fastConfig()
	cfg.MaxBatch = 2
	s := newTestServer(t, cfg)
	s.cache.batchAfter = fc.after
	entry, baseline := warmEntry(t, s, 0)
	entry.co.poolCap = 0
	healthy := entry.co.predict
	entry.co.predict = func(*core.CRL, []*core.Environment, []core.Allocation) error {
		panic("chaos: poisoned batch")
	}

	var wg sync.WaitGroup
	results := make([]*AllocateResponse, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Allocate(context.Background(),
				AllocateRequest{Signature: []float64{0}})
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].Mode != ModeDegraded || results[i].DegradedReason != DegradedBatch {
			t.Fatalf("request %d = %+v, want degraded %q", i, results[i], DegradedBatch)
		}
	}
	if stats := s.Stats().Cache; stats.BatchPanics != 1 {
		t.Fatalf("batch panics = %d, want 1", stats.BatchPanics)
	}

	// Heal the rollout: the same entry must serve normal answers again —
	// the panic dropped one replica, not the policy.
	entry.co.predict = healthy
	entry.co.poolCap = int64(s.cache.replicas)
	resp, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeNormal {
		t.Fatalf("post-panic request = %+v, want normal", resp)
	}
	for j := range baseline {
		if resp.Allocation[j] != baseline[j] {
			t.Fatalf("post-panic allocation differs from baseline")
		}
	}
}

// TestCoalescerSoloFastPathNeverArmsTimer pins the batch-1 invariant: an
// uncontended warm request takes the solo path — no queue, no window timer —
// so coalescing adds zero latency at low load.
func TestCoalescerSoloFastPathNeverArmsTimer(t *testing.T) {
	fc := &fakeBatchTimer{}
	s := newTestServer(t, fastConfig())
	s.cache.batchAfter = fc.after
	warmEntry(t, s, 0)
	before := s.Stats().Cache

	for i := 0; i < 8; i++ {
		resp, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{0}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Mode != ModeNormal || resp.Cache != CacheHit {
			t.Fatalf("warm request %d = %+v", i, resp)
		}
	}
	if fc.armedCount() != 0 {
		t.Fatalf("uncontended requests armed %d window timers, want 0", fc.armedCount())
	}
	after := s.Stats().Cache
	if got := after.SoloRequests - before.SoloRequests; got != 8 {
		t.Fatalf("solo requests = %d, want 8", got)
	}
	if after.BatchRuns != before.BatchRuns {
		t.Fatalf("uncontended requests ran batches: %+v", after)
	}
}

// TestMaxBatchOneDisablesCoalescing: MaxBatch=1 routes everything solo even
// under contention.
func TestMaxBatchOneDisablesCoalescing(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxBatch = 1
	s := newTestServer(t, cfg)
	entry, _ := warmEntry(t, s, 0)
	entry.co.poolCap = 0 // even a "saturated" pool must not queue

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{0}})
			if err == nil && resp.Mode != ModeNormal {
				err = fmt.Errorf("request %d degraded: %+v", i, resp)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if stats := s.Stats().Cache; stats.BatchRuns != 0 || stats.BatchedRequests != 0 {
		t.Fatalf("MaxBatch=1 still batched: %+v", stats)
	}
}

// TestCoalescerCanceledContextErrors: a canceled (not merely deadline-
// expired) caller gets its context error back — nobody reads the answer, so
// no fallback is computed.
func TestCoalescerCanceledContextErrors(t *testing.T) {
	fc := &fakeBatchTimer{}
	s := newTestServer(t, fastConfig())
	s.cache.batchAfter = fc.after
	entry, _ := warmEntry(t, s, 0)
	entry.co.poolCap = 0

	ctx, cancel := context.WithCancel(context.Background())
	var aerr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, aerr = s.Allocate(ctx, AllocateRequest{Signature: []float64{0}})
	}()
	waitUntil(t, "request queued", func() bool { return entry.co.qlen.Load() == 1 })
	cancel()
	<-done
	if !errors.Is(aerr, context.Canceled) {
		t.Fatalf("canceled queued request err = %v, want context.Canceled", aerr)
	}
	if got := entry.co.qlen.Load(); got != 0 {
		t.Fatalf("queue length after cancel = %d, want 0", got)
	}
}
