package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/rl"
)

// latencyWindow bounds the ring of recent allocate latencies kept for
// quantile reporting.
const latencyWindow = 4096

// Server is the online allocation service: a concurrent front-end over the
// per-cluster policy cache, the shared historical store and the online local
// model. One Server handles any number of concurrent Allocate and Feedback
// calls; the HTTP layer in http.go is a thin JSON adapter over it.
type Server struct {
	cfg      Config
	template *core.Problem
	store    *core.EnvironmentStore
	cache    *policyCache

	// localMu guards the local-model pointer; the model itself is immutable
	// after Fit, so requests snapshot the pointer and score lock-free.
	localMu sync.RWMutex
	local   *alloc.LocalModel

	// fbMu serializes the feedback window, refit bookkeeping and the
	// duplicate-seq ledger.
	fbMu     sync.Mutex
	window   []alloc.LocalSample
	sinceFit int
	// fbSeen/fbSeenQ dedupe client-supplied feedback sequence numbers: the
	// router replays feedback on failover, but refits are not idempotent, so
	// a bounded FIFO set of recent seqs absorbs the replays.
	fbSeen     map[int64]bool
	fbSeenQ    []int64
	fbSeenNext int

	started   time.Time
	draining  atomic.Bool
	allocates atomic.Int64
	feedbacks atomic.Int64
	refits    atomic.Int64
	storeAdds atomic.Int64
	degraded  atomic.Int64
	panics    atomic.Int64 // handler panics recovered by the HTTP middleware
	ckptSkips atomic.Int64 // corrupt checkpoint sections skipped on load
	fbDupes   atomic.Int64 // duplicate feedback requests absorbed by seq dedupe

	// repl is the replication sender (nil unless EnableReplication ran);
	// replStop makes Drain's sender shutdown idempotent.
	repl     *replicator
	replStop sync.Once

	// Cluster membership (nil while standalone) and warm-handoff counters;
	// see cluster.go. membership is the gossip plane's stats provider
	// (nil unless SetMembership ran; see membership.go).
	clusterMu     sync.Mutex
	clusterID     *ClusterIdentity
	membership    func() *MembershipStats
	handoffServes atomic.Int64
	handoffPulls  atomic.Int64

	latMu   sync.Mutex
	lat     []int64 // ns ring, most recent latencyWindow allocates
	latNext int
	latFull bool

	// wsPool recycles per-request allocate workspaces (allocWS) so the
	// warm path runs allocation-free.
	wsPool sync.Pool
}

// NewServer builds a service over a problem template (structure only — the
// importance the service estimates lives in the store) and a non-empty
// historical environment store. local may be nil: feature-carrying requests
// then fall back to the CRL path until feedback accumulates a window.
func NewServer(template *core.Problem, store *core.EnvironmentStore, local *alloc.LocalModel, cfg Config) (*Server, error) {
	if template == nil {
		return nil, fmt.Errorf("serve: nil template")
	}
	if err := template.Validate(); err != nil {
		return nil, fmt.Errorf("serve: template: %w", err)
	}
	if store == nil || store.Len() == 0 {
		return nil, core.ErrEmptyStore
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		template: template.Clone(),
		store:    store,
		local:    local,
		started:  cfg.Now(),
		lat:      make([]int64, latencyWindow),
	}
	s.cache = newPolicyCache(cfg, s.trainCluster)
	if cfg.SpeculateNeighbors > 0 {
		s.cache.onTrained = s.speculate
	}
	s.wsPool.New = func() any {
		return &allocWS{waiter: batchWaiter{sig: make(chan batchSignal, 1)}}
	}
	return s, nil
}

// Store returns the historical environment store the service clusters over.
func (s *Server) Store() *core.EnvironmentStore { return s.store }

// Template returns (a clone of) the problem structure being served.
func (s *Server) Template() *core.Problem { return s.template.Clone() }

// Drain flips the server into draining mode: subsequent requests fail fast
// with ErrDraining while in-flight ones finish. Pending coalescer
// micro-batches are flushed immediately so queued warm requests answer
// instead of waiting out their window. The HTTP layer calls this before
// shutting the listener down.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.cache.flushCoalescers()
	s.stopReplication()
}

// clusterStore builds the training sub-store for a cluster: the
// ClusterNeighborhood stored environments nearest the cluster
// representative's signature — Alg. 1's per-cluster history.
func (s *Server) clusterStore(cluster int) (*core.EnvironmentStore, error) {
	rep, err := s.store.At(cluster)
	if err != nil {
		return nil, err
	}
	neighbors, err := s.store.Nearest(rep.Signature, s.cfg.ClusterNeighborhood)
	if err != nil {
		return nil, err
	}
	sub := core.NewEnvironmentStore()
	for _, env := range neighbors {
		if err := sub.Add(env); err != nil {
			return nil, err
		}
	}
	return sub, nil
}

// defaultStopWindow is serve's convergence-based early-stop window when the
// operator leaves CRL.StopWindow at 0: compare the last 3 episode returns
// against the 3 before (so the plateau check can fire from episode 6 on).
const defaultStopWindow = 3

// trainCRLConfig resolves the effective per-cluster training configuration:
// core defaults, deterministic per-cluster seeds, and serve's default
// early-stopping window (StopWindow < 0 opts out).
func (s *Server) trainCRLConfig(cluster int) core.CRLConfig {
	cfg := s.cfg.CRL
	if cfg.K < 1 {
		cfg.K = core.DefaultCRLConfig().K
		cfg.Blend = true
	}
	if cfg.Episodes < 1 {
		cfg.Episodes = core.DefaultCRLConfig().Episodes
	}
	if cfg.Seed == 0 {
		cfg.Seed = s.cfg.Seed + int64(cluster)*7919
	}
	if cfg.DQN.Seed == 0 {
		cfg.DQN.Seed = cfg.Seed + 1
	}
	switch {
	case cfg.StopWindow == 0:
		cfg.StopWindow = defaultStopWindow
	case cfg.StopWindow < 0:
		cfg.StopWindow = 0
	}
	return cfg
}

// trainCluster is the cache's trainFunc: train a CRL over the cluster's
// neighborhood sub-store. Seeding is deterministic per cluster; with warm
// starting enabled (the default) the trained weights additionally depend on
// which neighbour policies were resident, so identical deployments converge
// to equivalent — not bitwise-identical — caches.
func (s *Server) trainCluster(cluster int) (*core.CRL, []float64, error) {
	return s.trainClusterMode(cluster, nil)
}

// trainClusterMode is trainCluster with an optional between-episode
// interrupt hook — the speculative pre-trainer's yield check. The cold-start
// pipeline: seed from the nearest trained neighbour when one is resident
// (shrinking the episode budget to WarmEpisodeFrac), then train with
// convergence-based early stopping.
func (s *Server) trainClusterMode(cluster int, interrupt func() bool) (*core.CRL, []float64, error) {
	rep, err := s.store.At(cluster)
	if err != nil {
		return nil, nil, err
	}
	sub, err := s.clusterStore(cluster)
	if err != nil {
		return nil, nil, err
	}
	cfg := s.trainCRLConfig(cluster)
	cfg.Interrupt = interrupt
	var donor *core.CRL
	var prov core.WarmStart
	if !s.cfg.DisableWarmStart {
		if donor, prov = s.nearestTrainedDonor(cluster, rep.Signature); donor != nil {
			// A transferred policy only fine-tunes: cut the episode budget to
			// the warm fraction. Below the plateau detector's 2×window floor
			// the cut itself is the early exit (Train just runs the budget).
			warmEp := int(float64(cfg.Episodes) * s.cfg.WarmEpisodeFrac)
			if warmEp < 1 {
				warmEp = 1
			}
			if warmEp < cfg.Episodes {
				cfg.Episodes = warmEp
			}
		}
	}
	crl, err := core.NewCRL(s.template.Clone(), sub, cfg)
	if err != nil {
		return nil, nil, err
	}
	if donor != nil {
		if err := crl.WarmStartFrom(donor, prov); err != nil {
			// Shape mismatch cannot happen on a shared template; if it ever
			// does, training from scratch is the safe degradation.
			s.cfg.Logf("serve: warm start cluster %d from %d: %v (training from scratch)",
				cluster, prov.Source, err)
		} else {
			s.cache.warmStarts.Add(1)
		}
	}
	res, err := crl.Train()
	if err != nil {
		return nil, nil, err
	}
	if res.StopReason == rl.StopPlateau {
		s.cache.earlyStops.Add(1)
	}
	return crl, mathx.Clone(rep.Importance), nil
}

// nearestTrainedDonor scans the resident, healthy policies for the one whose
// cluster signature is nearest to sig — the warm-start neighbour selection
// rule. Returns nil when no other cluster has a usable policy. Reading a
// resident entry's model is safe concurrently: resolved policies are only
// ever read (rollouts run on clones), and WarmStartFrom only reads the
// donor.
func (s *Server) nearestTrainedDonor(cluster int, sig []float64) (*core.CRL, core.WarmStart) {
	var best *core.CRL
	bestKey, bestDist := -1, math.Inf(1)
	for _, sh := range s.cache.shards {
		sh.mu.Lock()
		for key, e := range sh.entries {
			if key == cluster || !e.resolved || e.err != nil || e.crl == nil {
				continue
			}
			env, err := s.store.At(key)
			if err != nil || len(env.Signature) != len(sig) {
				continue
			}
			if d := mathx.EuclideanDistance(sig, env.Signature); d < bestDist {
				best, bestKey, bestDist = e.crl, key, d
			}
		}
		sh.mu.Unlock()
	}
	if best == nil {
		return nil, core.WarmStart{}
	}
	return best, core.WarmStart{Source: bestKey, Distance: bestDist}
}

// AllocateRequest is one allocation query: the sensing signature Z, plus
// optional Table-I feature vectors enabling the DCTA local process.
type AllocateRequest struct {
	Signature []float64   `json:"signature"`
	Features  [][]float64 `json:"features,omitempty"`
	// Allocator selects the strategy: "auto" (default — DCTA when features
	// and a fitted local model are available, else CRL), "crl", or "dcta".
	Allocator string `json:"allocator,omitempty"`
}

// finiteVec rejects NaN/±Inf vector entries at the request trust boundary.
func finiteVec(name string, v []float64) error {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: %s[%d] = %v: %w", ErrBadRequest, name, i, x, ErrNonFinite)
		}
	}
	return nil
}

// finiteMat rejects NaN/±Inf matrix entries at the request trust boundary.
func finiteMat(name string, m [][]float64) error {
	for i, row := range m {
		for k, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("%w: %s[%d][%d] = %v: %w", ErrBadRequest, name, i, k, x, ErrNonFinite)
			}
		}
	}
	return nil
}

// Serving modes (AllocateResponse.Mode).
const (
	// ModeNormal answered from the policy-cache path.
	ModeNormal = "normal"
	// ModeDegraded answered from the greedy fallback because the policy
	// path was unavailable (see DegradedReason).
	ModeDegraded = "degraded"
)

// AllocateResponse is the service's answer.
type AllocateResponse struct {
	// Allocation maps task → processor index, -1 for dropped tasks.
	Allocation []int `json:"allocation"`
	// Cluster is the store index of the nearest historical environment —
	// the policy-cache key.
	Cluster int `json:"cluster"`
	// Cache is the cache outcome (hit, miss, coalesced, expired, drift,
	// warm; bypass for degraded answers).
	Cache string `json:"cache"`
	// Allocator is the strategy that produced the allocation (CRL, DCTA,
	// or greedy-fallback).
	Allocator string `json:"allocator"`
	// Mode is "normal" for policy-path answers, "degraded" for fallback
	// ones.
	Mode string `json:"mode"`
	// DegradedReason says why the fallback answered (degraded mode only).
	DegradedReason string `json:"degraded_reason,omitempty"`
	// PredictedImportance is the allocator's own captured-importance
	// estimate under the defined environment.
	PredictedImportance float64 `json:"predicted_importance"`
	// TrainNanos is the policy training time when this request led a
	// training (cache ∈ {miss, expired, drift}); 0 otherwise.
	TrainNanos int64 `json:"train_ns,omitempty"`
	// LatencyNanos is the server-side handling time.
	LatencyNanos int64 `json:"latency_ns"`
}

// allocWS is the per-request workspace for the warm allocate path: the JSON
// decode target, the response, and every scratch buffer the pipeline needs,
// pooled so a steady-state warm request (cache hit, batch-1) performs zero
// allocations end to end. The embedded batchWaiter carries the request
// through the coalescer.
type allocWS struct {
	req  AllocateRequest  // HTTP decode target (slice capacity reused)
	resp AllocateResponse // Allocation backing array reused

	env      core.Environment // kNN-defined environment
	knn      core.KNNScratch
	pack     alloc.PackScratch
	combined []float64 // DCTA mixed scores
	featBuf  []float64 // local-model per-task feature scratch
	guard    core.Allocation
	waiter   batchWaiter
}

func (s *Server) getWS() *allocWS {
	ws := s.wsPool.Get().(*allocWS)
	// Drain a stale signal defensively: every rollout path consumes its
	// own, but a leaked signal would mis-answer an unrelated request.
	select {
	case <-ws.waiter.sig:
	default:
	}
	return ws
}

func (s *Server) putWS(ws *allocWS) { s.wsPool.Put(ws) }

// importanceOf sums the defined importance captured by an allocation.
func importanceOf(a core.Allocation, imp []float64) float64 {
	var v float64
	for j, proc := range a {
		if proc != core.Unassigned && j < len(imp) {
			v += imp[j]
		}
	}
	return v
}

// Allocate answers one allocation query. Safe for arbitrary concurrency:
// store reads are lock-protected, every DQN rollout runs on an exclusive
// pooled replica (concurrent rollouts for one cluster coalesce onto batched
// forward passes), and the local model is immutable-after-Fit.
//
// Availability contract: once the request is validated, Allocate answers.
// Any policy-path failure — a training that errors, panics, outlives the
// TrainBudget or the request deadline, an open circuit breaker, a saturated
// training gate, draining, a broken rollout, or a panicking micro-batch —
// routes to the degraded fallback allocator (fallback.go), which always
// produces a feasible allocation. Only malformed requests and a canceled
// caller context error.
func (s *Server) Allocate(ctx context.Context, req AllocateRequest) (*AllocateResponse, error) {
	ws := s.getWS()
	defer s.putWS(ws)
	if err := s.AllocateInto(ctx, req, ws); err != nil {
		return nil, err
	}
	resp := ws.resp
	resp.Allocation = append([]int(nil), ws.resp.Allocation...)
	return &resp, nil
}

// AllocateInto is Allocate writing into ws.resp — the zero-steady-state-
// allocation entry point the HTTP layer and benchmarks use. ws must come
// from getWS (or be zero-initialized with a buffered waiter signal) and must
// not be reused until the response has been consumed.
func (s *Server) AllocateInto(ctx context.Context, req AllocateRequest, ws *allocWS) error {
	start := s.cfg.Now()
	ws.resp = AllocateResponse{Allocation: ws.resp.Allocation[:0]}
	if len(req.Signature) == 0 {
		return fmt.Errorf("%w: empty signature", ErrBadRequest)
	}
	if err := finiteVec("signature", req.Signature); err != nil {
		return err
	}
	if err := finiteMat("features", req.Features); err != nil {
		return err
	}
	switch req.Allocator {
	case "", "auto", "crl", "dcta":
	default:
		return fmt.Errorf("%w: unknown allocator %q", ErrBadRequest, req.Allocator)
	}
	cluster, _, err := s.store.NearestIndex(req.Signature)
	if err != nil {
		// Dimension mismatch with the store's signatures (or an empty
		// store, impossible after NewServer) is a client error.
		return fmt.Errorf("%w: cluster lookup: %v", ErrBadRequest, err)
	}
	if req.Allocator == "dcta" {
		if len(req.Features) != len(s.template.Tasks) {
			return fmt.Errorf("%w: dcta needs %d feature vectors, got %d",
				ErrBadRequest, len(s.template.Tasks), len(req.Features))
		}
		if local := s.localModel(); local == nil || !local.Fitted() {
			return fmt.Errorf("%w: local model not fitted", ErrBadRequest)
		}
	}
	if s.draining.Load() {
		// Draining-but-not-yet-stopped: never start a training, but keep
		// answering until the listener closes.
		return s.fallbackAllocateInto(req, cluster, start, DegradedDraining, ws)
	}
	entry, outcome, err := s.cache.get(ctx, cluster)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return err // the caller is gone; no one reads the answer
		}
		return s.fallbackAllocateInto(req, cluster, start, degradedReason(err), ws)
	}
	if err := s.policyAllocateInto(ctx, req, cluster, entry, outcome, start, ws); err != nil {
		if errors.Is(err, ErrBadRequest) || errors.Is(err, context.Canceled) {
			return err
		}
		reason := DegradedPolicyError
		switch {
		case errors.Is(err, errBatchError):
			reason = DegradedBatch
		case errors.Is(err, context.DeadlineExceeded):
			reason = DegradedDeadline
		}
		s.cfg.Logf("serve: policy path cluster %d: %v (answering degraded)", cluster, err)
		return s.fallbackAllocateInto(req, cluster, start, reason, ws)
	}
	return nil
}

// policyAllocateInto is the warm path. The environment is defined once,
// replica-free, against the entry's cluster sub-store (environment
// definition only reads the concurrency-safe store). Requests that mix in
// the local process (DCTA) never touch a DQN at all — scores and packing
// run on pure request-local scratch. CRL requests roll the policy through
// the entry's coalescer: batch-1 uncontended, micro-batched under load,
// guarded by a greedy pack on the defined importance (CRLAllocator
// semantics: the better of rollout and guard ships).
func (s *Server) policyAllocateInto(ctx context.Context, req AllocateRequest, cluster int,
	entry *policyEntry, outcome string, start time.Time, ws *allocWS) error {
	if err := entry.crl.DefineEnvironmentInto(req.Signature, &ws.env, &ws.knn); err != nil {
		return fmt.Errorf("serve: define environment: %w", err)
	}

	local := s.localModel()
	useDCTA := false
	switch req.Allocator {
	case "", "auto":
		useDCTA = len(req.Features) == len(s.template.Tasks) && local != nil && local.Fitted()
	case "dcta":
		useDCTA = true // validated in AllocateInto
	case "crl":
	}

	w := &ws.waiter
	var name string
	if useDCTA {
		name = "DCTA"
		var err error
		ws.combined, ws.featBuf, err = alloc.CombineScoresInto(
			local, ws.env.Importance, req.Features, s.cfg.W1, s.cfg.W2, ws.combined, ws.featBuf)
		if err != nil {
			return fmt.Errorf("serve: dcta: %w", err)
		}
		w.out, _ = alloc.PackByScoreInto(s.template, ws.combined, s.cfg.CoverageTarget, w.out, &ws.pack)
	} else {
		name = "CRL"
		w.env = &ws.env
		if err := entry.co.rollout(ctx, w); err != nil {
			return fmt.Errorf("serve: crl rollout: %w", err)
		}
		// Greedy guard: whenever the rollout captures less of the defined
		// importance than a greedy pack would, the guard's plan ships.
		ws.guard, _ = alloc.PackByScoreInto(s.template, ws.env.Importance, 1.0, ws.guard, &ws.pack)
		if importanceOf(ws.guard, ws.env.Importance) > importanceOf(w.out, ws.env.Importance) {
			w.out, ws.guard = ws.guard, w.out
		}
	}

	latency := s.cfg.Now().Sub(start)
	s.allocates.Add(1)
	s.recordLatency(latency)
	resp := &ws.resp
	resp.Allocation = append(resp.Allocation[:0], w.out...)
	resp.Cluster = cluster
	resp.Cache = outcome
	resp.Allocator = name
	resp.Mode = ModeNormal
	resp.PredictedImportance = importanceOf(w.out, ws.env.Importance)
	resp.LatencyNanos = int64(latency)
	if outcome == CacheMiss || outcome == CacheExpired || outcome == CacheDrift {
		resp.TrainNanos = int64(entry.trainDur)
	}
	return nil
}

// problemWithImportance clones the template and installs an importance
// vector (clamped to [0,1]).
func (s *Server) problemWithImportance(imp []float64) *core.Problem {
	p := s.template.Clone()
	for i := range p.Tasks {
		v := 0.0
		if i < len(imp) {
			v = mathx.Clamp(imp[i], 0, 1)
		}
		p.Tasks[i].Importance = v
	}
	return p
}

func (s *Server) localModel() *alloc.LocalModel {
	s.localMu.RLock()
	defer s.localMu.RUnlock()
	return s.local
}

// FeedbackRequest streams one observed decision back into the service: the
// per-task features and the allocation that was actually executed become
// local-process training samples; an optional observed importance vector
// drives drift detection and, with AddToStore, grows the historical store.
type FeedbackRequest struct {
	Signature  []float64   `json:"signature"`
	Features   [][]float64 `json:"features"`
	Allocation []int       `json:"allocation"`
	Importance []float64   `json:"importance,omitempty"`
	AddToStore bool        `json:"add_to_store,omitempty"`
	// Seq is an optional client-supplied idempotency key (non-zero). The
	// cluster router replays feedback on a failed round trip, and refits are
	// not idempotent — a server that has already applied a seq answers the
	// replay with Duplicate=true and changes nothing. The ledger is bounded
	// (maxFeedbackSeqs) and per shard, so cross-shard replays (a retry that
	// lands on a different owner after ejection) remain at-least-once.
	Seq int64 `json:"seq,omitempty"`
}

// maxFeedbackSeqs bounds the duplicate-detection ledger; the window only
// needs to outlive the router's retry horizon (one failed round trip), not
// the deployment.
const maxFeedbackSeqs = 4096

// FeedbackResponse reports what the feedback changed.
type FeedbackResponse struct {
	Samples           int  `json:"samples"`
	WindowSize        int  `json:"window_size"`
	Refitted          bool `json:"refitted"`
	DriftInvalidated  bool `json:"drift_invalidated"`
	StoredEnvironment bool `json:"stored_environment"`
	// Duplicate is true when the request's Seq was already applied here; the
	// request changed nothing.
	Duplicate bool `json:"duplicate,omitempty"`
}

// Feedback ingests one observed decision.
func (s *Server) Feedback(ctx context.Context, req FeedbackRequest) (*FeedbackResponse, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if len(req.Features) == 0 || len(req.Allocation) == 0 {
		return nil, fmt.Errorf("%w: feedback needs features and an allocation", ErrBadRequest)
	}
	if len(req.Features) != len(req.Allocation) {
		return nil, fmt.Errorf("%w: %d feature vectors for %d allocation entries",
			ErrBadRequest, len(req.Features), len(req.Allocation))
	}
	if err := finiteVec("signature", req.Signature); err != nil {
		return nil, err
	}
	if err := finiteMat("features", req.Features); err != nil {
		return nil, err
	}
	if err := finiteVec("importance", req.Importance); err != nil {
		return nil, err
	}
	samples := alloc.SamplesFromDecision(req.Features, core.Allocation(req.Allocation))
	resp := &FeedbackResponse{Samples: len(samples)}

	s.fbMu.Lock()
	if req.Seq != 0 {
		if s.fbSeen[req.Seq] {
			window := len(s.window)
			s.fbMu.Unlock()
			s.fbDupes.Add(1)
			return &FeedbackResponse{WindowSize: window, Duplicate: true}, nil
		}
		if s.fbSeen == nil {
			s.fbSeen = make(map[int64]bool, maxFeedbackSeqs)
		}
		s.fbSeen[req.Seq] = true
		if len(s.fbSeenQ) < maxFeedbackSeqs {
			s.fbSeenQ = append(s.fbSeenQ, req.Seq)
		} else {
			// Ring replacement: forget the oldest seq in O(1).
			delete(s.fbSeen, s.fbSeenQ[s.fbSeenNext])
			s.fbSeenQ[s.fbSeenNext] = req.Seq
			s.fbSeenNext = (s.fbSeenNext + 1) % maxFeedbackSeqs
		}
	}
	s.window = append(s.window, samples...)
	if over := len(s.window) - s.cfg.MaxFeedback; over > 0 {
		s.window = append(s.window[:0:0], s.window[over:]...)
	}
	s.sinceFit += len(samples)
	refit := s.sinceFit >= s.cfg.RefitEvery
	var snapshot []alloc.LocalSample
	if refit {
		s.sinceFit = 0
		snapshot = append([]alloc.LocalSample(nil), s.window...)
	}
	resp.WindowSize = len(s.window)
	s.fbMu.Unlock()

	if refit {
		// Fit a *fresh* model outside all locks, then publish it: in-flight
		// requests keep scoring on the model they started with.
		fresh := alloc.NewLocalModel(s.cfg.Seed + s.refits.Load() + 808)
		if err := fresh.Fit(snapshot); err != nil {
			return nil, fmt.Errorf("serve: refit local model: %w", err)
		}
		s.localMu.Lock()
		s.local = fresh
		s.localMu.Unlock()
		s.refits.Add(1)
		resp.Refitted = true
	}

	if len(req.Signature) > 0 && len(req.Importance) > 0 {
		cluster, _, err := s.store.NearestIndex(req.Signature)
		if err != nil {
			return nil, fmt.Errorf("serve: feedback cluster lookup: %w", err)
		}
		resp.DriftInvalidated = s.cache.noteImportance(cluster, req.Importance)
		if req.AddToStore {
			caps := make([]float64, len(s.template.Processors))
			for i, pr := range s.template.Processors {
				caps[i] = pr.Capacity
			}
			imp := make([]float64, len(s.template.Tasks))
			for i := range imp {
				if i < len(req.Importance) {
					imp[i] = mathx.Clamp(req.Importance[i], 0, 1)
				}
			}
			env := &core.Environment{
				Importance: imp,
				Capacity:   caps,
				Signature:  mathx.Clone(req.Signature),
			}
			if err := s.store.Add(env); err != nil {
				return nil, fmt.Errorf("serve: feedback store add: %w", err)
			}
			s.storeAdds.Add(1)
			resp.StoredEnvironment = true
		}
	}
	s.feedbacks.Add(1)
	return resp, nil
}

func (s *Server) recordLatency(d time.Duration) {
	s.latMu.Lock()
	s.lat[s.latNext] = int64(d)
	s.latNext++
	if s.latNext == len(s.lat) {
		s.latNext = 0
		s.latFull = true
	}
	s.latMu.Unlock()
}

// LatencyStats summarizes the recent allocate-latency window.
type LatencyStats struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50_ns"`
	P95   int64 `json:"p95_ns"`
	P99   int64 `json:"p99_ns"`
	Max   int64 `json:"max_ns"`
}

// Stats is the /v1/stats payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_s"`
	Allocates     int64   `json:"allocates"`
	// DegradedCount is the number of allocations answered by the fallback
	// path (subset of Allocates).
	DegradedCount int64 `json:"degraded"`
	Feedbacks     int64 `json:"feedbacks"`
	Refits        int64 `json:"refits"`
	StoreSize     int   `json:"store_size"`
	StoreAdds     int64 `json:"store_adds"`
	WindowSize    int   `json:"feedback_window"`
	// RecoveredPanics counts HTTP handler panics absorbed by the recovery
	// middleware.
	RecoveredPanics int64 `json:"recovered_panics"`
	// CheckpointSkips counts corrupt checkpoint sections skipped on restore.
	CheckpointSkips int64 `json:"checkpoint_skips"`
	// FeedbackDuplicates counts feedback requests absorbed by seq dedupe.
	FeedbackDuplicates int64        `json:"feedback_duplicates"`
	Cache              CacheStats   `json:"cache"`
	Latency            LatencyStats `json:"latency"`
	// Cluster is the shard's identity and handoff counters when the node is
	// part of a cluster deployment (absent standalone).
	Cluster *ClusterNodeStats `json:"cluster,omitempty"`
	// Replication is the push-queue ledger when the replication sender is
	// enabled (absent otherwise; receiver-side counters live in Cache).
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Membership is the gossip membership plane's view and protocol
	// counters when the node gossips (absent standalone).
	Membership *MembershipStats `json:"membership,omitempty"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	s.fbMu.Lock()
	window := len(s.window)
	s.fbMu.Unlock()
	return Stats{
		UptimeSeconds:      s.cfg.Now().Sub(s.started).Seconds(),
		Allocates:          s.allocates.Load(),
		DegradedCount:      s.degraded.Load(),
		Feedbacks:          s.feedbacks.Load(),
		Refits:             s.refits.Load(),
		StoreSize:          s.store.Len(),
		StoreAdds:          s.storeAdds.Load(),
		WindowSize:         window,
		RecoveredPanics:    s.panics.Load(),
		CheckpointSkips:    s.ckptSkips.Load(),
		FeedbackDuplicates: s.fbDupes.Load(),
		Cache:              s.cache.stats(),
		Latency:            s.latencyStats(),
		Cluster:            s.clusterNodeStats(),
		Replication:        s.replicationStats(),
		Membership:         s.membershipStats(),
	}
}

func (s *Server) latencyStats() LatencyStats {
	s.latMu.Lock()
	n := s.latNext
	if s.latFull {
		n = len(s.lat)
	}
	window := append([]int64(nil), s.lat[:n]...)
	s.latMu.Unlock()
	if len(window) == 0 {
		return LatencyStats{}
	}
	sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
	q := func(p float64) int64 {
		i := int(p * float64(len(window)-1))
		return window[i]
	}
	return LatencyStats{
		Count: int64(len(window)),
		P50:   q(0.50),
		P95:   q(0.95),
		P99:   q(0.99),
		Max:   window[len(window)-1],
	}
}
