package serve

// MembershipStats is the gossip membership plane's contribution to
// /v1/stats: the node's converged view summary (epoch, digest, member
// states), its own incarnation number, and the SWIM protocol counters.
// The serve tier defines the shape (it owns the stats payload) and the
// cluster tier fills it — membership is wired in with SetMembership, so a
// standalone node simply omits the section.
type MembershipStats struct {
	// Epoch is the membership epoch: a Lamport clock every state change
	// advances and every gossip exchange merges, so converged members
	// report the same value.
	Epoch uint64 `json:"membership_epoch"`
	// Digest is a hash over the full member table; equal (Epoch, Digest)
	// pairs mean identical views.
	Digest string `json:"view_digest"`
	// Incarnation is this member's self-owned version counter, bumped only
	// by its own refutations.
	Incarnation uint64 `json:"incarnation"`

	Members int `json:"members"`
	Alive   int `json:"alive"`
	Suspect int `json:"suspect"`
	Dead    int `json:"dead"`

	PingsSent        int64 `json:"pings_sent"`
	PingAcks         int64 `json:"ping_acks"`
	PingTimeouts     int64 `json:"ping_timeouts"`
	IndirectReqs     int64 `json:"indirect_reqs"`
	IndirectAcks     int64 `json:"indirect_acks"`
	SuspectsDeclared int64 `json:"suspects_declared"`
	Refutations      int64 `json:"refutations"`
	DeadConfirmed    int64 `json:"dead_confirmed"`
	UpdatesApplied   int64 `json:"updates_applied"`
	FullSyncs        int64 `json:"full_syncs"`
	JoinsSent        int64 `json:"joins_sent"`
	JoinsServed      int64 `json:"joins_served"`
}

// SetMembership registers the membership-stats provider (the cluster
// tier's gossip agent). Safe to call before serving; nil detaches.
func (s *Server) SetMembership(provider func() *MembershipStats) {
	s.clusterMu.Lock()
	s.membership = provider
	s.clusterMu.Unlock()
}

func (s *Server) membershipStats() *MembershipStats {
	s.clusterMu.Lock()
	provider := s.membership
	s.clusterMu.Unlock()
	if provider == nil {
		return nil
	}
	return provider()
}
