package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ClusterIdentity is a shard's place in a cluster deployment: which node it
// is, how it sits on the routing ring, and which cluster keys it owns. The
// identity is informational plus cache-scoping — a shard still answers any
// cluster it is asked about (that is what lets the router degrade to a
// survivor instead of 5xxing when an owner dies); ownership scopes what the
// shard exports to joining peers and what it pulls when it boots.
type ClusterIdentity struct {
	// NodeID is the shard's stable ring placement key.
	NodeID string `json:"node_id"`
	// RingPositions is the shard's virtual-node count on the full ring.
	RingPositions int `json:"ring_positions"`
	// OwnedClusters are the store indices the shard owns on the full ring.
	OwnedClusters []int `json:"owned_clusters"`
	// OwnedFraction is the shard's share of the hash space.
	OwnedFraction float64 `json:"owned_fraction"`
	// ReplicaGroups is the fleet's owner count per cluster (R); 0 or 1 means
	// unreplicated.
	ReplicaGroups int `json:"replica_groups,omitempty"`
	// ReplicaClusters are the store indices the shard holds as a non-primary
	// owner (successor replica) on the full ring.
	ReplicaClusters []int `json:"replica_clusters,omitempty"`
}

// ClusterNodeStats is the cluster section of /v1/stats: identity plus the
// warm-handoff counters.
type ClusterNodeStats struct {
	ClusterIdentity
	// HandoffServes counts shard-scoped checkpoint exports served to peers.
	HandoffServes int64 `json:"handoff_serves"`
	// HandoffPulls counts policies this node installed from peer checkpoints.
	HandoffPulls int64 `json:"handoff_pulls"`
	// ReplicaInstalls/ReplicaStale/ReplicaHits mirror the cache's
	// replica-group counters for operators reading /v1/cluster.
	ReplicaInstalls int64 `json:"replica_installs"`
	ReplicaStale    int64 `json:"replica_stale"`
	ReplicaHits     int64 `json:"replica_hits"`
}

// SetClusterIdentity records the shard's cluster membership (shown in stats
// and /v1/cluster). Safe to call once at boot, before serving.
func (s *Server) SetClusterIdentity(id ClusterIdentity) {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	id.OwnedClusters = append([]int(nil), id.OwnedClusters...)
	sort.Ints(id.OwnedClusters)
	id.ReplicaClusters = append([]int(nil), id.ReplicaClusters...)
	sort.Ints(id.ReplicaClusters)
	s.clusterID = &id
}

// ClusterIdentity returns the recorded membership, or nil when the server
// runs standalone.
func (s *Server) ClusterIdentity() *ClusterIdentity {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	if s.clusterID == nil {
		return nil
	}
	id := *s.clusterID
	return &id
}

func (s *Server) clusterNodeStats() *ClusterNodeStats {
	id := s.ClusterIdentity()
	if id == nil {
		return nil
	}
	return &ClusterNodeStats{
		ClusterIdentity: *id,
		HandoffServes:   s.handoffServes.Load(),
		HandoffPulls:    s.handoffPulls.Load(),
		ReplicaInstalls: s.cache.replicaInstalls.Load(),
		ReplicaStale:    s.cache.replicaStale.Load(),
		ReplicaHits:     s.cache.replicaHits.Load(),
	}
}

// InstallFromCheckpoint restores policies from a peer's shard-scoped
// checkpoint stream, counting each installed policy as a handoff pull.
// Wire-wise it is LoadCheckpoint — the v2 per-section CRC framing is what
// makes a partial peer transfer safe to apply.
func (s *Server) InstallFromCheckpoint(r io.Reader) (int, error) {
	n, err := s.LoadCheckpoint(r)
	if n > 0 {
		s.handoffPulls.Add(int64(n))
	}
	return n, err
}

// InstallFromPeerCheckpoint is the anti-entropy install path: a page of a
// peer's checkpoint export applied through the versioned idempotence gate
// (InstallReplicated), with role-aware provenance — clusters this node
// primary-owns install warm, the rest as replica copies — and installed
// entries counted as handoff pulls.
func (s *Server) InstallFromPeerCheckpoint(r io.Reader, primary func(cluster int) bool) (InstallResult, error) {
	res, err := s.InstallReplicated(r, primary)
	if res.Installed > 0 {
		s.handoffPulls.Add(int64(res.Installed))
	}
	return res, err
}

// parseClusterSet parses the /v1/checkpoint "clusters" query parameter: a
// comma-separated list of store indices. Empty means "everything".
func parseClusterSet(raw string) (map[int]bool, error) {
	if raw == "" {
		return nil, nil
	}
	set := make(map[int]bool)
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k < 0 {
			return nil, fmt.Errorf("bad cluster %q", part)
		}
		set[k] = true
	}
	return set, nil
}

// handleCheckpointExport serves GET /v1/checkpoint: the node's policy cache
// in checkpoint-v2 format, optionally filtered to ?clusters=3,17,42 — the
// shard-scoped export a joining peer pulls to boot warm. The chunked,
// resumable form adds ?after=K (clusters strictly greater than K, ascending)
// and ?limit=N (at most N entry sections): a cache larger than one GET
// converges over multiple pulls, each page safe to apply independently
// thanks to the per-section CRC and the receiver's version gate.
func (s *Server) handleCheckpointExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	q := r.URL.Query()
	keepSet, err := parseClusterSet(q.Get("clusters"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var keep func(int) bool
	if keepSet != nil {
		keep = func(k int) bool { return keepSet[k] }
	}
	after, limit := -1, 0
	if raw := q.Get("after"); raw != "" {
		if after, err = strconv.Atoi(raw); err != nil || after < -1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad after %q", raw))
			return
		}
	}
	if raw := q.Get("limit"); raw != "" {
		if limit, err = strconv.Atoi(raw); err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", raw))
			return
		}
	}
	// Buffer the checkpoint so an encoding failure can still answer 500;
	// exports are a page of policies, not bulk data.
	var buf bytes.Buffer
	if _, err := s.SaveCheckpointPage(&buf, keep, after, limit); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.handoffServes.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(buf.Bytes())
}

// handleClusterStatus serves GET /v1/cluster: the node's view of its own
// membership (the router serves the fleet-wide shard map under the same
// path).
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	st := s.clusterNodeStats()
	if st == nil {
		writeJSON(w, http.StatusOK, map[string]any{"standalone": true})
		return
	}
	writeJSON(w, http.StatusOK, st)
}
