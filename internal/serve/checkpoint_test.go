package serve

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestCheckpointWarmStart is satellite 2's end-to-end check: a full CRL
// snapshot survives the serve warm-start path. Allocations after restore
// must match the pre-checkpoint ones exactly, with zero retraining.
func TestCheckpointWarmStart(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, fastConfig())
	reqs := []AllocateRequest{
		{Signature: []float64{0.05}},
		{Signature: []float64{0.95}},
	}
	var before []*AllocateResponse
	for _, req := range reqs {
		resp, err := s.Allocate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		before = append(before, resp)
	}

	var buf bytes.Buffer
	if err := s.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh process: same template, same store, cold cache.
	s2 := newTestServer(t, fastConfig())
	restored, err := s2.LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored %d entries, want 2", restored)
	}
	for i, req := range reqs {
		resp, err := s2.Allocate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cache != CacheWarm {
			t.Fatalf("request %d: cache = %q, want %q", i, resp.Cache, CacheWarm)
		}
		if resp.Cluster != before[i].Cluster {
			t.Fatalf("request %d: cluster %d vs %d", i, resp.Cluster, before[i].Cluster)
		}
		for j := range resp.Allocation {
			if resp.Allocation[j] != before[i].Allocation[j] {
				t.Fatalf("request %d: allocation diverges at task %d: %v vs %v",
					i, j, resp.Allocation, before[i].Allocation)
			}
		}
	}
	stats := s2.Stats().Cache
	if stats.Trainings != 0 {
		t.Fatalf("warm start trained %d policies, want 0", stats.Trainings)
	}
	if stats.WarmRestores != 2 {
		t.Fatalf("warm restores = %d, want 2", stats.WarmRestores)
	}

	// A warm policy still expires/retrains through the normal lifecycle: a
	// drifted importance report invalidates it.
	fb, err := s2.Feedback(ctx, FeedbackRequest{
		Signature:  []float64{0.05},
		Features:   mkFeatures(clusterImportance(1), 0.05, 77),
		Allocation: []int{core.Unassigned, core.Unassigned, 0, 0, 1, 1},
		Importance: clusterImportance(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fb.DriftInvalidated {
		t.Fatal("drift not detected on warm entry")
	}
}

func TestCheckpointRejectsCorruptInput(t *testing.T) {
	s := newTestServer(t, fastConfig())
	if _, err := s.LoadCheckpoint(strings.NewReader("{not json")); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if _, err := s.LoadCheckpoint(strings.NewReader(`{"version":99,"entries":[]}`)); err == nil {
		t.Fatal("future version accepted")
	}
}

// TestCheckpointSkipsOutOfRangeClusters covers a checkpoint that outlived
// its store: entries keyed past the store length are skipped, not fatal.
func TestCheckpointSkipsOutOfRangeClusters(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, fastConfig())
	if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Shrink the world: a store with a single environment. Cluster 0's entry
	// restores; anything else would be skipped.
	data := bytes.ReplaceAll(buf.Bytes(), []byte(`"cluster":0`), []byte(`"cluster":7`))
	s2 := newTestServer(t, fastConfig())
	restored, err := s2.LoadCheckpoint(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Fatalf("restored %d out-of-range entries, want 0", restored)
	}
}
