package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestCheckpointWarmStart is satellite 2's end-to-end check: a full CRL
// snapshot survives the serve warm-start path. Allocations after restore
// must match the pre-checkpoint ones exactly, with zero retraining.
func TestCheckpointWarmStart(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, fastConfig())
	reqs := []AllocateRequest{
		{Signature: []float64{0.05}},
		{Signature: []float64{0.95}},
	}
	var before []*AllocateResponse
	for _, req := range reqs {
		resp, err := s.Allocate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		before = append(before, resp)
	}

	var buf bytes.Buffer
	if err := s.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh process: same template, same store, cold cache.
	s2 := newTestServer(t, fastConfig())
	restored, err := s2.LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored %d entries, want 2", restored)
	}
	for i, req := range reqs {
		resp, err := s2.Allocate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cache != CacheWarm {
			t.Fatalf("request %d: cache = %q, want %q", i, resp.Cache, CacheWarm)
		}
		if resp.Cluster != before[i].Cluster {
			t.Fatalf("request %d: cluster %d vs %d", i, resp.Cluster, before[i].Cluster)
		}
		for j := range resp.Allocation {
			if resp.Allocation[j] != before[i].Allocation[j] {
				t.Fatalf("request %d: allocation diverges at task %d: %v vs %v",
					i, j, resp.Allocation, before[i].Allocation)
			}
		}
	}
	stats := s2.Stats().Cache
	if stats.Trainings != 0 {
		t.Fatalf("warm start trained %d policies, want 0", stats.Trainings)
	}
	if stats.WarmRestores != 2 {
		t.Fatalf("warm restores = %d, want 2", stats.WarmRestores)
	}

	// A warm policy still expires/retrains through the normal lifecycle: a
	// drifted importance report invalidates it.
	fb, err := s2.Feedback(ctx, FeedbackRequest{
		Signature:  []float64{0.05},
		Features:   mkFeatures(clusterImportance(1), 0.05, 77),
		Allocation: []int{core.Unassigned, core.Unassigned, 0, 0, 1, 1},
		Importance: clusterImportance(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fb.DriftInvalidated {
		t.Fatal("drift not detected on warm entry")
	}
}

// saveTwoClusterCheckpoint warms both clusters and returns the framed bytes.
func saveTwoClusterCheckpoint(t *testing.T, s *Server) []byte {
	t.Helper()
	ctx := context.Background()
	for c := 0; c < 2; c++ {
		if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{float64(c)}}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sectionOffsets parses a v2 checkpoint's frame boundaries: the byte offset
// and payload length of each section (header first).
func sectionOffsets(t *testing.T, data []byte) [][2]int {
	t.Helper()
	if !bytes.HasPrefix(data, checkpointMagic) {
		t.Fatal("not a v2 checkpoint")
	}
	var secs [][2]int
	off := len(checkpointMagic)
	for off < len(data) {
		n := int(uint32(data[off])<<24 | uint32(data[off+1])<<16 | uint32(data[off+2])<<8 | uint32(data[off+3]))
		secs = append(secs, [2]int{off, n})
		off += 8 + n
	}
	return secs
}

// TestCheckpointBitFlipBootsColdOnlyDamagedCluster is the tentpole's
// corruption acceptance: flip one byte inside one cluster's section and the
// restore skips exactly that cluster — the other serves warm, the damaged
// one boots cold and retrains on demand, and the skip is logged and counted.
func TestCheckpointBitFlipBootsColdOnlyDamagedCluster(t *testing.T) {
	ctx := context.Background()
	data := saveTwoClusterCheckpoint(t, newTestServer(t, fastConfig()))
	secs := sectionOffsets(t, data)
	if len(secs) != 3 {
		t.Fatalf("sections = %d, want header + 2 entries", len(secs))
	}
	// Damage the first entry's payload (section 1; section 0 is the header).
	corrupt := append([]byte(nil), data...)
	corrupt[secs[1][0]+8+secs[1][1]/2] ^= 0x40

	cfg := fastConfig()
	cfg.Logf = t.Logf
	s2 := newTestServer(t, cfg)
	restored, err := s2.LoadCheckpoint(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatalf("bit-flipped checkpoint failed whole restore: %v", err)
	}
	if restored != 1 {
		t.Fatalf("restored %d entries, want 1 (the undamaged one)", restored)
	}
	if got := s2.Stats().CheckpointSkips; got != 1 {
		t.Fatalf("CheckpointSkips = %d, want 1", got)
	}

	// Exactly one cluster (the damaged section's) boots cold and retrains on
	// demand; the other serves warm with zero retraining.
	warmed, colded := 0, 0
	for c := 0; c < 2; c++ {
		resp, err := s2.Allocate(ctx, AllocateRequest{Signature: []float64{float64(c)}})
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Cache {
		case CacheWarm:
			warmed++
		case CacheMiss:
			colded++
		default:
			t.Fatalf("cluster %d outcome = %q", c, resp.Cache)
		}
	}
	if warmed != 1 || colded != 1 {
		t.Fatalf("warm=%d cold=%d, want exactly one of each", warmed, colded)
	}
}

// TestCheckpointTruncationKeepsPrefix: a torn tail (crash mid-write without
// the atomic rename, or a short copy) restores every intact leading section
// and skips the rest without failing.
func TestCheckpointTruncationKeepsPrefix(t *testing.T) {
	data := saveTwoClusterCheckpoint(t, newTestServer(t, fastConfig()))
	secs := sectionOffsets(t, data)
	// Cut inside the last section's payload.
	cut := secs[2][0] + 8 + secs[2][1]/2
	cfg := fastConfig()
	cfg.Logf = t.Logf
	s2 := newTestServer(t, cfg)
	restored, err := s2.LoadCheckpoint(bytes.NewReader(data[:cut]))
	if err != nil {
		t.Fatalf("truncated checkpoint failed whole restore: %v", err)
	}
	if restored != 1 {
		t.Fatalf("restored %d entries from truncated file, want 1", restored)
	}
	if got := s2.Stats().CheckpointSkips; got != 1 {
		t.Fatalf("CheckpointSkips = %d, want 1", got)
	}
	// Garbage that never framed a section still fails loudly.
	s3 := newTestServer(t, fastConfig())
	garbage := append(append([]byte(nil), checkpointMagic...), 0xFF, 0xFF)
	if _, err := s3.LoadCheckpoint(bytes.NewReader(garbage)); err == nil {
		t.Fatal("headerless garbage accepted")
	}
}

// TestCheckpointFileRoundTrip covers the atomic file helpers: save, reload,
// overwrite-in-place, and the boot-cold contract for a missing file.
func TestCheckpointFileRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	path := filepath.Join(dir, "dcta.ckpt")

	s := newTestServer(t, fastConfig())
	if n, err := s.LoadCheckpointFile(path); n != 0 || err != nil {
		t.Fatalf("missing checkpoint file: n=%d err=%v, want 0/nil", n, err)
	}
	for c := 0; c < 2; c++ {
		if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{float64(c)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place — the rename path, not the create path.
	if err := s.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir has %d files, want 1: %v", len(entries), entries)
	}

	s2 := newTestServer(t, fastConfig())
	restored, err := s2.LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored %d entries, want 2", restored)
	}
	resp, err := s2.Allocate(ctx, AllocateRequest{Signature: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != CacheWarm {
		t.Fatalf("post-restore cache = %q, want warm", resp.Cache)
	}
}

func TestCheckpointRejectsCorruptInput(t *testing.T) {
	s := newTestServer(t, fastConfig())
	if _, err := s.LoadCheckpoint(strings.NewReader("{not json")); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if _, err := s.LoadCheckpoint(strings.NewReader(`{"version":99,"entries":[]}`)); err == nil {
		t.Fatal("future version accepted")
	}
}

// TestCheckpointSkipsOutOfRangeClusters covers a checkpoint that outlived
// its store: entries keyed past the store length are skipped, not fatal.
// The checkpoint is rewritten through the v1 bare-JSON format, which also
// pins backward compatibility with pre-CRC checkpoints.
func TestCheckpointSkipsOutOfRangeClusters(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, fastConfig())
	if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	ck := checkpoint{Version: 1}
	for _, e := range s.cache.snapshot() {
		policy, err := e.crl.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		ck.Entries = append(ck.Entries, checkpointEntry{
			Cluster: 7, TrainedAt: e.trainedAt, Importance: e.imp, Policy: policy,
		})
	}
	data, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, fastConfig())
	restored, err := s2.LoadCheckpoint(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Fatalf("restored %d out-of-range entries, want 0", restored)
	}
}

// TestCheckpointV1Compat proves a pre-CRC (v1) checkpoint still restores.
func TestCheckpointV1Compat(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, fastConfig())
	if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0.05}}); err != nil {
		t.Fatal(err)
	}
	ck := checkpoint{Version: 1, SavedAt: s.cfg.Now()}
	for _, e := range s.cache.snapshot() {
		policy, err := e.crl.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		ck.Entries = append(ck.Entries, checkpointEntry{
			Cluster: e.key, TrainedAt: e.trainedAt, Importance: e.imp, Policy: policy,
		})
	}
	data, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, fastConfig())
	restored, err := s2.LoadCheckpoint(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored %d v1 entries, want 1", restored)
	}
	resp, err := s2.Allocate(ctx, AllocateRequest{Signature: []float64{0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != CacheWarm {
		t.Fatalf("cache = %q, want warm after v1 restore", resp.Cache)
	}
}
