package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mathx"
)

// chaosTrainer wraps the real trainer with a seeded fault schedule: each
// training attempt independently fails, hangs, panics, or succeeds. The
// schedule is deterministic per seed; the interleaving under load is not,
// which is the point — the assertions below must hold for every interleaving.
type chaosTrainer struct {
	mu                        sync.Mutex
	rng                       interface{ Float64() float64 }
	real                      trainFunc
	fails, hangs, panics, oks int
}

func (ct *chaosTrainer) train(cluster int) (*core.CRL, []float64, error) {
	ct.mu.Lock()
	roll := ct.rng.Float64()
	switch {
	case roll < 0.35:
		ct.fails++
	case roll < 0.55:
		ct.hangs++
	case roll < 0.70:
		ct.panics++
	default:
		ct.oks++
	}
	ct.mu.Unlock()
	switch {
	case roll < 0.35:
		return nil, nil, errors.New("chaos: training failed")
	case roll < 0.55:
		time.Sleep(80 * time.Millisecond) // well past the TrainBudget
		return nil, nil, errors.New("chaos: training hung then failed")
	case roll < 0.70:
		panic("chaos: training panicked")
	default:
		return ct.real(cluster)
	}
}

// TestChaosServing is the tentpole's chaos suite: a real HTTP server under
// concurrent allocate+feedback load while trainings randomly fail, hang, and
// panic on a seeded schedule. Invariants, for every interleaving:
//
//   - zero 5xx responses — malformed requests 400, everything else 200
//   - every 200 allocation is feasible for its cluster's environment
//   - the process survives every injected panic (counted, logged, absorbed)
//   - the stats ledger is coherent: degraded answers were served, breakers
//     opened under failure streaks, and panics were converted to failures
//
// CI runs this (and the rest of the Chaos/FaultTolerant set) under -race
// with -count=2.
func TestChaosServing(t *testing.T) {
	cfg := fastConfig()
	cfg.TrainBudget = 25 * time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.BreakerBackoff = 40 * time.Millisecond
	cfg.BreakerMaxBackoff = 200 * time.Millisecond
	cfg.TrainConcurrency = 2
	cfg.TrainQueue = 2
	cfg.Logf = func(string, ...any) {} // chaos is noisy by design
	const clusters = 4
	s := serverWithStore(t, cfg, multiClusterStore(t, clusters))

	ct := &chaosTrainer{rng: mathx.NewRand(1234), real: s.cache.train}
	s.cache.train = ct.train

	ts := httptest.NewServer(NewHandler(s, HTTPOptions{RequestTimeout: 2 * time.Second}))
	defer ts.Close()

	type outcome struct {
		op   string
		code int
		body string
	}
	const workers = 8
	const opsPerWorker = 25
	results := make([][]outcome, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := mathx.NewRand(int64(1000 + w))
			client := ts.Client()
			for i := 0; i < opsPerWorker; i++ {
				cluster := rng.Intn(clusters)
				sig := []float64{float64(cluster) + 0.1*(rng.Float64()-0.5)}
				var op string
				var code int
				var body string
				switch roll := rng.Float64(); {
				case roll < 0.55: // well-formed allocate
					op = "allocate"
					code, body = chaosPost(client, ts.URL+"/v1/allocate",
						AllocateRequest{Signature: sig})
				case roll < 0.80: // well-formed feedback
					op = "feedback"
					imp := clusterImportance(cluster % 2)
					code, body = chaosPost(client, ts.URL+"/v1/feedback", FeedbackRequest{
						Signature:  sig,
						Features:   mkFeatures(imp, 0.05, int64(w*100+i)),
						Allocation: []int{0, 0, 1, 1, core.Unassigned, core.Unassigned},
						Importance: imp,
					})
				case roll < 0.90: // malformed: empty signature
					op = "malformed"
					code, body = chaosPost(client, ts.URL+"/v1/allocate", AllocateRequest{})
				default: // malformed: broken JSON
					op = "malformed"
					resp, err := client.Post(ts.URL+"/v1/allocate", "application/json",
						bytes.NewReader([]byte(`{"signature": [0.5`)))
					if err != nil {
						code, body = -1, err.Error()
					} else {
						b, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						code, body = resp.StatusCode, string(b)
					}
				}
				results[w] = append(results[w], outcome{op, code, body})
			}
		}(w)
	}
	wg.Wait()

	feasible := 0
	for w := range results {
		for _, r := range results[w] {
			switch r.op {
			case "malformed":
				if r.code != http.StatusBadRequest {
					t.Fatalf("malformed %s got %d (want 400): %s", r.op, r.code, r.body)
				}
			default:
				if r.code != http.StatusOK {
					t.Fatalf("%s got %d (want 200): %s", r.op, r.code, r.body)
				}
				if r.op == "allocate" {
					var ar AllocateResponse
					if err := json.Unmarshal([]byte(r.body), &ar); err != nil {
						t.Fatalf("allocate response decode: %v", err)
					}
					if ar.Mode != ModeNormal && ar.Mode != ModeDegraded {
						t.Fatalf("allocate mode = %q", ar.Mode)
					}
					prob := s.problemWithImportance(clusterImportance(ar.Cluster % 2))
					if err := prob.CheckFeasible(ar.Allocation); err != nil {
						t.Fatalf("infeasible 200 allocation (mode %s): %v", ar.Mode, err)
					}
					feasible++
				}
			}
		}
	}
	if feasible == 0 {
		t.Fatal("chaos load produced no allocate responses")
	}

	// Drain background trainings before auditing the ledger: HTTP waiters may
	// have degraded and returned while their trainings still run.
	for s.cache.pending.Load() != 0 {
		time.Sleep(time.Millisecond)
	}

	// The ledger must reflect the chaos the trainer actually injected.
	ct.mu.Lock()
	injected := fmt.Sprintf("fails=%d hangs=%d panics=%d oks=%d", ct.fails, ct.hangs, ct.panics, ct.oks)
	panics, fails := ct.panics, ct.fails+ct.hangs
	ct.mu.Unlock()
	t.Logf("chaos schedule: %s", injected)
	stats := s.Stats()
	if int(stats.Cache.TrainPanics) != panics {
		t.Fatalf("TrainPanics = %d, injected %d (%s)", stats.Cache.TrainPanics, panics, injected)
	}
	if int(stats.Cache.TrainFailures) != fails+panics {
		t.Fatalf("TrainFailures = %d, injected %d (%s)", stats.Cache.TrainFailures, fails+panics, injected)
	}
	if panics+fails > 0 && stats.DegradedCount == 0 {
		t.Fatalf("chaos injected failures but DegradedCount = 0 (%s)", injected)
	}
	if stats.RecoveredPanics != 0 {
		t.Fatalf("training panics leaked to the HTTP layer: RecoveredPanics = %d", stats.RecoveredPanics)
	}
	// With threshold 2 and a fail-heavy schedule, streaks must have opened
	// breakers; and every breaker must be in a legal state.
	if fails+panics >= 2*cfg.BreakerThreshold && stats.Cache.BreakerOpens == 0 {
		t.Fatalf("no breaker opened under %s", injected)
	}
	for c := 0; c < clusters; c++ {
		switch state, _ := s.cache.breakerState(c); state {
		case BreakerClosed, BreakerOpen, BreakerHalfOpen:
		default:
			t.Fatalf("cluster %d breaker in impossible state %q", c, state)
		}
	}

	// The service is still healthy after the storm: heal the trainer (safe —
	// trainings drained above) and a fresh request must eventually serve
	// normally again once breaker windows elapse.
	s.cache.train = ct.real
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{0}})
		if err != nil {
			t.Fatalf("post-chaos allocate: %v", err)
		}
		if resp.Mode == ModeNormal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never recovered after chaos: mode=%q reason=%q", resp.Mode, resp.DegradedReason)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosPost posts one JSON request, returning status and body. Transport
// errors return code -1 so the caller reports them as invariant violations.
func chaosPost(client *http.Client, url string, body any) (int, string) {
	raw, err := json.Marshal(body)
	if err != nil {
		return -1, err.Error()
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return -1, err.Error()
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestChaosPanickingTrainerDeterministic pins the single-threaded panic
// contract: a panicking training is absorbed, counted, answered degraded,
// and counts toward the breaker like any failure.
func TestChaosPanickingTrainerDeterministic(t *testing.T) {
	cfg := fastConfig()
	cfg.BreakerThreshold = 2
	cfg.Logf = t.Logf
	s := newTestServer(t, cfg)
	s.cache.train = func(int) (*core.CRL, []float64, error) { panic("boom") }

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		resp, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Mode != ModeDegraded || resp.DegradedReason != DegradedTrainFailed {
			t.Fatalf("attempt %d: mode=%q reason=%q", i, resp.Mode, resp.DegradedReason)
		}
	}
	stats := s.Stats().Cache
	if stats.TrainPanics != 2 || stats.TrainFailures != 2 {
		t.Fatalf("panics=%d failures=%d, want 2/2", stats.TrainPanics, stats.TrainFailures)
	}
	if state, _ := s.cache.breakerState(0); state != BreakerOpen {
		t.Fatalf("breaker = %s after two panics with threshold 2, want open", state)
	}
}
