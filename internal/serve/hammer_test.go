package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestShardRaceHammerExactLedger aims 128 goroutines at clusters that all
// collide in ONE cache shard (CacheShards=4 → mask 3 → clusters 0,4,8,12 hash
// to shard 0) while that shard's capacity (2) forces continuous LRU churn.
// The mix — allocates, drift-carrying feedback, checkpoint snapshots — hits
// every lock transition of the sharded cache at once. Run under -race this is
// the shard map's safety proof; the exact-ledger assertions below are its
// linearizability proof: every response outcome must reconcile 1:1 with the
// cache's atomic counters, so a lost update, double count or torn outcome
// anywhere in the shard path fails the test even without the race detector.
//
// The ledger only balances because every nondeterministic counter source is
// pinned: the breaker is disabled (a breaker rejection would answer bypass
// while the miss counter already ticked), the training gate is oversized (no
// saturation rejections), and the TTL is zero (no expiry retrains).
func TestShardRaceHammerExactLedger(t *testing.T) {
	cfg := fastConfig()
	cfg.CacheShards = 4
	cfg.CacheCapacity = 6 // shard 0 gets capacity 2 — 4 hot clusters churn it
	cfg.BreakerThreshold = -1
	cfg.TrainConcurrency = 64
	cfg.TrainQueue = 256
	cfg.Logf = func(string, ...any) {}
	s := serverWithStore(t, cfg, multiClusterStore(t, 16))
	if got := s.cache.stats().Shards; got != 4 {
		t.Fatalf("shards = %d, want 4", got)
	}

	clusters := []int{0, 4, 8, 12} // all & 3 == 0: one shard takes the storm
	const workers = 128
	const iters = 4

	var hitWarm, miss, coalesced, drift, degraded, allocs, feedbacks atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				c := clusters[(w+i)%len(clusters)]
				role := w % 4
				if role == 3 && i%2 == 1 {
					// Drift writer: report the *other* pattern's importance,
					// invalidating whatever policy is resident for c.
					flipped := clusterImportance((c%2 + 1) % 2)
					_, err := s.Feedback(ctx, FeedbackRequest{
						Signature:  []float64{float64(c)},
						Features:   mkFeatures(flipped, 0.05, int64(w*100+i)),
						Allocation: []int{0, 0, 1, core.Unassigned, core.Unassigned, 1},
						Importance: flipped,
					})
					if err != nil {
						errs[w] = fmt.Errorf("worker %d feedback: %w", w, err)
						return
					}
					feedbacks.Add(1)
					continue
				}
				if role == 2 && i%2 == 1 {
					// Checkpointer: walk every shard's LRU under load.
					if err := s.SaveCheckpoint(io.Discard); err != nil {
						errs[w] = fmt.Errorf("worker %d checkpoint: %w", w, err)
						return
					}
					continue
				}
				resp, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{float64(c)}})
				if err != nil {
					errs[w] = fmt.Errorf("worker %d cluster %d: %w", w, c, err)
					return
				}
				allocs.Add(1)
				if resp.Mode == ModeDegraded {
					degraded.Add(1)
					continue
				}
				switch resp.Cache {
				case CacheHit, CacheWarm:
					hitWarm.Add(1)
				case CacheMiss:
					miss.Add(1)
				case CacheCoalesced:
					coalesced.Add(1)
				case CacheDrift:
					drift.Add(1)
				default:
					errs[w] = fmt.Errorf("worker %d: unexpected outcome %q", w, resp.Cache)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	stats := s.Stats()
	cs := stats.Cache
	// Every response outcome reconciles exactly with the shard counters.
	if got := degraded.Load(); got != 0 || stats.DegradedCount != 0 {
		t.Fatalf("degraded answers: responses %d, counter %d — want 0 with breaker/gate pinned",
			got, stats.DegradedCount)
	}
	if cs.Hits != hitWarm.Load() {
		t.Fatalf("hits counter %d != hit/warm responses %d", cs.Hits, hitWarm.Load())
	}
	if cs.Misses != miss.Load() {
		t.Fatalf("misses counter %d != miss responses %d", cs.Misses, miss.Load())
	}
	if cs.Coalesced != coalesced.Load() {
		t.Fatalf("coalesced counter %d != coalesced responses %d", cs.Coalesced, coalesced.Load())
	}
	if cs.DriftInvalidations != drift.Load() {
		t.Fatalf("drift counter %d != drift responses %d", cs.DriftInvalidations, drift.Load())
	}
	if cs.Expired != 0 {
		t.Fatalf("expired = %d with TTL disabled", cs.Expired)
	}
	if stats.Allocates != allocs.Load() {
		t.Fatalf("allocates counter %d != answered requests %d", stats.Allocates, allocs.Load())
	}
	if stats.Feedbacks != feedbacks.Load() {
		t.Fatalf("feedbacks counter %d != feedback calls %d", stats.Feedbacks, feedbacks.Load())
	}
	// Trainings reconcile too: every non-hit policy answer was trained
	// exactly once (miss, drift), coalesced requests joined without training.
	if cs.Trainings != cs.Misses+cs.DriftInvalidations {
		t.Fatalf("trainings %d != misses %d + drift retrains %d",
			cs.Trainings, cs.Misses, cs.DriftInvalidations)
	}
	if cs.TrainFailures != 0 || cs.TrainPanics != 0 || cs.Saturations != 0 || cs.BreakerRejects != 0 {
		t.Fatalf("unexpected failure counters: %+v", cs)
	}
	// The coalescer's own ledger: every warm rollout is either solo or rode
	// in a counted batch.
	if cs.BatchRuns > 0 && cs.BatchedRequests == 0 {
		t.Fatalf("batch runs without batched requests: %+v", cs)
	}
	// Shard capacity is a hard ceiling even under churn.
	if size := s.cache.entryCount(); size > cfg.CacheCapacity {
		t.Fatalf("cache size %d exceeds capacity %d", size, cfg.CacheCapacity)
	}
}
