package serve

import (
	"bytes"
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// waitReplicationSettled polls until the server's replication queue drains.
func waitReplicationSettled(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !s.ReplicationSettled() {
		if time.Now().After(deadline) {
			t.Fatal("replication queue did not settle")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicationPushInstallsOnReplica is the replica-group core at the serve
// layer: a demand training on the primary asynchronously pushes the policy to
// its replica peer, which then answers from the pushed copy — marked
// "replica", exempt from demand TTL churn, and without spending any training
// budget of its own.
func TestReplicationPushInstallsOnReplica(t *testing.T) {
	ctx := context.Background()
	primary := newTestServer(t, fastConfig())
	replicaCfg := fastConfig()
	replicaCfg.PolicyTTL = time.Nanosecond // replica-held copies must not churn
	replica := newTestServer(t, replicaCfg)

	err := primary.EnableReplication(ReplicationConfig{
		PeersFor: func(int) []string { return []string{"replica"} },
		Send: func(addr string, snapshot []byte) error {
			_, err := replica.InstallReplicated(bytes.NewReader(snapshot), nil)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.EnableReplication(ReplicationConfig{PeersFor: func(int) []string { return nil }}); err == nil {
		t.Fatal("double EnableReplication accepted")
	}

	resp, err := primary.Allocate(ctx, AllocateRequest{Signature: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	waitReplicationSettled(t, primary)

	if got := replica.Stats().Cache.ReplicaInstalls; got != 1 {
		t.Fatalf("replica installed %d policies, want 1", got)
	}
	if st := primary.Stats().Replication; st == nil || st.Pushes != 1 || st.Dropped != 0 {
		t.Fatalf("primary replication stats: %+v", st)
	}

	// TTL long expired for a demand entry — the replica copy must still serve.
	time.Sleep(2 * time.Millisecond)
	got, err := replica.Allocate(ctx, AllocateRequest{Signature: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cache != CacheReplica || got.Mode != ModeNormal {
		t.Fatalf("replica answered cache=%q mode=%q, want a replica-held hit", got.Cache, got.Mode)
	}
	if !reflect.DeepEqual(got.Allocation, resp.Allocation) {
		t.Fatalf("replica allocation %v differs from primary's %v", got.Allocation, resp.Allocation)
	}
	st := replica.Stats().Cache
	if st.Trainings != 0 {
		t.Fatalf("replica trained %d policies; the push should have made that unnecessary", st.Trainings)
	}
	if st.ReplicaHits != 1 {
		t.Fatalf("replica hits = %d, want 1", st.ReplicaHits)
	}
}

// TestReplicationStaleNoOp pins the idempotence contract: replaying the same
// snapshot (same cluster, same TrainedAt) installs nothing the second time —
// the version gate answers it as a stale no-op.
func TestReplicationStaleNoOp(t *testing.T) {
	ctx := context.Background()
	src := newTestServer(t, fastConfig())
	if _, err := src.Allocate(ctx, AllocateRequest{Signature: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if _, err := src.SaveCheckpointPage(&snap, func(k int) bool { return k == 0 }, -1, 0); err != nil {
		t.Fatal(err)
	}

	dst := newTestServer(t, fastConfig())
	res, err := dst.InstallReplicated(bytes.NewReader(snap.Bytes()), nil)
	if err != nil || res.Installed != 1 || res.Stale != 0 || res.Sections != 1 || res.MaxCluster != 0 {
		t.Fatalf("first install: %+v err=%v", res, err)
	}
	res, err = dst.InstallReplicated(bytes.NewReader(snap.Bytes()), nil)
	if err != nil || res.Installed != 0 || res.Stale != 1 {
		t.Fatalf("replayed install: %+v err=%v, want a stale no-op", res, err)
	}
	if got := dst.Stats().Cache.ReplicaStale; got != 1 {
		t.Fatalf("replica_stale = %d, want 1", got)
	}
}

// TestReplicationOverflowNeverBlocksAllocate is the backpressure contract: a
// blackholed replica (Send that never returns) leaves the sender goroutine
// stuck, the bounded queue fills, and everything beyond it is dropped —
// counted in replication_dropped — while allocate keeps answering at full
// speed. Replication degrades to unreplicated; it never stalls the serve path.
func TestReplicationOverflowNeverBlocksAllocate(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, fastConfig())
	block := make(chan struct{})
	defer close(block)
	var sends atomic.Int64
	err := s.EnableReplication(ReplicationConfig{
		QueueLen: 1,
		PeersFor: func(int) []string { return []string{"blackhole"} },
		Send: func(string, []byte) error {
			sends.Add(1)
			<-block
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// First training's push occupies the sender inside the blackholed Send.
	if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sends.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sender never picked up the first job")
		}
		time.Sleep(time.Millisecond)
	}

	// Fill the 1-slot queue, then overflow it.
	s.repl.enqueue(0)
	s.repl.enqueue(0)
	// A second demand training must complete promptly (its push is simply
	// dropped); if enqueue could block, this would hang the test.
	resp, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeNormal {
		t.Fatalf("allocate degraded under replication backpressure: %+v", resp)
	}
	st := s.Stats().Replication
	if st == nil || st.Dropped < 2 {
		t.Fatalf("replication stats %+v, want ≥2 dropped", st)
	}
}

// TestFeedbackSeqDedupe covers the router-replay hazard: feedback refits are
// not idempotent, so a client-supplied seq must make the second application a
// visible no-op.
func TestFeedbackSeqDedupe(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, fastConfig())
	executed := []int{0, 0, 1, core.Unassigned, core.Unassigned, 1}
	req := FeedbackRequest{
		Signature:  []float64{0},
		Features:   mkFeatures(clusterImportance(0), 0.05, 60),
		Allocation: executed,
		Seq:        41,
	}
	first, err := s.Feedback(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Duplicate {
		t.Fatalf("first application flagged duplicate: %+v", first)
	}
	second, err := s.Feedback(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Duplicate {
		t.Fatalf("replayed seq applied again: %+v", second)
	}
	if second.WindowSize != first.WindowSize {
		t.Fatalf("duplicate moved the window: %d → %d", first.WindowSize, second.WindowSize)
	}
	if got := s.Stats().FeedbackDuplicates; got != 1 {
		t.Fatalf("feedback_duplicates = %d, want 1", got)
	}

	// A fresh seq and seq-less requests still apply.
	fresh := req
	fresh.Seq = 42
	if resp, err := s.Feedback(ctx, fresh); err != nil || resp.Duplicate {
		t.Fatalf("fresh seq refused: %+v err=%v", resp, err)
	}
	seqless := req
	seqless.Seq = 0
	for i := 0; i < 2; i++ {
		if resp, err := s.Feedback(ctx, seqless); err != nil || resp.Duplicate {
			t.Fatalf("seq-less feedback %d refused: %+v err=%v", i, resp, err)
		}
	}
}
