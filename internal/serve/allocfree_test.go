//go:build !race

// The race detector instruments allocations, making testing.AllocsPerRun
// report nonzero even for allocation-free code — so this file is excluded
// from -race runs and CI invokes it in a separate non-race pass.

package serve

import (
	"context"
	"testing"

	"repro/internal/core"
)

// zeroAllocServer warms cluster 0 and returns the server plus a manually-held
// workspace, ready for steady-state measurement.
func zeroAllocServer(t *testing.T, cfg Config) (*Server, *allocWS) {
	t.Helper()
	s := newTestServer(t, cfg)
	if _, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	return s, s.getWS()
}

// TestWarmAllocateZeroAllocsCRL pins the tentpole's memory contract: a warm
// CRL allocate (cache hit, batch-1 fast path) performs ZERO steady-state heap
// allocations — the pooled workspace, the replica's rollout scratch, the kNN
// scratch and the response backing arrays are all reused. Any regression here
// (a fresh slice, a fmt.Sprintf, an interface box on the hot path) fails CI.
func TestWarmAllocateZeroAllocsCRL(t *testing.T) {
	s, ws := zeroAllocServer(t, fastConfig())
	ctx := context.Background()
	req := AllocateRequest{Signature: []float64{0}}
	// Warm the per-workspace and per-replica scratch: the first calls grow
	// buffers and clone the pooled replica.
	for i := 0; i < 8; i++ {
		if err := s.AllocateInto(ctx, req, ws); err != nil {
			t.Fatal(err)
		}
		if ws.resp.Mode != ModeNormal || ws.resp.Cache != CacheHit {
			t.Fatalf("warmup %d: %+v", i, ws.resp)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := s.AllocateInto(ctx, req, ws); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm CRL allocate: %.2f allocs/op, want 0", avg)
	}
	if ws.resp.Mode != ModeNormal || ws.resp.Allocator != "CRL" {
		t.Fatalf("measured path was not the warm CRL path: %+v", ws.resp)
	}
}

// TestWarmAllocateZeroAllocsDCTA extends the zero-alloc contract to the DCTA
// warm path: combined scoring (local SVM + general importance) and the greedy
// pack also run entirely on pooled scratch.
func TestWarmAllocateZeroAllocsDCTA(t *testing.T) {
	cfg := fastConfig()
	cfg.RefitEvery = 12
	s, ws := zeroAllocServer(t, cfg)
	ctx := context.Background()

	// Fit the local model through the feedback path (as production would).
	imp := clusterImportance(0)
	executed := []int{0, 0, 1, core.Unassigned, core.Unassigned, 1}
	for i := 0; i < 2; i++ {
		fb, err := s.Feedback(ctx, FeedbackRequest{
			Signature:  []float64{0},
			Features:   mkFeatures(imp, 0.05, int64(60+i)),
			Allocation: executed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 && !fb.Refitted {
			t.Fatalf("local model not refitted: %+v", fb)
		}
	}

	req := AllocateRequest{Signature: []float64{0}, Features: mkFeatures(imp, 0.05, 61)}
	for i := 0; i < 8; i++ {
		if err := s.AllocateInto(ctx, req, ws); err != nil {
			t.Fatal(err)
		}
		if ws.resp.Allocator != "DCTA" || ws.resp.Mode != ModeNormal {
			t.Fatalf("warmup %d: %+v", i, ws.resp)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := s.AllocateInto(ctx, req, ws); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm DCTA allocate: %.2f allocs/op, want 0", avg)
	}
}
