package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"time"
)

// maxBodyBytes bounds request bodies; feature matrices for paper-scale
// problems are well under a megabyte.
const maxBodyBytes = 8 << 20

// HTTPOptions tunes the HTTP front-end.
type HTTPOptions struct {
	// RequestTimeout bounds each request's handling, including any policy
	// training it leads (default 120s — cold paths train).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown once the serve context is
	// canceled (default 10s).
	DrainTimeout time.Duration
	// ReadHeaderTimeout guards against slowloris clients (default 5s).
	ReadHeaderTimeout time.Duration
	// ExtraRoutes mounts additional handlers behind the same middleware
	// chain (recovery + per-request timeout). The cluster tier uses it to
	// mount the /v1/gossip membership endpoint on every shard.
	ExtraRoutes map[string]http.HandlerFunc
}

func (o HTTPOptions) withDefaults() HTTPOptions {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 120 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.ReadHeaderTimeout <= 0 {
		o.ReadHeaderTimeout = 5 * time.Second
	}
	return o
}

// NewHandler wires the service's HTTP/JSON API:
//
//	POST /v1/allocate   — AllocateRequest  → AllocateResponse
//	POST /v1/feedback   — FeedbackRequest  → FeedbackResponse
//	POST /v1/replicate  — checkpoint-v2 policy push from a primary owner
//	GET  /v1/stats      — Stats
//	GET  /v1/checkpoint — checkpoint-v2 export (?clusters=3,17 scopes it,
//	                      ?after=K&limit=N pages it for anti-entropy pulls)
//	GET  /v1/cluster    — the node's ClusterNodeStats (or standalone)
//	GET  /healthz      — liveness
func NewHandler(s *Server, opts HTTPOptions) http.Handler {
	return newHandler(s, opts, opts.ExtraRoutes)
}

// newHandler is NewHandler plus injected extra routes, so tests can mount a
// deliberately panicking handler behind the real middleware chain.
func newHandler(s *Server, opts HTTPOptions, extra map[string]http.HandlerFunc) http.Handler {
	opts = opts.withDefaults()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/allocate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
			return
		}
		// The allocate hot path decodes into and answers from a pooled
		// workspace: the request's slice buffers, the response and every
		// scratch the pipeline touches are recycled across requests.
		ws := s.getWS()
		defer s.putWS(ws)
		ws.req.Signature = ws.req.Signature[:0]
		ws.req.Features = ws.req.Features[:0]
		ws.req.Allocator = ""
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ws.req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
			return
		}
		if err := s.AllocateInto(r.Context(), ws.req, ws); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, &ws.resp)
	})
	mux.HandleFunc("/v1/feedback", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(ctx context.Context, req FeedbackRequest) (*FeedbackResponse, error) {
			return s.Feedback(ctx, req)
		})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
			return
		}
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/v1/replicate", s.handleReplicate)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpointExport)
	mux.HandleFunc("/v1/cluster", s.handleClusterStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		code := http.StatusOK
		if s.draining.Load() {
			status, code = "draining", http.StatusServiceUnavailable
		}
		writeJSON(w, code, map[string]string{"status": status})
	})
	for pattern, h := range extra {
		mux.HandleFunc(pattern, h)
	}
	return withRecovery(withTimeout(mux, opts.RequestTimeout), s)
}

// withRecovery absorbs handler panics: one broken request must not take down
// the listener goroutine or silently drop the connection. The panic is logged
// with its stack, counted in Stats.RecoveredPanics, and answered with a 500
// when the response hasn't started.
func withRecovery(next http.Handler, s *Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.panics.Add(1)
				s.cfg.Logf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				// Best effort: if the handler already wrote a header this
				// is a no-op superfluous-WriteHeader log, not a crash.
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withTimeout attaches a per-request deadline to the request context. The
// handlers run in the request goroutine, so a coalesced allocate waiting on
// a slow training gives up when the deadline fires.
func withTimeout(next http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// handleJSON decodes a POSTed request, runs fn, and encodes its response.
func handleJSON[Req any, Resp any](w http.ResponseWriter, r *http.Request,
	fn func(context.Context, Req) (Resp, error)) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req Req
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	resp, err := fn(r.Context(), req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// ServeListener runs the HTTP front-end on an existing listener until ctx is
// canceled, then drains gracefully: the server flips into draining mode
// (allocates answer degraded without starting trainings, feedback fails fast,
// /healthz reports draining so load balancers stop routing), and in-flight
// requests get DrainTimeout to finish.
func ServeListener(ctx context.Context, ln net.Listener, s *Server, opts HTTPOptions) error {
	opts = opts.withDefaults()
	return serveHandler(ctx, ln, NewHandler(s, opts), s, opts)
}

// serveHandler is ServeListener with the handler injected, so tests can run
// the real serve/drain loop around a handler with extra routes.
func serveHandler(ctx context.Context, ln net.Listener, h http.Handler, s *Server, opts HTTPOptions) error {
	hs := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: opts.ReadHeaderTimeout,
		BaseContext:       func(net.Listener) context.Context { return context.Background() },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.Drain()
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

// ListenAndServe binds addr and calls ServeListener. The bound address is
// reported through the optional ready callback (useful with ":0").
func ListenAndServe(ctx context.Context, addr string, s *Server, opts HTTPOptions, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	if ready != nil {
		ready(ln.Addr())
	}
	return ServeListener(ctx, ln, s, opts)
}
