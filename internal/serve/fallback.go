package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/knapsack"
)

// Degraded-mode reasons (AllocateResponse.DegradedReason).
const (
	// DegradedTrainFailed: the cluster's policy training errored or panicked.
	DegradedTrainFailed = "train_failed"
	// DegradedTrainBudget: training ran past Config.TrainBudget; it keeps
	// going in the background while this answer ships.
	DegradedTrainBudget = "train_budget"
	// DegradedCircuitOpen: the cluster's breaker refuses trainings.
	DegradedCircuitOpen = "circuit_open"
	// DegradedSaturated: the global training gate had no room.
	DegradedSaturated = "train_saturated"
	// DegradedDeadline: the request deadline expired while waiting on the
	// policy path.
	DegradedDeadline = "deadline"
	// DegradedDraining: the server is draining; no new trainings start but
	// in-flight traffic still gets a feasible answer.
	DegradedDraining = "draining"
	// DegradedPolicyError: the warm policy path itself failed (replica
	// clone, environment definition, rollout).
	DegradedPolicyError = "policy_error"
	// DegradedBatch: the coalesced micro-batch this request rode in
	// panicked; only the batch's own requests degrade, the cluster's
	// policy keeps serving.
	DegradedBatch = "batch_error"
)

// degradedReason maps a policy-path error to the response tag.
func degradedReason(err error) string {
	switch {
	case errors.Is(err, ErrCircuitOpen):
		return DegradedCircuitOpen
	case errors.Is(err, ErrTrainSaturated):
		return DegradedSaturated
	case errors.Is(err, ErrTrainBudget):
		return DegradedTrainBudget
	case errors.Is(err, context.DeadlineExceeded):
		return DegradedDeadline
	default:
		return DegradedTrainFailed
	}
}

// fallbackAllocate is the degraded-mode allocator — the DCTA shape with the
// expensive learned F₁ replaced by the raw kNN-matched importance: define
// the environment by inverse-distance-weighted kNN over the historical
// store (no policy, no DQN), correct with the local SVM when one is fitted
// and the request carries features (w1·F₁ + w2·F₂, Eq. 6), and pack with
// the density-greedy knapsack solver. Every step is lock-light and runs in
// microseconds, so this path answers even while trainings fail, hang, or
// queue — a feasible allocation always exists (dropping everything is
// feasible), so well-formed requests never error here.
func (s *Server) fallbackAllocateInto(req AllocateRequest, cluster int, start time.Time, reason string, ws *allocWS) error {
	env, err := s.store.DefineBlended(req.Signature, s.cfg.ClusterNeighborhood)
	if err != nil {
		// Signature dimensions were validated against the store already;
		// reaching this is a server bug, not a client error.
		return fmt.Errorf("serve: fallback environment: %w", err)
	}
	prob := s.problemWithImportance(env.Importance)
	scores := make([]float64, len(prob.Tasks))
	for j := range scores {
		scores[j] = prob.Tasks[j].Importance
	}
	combined, err := alloc.CombineScores(s.localModel(), scores, req.Features, s.cfg.W1, s.cfg.W2)
	if err != nil {
		// A scoring failure only costs the local correction.
		combined = scores
	}
	instance, err := prob.ToKnapsack().WithValues(combined)
	if err != nil {
		return fmt.Errorf("serve: fallback scores: %w", err)
	}
	sol, err := knapsack.SolveGreedy(instance)
	if err != nil {
		return fmt.Errorf("serve: fallback pack: %w", err)
	}
	var predicted float64
	for j, proc := range sol.Assignment {
		if proc != core.Unassigned && j < len(env.Importance) {
			predicted += env.Importance[j]
		}
	}
	latency := s.cfg.Now().Sub(start)
	s.allocates.Add(1)
	s.degraded.Add(1)
	s.recordLatency(latency)
	resp := &ws.resp
	resp.Allocation = append(resp.Allocation[:0], sol.Assignment...)
	resp.Cluster = cluster
	resp.Cache = CacheBypass
	resp.Allocator = "greedy-fallback"
	resp.Mode = ModeDegraded
	resp.DegradedReason = reason
	resp.PredictedImportance = predicted
	resp.LatencyNanos = int64(latency)
	return nil
}
