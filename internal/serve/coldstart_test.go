package serve

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// allocate issues one CRL allocation for the given cluster signature.
func allocate(t *testing.T, s *Server, sig float64) *AllocateResponse {
	t.Helper()
	resp, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{sig}})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestWarmStartUsesNearestDonor pins the neighbour-selection rule: each cold
// training after the first seeds from the resident policy whose cluster
// signature is nearest, and the provenance records the donor.
func TestWarmStartUsesNearestDonor(t *testing.T) {
	s := serverWithStore(t, fastConfig(), multiClusterStore(t, 3))

	allocate(t, s, 0) // scratch: nothing resident to transfer from
	if got := s.Stats().Cache.WarmStarts; got != 0 {
		t.Fatalf("first training warm-started (%d)", got)
	}
	if ws := s.cache.entry(0).crl.WarmStarted(); ws != nil {
		t.Fatalf("scratch policy has provenance %+v", ws)
	}

	allocate(t, s, 1) // only cluster 0 is resident
	if ws := s.cache.entry(1).crl.WarmStarted(); ws == nil || ws.Source != 0 {
		t.Fatalf("cluster 1 provenance = %+v, want donor 0", ws)
	}

	allocate(t, s, 2) // clusters 0 (distance 2) and 1 (distance 1) resident
	ws := s.cache.entry(2).crl.WarmStarted()
	if ws == nil || ws.Source != 1 {
		t.Fatalf("cluster 2 provenance = %+v, want the nearer donor 1", ws)
	}
	if ws.Distance != 1 {
		t.Fatalf("cluster 2 donor distance = %v, want 1", ws.Distance)
	}
	if got := s.Stats().Cache.WarmStarts; got != 2 {
		t.Fatalf("warm starts = %d, want 2", got)
	}
}

// TestDisableWarmStart: the kill switch trains every cluster from scratch.
func TestDisableWarmStart(t *testing.T) {
	cfg := fastConfig()
	cfg.DisableWarmStart = true
	s := serverWithStore(t, cfg, multiClusterStore(t, 3))
	for c := 0; c < 3; c++ {
		allocate(t, s, float64(c))
	}
	if got := s.Stats().Cache.WarmStarts; got != 0 {
		t.Fatalf("warm starts = %d with warm starting disabled", got)
	}
	for c := 0; c < 3; c++ {
		if ws := s.cache.entry(c).crl.WarmStarted(); ws != nil {
			t.Fatalf("cluster %d has provenance %+v", c, ws)
		}
	}
}

// TestSpeculationPretrainsNeighbour drives the full background pipeline: a
// demand training triggers the pre-trainer, which installs the nearest
// untrained neighbour; the next request for it is a speculative hit and
// promotes the entry.
func TestSpeculationPretrainsNeighbour(t *testing.T) {
	cfg := fastConfig()
	cfg.SpeculateNeighbors = 1
	s := serverWithStore(t, cfg, multiClusterStore(t, 3))

	allocate(t, s, 0)
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().Cache.SpeculativeInstalls == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pre-trainer never installed a policy: %+v", s.Stats().Cache)
		}
		time.Sleep(5 * time.Millisecond)
	}
	e := s.cache.entry(1) // cluster 0's nearest untrained neighbour
	if e == nil || e.prov != provSpeculative {
		t.Fatalf("cluster 1 should hold a speculative policy (entry %+v)", e)
	}
	if e.promotedAt.Load() != 0 {
		t.Fatal("speculative policy promoted before any request")
	}

	resp := allocate(t, s, 1)
	if resp.Cache != CacheSpeculative {
		t.Fatalf("cache outcome = %q, want %q", resp.Cache, CacheSpeculative)
	}
	if e.promotedAt.Load() == 0 {
		t.Fatal("first real hit should promote the speculative entry")
	}
	st := s.Stats().Cache
	if st.SpeculativeHits == 0 || st.SpeculativeTrainings == 0 {
		t.Fatalf("speculation counters not recorded: %+v", st)
	}
}

// TestSpeculativeInstallNeverDisplaces: a speculative result must never
// replace a resident policy nor evict one from a full shard.
func TestSpeculativeInstallNeverDisplaces(t *testing.T) {
	cfg := fastConfig()
	cfg.CacheCapacity = 1 // one shard, one slot
	s := serverWithStore(t, cfg, multiClusterStore(t, 3))

	allocate(t, s, 0)
	demand := s.cache.entry(0)
	if demand == nil || demand.prov != provDemand {
		t.Fatalf("cluster 0 should be demand-resident, got %+v", demand)
	}

	if s.cache.installSpeculative(0, demand.crl, demand.imp) {
		t.Fatal("speculative install displaced a resident entry")
	}
	if s.cache.installSpeculative(1, demand.crl, demand.imp) {
		t.Fatal("speculative install evicted from a full shard")
	}
	if got := s.cache.entry(0); got != demand {
		t.Fatal("resident demand entry was replaced")
	}
	if s.cache.entry(1) != nil {
		t.Fatal("refused speculation still installed")
	}
	if n := s.Stats().Cache.SpeculativeInstalls; n != 0 {
		t.Fatalf("refused installs counted: %d", n)
	}
}

// TestSpeculationSubordination: the pre-trainer must refuse to run while
// demand work is pending or the training gate has no free slot.
func TestSpeculationSubordination(t *testing.T) {
	cfg := fastConfig()
	cfg.TrainConcurrency = 1
	s := serverWithStore(t, cfg, multiClusterStore(t, 3))

	s.cache.pending.Add(1)
	s.speculateCluster(1)
	if n := s.cache.specTrainings.Load(); n != 0 {
		t.Fatalf("speculated with demand pending (%d trainings)", n)
	}
	s.cache.pending.Add(-1)

	s.cache.gate <- struct{}{} // occupy the only training slot
	s.speculateCluster(1)
	if n := s.cache.specTrainings.Load(); n != 0 {
		t.Fatalf("speculated with the gate full (%d trainings)", n)
	}
	<-s.cache.gate

	s.speculateCluster(1)
	if n := s.cache.specTrainings.Load(); n != 1 {
		t.Fatalf("idle-gate speculation did not run (%d trainings)", n)
	}
	e := s.cache.entry(1)
	if e == nil || e.prov != provSpeculative {
		t.Fatalf("speculated policy not installed: %+v", e)
	}
}

// TestSpeculativeTTLDiscountAndPromotion: an unpromoted speculative policy
// lives on half the TTL; the first real hit promotes it to the full TTL
// measured from the promotion instant.
func TestSpeculativeTTLDiscountAndPromotion(t *testing.T) {
	clock := newFakeClock()
	cfg := fastConfig()
	cfg.Now = clock.Now
	cfg.PolicyTTL = 10 * time.Minute
	s := serverWithStore(t, cfg, multiClusterStore(t, 4))

	allocate(t, s, 0)
	donor := s.cache.entry(0)

	// Unpromoted: expired after 6 min (half of the 10-minute TTL is 5).
	if !s.cache.installSpeculative(1, donor.crl, donor.imp) {
		t.Fatal("install refused")
	}
	clock.Advance(6 * time.Minute)
	if resp := allocate(t, s, 1); resp.Cache != CacheExpired {
		t.Fatalf("aged unpromoted speculation: outcome %q, want %q", resp.Cache, CacheExpired)
	}

	// Promoted: the same age is fine, and the clock restarts at promotion.
	if !s.cache.installSpeculative(2, donor.crl, donor.imp) {
		t.Fatal("install refused")
	}
	if resp := allocate(t, s, 2); resp.Cache != CacheSpeculative {
		t.Fatalf("promotion hit: outcome %q", resp.Cache)
	}
	clock.Advance(6 * time.Minute)
	if resp := allocate(t, s, 2); resp.Cache != CacheSpeculative {
		t.Fatalf("promoted entry at age 6m: outcome %q, want still resident", resp.Cache)
	}
	clock.Advance(5 * time.Minute) // 11 min past promotion > full TTL
	if resp := allocate(t, s, 2); resp.Cache != CacheExpired {
		t.Fatalf("promoted entry past full TTL: outcome %q, want %q", resp.Cache, CacheExpired)
	}
}

// TestSpeculativeDriftDiscount: unpromoted speculative policies tolerate only
// half the drift threshold; demand and promoted ones get the full budget.
func TestSpeculativeDriftDiscount(t *testing.T) {
	cfg := fastConfig()
	cfg.DriftThreshold = 0.4
	s := serverWithStore(t, cfg, multiClusterStore(t, 4))

	allocate(t, s, 0)
	donor := s.cache.entry(0)
	drift30 := func(imp []float64) []float64 {
		obs := make([]float64, len(imp))
		for i, v := range imp {
			obs[i] = v * 1.3 // relative L2 distance exactly 0.3
		}
		return obs
	}

	// Demand entry: 0.3 < 0.4 → tolerated.
	if s.cache.noteImportance(0, drift30(donor.imp)) {
		t.Fatal("demand entry invalidated below the full threshold")
	}

	// Unpromoted speculative: 0.3 > 0.4/2 → invalidated.
	if !s.cache.installSpeculative(1, donor.crl, donor.imp) {
		t.Fatal("install refused")
	}
	if !s.cache.noteImportance(1, drift30(donor.imp)) {
		t.Fatal("unpromoted speculation survived drift beyond its discounted threshold")
	}

	// Promoted speculative: full threshold again.
	if !s.cache.installSpeculative(2, donor.crl, donor.imp) {
		t.Fatal("install refused")
	}
	if resp := allocate(t, s, 2); resp.Cache != CacheSpeculative {
		t.Fatalf("promotion hit: outcome %q", resp.Cache)
	}
	if s.cache.noteImportance(2, drift30(donor.imp)) {
		t.Fatal("promoted speculation invalidated below the full threshold")
	}
}

// TestCheckpointSpeculativeProvenance: unpromoted speculative entries
// round-trip with their provenance (keeping the discounted TTL in the next
// process); promoted ones persist as demand-confirmed policies whose TTL
// clock starts at promotion; demand entries stay provenance-free, which is
// also the pre-PR7 wire shape.
func TestCheckpointSpeculativeProvenance(t *testing.T) {
	clock := newFakeClock()
	cfg := fastConfig()
	cfg.Now = clock.Now
	store := multiClusterStore(t, 4)
	a := serverWithStore(t, cfg, store)

	allocate(t, a, 0)
	donor := a.cache.entry(0)
	if !a.cache.installSpeculative(1, donor.crl, donor.imp) {
		t.Fatal("install refused")
	}
	if !a.cache.installSpeculative(2, donor.crl, donor.imp) {
		t.Fatal("install refused")
	}
	clock.Advance(time.Minute)
	promoteTime := clock.Now()
	if resp := allocate(t, a, 2); resp.Cache != CacheSpeculative {
		t.Fatalf("promotion hit: outcome %q", resp.Cache)
	}
	clock.Advance(time.Minute)

	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	b := serverWithStore(t, cfg, store)
	n, err := b.LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("restored %d entries, want 3", n)
	}

	if e := b.cache.entry(0); e.prov != provCheckpoint {
		t.Fatalf("demand entry restored with prov %d, want checkpoint", e.prov)
	}
	if e := b.cache.entry(1); e.prov != provSpeculative {
		t.Fatalf("unpromoted speculation restored with prov %d, want speculative", e.prov)
	}
	e := b.cache.entry(2)
	if e.prov != provCheckpoint {
		t.Fatalf("promoted speculation restored with prov %d, want demand-confirmed", e.prov)
	}
	if !e.trainedAt.Equal(promoteTime) {
		t.Fatalf("promoted entry TrainedAt = %v, want promotion time %v", e.trainedAt, promoteTime)
	}
}
