package serve

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Cache outcomes reported per allocation (AllocateResponse.Cache).
const (
	// CacheHit served from a resident, fresh policy.
	CacheHit = "hit"
	// CacheMiss trained the cluster's policy on this request (the leader).
	CacheMiss = "miss"
	// CacheCoalesced joined a training already in flight (singleflight).
	CacheCoalesced = "coalesced"
	// CacheExpired retrained a policy older than the TTL.
	CacheExpired = "expired"
	// CacheDrift retrained a policy invalidated by importance drift.
	CacheDrift = "drift"
	// CacheWarm served from a checkpoint-restored policy that has not been
	// retrained in this process.
	CacheWarm = "warm"
)

// trainFunc trains the policy for one cluster, returning the model and the
// train-time importance snapshot used for drift detection.
type trainFunc func(cluster int) (*core.CRL, []float64, error)

// policyEntry is one cached cluster policy. Its lifecycle is
// singleflight-shaped: the creating goroutine (the leader) trains and then
// closes ready; joiners block on ready (or their context) and share the
// result. Entries are immutable once resolved except for the stale marker
// and the replica pool.
type policyEntry struct {
	key  int
	elem *list.Element

	ready chan struct{} // closed once crl/err are set
	crl   *core.CRL
	imp   []float64 // train-time importance snapshot (drift baseline)
	err   error
	// trainedAt and warm describe provenance: warm entries were restored
	// from a checkpoint rather than trained in this process.
	trainedAt time.Time
	warm      bool
	resolved  bool // guarded by the cache mutex
	trainDur  time.Duration

	stale atomic.Bool // set by drift detection; next get retrains

	// replicas pools inference clones: every rollout runs on an exclusive
	// clone because DQN forwards mutate shared activation scratch.
	replicas chan *core.CRL
}

// acquire returns an inference replica, cloning when the pool is dry.
func (e *policyEntry) acquire() (*core.CRL, error) {
	select {
	case r := <-e.replicas:
		return r, nil
	default:
		return e.crl.Clone()
	}
}

// release returns a replica to the pool, dropping it when full.
func (e *policyEntry) release(r *core.CRL) {
	select {
	case e.replicas <- r:
	default:
	}
}

// policyCache is the per-cluster policy cache: key = nearest stored
// environment (the cluster of Alg. 1 line 2), value = trained policy
// snapshot. Resident entries are bounded by an LRU; entries retrain on TTL
// expiry or importance drift; cold clusters train exactly once under
// concurrent identical requests.
type policyCache struct {
	capacity int
	ttl      time.Duration
	drift    float64
	replicas int
	now      func() time.Time
	train    trainFunc

	mu      sync.Mutex
	entries map[int]*policyEntry
	lru     *list.List // front = most recently used; values are *policyEntry

	// counters (atomics so Stats never contends with the serving path)
	hits, misses, coalesced  atomic.Int64
	expired, driftRetrains   atomic.Int64
	evictions, trainings     atomic.Int64
	trainNanos, warmRestores atomic.Int64
}

func newPolicyCache(cfg Config, train trainFunc) *policyCache {
	return &policyCache{
		capacity: cfg.CacheCapacity,
		ttl:      cfg.PolicyTTL,
		drift:    cfg.DriftThreshold,
		replicas: cfg.Replicas,
		now:      cfg.Now,
		train:    train,
		entries:  make(map[int]*policyEntry),
		lru:      list.New(),
	}
}

func (c *policyCache) newEntryLocked(key int) *policyEntry {
	e := &policyEntry{
		key:      key,
		ready:    make(chan struct{}),
		replicas: make(chan *core.CRL, c.replicas),
	}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.evictLocked()
	return e
}

// evictLocked drops least-recently-used resolved entries beyond capacity.
// In-flight entries are skipped: their leader still needs to publish, and
// being freshly created they sit near the front anyway.
func (c *policyCache) evictLocked() {
	for len(c.entries) > c.capacity {
		victim := (*policyEntry)(nil)
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*policyEntry); e.resolved {
				victim = e
				break
			}
		}
		if victim == nil {
			return // everything over capacity is in flight
		}
		c.removeLocked(victim)
		c.evictions.Add(1)
	}
}

func (c *policyCache) removeLocked(e *policyEntry) {
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
}

// get returns the resolved entry for a cluster, training it when cold,
// expired or drift-invalidated. The outcome string is one of the Cache*
// constants. Joiners honor ctx while waiting; the leader ignores ctx so a
// canceled joiner never wastes the training the rest of the queue shares.
func (c *policyCache) get(ctx context.Context, key int) (*policyEntry, string, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if !e.resolved {
			// Training in flight: join it.
			c.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, CacheCoalesced, ctx.Err()
			}
			if e.err != nil {
				return nil, CacheCoalesced, e.err
			}
			return e, CacheCoalesced, nil
		}
		outcome := CacheHit
		switch {
		case e.err != nil:
			// A failed training left a tombstone; retrain below.
			c.removeLocked(e)
		case c.ttl > 0 && c.now().Sub(e.trainedAt) > c.ttl:
			outcome = CacheExpired
			c.expired.Add(1)
			c.removeLocked(e)
		case e.stale.Load():
			outcome = CacheDrift
			c.driftRetrains.Add(1)
			c.removeLocked(e)
		default:
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			c.hits.Add(1)
			if e.warm {
				outcome = CacheWarm
			}
			return e, outcome, nil
		}
		e = c.newEntryLocked(key)
		c.mu.Unlock()
		return c.lead(e, outcome)
	}
	e := c.newEntryLocked(key)
	c.mu.Unlock()
	c.misses.Add(1)
	return c.lead(e, CacheMiss)
}

// lead runs the training for a fresh entry in the calling goroutine and
// publishes the result to every joiner.
func (c *policyCache) lead(e *policyEntry, outcome string) (*policyEntry, string, error) {
	start := c.now()
	crl, imp, err := c.train(e.key)
	e.crl, e.imp, e.err = crl, imp, err
	e.trainedAt = c.now()
	e.trainDur = e.trainedAt.Sub(start)
	c.trainings.Add(1)
	c.trainNanos.Add(int64(e.trainDur))
	c.mu.Lock()
	e.resolved = true
	if err != nil {
		// Leave no tombstone: the next request retries the training.
		c.removeLocked(e)
	}
	c.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, outcome, fmt.Errorf("serve: train cluster %d: %w", e.key, err)
	}
	return e, outcome, nil
}

// install publishes a checkpoint-restored policy without training. It
// overwrites any resident entry for the cluster.
func (c *policyCache) install(key int, crl *core.CRL, imp []float64, trainedAt time.Time) {
	e := &policyEntry{
		key:       key,
		ready:     make(chan struct{}),
		replicas:  make(chan *core.CRL, c.replicas),
		crl:       crl,
		imp:       imp,
		trainedAt: trainedAt,
		warm:      true,
		resolved:  true,
	}
	close(e.ready)
	c.mu.Lock()
	if old, ok := c.entries[key]; ok && old.resolved {
		c.removeLocked(old)
	}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()
	c.warmRestores.Add(1)
}

// noteImportance feeds an observed importance vector for a cluster into
// drift detection, returning true when it invalidated the resident policy.
// The distance is relative L2: ‖obs − trained‖ / (‖trained‖ + ε).
func (c *policyCache) noteImportance(key int, observed []float64) bool {
	if c.drift < 0 {
		return false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	resolved := ok && e.resolved
	c.mu.Unlock()
	if !resolved || e.err != nil || e.stale.Load() {
		return false
	}
	if len(e.imp) == 0 || len(observed) != len(e.imp) {
		return false
	}
	var dd, base float64
	for i, v := range e.imp {
		d := observed[i] - v
		dd += d * d
		base += v * v
	}
	if math.Sqrt(dd)/(math.Sqrt(base)+1e-9) > c.drift {
		return !e.stale.Swap(true)
	}
	return false
}

// snapshot returns the resolved, healthy entries for checkpointing, most
// recently used first.
func (c *policyCache) snapshot() []*policyEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*policyEntry, 0, len(c.entries))
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*policyEntry); e.resolved && e.err == nil {
			out = append(out, e)
		}
	}
	return out
}

// CacheStats is the cache's counter snapshot.
type CacheStats struct {
	Size               int   `json:"size"`
	Capacity           int   `json:"capacity"`
	Hits               int64 `json:"hits"`
	Misses             int64 `json:"misses"`
	Coalesced          int64 `json:"coalesced"`
	Expired            int64 `json:"expired"`
	DriftInvalidations int64 `json:"drift_invalidations"`
	Evictions          int64 `json:"evictions"`
	Trainings          int64 `json:"trainings"`
	TrainNanosTotal    int64 `json:"train_ns_total"`
	WarmRestores       int64 `json:"warm_restores"`
}

func (c *policyCache) stats() CacheStats {
	c.mu.Lock()
	size := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Size:               size,
		Capacity:           c.capacity,
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Coalesced:          c.coalesced.Load(),
		Expired:            c.expired.Load(),
		DriftInvalidations: c.driftRetrains.Load(),
		Evictions:          c.evictions.Load(),
		Trainings:          c.trainings.Load(),
		TrainNanosTotal:    c.trainNanos.Load(),
		WarmRestores:       c.warmRestores.Load(),
	}
}
