package serve

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mathx"
)

// Cache outcomes reported per allocation (AllocateResponse.Cache).
const (
	// CacheHit served from a resident, fresh policy.
	CacheHit = "hit"
	// CacheMiss trained the cluster's policy on this request (the leader).
	CacheMiss = "miss"
	// CacheCoalesced joined a training already in flight (singleflight).
	CacheCoalesced = "coalesced"
	// CacheExpired retrained a policy older than the TTL.
	CacheExpired = "expired"
	// CacheDrift retrained a policy invalidated by importance drift.
	CacheDrift = "drift"
	// CacheWarm served from a checkpoint-restored policy that has not been
	// retrained in this process.
	CacheWarm = "warm"
	// CacheSpeculative served from a policy the background pre-trainer built
	// before any request asked for it. The first such hit promotes the entry
	// (full TTL from promotion time); the outcome keeps reporting the
	// speculative provenance so operators can see transfer efficacy.
	CacheSpeculative = "speculative"
	// CacheReplica served from a policy a peer shard replicated here — the
	// receiving side of the replica-group push. Replica entries are exempt
	// from demand TTL churn (the primary retrains and re-pushes; the replica
	// only holds the copy for failover) but drift invalidation stays live.
	CacheReplica = "replica"
	// CacheBypass marks a degraded answer that never consulted a policy:
	// the fallback allocator computed it directly from the store.
	CacheBypass = "bypass"
)

// Training provenance of a resolved cache entry. TTL and drift treat
// provenances differently: an unpromoted speculative policy lives on half
// the TTL and half the drift tolerance until real traffic confirms it.
const (
	provDemand      = iota // trained because a request needed it
	provCheckpoint         // restored from a checkpoint, not trained here
	provSpeculative        // pre-trained on idle gate capacity
	provReplica            // pushed by the cluster's primary owner
)

// specFraction discounts the TTL and drift tolerance of speculative policies
// that no request has confirmed yet.
const specFraction = 0.5

// Circuit-breaker states (CacheStats.Breakers keys, test assertions).
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// trainFunc trains the policy for one cluster, returning the model and the
// train-time importance snapshot used for drift detection.
type trainFunc func(cluster int) (*core.CRL, []float64, error)

// policyEntry is one cached cluster policy. Its lifecycle is
// singleflight-shaped: a background leader goroutine trains and then closes
// ready; every requester (the one that created the entry included) blocks on
// ready, its context, or the train budget, and shares the result. Entries
// are immutable once resolved except for the stale marker and the replica
// pool.
type policyEntry struct {
	key  int
	elem *list.Element

	ready chan struct{} // closed once crl/err are set
	crl   *core.CRL
	imp   []float64 // train-time importance snapshot (drift baseline)
	err   error
	// trainedAt and prov describe provenance: provCheckpoint entries were
	// restored rather than trained in this process, provSpeculative ones
	// were pre-trained before any request asked.
	trainedAt time.Time
	prov      int
	resolved  bool // guarded by the shard mutex
	trainDur  time.Duration

	// promotedAt is the UnixNano time real traffic first hit a speculative
	// entry (0 = unpromoted). Promotion grants the full TTL measured from
	// that moment; atomic so checkpointing never races the serving path.
	promotedAt atomic.Int64

	stale atomic.Bool // set by drift detection; next get retrains

	// replicas pools inference clones: every rollout runs on an exclusive
	// clone because DQN forwards mutate shared activation scratch.
	replicas chan *core.CRL

	// co coalesces concurrent warm rollouts for this policy onto batched
	// forward passes (coalesce.go). Valid only once the entry resolves
	// with a healthy crl.
	co *coalescer
}

// acquire returns an inference replica, cloning when the pool is dry.
func (e *policyEntry) acquire() (*core.CRL, error) {
	select {
	case r := <-e.replicas:
		return r, nil
	default:
		return e.crl.Clone()
	}
}

// release returns a replica to the pool, dropping it when full. Safe to call
// on an entry the cache has since evicted: the pool channel outlives the
// cache slot and is collected with the entry.
func (e *policyEntry) release(r *core.CRL) {
	select {
	case e.replicas <- r:
	default:
	}
}

// breaker is one cluster's training circuit breaker. All fields are guarded
// by the owning shard's mutex.
type breaker struct {
	state     string
	failures  int           // consecutive training failures
	window    time.Duration // next open window (exponential, jittered)
	openUntil time.Time
	probing   bool // a half-open trial training is in flight
}

// cacheShard is one lock domain of the policy cache: an independent LRU map
// plus the breakers of the clusters that hash here. Cluster keys are store
// indices, so key & mask spreads contiguous clusters round-robin across
// shards and a hit never contends with another shard's cold train.
type cacheShard struct {
	c        *policyCache
	capacity int

	mu       sync.Mutex
	entries  map[int]*policyEntry
	lru      *list.List // front = most recently used; values are *policyEntry
	breakers map[int]*breaker
	rng      *rand.Rand // breaker jitter (guarded by mu)
}

// policyCache is the per-cluster policy cache: key = nearest stored
// environment (the cluster of Alg. 1 line 2), value = trained policy
// snapshot. The key space is sharded over a power-of-two array of
// independently locked LRU maps; entries retrain on TTL expiry or importance
// drift; cold clusters train exactly once under concurrent identical
// requests. Trainings run in background goroutines behind a global
// bounded-concurrency gate, guarded per cluster by a circuit breaker so
// persistent failures back off instead of burning the gate.
type policyCache struct {
	capacity    int
	ttl         time.Duration
	drift       float64
	replicas    int
	now         func() time.Time
	train       trainFunc
	trainBudget time.Duration
	threshold   int // breaker failure threshold; <=0 disables
	baseBackoff time.Duration
	maxBackoff  time.Duration
	logf        func(format string, args ...any)

	maxBatch    int
	batchWindow time.Duration
	// batchAfter schedules a coalescer window flush; tests inject a fake
	// to drive window expiry without sleeping.
	batchAfter func(d time.Duration, f func())

	gate    chan struct{} // training-concurrency semaphore
	pending atomic.Int64  // demand trainings running or queued on the gate
	maxWait int64         // pending ceiling (gate capacity + queue)

	// onTrained, when non-nil, runs (in its own goroutine) after every
	// successful demand training — the speculative pre-trainer's trigger.
	onTrained func(cluster int)

	// onReplicate, when non-nil, runs after every successful demand training
	// and after the first promotion of a speculative entry — the replication
	// sender's trigger. It must never block (the replicator's enqueue is a
	// non-blocking channel send); it is called inline from the serving path.
	onReplicate func(cluster int)

	shards []*cacheShard
	mask   int

	// counters (atomics so Stats never contends with the serving path)
	hits, misses, coalesced  atomic.Int64
	expired, driftRetrains   atomic.Int64
	evictions, trainings     atomic.Int64
	trainNanos, warmRestores atomic.Int64
	trainFailures            atomic.Int64
	trainPanics              atomic.Int64
	breakerOpens             atomic.Int64
	breakerProbes            atomic.Int64
	breakerRejects           atomic.Int64
	saturations              atomic.Int64
	budgetMisses             atomic.Int64
	batchRuns                atomic.Int64 // coalesced batch flushes (size ≥ 1)
	batchedReqs              atomic.Int64 // requests served via coalesced batches
	soloReqs                 atomic.Int64 // requests served on the batch-1 fast path
	batchPanics              atomic.Int64 // batch rollouts that panicked
	warmStarts               atomic.Int64 // trainings seeded from a neighbour policy
	earlyStops               atomic.Int64 // trainings that stopped on a return plateau
	specTrainings            atomic.Int64 // speculative pre-trainings completed
	specInstalls             atomic.Int64 // speculative policies installed
	specHits                 atomic.Int64 // requests served by a speculative policy
	replicaInstalls          atomic.Int64 // peer-pushed policies installed
	replicaStale             atomic.Int64 // peer pushes refused as stale (no-op)
	replicaHits              atomic.Int64 // requests served by a replica-held policy
}

// shardCount returns the largest power of two ≤ min(want, capacity), so a
// capacity-1 cache degenerates to a single shard with exact global LRU
// semantics.
func shardCount(want, capacity int) int {
	n := 1
	for n*2 <= want && n*2 <= capacity {
		n *= 2
	}
	return n
}

func newPolicyCache(cfg Config, train trainFunc) *policyCache {
	c := &policyCache{
		capacity:    cfg.CacheCapacity,
		ttl:         cfg.PolicyTTL,
		drift:       cfg.DriftThreshold,
		replicas:    cfg.Replicas,
		now:         cfg.Now,
		train:       train,
		trainBudget: cfg.TrainBudget,
		threshold:   cfg.BreakerThreshold,
		baseBackoff: cfg.BreakerBackoff,
		maxBackoff:  cfg.BreakerMaxBackoff,
		logf:        cfg.Logf,
		maxBatch:    cfg.MaxBatch,
		batchWindow: cfg.BatchWindow,
		batchAfter:  func(d time.Duration, f func()) { time.AfterFunc(d, f) },
		gate:        make(chan struct{}, cfg.TrainConcurrency),
		maxWait:     int64(cfg.TrainConcurrency + cfg.TrainQueue),
	}
	n := shardCount(cfg.CacheShards, cfg.CacheCapacity)
	c.mask = n - 1
	c.shards = make([]*cacheShard, n)
	base, rem := cfg.CacheCapacity/n, cfg.CacheCapacity%n
	for i := range c.shards {
		cap := base
		if i < rem {
			cap++
		}
		c.shards[i] = &cacheShard{
			c:        c,
			capacity: cap,
			entries:  make(map[int]*policyEntry),
			lru:      list.New(),
			breakers: make(map[int]*breaker),
			rng:      mathx.NewRand(cfg.Seed + 31 + int64(i)*101),
		}
	}
	return c
}

// shard maps a cluster key onto its lock domain.
func (c *policyCache) shard(key int) *cacheShard { return c.shards[key&c.mask] }

func (sh *cacheShard) newEntryLocked(key int) *policyEntry {
	e := &policyEntry{
		key:      key,
		ready:    make(chan struct{}),
		replicas: make(chan *core.CRL, sh.c.replicas),
	}
	e.co = newCoalescer(sh.c, e)
	e.elem = sh.lru.PushFront(e)
	sh.entries[key] = e
	sh.evictLocked()
	return e
}

// evictLocked drops least-recently-used resolved entries beyond the shard's
// capacity. In-flight entries are skipped: their leader still needs to
// publish, and being freshly created they sit near the front anyway.
func (sh *cacheShard) evictLocked() {
	for len(sh.entries) > sh.capacity {
		victim := (*policyEntry)(nil)
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*policyEntry); e.resolved {
				victim = e
				break
			}
		}
		if victim == nil {
			return // everything over capacity is in flight
		}
		sh.removeLocked(victim)
		sh.c.evictions.Add(1)
	}
}

func (sh *cacheShard) removeLocked(e *policyEntry) {
	if sh.entries[e.key] == e {
		delete(sh.entries, e.key)
	}
	if e.elem != nil {
		sh.lru.Remove(e.elem)
		e.elem = nil
	}
}

// get returns the resolved entry for a cluster, training it when cold,
// expired or drift-invalidated. The outcome string is one of the Cache*
// constants. Callers wait on the training (leader and joiners alike) bounded
// by ctx and the train budget; the training itself runs in a background
// goroutine and always completes, so a canceled or budget-expired waiter
// never wastes the training the rest of the queue shares. Errors are the
// degraded-path triggers: ErrCircuitOpen, ErrTrainSaturated, ErrTrainBudget,
// training failures, or the waiter's ctx error.
func (c *policyCache) get(ctx context.Context, key int) (*policyEntry, string, error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		if !e.resolved {
			// Training in flight: join it.
			sh.mu.Unlock()
			c.coalesced.Add(1)
			return c.wait(ctx, e, CacheCoalesced)
		}
		outcome := CacheHit
		switch {
		case e.err != nil:
			// A failed training left a tombstone; retrain below.
			sh.removeLocked(e)
		case c.expiredLocked(e):
			outcome = CacheExpired
			c.expired.Add(1)
			sh.removeLocked(e)
		case e.stale.Load():
			outcome = CacheDrift
			c.driftRetrains.Add(1)
			sh.removeLocked(e)
		default:
			sh.lru.MoveToFront(e.elem)
			promoted := false
			switch e.prov {
			case provCheckpoint:
				outcome = CacheWarm
			case provReplica:
				outcome = CacheReplica
				c.replicaHits.Add(1)
			case provSpeculative:
				outcome = CacheSpeculative
				c.specHits.Add(1)
				// First real-traffic hit promotes the entry: the policy is
				// demand-confirmed, so it earns the full TTL from now.
				if e.promotedAt.Load() == 0 {
					e.promotedAt.Store(c.now().UnixNano())
					promoted = true
				}
			}
			sh.mu.Unlock()
			c.hits.Add(1)
			if promoted && c.onReplicate != nil {
				// A promoted speculative policy is now demand-confirmed state
				// worth protecting; push it to the cluster's replica owner.
				c.onReplicate(key)
			}
			return e, outcome, nil
		}
		return sh.startTrainingLocked(ctx, key, outcome)
	}
	c.misses.Add(1)
	return sh.startTrainingLocked(ctx, key, CacheMiss)
}

// expiredLocked applies the provenance-aware TTL: demand and checkpoint
// entries age from trainedAt over the full TTL; an unpromoted speculative
// entry gets only specFraction of it, and a promoted one ages from its
// promotion time — "refreshed by real traffic" resets the clock.
func (c *policyCache) expiredLocked(e *policyEntry) bool {
	if c.ttl <= 0 {
		return false
	}
	if e.prov == provReplica {
		// Replica-held copies never age out on demand TTL: their primary
		// retrains and re-pushes newer versions, and evicting them here would
		// turn a primary death into a cold failover. Drift invalidation and
		// versioned re-push are their refresh paths.
		return false
	}
	ttl, ref := c.ttl, e.trainedAt
	if e.prov == provSpeculative {
		if p := e.promotedAt.Load(); p != 0 {
			ref = time.Unix(0, p)
		} else {
			ttl = time.Duration(float64(ttl) * specFraction)
		}
	}
	return c.now().Sub(ref) > ttl
}

// startTrainingLocked launches the background training for a cold/expired/
// drifted cluster — unless the cluster's breaker or the global gate refuses
// — then waits for the result like a joiner. Called with sh.mu held; unlocks.
func (sh *cacheShard) startTrainingLocked(ctx context.Context, key int, outcome string) (*policyEntry, string, error) {
	c := sh.c
	if err := sh.admitLocked(key); err != nil {
		sh.mu.Unlock()
		return nil, outcome, err
	}
	e := sh.newEntryLocked(key)
	sh.mu.Unlock()
	c.pending.Add(1)
	go func() {
		defer c.pending.Add(-1)
		c.gate <- struct{}{}
		defer func() { <-c.gate }()
		sh.runTraining(e)
	}()
	return c.wait(ctx, e, outcome)
}

// admitLocked decides whether a new training for the cluster may start:
// the breaker must be closed (or due a half-open probe) and the training
// gate must have room.
func (sh *cacheShard) admitLocked(key int) error {
	c := sh.c
	b := sh.breakers[key]
	if b != nil && c.threshold > 0 {
		switch b.state {
		case BreakerOpen:
			if c.now().Before(b.openUntil) {
				c.breakerRejects.Add(1)
				return ErrCircuitOpen
			}
		case BreakerHalfOpen:
			if b.probing {
				c.breakerRejects.Add(1)
				return ErrCircuitOpen
			}
		}
	}
	// Gate saturation is checked before committing the breaker to a probe,
	// so a rejected probe can retry on the next request.
	if c.pending.Load() >= c.maxWait {
		c.saturations.Add(1)
		return ErrTrainSaturated
	}
	if b != nil && c.threshold > 0 && b.state != BreakerClosed {
		// Open-with-elapsed-backoff or idle half-open: this training is the
		// single half-open trial.
		b.state = BreakerHalfOpen
		b.probing = true
		c.breakerProbes.Add(1)
	}
	return nil
}

// runTraining executes one training (panic-safe) and publishes the result to
// every waiter, updating the cluster's breaker.
func (sh *cacheShard) runTraining(e *policyEntry) {
	c := sh.c
	start := c.now()
	crl, imp, err := c.safeTrain(e.key)
	e.crl, e.imp, e.err = crl, imp, err
	e.trainedAt = c.now()
	e.trainDur = e.trainedAt.Sub(start)
	c.trainings.Add(1)
	c.trainNanos.Add(int64(e.trainDur))
	sh.mu.Lock()
	e.resolved = true
	if err != nil {
		// Leave no tombstone: the next admitted request retries.
		sh.removeLocked(e)
		sh.recordFailureLocked(e.key)
	} else {
		sh.recordSuccessLocked(e.key)
	}
	sh.mu.Unlock()
	close(e.ready)
	if err == nil {
		if c.onReplicate != nil {
			c.onReplicate(e.key) // non-blocking enqueue by contract
		}
		if c.onTrained != nil {
			// The hot cluster just trained; let the pre-trainer predict and
			// warm its neighbours off the request path.
			go c.onTrained(e.key)
		}
	}
}

// safeTrain invokes the train function, converting a panic into an error so
// a buggy or chaos-injected training never kills the process.
func (c *policyCache) safeTrain(cluster int) (crl *core.CRL, imp []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			c.trainPanics.Add(1)
			c.logf("serve: training cluster %d panicked: %v\n%s", cluster, r, debug.Stack())
			crl, imp = nil, nil
			err = fmt.Errorf("serve: train cluster %d panic: %v", cluster, r)
		}
	}()
	return c.train(cluster)
}

// recordSuccessLocked closes the cluster's breaker after a successful
// training.
func (sh *cacheShard) recordSuccessLocked(key int) {
	b := sh.breakers[key]
	if b == nil {
		return
	}
	if b.state != BreakerClosed {
		sh.c.logf("serve: cluster %d breaker closed after successful training", key)
	}
	delete(sh.breakers, key)
}

// recordFailureLocked counts a training failure and opens (or reopens) the
// breaker when the consecutive-failure threshold is reached. The open window
// grows exponentially with up to 20% jitter, capped at maxBackoff.
func (sh *cacheShard) recordFailureLocked(key int) {
	c := sh.c
	c.trainFailures.Add(1)
	if c.threshold <= 0 {
		return
	}
	b := sh.breakers[key]
	if b == nil {
		b = &breaker{state: BreakerClosed, window: c.baseBackoff}
		sh.breakers[key] = b
	}
	b.failures++
	wasProbe := b.probing
	b.probing = false
	if !wasProbe && b.failures < c.threshold {
		return
	}
	// Threshold crossed, or a half-open probe failed: (re)open.
	jittered := time.Duration(float64(b.window) * (1 + 0.2*sh.rng.Float64()))
	b.state = BreakerOpen
	b.openUntil = c.now().Add(jittered)
	if b.window *= 2; b.window > c.maxBackoff {
		b.window = c.maxBackoff
	}
	c.breakerOpens.Add(1)
	c.logf("serve: cluster %d breaker open for %v (%d consecutive failures)", key, jittered, b.failures)
}

// breakerState reports a cluster's breaker state (tests and stats).
func (c *policyCache) breakerState(key int) (state string, failures int) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.breakers[key]
	if b == nil {
		return BreakerClosed, 0
	}
	return b.state, b.failures
}

// entryCount sums resident entries across shards (tests and stats).
func (c *policyCache) entryCount() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// entry returns the resident entry for a cluster, or nil (tests).
func (c *policyCache) entry(key int) *policyEntry {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.entries[key]
}

// flushCoalescers flushes every resident entry's pending micro-batch — the
// drain/SIGTERM path, so queued warm requests answer before the listener
// closes instead of waiting out their window.
func (c *policyCache) flushCoalescers() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		entries := make([]*policyEntry, 0, len(sh.entries))
		for _, e := range sh.entries {
			entries = append(entries, e)
		}
		sh.mu.Unlock()
		for _, e := range entries {
			if e.co != nil {
				e.co.flush()
			}
		}
	}
}

// wait blocks until the entry resolves, the caller's context ends, or the
// train budget runs out. The budget timer runs on the wall clock.
func (c *policyCache) wait(ctx context.Context, e *policyEntry, outcome string) (*policyEntry, string, error) {
	var budget <-chan time.Time
	if c.trainBudget > 0 {
		t := time.NewTimer(c.trainBudget)
		defer t.Stop()
		budget = t.C
	}
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, outcome, ctx.Err()
	case <-budget:
		c.budgetMisses.Add(1)
		return nil, outcome, ErrTrainBudget
	}
	if e.err != nil {
		return nil, outcome, fmt.Errorf("serve: train cluster %d: %w", e.key, e.err)
	}
	return e, outcome, nil
}

// install publishes a checkpoint-restored policy without training. It
// overwrites any resident entry for the cluster. prov distinguishes plain
// restored entries (provCheckpoint) from restored speculative ones that were
// never demand-confirmed (provSpeculative keeps the discounted TTL/drift).
func (c *policyCache) install(key int, crl *core.CRL, imp []float64, trainedAt time.Time, prov int) {
	e := &policyEntry{
		key:       key,
		ready:     make(chan struct{}),
		replicas:  make(chan *core.CRL, c.replicas),
		crl:       crl,
		imp:       imp,
		trainedAt: trainedAt,
		prov:      prov,
		resolved:  true,
	}
	e.co = newCoalescer(c, e)
	close(e.ready)
	sh := c.shard(key)
	sh.mu.Lock()
	if old, ok := sh.entries[key]; ok && old.resolved {
		sh.removeLocked(old)
	}
	e.elem = sh.lru.PushFront(e)
	sh.entries[key] = e
	sh.evictLocked()
	sh.mu.Unlock()
	c.warmRestores.Add(1)
}

// installVersioned publishes a peer-supplied policy (replication push or
// anti-entropy pull) if and only if it is strictly newer than what is
// resident — the idempotence rule that makes replication pushes and repeated
// anti-entropy pulls safe to replay in any order. An in-flight local
// training always wins (its result is at least as fresh and the map slot is
// owned by its leader), as does a resident healthy entry with an equal or
// newer trainedAt. Returns whether the policy was installed; refusals count
// as stale pushes.
func (c *policyCache) installVersioned(key int, crl *core.CRL, imp []float64, trainedAt time.Time, prov int) bool {
	e := &policyEntry{
		key:       key,
		ready:     make(chan struct{}),
		replicas:  make(chan *core.CRL, c.replicas),
		crl:       crl,
		imp:       imp,
		trainedAt: trainedAt,
		prov:      prov,
		resolved:  true,
	}
	e.co = newCoalescer(c, e)
	close(e.ready)
	sh := c.shard(key)
	sh.mu.Lock()
	if old, ok := sh.entries[key]; ok {
		if !old.resolved || (old.err == nil && !trainedAt.After(old.trainedAt)) {
			sh.mu.Unlock()
			c.replicaStale.Add(1)
			return false
		}
		sh.removeLocked(old)
	}
	e.elem = sh.lru.PushFront(e)
	sh.entries[key] = e
	sh.evictLocked()
	sh.mu.Unlock()
	if prov == provReplica {
		c.replicaInstalls.Add(1)
	} else {
		c.warmRestores.Add(1)
	}
	return true
}

// installSpeculative publishes a speculatively pre-trained policy. Unlike
// install it NEVER displaces a resident entry — if a demand training raced
// past the pre-trainer (resolved or in flight), the speculative result is
// dropped. The entry joins at the LRU back so it is also the shard's first
// eviction candidate; a full shard simply refuses it. Reports whether the
// policy was installed.
func (c *policyCache) installSpeculative(key int, crl *core.CRL, imp []float64) bool {
	e := &policyEntry{
		key:       key,
		ready:     make(chan struct{}),
		replicas:  make(chan *core.CRL, c.replicas),
		crl:       crl,
		imp:       imp,
		trainedAt: c.now(),
		prov:      provSpeculative,
		resolved:  true,
	}
	e.co = newCoalescer(c, e)
	close(e.ready)
	sh := c.shard(key)
	sh.mu.Lock()
	if _, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		return false
	}
	if len(sh.entries) >= sh.capacity {
		sh.mu.Unlock()
		return false // never evict demand entries for a speculation
	}
	e.elem = sh.lru.PushBack(e)
	sh.entries[key] = e
	sh.mu.Unlock()
	c.specInstalls.Add(1)
	return true
}

// noteImportance feeds an observed importance vector for a cluster into
// drift detection, returning true when it invalidated the resident policy.
// The distance is relative L2: ‖obs − trained‖ / (‖trained‖ + ε). Unpromoted
// speculative policies tolerate only specFraction of the threshold: their
// train-time importance was a neighbour's guess, so weaker evidence of
// mismatch should already retrain them.
func (c *policyCache) noteImportance(key int, observed []float64) bool {
	if c.drift < 0 {
		return false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	resolved := ok && e.resolved
	sh.mu.Unlock()
	if !resolved || e.err != nil || e.stale.Load() {
		return false
	}
	if len(e.imp) == 0 || len(observed) != len(e.imp) {
		return false
	}
	threshold := c.drift
	if e.prov == provSpeculative && e.promotedAt.Load() == 0 {
		threshold *= specFraction
	}
	var dd, base float64
	for i, v := range e.imp {
		d := observed[i] - v
		dd += d * d
		base += v * v
	}
	if math.Sqrt(dd)/(math.Sqrt(base)+1e-9) > threshold {
		return !e.stale.Swap(true)
	}
	return false
}

// snapshot returns the resolved, healthy entries for checkpointing, most
// recently used first within each shard.
func (c *policyCache) snapshot() []*policyEntry {
	var out []*policyEntry
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			if e := el.Value.(*policyEntry); e.resolved && e.err == nil {
				out = append(out, e)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// CacheStats is the cache's counter snapshot.
type CacheStats struct {
	Size               int   `json:"size"`
	Capacity           int   `json:"capacity"`
	Shards             int   `json:"shards"`
	Hits               int64 `json:"hits"`
	Misses             int64 `json:"misses"`
	Coalesced          int64 `json:"coalesced"`
	Expired            int64 `json:"expired"`
	DriftInvalidations int64 `json:"drift_invalidations"`
	Evictions          int64 `json:"evictions"`
	Trainings          int64 `json:"trainings"`
	TrainNanosTotal    int64 `json:"train_ns_total"`
	WarmRestores       int64 `json:"warm_restores"`
	TrainFailures      int64 `json:"train_failures"`
	TrainPanics        int64 `json:"train_panics"`
	TrainPending       int64 `json:"train_pending"`
	BreakersOpen       int   `json:"breakers_open"`
	BreakerOpens       int64 `json:"breaker_opens"`
	BreakerProbes      int64 `json:"breaker_probes"`
	BreakerRejects     int64 `json:"breaker_rejects"`
	Saturations        int64 `json:"train_saturations"`
	BudgetMisses       int64 `json:"train_budget_misses"`
	// BatchRuns counts coalesced batch flushes, BatchedRequests the warm
	// rollouts they served, SoloRequests the uncontended batch-1 fast
	// path, and BatchPanics the batch rollouts that panicked (each
	// degrading only its own requests).
	BatchRuns       int64 `json:"batch_runs"`
	BatchedRequests int64 `json:"batched_requests"`
	SoloRequests    int64 `json:"solo_requests"`
	BatchPanics     int64 `json:"batch_panics"`
	// Cold-start transfer counters: WarmStarts counts trainings seeded from
	// the nearest already-trained neighbour, EarlyStops trainings that
	// converged before their episode budget, SpeculativeTrainings/Installs
	// the background pre-trainer's completed runs and installed policies,
	// and SpeculativeHits requests answered by a pre-trained policy.
	WarmStarts           int64 `json:"warm_starts"`
	EarlyStops           int64 `json:"early_stops"`
	SpeculativeTrainings int64 `json:"speculative_trainings"`
	SpeculativeInstalls  int64 `json:"speculative_installs"`
	SpeculativeHits      int64 `json:"speculative_hits"`
	// Replica-group counters: ReplicaInstalls counts peer-pushed policies
	// installed here, ReplicaStale pushes refused as not-newer (the
	// idempotence no-op), and ReplicaHits requests answered by a replica-held
	// policy — the warm-failover signal.
	ReplicaInstalls int64 `json:"replica_installs"`
	ReplicaStale    int64 `json:"replica_stale"`
	ReplicaHits     int64 `json:"replica_hits"`
}

func (c *policyCache) stats() CacheStats {
	size, open := 0, 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		size += len(sh.entries)
		for _, b := range sh.breakers {
			if b.state == BreakerOpen || b.state == BreakerHalfOpen {
				open++
			}
		}
		sh.mu.Unlock()
	}
	return CacheStats{
		Size:                 size,
		Capacity:             c.capacity,
		Shards:               len(c.shards),
		Hits:                 c.hits.Load(),
		Misses:               c.misses.Load(),
		Coalesced:            c.coalesced.Load(),
		Expired:              c.expired.Load(),
		DriftInvalidations:   c.driftRetrains.Load(),
		Evictions:            c.evictions.Load(),
		Trainings:            c.trainings.Load(),
		TrainNanosTotal:      c.trainNanos.Load(),
		WarmRestores:         c.warmRestores.Load(),
		TrainFailures:        c.trainFailures.Load(),
		TrainPanics:          c.trainPanics.Load(),
		TrainPending:         c.pending.Load(),
		BreakersOpen:         open,
		BreakerOpens:         c.breakerOpens.Load(),
		BreakerProbes:        c.breakerProbes.Load(),
		BreakerRejects:       c.breakerRejects.Load(),
		Saturations:          c.saturations.Load(),
		BudgetMisses:         c.budgetMisses.Load(),
		BatchRuns:            c.batchRuns.Load(),
		BatchedRequests:      c.batchedReqs.Load(),
		SoloRequests:         c.soloReqs.Load(),
		BatchPanics:          c.batchPanics.Load(),
		WarmStarts:           c.warmStarts.Load(),
		EarlyStops:           c.earlyStops.Load(),
		SpeculativeTrainings: c.specTrainings.Load(),
		SpeculativeInstalls:  c.specInstalls.Load(),
		SpeculativeHits:      c.specHits.Load(),
		ReplicaInstalls:      c.replicaInstalls.Load(),
		ReplicaStale:         c.replicaStale.Load(),
		ReplicaHits:          c.replicaHits.Load(),
	}
}
