package serve

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRecoveryMiddleware: a panicking handler yields a 500, a log line with
// the stack, and a counted recovery — and the handler chain keeps serving.
func TestRecoveryMiddleware(t *testing.T) {
	var logs []string
	cfg := fastConfig()
	cfg.Logf = func(format string, args ...any) {
		logs = append(logs, format)
	}
	s := newTestServer(t, cfg)
	h := newHandler(s, HTTPOptions{}, map[string]http.HandlerFunc{
		"/boom": func(http.ResponseWriter, *http.Request) { panic("kaboom") },
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler status = %d, want 500", resp.StatusCode)
	}
	if got := s.Stats().RecoveredPanics; got != 1 {
		t.Fatalf("RecoveredPanics = %d, want 1", got)
	}
	logged := false
	for _, l := range logs {
		if strings.Contains(l, "panic") {
			logged = true
		}
	}
	if !logged {
		t.Fatalf("panic was not logged: %q", logs)
	}

	// The same handler still serves real traffic.
	var ar AllocateResponse
	if code, body := postJSON(t, ts.Client(), ts.URL+"/v1/allocate",
		AllocateRequest{Signature: []float64{0}}, &ar); code != http.StatusOK {
		t.Fatalf("allocate after panic = %d: %s", code, body)
	}
}

// TestServeListenerSurvivesHandlerPanic proves the full serve loop — real
// listener, drain on cancel — outlives a handler panic: the connection gets
// a 500, later requests succeed, and shutdown still drains cleanly.
func TestServeListenerSurvivesHandlerPanic(t *testing.T) {
	cfg := fastConfig()
	cfg.Logf = t.Logf
	s := newTestServer(t, cfg)
	opts := HTTPOptions{DrainTimeout: 5 * time.Second}.withDefaults()
	h := newHandler(s, opts, map[string]http.HandlerFunc{
		"/boom": func(http.ResponseWriter, *http.Request) { panic("kaboom") },
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveHandler(ctx, ln, h, s, opts) }()
	base := "http://" + ln.Addr().String()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(base + "/boom")
		if err != nil {
			t.Fatalf("panic request %d killed the listener: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic request %d status = %d, want 500", i, resp.StatusCode)
		}
	}
	var ar AllocateResponse
	if code, body := postJSON(t, http.DefaultClient, base+"/v1/allocate",
		AllocateRequest{Signature: []float64{1}}, &ar); code != http.StatusOK {
		t.Fatalf("allocate after panics = %d: %s", code, body)
	}
	if got := s.Stats().RecoveredPanics; got != 3 {
		t.Fatalf("RecoveredPanics = %d, want 3", got)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("drain after panics returned %v", err)
	}
}
