package serve

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
)

// fuzzServer builds a silent two-cluster server; testing.TB so both the
// seed-corpus phase (*testing.F) and the fuzz body (*testing.T) can use it.
func fuzzServer(tb testing.TB) *Server {
	tb.Helper()
	store := core.NewEnvironmentStore()
	for cluster := 0; cluster < 2; cluster++ {
		if err := store.Add(&core.Environment{
			Importance: clusterImportance(cluster),
			Capacity:   []float64{2, 2},
			Signature:  []float64{float64(cluster)},
		}); err != nil {
			tb.Fatal(err)
		}
	}
	cfg := fastConfig()
	cfg.Logf = func(string, ...any) {} // corrupt inputs are expected here
	s, err := NewServer(testTemplate(), store, nil, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// FuzzLoadCheckpoint throws arbitrary bytes at the checkpoint restore path.
// The loader reads files that survived crashes and torn writes, so it must
// never panic and must contain damage per section: any input either loads
// some entries, skips them, or fails cleanly.
func FuzzLoadCheckpoint(f *testing.F) {
	// Seed corpus: a real warm checkpoint, a bit-flipped one, a truncated
	// one, a legacy v1 file, and assorted structural garbage.
	seedSrv := fuzzServer(f)
	if _, err := seedSrv.Allocate(context.Background(), AllocateRequest{Signature: []float64{0}}); err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := seedSrv.SaveCheckpoint(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), good.Bytes()...))
	// A shard-scoped export — the exact stream a joining cluster peer pulls
	// and feeds through InstallFromCheckpoint (same loader underneath).
	var scoped bytes.Buffer
	if err := seedSrv.SaveCheckpointFor(&scoped, func(k int) bool { return k == 0 }); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), scoped.Bytes()...))
	flipped := append([]byte(nil), good.Bytes()...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)
	f.Add(append([]byte(nil), good.Bytes()[:len(good.Bytes())*2/3]...))
	f.Add([]byte(`{"version":1,"entries":[]}`))
	f.Add([]byte(`{"version":7}`))
	f.Add([]byte("DCTACKP\x02"))
	f.Add([]byte("DCTACKP\x02\xFF\xFF\xFF\xFF\x00\x00\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := fuzzServer(t)
		restored, err := s.LoadCheckpoint(bytes.NewReader(data))
		if restored < 0 {
			t.Fatalf("restored %d entries", restored)
		}
		if err != nil && restored == 0 && s.Stats().CheckpointSkips == 0 {
			// Clean failure: nothing half-installed, nothing skipped —
			// fine. The point is we got here without panicking.
			return
		}
		// A load that installed entries must leave the cache serviceable:
		// saving again must produce a well-formed checkpoint.
		var out bytes.Buffer
		if err := s.SaveCheckpoint(&out); err != nil {
			t.Fatalf("cache unserviceable after load: %v", err)
		}
	})
}

// FuzzDecodeReplicate throws arbitrary bytes at the replication receiver —
// the exact stream POST /v1/replicate and the anti-entropy pull install. It
// must never panic, never accept the legacy v1 format, and keep its result
// counters coherent on any input.
func FuzzDecodeReplicate(f *testing.F) {
	seedSrv := fuzzServer(f)
	if _, err := seedSrv.Allocate(context.Background(), AllocateRequest{Signature: []float64{0}}); err != nil {
		f.Fatal(err)
	}
	// A real replication snapshot (single-cluster page), a full page, a
	// bit-flipped one, a truncated one, a v1 payload (must be refused), and
	// structural garbage.
	var page bytes.Buffer
	if _, err := seedSrv.SaveCheckpointPage(&page, func(k int) bool { return k == 0 }, -1, 0); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), page.Bytes()...))
	var full bytes.Buffer
	if _, err := seedSrv.SaveCheckpointPage(&full, nil, -1, 0); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), full.Bytes()...))
	flipped := append([]byte(nil), page.Bytes()...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)
	f.Add(append([]byte(nil), page.Bytes()...)[:page.Len()*2/3])
	f.Add([]byte(`{"version":1,"entries":[]}`))
	f.Add([]byte("DCTACKP\x01"))
	f.Add([]byte("DCTACKP\x02"))
	f.Add([]byte("DCTACKP\x02\xFF\xFF\xFF\xFF\x00\x00\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := fuzzServer(t)
		res, err := s.InstallReplicated(bytes.NewReader(data), func(int) bool { return false })
		if res.Installed < 0 || res.Stale < 0 || res.Installed+res.Stale > res.Sections {
			t.Fatalf("incoherent install result %+v", res)
		}
		if !bytes.HasPrefix(data, []byte(checkpointMagic)) && res.Sections != 0 {
			t.Fatalf("non-v2 input decoded %d sections (err=%v)", res.Sections, err)
		}
		// Whatever was installed, the cache must stay serviceable.
		var out bytes.Buffer
		if err := s.SaveCheckpoint(&out); err != nil {
			t.Fatalf("cache unserviceable after install: %v", err)
		}
	})
}
