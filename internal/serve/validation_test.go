package serve

import (
	"context"
	"errors"
	"math"
	"testing"
)

// Non-finite numbers in requests must be stopped at the trust boundary:
// a NaN signature poisons every nearest-neighbor distance, and a NaN
// feature flows into knapsack feasibility comparisons where every
// branch involving it is silently false.
func TestAllocateRejectsNonFinite(t *testing.T) {
	s := newTestServer(t, fastConfig())
	ctx := context.Background()
	cases := []AllocateRequest{
		{Signature: []float64{math.NaN()}},
		{Signature: []float64{math.Inf(1)}},
		{Signature: []float64{0}, Features: [][]float64{{1, math.NaN()}}},
		{Signature: []float64{0}, Features: [][]float64{{1}, {math.Inf(-1)}}},
	}
	for _, req := range cases {
		_, err := s.Allocate(ctx, req)
		if !errors.Is(err, ErrNonFinite) {
			t.Fatalf("Allocate(%+v) err = %v, want ErrNonFinite", req, err)
		}
		if !errors.Is(err, ErrBadRequest) {
			t.Fatalf("ErrNonFinite must wrap ErrBadRequest for the HTTP 400 mapping: %v", err)
		}
	}
}

func TestFeedbackRejectsNonFinite(t *testing.T) {
	s := newTestServer(t, fastConfig())
	ctx := context.Background()
	okFeatures := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}}
	cases := []FeedbackRequest{
		{Features: [][]float64{{math.NaN(), 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}},
			Allocation: []int{0, 0, 1, 1, -1, -1}},
		{Features: okFeatures, Allocation: []int{0, 0, 1, 1, -1, -1},
			Signature: []float64{math.Inf(1)}},
		{Features: okFeatures, Allocation: []int{0, 0, 1, 1, -1, -1},
			Signature: []float64{0}, Importance: []float64{math.NaN()}},
	}
	for _, req := range cases {
		_, err := s.Feedback(ctx, req)
		if !errors.Is(err, ErrNonFinite) || !errors.Is(err, ErrBadRequest) {
			t.Fatalf("Feedback err = %v, want ErrNonFinite wrapped in ErrBadRequest", err)
		}
	}
}
