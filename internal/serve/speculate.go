package serve

// Speculative background pre-training: after every successful demand
// training, the server predicts which clusters a workload drifting through
// signature space is likely to ask for next — the nearest still-untrained
// neighbours of the cluster that just ran hot — and trains them on idle
// training-gate capacity. A later request for a predicted cluster then hits
// a resident policy (reported as CacheSpeculative) instead of paying a cold
// train.
//
// Speculation is strictly subordinate to demand:
//
//   - a speculative run starts only when the gate has a free slot AND no
//     demand training is running or queued (pending == 0);
//   - once running, it polls pending between episodes and stops early the
//     moment demand arrives, publishing whatever it has (a partially trained
//     policy is still a better warm-start donor than nothing, and its
//     discounted TTL bounds how long it serves);
//   - installSpeculative never displaces a resident entry and never evicts
//     one — a full shard simply refuses the speculation.

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mathx"
)

// speculate is the cache's onTrained hook: predict and pre-train up to
// SpeculateNeighbors clusters near the one that just trained. It runs in its
// own goroutine, sequentially per trigger, so a burst of demand trainings
// never stacks more than one speculative training per trigger.
func (s *Server) speculate(hot int) {
	if s.draining.Load() {
		return
	}
	for _, key := range s.speculationCandidates(hot, s.cfg.SpeculateNeighbors) {
		if s.draining.Load() {
			return
		}
		s.speculateCluster(key)
	}
}

// speculationCandidates picks the n untrained clusters nearest the hot
// cluster in signature space — the prediction that workloads move to similar
// environments next. Clusters already resident (resolved or in flight) are
// excluded.
func (s *Server) speculationCandidates(hot, n int) []int {
	if n <= 0 {
		return nil
	}
	rep, err := s.store.At(hot)
	if err != nil {
		return nil
	}
	type cand struct {
		key int
		d   float64
	}
	var cands []cand
	for i, env := range s.store.All() {
		if i == hot || len(env.Signature) != len(rep.Signature) {
			continue
		}
		if s.cache.entry(i) != nil {
			continue
		}
		cands = append(cands, cand{i, mathx.EuclideanDistance(rep.Signature, env.Signature)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].key < cands[b].key
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	keys := make([]int, len(cands))
	for i, c := range cands {
		keys[i] = c.key
	}
	return keys
}

// speculateCluster pre-trains one predicted cluster if — and only as long
// as — the training gate is otherwise idle.
func (s *Server) speculateCluster(key int) {
	c := s.cache
	if c.pending.Load() > 0 {
		return // demand is waiting; never compete for the gate
	}
	select {
	case c.gate <- struct{}{}:
	default:
		return // no free slot; speculation never queues
	}
	defer func() { <-c.gate }()
	if c.pending.Load() > 0 {
		return // demand arrived while acquiring the slot
	}
	if c.entry(key) != nil {
		return // a demand training raced past the prediction
	}
	c.specTrainings.Add(1)
	crl, imp, err := s.safeSpeculativeTrain(key)
	if err != nil || crl == nil {
		return // speculation failures are silent: no breaker, no tombstone
	}
	c.installSpeculative(key, crl, imp)
}

// safeSpeculativeTrain runs one speculative training with the demand-yield
// interrupt, converting panics into errors like the demand path does.
func (s *Server) safeSpeculativeTrain(key int) (crl *core.CRL, imp []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.cfg.Logf("serve: speculative training cluster %d panicked: %v", key, r)
			crl, imp, err = nil, nil, fmt.Errorf("serve: speculative train cluster %d panic: %v", key, r)
		}
	}()
	return s.trainClusterMode(key, func() bool { return s.cache.pending.Load() > 0 })
}
