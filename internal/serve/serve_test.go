package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/mathx"
	"repro/internal/rl"
)

// testTemplate builds a tight 6-task / 2-processor TATIM structure: each
// processor fits two unit-cost tasks, so an allocator must drop two of six —
// importance ranking is observable in which tasks survive.
func testTemplate() *core.Problem {
	p := &core.Problem{TimeLimit: 2}
	for j := 0; j < 6; j++ {
		p.Tasks = append(p.Tasks, core.TaskSpec{ID: j, TimeCost: 1, Resource: 0.5})
	}
	for i := 0; i < 2; i++ {
		p.Processors = append(p.Processors, core.Processor{ID: i, Capacity: 2, SpeedFactor: 1})
	}
	return p
}

// clusterImportance gives cluster 0 heavy tasks 0-2 and cluster 1 heavy
// tasks 3-5.
func clusterImportance(cluster int) []float64 {
	imp := make([]float64, 6)
	for j := range imp {
		imp[j] = 0.05
	}
	for j := 0; j < 3; j++ {
		imp[3*cluster+j] = 0.9
	}
	return imp
}

// twoClusterStore builds the acceptance-test store: two well-separated
// historical environments at signatures 0 and 1.
func twoClusterStore(t *testing.T) *core.EnvironmentStore {
	t.Helper()
	store := core.NewEnvironmentStore()
	for cluster := 0; cluster < 2; cluster++ {
		if err := store.Add(&core.Environment{
			Importance: clusterImportance(cluster),
			Capacity:   []float64{2, 2},
			Signature:  []float64{float64(cluster)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// fastConfig keeps per-cluster training to a few milliseconds.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.ClusterNeighborhood = 1 // sub-store = the cluster representative
	cfg.CRL = core.CRLConfig{
		K:        1,
		Episodes: 8,
		Seed:     11,
		DQN: rl.DQNConfig{
			Hidden:      []int{16},
			BatchSize:   8,
			WarmupSteps: 16,
			Epsilon:     rl.EpsilonSchedule{Start: 1, End: 0.1, DecaySteps: 60},
			Seed:        12,
		},
	}
	return cfg
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(testTemplate(), twoClusterStore(t), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// heavyAssigned checks that every heavy task of the cluster survived the
// packing — the "correct allocation" bar: the two dropped tasks must come
// from the unimportant tail.
func heavyAssigned(allocation []int, cluster int) error {
	for j := 0; j < 3; j++ {
		if task := 3*cluster + j; allocation[task] == core.Unassigned {
			return fmt.Errorf("cluster %d dropped heavy task %d (allocation %v)", cluster, task, allocation)
		}
	}
	return nil
}

// TestConcurrentAllocateSingleflight is the PR's acceptance test: 64
// concurrent /v1/allocate-equivalent calls against a 2-cluster store must
// train exactly 2 policies (one per cluster, singleflight) and return
// correct, mutually identical allocations per cluster.
func TestConcurrentAllocateSingleflight(t *testing.T) {
	s := newTestServer(t, fastConfig())
	const requests = 64
	type answer struct {
		cluster    int
		allocation []int
	}
	answers := make([]answer, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cluster := i % 2
			// Signatures near but not exactly on the stored ones: 0±0.1
			// maps to cluster 0, 1±0.1 to cluster 1.
			z := float64(cluster) + 0.1 - 0.2*float64(i%3)/2
			resp, err := s.Allocate(context.Background(), AllocateRequest{Signature: []float64{z}})
			if err != nil {
				errs[i] = err
				return
			}
			if resp.Cluster != cluster {
				errs[i] = fmt.Errorf("request %d: cluster %d, want %d", i, resp.Cluster, cluster)
				return
			}
			answers[i] = answer{cluster: resp.Cluster, allocation: resp.Allocation}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	stats := s.Stats()
	if stats.Cache.Trainings != 2 {
		t.Fatalf("trainings = %d, want exactly 2 (singleflight)", stats.Cache.Trainings)
	}
	if stats.Cache.Misses != 2 {
		t.Fatalf("misses = %d, want 2", stats.Cache.Misses)
	}
	if got := stats.Cache.Hits + stats.Cache.Coalesced; got != requests-2 {
		t.Fatalf("hits+coalesced = %d, want %d", got, requests-2)
	}
	if stats.Allocates != requests {
		t.Fatalf("allocates = %d", stats.Allocates)
	}
	template := testTemplate()
	var first [2][]int
	for i, a := range answers {
		prob := template.Clone()
		if err := prob.CheckFeasible(core.Allocation(a.allocation)); err != nil {
			t.Fatalf("request %d infeasible: %v", i, err)
		}
		if err := heavyAssigned(a.allocation, a.cluster); err != nil {
			t.Fatal(err)
		}
		if first[a.cluster] == nil {
			first[a.cluster] = a.allocation
			continue
		}
		for j := range a.allocation {
			if a.allocation[j] != first[a.cluster][j] {
				t.Fatalf("request %d: cluster %d allocations diverge at task %d", i, a.cluster, j)
			}
		}
	}
}

func TestAllocateValidation(t *testing.T) {
	s := newTestServer(t, fastConfig())
	ctx := context.Background()
	if _, err := s.Allocate(ctx, AllocateRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty signature err = %v", err)
	}
	if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}, Allocator: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown allocator err = %v", err)
	}
	if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}, Allocator: "dcta"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("dcta without features err = %v", err)
	}
	if _, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0, 1}}); err == nil {
		t.Fatal("signature dimension mismatch accepted")
	}
	s.Drain()
	// Draining allocates still answer — degraded, without starting trainings.
	resp, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}})
	if err != nil {
		t.Fatalf("draining allocate err = %v", err)
	}
	if resp.Mode != ModeDegraded || resp.DegradedReason != DegradedDraining {
		t.Fatalf("draining allocate mode=%q reason=%q, want degraded/draining", resp.Mode, resp.DegradedReason)
	}
	if _, err := s.Feedback(ctx, FeedbackRequest{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining feedback err = %v", err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	cfg := fastConfig()
	cfg.CacheCapacity = 1
	s := newTestServer(t, cfg)
	ctx := context.Background()
	for i, want := range []struct {
		z       float64
		outcome string
	}{
		{0, CacheMiss},
		{1, CacheMiss}, // evicts cluster 0
		{0, CacheMiss}, // cold again
		{0, CacheHit},
	} {
		resp, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{want.z}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cache != want.outcome {
			t.Fatalf("request %d: cache = %q, want %q", i, resp.Cache, want.outcome)
		}
	}
	stats := s.Stats().Cache
	if stats.Evictions != 2 || stats.Size != 1 {
		t.Fatalf("evictions = %d size = %d, want 2 and 1", stats.Evictions, stats.Size)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	var clockMu sync.Mutex
	cfg := fastConfig()
	cfg.PolicyTTL = time.Minute
	cfg.Now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	s := newTestServer(t, cfg)
	ctx := context.Background()
	req := AllocateRequest{Signature: []float64{0}}
	if resp, err := s.Allocate(ctx, req); err != nil || resp.Cache != CacheMiss {
		t.Fatalf("first = %v, %v", resp, err)
	}
	if resp, err := s.Allocate(ctx, req); err != nil || resp.Cache != CacheHit {
		t.Fatalf("warm = %v, %v", resp, err)
	}
	clockMu.Lock()
	now = now.Add(2 * time.Minute)
	clockMu.Unlock()
	resp, err := s.Allocate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != CacheExpired {
		t.Fatalf("expired outcome = %+v", resp)
	}
	if stats := s.Stats().Cache; stats.Expired != 1 || stats.Trainings != 2 {
		t.Fatalf("cache stats after TTL: %+v", stats)
	}
}

// mkFeatures builds Table-I-shaped feature vectors whose first component
// leaks the given importance — enough signal for the local process.
func mkFeatures(imp []float64, noise float64, seed int64) [][]float64 {
	rng := mathx.NewRand(seed)
	out := make([][]float64, len(imp))
	for j := range out {
		v := make([]float64, features.Dim)
		v[0] = imp[j] + rng.NormFloat64()*noise
		for k := 1; k < features.Dim; k++ {
			v[k] = rng.NormFloat64() * 0.1
		}
		out[j] = v
	}
	return out
}

func TestFeedbackRefitEnablesDCTA(t *testing.T) {
	cfg := fastConfig()
	cfg.RefitEvery = 12 // two 6-sample feedbacks trigger a refit
	s := newTestServer(t, cfg)
	ctx := context.Background()
	imp := clusterImportance(0)
	feats := mkFeatures(imp, 0.05, 5)

	// Before any feedback the auto path falls back to CRL.
	resp, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0}, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Allocator != "CRL" {
		t.Fatalf("allocator before feedback = %q", resp.Allocator)
	}

	// Stream two decisions' worth of feedback; heavy tasks ran, tail dropped.
	executed := []int{0, 0, 1, core.Unassigned, core.Unassigned, 1}
	var fb *FeedbackResponse
	for i := 0; i < 2; i++ {
		fb, err = s.Feedback(ctx, FeedbackRequest{
			Signature:  []float64{0},
			Features:   mkFeatures(imp, 0.05, int64(20+i)),
			Allocation: executed,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !fb.Refitted || fb.WindowSize != 12 {
		t.Fatalf("feedback = %+v, want refit at window 12", fb)
	}
	resp, err = s.Allocate(ctx, AllocateRequest{Signature: []float64{0}, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Allocator != "DCTA" {
		t.Fatalf("allocator after refit = %q", resp.Allocator)
	}
	if err := heavyAssigned(resp.Allocation, 0); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.Refits != 1 || got.Feedbacks != 2 {
		t.Fatalf("stats after feedback: %+v", got)
	}
}

func TestDriftInvalidationRetrains(t *testing.T) {
	s := newTestServer(t, fastConfig())
	ctx := context.Background()
	req := AllocateRequest{Signature: []float64{0}}
	if _, err := s.Allocate(ctx, req); err != nil {
		t.Fatal(err)
	}
	// Mild feedback: importance close to the trained snapshot — no drift.
	near := clusterImportance(0)
	near[5] += 0.05
	fb, err := s.Feedback(ctx, FeedbackRequest{
		Signature:  []float64{0},
		Features:   mkFeatures(near, 0.05, 31),
		Allocation: []int{0, 0, 1, core.Unassigned, core.Unassigned, 1},
		Importance: near,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fb.DriftInvalidated {
		t.Fatal("mild importance change invalidated the policy")
	}
	if resp, err := s.Allocate(ctx, req); err != nil || resp.Cache != CacheHit {
		t.Fatalf("after mild feedback: %+v, %v", resp, err)
	}
	// The world flips: cluster 0's signature now carries cluster 1's
	// importance. Drift detection must invalidate and the next allocate
	// retrain.
	flipped := clusterImportance(1)
	fb, err = s.Feedback(ctx, FeedbackRequest{
		Signature:  []float64{0},
		Features:   mkFeatures(flipped, 0.05, 32),
		Allocation: []int{core.Unassigned, core.Unassigned, 0, 0, 1, 1},
		Importance: flipped,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fb.DriftInvalidated {
		t.Fatal("importance flip not detected as drift")
	}
	resp, err := s.Allocate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != CacheDrift {
		t.Fatalf("post-drift cache = %q", resp.Cache)
	}
	if stats := s.Stats().Cache; stats.DriftInvalidations != 1 || stats.Trainings != 2 {
		t.Fatalf("cache stats after drift: %+v", stats)
	}
}

func TestFeedbackGrowsStore(t *testing.T) {
	s := newTestServer(t, fastConfig())
	ctx := context.Background()
	before := s.Store().Len()
	imp := clusterImportance(1)
	fb, err := s.Feedback(ctx, FeedbackRequest{
		Signature:  []float64{0.45}, // between the clusters
		Features:   mkFeatures(imp, 0.05, 41),
		Allocation: []int{core.Unassigned, core.Unassigned, 0, 0, 1, 1},
		Importance: imp,
		AddToStore: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fb.StoredEnvironment {
		t.Fatal("environment not stored")
	}
	if got := s.Store().Len(); got != before+1 {
		t.Fatalf("store len = %d, want %d", got, before+1)
	}
	// The new environment is now a cluster of its own: a query right on it
	// must key a fresh policy, not one of the original clusters.
	resp, err := s.Allocate(ctx, AllocateRequest{Signature: []float64{0.45}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cluster != before || resp.Cache != CacheMiss {
		t.Fatalf("new-cluster allocate = %+v, want cluster %d miss", resp, before)
	}
	if err := heavyAssigned(resp.Allocation, 1); err != nil {
		t.Fatal(err)
	}
}

func TestNewServerValidation(t *testing.T) {
	store := twoClusterStore(t)
	if _, err := NewServer(nil, store, nil, Config{}); err == nil {
		t.Fatal("nil template accepted")
	}
	if _, err := NewServer(&core.Problem{}, store, nil, Config{}); err == nil {
		t.Fatal("invalid template accepted")
	}
	if _, err := NewServer(testTemplate(), core.NewEnvironmentStore(), nil, Config{}); !errors.Is(err, core.ErrEmptyStore) {
		t.Fatalf("empty store err = %v", err)
	}
}
