package building

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Years != 4 || cfg.StepHours != 1 || cfg.StartYear != 2015 || cfg.Seed != 1 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Years: 0}); err == nil {
		t.Fatal("Years=0 should be rejected")
	}
	if _, err := Generate(Config{Years: -3}); err == nil {
		t.Fatal("negative Years should be rejected")
	}
}

func TestGenerateDefaults(t *testing.T) {
	// Zero StepHours and StartYear fall back to 1h steps from 2015.
	tr, err := Generate(Config{Seed: 5, Years: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Config.StepHours != 1 || tr.Config.StartYear != 2015 {
		t.Fatalf("defaults not applied: %+v", tr.Config)
	}
	if got := tr.Records[0].Time; got != time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC) {
		t.Fatalf("first record at %v", got)
	}
}

// TestGenerateDeterminism locks the seeded-generation contract: identical
// configs yield byte-identical traces, different seeds diverge.
func TestGenerateDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, StartYear: 2016, Years: 1, StepHours: 6}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteCSV(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("identical configs generated different traces")
	}

	c, err := Generate(Config{Seed: 43, StartYear: 2016, Years: 1, StepHours: 6})
	if err != nil {
		t.Fatal(err)
	}
	var bufC bytes.Buffer
	if err := c.WriteCSV(&bufC); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bufA.Bytes(), bufC.Bytes()) {
		t.Fatal("different seeds generated identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	tr := testTrace(t)
	if len(tr.Buildings) != 3 {
		t.Fatalf("buildings = %d, want 3", len(tr.Buildings))
	}
	if len(tr.Chillers()) != 17 {
		t.Fatalf("chillers = %d, want 17", len(tr.Chillers()))
	}
	if len(tr.Records) == 0 {
		t.Fatal("no records")
	}
	// Every building contributes records.
	seen := make(map[int]int)
	for _, r := range tr.Records {
		seen[r.Building]++
	}
	for _, b := range tr.Buildings {
		if seen[b.ID] == 0 {
			t.Errorf("building %d (%s) has no records", b.ID, b.Name)
		}
	}
}

func TestRecordsChronological(t *testing.T) {
	tr := testTrace(t)
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].Time.Before(tr.Records[i-1].Time) {
			t.Fatalf("records out of order at %d: %v before %v",
				i, tr.Records[i].Time, tr.Records[i-1].Time)
		}
	}
	last := tr.Records[len(tr.Records)-1].Time
	end := time.Date(tr.Config.StartYear+tr.Config.Years, 1, 1, 0, 0, 0, 0, time.UTC)
	if !last.Before(end) {
		t.Fatalf("trace leaks past its horizon: %v ≥ %v", last, end)
	}
}

// TestRecordInternalConsistency cross-checks each record's derived fields
// against its primary ones: band vs part-load ratio, condition vs
// temperature, power vs load/COP, and the chilled-water heat balance.
func TestRecordInternalConsistency(t *testing.T) {
	tr := testTrace(t)
	for i, r := range tr.Records {
		ch := tr.ChillerByID(r.ChillerID)
		if ch == nil {
			t.Fatalf("record %d references unknown chiller %d", i, r.ChillerID)
		}
		if ch.Building != r.Building {
			t.Fatalf("record %d: chiller %d belongs to building %d, record says %d",
				i, ch.ID, ch.Building, r.Building)
		}
		if r.CoolingLoadKW <= 0 || r.COP <= 0 || r.OperatingPowerKW <= 0 ||
			r.WaterFlowKgS <= 0 || r.WaterDeltaTC <= 0 {
			t.Fatalf("record %d has non-positive physics: %+v", i, r)
		}
		plr := r.CoolingLoadKW / ch.Model.CapacityKW()
		if plr > 1+1e-9 {
			t.Fatalf("record %d: PLR %v exceeds 1", i, plr)
		}
		if got := BandOf(plr); got != r.Band {
			t.Fatalf("record %d: band %v but PLR %v is band %v", i, r.Band, plr, got)
		}
		if got := ConditionOf(r.OutdoorTempC); got != r.Condition {
			t.Fatalf("record %d: condition %v but %v°C is %v", i, r.Condition, r.OutdoorTempC, got)
		}
		if math.Abs(r.OperatingPowerKW-r.CoolingLoadKW/r.COP) > 1e-6 {
			t.Fatalf("record %d: power %v ≠ load/COP %v", i, r.OperatingPowerKW, r.CoolingLoadKW/r.COP)
		}
		// Q = ṁ·c_p·ΔT within rounding.
		q := r.WaterFlowKgS * waterHeatCapacity * r.WaterDeltaTC
		if math.Abs(q-r.CoolingLoadKW) > 1e-6*math.Max(1, r.CoolingLoadKW) {
			t.Fatalf("record %d: heat balance %v ≠ load %v", i, q, r.CoolingLoadKW)
		}
	}
}

// TestEqualPLRWithinTimestep checks the load-sharing policy: all chillers
// running in one building at one instant see the same part-load ratio.
func TestEqualPLRWithinTimestep(t *testing.T) {
	tr := testTrace(t)
	type key struct {
		ts       time.Time
		building int
	}
	plrs := make(map[key]float64)
	for _, r := range tr.Records {
		ch := tr.ChillerByID(r.ChillerID)
		plr := r.CoolingLoadKW / ch.Model.CapacityKW()
		k := key{r.Time, r.Building}
		if prev, ok := plrs[k]; ok {
			if math.Abs(prev-plr) > 1e-9 {
				t.Fatalf("unequal PLR at %v building %d: %v vs %v", r.Time, r.Building, prev, plr)
			}
		} else {
			plrs[k] = plr
		}
	}
}

// TestAllBandsPopulated: the occupancy and weather cycles must exercise all
// three load bands, or a third of the task set would be empty.
func TestAllBandsPopulated(t *testing.T) {
	tr := testTrace(t)
	counts := make(map[LoadBand]int)
	for _, r := range tr.Records {
		counts[r.Band]++
	}
	for _, b := range []LoadBand{BandLow, BandMid, BandHigh} {
		if counts[b] == 0 {
			t.Errorf("band %v has no records", b)
		}
	}
}

// TestSeasonalTemperatures: records span meaningfully different weather
// conditions over a year (the source of context-dependent importance).
func TestSeasonalTemperatures(t *testing.T) {
	tr := testTrace(t)
	conds := make(map[WeatherCondition]int)
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, r := range tr.Records {
		conds[r.Condition]++
		minT = math.Min(minT, r.OutdoorTempC)
		maxT = math.Max(maxT, r.OutdoorTempC)
	}
	if len(conds) < 3 {
		t.Errorf("only %d weather conditions over a full year: %v", len(conds), conds)
	}
	if maxT-minT < 10 {
		t.Errorf("temperature range %v..%v too flat for a seasonal climate", minT, maxT)
	}
}

func TestChillerParametersInRange(t *testing.T) {
	tr := testTrace(t)
	for _, ch := range tr.Chillers() {
		if ch.Efficiency < 0.85 || ch.Efficiency > 1.15 {
			t.Errorf("chiller %d efficiency %v outside spread", ch.ID, ch.Efficiency)
		}
		if ch.DriftPhase < 0 || ch.DriftPhase > 2*math.Pi {
			t.Errorf("chiller %d drift phase %v outside [0, 2π]", ch.ID, ch.DriftPhase)
		}
	}
}
