package building

import (
	"bytes"
	"encoding/csv"
	"errors"
	"io"
	"reflect"
	"strconv"
	"testing"
	"time"
)

func TestWriteCSVEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{}).WriteCSV(&buf); !errors.Is(err, ErrNoRecords) {
		t.Fatalf("err = %v, want ErrNoRecords", err)
	}
}

// TestWriteCSVGoldenHeader pins the exported schema: downstream notebooks
// parse these column names.
func TestWriteCSVGoldenHeader(t *testing.T) {
	want := []string{
		"time", "building", "chiller_id", "model", "band", "condition",
		"outdoor_temp_c", "cooling_load_kw", "cop", "operating_power_kw",
		"water_flow_kgs", "water_delta_t_c",
	}
	if !reflect.DeepEqual(CSVHeader, want) {
		t.Fatalf("CSVHeader = %v", CSVHeader)
	}
}

// TestWriteCSVRoundTrip re-parses the CSV and checks every field against the
// originating records.
func TestWriteCSVRoundTrip(t *testing.T) {
	tr := testTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	header, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(header, CSVHeader) {
		t.Fatalf("header = %v", header)
	}
	rows := 0
	for {
		row, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		r := tr.Records[rows]
		ts, err := time.Parse(time.RFC3339, row[0])
		if err != nil {
			t.Fatal(err)
		}
		if !ts.Equal(r.Time) {
			t.Fatalf("row %d time %v, want %v", rows, ts, r.Time)
		}
		if row[1] != strconv.Itoa(r.Building) || row[2] != strconv.Itoa(r.ChillerID) {
			t.Fatalf("row %d ids = %v/%v", rows, row[1], row[2])
		}
		if want := tr.ChillerByID(r.ChillerID).Model.String(); row[3] != want {
			t.Fatalf("row %d model %q, want %q", rows, row[3], want)
		}
		if row[4] != r.Band.String() || row[5] != r.Condition.String() {
			t.Fatalf("row %d band/condition = %q/%q", rows, row[4], row[5])
		}
		checks := []struct {
			col  int
			want float64
		}{
			{6, r.OutdoorTempC}, {7, r.CoolingLoadKW}, {8, r.COP},
			{9, r.OperatingPowerKW}, {10, r.WaterFlowKgS}, {11, r.WaterDeltaTC},
		}
		for _, c := range checks {
			got, err := strconv.ParseFloat(row[c.col], 64)
			if err != nil {
				t.Fatal(err)
			}
			if diff := got - c.want; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("row %d col %d = %v, want ≈%v", rows, c.col, got, c.want)
			}
		}
		rows++
	}
	if rows != len(tr.Records) {
		t.Fatalf("CSV has %d rows, trace has %d records", rows, len(tr.Records))
	}
}

// TestWriteCSVDeterministic: the CSV doubles as a byte-level determinism
// witness for the whole generator.
func TestWriteCSVDeterministic(t *testing.T) {
	tr := testTrace(t)
	var a, b bytes.Buffer
	if err := tr.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two serializations of one trace differ")
	}
}

// failWriter errors after n bytes to exercise WriteCSV's error paths.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteCSVPropagatesWriteErrors(t *testing.T) {
	tr := testTrace(t)
	if err := tr.WriteCSV(&failWriter{n: 0}); err == nil {
		t.Fatal("header write error swallowed")
	}
	if err := tr.WriteCSV(&failWriter{n: 500}); err == nil {
		t.Fatal("row write error swallowed")
	}
}
