package building

import (
	"errors"
	"testing"
	"time"
)

func TestChillersReturnsCopy(t *testing.T) {
	tr := testTrace(t)
	chs := tr.Chillers()
	orig := chs[0].Efficiency
	chs[0].Efficiency = -99
	if tr.Chillers()[0].Efficiency != orig {
		t.Fatal("Chillers() exposed internal state")
	}
}

func TestChillerByID(t *testing.T) {
	tr := testTrace(t)
	if ch := tr.ChillerByID(0); ch == nil || ch.ID != 0 {
		t.Fatalf("ChillerByID(0) = %v", ch)
	}
	if ch := tr.ChillerByID(-1); ch != nil {
		t.Fatalf("ChillerByID(-1) = %v, want nil", ch)
	}
	if ch := tr.ChillerByID(len(tr.Chillers())); ch != nil {
		t.Fatalf("out-of-range ChillerByID = %v, want nil", ch)
	}
}

func TestBuildingByID(t *testing.T) {
	tr := testTrace(t)
	if b := tr.BuildingByID(2); b == nil || b.ID != 2 {
		t.Fatalf("BuildingByID(2) = %v", b)
	}
	if b := tr.BuildingByID(-1); b != nil {
		t.Fatalf("BuildingByID(-1) = %v, want nil", b)
	}
	if b := tr.BuildingByID(3); b != nil {
		t.Fatalf("BuildingByID(3) = %v, want nil", b)
	}
}

func TestChillersOf(t *testing.T) {
	tr := testTrace(t)
	total := 0
	for _, b := range tr.Buildings {
		chs := tr.ChillersOf(b.ID)
		if len(chs) == 0 {
			t.Fatalf("building %d has no chillers", b.ID)
		}
		for _, ch := range chs {
			if ch.Building != b.ID {
				t.Fatalf("ChillersOf(%d) returned chiller of building %d", b.ID, ch.Building)
			}
		}
		total += len(chs)
	}
	if total != len(tr.Chillers()) {
		t.Fatalf("buildings partition %d chillers, plant has %d", total, len(tr.Chillers()))
	}
	if chs := tr.ChillersOf(99); chs != nil {
		t.Fatalf("ChillersOf(99) = %v, want nil", chs)
	}
}

// TestRecordsForPartition: per chiller, the three bands partition exactly the
// chiller's records — disjoint, complete, and correctly labelled.
func TestRecordsForPartition(t *testing.T) {
	tr := testTrace(t)
	perChiller := make(map[int]int)
	for _, r := range tr.Records {
		perChiller[r.ChillerID]++
	}
	for _, ch := range tr.Chillers() {
		seen := make(map[int]bool)
		total := 0
		for _, band := range []LoadBand{BandLow, BandMid, BandHigh} {
			for _, i := range tr.RecordsFor(ch.ID, band) {
				r := tr.Records[i]
				if r.ChillerID != ch.ID || r.Band != band {
					t.Fatalf("RecordsFor(%d, %v) returned record %+v", ch.ID, band, r)
				}
				if seen[i] {
					t.Fatalf("record %d appears in two bands", i)
				}
				seen[i] = true
				total++
			}
		}
		if total != perChiller[ch.ID] {
			t.Fatalf("chiller %d: bands cover %d of %d records", ch.ID, total, perChiller[ch.ID])
		}
	}
}

func TestRecordsForUnknown(t *testing.T) {
	tr := testTrace(t)
	if idx := tr.RecordsFor(9999, BandLow); len(idx) != 0 {
		t.Fatalf("unknown chiller has %d records", len(idx))
	}
}

// TestLatestBeforeNoFuturePeeking: time-bounded lookups never return a
// record newer than the query time, and return the newest one at or before
// it.
func TestLatestBeforeNoFuturePeeking(t *testing.T) {
	tr := testTrace(t)
	ch := tr.Chillers()[0]
	first := tr.Records[0].Time

	if r := tr.LatestBefore(ch.ID, first.Add(-time.Hour)); r != nil {
		t.Fatalf("lookup before trace start returned %+v", r)
	}
	probes := []time.Time{
		first.Add(24 * time.Hour),
		first.Add(31 * 24 * time.Hour),
		first.Add(200*24*time.Hour + 90*time.Minute), // off-grid instant
		tr.Records[len(tr.Records)-1].Time.Add(time.Hour),
	}
	for _, probe := range probes {
		r := tr.LatestBefore(ch.ID, probe)
		if r == nil {
			t.Fatalf("no record found at %v", probe)
		}
		if r.ChillerID != ch.ID {
			t.Fatalf("wrong chiller: %+v", r)
		}
		if r.Time.After(probe) {
			t.Fatalf("future peek: record at %v for query %v", r.Time, probe)
		}
		// No newer record of this chiller in (r.Time, probe].
		for _, other := range tr.Records {
			if other.ChillerID == ch.ID && other.Time.After(r.Time) && !other.Time.After(probe) {
				t.Fatalf("missed newer record at %v (returned %v, query %v)",
					other.Time, r.Time, probe)
			}
		}
	}
}

func TestLatestBeforeUnknownChiller(t *testing.T) {
	tr := testTrace(t)
	if r := tr.LatestBefore(9999, tr.Records[len(tr.Records)-1].Time); r != nil {
		t.Fatalf("unknown chiller returned %+v", r)
	}
}

func TestTrueCOPForErrors(t *testing.T) {
	tr := testTrace(t)
	if _, err := tr.TrueCOPFor(-1, 0.5, 24, time.Time{}); !errors.Is(err, ErrUnknownChiller) {
		t.Fatalf("err = %v, want ErrUnknownChiller", err)
	}
	if _, err := tr.TrueCOPFor(len(tr.Chillers()), 0.5, 24, time.Time{}); !errors.Is(err, ErrUnknownChiller) {
		t.Fatalf("err = %v, want ErrUnknownChiller", err)
	}
}

func TestTrueCOPForClampsPLR(t *testing.T) {
	tr := testTrace(t)
	at := func(plr float64) float64 {
		cop, err := tr.TrueCOPFor(0, plr, 24, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		return cop
	}
	if at(-0.5) != at(0) {
		t.Fatal("negative PLR should clamp to 0")
	}
	if at(1.5) != at(1) {
		t.Fatal("PLR above 1 should clamp to 1")
	}
}
