package building

import (
	"fmt"
	"math"
	"time"
)

// DecisionContext is one sequencing decision for one building: meet the
// current cooling demand under the current weather.
type DecisionContext struct {
	// Building is the plant being sequenced.
	Building *Building
	// DemandKW is the total cooling demand to serve.
	DemandKW float64
	// OutdoorC is the current outdoor temperature.
	OutdoorC float64
	// Time stamps the decision (drives the hidden efficiency drift).
	Time time.Time
}

// Sequencer picks which chillers to run for a demand, minimizing estimated
// input power. It queries a COPEstimator per (chiller, band) — the MTL task
// models — and falls back to the nameplate prior for uncovered pairs, which
// is precisely how "not conducting" a task degrades the decision.
type Sequencer struct {
	// MinPLR is the lowest viable part-load ratio; stagings below it are
	// considered only when nothing else is feasible.
	MinPLR float64
	// PriorCOP estimates a chiller model's COP when no task model covers
	// the pair. The default nameplate prior ignores load, weather and the
	// machine's individual efficiency — crude on purpose.
	PriorCOP func(ModelType) float64
}

// NewSequencer returns a sequencer with the plant's default policy.
func NewSequencer() *Sequencer {
	return &Sequencer{
		MinPLR:   0.12,
		PriorCOP: func(m ModelType) float64 { return m.RatedCOP() },
	}
}

// Decision is one chosen staging.
type Decision struct {
	// ChillerIDs lists the running machines.
	ChillerIDs []int
	// PLR is the shared part-load ratio (load shared pro rata to capacity).
	PLR float64
	// EstimatedPowerKW is the input power the sequencer believed it chose.
	EstimatedPowerKW float64
}

// candidate is one feasible staging during search.
type candidate struct {
	mask   int
	capSum float64
	plr    float64
}

// candidates enumerates the feasible stagings for a demand: every chiller
// subset that can carry the load (PLR ≤ 1), preferring stagings at or above
// MinPLR. The same candidate set backs both the estimated choice and the
// true-physics optimum, so performance ratios stay in [0, 1].
func (s *Sequencer) candidates(chs []Chiller, demandKW float64) []candidate {
	var ok, low []candidate
	n := len(chs)
	for mask := 1; mask < 1<<n; mask++ {
		var capSum float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				capSum += chs[i].Model.CapacityKW()
			}
		}
		plr := demandKW / capSum
		if plr > 1 {
			continue
		}
		c := candidate{mask: mask, capSum: capSum, plr: plr}
		if plr >= s.MinPLR {
			ok = append(ok, c)
		} else {
			low = append(low, c)
		}
	}
	if len(ok) > 0 {
		return ok
	}
	return low
}

// Decide picks the staging with the lowest estimated input power.
func (s *Sequencer) Decide(tr *Trace, ctx DecisionContext, est COPEstimator) (*Decision, error) {
	chs, err := s.contextChillers(tr, ctx)
	if err != nil {
		return nil, err
	}
	cands := s.candidates(chs, ctx.DemandKW)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: demand %.0f kW exceeds plant capacity", ErrBadContext, ctx.DemandKW)
	}
	best := -1
	bestPower := math.Inf(1)
	for i, c := range cands {
		power := s.estimatedPower(chs, c, ctx, est)
		if power < bestPower {
			bestPower = power
			best = i
		}
	}
	chosen := cands[best]
	d := &Decision{PLR: chosen.plr, EstimatedPowerKW: bestPower}
	for i := range chs {
		if chosen.mask&(1<<i) != 0 {
			d.ChillerIDs = append(d.ChillerIDs, chs[i].ID)
		}
	}
	return d, nil
}

// estimatedPower scores a staging with the estimator's band-granular COPs
// (prior fallback per uncovered pair).
func (s *Sequencer) estimatedPower(chs []Chiller, c candidate, ctx DecisionContext, est COPEstimator) float64 {
	band := BandOf(c.plr)
	var power float64
	for i := range chs {
		if c.mask&(1<<i) == 0 {
			continue
		}
		cop, ok := est.Estimate(chs[i].ID, band, ctx.OutdoorC)
		if !ok || cop <= 0 {
			cop = s.PriorCOP(chs[i].Model)
		}
		if cop < 0.3 {
			cop = 0.3
		}
		power += c.plr * chs[i].Model.CapacityKW() / cop
	}
	return power
}

// truePower scores a staging with the hidden physics at the exact PLR.
func truePower(tr *Trace, chs []Chiller, c candidate, ctx DecisionContext) float64 {
	var power float64
	for i := range chs {
		if c.mask&(1<<i) == 0 {
			continue
		}
		cop := tr.trueCOP(&chs[i], c.plr, ctx.OutdoorC, ctx.Time)
		power += c.plr * chs[i].Model.CapacityKW() / cop
	}
	return power
}

// contextChillers validates a context and resolves its building's plant.
func (s *Sequencer) contextChillers(tr *Trace, ctx DecisionContext) ([]Chiller, error) {
	if tr == nil || len(tr.Records) == 0 {
		return nil, ErrNoRecords
	}
	if ctx.Building == nil {
		return nil, fmt.Errorf("%w: nil building", ErrBadContext)
	}
	if ctx.DemandKW <= 0 {
		return nil, fmt.Errorf("%w: demand %.2f kW", ErrBadContext, ctx.DemandKW)
	}
	chs := tr.ChillersOf(ctx.Building.ID)
	if len(chs) == 0 {
		return nil, fmt.Errorf("%w: building %d has no chillers", ErrBadContext, ctx.Building.ID)
	}
	return chs, nil
}

// DecisionPerformance is the decision function's H for one context: the
// true input power of the physics-optimal staging divided by the true input
// power of the staging the sequencer chose from the estimates. H ∈ (0, 1];
// H = 1 means the estimates led to the genuinely best decision.
func DecisionPerformance(tr *Trace, seq *Sequencer, ctx DecisionContext, est COPEstimator) (float64, error) {
	chosen, opt, _, err := evaluate(tr, seq, ctx, est)
	if err != nil {
		return 0, err
	}
	return opt / chosen, nil
}

// SavingPerformance scores a decision on the Fig. 3 energy-saving scale:
// the share of the achievable saving (running all chillers vs the optimal
// staging) that the chosen staging realizes, clamped to [0, 1].
func SavingPerformance(tr *Trace, seq *Sequencer, ctx DecisionContext, est COPEstimator) (float64, error) {
	chosen, opt, all, err := evaluate(tr, seq, ctx, est)
	if err != nil {
		return 0, err
	}
	achievable := all - opt
	if achievable < 1e-9 {
		return 1, nil
	}
	sv := (all - chosen) / achievable
	if sv < 0 {
		sv = 0
	} else if sv > 1 {
		sv = 1
	}
	return sv, nil
}

// evaluate runs one decision and returns the true powers of the chosen
// staging, the physics-optimal staging, and the all-chillers-on baseline.
func evaluate(tr *Trace, seq *Sequencer, ctx DecisionContext, est COPEstimator) (chosenKW, optKW, allOnKW float64, err error) {
	chs, err := seq.contextChillers(tr, ctx)
	if err != nil {
		return 0, 0, 0, err
	}
	cands := seq.candidates(chs, ctx.DemandKW)
	if len(cands) == 0 {
		return 0, 0, 0, fmt.Errorf("%w: demand %.0f kW exceeds plant capacity", ErrBadContext, ctx.DemandKW)
	}
	best := -1
	bestEst := math.Inf(1)
	optKW = math.Inf(1)
	for i, c := range cands {
		if p := seq.estimatedPower(chs, c, ctx, est); p < bestEst {
			bestEst = p
			best = i
		}
		if p := truePower(tr, chs, c, ctx); p < optKW {
			optKW = p
		}
	}
	chosenKW = truePower(tr, chs, cands[best], ctx)

	var capSum float64
	for i := range chs {
		capSum += chs[i].Model.CapacityKW()
	}
	allOnKW = truePower(tr, chs, candidate{mask: 1<<len(chs) - 1, capSum: capSum, plr: ctx.DemandKW / capSum}, ctx)
	return chosenKW, optKW, allOnKW, nil
}
