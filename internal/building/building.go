// Package building is the green-building chiller-plant substrate that
// replaces the paper's proprietary 4-year operation dataset (§V, [22]).
//
// It provides a physics-flavored synthetic trace generator (weather model,
// occupancy-driven cooling load, part-load COP curves per chiller model,
// sensor noise), the query surface the MTL engine builds its 50 tasks on
// (records per chiller × load band), and the chiller-sequencing decision
// function whose performance H backs the task importance of Definition 1.
//
// Everything is deterministic per Config.Seed.
package building

import (
	"errors"
	"fmt"
	"time"
)

// Common errors.
var (
	// ErrNoRecords is returned when an operation needs a non-empty trace.
	ErrNoRecords = errors.New("building: trace has no records")
	// ErrUnknownChiller is returned for chiller IDs outside the plant.
	ErrUnknownChiller = errors.New("building: unknown chiller")
	// ErrBadContext is returned for invalid decision contexts.
	ErrBadContext = errors.New("building: invalid decision context")
)

// ModelType is a chiller technology. The plant mixes the three kinds the
// trace's task set is built on: electric centrifugal and screw compressors
// plus heat-driven absorption machines.
type ModelType int

// Supported chiller models.
const (
	// ModelCentrifugal is a large electric centrifugal chiller: high peak
	// COP near full load, steep part-load fall-off.
	ModelCentrifugal ModelType = iota
	// ModelScrew is a mid-size electric screw chiller: flatter part-load
	// curve peaking near 60% load.
	ModelScrew
	// ModelAbsorption is a heat-driven absorption chiller: low COP (thermal
	// input), nearly flat against load and weather.
	ModelAbsorption
)

// String names the model.
func (m ModelType) String() string {
	switch m {
	case ModelCentrifugal:
		return "centrifugal"
	case ModelScrew:
		return "screw"
	case ModelAbsorption:
		return "absorption"
	default:
		return fmt.Sprintf("ModelType(%d)", int(m))
	}
}

// modelSpec is the hidden true physics of one chiller model.
type modelSpec struct {
	capacityKW float64
	// baseCOP is the COP at the optimal part-load ratio and 24°C outdoor.
	baseCOP float64
	// optPLR is the part-load ratio of peak efficiency; curvature scales the
	// quadratic efficiency loss away from it.
	optPLR    float64
	curvature float64
	// tempSens is the relative COP loss per °C of outdoor temperature above
	// the 24°C rating point (condenser lift).
	tempSens float64
}

var modelSpecs = map[ModelType]modelSpec{
	ModelCentrifugal: {capacityKW: 1300, baseCOP: 5.9, optPLR: 0.82, curvature: 1.30, tempSens: 0.016},
	ModelScrew:       {capacityKW: 760, baseCOP: 5.1, optPLR: 0.62, curvature: 0.80, tempSens: 0.011},
	ModelAbsorption:  {capacityKW: 1050, baseCOP: 1.25, optPLR: 0.55, curvature: 0.30, tempSens: 0.003},
}

// CapacityKW is the model's nameplate cooling capacity.
func (m ModelType) CapacityKW() float64 { return modelSpecs[m].capacityKW }

// RatedCOP is the nameplate COP at the optimal part-load ratio and rating
// conditions — the crude prior a sequencer falls back to when no task model
// covers a (chiller, band) pair.
func (m ModelType) RatedCOP() float64 { return modelSpecs[m].baseCOP }

// LoadBand buckets a chiller's part-load ratio. One MTL task predicts one
// chiller's COP within one band ("COP prediction of a chiller for one
// particular load").
type LoadBand int

// The three operating bands.
const (
	// BandLow is PLR below 0.45.
	BandLow LoadBand = iota
	// BandMid is PLR in [0.45, 0.75).
	BandMid
	// BandHigh is PLR at or above 0.75.
	BandHigh
)

// Band boundaries between low/mid and mid/high part-load ratios.
const (
	bandLowMax = 0.45
	bandMidMax = 0.75
)

// BandOf buckets a part-load ratio.
func BandOf(plr float64) LoadBand {
	switch {
	case plr < bandLowMax:
		return BandLow
	case plr < bandMidMax:
		return BandMid
	default:
		return BandHigh
	}
}

// Midpoint is the representative part-load ratio of the band.
func (b LoadBand) Midpoint() float64 {
	switch b {
	case BandLow:
		return 0.30
	case BandMid:
		return 0.60
	default:
		return 0.85
	}
}

// String names the band.
func (b LoadBand) String() string {
	switch b {
	case BandLow:
		return "low"
	case BandMid:
		return "mid"
	case BandHigh:
		return "high"
	default:
		return fmt.Sprintf("LoadBand(%d)", int(b))
	}
}

// WeatherCondition is the ordinal weather bucket of a record (a Table-I
// domain feature).
type WeatherCondition int

// Condition buckets by outdoor temperature.
const (
	// WeatherCool is below 18°C.
	WeatherCool WeatherCondition = iota
	// WeatherMild is [18, 24)°C.
	WeatherMild
	// WeatherWarm is [24, 29)°C.
	WeatherWarm
	// WeatherHotHumid is 29°C and above.
	WeatherHotHumid
)

// ConditionOf buckets an outdoor temperature.
func ConditionOf(outdoorC float64) WeatherCondition {
	switch {
	case outdoorC < 18:
		return WeatherCool
	case outdoorC < 24:
		return WeatherMild
	case outdoorC < 29:
		return WeatherWarm
	default:
		return WeatherHotHumid
	}
}

// String names the condition.
func (c WeatherCondition) String() string {
	switch c {
	case WeatherCool:
		return "cool"
	case WeatherMild:
		return "mild"
	case WeatherWarm:
		return "warm"
	case WeatherHotHumid:
		return "hot-humid"
	default:
		return fmt.Sprintf("WeatherCondition(%d)", int(c))
	}
}

// Building is one green building served by its own chiller plant.
type Building struct {
	// ID indexes Trace.Buildings.
	ID int
	// Name is a human-readable label.
	Name string
	// BaseLoadKW is the occupancy-driven cooling load at full occupancy and
	// mild weather; WeatherKWPerC adds load per °C above the balance point.
	BaseLoadKW    float64
	WeatherKWPerC float64
}

// Chiller is one machine of a building's plant.
type Chiller struct {
	// ID is the plant-wide chiller index.
	ID int
	// Building is the owning building's ID.
	Building int
	// Model determines capacity and the hidden COP physics.
	Model ModelType
	// Efficiency is the per-chiller multiplier on the model COP curve
	// (manufacturing spread and installation quality, ~±7%).
	Efficiency float64
	// DriftPhase shifts the seasonal maintenance-cycle efficiency drift —
	// the "internal factors" behind importance fluctuation.
	DriftPhase float64
}

// Record is one chiller's operating sample at one timestep. Only running
// chillers emit records.
type Record struct {
	Time      time.Time
	Building  int
	ChillerID int
	// Band buckets the part-load ratio the chiller ran at.
	Band LoadBand
	// Condition and OutdoorTempC describe the weather.
	Condition    WeatherCondition
	OutdoorTempC float64
	// CoolingLoadKW is the thermal load served; COP the measured (noisy)
	// coefficient of performance; OperatingPowerKW the drawn input power.
	CoolingLoadKW    float64
	COP              float64
	OperatingPowerKW float64
	// WaterFlowKgS and WaterDeltaTC are the chilled-water loop sensors.
	WaterFlowKgS float64
	WaterDeltaTC float64
}

// COPEstimator serves COP estimates to the sequencer: typically the MTL
// engine's task models. ok=false means no task covers the pair — the
// sequencer then falls back to the nameplate prior, which is exactly what
// "not conducting" a task costs (Definition 1).
type COPEstimator interface {
	Estimate(chillerID int, band LoadBand, outdoorC float64) (cop float64, ok bool)
}
