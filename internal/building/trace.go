package building

import (
	"fmt"
	"sort"
	"time"
)

// Trace is a generated multi-year chiller-plant operation dataset: the
// substitute for the paper's proprietary traces. Records are chronological;
// the query indexes are built once by Generate.
type Trace struct {
	// Config is the generation configuration (for provenance).
	Config Config
	// Buildings is the fixed plant layout.
	Buildings []Building
	// Records holds every chiller operating sample, time-ordered.
	Records []Record

	chillers []Chiller
	// byTask indexes record positions by (chiller, band); byChillerTime by
	// chiller only, time-ordered.
	byTask        map[taskKey][]int
	byChillerTime map[int][]int
}

type taskKey struct {
	chiller int
	band    LoadBand
}

// buildIndexes precomputes the (chiller, band) and per-chiller lookups.
func (tr *Trace) buildIndexes() {
	tr.byTask = make(map[taskKey][]int)
	tr.byChillerTime = make(map[int][]int)
	for i, r := range tr.Records {
		k := taskKey{r.ChillerID, r.Band}
		tr.byTask[k] = append(tr.byTask[k], i)
		tr.byChillerTime[r.ChillerID] = append(tr.byChillerTime[r.ChillerID], i)
	}
	// Generate appends chronologically, but keep the invariant explicit for
	// any future out-of-order producer.
	for id := range tr.byChillerTime {
		idx := tr.byChillerTime[id]
		sort.SliceStable(idx, func(a, b int) bool {
			return tr.Records[idx[a]].Time.Before(tr.Records[idx[b]].Time)
		})
	}
}

// Chillers lists the plant's machines (a copy; the trace stays immutable).
func (tr *Trace) Chillers() []Chiller {
	out := make([]Chiller, len(tr.chillers))
	copy(out, tr.chillers)
	return out
}

// ChillerByID resolves a chiller, or nil when unknown.
func (tr *Trace) ChillerByID(id int) *Chiller {
	if id < 0 || id >= len(tr.chillers) {
		return nil
	}
	return &tr.chillers[id]
}

// BuildingByID resolves a building, or nil when unknown.
func (tr *Trace) BuildingByID(id int) *Building {
	if id < 0 || id >= len(tr.Buildings) {
		return nil
	}
	return &tr.Buildings[id]
}

// ChillersOf lists the machines of one building, in plant order.
func (tr *Trace) ChillersOf(buildingID int) []Chiller {
	var out []Chiller
	for _, ch := range tr.chillers {
		if ch.Building == buildingID {
			out = append(out, ch)
		}
	}
	return out
}

// RecordsFor returns the positions (into Records) of one chiller's samples
// within one load band — a task's training data.
func (tr *Trace) RecordsFor(chillerID int, band LoadBand) []int {
	return tr.byTask[taskKey{chillerID, band}]
}

// LatestBefore returns the chiller's newest record at or before t, or nil
// when no history exists yet. Records after t are invisible: time-bounded
// lookups never peek into the future.
func (tr *Trace) LatestBefore(chillerID int, t time.Time) *Record {
	idx := tr.byChillerTime[chillerID]
	lo := sort.Search(len(idx), func(i int) bool {
		return tr.Records[idx[i]].Time.After(t)
	})
	if lo == 0 {
		return nil
	}
	return &tr.Records[idx[lo-1]]
}

// TrueCOPFor evaluates the hidden physics for one chiller at an exact
// part-load ratio and outdoor temperature — ground truth for validating the
// learned task models. A zero t evaluates the drift-cycle at its calendar
// origin.
func (tr *Trace) TrueCOPFor(chillerID int, plr, outdoorC float64, t time.Time) (float64, error) {
	ch := tr.ChillerByID(chillerID)
	if ch == nil {
		return 0, fmt.Errorf("%w: id %d", ErrUnknownChiller, chillerID)
	}
	if plr < 0 {
		plr = 0
	} else if plr > 1 {
		plr = 1
	}
	return tr.trueCOP(ch, plr, outdoorC, t), nil
}
