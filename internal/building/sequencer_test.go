package building

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

// truthEstimator answers with the hidden physics at the band midpoint — the
// best any band-granular task model could do.
type truthEstimator struct {
	tr *Trace
	t  time.Time
}

func (e truthEstimator) Estimate(chillerID int, band LoadBand, outdoorC float64) (float64, bool) {
	cop, err := e.tr.TrueCOPFor(chillerID, band.Midpoint(), outdoorC, e.t)
	if err != nil {
		return 0, false
	}
	return cop, true
}

// abstainEstimator covers nothing: the sequencer falls back to the nameplate
// prior for every pair — the "no tasks conducted" extreme of Definition 1.
type abstainEstimator struct{}

func (abstainEstimator) Estimate(int, LoadBand, float64) (float64, bool) { return 0, false }

func testContext(tr *Trace, demandKW float64) DecisionContext {
	mid := tr.Records[len(tr.Records)/2]
	return DecisionContext{
		Building: tr.BuildingByID(0),
		DemandKW: demandKW,
		OutdoorC: mid.OutdoorTempC,
		Time:     mid.Time,
	}
}

func TestDecideBasic(t *testing.T) {
	tr := testTrace(t)
	ctx := testContext(tr, 900)
	d, err := NewSequencer().Decide(tr, ctx, abstainEstimator{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ChillerIDs) == 0 {
		t.Fatal("empty staging")
	}
	if d.PLR <= 0 || d.PLR > 1 {
		t.Fatalf("PLR = %v", d.PLR)
	}
	if d.EstimatedPowerKW <= 0 {
		t.Fatalf("estimated power = %v", d.EstimatedPowerKW)
	}
	var capSum float64
	for _, id := range d.ChillerIDs {
		ch := tr.ChillerByID(id)
		if ch == nil || ch.Building != ctx.Building.ID {
			t.Fatalf("staging includes foreign chiller %d", id)
		}
		capSum += ch.Model.CapacityKW()
	}
	if math.Abs(d.PLR-ctx.DemandKW/capSum) > 1e-9 {
		t.Fatalf("PLR %v inconsistent with demand %v over capacity %v", d.PLR, ctx.DemandKW, capSum)
	}
}

func TestDecideDeterministic(t *testing.T) {
	tr := testTrace(t)
	ctx := testContext(tr, 1400)
	est := truthEstimator{tr, ctx.Time}
	a, err := NewSequencer().Decide(tr, ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSequencer().Decide(tr, ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs, different decisions: %+v vs %+v", a, b)
	}
}

// TestDecideLowDemandFallback: demand so small every staging sits below
// MinPLR must still produce a decision (something has to serve the load).
func TestDecideLowDemandFallback(t *testing.T) {
	tr := testTrace(t)
	ctx := testContext(tr, 30)
	d, err := NewSequencer().Decide(tr, ctx, abstainEstimator{})
	if err != nil {
		t.Fatal(err)
	}
	if d.PLR >= NewSequencer().MinPLR {
		t.Fatalf("PLR %v should be below MinPLR for a 30 kW demand", d.PLR)
	}
}

func TestDecideErrors(t *testing.T) {
	tr := testTrace(t)
	seq := NewSequencer()
	mid := testContext(tr, 900)

	empty := &Trace{}
	if _, err := seq.Decide(empty, mid, abstainEstimator{}); !errors.Is(err, ErrNoRecords) {
		t.Fatalf("empty trace err = %v", err)
	}
	bad := mid
	bad.Building = nil
	if _, err := seq.Decide(tr, bad, abstainEstimator{}); !errors.Is(err, ErrBadContext) {
		t.Fatalf("nil building err = %v", err)
	}
	bad = mid
	bad.DemandKW = 0
	if _, err := seq.Decide(tr, bad, abstainEstimator{}); !errors.Is(err, ErrBadContext) {
		t.Fatalf("zero demand err = %v", err)
	}
	bad = mid
	bad.DemandKW = -5
	if _, err := seq.Decide(tr, bad, abstainEstimator{}); !errors.Is(err, ErrBadContext) {
		t.Fatalf("negative demand err = %v", err)
	}
	bad = mid
	bad.DemandKW = 1e9 // beyond plant capacity
	if _, err := seq.Decide(tr, bad, abstainEstimator{}); !errors.Is(err, ErrBadContext) {
		t.Fatalf("overload err = %v", err)
	}
	bad = mid
	bad.Building = &Building{ID: 42}
	if _, err := seq.Decide(tr, bad, abstainEstimator{}); !errors.Is(err, ErrBadContext) {
		t.Fatalf("unknown building err = %v", err)
	}
}

func TestDecisionPerformanceBounds(t *testing.T) {
	tr := testTrace(t)
	seq := NewSequencer()
	demands := []float64{300, 900, 1600, 2600, 4000}
	for _, demand := range demands {
		ctx := testContext(tr, demand)
		for name, est := range map[string]COPEstimator{
			"truth":   truthEstimator{tr, ctx.Time},
			"abstain": abstainEstimator{},
		} {
			h, err := DecisionPerformance(tr, seq, ctx, est)
			if err != nil {
				t.Fatal(err)
			}
			if h <= 0 || h > 1+1e-12 {
				t.Fatalf("%s at %v kW: H = %v outside (0, 1]", name, demand, h)
			}
		}
	}
}

// TestTruthEstimatorHelps: averaged over many contexts, band-midpoint truth
// must make decisions at least as good as the crude nameplate prior — this
// gap is what gives tasks their importance.
func TestTruthEstimatorHelps(t *testing.T) {
	tr := testTrace(t)
	seq := NewSequencer()
	var truthSum, abstainSum float64
	n := 0
	for _, demand := range []float64{400, 900, 1500, 2200, 3000} {
		for _, b := range tr.Buildings {
			ctx := testContext(tr, demand)
			ctx.Building = tr.BuildingByID(b.ID)
			ht, err := DecisionPerformance(tr, seq, ctx, truthEstimator{tr, ctx.Time})
			if err != nil {
				t.Fatal(err)
			}
			ha, err := DecisionPerformance(tr, seq, ctx, abstainEstimator{})
			if err != nil {
				t.Fatal(err)
			}
			truthSum += ht
			abstainSum += ha
			n++
		}
	}
	if truthSum/float64(n) < abstainSum/float64(n) {
		t.Fatalf("truth estimator underperforms the prior: %v < %v",
			truthSum/float64(n), abstainSum/float64(n))
	}
}

func TestSavingPerformanceBounds(t *testing.T) {
	tr := testTrace(t)
	seq := NewSequencer()
	for _, demand := range []float64{300, 900, 1600, 2600} {
		ctx := testContext(tr, demand)
		sv, err := SavingPerformance(tr, seq, ctx, truthEstimator{tr, ctx.Time})
		if err != nil {
			t.Fatal(err)
		}
		if sv < 0 || sv > 1 {
			t.Fatalf("saving performance %v outside [0, 1]", sv)
		}
	}
}

func TestPerformanceErrorPropagation(t *testing.T) {
	tr := testTrace(t)
	seq := NewSequencer()
	bad := testContext(tr, -1)
	if _, err := DecisionPerformance(tr, seq, bad, abstainEstimator{}); !errors.Is(err, ErrBadContext) {
		t.Fatalf("DecisionPerformance err = %v", err)
	}
	if _, err := SavingPerformance(tr, seq, bad, abstainEstimator{}); !errors.Is(err, ErrBadContext) {
		t.Fatalf("SavingPerformance err = %v", err)
	}
	overload := testContext(tr, 1e9)
	if _, err := DecisionPerformance(tr, seq, overload, abstainEstimator{}); !errors.Is(err, ErrBadContext) {
		t.Fatalf("overload err = %v", err)
	}
}
