package building

import (
	"math"
	"sync"
	"testing"
)

// testTrace memoizes a small trace shared by read-only tests.
var (
	testTraceOnce sync.Once
	testTraceVal  *Trace
	testTraceErr  error
)

func testTrace(t *testing.T) *Trace {
	t.Helper()
	testTraceOnce.Do(func() {
		testTraceVal, testTraceErr = Generate(Config{Seed: 1, StartYear: 2015, Years: 1, StepHours: 3})
	})
	if testTraceErr != nil {
		t.Fatal(testTraceErr)
	}
	return testTraceVal
}

func TestModelTypeStrings(t *testing.T) {
	cases := []struct {
		m    ModelType
		want string
	}{
		{ModelCentrifugal, "centrifugal"},
		{ModelScrew, "screw"},
		{ModelAbsorption, "absorption"},
		{ModelType(7), "ModelType(7)"},
		{ModelType(-1), "ModelType(-1)"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("ModelType(%d).String() = %q, want %q", int(c.m), got, c.want)
		}
	}
}

func TestModelSpecsSane(t *testing.T) {
	for _, m := range []ModelType{ModelCentrifugal, ModelScrew, ModelAbsorption} {
		if m.CapacityKW() <= 0 {
			t.Errorf("%v capacity = %v", m, m.CapacityKW())
		}
		if m.RatedCOP() <= 0 {
			t.Errorf("%v rated COP = %v", m, m.RatedCOP())
		}
	}
	// Absorption machines are heat-driven: far lower COP than electric ones.
	if !(ModelAbsorption.RatedCOP() < ModelScrew.RatedCOP() &&
		ModelScrew.RatedCOP() < ModelCentrifugal.RatedCOP()) {
		t.Errorf("rated COP ordering violated: %v %v %v",
			ModelCentrifugal.RatedCOP(), ModelScrew.RatedCOP(), ModelAbsorption.RatedCOP())
	}
}

func TestBandOf(t *testing.T) {
	cases := []struct {
		plr  float64
		want LoadBand
	}{
		{0, BandLow},
		{0.3, BandLow},
		{0.4499, BandLow},
		{0.45, BandMid},
		{0.6, BandMid},
		{0.7499, BandMid},
		{0.75, BandHigh},
		{0.9, BandHigh},
		{1, BandHigh},
	}
	for _, c := range cases {
		if got := BandOf(c.plr); got != c.want {
			t.Errorf("BandOf(%v) = %v, want %v", c.plr, got, c.want)
		}
	}
}

func TestBandMidpointsInsideBands(t *testing.T) {
	for _, b := range []LoadBand{BandLow, BandMid, BandHigh} {
		mid := b.Midpoint()
		if BandOf(mid) != b {
			t.Errorf("midpoint %v of band %v falls in band %v", mid, b, BandOf(mid))
		}
	}
	// The exact midpoints are shared with the MTL engine's evaluation points.
	if BandLow.Midpoint() != 0.30 || BandMid.Midpoint() != 0.60 || BandHigh.Midpoint() != 0.85 {
		t.Errorf("midpoints = %v %v %v", BandLow.Midpoint(), BandMid.Midpoint(), BandHigh.Midpoint())
	}
}

func TestBandStrings(t *testing.T) {
	cases := []struct {
		b    LoadBand
		want string
	}{
		{BandLow, "low"},
		{BandMid, "mid"},
		{BandHigh, "high"},
		{LoadBand(9), "LoadBand(9)"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("LoadBand(%d).String() = %q, want %q", int(c.b), got, c.want)
		}
	}
}

func TestConditionOf(t *testing.T) {
	cases := []struct {
		temp float64
		want WeatherCondition
	}{
		{-5, WeatherCool},
		{17.99, WeatherCool},
		{18, WeatherMild},
		{23.99, WeatherMild},
		{24, WeatherWarm},
		{28.99, WeatherWarm},
		{29, WeatherHotHumid},
		{40, WeatherHotHumid},
	}
	for _, c := range cases {
		if got := ConditionOf(c.temp); got != c.want {
			t.Errorf("ConditionOf(%v) = %v, want %v", c.temp, got, c.want)
		}
	}
}

func TestConditionStrings(t *testing.T) {
	cases := []struct {
		c    WeatherCondition
		want string
	}{
		{WeatherCool, "cool"},
		{WeatherMild, "mild"},
		{WeatherWarm, "warm"},
		{WeatherHotHumid, "hot-humid"},
		{WeatherCondition(9), "WeatherCondition(9)"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("WeatherCondition(%d).String() = %q, want %q", int(c.c), got, c.want)
		}
	}
}

// TestTrueCOPPhysicsShape checks the hidden COP model behaves like chiller
// physics: efficiency peaks near the model's optimal PLR and electric
// machines lose efficiency as outdoor temperature (condenser lift) rises.
func TestTrueCOPPhysicsShape(t *testing.T) {
	tr := testTrace(t)
	for _, ch := range tr.Chillers() {
		spec := modelSpecs[ch.Model]
		atOpt, err := tr.TrueCOPFor(ch.ID, spec.optPLR, 24, tr.Records[0].Time)
		if err != nil {
			t.Fatal(err)
		}
		for _, plr := range []float64{0.15, 1.0} {
			off, err := tr.TrueCOPFor(ch.ID, plr, 24, tr.Records[0].Time)
			if err != nil {
				t.Fatal(err)
			}
			if off > atOpt+1e-9 {
				t.Errorf("chiller %d: COP at plr=%v (%v) beats optimum %v (%v)",
					ch.ID, plr, off, spec.optPLR, atOpt)
			}
		}
		cool, err := tr.TrueCOPFor(ch.ID, spec.optPLR, 18, tr.Records[0].Time)
		if err != nil {
			t.Fatal(err)
		}
		hot, err := tr.TrueCOPFor(ch.ID, spec.optPLR, 33, tr.Records[0].Time)
		if err != nil {
			t.Fatal(err)
		}
		if cool < hot {
			t.Errorf("chiller %d: COP should not improve with condenser lift (18°C %v < 33°C %v)",
				ch.ID, cool, hot)
		}
	}
}

func TestTrueCOPBounded(t *testing.T) {
	tr := testTrace(t)
	for _, ch := range tr.Chillers() {
		for _, plr := range []float64{0, 0.25, 0.5, 0.75, 1} {
			for _, temp := range []float64{-10, 0, 15, 24, 30, 45} {
				cop, err := tr.TrueCOPFor(ch.ID, plr, temp, tr.Records[0].Time)
				if err != nil {
					t.Fatal(err)
				}
				if cop < 0.3 || cop > 8 || math.IsNaN(cop) {
					t.Fatalf("chiller %d plr=%v temp=%v: COP %v out of [0.3, 8]",
						ch.ID, plr, temp, cop)
				}
			}
		}
	}
}
