package building

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/mathx"
)

// Config parameterizes trace generation.
type Config struct {
	// Seed drives every stochastic component; identical configs generate
	// identical traces.
	Seed int64
	// StartYear is the first simulated calendar year (default 2015).
	StartYear int
	// Years is the trace length (the paper's dataset spans 4 years).
	Years int
	// StepHours is the sampling period in hours (default 1). Use a divisor
	// of 24 so daily decision epochs land on sampled instants.
	StepHours int
}

// DefaultConfig mirrors the paper's dataset shape: 4 years of hourly
// records for 3 buildings.
func DefaultConfig() Config {
	return Config{Seed: 1, StartYear: 2015, Years: 4, StepHours: 1}
}

// plantSpec is the fixed 3-building, 17-chiller plant layout. The mix of
// model types within and across buildings is what makes tasks related
// (shared physics → transferable knowledge).
var plantSpec = []struct {
	name    string
	baseKW  float64
	sensKW  float64
	chiller []ModelType
}{
	{"tower-a", 900, 170, []ModelType{ModelCentrifugal, ModelCentrifugal, ModelCentrifugal, ModelScrew, ModelScrew, ModelAbsorption}},
	{"tower-b", 850, 160, []ModelType{ModelCentrifugal, ModelCentrifugal, ModelScrew, ModelScrew, ModelAbsorption, ModelAbsorption}},
	{"plaza-c", 700, 140, []ModelType{ModelCentrifugal, ModelCentrifugal, ModelScrew, ModelScrew, ModelAbsorption}},
}

// Physics and noise constants of the generator.
const (
	// weatherMeanC / seasonal / diurnal shape a subtropical climate.
	weatherMeanC      = 23.0
	weatherSeasonAmpC = 8.0
	weatherDiurnalAmp = 4.2
	// balancePointC is the outdoor temperature above which weather adds
	// cooling load.
	balancePointC = 14.0
	// dispatchHeadroom derates nameplate capacity when staging chillers.
	dispatchHeadroom = 0.92
	// copNoiseStd is the relative sensor noise on recorded COP.
	copNoiseStd = 0.04
	// driftAmp is the seasonal per-chiller efficiency drift amplitude.
	driftAmp = 0.03
	// designDeltaTC is the chilled-water design temperature difference.
	designDeltaTC = 5.5
	// waterHeatCapacity is c_p of water in kJ/(kg·K).
	waterHeatCapacity = 4.186
)

// Generate builds the synthetic multi-year operation trace. It is
// deterministic in cfg.Seed: the single RNG is consumed in a fixed order
// (plant parameters first, then per-timestep weather, load and sensor
// noise).
func Generate(cfg Config) (*Trace, error) {
	if cfg.Years < 1 {
		return nil, fmt.Errorf("building: years %d, need ≥ 1", cfg.Years)
	}
	if cfg.StepHours < 1 {
		cfg.StepHours = 1
	}
	if cfg.StartYear == 0 {
		cfg.StartYear = 2015
	}
	rng := mathx.NewRand(cfg.Seed)

	tr := &Trace{Config: cfg}
	for i, spec := range plantSpec {
		tr.Buildings = append(tr.Buildings, Building{
			ID:            i,
			Name:          spec.name,
			BaseLoadKW:    spec.baseKW,
			WeatherKWPerC: spec.sensKW,
		})
	}
	for bi, spec := range plantSpec {
		for _, model := range spec.chiller {
			tr.chillers = append(tr.chillers, Chiller{
				ID:         len(tr.chillers),
				Building:   bi,
				Model:      model,
				Efficiency: 0.85 + 0.30*rng.Float64(),
				DriftPhase: 2 * math.Pi * rng.Float64(),
			})
		}
	}

	start := time.Date(cfg.StartYear, time.January, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(cfg.Years, 0, 0)
	step := time.Duration(cfg.StepHours) * time.Hour

	// AR(1) states: one weather residual, one load residual per building.
	var weatherAR float64
	loadAR := make([]float64, len(tr.Buildings))

	for t := start; t.Before(end); t = t.Add(step) {
		weatherAR = 0.92*weatherAR + rng.NormFloat64()*0.9
		outdoorC := trueWeather(t) + weatherAR
		cond := ConditionOf(outdoorC)
		for bi := range tr.Buildings {
			loadAR[bi] = 0.8*loadAR[bi] + rng.NormFloat64()*0.02
			demand := buildingDemand(&tr.Buildings[bi], t, outdoorC) * (1 + loadAR[bi])
			if demand < 80 {
				demand = 80
			}
			tr.dispatch(bi, t, demand, outdoorC, cond, rng)
		}
	}
	if len(tr.Records) == 0 {
		return nil, ErrNoRecords
	}
	tr.buildIndexes()
	return tr, nil
}

// trueWeather is the deterministic seasonal + diurnal temperature component.
func trueWeather(t time.Time) float64 {
	yearFrac := float64(t.YearDay()-1) / 365
	hour := float64(t.Hour())
	// Season peaks in mid-July (day ~197), diurnal cycle peaks at 15:00.
	season := weatherSeasonAmpC * math.Sin(2*math.Pi*(yearFrac-0.29))
	diurnal := weatherDiurnalAmp * math.Cos(2*math.Pi*(hour-15)/24)
	return weatherMeanC + season + diurnal
}

// occupancy is the schedule factor: office hours on weekdays dominate.
func occupancy(t time.Time) float64 {
	hour := t.Hour()
	switch t.Weekday() {
	case time.Saturday, time.Sunday:
		if hour >= 8 && hour <= 19 {
			return 0.85
		}
		return 0.35
	default:
		switch {
		case hour >= 7 && hour <= 19:
			return 1.0
		case hour == 6 || hour == 20 || hour == 21:
			return 0.60
		default:
			return 0.35
		}
	}
}

// buildingDemand is the noise-free cooling demand of one building.
func buildingDemand(b *Building, t time.Time, outdoorC float64) float64 {
	weather := outdoorC - balancePointC
	if weather < 0 {
		weather = 0
	}
	return occupancy(t) * (b.BaseLoadKW + b.WeatherKWPerC*weather)
}

// dispatch stages the building's chillers for one timestep and emits one
// record per running machine. The staging rule is the plant's real-world
// policy: run the fewest chillers (in a monthly-rotated priority order)
// whose derated capacity covers the demand, and share load in proportion to
// capacity so all running machines see the same part-load ratio.
func (tr *Trace) dispatch(buildingID int, t time.Time, demandKW, outdoorC float64, cond WeatherCondition, rng *rand.Rand) {
	var chs []*Chiller
	for i := range tr.chillers {
		if tr.chillers[i].Building == buildingID {
			chs = append(chs, &tr.chillers[i])
		}
	}
	if len(chs) == 0 {
		return
	}
	// Monthly lead rotation balances machine wear — and spreads operating
	// data across chillers and bands.
	months := (t.Year()-tr.Config.StartYear)*12 + int(t.Month()) - 1
	offset := months % len(chs)
	order := make([]*Chiller, 0, len(chs))
	order = append(order, chs[offset:]...)
	order = append(order, chs[:offset]...)

	var capSum float64
	running := 0
	for _, ch := range order {
		capSum += ch.Model.CapacityKW()
		running++
		if demandKW <= dispatchHeadroom*capSum {
			break
		}
	}
	plr := demandKW / capSum
	if plr > 1 {
		plr = 1
	}
	band := BandOf(plr)
	for _, ch := range order[:running] {
		load := plr * ch.Model.CapacityKW()
		cop := tr.trueCOP(ch, plr, outdoorC, t) * (1 + rng.NormFloat64()*copNoiseStd)
		if cop < 0.3 {
			cop = 0.3
		}
		deltaT := designDeltaTC + rng.NormFloat64()*0.4
		if deltaT < 3 {
			deltaT = 3
		}
		tr.Records = append(tr.Records, Record{
			Time:             t,
			Building:         buildingID,
			ChillerID:        ch.ID,
			Band:             band,
			Condition:        cond,
			OutdoorTempC:     outdoorC,
			CoolingLoadKW:    load,
			COP:              cop,
			OperatingPowerKW: load / cop,
			WaterFlowKgS:     load / (waterHeatCapacity * deltaT),
			WaterDeltaTC:     deltaT,
		})
	}
}

// trueCOP is the hidden physics: model base curve × part-load quadratic ×
// condenser-lift temperature factor × per-chiller efficiency × seasonal
// maintenance drift.
func (tr *Trace) trueCOP(ch *Chiller, plr, outdoorC float64, t time.Time) float64 {
	spec := modelSpecs[ch.Model]
	partLoad := 1 - spec.curvature*(plr-spec.optPLR)*(plr-spec.optPLR)
	if partLoad < 0.25 {
		partLoad = 0.25
	}
	tempFactor := 1 - spec.tempSens*(outdoorC-24)
	if tempFactor < 0.6 {
		tempFactor = 0.6
	} else if tempFactor > 1.25 {
		tempFactor = 1.25
	}
	yearFrac := float64(t.YearDay()-1) / 365
	drift := 1 + driftAmp*math.Sin(2*math.Pi*yearFrac+ch.DriftPhase)
	cop := spec.baseCOP * partLoad * tempFactor * ch.Efficiency * drift
	if cop < 0.3 {
		cop = 0.3
	} else if cop > 8 {
		cop = 8
	}
	return cop
}
