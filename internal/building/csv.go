package building

import (
	"encoding/csv"
	"io"
	"strconv"
	"time"
)

// CSVHeader is the column order of WriteCSV.
var CSVHeader = []string{
	"time",
	"building",
	"chiller_id",
	"model",
	"band",
	"condition",
	"outdoor_temp_c",
	"cooling_load_kw",
	"cop",
	"operating_power_kw",
	"water_flow_kgs",
	"water_delta_t_c",
}

// WriteCSV emits the trace as CSV: one header plus one row per record.
// Identical traces serialize to identical bytes, so the CSV doubles as a
// determinism witness for the generator.
func (tr *Trace) WriteCSV(w io.Writer) error {
	if len(tr.Records) == 0 {
		return ErrNoRecords
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	row := make([]string, len(CSVHeader))
	for i := range tr.Records {
		r := &tr.Records[i]
		model := ModelType(-1)
		if ch := tr.ChillerByID(r.ChillerID); ch != nil {
			model = ch.Model
		}
		row[0] = r.Time.Format(time.RFC3339)
		row[1] = strconv.Itoa(r.Building)
		row[2] = strconv.Itoa(r.ChillerID)
		row[3] = model.String()
		row[4] = r.Band.String()
		row[5] = r.Condition.String()
		row[6] = strconv.FormatFloat(r.OutdoorTempC, 'f', 3, 64)
		row[7] = strconv.FormatFloat(r.CoolingLoadKW, 'f', 3, 64)
		row[8] = strconv.FormatFloat(r.COP, 'f', 4, 64)
		row[9] = strconv.FormatFloat(r.OperatingPowerKW, 'f', 3, 64)
		row[10] = strconv.FormatFloat(r.WaterFlowKgS, 'f', 4, 64)
		row[11] = strconv.FormatFloat(r.WaterDeltaTC, 'f', 3, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
