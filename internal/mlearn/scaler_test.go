package mlearn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestStandardScaler(t *testing.T) {
	rows := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	var s StandardScaler
	if err := s.Fit(rows); err != nil {
		t.Fatal(err)
	}
	out, err := s.TransformAll(rows)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		col := []float64{out[0][j], out[1][j], out[2][j]}
		if m := mathx.Mean(col); math.Abs(m) > 1e-12 {
			t.Errorf("col %d mean = %v, want 0", j, m)
		}
		if sd := mathx.StdDev(col); math.Abs(sd-1) > 1e-12 {
			t.Errorf("col %d std = %v, want 1", j, sd)
		}
	}
	// Round trip.
	back, err := s.Inverse(out[1])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back[0]-2) > 1e-12 || math.Abs(back[1]-20) > 1e-12 {
		t.Fatalf("Inverse round trip = %v", back)
	}
}

func TestStandardScalerConstantFeature(t *testing.T) {
	var s StandardScaler
	if err := s.Fit([][]float64{{5, 1}, {5, 2}}); err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform([]float64{5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Fatalf("constant feature transform = %v", out)
	}
	if out[0] != 0 {
		t.Fatalf("constant feature should center to 0, got %v", out[0])
	}
}

func TestStandardScalerErrors(t *testing.T) {
	var s StandardScaler
	if err := s.Fit(nil); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty fit err = %v", err)
	}
	if _, err := s.Transform([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted transform err = %v", err)
	}
	if _, err := s.Inverse([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted inverse err = %v", err)
	}
	if err := s.Fit([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("ragged fit err = %v", err)
	}
	if err := s.Fit([][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transform([]float64{1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("dim mismatch err = %v", err)
	}
	if _, err := s.Inverse([]float64{1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("inverse dim mismatch err = %v", err)
	}
}
