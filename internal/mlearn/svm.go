package mlearn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mathx"
)

// SVM is a linear support vector machine with the squared hinge loss of the
// paper's Eq. (8):
//
//	L_k(w) = ½‖w‖² + ½·max{0, 1 − y_k wᵀx_k}²
//
// trained by stochastic sub-gradient descent with a Pegasos-style decaying
// step size. Labels must be −1/+1. This is the DCTA local process F₂ (§IV-B),
// chosen by the paper over AdaBoost and random forests.
type SVM struct {
	// C scales the data term relative to the ½‖w‖² regularizer.
	C float64
	// Epochs is the number of passes over the training data.
	Epochs int
	// LearningRate is the initial step size; the step at update t is
	// LearningRate / (1 + t·Decay).
	LearningRate float64
	// Decay controls the step-size schedule.
	Decay float64
	// Seed drives the shuffle order; the same seed reproduces training.
	Seed int64

	weights   []float64
	intercept float64
	fitted    bool
}

// NewSVM returns an SVM with the defaults used across the experiments.
// C is chosen so the data term dominates the ½‖w‖² regularizer of Eq. (8)
// on datasets of the experiments' scale.
func NewSVM() *SVM {
	return &SVM{C: 10.0, Epochs: 60, LearningRate: 0.05, Decay: 1e-3, Seed: 1}
}

// Fit trains the SVM on d. Targets must be −1 or +1.
func (s *SVM) Fit(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDataset
	}
	for i, y := range d.Y {
		if y != -1 && y != 1 {
			return fmt.Errorf("svm fit: label %v at row %d, want -1/+1: %w", y, i, ErrBadShape)
		}
	}
	dim := d.Dim()
	if len(s.weights) != dim { // allow warm starts of matching dimension
		s.weights = make([]float64, dim)
		s.intercept = 0
	}
	rng := rand.New(rand.NewSource(s.Seed))
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t := 0
	for epoch := 0; epoch < s.Epochs; epoch++ {
		mathx.Shuffle(rng, idx)
		for _, i := range idx {
			t++
			lr := s.LearningRate / (1 + float64(t)*s.Decay)
			x, y := d.X[i], d.Y[i]
			margin := y * (mathx.Dot(s.weights, x) + s.intercept)
			// Sub-gradient of the Eq. (8) regularizer ½‖w‖² is w.
			mathx.Scale(1-lr, s.weights)
			if margin < 1 {
				// d/dw ½C(1−m)² = −C(1−m)·y·x.
				g := s.C * (1 - margin)
				mathx.AXPY(lr*g*y, x, s.weights)
				s.intercept += lr * g * y
			}
		}
	}
	s.fitted = true
	return nil
}

// Score returns the signed margin wᵀx + b.
func (s *SVM) Score(x []float64) (float64, error) {
	if !s.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != len(s.weights) {
		return 0, fmt.Errorf("svm score: %d features, want %d: %w",
			len(x), len(s.weights), ErrBadShape)
	}
	return mathx.Dot(s.weights, x) + s.intercept, nil
}

// Classify returns +1 for a non-negative margin, else −1.
func (s *SVM) Classify(x []float64) (float64, error) {
	m, err := s.Score(x)
	if err != nil {
		return 0, err
	}
	if m >= 0 {
		return 1, nil
	}
	return -1, nil
}

// Probability squashes the margin through a logistic link, giving a
// calibrated-ish confidence in [0,1] that the label is +1.
func (s *SVM) Probability(x []float64) (float64, error) {
	m, err := s.Score(x)
	if err != nil {
		return 0, err
	}
	return 1 / (1 + math.Exp(-m)), nil
}

// Loss evaluates the paper's Eq. (8) averaged over d with the current weights.
func (s *SVM) Loss(d *Dataset) (float64, error) {
	if !s.fitted {
		return 0, ErrNotFitted
	}
	if d.Len() == 0 {
		return 0, ErrEmptyDataset
	}
	regTerm := 0.5 * mathx.Dot(s.weights, s.weights)
	var total float64
	for i, x := range d.X {
		margin := d.Y[i] * (mathx.Dot(s.weights, x) + s.intercept)
		h := math.Max(0, 1-margin)
		total += regTerm + 0.5*s.C*h*h
	}
	return total / float64(d.Len()), nil
}

// Weights returns a copy of the learned weight vector.
func (s *SVM) Weights() []float64 { return mathx.Clone(s.weights) }

var _ Classifier = (*SVM)(nil)
