package mlearn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mathx"
)

// KMeans is Lloyd's algorithm with k-means++ initialization. The paper's
// discussion section (§VII) describes an offline mode that clusters
// historical samples in advance; this type implements that mode.
type KMeans struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds Lloyd iterations.
	MaxIter int
	// Seed drives the k-means++ initialization.
	Seed int64

	centroids [][]float64
	fitted    bool
}

// NewKMeans returns a k-means model with default iteration budget.
func NewKMeans(k int) *KMeans { return &KMeans{K: k, MaxIter: 100, Seed: 1} }

// Fit clusters the rows of x.
func (m *KMeans) Fit(x [][]float64) error {
	if len(x) == 0 {
		return ErrEmptyDataset
	}
	if m.K < 1 {
		m.K = 1
	}
	if m.K > len(x) {
		m.K = len(x)
	}
	if m.MaxIter < 1 {
		m.MaxIter = 1
	}
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return fmt.Errorf("kmeans fit row %d: %w", i, ErrBadShape)
		}
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.centroids = m.initPlusPlus(rng, x)
	assign := make([]int, len(x))
	for iter := 0; iter < m.MaxIter; iter++ {
		changed := false
		for i, row := range x {
			best := m.nearest(row)
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, m.K)
		sums := make([][]float64, m.K)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, row := range x {
			c := assign[i]
			counts[c]++
			mathx.AXPY(1, row, sums[c])
		}
		for c := 0; c < m.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				m.centroids[c] = mathx.Clone(x[rng.Intn(len(x))])
				continue
			}
			mathx.Scale(1/float64(counts[c]), sums[c])
			m.centroids[c] = sums[c]
		}
	}
	m.fitted = true
	return nil
}

func (m *KMeans) initPlusPlus(rng *rand.Rand, x [][]float64) [][]float64 {
	centroids := make([][]float64, 0, m.K)
	centroids = append(centroids, mathx.Clone(x[rng.Intn(len(x))]))
	dist := make([]float64, len(x))
	for len(centroids) < m.K {
		var total float64
		for i, row := range x {
			d := math.Inf(1)
			for _, c := range centroids {
				if v := mathx.SquaredDistance(row, c); v < d {
					d = v
				}
			}
			dist[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, mathx.Clone(x[rng.Intn(len(x))]))
			continue
		}
		pick := mathx.WeightedChoice(rng, dist)
		centroids = append(centroids, mathx.Clone(x[pick]))
	}
	return centroids
}

func (m *KMeans) nearest(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range m.centroids {
		if d := mathx.SquaredDistance(x, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Assign returns the cluster index of x.
func (m *KMeans) Assign(x []float64) (int, error) {
	if !m.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != len(m.centroids[0]) {
		return 0, fmt.Errorf("kmeans assign: %d features, want %d: %w",
			len(x), len(m.centroids[0]), ErrBadShape)
	}
	return m.nearest(x), nil
}

// Centroids returns deep copies of the fitted cluster centers.
func (m *KMeans) Centroids() [][]float64 {
	out := make([][]float64, len(m.centroids))
	for i, c := range m.centroids {
		out[i] = mathx.Clone(c)
	}
	return out
}

// Inertia returns the total within-cluster squared distance for rows x.
func (m *KMeans) Inertia(x [][]float64) (float64, error) {
	if !m.fitted {
		return 0, ErrNotFitted
	}
	var total float64
	for i, row := range x {
		c, err := m.Assign(row)
		if err != nil {
			return 0, fmt.Errorf("row %d: %w", i, err)
		}
		total += mathx.SquaredDistance(row, m.centroids[c])
	}
	return total, nil
}
