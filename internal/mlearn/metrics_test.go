package mlearn

import (
	"errors"
	"math"
	"testing"
)

// fixedClassifier returns a canned label per row index via feature 0.
type fixedClassifier struct{}

func (fixedClassifier) Fit(*Dataset) error { return nil }
func (fixedClassifier) Score(x []float64) (float64, error) {
	return x[0], nil
}
func (fixedClassifier) Classify(x []float64) (float64, error) {
	if x[0] >= 0 {
		return 1, nil
	}
	return -1, nil
}

func TestEvaluateBinary(t *testing.T) {
	// Predictions from sign(x0): rows are (pred, truth) pairs:
	// (+1,+1)=TP, (+1,-1)=FP, (-1,-1)=TN, (-1,+1)=FN, (+1,+1)=TP.
	d, _ := NewDataset(
		[][]float64{{1}, {1}, {-1}, {-1}, {2}},
		[]float64{1, -1, -1, 1, 1},
	)
	m, err := EvaluateBinary(fixedClassifier{}, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.TP != 2 || m.FP != 1 || m.TN != 1 || m.FN != 1 {
		t.Fatalf("confusion = %+v", m)
	}
	if math.Abs(m.Accuracy-0.6) > 1e-12 {
		t.Fatalf("accuracy = %v", m.Accuracy)
	}
	if math.Abs(m.Precision-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", m.Precision)
	}
	if math.Abs(m.Recall-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", m.Recall)
	}
	if math.Abs(m.F1-2.0/3) > 1e-12 {
		t.Fatalf("f1 = %v", m.F1)
	}
}

func TestEvaluateBinaryDegenerate(t *testing.T) {
	if _, err := EvaluateBinary(fixedClassifier{}, &Dataset{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty err = %v", err)
	}
	// All-negative predictions and truths: precision/recall/F1 stay 0.
	d, _ := NewDataset([][]float64{{-1}, {-2}}, []float64{-1, -1})
	m, err := EvaluateBinary(fixedClassifier{}, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy != 1 || m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Fatalf("degenerate metrics = %+v", m)
	}
}

func TestEvaluateBinaryOnSVM(t *testing.T) {
	d := linearlySeparable(31, 200, 0.5)
	svm := NewSVM()
	if err := svm.Fit(d); err != nil {
		t.Fatal(err)
	}
	m, err := EvaluateBinary(svm, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.F1 < 0.95 {
		t.Fatalf("separable F1 = %v", m.F1)
	}
}
