package mlearn

import (
	"fmt"
	"math/rand"

	"repro/internal/mathx"
)

// KFoldSplit partitions [0, n) into k shuffled folds of near-equal size.
// k is clamped to [2, n].
func KFoldSplit(rng *rand.Rand, n, k int) [][]int {
	if n < 2 {
		return [][]int{{0}}
	}
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}

// CrossValidateClassifier runs k-fold cross-validation: for each fold, a
// fresh classifier from `factory` is trained on the other folds and scored
// on the held-out one. It returns the mean and standard deviation of the
// fold accuracies — the robust way to compare the §IV-B local-process
// candidates when epochs are scarce.
func CrossValidateClassifier(factory func() Classifier, d *Dataset, k int, seed int64) (mean, std float64, err error) {
	if d == nil || d.Len() < 2 {
		return 0, 0, ErrEmptyDataset
	}
	folds := KFoldSplit(mathx.NewRand(seed), d.Len(), k)
	accs := make([]float64, 0, len(folds))
	for fi, test := range folds {
		var train []int
		for fj, f := range folds {
			if fj != fi {
				train = append(train, f...)
			}
		}
		c := factory()
		if err := c.Fit(d.Subset(train)); err != nil {
			return 0, 0, fmt.Errorf("fold %d fit: %w", fi, err)
		}
		acc, err := Accuracy(c, d.Subset(test))
		if err != nil {
			return 0, 0, fmt.Errorf("fold %d score: %w", fi, err)
		}
		accs = append(accs, acc)
	}
	return mathx.Mean(accs), mathx.StdDev(accs), nil
}
