package mlearn

import (
	"fmt"
	"sort"

	"repro/internal/mathx"
)

// KNN is a k-nearest-neighbors model over Euclidean distance. The paper's
// environment definition step (§III-C, "e = kNN(ℰ, Z)") and its online
// sensing mode (§VII) are built on this type; it also doubles as a simple
// regressor/classifier.
type KNN struct {
	// K is the number of neighbors consulted.
	K int

	points  [][]float64
	targets []float64
	fitted  bool
}

// NewKNN returns a kNN model with the given neighborhood size.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit memorizes the dataset (kNN is a lazy learner).
func (k *KNN) Fit(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDataset
	}
	if k.K < 1 {
		k.K = 1
	}
	k.points = d.X
	k.targets = d.Y
	k.fitted = true
	return nil
}

// Neighbor pairs a stored-sample index with its distance to the query.
type Neighbor struct {
	Index    int
	Distance float64
}

// Neighbors returns the K nearest stored samples to x, closest first.
func (k *KNN) Neighbors(x []float64) ([]Neighbor, error) {
	if !k.fitted {
		return nil, ErrNotFitted
	}
	if len(x) != len(k.points[0]) {
		return nil, fmt.Errorf("knn: %d features, want %d: %w",
			len(x), len(k.points[0]), ErrBadShape)
	}
	all := make([]Neighbor, len(k.points))
	for i, p := range k.points {
		all[i] = Neighbor{Index: i, Distance: mathx.EuclideanDistance(x, p)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Distance != all[b].Distance {
			return all[a].Distance < all[b].Distance
		}
		return all[a].Index < all[b].Index
	})
	kk := k.K
	if kk > len(all) {
		kk = len(all)
	}
	return all[:kk], nil
}

// Predict averages the K nearest targets (regression).
func (k *KNN) Predict(x []float64) (float64, error) {
	nb, err := k.Neighbors(x)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, n := range nb {
		s += k.targets[n.Index]
	}
	return s / float64(len(nb)), nil
}

// Score is the average neighbor target (vote share for −1/+1 labels).
func (k *KNN) Score(x []float64) (float64, error) { return k.Predict(x) }

// Classify thresholds the neighbor vote at zero for −1/+1 labels.
func (k *KNN) Classify(x []float64) (float64, error) {
	v, err := k.Predict(x)
	if err != nil {
		return 0, err
	}
	if v >= 0 {
		return 1, nil
	}
	return -1, nil
}

var (
	_ Regressor  = (*KNN)(nil)
	_ Classifier = (*KNN)(nil)
)
