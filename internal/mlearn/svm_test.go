package mlearn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mathx"
)

// linearlySeparable builds a 2-D dataset split by the line x0 + x1 = 0 with
// the given margin.
func linearlySeparable(seed int64, n int, margin float64) *Dataset {
	rng := mathx.NewRand(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		lbl := 1.0
		if i%2 == 0 {
			lbl = -1
		}
		// Place points on the correct side, `margin` away from the boundary.
		base := mathx.Uniform(rng, margin, margin+3) * lbl
		x[i] = []float64{base/2 + rng.NormFloat64()*0.05, base/2 + rng.NormFloat64()*0.05}
		y[i] = lbl
	}
	d, _ := NewDataset(x, y)
	return d
}

func TestSVMSeparable(t *testing.T) {
	d := linearlySeparable(1, 200, 0.5)
	svm := NewSVM()
	if err := svm.Fit(d); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(svm, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.98 {
		t.Fatalf("separable accuracy = %v, want ≥ 0.98", acc)
	}
}

func TestSVMGeneralizes(t *testing.T) {
	train := linearlySeparable(2, 300, 0.3)
	test := linearlySeparable(3, 100, 0.3)
	svm := NewSVM()
	if err := svm.Fit(train); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(svm, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("held-out accuracy = %v, want ≥ 0.95", acc)
	}
}

func TestSVMDeterministicTraining(t *testing.T) {
	d := linearlySeparable(4, 100, 0.5)
	a, b := NewSVM(), NewSVM()
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same seed must give identical weights")
		}
	}
}

func TestSVMLabelValidation(t *testing.T) {
	d, _ := NewDataset([][]float64{{1}}, []float64{0})
	if err := NewSVM().Fit(d); !errors.Is(err, ErrBadShape) {
		t.Fatalf("bad label err = %v", err)
	}
}

func TestSVMErrors(t *testing.T) {
	svm := NewSVM()
	if err := svm.Fit(&Dataset{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty fit err = %v", err)
	}
	if _, err := svm.Score([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted score err = %v", err)
	}
	if _, err := svm.Loss(&Dataset{}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted loss err = %v", err)
	}
	d := linearlySeparable(5, 20, 0.5)
	if err := svm.Fit(d); err != nil {
		t.Fatal(err)
	}
	if _, err := svm.Score([]float64{1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("dim mismatch err = %v", err)
	}
	if _, err := svm.Loss(&Dataset{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty loss err = %v", err)
	}
}

func TestSVMProbabilityMonotone(t *testing.T) {
	d := linearlySeparable(6, 200, 0.5)
	svm := NewSVM()
	if err := svm.Fit(d); err != nil {
		t.Fatal(err)
	}
	pNeg, err := svm.Probability([]float64{-3, -3})
	if err != nil {
		t.Fatal(err)
	}
	pPos, err := svm.Probability([]float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !(pPos > 0.5 && pNeg < 0.5 && pPos > pNeg) {
		t.Fatalf("probabilities: pos=%v neg=%v", pPos, pNeg)
	}
	if pPos < 0 || pPos > 1 || pNeg < 0 || pNeg > 1 {
		t.Fatalf("probabilities out of [0,1]: %v %v", pPos, pNeg)
	}
}

func TestSVMLossDecreasesWithTraining(t *testing.T) {
	d := linearlySeparable(7, 200, 0.3)
	short := NewSVM()
	short.Epochs = 1
	long := NewSVM()
	long.Epochs = 60
	if err := short.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := long.Fit(d); err != nil {
		t.Fatal(err)
	}
	ls, err := short.Loss(d)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := long.Loss(d)
	if err != nil {
		t.Fatal(err)
	}
	if !(ll <= ls+1e-9) {
		t.Fatalf("loss should not grow with training: 1 epoch %v vs 60 epochs %v", ls, ll)
	}
	if math.IsNaN(ll) {
		t.Fatal("loss is NaN")
	}
}
