package mlearn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestKNNNeighborsOrdering(t *testing.T) {
	d, _ := NewDataset([][]float64{{0}, {1}, {2}, {10}}, []float64{0, 1, 2, 10})
	knn := NewKNN(3)
	if err := knn.Fit(d); err != nil {
		t.Fatal(err)
	}
	nb, err := knn.Neighbors([]float64{1.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 3 || nb[0].Index != 1 || nb[1].Index != 2 || nb[2].Index != 0 {
		t.Fatalf("neighbor order = %+v", nb)
	}
	for i := 1; i < len(nb); i++ {
		if nb[i].Distance < nb[i-1].Distance {
			t.Fatal("neighbors not sorted by distance")
		}
	}
}

func TestKNNPredictAndClassify(t *testing.T) {
	d, _ := NewDataset([][]float64{{0}, {0.1}, {5}, {5.1}}, []float64{-1, -1, 1, 1})
	knn := NewKNN(2)
	if err := knn.Fit(d); err != nil {
		t.Fatal(err)
	}
	if c, _ := knn.Classify([]float64{0.05}); c != -1 {
		t.Fatalf("Classify near cluster A = %v", c)
	}
	if c, _ := knn.Classify([]float64{5.05}); c != 1 {
		t.Fatalf("Classify near cluster B = %v", c)
	}
	if p, _ := knn.Predict([]float64{0.05}); p != -1 {
		t.Fatalf("Predict = %v, want -1", p)
	}
}

func TestKNNKLargerThanData(t *testing.T) {
	d, _ := NewDataset([][]float64{{0}, {1}}, []float64{2, 4})
	knn := NewKNN(10)
	if err := knn.Fit(d); err != nil {
		t.Fatal(err)
	}
	p, err := knn.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if p != 3 {
		t.Fatalf("K>n predict = %v, want mean 3", p)
	}
}

func TestKNNErrors(t *testing.T) {
	knn := NewKNN(1)
	if err := knn.Fit(&Dataset{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty fit err = %v", err)
	}
	if _, err := knn.Neighbors([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted err = %v", err)
	}
	d, _ := NewDataset([][]float64{{1, 2}}, []float64{1})
	if err := knn.Fit(d); err != nil {
		t.Fatal(err)
	}
	if _, err := knn.Neighbors([]float64{1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("dim mismatch err = %v", err)
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := mathx.NewRand(1)
	var x [][]float64
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	for _, c := range centers {
		for i := 0; i < 50; i++ {
			x = append(x, []float64{
				c[0] + rng.NormFloat64()*0.5,
				c[1] + rng.NormFloat64()*0.5,
			})
		}
	}
	km := NewKMeans(3)
	if err := km.Fit(x); err != nil {
		t.Fatal(err)
	}
	// Every true center should have a fitted centroid within distance 1.
	for _, c := range centers {
		found := false
		for _, fc := range km.Centroids() {
			if mathx.EuclideanDistance(c, fc) < 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("no centroid near %v: %v", c, km.Centroids())
		}
	}
	// Points near a center share a cluster.
	a, _ := km.Assign([]float64{0.1, -0.1})
	b, _ := km.Assign([]float64{-0.2, 0.3})
	if a != b {
		t.Fatal("nearby points assigned to different clusters")
	}
	inertia, err := km.Inertia(x)
	if err != nil {
		t.Fatal(err)
	}
	if inertia/float64(len(x)) > 1.5 {
		t.Fatalf("inertia per point = %v, want small", inertia/float64(len(x)))
	}
}

func TestKMeansKClampedToN(t *testing.T) {
	km := NewKMeans(10)
	if err := km.Fit([][]float64{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if len(km.Centroids()) != 2 {
		t.Fatalf("centroids = %d, want clamped 2", len(km.Centroids()))
	}
}

func TestKMeansDeterminism(t *testing.T) {
	rng := mathx.NewRand(2)
	x := make([][]float64, 60)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	a, b := NewKMeans(4), NewKMeans(4)
	if err := a.Fit(x); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x); err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Centroids(), b.Centroids()
	for i := range ca {
		if mathx.EuclideanDistance(ca[i], cb[i]) > 1e-12 {
			t.Fatal("same seed must give same centroids")
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	km := NewKMeans(2)
	if err := km.Fit(nil); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty fit err = %v", err)
	}
	if _, err := km.Assign([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted assign err = %v", err)
	}
	if _, err := km.Inertia(nil); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted inertia err = %v", err)
	}
	if err := km.Fit([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("ragged fit err = %v", err)
	}
	if err := km.Fit([][]float64{{1, 2}, {3, 4}, {5, 6}}); err != nil {
		t.Fatal(err)
	}
	if _, err := km.Assign([]float64{1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("dim mismatch err = %v", err)
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	// All points identical: k-means++ must not loop forever or divide by zero.
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	km := NewKMeans(2)
	if err := km.Fit(x); err != nil {
		t.Fatal(err)
	}
	c, err := km.Assign([]float64{1, 1})
	if err != nil || c < 0 {
		t.Fatalf("assign on degenerate data: %v %v", c, err)
	}
	inertia, _ := km.Inertia(x)
	if math.Abs(inertia) > 1e-12 {
		t.Fatalf("degenerate inertia = %v, want 0", inertia)
	}
}
