package mlearn

import "fmt"

// BinaryMetrics summarizes a binary classifier's performance on −1/+1
// labels.
type BinaryMetrics struct {
	// TP, FP, TN, FN are the confusion-matrix counts (+1 = positive).
	TP, FP, TN, FN int
	// Accuracy, Precision, Recall and F1 are the derived rates; ill-defined
	// rates (zero denominators) are reported as 0.
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
}

// EvaluateBinary computes the confusion matrix and derived rates of c on d.
func EvaluateBinary(c Classifier, d *Dataset) (*BinaryMetrics, error) {
	if d == nil || d.Len() == 0 {
		return nil, ErrEmptyDataset
	}
	m := &BinaryMetrics{}
	for i, x := range d.X {
		got, err := c.Classify(x)
		if err != nil {
			return nil, fmt.Errorf("classify row %d: %w", i, err)
		}
		switch {
		case got == 1 && d.Y[i] == 1:
			m.TP++
		case got == 1 && d.Y[i] != 1:
			m.FP++
		case got != 1 && d.Y[i] != 1:
			m.TN++
		default:
			m.FN++
		}
	}
	total := float64(m.TP + m.FP + m.TN + m.FN)
	m.Accuracy = float64(m.TP+m.TN) / total
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m, nil
}
