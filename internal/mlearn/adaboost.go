package mlearn

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// AdaBoost is the discrete AdaBoost.M1 classifier over decision stumps.
// It is one of the two local-process alternatives the paper compares the SVM
// against (§IV-B). Labels must be −1/+1.
type AdaBoost struct {
	// Rounds is the number of boosting rounds (weak learners).
	Rounds int
	// StumpDepth is the depth of each weak tree (1 = classic stump).
	StumpDepth int

	stumps []*Tree
	alphas []float64
	dim    int
	fitted bool
}

// NewAdaBoost returns a booster with the defaults used in the experiments.
func NewAdaBoost(rounds int) *AdaBoost {
	return &AdaBoost{Rounds: rounds, StumpDepth: 1}
}

// Fit runs AdaBoost.M1 with exponential weight updates.
func (a *AdaBoost) Fit(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDataset
	}
	for i, y := range d.Y {
		if y != -1 && y != 1 {
			return fmt.Errorf("adaboost fit: label %v at row %d, want -1/+1: %w", y, i, ErrBadShape)
		}
	}
	if a.Rounds < 1 {
		a.Rounds = 1
	}
	if a.StumpDepth < 1 {
		a.StumpDepth = 1
	}
	n := d.Len()
	a.dim = d.Dim()
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0 / float64(n)
	}
	a.stumps = a.stumps[:0]
	a.alphas = a.alphas[:0]
	for round := 0; round < a.Rounds; round++ {
		stump := &Tree{MaxDepth: a.StumpDepth, MinLeaf: 1, FeatureFrac: 1}
		if err := stump.FitWeighted(d, w); err != nil {
			return fmt.Errorf("adaboost round %d: %w", round, err)
		}
		// Weighted error of the hard classification.
		var errw float64
		preds := make([]float64, n)
		for i, x := range d.X {
			p, err := stump.Classify(x)
			if err != nil {
				return fmt.Errorf("adaboost round %d classify: %w", round, err)
			}
			preds[i] = p
			if p != d.Y[i] {
				errw += w[i]
			}
		}
		const eps = 1e-10
		errw = mathx.Clamp(errw, eps, 1-eps)
		alpha := 0.5 * math.Log((1-errw)/errw)
		a.stumps = append(a.stumps, stump)
		a.alphas = append(a.alphas, alpha)
		if errw >= 0.5 {
			// Weak learner no better than chance; stop (its alpha ≈ 0).
			break
		}
		// Reweight: misclassified samples up, correct ones down.
		var z float64
		for i := range w {
			w[i] *= math.Exp(-alpha * d.Y[i] * preds[i])
			z += w[i]
		}
		for i := range w {
			w[i] /= z
		}
		if errw <= eps {
			break // perfect weak learner; the ensemble is done
		}
	}
	a.fitted = true
	return nil
}

// Score returns Σ αₜ·hₜ(x), the signed ensemble margin.
func (a *AdaBoost) Score(x []float64) (float64, error) {
	if !a.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != a.dim {
		return 0, fmt.Errorf("adaboost score: %d features, want %d: %w", len(x), a.dim, ErrBadShape)
	}
	var s float64
	for t, stump := range a.stumps {
		h, err := stump.Classify(x)
		if err != nil {
			return 0, err
		}
		s += a.alphas[t] * h
	}
	return s, nil
}

// Classify thresholds the ensemble margin at zero.
func (a *AdaBoost) Classify(x []float64) (float64, error) {
	s, err := a.Score(x)
	if err != nil {
		return 0, err
	}
	if s >= 0 {
		return 1, nil
	}
	return -1, nil
}

// Len returns the number of fitted weak learners.
func (a *AdaBoost) Len() int { return len(a.stumps) }

var _ Classifier = (*AdaBoost)(nil)
