package mlearn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mathx"
)

// xorDataset is not linearly separable; boosted stumps and forests must beat
// a linear model on it.
func xorDataset(seed int64, n int) *Dataset {
	rng := mathx.NewRand(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	d, _ := NewDataset(x, y)
	return d
}

func TestAdaBoostXOR(t *testing.T) {
	d := xorDataset(1, 400)
	// Depth-2 weak trees can carve the XOR quadrants.
	ab := &AdaBoost{Rounds: 40, StumpDepth: 2}
	if err := ab.Fit(d); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(ab, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("AdaBoost XOR accuracy = %v, want ≥ 0.95", acc)
	}
}

func TestAdaBoostBeatsSingleStump(t *testing.T) {
	d := xorDataset(2, 300)
	stump := NewTree(1)
	if err := stump.Fit(d); err != nil {
		t.Fatal(err)
	}
	sAcc, _ := Accuracy(stump, d)
	ab := &AdaBoost{Rounds: 30, StumpDepth: 2}
	if err := ab.Fit(d); err != nil {
		t.Fatal(err)
	}
	bAcc, _ := Accuracy(ab, d)
	if !(bAcc > sAcc) {
		t.Fatalf("boosting did not help: stump %v vs boost %v", sAcc, bAcc)
	}
}

func TestAdaBoostPerfectWeakLearnerStops(t *testing.T) {
	// Separable by one threshold → first stump is perfect → stop early.
	d, _ := NewDataset([][]float64{{0}, {1}, {2}, {3}}, []float64{-1, -1, 1, 1})
	ab := NewAdaBoost(50)
	if err := ab.Fit(d); err != nil {
		t.Fatal(err)
	}
	if ab.Len() != 1 {
		t.Fatalf("perfect stump should stop boosting, rounds fitted = %d", ab.Len())
	}
	if acc, _ := Accuracy(ab, d); acc != 1 {
		t.Fatal("perfect data should be perfectly classified")
	}
}

func TestAdaBoostErrors(t *testing.T) {
	ab := NewAdaBoost(5)
	if err := ab.Fit(&Dataset{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty fit err = %v", err)
	}
	if _, err := ab.Score([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted score err = %v", err)
	}
	bad, _ := NewDataset([][]float64{{1}}, []float64{2})
	if err := ab.Fit(bad); !errors.Is(err, ErrBadShape) {
		t.Fatalf("bad label err = %v", err)
	}
	ok, _ := NewDataset([][]float64{{0}, {1}}, []float64{-1, 1})
	if err := ab.Fit(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := ab.Score([]float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("dim mismatch err = %v", err)
	}
}

func TestForestXOR(t *testing.T) {
	d := xorDataset(3, 400)
	f := NewForest(30)
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(f, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("forest XOR accuracy = %v, want ≥ 0.95", acc)
	}
}

func TestForestRegression(t *testing.T) {
	rng := mathx.NewRand(4)
	n := 500
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64() * 2, rng.Float64() * 2}
		y[i] = x[i][0]*x[i][1] + mathx.Gaussian(rng, 0, 0.05)
	}
	d, _ := NewDataset(x, y)
	f := NewForest(40)
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, n)
	for i := range x {
		preds[i], _ = f.Predict(x[i])
	}
	if rmse := mathx.RMSE(preds, y); rmse > 0.25 {
		t.Fatalf("forest RMSE = %v, want < 0.25", rmse)
	}
}

func TestForestDeterminism(t *testing.T) {
	d := xorDataset(5, 200)
	a, b := NewForest(10), NewForest(10)
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{float64(i) / 20, float64(19-i) / 20}
		pa, _ := a.Predict(x)
		pb, _ := b.Predict(x)
		if pa != pb {
			t.Fatal("same seed must give identical forests")
		}
	}
}

func TestForestErrors(t *testing.T) {
	f := NewForest(3)
	if err := f.Fit(&Dataset{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty fit err = %v", err)
	}
	if _, err := f.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted predict err = %v", err)
	}
	d, _ := NewDataset([][]float64{{1, 2}, {2, 3}}, []float64{1, -1})
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Predict([]float64{1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("dim mismatch err = %v", err)
	}
	if c, err := f.Classify([]float64{1, 2}); err != nil || math.Abs(c) != 1 {
		t.Fatalf("Classify = %v, %v", c, err)
	}
}
