package mlearn

import (
	"fmt"

	"repro/internal/mathx"
)

// Ridge is an L2-regularized linear regressor solved in closed form via the
// normal equations. It is the per-task COP predictor of the MTL substrate:
// cheap to retrain (the paper's tasks are retrained repeatedly, §II-A) and
// well-behaved under the data scarcity the paper motivates.
type Ridge struct {
	// Lambda is the L2 penalty; 0 gives ordinary least squares.
	Lambda float64
	// FitIntercept adds a bias column when true.
	FitIntercept bool

	weights   []float64
	intercept float64
	fitted    bool
}

// NewRidge returns a ridge regressor with intercept fitting enabled.
func NewRidge(lambda float64) *Ridge {
	return &Ridge{Lambda: lambda, FitIntercept: true}
}

// Fit solves (XᵀX + λI)w = Xᵀy.
func (r *Ridge) Fit(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDataset
	}
	rows := d.X
	if r.FitIntercept {
		rows = make([][]float64, d.Len())
		for i, x := range d.X {
			row := make([]float64, len(x)+1)
			copy(row, x)
			row[len(x)] = 1
			rows[i] = row
		}
	}
	m, err := mathx.MatrixFromRows(rows)
	if err != nil {
		return fmt.Errorf("ridge fit: %w", err)
	}
	w, err := mathx.SolveRidge(m, d.Y, r.Lambda)
	if err != nil {
		return fmt.Errorf("ridge fit: %w", err)
	}
	if r.FitIntercept {
		r.weights = w[:len(w)-1]
		r.intercept = w[len(w)-1]
	} else {
		r.weights = w
		r.intercept = 0
	}
	r.fitted = true
	return nil
}

// Predict returns w·x + b.
func (r *Ridge) Predict(x []float64) (float64, error) {
	if !r.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != len(r.weights) {
		return 0, fmt.Errorf("ridge predict: %d features, want %d: %w",
			len(x), len(r.weights), ErrBadShape)
	}
	return mathx.Dot(r.weights, x) + r.intercept, nil
}

// Weights returns a copy of the fitted coefficient vector (without bias).
func (r *Ridge) Weights() []float64 { return mathx.Clone(r.weights) }

// Intercept returns the fitted bias term.
func (r *Ridge) Intercept() float64 { return r.intercept }

// SetWarmStart seeds the model with existing coefficients, marking it fitted.
// This is the parameter-transfer hook used by the MTL engine: a target task
// with scarce data starts from a source task's weights.
func (r *Ridge) SetWarmStart(weights []float64, intercept float64) {
	r.weights = mathx.Clone(weights)
	r.intercept = intercept
	r.fitted = true
}

var _ Regressor = (*Ridge)(nil)
