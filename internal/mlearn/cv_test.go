package mlearn

import (
	"errors"
	"testing"

	"repro/internal/mathx"
)

func TestKFoldSplit(t *testing.T) {
	rng := mathx.NewRand(1)
	folds := KFoldSplit(rng, 10, 3)
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	total := 0
	for _, f := range folds {
		total += len(f)
		for _, i := range f {
			seen[i]++
		}
	}
	if total != 10 {
		t.Fatalf("fold sizes sum to %d", total)
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d appears %d times", i, seen[i])
		}
	}
	// Clamping.
	if got := KFoldSplit(rng, 3, 100); len(got) != 3 {
		t.Fatalf("k clamps to n: %d folds", len(got))
	}
	if got := KFoldSplit(rng, 10, 1); len(got) != 2 {
		t.Fatalf("k clamps up to 2: %d folds", len(got))
	}
	if got := KFoldSplit(rng, 1, 5); len(got) != 1 || got[0][0] != 0 {
		t.Fatalf("degenerate n=1: %v", got)
	}
}

func TestCrossValidateClassifier(t *testing.T) {
	d := linearlySeparable(9, 200, 0.5)
	mean, std, err := CrossValidateClassifier(func() Classifier {
		svm := NewSVM()
		svm.Epochs = 30
		return svm
	}, d, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 0.9 {
		t.Fatalf("CV accuracy = %v on separable data", mean)
	}
	if std < 0 || std > 0.5 {
		t.Fatalf("CV std = %v", std)
	}
	// Degenerate inputs.
	if _, _, err := CrossValidateClassifier(nil, &Dataset{}, 3, 1); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty err = %v", err)
	}
	// A factory whose model rejects the labels propagates the error.
	bad, _ := NewDataset([][]float64{{1}, {2}, {3}}, []float64{0, 0, 0})
	if _, _, err := CrossValidateClassifier(func() Classifier { return NewSVM() }, bad, 3, 1); err == nil {
		t.Fatal("bad labels accepted")
	}
}
