package mlearn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Tree is a CART-style regression tree minimizing weighted squared error.
// With −1/+1 labels the leaf mean acts as a soft class score, which lets the
// same implementation back both the random forest and (at depth 1, with
// sample weights) the AdaBoost weak learner.
type Tree struct {
	// MaxDepth bounds tree depth; 1 yields a decision stump.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf.
	MinLeaf int
	// FeatureFrac, when in (0,1], restricts each split search to a random
	// subset of features — the random-forest de-correlation device.
	FeatureFrac float64
	// Rng drives feature subsampling; nil means all features are considered.
	Rng *rand.Rand

	root   *treeNode
	dim    int
	fitted bool
}

type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	value       float64
	leaf        bool
}

// NewTree returns a tree with sensible defaults for standalone use.
func NewTree(maxDepth int) *Tree {
	return &Tree{MaxDepth: maxDepth, MinLeaf: 1, FeatureFrac: 1}
}

// Fit grows the tree on d with uniform sample weights.
func (t *Tree) Fit(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDataset
	}
	w := make([]float64, d.Len())
	for i := range w {
		w[i] = 1
	}
	return t.FitWeighted(d, w)
}

// FitWeighted grows the tree with per-sample weights (AdaBoost's interface).
func (t *Tree) FitWeighted(d *Dataset, weights []float64) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDataset
	}
	if len(weights) != d.Len() {
		return fmt.Errorf("tree fit: %d weights vs %d samples: %w",
			len(weights), d.Len(), ErrBadShape)
	}
	if t.MaxDepth < 1 {
		t.MaxDepth = 1
	}
	if t.MinLeaf < 1 {
		t.MinLeaf = 1
	}
	if t.FeatureFrac <= 0 || t.FeatureFrac > 1 {
		t.FeatureFrac = 1
	}
	t.dim = d.Dim()
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(d, weights, idx, 0)
	t.fitted = true
	return nil
}

func (t *Tree) grow(d *Dataset, w []float64, idx []int, depth int) *treeNode {
	mean := weightedMean(d, w, idx)
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf || pureTargets(d, idx) {
		return &treeNode{leaf: true, value: mean}
	}
	feat, thr, ok := t.bestSplit(d, w, idx)
	if !ok {
		return &treeNode{leaf: true, value: mean}
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.MinLeaf || len(right) < t.MinLeaf {
		return &treeNode{leaf: true, value: mean}
	}
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      t.grow(d, w, left, depth+1),
		right:     t.grow(d, w, right, depth+1),
	}
}

// bestSplit scans candidate features for the weighted-SSE-minimizing split.
func (t *Tree) bestSplit(d *Dataset, w []float64, idx []int) (feat int, thr float64, ok bool) {
	feats := t.candidateFeatures()
	bestGain := math.Inf(-1)
	baseSSE := weightedSSE(d, w, idx)
	order := make([]int, len(idx))
	for _, f := range feats {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X[order[a]][f] < d.X[order[b]][f] })
		// Incremental left/right weighted sums for O(n) split evaluation.
		var wl, sl, ql float64 // weight, Σwy, Σwy² on the left
		wr, sr, qr := 0.0, 0.0, 0.0
		for _, i := range order {
			wr += w[i]
			sr += w[i] * d.Y[i]
			qr += w[i] * d.Y[i] * d.Y[i]
		}
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			wl += w[i]
			sl += w[i] * d.Y[i]
			ql += w[i] * d.Y[i] * d.Y[i]
			wr -= w[i]
			sr -= w[i] * d.Y[i]
			qr -= w[i] * d.Y[i] * d.Y[i]
			xv, xn := d.X[i][f], d.X[order[k+1]][f]
			if xv == xn {
				continue // cannot split between equal values
			}
			if wl <= 0 || wr <= 0 {
				continue
			}
			sse := (ql - sl*sl/wl) + (qr - sr*sr/wr)
			gain := baseSSE - sse
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = (xv + xn) / 2
				ok = true
			}
		}
	}
	if bestGain <= 1e-12 {
		return 0, 0, false
	}
	return feat, thr, ok
}

func (t *Tree) candidateFeatures() []int {
	all := make([]int, t.dim)
	for i := range all {
		all[i] = i
	}
	if t.FeatureFrac >= 1 || t.Rng == nil {
		return all
	}
	k := int(math.Ceil(t.FeatureFrac * float64(t.dim)))
	if k < 1 {
		k = 1
	}
	t.Rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:k]
}

func weightedMean(d *Dataset, w []float64, idx []int) float64 {
	var sw, sy float64
	for _, i := range idx {
		sw += w[i]
		sy += w[i] * d.Y[i]
	}
	if sw == 0 {
		return 0
	}
	return sy / sw
}

func weightedSSE(d *Dataset, w []float64, idx []int) float64 {
	var sw, sy, sq float64
	for _, i := range idx {
		sw += w[i]
		sy += w[i] * d.Y[i]
		sq += w[i] * d.Y[i] * d.Y[i]
	}
	if sw == 0 {
		return 0
	}
	return sq - sy*sy/sw
}

func pureTargets(d *Dataset, idx []int) bool {
	for k := 1; k < len(idx); k++ {
		if d.Y[idx[k]] != d.Y[idx[0]] {
			return false
		}
	}
	return true
}

// Predict returns the leaf value reached by x.
func (t *Tree) Predict(x []float64) (float64, error) {
	if !t.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != t.dim {
		return 0, fmt.Errorf("tree predict: %d features, want %d: %w", len(x), t.dim, ErrBadShape)
	}
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value, nil
}

// Score is the continuous leaf value (classifier-score interface).
func (t *Tree) Score(x []float64) (float64, error) { return t.Predict(x) }

// Classify thresholds the leaf value at 0 for −1/+1 labels.
func (t *Tree) Classify(x []float64) (float64, error) {
	v, err := t.Predict(x)
	if err != nil {
		return 0, err
	}
	if v >= 0 {
		return 1, nil
	}
	return -1, nil
}

// Depth returns the fitted tree depth (0 for a single leaf).
func (t *Tree) Depth() int {
	if !t.fitted {
		return 0
	}
	var walk func(*treeNode) int
	walk = func(n *treeNode) int {
		if n.leaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}

var (
	_ Regressor  = (*Tree)(nil)
	_ Classifier = (*Tree)(nil)
)
