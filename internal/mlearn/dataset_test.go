package mlearn

import (
	"errors"
	"testing"

	"repro/internal/mathx"
)

func TestNewDataset(t *testing.T) {
	d, err := NewDataset([][]float64{{1, 2}, {3, 4}}, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Dim() != 2 {
		t.Fatalf("Len/Dim = %d/%d", d.Len(), d.Dim())
	}
	if _, err := NewDataset([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("row/target mismatch err = %v", err)
	}
	if _, err := NewDataset([][]float64{{1}, {1, 2}}, []float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("ragged rows err = %v", err)
	}
	empty, err := NewDataset(nil, nil)
	if err != nil || empty.Len() != 0 || empty.Dim() != 0 {
		t.Fatalf("empty dataset: %v %v", empty, err)
	}
}

func TestSubsetAndSplit(t *testing.T) {
	d, _ := NewDataset([][]float64{{0}, {1}, {2}, {3}, {4}}, []float64{0, 1, 2, 3, 4})
	sub := d.Subset([]int{4, 0})
	if sub.Len() != 2 || sub.Y[0] != 4 || sub.Y[1] != 0 {
		t.Fatalf("Subset = %+v", sub)
	}
	rng := mathx.NewRand(1)
	train, test := d.Split(rng, 0.6)
	if train.Len() != 3 || test.Len() != 2 {
		t.Fatalf("Split sizes = %d/%d", train.Len(), test.Len())
	}
	// Union of the split must be the original multiset of targets.
	seen := map[float64]int{}
	for _, y := range append(append([]float64{}, train.Y...), test.Y...) {
		seen[y]++
	}
	for _, y := range d.Y {
		if seen[y] != 1 {
			t.Fatalf("Split lost/duplicated target %v: %v", y, seen)
		}
	}
	// Clamping.
	tr, te := d.Split(mathx.NewRand(2), 1.5)
	if tr.Len() != 5 || te.Len() != 0 {
		t.Fatal("trainFrac should clamp to 1")
	}
	tr, te = d.Split(mathx.NewRand(2), -0.5)
	if tr.Len() != 0 || te.Len() != 5 {
		t.Fatal("trainFrac should clamp to 0")
	}
}

func TestAccuracy(t *testing.T) {
	d, _ := NewDataset([][]float64{{-2}, {-1}, {1}, {2}}, []float64{-1, -1, 1, 1})
	svm := NewSVM()
	if err := svm.Fit(d); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(svm, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("separable accuracy = %v, want 1", acc)
	}
	if _, err := Accuracy(svm, &Dataset{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty accuracy err = %v", err)
	}
}
