package mlearn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestTreeFitsStepFunction(t *testing.T) {
	// y = 1 if x > 0.5 else -1: a single split suffices.
	x := [][]float64{{0.1}, {0.2}, {0.3}, {0.7}, {0.8}, {0.9}}
	y := []float64{-1, -1, -1, 1, 1, 1}
	d, _ := NewDataset(x, y)
	tree := NewTree(1)
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", tree.Depth())
	}
	acc, err := Accuracy(tree, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("step accuracy = %v, want 1", acc)
	}
}

func TestTreeRegression(t *testing.T) {
	rng := mathx.NewRand(1)
	n := 400
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64()}
		y[i] = math.Sin(4 * x[i][0]) // smooth target
	}
	d, _ := NewDataset(x, y)
	tree := NewTree(6)
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, n)
	for i := range x {
		p, err := tree.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}
	if rmse := mathx.RMSE(preds, y); rmse > 0.15 {
		t.Fatalf("depth-6 tree RMSE = %v, want < 0.15", rmse)
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	d, _ := NewDataset([][]float64{{1}, {2}, {3}}, []float64{5, 5, 5})
	tree := NewTree(10)
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatalf("pure targets should make a single leaf, depth = %d", tree.Depth())
	}
	if p, _ := tree.Predict([]float64{99}); p != 5 {
		t.Fatalf("pure leaf value = %v, want 5", p)
	}
}

func TestTreeWeightedFitRespectsWeights(t *testing.T) {
	// Two conflicting groups; weights decide which one the stump obeys.
	x := [][]float64{{0}, {0}, {1}, {1}}
	y := []float64{-1, 1, -1, 1}
	d, _ := NewDataset(x, y)
	tree := &Tree{MaxDepth: 1, MinLeaf: 1, FeatureFrac: 1}
	// Crushing weight on rows 1 and 2 (y=+1 at x=0, y=-1 at x=1).
	if err := tree.FitWeighted(d, []float64{0.01, 10, 10, 0.01}); err != nil {
		t.Fatal(err)
	}
	p0, _ := tree.Predict([]float64{0})
	p1, _ := tree.Predict([]float64{1})
	if !(p0 > p1) {
		t.Fatalf("weighted fit ignored weights: f(0)=%v f(1)=%v", p0, p1)
	}
}

func TestTreeMinLeafConstraint(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	d, _ := NewDataset(x, y)
	tree := &Tree{MaxDepth: 10, MinLeaf: 2, FeatureFrac: 1}
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	// With MinLeaf=2 and 4 samples the tree can split at most once.
	if tree.Depth() > 1 {
		t.Fatalf("MinLeaf violated: depth = %d", tree.Depth())
	}
}

func TestTreeErrors(t *testing.T) {
	tree := NewTree(3)
	if err := tree.Fit(&Dataset{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty fit err = %v", err)
	}
	if _, err := tree.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted predict err = %v", err)
	}
	d, _ := NewDataset([][]float64{{1, 2}}, []float64{1})
	if err := tree.FitWeighted(d, []float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("weight mismatch err = %v", err)
	}
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Predict([]float64{1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("dim mismatch err = %v", err)
	}
}

func TestTreeClassifyThreshold(t *testing.T) {
	d, _ := NewDataset([][]float64{{0}, {1}}, []float64{-1, 1})
	tree := NewTree(1)
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if c, _ := tree.Classify([]float64{0}); c != -1 {
		t.Fatalf("Classify(0) = %v", c)
	}
	if c, _ := tree.Classify([]float64{1}); c != 1 {
		t.Fatalf("Classify(1) = %v", c)
	}
}
