package mlearn

import (
	"fmt"
	"math/rand"
)

// Forest is a random forest over CART trees with bootstrap sampling and
// per-split feature subsampling. It is the second local-process alternative
// of §IV-B, and also serves as a general-purpose regressor in the MTL
// substrate. For classification, labels must be −1/+1 and the forest votes
// by averaging tree scores.
type Forest struct {
	// Trees is the ensemble size.
	Trees int
	// MaxDepth bounds each tree.
	MaxDepth int
	// MinLeaf is each tree's minimum leaf size.
	MinLeaf int
	// FeatureFrac is the per-split feature subsample fraction.
	FeatureFrac float64
	// Seed makes training reproducible.
	Seed int64

	ensemble []*Tree
	dim      int
	fitted   bool
}

// NewForest returns a forest with defaults tuned for the experiment scale.
func NewForest(trees int) *Forest {
	return &Forest{Trees: trees, MaxDepth: 6, MinLeaf: 2, FeatureFrac: 0.7, Seed: 1}
}

// Fit grows the ensemble on bootstrap resamples of d.
func (f *Forest) Fit(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDataset
	}
	if f.Trees < 1 {
		f.Trees = 1
	}
	rng := rand.New(rand.NewSource(f.Seed))
	n := d.Len()
	f.dim = d.Dim()
	f.ensemble = make([]*Tree, 0, f.Trees)
	for t := 0; t < f.Trees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		boot := d.Subset(idx)
		tree := &Tree{
			MaxDepth:    f.MaxDepth,
			MinLeaf:     f.MinLeaf,
			FeatureFrac: f.FeatureFrac,
			Rng:         rand.New(rand.NewSource(rng.Int63())),
		}
		if err := tree.Fit(boot); err != nil {
			return fmt.Errorf("forest tree %d: %w", t, err)
		}
		f.ensemble = append(f.ensemble, tree)
	}
	f.fitted = true
	return nil
}

// Predict averages the trees' leaf values.
func (f *Forest) Predict(x []float64) (float64, error) {
	if !f.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != f.dim {
		return 0, fmt.Errorf("forest predict: %d features, want %d: %w", len(x), f.dim, ErrBadShape)
	}
	var s float64
	for _, tree := range f.ensemble {
		v, err := tree.Predict(x)
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s / float64(len(f.ensemble)), nil
}

// Score is the average tree output (≈ vote share for −1/+1 labels).
func (f *Forest) Score(x []float64) (float64, error) { return f.Predict(x) }

// Classify thresholds the average vote at zero.
func (f *Forest) Classify(x []float64) (float64, error) {
	v, err := f.Predict(x)
	if err != nil {
		return 0, err
	}
	if v >= 0 {
		return 1, nil
	}
	return -1, nil
}

var (
	_ Regressor  = (*Forest)(nil)
	_ Classifier = (*Forest)(nil)
)
