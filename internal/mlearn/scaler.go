package mlearn

import (
	"fmt"

	"repro/internal/mathx"
)

// StandardScaler standardizes features to zero mean and unit variance,
// feature by feature. Constant features are left centered with scale 1 so
// Transform never divides by zero.
type StandardScaler struct {
	mean  []float64
	scale []float64
}

// Fit estimates per-feature mean and standard deviation from rows.
func (s *StandardScaler) Fit(rows [][]float64) error {
	if len(rows) == 0 {
		return ErrEmptyDataset
	}
	dim := len(rows[0])
	col := make([]float64, len(rows))
	s.mean = make([]float64, dim)
	s.scale = make([]float64, dim)
	for j := 0; j < dim; j++ {
		for i, r := range rows {
			if len(r) != dim {
				return fmt.Errorf("scaler fit row %d: %w", i, ErrBadShape)
			}
			col[i] = r[j]
		}
		s.mean[j] = mathx.Mean(col)
		sd := mathx.StdDev(col)
		if sd == 0 {
			sd = 1
		}
		s.scale[j] = sd
	}
	return nil
}

// Fitted reports whether Fit has been called.
func (s *StandardScaler) Fitted() bool { return s.mean != nil }

// Transform returns a standardized copy of x.
func (s *StandardScaler) Transform(x []float64) ([]float64, error) {
	if !s.Fitted() {
		return nil, ErrNotFitted
	}
	if len(x) != len(s.mean) {
		return nil, fmt.Errorf("scaler transform: %d features, want %d: %w",
			len(x), len(s.mean), ErrBadShape)
	}
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - s.mean[j]) / s.scale[j]
	}
	return out, nil
}

// TransformInPlace standardizes x in place — the allocation-free Transform
// used on serving hot paths. The arithmetic is identical to Transform.
func (s *StandardScaler) TransformInPlace(x []float64) error {
	if !s.Fitted() {
		return ErrNotFitted
	}
	if len(x) != len(s.mean) {
		return fmt.Errorf("scaler transform: %d features, want %d: %w",
			len(x), len(s.mean), ErrBadShape)
	}
	for j := range x {
		x[j] = (x[j] - s.mean[j]) / s.scale[j]
	}
	return nil
}

// TransformAll standardizes every row, returning fresh rows.
func (s *StandardScaler) TransformAll(rows [][]float64) ([][]float64, error) {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		t, err := s.Transform(r)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// Inverse undoes Transform for one vector.
func (s *StandardScaler) Inverse(x []float64) ([]float64, error) {
	if !s.Fitted() {
		return nil, ErrNotFitted
	}
	if len(x) != len(s.mean) {
		return nil, fmt.Errorf("scaler inverse: %d features, want %d: %w",
			len(x), len(s.mean), ErrBadShape)
	}
	out := make([]float64, len(x))
	for j := range x {
		out[j] = x[j]*s.scale[j] + s.mean[j]
	}
	return out, nil
}
