// Package mlearn is a from-scratch, stdlib-only machine-learning substrate.
//
// It provides the learners the paper names explicitly: an SVM with the
// squared hinge loss of Eq. (8) for the DCTA local process, AdaBoost and
// random forests as the compared alternatives (§IV-B), ridge regression for
// the per-task COP predictors, kNN for the environment-definition clustering
// of §III-C, and k-means for the offline-mode discussion of §VII.
package mlearn

import (
	"errors"
	"fmt"
	"math/rand"
)

// Common errors shared by learners in this package.
var (
	// ErrEmptyDataset is returned when a learner is fit on no samples.
	ErrEmptyDataset = errors.New("mlearn: empty dataset")
	// ErrNotFitted is returned when predicting with an unfitted model.
	ErrNotFitted = errors.New("mlearn: model not fitted")
	// ErrBadShape is returned when sample dimensions are inconsistent.
	ErrBadShape = errors.New("mlearn: inconsistent dataset shape")
)

// Dataset is a supervised dataset: one feature row per target value.
// For classification, targets hold class labels encoded as float64
// (binary classifiers use -1/+1).
type Dataset struct {
	X [][]float64
	Y []float64
}

// NewDataset validates and wraps the given features/targets.
// The slices are NOT copied; callers keep ownership.
func NewDataset(x [][]float64, y []float64) (*Dataset, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("%d rows vs %d targets: %w", len(x), len(y), ErrBadShape)
	}
	if len(x) == 0 {
		return &Dataset{}, nil
	}
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("row %d has %d features, want %d: %w", i, len(row), dim, ErrBadShape)
		}
	}
	return &Dataset{X: x, Y: y}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Dim returns the feature dimensionality (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Subset returns a dataset referencing the rows at idx.
func (d *Dataset) Subset(idx []int) *Dataset {
	x := make([][]float64, len(idx))
	y := make([]float64, len(idx))
	for i, j := range idx {
		x[i] = d.X[j]
		y[i] = d.Y[j]
	}
	return &Dataset{X: x, Y: y}
}

// Split partitions the dataset into train/test by trainFrac after a
// deterministic shuffle with rng. trainFrac is clamped to [0,1].
func (d *Dataset) Split(rng *rand.Rand, trainFrac float64) (train, test *Dataset) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	idx := rng.Perm(d.Len())
	cut := int(trainFrac * float64(len(idx)))
	return d.Subset(idx[:cut]), d.Subset(idx[cut:])
}

// Regressor is a model that predicts a continuous value from features.
type Regressor interface {
	Fit(d *Dataset) error
	Predict(x []float64) (float64, error)
}

// Classifier is a model that predicts a discrete label from features.
// Binary classifiers in this package use -1/+1 labels.
type Classifier interface {
	Fit(d *Dataset) error
	Classify(x []float64) (float64, error)
	// Score returns the raw decision value (margin, vote share, …); the
	// DCTA combiner consumes scores, not hard labels.
	Score(x []float64) (float64, error)
}

// Accuracy returns the fraction of samples in d that c labels correctly.
func Accuracy(c Classifier, d *Dataset) (float64, error) {
	if d.Len() == 0 {
		return 0, ErrEmptyDataset
	}
	hits := 0
	for i, x := range d.X {
		got, err := c.Classify(x)
		if err != nil {
			return 0, fmt.Errorf("classify row %d: %w", i, err)
		}
		if got == d.Y[i] {
			hits++
		}
	}
	return float64(hits) / float64(d.Len()), nil
}
