package mlearn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestRidgeRecoversLinearModel(t *testing.T) {
	rng := mathx.NewRand(1)
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		y[i] = 3*x[i][0] - 2*x[i][1] + 5 + mathx.Gaussian(rng, 0, 0.01)
	}
	d, _ := NewDataset(x, y)
	r := NewRidge(1e-6)
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	w := r.Weights()
	if math.Abs(w[0]-3) > 0.05 || math.Abs(w[1]+2) > 0.05 {
		t.Fatalf("weights = %v, want ≈[3 -2]", w)
	}
	if math.Abs(r.Intercept()-5) > 0.2 {
		t.Fatalf("intercept = %v, want ≈5", r.Intercept())
	}
	pred, err := r.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-6) > 0.2 {
		t.Fatalf("Predict = %v, want ≈6", pred)
	}
}

func TestRidgeNoIntercept(t *testing.T) {
	d, _ := NewDataset([][]float64{{1}, {2}, {3}}, []float64{2, 4, 6})
	r := &Ridge{Lambda: 0, FitIntercept: false}
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	if w := r.Weights(); math.Abs(w[0]-2) > 1e-9 {
		t.Fatalf("weights = %v, want [2]", w)
	}
	if r.Intercept() != 0 {
		t.Fatalf("intercept = %v, want 0", r.Intercept())
	}
}

func TestRidgeErrors(t *testing.T) {
	r := NewRidge(0.1)
	if err := r.Fit(&Dataset{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty fit err = %v", err)
	}
	if _, err := r.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted predict err = %v", err)
	}
	d, _ := NewDataset([][]float64{{1, 2}}, []float64{1})
	// Rank-deficient with λ>0 is fine.
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict([]float64{1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("dim mismatch err = %v", err)
	}
}

func TestRidgeWarmStart(t *testing.T) {
	r := NewRidge(0.1)
	r.SetWarmStart([]float64{1.5, -0.5}, 2)
	pred, err := r.Predict([]float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-4) > 1e-12 {
		t.Fatalf("warm-start predict = %v, want 4", pred)
	}
	// Warm-start weights must be copies.
	src := []float64{1, 2}
	r.SetWarmStart(src, 0)
	src[0] = 99
	if p, _ := r.Predict([]float64{1, 0}); p != 1 {
		t.Fatal("SetWarmStart must copy weights")
	}
}

// Property: larger lambda never increases the weight norm on a fixed dataset.
func TestRidgeShrinkageProperty(t *testing.T) {
	rng := mathx.NewRand(9)
	n := 50
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = x[i][0] + 2*x[i][1] + rng.NormFloat64()*0.1
	}
	d, _ := NewDataset(x, y)
	f := func(raw float64) bool {
		l1 := math.Abs(math.Mod(raw, 10))
		l2 := l1 + 1
		r1, r2 := NewRidge(l1), NewRidge(l2)
		if r1.Fit(d) != nil || r2.Fit(d) != nil {
			return false
		}
		return mathx.Norm2(r2.Weights()) <= mathx.Norm2(r1.Weights())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
