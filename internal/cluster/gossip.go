package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/rawhttp"
	"repro/internal/serve"
)

// The gossip membership plane is a SWIM-style failure detector layered on
// the fleet's existing rawhttp machinery: every node (shards and routers
// alike) runs an Agent that periodically pings one random member directly,
// falls back to k indirect ping-reqs relayed through other members on a
// miss, and moves members through alive → suspect → dead with a suspicion
// timeout that gives the accused time to refute. Refutation is
// incarnation-numbered — only a member may raise its own incarnation, and a
// higher incarnation overrides any rumor about a lower one — so a member
// whose inbound links are cut defends itself through whatever outbound
// links survive. Every exchange piggybacks a bounded queue of recent
// membership updates, and every state change advances a Lamport-style
// membership epoch that all members converge to; the router rebuilds its
// ring from the converged view instead of trusting its private probes.

// GossipPath is the membership endpoint mounted on every member.
const GossipPath = "/v1/gossip"

// GossipVersion is the wire-format version of GossipMsg.
const GossipVersion = 1

// Wire-format bounds: DecodeGossip rejects anything outside them, so a
// hostile or corrupt peer cannot balloon a member table.
const (
	maxGossipUpdates = 4096
	maxGossipIDLen   = 128
	maxGossipAddrLen = 256
	maxGossipBody    = 1 << 20
)

// Member roles. Routers gossip like everyone else (they must be pingable
// and they learn the view first-hand) but never own ring ranges.
const (
	RoleShard  = "shard"
	RoleRouter = "router"
)

// MemberState is the SWIM lifecycle state of one member.
type MemberState uint8

const (
	StateAlive MemberState = iota
	StateSuspect
	StateDead
)

func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Member is one node's identity and lifecycle state as the gossip plane
// sees it. Incarnation is the member's self-owned version counter: rumors
// about incarnation i are refuted by the member re-asserting itself at
// i+1, and observers never let a member's incarnation move backwards.
type Member struct {
	ID          string      `json:"id"`
	Addr        string      `json:"addr"`
	Role        string      `json:"role"`
	Incarnation uint64      `json:"inc"`
	State       MemberState `json:"state"`
}

// Update is one piggybacked membership rumor: a member snapshot plus the
// epoch stamped by whoever originated the change.
type Update struct {
	Member
	Epoch uint64 `json:"epoch"`
}

// Gossip message types.
const (
	gossipPing    = "ping"
	gossipPingReq = "ping-req"
	gossipJoin    = "join"
	gossipAck     = "ack"
)

// GossipMsg is the request and reply wire format of POST /v1/gossip. Every
// message carries the sender's self snapshot (From — receiving any message
// is first-hand evidence the sender is alive), the sender's epoch (clocks
// merge on every exchange), and a bounded piggyback of recent updates.
// Joins and periodic anti-entropy syncs carry the full member table
// instead. A ping-req names the member to probe in Target; the relay
// reports the outcome in the reply's Ack.
type GossipMsg struct {
	Version int      `json:"v"`
	Type    string   `json:"type"`
	From    Member   `json:"from"`
	Target  *Member  `json:"target,omitempty"`
	Updates []Update `json:"updates,omitempty"`
	Epoch   uint64   `json:"epoch"`
	Sync    bool     `json:"sync,omitempty"`
	Ack     bool     `json:"ack,omitempty"`
}

func validMember(m Member) error {
	if m.ID == "" || len(m.ID) > maxGossipIDLen {
		return fmt.Errorf("cluster: gossip member id length %d (want 1..%d)", len(m.ID), maxGossipIDLen)
	}
	if len(m.Addr) > maxGossipAddrLen {
		return fmt.Errorf("cluster: gossip member addr length %d > %d", len(m.Addr), maxGossipAddrLen)
	}
	if m.Role != RoleShard && m.Role != RoleRouter {
		return fmt.Errorf("cluster: gossip member role %q", m.Role)
	}
	if m.State > StateDead {
		return fmt.Errorf("cluster: gossip member state %d", m.State)
	}
	return nil
}

// DecodeGossip parses and validates one wire message. Everything it
// accepts is safe to apply: bounded sizes, known type, well-formed members.
func DecodeGossip(data []byte) (*GossipMsg, error) {
	if len(data) > maxGossipBody {
		return nil, fmt.Errorf("cluster: gossip body %d bytes > %d", len(data), maxGossipBody)
	}
	var msg GossipMsg
	if err := json.Unmarshal(data, &msg); err != nil {
		return nil, fmt.Errorf("cluster: gossip decode: %w", err)
	}
	if msg.Version != GossipVersion {
		return nil, fmt.Errorf("cluster: gossip version %d (want %d)", msg.Version, GossipVersion)
	}
	switch msg.Type {
	case gossipPing, gossipPingReq, gossipJoin, gossipAck:
	default:
		return nil, fmt.Errorf("cluster: gossip type %q", msg.Type)
	}
	if err := validMember(msg.From); err != nil {
		return nil, fmt.Errorf("cluster: gossip from: %w", err)
	}
	if msg.Type == gossipPingReq {
		if msg.Target == nil {
			return nil, fmt.Errorf("cluster: ping-req without target")
		}
		if err := validMember(*msg.Target); err != nil {
			return nil, fmt.Errorf("cluster: gossip target: %w", err)
		}
		if msg.Target.Addr == "" {
			return nil, fmt.Errorf("cluster: ping-req target without addr")
		}
	}
	if len(msg.Updates) > maxGossipUpdates {
		return nil, fmt.Errorf("cluster: gossip carries %d updates > %d", len(msg.Updates), maxGossipUpdates)
	}
	for i := range msg.Updates {
		if err := validMember(msg.Updates[i].Member); err != nil {
			return nil, fmt.Errorf("cluster: gossip update %d: %w", i, err)
		}
	}
	return &msg, nil
}

// Transport carries one gossip exchange to a member address and returns
// its reply. The default dials rawhttp per exchange; chaos tests interpose
// per-directed-link fault proxies here.
type Transport interface {
	Exchange(addr string, msg *GossipMsg, timeout time.Duration) (*GossipMsg, error)
}

// HTTPTransport is the production transport: one rawhttp round trip per
// exchange against the peer's /v1/gossip.
type HTTPTransport struct{}

func (HTTPTransport) Exchange(addr string, msg *GossipMsg, timeout time.Duration) (*GossipMsg, error) {
	body, err := json.Marshal(msg)
	if err != nil {
		return nil, err
	}
	conn, err := rawhttp.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.Timeout = timeout
	code, resp, err := conn.Do(rawhttp.BuildFrame(GossipPath, body))
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("cluster: gossip peer %s answered %d", addr, code)
	}
	return DecodeGossip(resp)
}

// View is one member's converged picture of the fleet: the membership
// epoch (a Lamport clock every state change advances and every exchange
// merges), a digest over the full member table, and the table itself
// sorted by id. Two members whose (Epoch, Digest) match hold identical
// views.
type View struct {
	Epoch   uint64
	Digest  uint64
	Members []Member
}

// Alive lists the view's non-dead members with the given role ("" = all).
func (v View) Alive(role string) []Member {
	var out []Member
	for _, m := range v.Members {
		if m.State != StateDead && (role == "" || m.Role == role) {
			out = append(out, m)
		}
	}
	return out
}

// Find returns the view's record of one member.
func (v View) Find(id string) (Member, bool) {
	for _, m := range v.Members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// ViewsConverged reports whether every view agrees on (Epoch, Digest).
func ViewsConverged(views []View) bool {
	for i := 1; i < len(views); i++ {
		if views[i].Epoch != views[0].Epoch || views[i].Digest != views[0].Digest {
			return false
		}
	}
	return len(views) > 0
}

// GossipConfig tunes one membership agent.
type GossipConfig struct {
	// Interval is the protocol period: one direct probe per tick, jittered
	// ±25% so a fleet never probes in lockstep (default 1s).
	Interval time.Duration
	// ProbeTimeout bounds one direct or relayed ping (default Interval/2,
	// min 10ms).
	ProbeTimeout time.Duration
	// IndirectPeers is k, the relay count for indirect ping-reqs after a
	// direct miss (default 3).
	IndirectPeers int
	// SuspicionMult scales the suspicion timeout:
	// Mult × Interval × ⌈log₂(n+1)⌉ (default 3). SuspicionTimeout
	// overrides it outright when > 0.
	SuspicionMult    int
	SuspicionTimeout time.Duration
	// MaxPiggyback bounds the updates riding on one message (default 8).
	MaxPiggyback int
	// RetransmitMult scales each update's dissemination budget:
	// Mult × ⌈log₂(n+1)⌉ transmissions (default 3).
	RetransmitMult int
	// SyncEvery makes every Nth tick a full-state anti-entropy exchange,
	// so a member that missed every piggyback still converges (default 8;
	// < 0 disables).
	SyncEvery int
	// Seed feeds the agent's probe-order and jitter rng (default 1).
	Seed int64
	// Now is the suspicion clock (default time.Now).
	Now func() time.Time
	// Transport carries exchanges (default HTTPTransport).
	Transport Transport
	// Logf sinks membership transitions (default: discard).
	Logf func(format string, args ...any)
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.Interval / 2
		if c.ProbeTimeout < 10*time.Millisecond {
			c.ProbeTimeout = 10 * time.Millisecond
		}
	}
	if c.IndirectPeers < 1 {
		c.IndirectPeers = 3
	}
	if c.SuspicionMult < 1 {
		c.SuspicionMult = 3
	}
	if c.MaxPiggyback < 1 {
		c.MaxPiggyback = 8
	}
	if c.RetransmitMult < 1 {
		c.RetransmitMult = 3
	}
	if c.SyncEvery == 0 {
		c.SyncEvery = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Transport == nil {
		c.Transport = HTTPTransport{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// memberRecord is the agent's private state for one member.
type memberRecord struct {
	Member
	stamp     uint64    // epoch of the change that produced this state
	suspectAt time.Time // suspicion deadline while State == StateSuspect
}

// queuedUpdate is one rumor awaiting piggybacked retransmission. One entry
// per member: a newer rumor about the same member replaces the older one
// and resets the budget.
type queuedUpdate struct {
	u    Update
	left int
}

// Agent is one node's SWIM membership agent.
type Agent struct {
	cfg  GossipConfig
	self string

	mu      sync.Mutex
	members map[string]*memberRecord
	epoch   uint64
	queue   []*queuedUpdate
	rng     *rand.Rand
	order   []string // shuffled probe rotation
	orderAt int
	tick    uint64
	changed bool
	subs    []func(View)

	// Counters (guarded by mu, surfaced in MembershipStats).
	pingsSent, pingAcks, pingTimeouts int64
	indirectReqs, indirectAcks        int64
	suspectsDeclared, refutations     int64
	deadConfirmed, updatesApplied     int64
	fullSyncs, joinsSent, joinsServed int64
	epochBumps                        int64
}

// NewAgent builds an agent that knows only itself (alive, incarnation 0).
// Seed or Join introduce the rest of the fleet.
func NewAgent(self Member, cfg GossipConfig) (*Agent, error) {
	self.State = StateAlive
	if err := validMember(self); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	a := &Agent{
		cfg:     cfg,
		self:    self.ID,
		members: map[string]*memberRecord{},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	a.epoch = 1
	a.members[self.ID] = &memberRecord{Member: self, stamp: a.epoch}
	return a, nil
}

// SelfID is the agent's member id.
func (a *Agent) SelfID() string { return a.self }

// Seed preloads a static bootstrap member list (the optional -shards
// fallback): every entry lands alive at incarnation 0 and is superseded by
// anything the wire later says.
func (a *Agent) Seed(members []Member) {
	a.mu.Lock()
	for _, m := range members {
		if m.ID == a.self || validMember(Member{ID: m.ID, Addr: m.Addr, Role: m.Role}) != nil {
			continue
		}
		m.State = StateAlive
		m.Incarnation = 0
		a.applyLocked(Update{Member: m})
	}
	fire := a.takeChangeLocked()
	a.mu.Unlock()
	fire()
}

// Join dials seed peers until one answers, announcing this member and
// installing the seed's full member table. This is the flag-free join
// path: any live member's address is enough to enter the fleet, and a
// rejoiner that finds itself remembered as dead refutes its own obituary
// with a higher incarnation.
func (a *Agent) Join(seeds []string) error {
	var lastErr error
	for _, addr := range seeds {
		a.mu.Lock()
		msg := a.composeLocked(gossipJoin, true)
		a.mu.Unlock()
		reply, err := a.cfg.Transport.Exchange(addr, msg, a.cfg.ProbeTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		a.mu.Lock()
		a.joinsSent++
		a.receiveLocked(reply)
		fire := a.takeChangeLocked()
		a.mu.Unlock()
		fire()
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: join: no seeds")
	}
	return fmt.Errorf("cluster: join failed: %w", lastErr)
}

// DefaultJoinRetryWindow is how long JoinRetry keeps knocking on the seed
// peers before giving up — generous enough for a sibling node launched in
// the same breath to finish its scenario build and start listening.
const DefaultJoinRetryWindow = 90 * time.Second

// JoinRetry keeps calling Join until a seed answers or the window runs
// out. Fleet boots race: a joiner is typically launched alongside the very
// seed it names, and that seed spends seconds building its scenario before
// it listens — one connection-refused must not kill the process.
func (a *Agent) JoinRetry(seeds []string, window time.Duration, logf func(string, ...any)) error {
	deadline := time.Now().Add(window)
	for attempt := 1; ; attempt++ {
		err := a.Join(seeds)
		if err == nil {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("cluster: join gave up after %v: %w", window, err)
		}
		if logf != nil && attempt == 1 {
			logf("gossip: seeds not yet reachable (%v); retrying for up to %v", err, window)
		}
		time.Sleep(time.Second)
	}
}

// ForceAlive re-asserts this member alive at the next incarnation —
// preemptively outranking any suspicion the fleet might hold at the
// current one (alive loses to suspect at equal incarnation, so a rejoiner
// bumps unconditionally rather than hoping its join seed already knew the
// rumor). Returns the new incarnation.
func (a *Agent) ForceAlive() uint64 {
	a.mu.Lock()
	self := a.members[a.self].Member
	self.Incarnation++
	self.State = StateAlive
	a.originateLocked(self)
	inc := self.Incarnation
	fire := a.takeChangeLocked()
	a.mu.Unlock()
	fire()
	return inc
}

// Subscribe registers a view-change callback and fires it once with the
// current view. Callbacks run synchronously on gossip goroutines — they
// must be fast and must not call back into the Agent while blocking.
func (a *Agent) Subscribe(fn func(View)) {
	a.mu.Lock()
	a.subs = append(a.subs, fn)
	v := a.viewLocked()
	a.mu.Unlock()
	fn(v)
}

// View snapshots the agent's current membership view.
func (a *Agent) View() View {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.viewLocked()
}

// Epoch is the agent's current membership epoch.
func (a *Agent) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// Incarnation is the agent's own current incarnation number.
func (a *Agent) Incarnation() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.members[a.self].Incarnation
}

func (a *Agent) viewLocked() View {
	v := View{Epoch: a.epoch}
	ids := make([]string, 0, len(a.members))
	for id := range a.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= uint64(0xff)
		h *= 1099511628211
	}
	for _, id := range ids {
		rec := a.members[id]
		v.Members = append(v.Members, rec.Member)
		mix(rec.ID)
		mix(rec.Addr)
		mix(rec.Role)
		mix(fmt.Sprintf("%d/%d", rec.Incarnation, rec.State))
	}
	v.Digest = h
	return v
}

// takeChangeLocked collects the pending change notification; the returned
// closure must be called after mu is released.
func (a *Agent) takeChangeLocked() func() {
	if !a.changed {
		return func() {}
	}
	a.changed = false
	v := a.viewLocked()
	subs := append([]func(View){}, a.subs...)
	return func() {
		for _, fn := range subs {
			fn(v)
		}
	}
}

func (a *Agent) bumpEpochLocked() uint64 {
	a.epoch++
	a.epochBumps++
	return a.epoch
}

// originateLocked records a locally-originated state change, stamps it
// with a fresh epoch, and queues it for dissemination.
func (a *Agent) originateLocked(m Member) {
	stamp := a.bumpEpochLocked()
	rec, ok := a.members[m.ID]
	if !ok {
		rec = &memberRecord{}
		a.members[m.ID] = rec
	}
	rec.Member = m
	rec.stamp = stamp
	if m.State == StateSuspect {
		rec.suspectAt = a.cfg.Now().Add(a.suspicionTimeoutLocked())
	}
	a.enqueueLocked(Update{Member: m, Epoch: stamp})
	a.changed = true
}

// supersedes is the SWIM precedence rule: a higher incarnation always
// wins; at equal incarnation the stronger claim (dead > suspect > alive)
// wins.
func supersedes(u Update, rec *memberRecord) bool {
	if u.Incarnation != rec.Incarnation {
		return u.Incarnation > rec.Incarnation
	}
	return u.State > rec.State
}

// applyLocked merges one rumor into the member table, returning whether it
// changed anything. Rumors about the agent itself that claim anything but
// alive are refuted on the spot: the agent bumps its incarnation past the
// rumor's and re-asserts itself, which overrides the rumor everywhere it
// spread.
func (a *Agent) applyLocked(u Update) bool {
	if u.ID == a.self {
		selfRec := a.members[a.self]
		if u.State != StateAlive && u.Incarnation >= selfRec.Incarnation {
			m := selfRec.Member
			m.Incarnation = u.Incarnation + 1
			m.State = StateAlive
			a.originateLocked(m)
			a.refutations++
			a.cfg.Logf("cluster: gossip %s refuted %s rumor at inc %d (now inc %d)",
				a.self, u.State, u.Incarnation, m.Incarnation)
			return true
		}
		if u.State == StateAlive && u.Incarnation > selfRec.Incarnation {
			// The wire remembers a newer self-assertion than we do (e.g. a
			// restart raced an old refutation): adopt it so our own future
			// refutations supersede it.
			selfRec.Incarnation = u.Incarnation
			a.changed = true
			return true
		}
		return false
	}
	rec, known := a.members[u.ID]
	if known && !supersedes(u, rec) {
		return false
	}
	if !known {
		rec = &memberRecord{}
		a.members[u.ID] = rec
		rec.Member = u.Member
	} else {
		prev := rec.State
		rec.Incarnation = u.Incarnation
		rec.State = u.State
		if u.Addr != "" {
			rec.Addr = u.Addr
		}
		if u.Role != "" {
			rec.Role = u.Role
		}
		if prev == StateDead && u.State == StateAlive {
			a.cfg.Logf("cluster: gossip %s re-admits %s at inc %d", a.self, u.ID, u.Incarnation)
		}
	}
	rec.stamp = u.Epoch
	if rec.State == StateSuspect {
		rec.suspectAt = a.cfg.Now().Add(a.suspicionTimeoutLocked())
	}
	if a.epoch+1 > u.Epoch {
		a.epoch++
	} else {
		a.epoch = u.Epoch
	}
	a.epochBumps++
	a.enqueueLocked(Update{Member: rec.Member, Epoch: rec.stamp})
	a.updatesApplied++
	a.changed = true
	return true
}

func (a *Agent) suspicionTimeoutLocked() time.Duration {
	if a.cfg.SuspicionTimeout > 0 {
		return a.cfg.SuspicionTimeout
	}
	n := len(a.members)
	lg := int(math.Ceil(math.Log2(float64(n + 1))))
	if lg < 1 {
		lg = 1
	}
	return time.Duration(a.cfg.SuspicionMult*lg) * a.cfg.Interval
}

func (a *Agent) retransmitBudgetLocked() int {
	n := len(a.members)
	lg := int(math.Ceil(math.Log2(float64(n + 1))))
	if lg < 1 {
		lg = 1
	}
	return a.cfg.RetransmitMult * lg
}

// enqueueLocked queues one rumor for piggybacked dissemination, replacing
// any queued rumor about the same member.
func (a *Agent) enqueueLocked(u Update) {
	budget := a.retransmitBudgetLocked()
	for _, q := range a.queue {
		if q.u.ID == u.ID {
			q.u = u
			q.left = budget
			return
		}
	}
	a.queue = append(a.queue, &queuedUpdate{u: u, left: budget})
}

// takePiggybackLocked selects up to MaxPiggyback rumors, preferring the
// least-transmitted, and spends one transmission from each.
func (a *Agent) takePiggybackLocked() []Update {
	if len(a.queue) == 0 {
		return nil
	}
	sort.SliceStable(a.queue, func(i, j int) bool { return a.queue[i].left > a.queue[j].left })
	n := a.cfg.MaxPiggyback
	if n > len(a.queue) {
		n = len(a.queue)
	}
	out := make([]Update, 0, n)
	for _, q := range a.queue[:n] {
		out = append(out, q.u)
		q.left--
	}
	kept := a.queue[:0]
	for _, q := range a.queue {
		if q.left > 0 {
			kept = append(kept, q)
		}
	}
	a.queue = kept
	return out
}

func (a *Agent) fullStateLocked() []Update {
	out := make([]Update, 0, len(a.members))
	for _, rec := range a.members {
		out = append(out, Update{Member: rec.Member, Epoch: rec.stamp})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// composeLocked builds an outgoing message: self snapshot, current epoch,
// and either the piggyback queue or the full table.
func (a *Agent) composeLocked(typ string, full bool) *GossipMsg {
	msg := &GossipMsg{
		Version: GossipVersion,
		Type:    typ,
		From:    a.members[a.self].Member,
		Epoch:   a.epoch,
		Sync:    full,
	}
	if full {
		msg.Updates = a.fullStateLocked()
	} else {
		msg.Updates = a.takePiggybackLocked()
	}
	return msg
}

// receiveLocked merges one inbound message: clocks merge, the sender is
// first-hand alive evidence, and every carried rumor applies.
func (a *Agent) receiveLocked(msg *GossipMsg) {
	if msg.Epoch > a.epoch {
		a.epoch = msg.Epoch
	}
	if msg.From.ID != a.self {
		from := msg.From
		from.State = StateAlive
		a.applyLocked(Update{Member: from, Epoch: msg.Epoch})
	}
	for _, u := range msg.Updates {
		a.applyLocked(u)
	}
	if msg.Sync {
		a.fullSyncs++
	}
}

// HandleMessage applies one inbound message and builds the reply. The
// ping-req relay probes the named target synchronously (bounded by
// ProbeTimeout) so the requester's single round trip carries the verdict.
func (a *Agent) HandleMessage(msg *GossipMsg) *GossipMsg {
	a.mu.Lock()
	a.receiveLocked(msg)
	var reply *GossipMsg
	var relayTo Member
	switch msg.Type {
	case gossipJoin:
		a.joinsServed++
		a.cfg.Logf("cluster: gossip %s admits %s (%s) via join", a.self, msg.From.ID, msg.From.Addr)
		reply = a.composeLocked(gossipAck, true)
	case gossipPingReq:
		relayTo = *msg.Target
	default: // ping, ack
		reply = a.composeLocked(gossipAck, msg.Sync)
	}
	fire := a.takeChangeLocked()
	a.mu.Unlock()
	fire()
	if reply != nil {
		return reply
	}

	// Relay leg of an indirect probe: ping the target on the requester's
	// behalf and report whether it answered.
	a.mu.Lock()
	ping := a.composeLocked(gossipPing, false)
	a.mu.Unlock()
	ok := false
	if resp, err := a.cfg.Transport.Exchange(relayTo.Addr, ping, a.cfg.ProbeTimeout); err == nil {
		ok = true
		a.mu.Lock()
		a.receiveLocked(resp)
		a.mu.Unlock()
	}
	a.mu.Lock()
	reply = a.composeLocked(gossipAck, false)
	reply.Ack = ok
	fire = a.takeChangeLocked()
	a.mu.Unlock()
	fire()
	return reply
}

// Handler mounts the agent at /v1/gossip.
func (a *Agent) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxGossipBody))
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "read body: "+err.Error())
			return
		}
		msg, err := DecodeGossip(body)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, a.HandleMessage(msg))
	}
}

// TickOnce runs one SWIM protocol period: expire overdue suspicions to
// dead, direct-ping one member from the shuffled rotation, fall back to k
// indirect ping-reqs on a miss, and suspect the member if nobody reaches
// it. Exposed so tests drive the protocol without timing dependence.
func (a *Agent) TickOnce() {
	a.mu.Lock()
	a.tick++
	a.expireSuspicionsLocked()
	target, ok := a.nextProbeTargetLocked()
	if !ok {
		fire := a.takeChangeLocked()
		a.mu.Unlock()
		fire()
		return
	}
	full := a.cfg.SyncEvery > 0 && a.tick%uint64(a.cfg.SyncEvery) == 0
	msg := a.composeLocked(gossipPing, full)
	relays := a.relayCandidatesLocked(target.ID)
	a.pingsSent++
	fire := a.takeChangeLocked()
	a.mu.Unlock()
	fire()

	if reply, err := a.cfg.Transport.Exchange(target.Addr, msg, a.cfg.ProbeTimeout); err == nil {
		a.mu.Lock()
		a.pingAcks++
		a.receiveLocked(reply)
		fire := a.takeChangeLocked()
		a.mu.Unlock()
		fire()
		return
	}

	a.mu.Lock()
	a.pingTimeouts++
	reqs := make([]*GossipMsg, len(relays))
	for i := range relays {
		req := a.composeLocked(gossipPingReq, false)
		t := target
		req.Target = &t
		reqs[i] = req
		a.indirectReqs++
	}
	fire = a.takeChangeLocked()
	a.mu.Unlock()
	fire()

	acked := false
	if len(relays) > 0 {
		var wg sync.WaitGroup
		replies := make([]*GossipMsg, len(relays))
		for i := range relays {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// The relay's nested ping rides inside this round trip, so
				// allow both legs.
				if r, err := a.cfg.Transport.Exchange(relays[i].Addr, reqs[i], 2*a.cfg.ProbeTimeout); err == nil {
					replies[i] = r
				}
			}(i)
		}
		wg.Wait()
		a.mu.Lock()
		for _, r := range replies {
			if r == nil {
				continue
			}
			a.receiveLocked(r)
			if r.Ack {
				acked = true
				a.indirectAcks++
			}
		}
		fire = a.takeChangeLocked()
		a.mu.Unlock()
		fire()
	}
	if acked {
		return
	}

	// Nobody reached it: suspect, unless something newer already landed.
	a.mu.Lock()
	if rec, known := a.members[target.ID]; known &&
		rec.State == StateAlive && rec.Incarnation == target.Incarnation {
		m := rec.Member
		m.State = StateSuspect
		a.originateLocked(m)
		a.suspectsDeclared++
		a.cfg.Logf("cluster: gossip %s suspects %s at inc %d", a.self, m.ID, m.Incarnation)
	}
	fire = a.takeChangeLocked()
	a.mu.Unlock()
	fire()
}

// expireSuspicionsLocked confirms overdue suspects dead.
func (a *Agent) expireSuspicionsLocked() {
	now := a.cfg.Now()
	for _, rec := range a.members {
		if rec.ID == a.self || rec.State != StateSuspect || now.Before(rec.suspectAt) {
			continue
		}
		m := rec.Member
		m.State = StateDead
		a.originateLocked(m)
		a.deadConfirmed++
		a.cfg.Logf("cluster: gossip %s confirms %s dead at inc %d", a.self, m.ID, m.Incarnation)
	}
}

// nextProbeTargetLocked walks a shuffled rotation over the non-dead,
// non-self members (SWIM's round-robin randomized probe order: every
// member is probed once per rotation, in an order no two agents share).
func (a *Agent) nextProbeTargetLocked() (Member, bool) {
	for tries := 0; tries < 2; tries++ {
		for a.orderAt < len(a.order) {
			id := a.order[a.orderAt]
			a.orderAt++
			rec, known := a.members[id]
			if known && rec.State != StateDead && rec.Addr != "" {
				return rec.Member, true
			}
		}
		a.order = a.order[:0]
		for id, rec := range a.members {
			if id != a.self && rec.State != StateDead && rec.Addr != "" {
				a.order = append(a.order, id)
			}
		}
		sort.Strings(a.order)
		a.rng.Shuffle(len(a.order), func(i, j int) { a.order[i], a.order[j] = a.order[j], a.order[i] })
		a.orderAt = 0
		if len(a.order) == 0 {
			return Member{}, false
		}
	}
	return Member{}, false
}

// relayCandidatesLocked picks up to k random alive members (excluding self
// and the probe target) to relay an indirect ping-req.
func (a *Agent) relayCandidatesLocked(targetID string) []Member {
	var pool []Member
	for id, rec := range a.members {
		if id == a.self || id == targetID || rec.State != StateAlive || rec.Addr == "" {
			continue
		}
		pool = append(pool, rec.Member)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].ID < pool[j].ID })
	a.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > a.cfg.IndirectPeers {
		pool = pool[:a.cfg.IndirectPeers]
	}
	return pool
}

// Run drives protocol periods until ctx ends, jittering each period ±25%
// so fleet probes spread instead of firing in lockstep.
func (a *Agent) Run(ctx context.Context) {
	for {
		a.mu.Lock()
		jitter := time.Duration(a.rng.Int63n(int64(a.cfg.Interval)/2+1)) - a.cfg.Interval/4
		a.mu.Unlock()
		select {
		case <-ctx.Done():
			return
		case <-time.After(a.cfg.Interval + jitter):
			a.TickOnce()
		}
	}
}

// MembershipStats snapshots the agent for /v1/stats.
func (a *Agent) MembershipStats() *serve.MembershipStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &serve.MembershipStats{
		Epoch:            a.epoch,
		Digest:           fmt.Sprintf("%016x", a.viewLocked().Digest),
		Incarnation:      a.members[a.self].Incarnation,
		PingsSent:        a.pingsSent,
		PingAcks:         a.pingAcks,
		PingTimeouts:     a.pingTimeouts,
		IndirectReqs:     a.indirectReqs,
		IndirectAcks:     a.indirectAcks,
		SuspectsDeclared: a.suspectsDeclared,
		Refutations:      a.refutations,
		DeadConfirmed:    a.deadConfirmed,
		UpdatesApplied:   a.updatesApplied,
		FullSyncs:        a.fullSyncs,
		JoinsSent:        a.joinsSent,
		JoinsServed:      a.joinsServed,
	}
	for _, rec := range a.members {
		st.Members++
		switch rec.State {
		case StateAlive:
			st.Alive++
		case StateSuspect:
			st.Suspect++
		case StateDead:
			st.Dead++
		}
	}
	return st
}
