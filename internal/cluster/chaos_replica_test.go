package cluster

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/netfault"
	"repro/internal/serve"
)

// awaitSettled waits for every live shard's replication queue to drain, so
// "the replica holds the policy" is a fact before a kill, not a race.
func awaitSettled(t *testing.T, lc *LocalCluster) {
	t.Helper()
	if !lc.AwaitReplication(10 * time.Second) {
		t.Fatal("replication queues did not settle")
	}
}

// liveTrainings sums demand trainings across every shard not in the kill set.
func liveTrainings(lc *LocalCluster, killed map[string]bool) int64 {
	var total int64
	for i := 0; i < lc.Shards(); i++ {
		if killed[lc.ShardID(i)] {
			continue
		}
		if srv := lc.Server(i); srv != nil {
			total += srv.Stats().Cache.Trainings
		}
	}
	return total
}

// TestClusterChaosReplicaFailover is the replica-group availability sweep:
// with R=2 owners per range, seeded kill-primary / kill-replica / kill-both
// windows over netfault stream proxies must produce zero non-200s (any live
// shard answers), and while at least one owner of a range survives, at
// least 90% of that range's post-failover answers come from a resident
// policy (cache ∈ {hit, warm, replica, speculative}) with zero new
// trainings on the survivors — failover is warm, not a retrain.
func TestClusterChaosReplicaFailover(t *testing.T) {
	proxies := map[string]*netfault.StreamProxy{}
	lc := startCluster(t, 3, func(id, addr string) (string, func(), error) {
		p, err := netfault.NewStream(addr, nil, nil)
		if err != nil {
			return "", nil, err
		}
		proxies[id] = p
		return p.Addr(), func() { p.Close() }, nil
	})
	if lc.ReplicaGroups() != 2 {
		t.Fatalf("LocalCluster defaulted to R=%d, want 2", lc.ReplicaGroups())
	}

	// Warm every range once so each owner pair holds its policies.
	for k := 0; k < clusterCount; k++ {
		if code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(k)); code != http.StatusOK {
			t.Fatalf("warm cluster %d: %d %s", k, code, body)
		}
	}

	// Owner sets come from the full (all-member) ring — the router's boot
	// ring, before any ejection.
	full := lc.Router().Ring()
	owners := make(map[int][]string, clusterCount)
	for k := 0; k < clusterCount; k++ {
		o := full.OwnersFor(k, 2)
		if len(o) != 2 || o[0] == o[1] {
			t.Fatalf("cluster %d owners %v, want 2 distinct", k, o)
		}
		owners[k] = o
	}
	// Focus on one range's owner pair for the kill schedule.
	primary, replica := owners[0][0], owners[0][1]

	heal := func(ids ...string) {
		for _, id := range ids {
			proxies[id].SetBlackhole(false)
		}
		lc.Router().ProbeOnce()
		if st := lc.Router().Stats(); st.LiveShards != 3 {
			t.Fatalf("heal of %v did not restore the fleet: %d live", ids, st.LiveShards)
		}
	}

	rng := rand.New(rand.NewSource(23))
	phases := []struct {
		name string
		kill []string
	}{
		{"kill-primary", []string{primary}},
		{"kill-replica", []string{replica}},
		{"kill-both", []string{primary, replica}},
	}
	for _, ph := range phases {
		awaitSettled(t, lc)
		killed := map[string]bool{}
		for _, id := range ph.kill {
			killed[id] = true
		}
		trainingsBefore := liveTrainings(lc, killed)
		for _, id := range ph.kill {
			proxies[id].SetBlackhole(true)
		}

		warm, counted := 0, 0
		const rounds = 3
		for r := 0; r < rounds; r++ {
			for _, k := range rng.Perm(clusterCount) {
				code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(k))
				if code != http.StatusOK {
					t.Fatalf("%s: cluster %d answered %d %s", ph.name, k, code, body)
				}
				ownerAlive := !killed[owners[k][0]] || !killed[owners[k][1]]
				if !ownerAlive {
					continue // both owners dead: 200 via a non-owner is all we ask
				}
				counted++
				var resp struct {
					Cache string `json:"cache"`
				}
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatal(err)
				}
				switch resp.Cache {
				case serve.CacheHit, serve.CacheWarm, serve.CacheReplica, serve.CacheSpeculative:
					warm++
				}
			}
		}
		if counted > 0 {
			if frac := float64(warm) / float64(counted); frac < 0.9 {
				t.Fatalf("%s: warm fraction %.2f (%d/%d), want ≥0.9", ph.name, frac, warm, counted)
			}
		}
		// Owner-alive ranges failed over warm, so the survivors must not
		// have trained anything new (kill-both forces the lone non-owner
		// cold, so only the single-kill phases pin this).
		if len(ph.kill) == 1 {
			if after := liveTrainings(lc, killed); after != trainingsBefore {
				t.Fatalf("%s: survivors trained %d new policies during warm failover", ph.name, after-trainingsBefore)
			}
		}
		heal(ph.kill...)
	}

	st := lc.Router().Stats()
	if st.NoShard503s != 0 {
		t.Fatalf("router issued %d no-shard 503s with survivors present", st.NoShard503s)
	}
	if st.Ejections < 3 {
		t.Fatalf("chaos produced %d ejections; want ≥3 (one per kill window)", st.Ejections)
	}
	droppedTotal := int64(0)
	for _, p := range proxies {
		droppedTotal += p.Counts().Dropped
	}
	if droppedTotal == 0 {
		t.Fatal("no connection passed through a fault window; chaos schedule is dead code")
	}
}

// TestClusterChaosAntiEntropyConvergence kills and heals shards for real
// (listener down, fresh cold process on restart) across two cycles and
// checks the repair loop converges: after each heal, every cluster's two
// owners hold bitwise-identical policy versions (same TrainedAt, same CRC
// over the serialized policy), because the rejoiner streamed its missing
// primary and replica ranges back from the live owners.
func TestClusterChaosAntiEntropyConvergence(t *testing.T) {
	lc := startCluster(t, 3, nil)

	for k := 0; k < clusterCount; k++ {
		if code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(k)); code != http.StatusOK {
			t.Fatalf("warm cluster %d: %d %s", k, code, body)
		}
	}
	full := lc.Router().Ring()
	idx := map[string]int{}
	for i := 0; i < lc.Shards(); i++ {
		idx[lc.ShardID(i)] = i
	}

	assertConverged := func(cycle int) {
		t.Helper()
		digests := map[string]map[int]serve.PolicyDigest{}
		for i := 0; i < lc.Shards(); i++ {
			d, err := lc.Server(i).PolicyDigests()
			if err != nil {
				t.Fatalf("cycle %d: shard %d digests: %v", cycle, i, err)
			}
			digests[lc.ShardID(i)] = d
		}
		for k := 0; k < clusterCount; k++ {
			o := full.OwnersFor(k, 2)
			a, okA := digests[o[0]][k]
			b, okB := digests[o[1]][k]
			if !okA || !okB {
				t.Fatalf("cycle %d: cluster %d missing on an owner (primary %s: %v, replica %s: %v)",
					cycle, k, o[0], okA, o[1], okB)
			}
			if !a.TrainedAt.Equal(b.TrainedAt) || a.CRC != b.CRC || a.Bytes != b.Bytes {
				t.Fatalf("cycle %d: cluster %d diverged: primary %s %+v vs replica %s %+v",
					cycle, k, o[0], a, o[1], b)
			}
		}
	}

	// Two kill/heal cycles over two distinct victims that own ranges.
	var victims []int
	for _, id := range full.Nodes() {
		if len(full.OwnedClusters(id, clusterCount)) > 0 {
			victims = append(victims, idx[id])
		}
		if len(victims) == 2 {
			break
		}
	}
	if len(victims) < 2 {
		t.Fatalf("only %d shards own ranges", len(victims))
	}

	for cycle, victim := range victims {
		awaitSettled(t, lc)
		if err := lc.KillShard(victim); err != nil {
			t.Fatal(err)
		}
		// Keep serving through the outage: every range must answer.
		for k := 0; k < clusterCount; k++ {
			if code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(k)); code != http.StatusOK {
				t.Fatalf("cycle %d: outage cluster %d: %d %s", cycle, k, code, body)
			}
		}
		if _, err := lc.RestartShard(victim); err != nil {
			t.Fatal(err)
		}
		lc.Router().ProbeOnce()
		if st := lc.Router().Stats(); st.LiveShards != 3 {
			t.Fatalf("cycle %d: %d live after heal", cycle, st.LiveShards)
		}
		awaitSettled(t, lc)
		assertConverged(cycle)
	}
}

// TestHandoffPagedPull proves a cache larger than one export page converges
// over multiple ?after= pulls: a cold joiner pulling 8 clusters at 3
// sections per page needs exactly ⌈8/3⌉ = 3 GETs against the peer.
func TestHandoffPagedPull(t *testing.T) {
	lc := startCluster(t, 1, nil)
	for k := 0; k < clusterCount; k++ {
		if code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(k)); code != http.StatusOK {
			t.Fatalf("warm cluster %d: %d %s", k, code, body)
		}
	}
	servesBefore := lc.Server(0).Stats().Cluster.HandoffServes

	joiner, err := serve.NewServer(testTemplate(), testStore(t), nil, fastServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	owned := make([]int, clusterCount)
	for k := range owned {
		owned[k] = k
	}
	peer := Shard{ID: lc.ShardID(0), Addr: lc.ShardAddr(0)}
	installed := PullWarmState(joiner, []Shard{peer}, owned, nil, 3, 0, nil)
	if installed != clusterCount {
		t.Fatalf("paged pull installed %d/%d policies", installed, clusterCount)
	}
	if pages := lc.Server(0).Stats().Cluster.HandoffServes - servesBefore; pages != 3 {
		t.Fatalf("paged pull issued %d export GETs, want 3 (8 clusters / 3 per page)", pages)
	}
	// Pulled primary ranges answer warm with no training spent.
	st := joiner.Stats()
	if st.Cache.WarmRestores != int64(clusterCount) || st.Cache.Trainings != 0 {
		t.Fatalf("joiner restored %d warm / trained %d, want %d/0", st.Cache.WarmRestores, st.Cache.Trainings, clusterCount)
	}
}

// TestRouterConcurrentProbeSingleEjection pins the probe path's concurrency
// contract: Run's ticker and test-driven ProbeOnce calls may overlap, and a
// dead shard must be ejected exactly once (and re-admitted exactly once)
// however many probe passes race over the transition. Run under -race this
// also proves misses/probeConn are properly serialized.
func TestRouterConcurrentProbeSingleEjection(t *testing.T) {
	lc := startCluster(t, 3, nil)
	if err := lc.KillShard(0); err != nil {
		t.Fatal(err)
	}

	probeStorm := func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					lc.Router().ProbeOnce()
				}
			}()
		}
		wg.Wait()
	}

	probeStorm()
	st := lc.Router().Stats()
	if st.Ejections != 1 {
		t.Fatalf("32 racing probe passes ejected %d times, want exactly 1", st.Ejections)
	}
	if st.LiveShards != 2 {
		t.Fatalf("%d live shards after ejection, want 2", st.LiveShards)
	}

	if _, err := lc.RestartShard(0); err != nil {
		t.Fatal(err)
	}
	probeStorm()
	st = lc.Router().Stats()
	if st.Rejoins != 1 {
		t.Fatalf("racing probe passes re-admitted %d times, want exactly 1", st.Rejoins)
	}
	if st.LiveShards != 3 {
		t.Fatalf("%d live shards after rejoin, want 3", st.LiveShards)
	}
}
