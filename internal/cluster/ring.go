// Package cluster is the horizontal-scaling tier over internal/serve: a
// consistent-hash ring partitions policy-cache ownership across N
// dcta-server replicas, a thin router resolves each request's cluster key
// (EnvironmentStore.NearestIndex of its signature — the same key the
// policy cache uses) to its owning shard and proxies the request over
// persistent raw-HTTP connections, and a warm-handoff client lets a
// joining shard pull the checkpoint sections for exactly its owned
// clusters from the previous owners, so membership changes move policies,
// not retraining budgets.
//
// The package splits into:
//
//   - ring.go     — the consistent-hash ring (virtual nodes, stable FNV-1a
//     placement) and the shard-map wire format served at /v1/cluster
//   - router.go   — the proxying front-end: membership with healthz
//     probing and liveness misses, failure-triggered ejection with
//     retry-on-survivor (requests degrade to the new owner's path, never
//     5xx), per-shard counters and the aggregate stats endpoint
//   - handoff.go  — shard-scoped checkpoint pull: ownership enumeration
//     and the peer-to-peer warm-boot client
//   - local.go    — an in-process N-shard + router topology used by the
//     tests, dcta-load's router mode and the CI scale-out gate
package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// DefaultVNodes is the per-shard virtual-node count. 64 points per shard
// keeps the worst/best owned-fraction ratio under ~2 for small fleets while
// the ring stays tiny (3 shards = 192 points, one binary search per route).
const DefaultVNodes = 64

// fnv1a64 is the ring's placement hash: stable across processes, Go
// versions and architectures, so every node that knows the member list
// derives bit-identical ownership. Raw FNV-1a diffuses poorly into the
// high bits on short, similar strings ("s0#0".."s2#63" cluster badly
// enough to skew ownership 2:1), and ring placement orders by the full
// 64-bit value — so a finalizer mixes the bits before use.
func fnv1a64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	// fmix64 finalizer: full avalanche so adjacent inputs land far apart.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// keyHash places a cluster key on the ring. Cluster keys are small dense
// store indices; hashing their decimal form spreads them uniformly.
func keyHash(key int) uint64 { return fnv1a64("k:" + strconv.Itoa(key)) }

type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring: every mutation returns a new
// ring, so readers (the router's hot path) can hold a snapshot without
// locking. Two rings built over the same member set — in any insertion
// order, on any machine — resolve every key identically.
type Ring struct {
	vnodes int
	nodes  []string // sorted member ids
	points []ringPoint
}

// NewRing builds a ring of vnodes virtual nodes per member. Node ids must
// be unique and non-empty.
func NewRing(vnodes int, nodes []string) (*Ring, error) {
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n)
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(r.nodes)*vnodes)
	for _, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{fnv1a64(n + "#" + strconv.Itoa(v)), n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between two nodes' points is astronomically
		// unlikely; break it by node id so resolution stays order-free.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// VNodes is the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Nodes returns the sorted member ids.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len is the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner resolves a cluster key to its owning node: the first ring point at
// or clockwise of the key's hash. An empty ring owns nothing ("").
func (r *Ring) Owner(key int) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].node
}

// OwnersFor resolves a cluster key to its first n distinct owners in
// successor order: the primary (identical to Owner) followed by the next
// distinct nodes clockwise. The walk order gives the replica-group
// failover property the router relies on: removing owners[0] from the
// ring makes owners[1] the key's new primary, so an ejection needs no
// routing change — the standard retry already lands on the replica.
// Returns min(n, Len) owners; an empty ring owns nothing (nil).
func (r *Ring) OwnersFor(key, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0 // wrap past the highest point
	}
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		node := r.points[(start+i)%len(r.points)].node
		if seen[node] {
			continue
		}
		seen[node] = true
		owners = append(owners, node)
	}
	return owners
}

// ReplicatedClusters enumerates the cluster keys in [0, total) for which a
// node is one of the first replicas distinct owners, split by role: primary
// (owners[0]) versus replica (owners[1..replicas-1]). With replicas <= 1 it
// degenerates to OwnedClusters and an empty replica set.
func (r *Ring) ReplicatedClusters(node string, total, replicas int) (primary, replica []int) {
	if replicas < 1 {
		replicas = 1
	}
	for k := 0; k < total; k++ {
		owners := r.OwnersFor(k, replicas)
		for i, o := range owners {
			if o != node {
				continue
			}
			if i == 0 {
				primary = append(primary, k)
			} else {
				replica = append(replica, k)
			}
			break
		}
	}
	return primary, replica
}

// WithNode returns a new ring with the node added (no-op if present).
func (r *Ring) WithNode(node string) (*Ring, error) {
	for _, n := range r.nodes {
		if n == node {
			return r, nil
		}
	}
	return NewRing(r.vnodes, append(r.Nodes(), node))
}

// WithoutNode returns a new ring with the node removed (no-op if absent).
func (r *Ring) WithoutNode(node string) (*Ring, error) {
	kept := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			kept = append(kept, n)
		}
	}
	if len(kept) == len(r.nodes) {
		return r, nil
	}
	return NewRing(r.vnodes, kept)
}

// OwnedFraction is the share of the hash space a node owns — the expected
// fraction of a large uniform key population routed to it.
func (r *Ring) OwnedFraction(node string) float64 {
	if len(r.points) == 0 {
		return 0
	}
	if len(r.points) == 1 {
		if r.points[0].node == node {
			return 1
		}
		return 0
	}
	var owned uint64
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		if p.node == node {
			owned += p.hash - prev // wrapping subtraction: arcs are mod 2^64
		}
		prev = p.hash
	}
	return float64(owned) / math.MaxUint64
}

// OwnedClusters enumerates the cluster keys in [0, total) a node owns.
func (r *Ring) OwnedClusters(node string, total int) []int {
	var out []int
	for k := 0; k < total; k++ {
		if r.Owner(k) == node {
			out = append(out, k)
		}
	}
	return out
}

// ShardMap is the cluster tier's wire-level self-description: the ring
// parameters plus per-shard identity and liveness. The router serves it at
// GET /v1/cluster; dcta-load's router mode reads it for per-shard
// reporting, and any client can rebuild the exact routing ring from it
// (Ring() below). Version guards the format.
type ShardMap struct {
	Version int         `json:"version"`
	VNodes  int         `json:"vnodes"`
	Shards  []ShardInfo `json:"shards"`
}

// ShardInfo is one shard's entry in the map.
type ShardInfo struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	// OwnedFraction is the share of the hash space the shard owns on the
	// live ring (0 while ejected).
	OwnedFraction float64 `json:"owned_fraction"`
	// RingPositions is the shard's virtual-node count on the live ring.
	RingPositions int `json:"ring_positions"`
}

// ShardMapVersion is the current wire version.
const ShardMapVersion = 1

// Shard-map bounds: a length or count beyond these means the document is
// garbage (or hostile), not a big deployment.
const (
	maxShardMapShards = 1024
	maxShardMapVNodes = 1 << 16
	maxShardIDLen     = 128
	maxShardAddrLen   = 256
)

// Validate checks structural sanity: version, bounds, unique non-empty
// ids, finite fractions in [0, 1].
func (m *ShardMap) Validate() error {
	if m.Version != ShardMapVersion {
		return fmt.Errorf("cluster: shard map version %d, want %d", m.Version, ShardMapVersion)
	}
	if m.VNodes < 1 || m.VNodes > maxShardMapVNodes {
		return fmt.Errorf("cluster: shard map vnodes %d out of range [1, %d]", m.VNodes, maxShardMapVNodes)
	}
	if len(m.Shards) > maxShardMapShards {
		return fmt.Errorf("cluster: shard map lists %d shards (limit %d)", len(m.Shards), maxShardMapShards)
	}
	seen := make(map[string]bool, len(m.Shards))
	for i, s := range m.Shards {
		if s.ID == "" || len(s.ID) > maxShardIDLen {
			return fmt.Errorf("cluster: shard %d: bad id %q", i, s.ID)
		}
		if seen[s.ID] {
			return fmt.Errorf("cluster: duplicate shard id %q", s.ID)
		}
		seen[s.ID] = true
		if len(s.Addr) > maxShardAddrLen {
			return fmt.Errorf("cluster: shard %q: address too long", s.ID)
		}
		if math.IsNaN(s.OwnedFraction) || s.OwnedFraction < 0 || s.OwnedFraction > 1 {
			return fmt.Errorf("cluster: shard %q: owned fraction %v out of [0, 1]", s.ID, s.OwnedFraction)
		}
		if s.RingPositions < 0 || s.RingPositions > maxShardMapVNodes {
			return fmt.Errorf("cluster: shard %q: ring positions %d out of range", s.ID, s.RingPositions)
		}
	}
	return nil
}

// ParseShardMap decodes and validates one shard-map document.
func ParseShardMap(data []byte) (*ShardMap, error) {
	var m ShardMap
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: shard map decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Ring rebuilds the routing ring over the map's live shards — the exact
// ring the router that served the map routes on.
func (m *ShardMap) Ring() (*Ring, error) {
	var live []string
	for _, s := range m.Shards {
		if s.Alive {
			live = append(live, s.ID)
		}
	}
	return NewRing(m.VNodes, live)
}
