package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/serve"
)

// LocalOptions shapes an in-process topology.
type LocalOptions struct {
	// Shards is the replica count (default 3).
	Shards int
	// VNodes is the per-shard virtual-node count (default DefaultVNodes).
	VNodes int
	// ReplicaGroups is the owner count per cluster range (R). Default 2:
	// primary plus one successor replica, with async policy replication
	// between them. 1 disables replication (single-owner, PR8 behavior).
	ReplicaGroups int
	// Serve configures every shard's server.
	Serve serve.Config
	// HTTP configures every shard's front-end.
	HTTP serve.HTTPOptions
	// Router configures the routing tier (VNodes is forced to match).
	Router RouterConfig
	// HandoffTimeout bounds a restarting shard's peer pulls.
	HandoffTimeout time.Duration
	// WrapShardAddr optionally interposes on the router→shard link: given a
	// shard's id and real address it returns the address the router should
	// dial (e.g. a netfault proxy) and a closer. Nil routes direct.
	WrapShardAddr func(id, addr string) (string, func(), error)
	// Gossip shapes the membership plane (on by default: every shard runs a
	// SWIM agent on its serve listener, the router subscribes to the
	// converged view and re-shapes its ring on epoch bumps).
	Gossip LocalGossipOptions
	// Logf sinks progress lines (default: discard).
	Logf func(format string, args ...any)
}

// LocalGossipOptions tunes the in-process membership plane.
type LocalGossipOptions struct {
	// Disable turns gossip off entirely: the topology runs on the static
	// bootstrap list and router probes alone (pre-gossip behavior).
	Disable bool
	// Interval between protocol ticks (default 40ms — test-speed).
	Interval time.Duration
	// ProbeTimeout bounds one direct ping (default 150ms).
	ProbeTimeout time.Duration
	// SuspicionTimeout is how long a suspect may stay unrefuted before it is
	// confirmed dead (default 600ms).
	SuspicionTimeout time.Duration
	// IndirectPeers is how many relays to try when a direct ping misses
	// (default 2).
	IndirectPeers int
	// Seed derives every member's deterministic probe-order and jitter
	// stream (default 1; member index is mixed in).
	Seed int64
	// WrapTransport optionally interposes on a member's gossip exchanges
	// (chaos tests inject directed partitions here). Nil uses direct HTTP.
	WrapTransport func(selfID string, t Transport) Transport
}

func (o LocalGossipOptions) withDefaults() LocalGossipOptions {
	if o.Interval <= 0 {
		o.Interval = 40 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 150 * time.Millisecond
	}
	if o.SuspicionTimeout <= 0 {
		o.SuspicionTimeout = 600 * time.Millisecond
	}
	if o.IndirectPeers <= 0 {
		o.IndirectPeers = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o LocalOptions) withDefaults() LocalOptions {
	if o.Shards < 1 {
		o.Shards = 3
	}
	if o.VNodes < 1 {
		o.VNodes = DefaultVNodes
	}
	if o.ReplicaGroups < 1 {
		o.ReplicaGroups = DefaultReplicaGroups
	}
	if o.HandoffTimeout <= 0 {
		o.HandoffTimeout = DefaultHandoffTimeout
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// localShard is one in-process replica and its lifecycle handles.
type localShard struct {
	id   string
	addr string // concrete listen address, stable across restarts

	mu      sync.Mutex
	srv     *serve.Server
	cancel  context.CancelFunc
	done    chan error
	agent   *Agent
	manager *MembershipManager
	// gossipStop tears down the shard's agent and manager; killed shards
	// must stop gossiping (a dead process can't defend itself — that's the
	// point of the protocol).
	gossipStop context.CancelFunc
}

// gossipHandler serves /v1/gossip behind the shard's regular middleware
// chain. The agent is created only after the listener binds (it advertises
// the concrete address), so the route resolves it late.
func (sh *localShard) gossipHandler(w http.ResponseWriter, r *http.Request) {
	sh.mu.Lock()
	a := sh.agent
	sh.mu.Unlock()
	if a == nil {
		http.Error(w, `{"error":"gossip agent not up"}`, http.StatusServiceUnavailable)
		return
	}
	a.Handler()(w, r)
}

// LocalCluster is an in-process N-shard + router topology over one shared
// scenario world: every shard serves the same template/store/local model
// (exactly as N processes booted from the same scenario seed would), the
// router fronts them on a loopback port. It backs the cluster tests,
// dcta-load's router mode and the CI scale-out gate.
type LocalCluster struct {
	opts     LocalOptions
	template *core.Problem
	store    *core.EnvironmentStore
	local    *alloc.LocalModel

	router       *Router
	routerAddr   string
	routerAgent  *Agent
	routerCancel context.CancelFunc
	routerDone   chan error

	mu       sync.Mutex // guards shards/wrapped mutation (AddShard)
	shards   []*localShard
	wrapped  []Shard // what the router dials (possibly proxied)
	closers  []func()
	closeOne sync.Once
}

// StartLocal boots the topology: every shard live, identities assigned from
// the full ring, router probing.
func StartLocal(template *core.Problem, store *core.EnvironmentStore, local *alloc.LocalModel, opts LocalOptions) (*LocalCluster, error) {
	opts = opts.withDefaults()
	lc := &LocalCluster{opts: opts, template: template, store: store, local: local}

	for i := 0; i < opts.Shards; i++ {
		sh := &localShard{id: "s" + strconv.Itoa(i)}
		if err := lc.bootShard(sh, ""); err != nil {
			lc.Close()
			return nil, err
		}
		lc.shards = append(lc.shards, sh)
	}
	// Identities come from the full (all-member) ring: ownership is a
	// property of the deployment, not of the router's current live view.
	// Replication flows shard↔shard over the real addresses — a fault
	// wrapper on the router→shard link never cuts the replica channel.
	all := lc.allShards()
	for i, sh := range lc.shards {
		if _, _, err := AssignIdentity(sh.srv, all[i], all, opts.VNodes, opts.ReplicaGroups); err != nil {
			lc.Close()
			return nil, err
		}
		if err := EnableShardReplication(sh.srv, all[i], all, opts.VNodes, opts.ReplicaGroups, opts.Logf); err != nil {
			lc.Close()
			return nil, err
		}
	}

	// Gossip plane: every shard's agent boots seeded with the full member
	// list (the bootstrap equivalent of a join), and its membership manager
	// takes over identity/replication re-shaping from here on.
	if !opts.Gossip.Disable {
		seed := lc.memberList()
		for _, sh := range lc.shards {
			if _, err := lc.startShardGossip(sh, seed, nil); err != nil {
				lc.Close()
				return nil, err
			}
		}
	}

	// Interpose on the router→shard links if asked.
	for _, sh := range lc.shards {
		routeAddr := sh.addr
		if opts.WrapShardAddr != nil {
			wrapped, closer, err := opts.WrapShardAddr(sh.id, sh.addr)
			if err != nil {
				lc.Close()
				return nil, err
			}
			routeAddr = wrapped
			lc.closers = append(lc.closers, closer)
		}
		lc.wrapped = append(lc.wrapped, Shard{ID: sh.id, Addr: routeAddr})
	}

	rcfg := opts.Router
	rcfg.VNodes = opts.VNodes
	if rcfg.Logf == nil {
		rcfg.Logf = opts.Logf
	}
	router, err := NewRouter(store, lc.wrapped, rcfg)
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.router = router

	// The router binds before serving so its gossip agent can advertise a
	// concrete address; it participates as a router-role member (an extra
	// disseminator and prober, never a ring owner).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lc.Close()
		return nil, fmt.Errorf("cluster: router: %w", err)
	}
	lc.routerAddr = ln.Addr().String()
	if !opts.Gossip.Disable {
		agent, err := NewAgent(Member{ID: "router", Addr: lc.routerAddr, Role: RoleRouter}, lc.gossipConfig("router"))
		if err != nil {
			ln.Close()
			lc.Close()
			return nil, err
		}
		agent.Seed(lc.memberList())
		lc.routerAgent = agent
		router.AttachMembership(agent)
	}
	ctx, cancel := context.WithCancel(context.Background())
	lc.routerCancel = cancel
	lc.routerDone = make(chan error, 1)
	go func() {
		lc.routerDone <- ServeRouter(ctx, ln, router)
	}()
	opts.Logf("cluster: %d shards + router on %s\n", opts.Shards, lc.routerAddr)
	return lc, nil
}

// bootShard builds a fresh server for sh and serves it. addr "" binds an
// ephemeral port (first boot); otherwise the shard rebinds its old address.
func (lc *LocalCluster) bootShard(sh *localShard, addr string) error {
	srv, err := serve.NewServer(lc.template, lc.store, lc.local, lc.opts.Serve)
	if err != nil {
		return err
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	httpOpts := lc.opts.HTTP
	if !lc.opts.Gossip.Disable {
		// Mount /v1/gossip behind the shard's regular middleware. Each shard
		// gets its own route table: the handler closes over this shard.
		extra := make(map[string]http.HandlerFunc, len(httpOpts.ExtraRoutes)+1)
		for p, h := range httpOpts.ExtraRoutes {
			extra[p] = h
		}
		extra[GossipPath] = sh.gossipHandler
		httpOpts.ExtraRoutes = extra
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	ready := make(chan string, 1)
	go func() {
		done <- serve.ListenAndServe(ctx, addr, srv, httpOpts, func(a net.Addr) { ready <- a.String() })
	}()
	select {
	case a := <-ready:
		sh.mu.Lock()
		sh.srv, sh.cancel, sh.done = srv, cancel, done
		if sh.addr == "" {
			sh.addr = a
		}
		sh.mu.Unlock()
		return nil
	case err := <-done:
		cancel()
		return fmt.Errorf("cluster: shard %s: %w", sh.id, err)
	}
}

func (lc *LocalCluster) allShards() []Shard {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]Shard, 0, len(lc.shards))
	for _, sh := range lc.shards {
		out = append(out, Shard{ID: sh.id, Addr: sh.addr})
	}
	return out
}

// memberList renders the current shard set as gossip members (all alive —
// bootstrap seeds assert liveness optimistically; the protocol corrects).
func (lc *LocalCluster) memberList() []Member {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]Member, 0, len(lc.shards))
	for _, sh := range lc.shards {
		out = append(out, Member{ID: sh.id, Addr: sh.addr, Role: RoleShard, State: StateAlive})
	}
	return out
}

// liveGossipAddrs is the set of gossip endpoints a (re)joining member can
// dial: every live shard plus the router's agent.
func (lc *LocalCluster) liveGossipAddrs(exclude string) []string {
	lc.mu.Lock()
	shards := append([]*localShard(nil), lc.shards...)
	lc.mu.Unlock()
	var out []string
	for _, sh := range shards {
		if sh.id == exclude {
			continue
		}
		sh.mu.Lock()
		up := sh.srv != nil && sh.agent != nil
		sh.mu.Unlock()
		if up {
			out = append(out, sh.addr)
		}
	}
	if lc.routerAgent != nil {
		out = append(out, lc.routerAddr)
	}
	return out
}

// gossipConfig derives one member's agent config: shared timings, a
// member-distinct deterministic seed, and the chaos transport wrapper.
func (lc *LocalCluster) gossipConfig(selfID string) GossipConfig {
	g := lc.opts.Gossip.withDefaults()
	cfg := GossipConfig{
		Interval:         g.Interval,
		ProbeTimeout:     g.ProbeTimeout,
		SuspicionTimeout: g.SuspicionTimeout,
		IndirectPeers:    g.IndirectPeers,
		Seed:             g.Seed ^ int64(fnv1a64(selfID)&0x7fffffffffffffff),
		Logf:             lc.opts.Logf,
	}
	if g.WrapTransport != nil {
		cfg.Transport = g.WrapTransport(selfID, HTTPTransport{})
	}
	return cfg
}

// startShardGossip boots sh's agent (joining via joinAddrs and/or seeded
// with a static member list) and its membership manager. Returns how many
// policies the initial identity application warm-pulled.
func (lc *LocalCluster) startShardGossip(sh *localShard, seed []Member, joinAddrs []string) (int, error) {
	agent, err := NewAgent(Member{ID: sh.id, Addr: sh.addr, Role: RoleShard}, lc.gossipConfig(sh.id))
	if err != nil {
		return 0, err
	}
	if len(joinAddrs) > 0 {
		if err := agent.Join(joinAddrs); err != nil {
			// Fail soft when we also have a static seed (anti-entropy will
			// re-converge us); a flag-free join has nothing else to go on.
			if len(seed) == 0 {
				return 0, fmt.Errorf("cluster: gossip: %s join: %w", sh.id, err)
			}
			lc.opts.Logf("cluster: gossip: %s join failed (%v), falling back to static seed\n", sh.id, err)
		}
	}
	if len(seed) > 0 {
		agent.Seed(seed)
	}
	if len(joinAddrs) > 0 {
		// Rejoin bump: assert liveness above any suspicion the fleet may
		// hold from before the restart, even one the join seed hasn't heard
		// of yet. A suspect at our old incarnation could otherwise outrank
		// our equal-incarnation alive (stronger state wins at equal inc).
		agent.ForceAlive()
	}
	sh.mu.Lock()
	srv := sh.srv
	sh.mu.Unlock()
	if srv == nil {
		return 0, fmt.Errorf("cluster: gossip: %s not serving", sh.id)
	}
	ctx, cancel := context.WithCancel(context.Background())
	mgr, pulled, err := ManageMembership(ctx, srv, agent, Shard{ID: sh.id, Addr: sh.addr},
		lc.opts.VNodes, lc.opts.ReplicaGroups, 0, lc.opts.HandoffTimeout, lc.opts.Logf)
	if err != nil {
		cancel()
		return 0, err
	}
	sh.mu.Lock()
	sh.agent, sh.manager, sh.gossipStop = agent, mgr, cancel
	sh.mu.Unlock()
	go agent.Run(ctx)
	return pulled, nil
}

// awaitRouterSeesAlive blocks until the router's membership view holds id
// alive at incarnation >= minInc and the ring mask is lifted (or the
// timeout passes). Once the router has applied that record, no stale
// lower-incarnation obituary can re-mask the shard — precedence rejects it
// — so tests observing LiveShards after this are deterministic.
func (lc *LocalCluster) awaitRouterSeesAlive(id string, minInc uint64, timeout time.Duration) bool {
	if lc.router == nil || lc.routerAgent == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		if m, ok := lc.routerAgent.View().Find(id); ok && m.State == StateAlive && m.Incarnation >= minInc {
			lc.router.mu.RLock()
			ss := lc.router.shards[id]
			lc.router.mu.RUnlock()
			if ss != nil && !ss.gossipDead.Load() {
				return true
			}
		}
		if time.Now().After(deadline) {
			lc.opts.Logf("cluster: gossip: router did not re-admit %s within %v\n", id, timeout)
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func shardIDs(shards []Shard) []string {
	ids := make([]string, 0, len(shards))
	for _, s := range shards {
		ids = append(ids, s.ID)
	}
	return ids
}

// Addr is the router's listen address.
func (lc *LocalCluster) Addr() string { return lc.routerAddr }

// Router exposes the routing tier (stats, ProbeOnce for tests).
func (lc *LocalCluster) Router() *Router { return lc.router }

// Shards is the replica count.
func (lc *LocalCluster) Shards() int { return len(lc.shards) }

// ShardAddr is shard i's real (unwrapped) address.
func (lc *LocalCluster) ShardAddr(i int) string { return lc.shards[i].addr }

// ShardID is shard i's ring id.
func (lc *LocalCluster) ShardID(i int) string { return lc.shards[i].id }

// Server is shard i's live server, or nil while killed.
func (lc *LocalCluster) Server(i int) *serve.Server {
	sh := lc.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.srv
}

// ReplicaGroups is the deployment's owner count per cluster range.
func (lc *LocalCluster) ReplicaGroups() int { return lc.opts.ReplicaGroups }

// AwaitReplication polls until every live shard's replication queue has
// drained (all enqueued snapshots pushed or dropped) or the timeout passes.
// Chaos tests and the loadgen failover probe call this before killing a
// primary, so "the replica holds the policy" is a fact, not a race.
func (lc *LocalCluster) AwaitReplication(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		settled := true
		for i := range lc.shards {
			if srv := lc.Server(i); srv != nil && !srv.ReplicationSettled() {
				settled = false
				break
			}
		}
		if settled {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// KillShard stops shard i's server (graceful drain, listener closed).
// Requests owned by its ranges fail over to survivors on the router's next
// ejection — by I/O error, drain 503, or missed probes, whichever fires
// first.
func (lc *LocalCluster) KillShard(i int) error {
	sh := lc.shards[i]
	sh.mu.Lock()
	cancel, done := sh.cancel, sh.done
	gstop := sh.gossipStop
	sh.srv, sh.cancel, sh.done = nil, nil, nil
	sh.agent, sh.manager, sh.gossipStop = nil, nil, nil
	sh.mu.Unlock()
	if cancel == nil {
		return fmt.Errorf("cluster: shard %d already down", i)
	}
	if gstop != nil {
		// A killed process stops gossiping — the survivors must detect the
		// death, not be told about it.
		gstop()
	}
	cancel()
	err := <-done
	lc.opts.Logf("cluster: shard %s killed\n", sh.id)
	return err
}

// RestartShard boots shard i back on its original address with a fresh
// (cold) server, then warms it by pulling its owned clusters' checkpoint
// sections from the surviving peers. The router re-admits it on the next
// successful probe.
func (lc *LocalCluster) RestartShard(i int) (pulled int, err error) {
	sh := lc.shards[i]
	sh.mu.Lock()
	down := sh.cancel == nil
	sh.mu.Unlock()
	if !down {
		return 0, fmt.Errorf("cluster: shard %d still running", i)
	}
	if err := lc.bootShard(sh, sh.addr); err != nil {
		return 0, err
	}
	// Identity comes from the full member list — ownership never depends on
	// who happens to be up. Pulls from still-dead peers fail soft, and the
	// paged anti-entropy pull streams back both primary and replica ranges.
	self := Shard{ID: sh.id, Addr: sh.addr}
	all := lc.allShards()
	pulled, err = JoinWarm(lc.Server(i), self, all, lc.opts.VNodes, lc.opts.ReplicaGroups,
		lc.opts.HandoffTimeout, lc.opts.Logf)
	if err != nil {
		return pulled, err
	}
	if err := EnableShardReplication(lc.Server(i), self, all, lc.opts.VNodes, lc.opts.ReplicaGroups, lc.opts.Logf); err != nil {
		return pulled, err
	}
	if !lc.opts.Gossip.Disable {
		// Rejoin the gossip plane through any live peer: the join sync
		// surfaces our obituary (if one converged while we were down), the
		// rejoin bump refutes it at a higher incarnation, and the router
		// re-admission wait below makes the ring state deterministic for
		// callers that assert LiveShards right after this returns.
		if _, err := lc.startShardGossip(sh, lc.memberList(), lc.liveGossipAddrs(sh.id)); err != nil {
			return pulled, err
		}
		sh.mu.Lock()
		agent := sh.agent
		sh.mu.Unlock()
		lc.awaitRouterSeesAlive(sh.id, agent.Incarnation(), 5*time.Second)
	}
	lc.opts.Logf("cluster: shard %s restarted warm (%d policies pulled)\n", sh.id, pulled)
	return pulled, nil
}

// AddShard boots a brand-new shard and joins it to the fleet through the
// gossip plane alone — no flag change, no static list edit anywhere. The
// newcomer dials one live peer, learns the full member table from the join
// sync, warm-pulls the ranges it now owns, and the rest of the fleet
// (router included) re-shapes around it as the join disseminates. Returns
// the new shard's index and how many policies its join pull installed.
func (lc *LocalCluster) AddShard() (int, int, error) {
	if lc.opts.Gossip.Disable {
		return 0, 0, fmt.Errorf("cluster: AddShard needs the gossip plane")
	}
	lc.mu.Lock()
	i := len(lc.shards)
	lc.mu.Unlock()
	sh := &localShard{id: "s" + strconv.Itoa(i)}
	if err := lc.bootShard(sh, ""); err != nil {
		return 0, 0, err
	}
	joinAddrs := lc.liveGossipAddrs(sh.id)
	pulled, err := lc.startShardGossip(sh, nil, joinAddrs)
	if err != nil {
		sh.mu.Lock()
		cancel, done := sh.cancel, sh.done
		sh.mu.Unlock()
		if cancel != nil {
			cancel()
			<-done
		}
		return 0, 0, err
	}
	lc.mu.Lock()
	lc.shards = append(lc.shards, sh)
	lc.wrapped = append(lc.wrapped, Shard{ID: sh.id, Addr: sh.addr})
	lc.mu.Unlock()
	lc.awaitRouterSeesAlive(sh.id, 0, 5*time.Second)
	lc.opts.Logf("cluster: shard %s joined via gossip (%d policies pulled)\n", sh.id, pulled)
	return i, pulled, nil
}

// ShardAgent is shard i's gossip agent, or nil while killed/disabled.
func (lc *LocalCluster) ShardAgent(i int) *Agent {
	sh := lc.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.agent
}

// ShardManager is shard i's membership manager, or nil while killed/disabled.
func (lc *LocalCluster) ShardManager(i int) *MembershipManager {
	sh := lc.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.manager
}

// RouterAgent is the routing tier's gossip agent (nil when disabled).
func (lc *LocalCluster) RouterAgent() *Agent { return lc.routerAgent }

// LiveAgents snapshots every running gossip agent: live shards plus the
// router.
func (lc *LocalCluster) LiveAgents() []*Agent {
	lc.mu.Lock()
	shards := append([]*localShard(nil), lc.shards...)
	lc.mu.Unlock()
	var out []*Agent
	for _, sh := range shards {
		sh.mu.Lock()
		if sh.agent != nil {
			out = append(out, sh.agent)
		}
		sh.mu.Unlock()
	}
	if lc.routerAgent != nil {
		out = append(out, lc.routerAgent)
	}
	return out
}

// AwaitConverged polls until every live agent's view satisfies cond (nil
// accepts any) AND all views agree on (epoch, digest) — the membership
// plane's definition of converged. Returns how long convergence took.
func (lc *LocalCluster) AwaitConverged(timeout time.Duration, cond func(View) bool) (time.Duration, bool) {
	start := time.Now()
	deadline := start.Add(timeout)
	for {
		agents := lc.LiveAgents()
		views := make([]View, 0, len(agents))
		ok := len(agents) > 0
		for _, a := range agents {
			v := a.View()
			if cond != nil && !cond(v) {
				ok = false
				break
			}
			views = append(views, v)
		}
		if ok && ViewsConverged(views) {
			return time.Since(start), true
		}
		if time.Now().After(deadline) {
			return time.Since(start), false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close tears the whole topology down: router first (so nothing routes into
// dying shards), then every live shard, then the wrappers.
func (lc *LocalCluster) Close() {
	lc.closeOne.Do(func() {
		if lc.routerCancel != nil {
			lc.routerCancel()
			<-lc.routerDone
		}
		for i := range lc.shards {
			sh := lc.shards[i]
			sh.mu.Lock()
			cancel, done := sh.cancel, sh.done
			gstop := sh.gossipStop
			sh.srv, sh.cancel, sh.done = nil, nil, nil
			sh.agent, sh.manager, sh.gossipStop = nil, nil, nil
			sh.mu.Unlock()
			if gstop != nil {
				gstop()
			}
			if cancel != nil {
				cancel()
				<-done
			}
		}
		for _, c := range lc.closers {
			c()
		}
	})
}
