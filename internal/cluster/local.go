package cluster

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/serve"
)

// LocalOptions shapes an in-process topology.
type LocalOptions struct {
	// Shards is the replica count (default 3).
	Shards int
	// VNodes is the per-shard virtual-node count (default DefaultVNodes).
	VNodes int
	// ReplicaGroups is the owner count per cluster range (R). Default 2:
	// primary plus one successor replica, with async policy replication
	// between them. 1 disables replication (single-owner, PR8 behavior).
	ReplicaGroups int
	// Serve configures every shard's server.
	Serve serve.Config
	// HTTP configures every shard's front-end.
	HTTP serve.HTTPOptions
	// Router configures the routing tier (VNodes is forced to match).
	Router RouterConfig
	// HandoffTimeout bounds a restarting shard's peer pulls.
	HandoffTimeout time.Duration
	// WrapShardAddr optionally interposes on the router→shard link: given a
	// shard's id and real address it returns the address the router should
	// dial (e.g. a netfault proxy) and a closer. Nil routes direct.
	WrapShardAddr func(id, addr string) (string, func(), error)
	// Logf sinks progress lines (default: discard).
	Logf func(format string, args ...any)
}

func (o LocalOptions) withDefaults() LocalOptions {
	if o.Shards < 1 {
		o.Shards = 3
	}
	if o.VNodes < 1 {
		o.VNodes = DefaultVNodes
	}
	if o.ReplicaGroups < 1 {
		o.ReplicaGroups = DefaultReplicaGroups
	}
	if o.HandoffTimeout <= 0 {
		o.HandoffTimeout = DefaultHandoffTimeout
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// localShard is one in-process replica and its lifecycle handles.
type localShard struct {
	id   string
	addr string // concrete listen address, stable across restarts

	mu     sync.Mutex
	srv    *serve.Server
	cancel context.CancelFunc
	done   chan error
}

// LocalCluster is an in-process N-shard + router topology over one shared
// scenario world: every shard serves the same template/store/local model
// (exactly as N processes booted from the same scenario seed would), the
// router fronts them on a loopback port. It backs the cluster tests,
// dcta-load's router mode and the CI scale-out gate.
type LocalCluster struct {
	opts     LocalOptions
	template *core.Problem
	store    *core.EnvironmentStore
	local    *alloc.LocalModel

	router       *Router
	routerAddr   string
	routerCancel context.CancelFunc
	routerDone   chan error

	shards   []*localShard
	wrapped  []Shard // what the router dials (possibly proxied)
	closers  []func()
	closeOne sync.Once
}

// StartLocal boots the topology: every shard live, identities assigned from
// the full ring, router probing.
func StartLocal(template *core.Problem, store *core.EnvironmentStore, local *alloc.LocalModel, opts LocalOptions) (*LocalCluster, error) {
	opts = opts.withDefaults()
	lc := &LocalCluster{opts: opts, template: template, store: store, local: local}

	for i := 0; i < opts.Shards; i++ {
		sh := &localShard{id: "s" + strconv.Itoa(i)}
		if err := lc.bootShard(sh, ""); err != nil {
			lc.Close()
			return nil, err
		}
		lc.shards = append(lc.shards, sh)
	}
	// Identities come from the full (all-member) ring: ownership is a
	// property of the deployment, not of the router's current live view.
	// Replication flows shard↔shard over the real addresses — a fault
	// wrapper on the router→shard link never cuts the replica channel.
	all := lc.allShards()
	for i, sh := range lc.shards {
		if _, _, err := AssignIdentity(sh.srv, all[i], all, opts.VNodes, opts.ReplicaGroups); err != nil {
			lc.Close()
			return nil, err
		}
		if err := EnableShardReplication(sh.srv, all[i], all, opts.VNodes, opts.ReplicaGroups, opts.Logf); err != nil {
			lc.Close()
			return nil, err
		}
	}

	// Interpose on the router→shard links if asked.
	for _, sh := range lc.shards {
		routeAddr := sh.addr
		if opts.WrapShardAddr != nil {
			wrapped, closer, err := opts.WrapShardAddr(sh.id, sh.addr)
			if err != nil {
				lc.Close()
				return nil, err
			}
			routeAddr = wrapped
			lc.closers = append(lc.closers, closer)
		}
		lc.wrapped = append(lc.wrapped, Shard{ID: sh.id, Addr: routeAddr})
	}

	rcfg := opts.Router
	rcfg.VNodes = opts.VNodes
	if rcfg.Logf == nil {
		rcfg.Logf = opts.Logf
	}
	router, err := NewRouter(store, lc.wrapped, rcfg)
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.router = router

	ctx, cancel := context.WithCancel(context.Background())
	lc.routerCancel = cancel
	lc.routerDone = make(chan error, 1)
	ready := make(chan string, 1)
	go func() {
		lc.routerDone <- ListenAndServe(ctx, "127.0.0.1:0", router, func(a net.Addr) { ready <- a.String() })
	}()
	select {
	case a := <-ready:
		lc.routerAddr = a
	case err := <-lc.routerDone:
		lc.Close()
		return nil, fmt.Errorf("cluster: router: %w", err)
	}
	opts.Logf("cluster: %d shards + router on %s\n", opts.Shards, lc.routerAddr)
	return lc, nil
}

// bootShard builds a fresh server for sh and serves it. addr "" binds an
// ephemeral port (first boot); otherwise the shard rebinds its old address.
func (lc *LocalCluster) bootShard(sh *localShard, addr string) error {
	srv, err := serve.NewServer(lc.template, lc.store, lc.local, lc.opts.Serve)
	if err != nil {
		return err
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	ready := make(chan string, 1)
	go func() {
		done <- serve.ListenAndServe(ctx, addr, srv, lc.opts.HTTP, func(a net.Addr) { ready <- a.String() })
	}()
	select {
	case a := <-ready:
		sh.mu.Lock()
		sh.srv, sh.cancel, sh.done = srv, cancel, done
		if sh.addr == "" {
			sh.addr = a
		}
		sh.mu.Unlock()
		return nil
	case err := <-done:
		cancel()
		return fmt.Errorf("cluster: shard %s: %w", sh.id, err)
	}
}

func (lc *LocalCluster) allShards() []Shard {
	out := make([]Shard, 0, len(lc.shards))
	for _, sh := range lc.shards {
		out = append(out, Shard{ID: sh.id, Addr: sh.addr})
	}
	return out
}

func shardIDs(shards []Shard) []string {
	ids := make([]string, 0, len(shards))
	for _, s := range shards {
		ids = append(ids, s.ID)
	}
	return ids
}

// Addr is the router's listen address.
func (lc *LocalCluster) Addr() string { return lc.routerAddr }

// Router exposes the routing tier (stats, ProbeOnce for tests).
func (lc *LocalCluster) Router() *Router { return lc.router }

// Shards is the replica count.
func (lc *LocalCluster) Shards() int { return len(lc.shards) }

// ShardAddr is shard i's real (unwrapped) address.
func (lc *LocalCluster) ShardAddr(i int) string { return lc.shards[i].addr }

// ShardID is shard i's ring id.
func (lc *LocalCluster) ShardID(i int) string { return lc.shards[i].id }

// Server is shard i's live server, or nil while killed.
func (lc *LocalCluster) Server(i int) *serve.Server {
	sh := lc.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.srv
}

// ReplicaGroups is the deployment's owner count per cluster range.
func (lc *LocalCluster) ReplicaGroups() int { return lc.opts.ReplicaGroups }

// AwaitReplication polls until every live shard's replication queue has
// drained (all enqueued snapshots pushed or dropped) or the timeout passes.
// Chaos tests and the loadgen failover probe call this before killing a
// primary, so "the replica holds the policy" is a fact, not a race.
func (lc *LocalCluster) AwaitReplication(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		settled := true
		for i := range lc.shards {
			if srv := lc.Server(i); srv != nil && !srv.ReplicationSettled() {
				settled = false
				break
			}
		}
		if settled {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// KillShard stops shard i's server (graceful drain, listener closed).
// Requests owned by its ranges fail over to survivors on the router's next
// ejection — by I/O error, drain 503, or missed probes, whichever fires
// first.
func (lc *LocalCluster) KillShard(i int) error {
	sh := lc.shards[i]
	sh.mu.Lock()
	cancel, done := sh.cancel, sh.done
	sh.srv, sh.cancel, sh.done = nil, nil, nil
	sh.mu.Unlock()
	if cancel == nil {
		return fmt.Errorf("cluster: shard %d already down", i)
	}
	cancel()
	err := <-done
	lc.opts.Logf("cluster: shard %s killed\n", sh.id)
	return err
}

// RestartShard boots shard i back on its original address with a fresh
// (cold) server, then warms it by pulling its owned clusters' checkpoint
// sections from the surviving peers. The router re-admits it on the next
// successful probe.
func (lc *LocalCluster) RestartShard(i int) (pulled int, err error) {
	sh := lc.shards[i]
	sh.mu.Lock()
	down := sh.cancel == nil
	sh.mu.Unlock()
	if !down {
		return 0, fmt.Errorf("cluster: shard %d still running", i)
	}
	if err := lc.bootShard(sh, sh.addr); err != nil {
		return 0, err
	}
	// Identity comes from the full member list — ownership never depends on
	// who happens to be up. Pulls from still-dead peers fail soft, and the
	// paged anti-entropy pull streams back both primary and replica ranges.
	self := Shard{ID: sh.id, Addr: sh.addr}
	all := lc.allShards()
	pulled, err = JoinWarm(lc.Server(i), self, all, lc.opts.VNodes, lc.opts.ReplicaGroups,
		lc.opts.HandoffTimeout, lc.opts.Logf)
	if err != nil {
		return pulled, err
	}
	if err := EnableShardReplication(lc.Server(i), self, all, lc.opts.VNodes, lc.opts.ReplicaGroups, lc.opts.Logf); err != nil {
		return pulled, err
	}
	lc.opts.Logf("cluster: shard %s restarted warm (%d policies pulled)\n", sh.id, pulled)
	return pulled, nil
}

// Close tears the whole topology down: router first (so nothing routes into
// dying shards), then every live shard, then the wrappers.
func (lc *LocalCluster) Close() {
	lc.closeOne.Do(func() {
		if lc.routerCancel != nil {
			lc.routerCancel()
			<-lc.routerDone
		}
		for i := range lc.shards {
			sh := lc.shards[i]
			sh.mu.Lock()
			cancel, done := sh.cancel, sh.done
			sh.srv, sh.cancel, sh.done = nil, nil, nil
			sh.mu.Unlock()
			if cancel != nil {
				cancel()
				<-done
			}
		}
		for _, c := range lc.closers {
			c()
		}
	})
}
