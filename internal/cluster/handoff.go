package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/rawhttp"
	"repro/internal/serve"
)

// DefaultHandoffTimeout bounds one peer checkpoint pull.
const DefaultHandoffTimeout = 10 * time.Second

// DefaultReplicaGroups is the default owner count per cluster range (R):
// a primary plus one successor replica, so any single shard death leaves a
// warm copy of every trained policy.
const DefaultReplicaGroups = 2

// DefaultHandoffPageLimit is how many policy sections one anti-entropy GET
// asks for. Caches larger than a page converge over multiple ?after= pulls.
const DefaultHandoffPageLimit = 64

// PullWarmState boots a joining shard warm: it asks each peer for the
// checkpoint-v2 sections of exactly the clusters this shard owns — as
// primary or as successor replica — and installs whatever comes back, so a
// join or rejoin moves trained policies instead of repaying their training
// budgets. Installs run through the versioned idempotence gate with
// role-aware provenance: primary-owned clusters land warm, replica-owned
// ones land as replica copies (TTL-exempt). Returns how many policies were
// installed.
//
// Each peer is drained in pages of pageLimit sections (?after= cursoring),
// so a cache larger than one GET still converges; pageLimit <= 0 uses
// DefaultHandoffPageLimit.
//
// Failures are soft by design — an unreachable peer, a torn stream, a
// corrupt section — all of it just leaves some clusters cold, and the
// shard's own cold path retrains them on demand. The per-section CRC
// framing of the v2 format is what makes applying a partial transfer safe.
func PullWarmState(s *serve.Server, peers []Shard, primary, replica []int, pageLimit int, timeout time.Duration, logf func(string, ...any)) int {
	owned := make([]int, 0, len(primary)+len(replica))
	owned = append(owned, primary...)
	owned = append(owned, replica...)
	sort.Ints(owned)
	if len(owned) == 0 || len(peers) == 0 {
		return 0
	}
	if pageLimit <= 0 {
		pageLimit = DefaultHandoffPageLimit
	}
	if timeout <= 0 {
		timeout = DefaultHandoffTimeout
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	primarySet := make(map[int]bool, len(primary))
	for _, k := range primary {
		primarySet[k] = true
	}
	isPrimary := func(k int) bool { return primarySet[k] }
	installed := 0
	for _, p := range peers {
		conn, err := rawhttp.Dial(p.Addr)
		if err != nil {
			logf("cluster: handoff: peer %s (%s) unreachable: %v", p.ID, p.Addr, err)
			continue
		}
		conn.Timeout = timeout
		// Page through the peer's export: ?after= resumes past the last
		// cluster seen, and a short page (fewer sections than asked) means
		// the peer is drained.
		after := -1
		for {
			code, body, err := conn.Do(rawhttp.BuildGetFrame(checkpointPath(owned, after, pageLimit)))
			if err != nil || code != http.StatusOK {
				logf("cluster: handoff: peer %s pull failed: code=%d err=%v", p.ID, code, err)
				break
			}
			res, err := s.InstallFromPeerCheckpoint(bytes.NewReader(body), isPrimary)
			if err != nil {
				logf("cluster: handoff: peer %s checkpoint: %v", p.ID, err)
				break
			}
			installed += res.Installed
			if res.Sections < pageLimit || res.MaxCluster <= after {
				break
			}
			after = res.MaxCluster
		}
		conn.Close()
	}
	return installed
}

// checkpointPath renders the paged, shard-scoped export URL for a cluster
// set: clusters > after, at most limit sections (limit <= 0 means all).
func checkpointPath(clusters []int, after, limit int) string {
	var b []byte
	b = append(b, "/v1/checkpoint?clusters="...)
	for i, k := range clusters {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(k), 10)
	}
	if after >= 0 {
		b = append(b, "&after="...)
		b = strconv.AppendInt(b, int64(after), 10)
	}
	if limit > 0 {
		b = append(b, "&limit="...)
		b = strconv.AppendInt(b, int64(limit), 10)
	}
	return string(b)
}

// AssignIdentity computes a node's ownership on the full (all-member) ring
// and records it on the server (visible in /v1/stats and /v1/cluster).
// Ownership is a property of the deployment's member list, not of any
// router's current live view. With replicas >= 2 every cluster key gets
// that many distinct owners; the first is the primary, the rest hold
// successor-replica copies. Returns the node's primary- and replica-owned
// cluster keys.
func AssignIdentity(s *serve.Server, self Shard, all []Shard, vnodes, replicas int) (primary, replica []int, err error) {
	ids := make([]string, 0, len(all))
	found := false
	for _, sh := range all {
		ids = append(ids, sh.ID)
		if sh.ID == self.ID {
			found = true
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("cluster: join: %q not in shard list", self.ID)
	}
	ring, err := NewRing(vnodes, ids)
	if err != nil {
		return nil, nil, err
	}
	if replicas < 1 {
		replicas = 1
	}
	primary, replica = ring.ReplicatedClusters(self.ID, s.Store().Len(), replicas)
	s.SetClusterIdentity(serve.ClusterIdentity{
		NodeID:          self.ID,
		RingPositions:   ring.VNodes(),
		OwnedClusters:   primary,
		OwnedFraction:   ring.OwnedFraction(self.ID),
		ReplicaGroups:   replicas,
		ReplicaClusters: replica,
	})
	return primary, replica, nil
}

// EnableShardReplication wires the server's async replication queue against
// the full-ring owner sets: after a demand training or speculative
// promotion, the shard pushes that cluster's policy snapshot to the other
// owners of its range. A no-op when replicas < 2 (nothing to push to).
func EnableShardReplication(s *serve.Server, self Shard, all []Shard, vnodes, replicas int, logf func(string, ...any)) error {
	if replicas < 2 {
		return nil
	}
	ids := make([]string, 0, len(all))
	addrs := make(map[string]string, len(all))
	for _, sh := range all {
		ids = append(ids, sh.ID)
		addrs[sh.ID] = sh.Addr
	}
	ring, err := NewRing(vnodes, ids)
	if err != nil {
		return err
	}
	peersFor := func(cluster int) []string {
		var out []string
		for _, owner := range ring.OwnersFor(cluster, replicas) {
			if owner != self.ID {
				out = append(out, addrs[owner])
			}
		}
		return out
	}
	return s.EnableReplication(serve.ReplicationConfig{PeersFor: peersFor, Logf: logf})
}

// JoinWarm is the one-call boot path for dcta-server's join flags and
// LocalCluster's restart: assign identity from the full ring, then pull the
// owned (primary and replica) clusters' warm state from the peers.
func JoinWarm(s *serve.Server, self Shard, all []Shard, vnodes, replicas int, timeout time.Duration, logf func(string, ...any)) (int, error) {
	primary, replica, err := AssignIdentity(s, self, all, vnodes, replicas)
	if err != nil {
		return 0, err
	}
	var peers []Shard
	for _, sh := range all {
		if sh.ID != self.ID {
			peers = append(peers, sh)
		}
	}
	return PullWarmState(s, peers, primary, replica, 0, timeout, logf), nil
}
