package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/rawhttp"
	"repro/internal/serve"
)

// DefaultHandoffTimeout bounds one peer checkpoint pull.
const DefaultHandoffTimeout = 10 * time.Second

// PullWarmState boots a joining shard warm: it asks each peer for the
// checkpoint-v2 sections of exactly the clusters this shard owns and
// installs whatever comes back, so a join or rejoin moves trained policies
// instead of repaying their training budgets. Returns how many policies
// were installed.
//
// Failures are soft by design — an unreachable peer, a torn stream, a
// corrupt section — all of it just leaves some clusters cold, and the
// shard's own cold path retrains them on demand. The per-section CRC
// framing of the v2 format is what makes applying a partial transfer safe.
func PullWarmState(s *serve.Server, peers []Shard, owned []int, timeout time.Duration, logf func(string, ...any)) int {
	if len(owned) == 0 || len(peers) == 0 {
		return 0
	}
	if timeout <= 0 {
		timeout = DefaultHandoffTimeout
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	path := checkpointPath(owned)
	installed := 0
	for _, p := range peers {
		conn, err := rawhttp.Dial(p.Addr)
		if err != nil {
			logf("cluster: handoff: peer %s (%s) unreachable: %v", p.ID, p.Addr, err)
			continue
		}
		conn.Timeout = timeout
		code, body, err := conn.Do(rawhttp.BuildGetFrame(path))
		if err != nil || code != http.StatusOK {
			logf("cluster: handoff: peer %s pull failed: code=%d err=%v", p.ID, code, err)
			conn.Close()
			continue
		}
		n, err := s.InstallFromCheckpoint(bytes.NewReader(body))
		if err != nil {
			logf("cluster: handoff: peer %s checkpoint: %v", p.ID, err)
		}
		installed += n
		conn.Close()
	}
	return installed
}

// checkpointPath renders the shard-scoped export URL for a cluster set.
func checkpointPath(clusters []int) string {
	var b []byte
	b = append(b, "/v1/checkpoint?clusters="...)
	for i, k := range clusters {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(k), 10)
	}
	return string(b)
}

// AssignIdentity computes a node's ownership on the full (all-member) ring
// and records it on the server (visible in /v1/stats and /v1/cluster).
// Ownership is a property of the deployment's member list, not of any
// router's current live view. Returns the owned cluster keys.
func AssignIdentity(s *serve.Server, self Shard, all []Shard, vnodes int) ([]int, error) {
	ids := make([]string, 0, len(all))
	found := false
	for _, sh := range all {
		ids = append(ids, sh.ID)
		if sh.ID == self.ID {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: join: %q not in shard list", self.ID)
	}
	ring, err := NewRing(vnodes, ids)
	if err != nil {
		return nil, err
	}
	owned := ring.OwnedClusters(self.ID, s.Store().Len())
	s.SetClusterIdentity(serve.ClusterIdentity{
		NodeID:        self.ID,
		RingPositions: ring.VNodes(),
		OwnedClusters: owned,
		OwnedFraction: ring.OwnedFraction(self.ID),
	})
	return owned, nil
}

// JoinWarm is the one-call boot path for dcta-server's join flags and
// LocalCluster's restart: assign identity from the full ring, then pull the
// owned clusters' warm state from the peers.
func JoinWarm(s *serve.Server, self Shard, all []Shard, vnodes int, timeout time.Duration, logf func(string, ...any)) (int, error) {
	owned, err := AssignIdentity(s, self, all, vnodes)
	if err != nil {
		return 0, err
	}
	var peers []Shard
	for _, sh := range all {
		if sh.ID != self.ID {
			peers = append(peers, sh)
		}
	}
	return PullWarmState(s, peers, owned, timeout, logf), nil
}
