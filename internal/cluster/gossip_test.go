package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// In-memory gossip fabric: agents registered by address, every exchange
// marshalled through the real wire format (so unit tests cover the JSON
// encoding on every hop), with per-directed-link blackholes.
// ---------------------------------------------------------------------------

type memNet struct {
	mu      sync.Mutex
	agents  map[string]*Agent
	blocked map[string]bool // "fromID→toAddr" directed blackholes
}

func newMemNet() *memNet {
	return &memNet{agents: map[string]*Agent{}, blocked: map[string]bool{}}
}

func (n *memNet) register(addr string, a *Agent) {
	n.mu.Lock()
	n.agents[addr] = a
	n.mu.Unlock()
}

func (n *memNet) block(fromID, toAddr string) {
	n.mu.Lock()
	n.blocked[fromID+"→"+toAddr] = true
	n.mu.Unlock()
}

func (n *memNet) transport(selfID string) Transport {
	return memTransport{net: n, self: selfID}
}

type memTransport struct {
	net  *memNet
	self string
}

func (t memTransport) Exchange(addr string, msg *GossipMsg, _ time.Duration) (*GossipMsg, error) {
	t.net.mu.Lock()
	peer := t.net.agents[addr]
	dropped := t.net.blocked[t.self+"→"+addr]
	t.net.mu.Unlock()
	if dropped {
		return nil, fmt.Errorf("memnet: link %s→%s blackholed", t.self, addr)
	}
	if peer == nil {
		return nil, fmt.Errorf("memnet: no agent at %s", addr)
	}
	// Round-trip both directions through the real wire format.
	blob, err := json.Marshal(msg)
	if err != nil {
		return nil, err
	}
	decoded, err := DecodeGossip(blob)
	if err != nil {
		return nil, fmt.Errorf("memnet: outbound message invalid: %w", err)
	}
	reply := peer.HandleMessage(decoded)
	blob, err = json.Marshal(reply)
	if err != nil {
		return nil, err
	}
	return DecodeGossip(blob)
}

// fakeClock is a mutex-guarded manual clock for suspicion-timeout tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func memAgent(t *testing.T, net *memNet, id string, seed int64, now func() time.Time) *Agent {
	t.Helper()
	cfg := GossipConfig{
		Interval:         40 * time.Millisecond,
		SuspicionTimeout: 500 * time.Millisecond,
		Seed:             seed,
		Transport:        net.transport(id),
	}
	if now != nil {
		cfg.Now = now
	}
	a, err := NewAgent(Member{ID: id, Addr: id, Role: RoleShard}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.register(id, a)
	return a
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

// TestGossipDecodeBounds: every malformed class is rejected with a specific
// error, and a well-formed message round-trips field-for-field.
func TestGossipDecodeBounds(t *testing.T) {
	valid := func() *GossipMsg {
		return &GossipMsg{
			Version: GossipVersion,
			Type:    "ping",
			From:    Member{ID: "s0", Addr: "127.0.0.1:1", Role: RoleShard, Incarnation: 3},
			Updates: []Update{{Member: Member{ID: "s1", Addr: "127.0.0.1:2", Role: RoleShard, State: StateSuspect}, Epoch: 9}},
			Epoch:   12,
		}
	}
	blob, err := json.Marshal(valid())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGossip(blob)
	if err != nil {
		t.Fatalf("valid message rejected: %v", err)
	}
	if got.From.ID != "s0" || got.Epoch != 12 || len(got.Updates) != 1 ||
		got.Updates[0].State != StateSuspect || got.Updates[0].Epoch != 9 {
		t.Fatalf("round trip mangled message: %+v", got)
	}

	cases := []struct {
		name   string
		mutate func(*GossipMsg)
		want   string
	}{
		{"bad version", func(m *GossipMsg) { m.Version = 2 }, "version"},
		{"unknown type", func(m *GossipMsg) { m.Type = "gossip" }, "type"},
		{"empty from id", func(m *GossipMsg) { m.From.ID = "" }, "id length"},
		{"long from id", func(m *GossipMsg) { m.From.ID = strings.Repeat("x", maxGossipIDLen+1) }, "id length"},
		{"long addr", func(m *GossipMsg) { m.From.Addr = strings.Repeat("a", maxGossipAddrLen+1) }, "addr length"},
		{"bad role", func(m *GossipMsg) { m.From.Role = "observer" }, "role"},
		{"bad state", func(m *GossipMsg) { m.From.State = StateDead + 1 }, "state"},
		{"ping-req without target", func(m *GossipMsg) { m.Type = gossipPingReq }, "without target"},
		{"ping-req target without addr", func(m *GossipMsg) {
			m.Type = gossipPingReq
			m.Target = &Member{ID: "s2", Role: RoleShard}
		}, "without addr"},
		{"bad update", func(m *GossipMsg) { m.Updates[0].Role = "nope" }, "update 0"},
	}
	for _, tc := range cases {
		m := valid()
		tc.mutate(m)
		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeGossip(blob); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	if _, err := DecodeGossip([]byte(`{not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := DecodeGossip(bytes.Repeat([]byte{'x'}, maxGossipBody+1)); err == nil {
		t.Error("oversized body accepted")
	}
	// Too many updates.
	m := valid()
	m.Updates = make([]Update, maxGossipUpdates+1)
	for i := range m.Updates {
		m.Updates[i] = Update{Member: Member{ID: "u", Addr: "a:1", Role: RoleShard}}
	}
	blob, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeGossip(blob); err == nil {
		t.Error("update flood accepted")
	}
}

// ---------------------------------------------------------------------------
// Precedence and refutation
// ---------------------------------------------------------------------------

// TestGossipSupersedes pins the SWIM precedence rule rumor-by-rumor.
func TestGossipSupersedes(t *testing.T) {
	cases := []struct {
		name         string
		haveInc      uint64
		haveState    MemberState
		rumorInc     uint64
		rumorState   MemberState
		shouldAccept bool
	}{
		{"higher inc alive beats dead", 3, StateDead, 4, StateAlive, true},
		{"higher inc suspect beats alive", 1, StateAlive, 2, StateSuspect, true},
		{"lower inc dead loses to alive", 5, StateAlive, 4, StateDead, false},
		{"equal inc dead beats suspect", 2, StateSuspect, 2, StateDead, true},
		{"equal inc suspect beats alive", 2, StateAlive, 2, StateSuspect, true},
		{"equal inc alive loses to suspect", 2, StateSuspect, 2, StateAlive, false},
		{"equal inc equal state is a no-op", 2, StateSuspect, 2, StateSuspect, false},
	}
	for _, tc := range cases {
		rec := &memberRecord{Member: Member{ID: "m", Incarnation: tc.haveInc, State: tc.haveState}}
		u := Update{Member: Member{ID: "m", Incarnation: tc.rumorInc, State: tc.rumorState}}
		if got := supersedes(u, rec); got != tc.shouldAccept {
			t.Errorf("%s: supersedes=%v, want %v", tc.name, got, tc.shouldAccept)
		}
	}
}

// TestGossipSelfRefutation: any non-alive rumor about the agent itself is
// refuted on the spot at a higher incarnation, and the refutation wins
// everywhere the rumor could have spread.
func TestGossipSelfRefutation(t *testing.T) {
	net := newMemNet()
	a := memAgent(t, net, "s0", 1, nil)

	ping := &GossipMsg{
		Version: GossipVersion, Type: gossipPing,
		From:    Member{ID: "s1", Addr: "s1", Role: RoleShard},
		Updates: []Update{{Member: Member{ID: "s0", Addr: "s0", Role: RoleShard, State: StateSuspect}, Epoch: 5}},
		Epoch:   5,
	}
	reply := a.HandleMessage(ping)
	if inc := a.Incarnation(); inc != 1 {
		t.Fatalf("suspect rumor at inc 0: incarnation %d, want 1 (refuted)", inc)
	}
	if m, _ := a.View().Find("s0"); m.State != StateAlive {
		t.Fatalf("self state %v after refutation, want alive", m.State)
	}
	// The refutation rides back on the very reply to the rumor's carrier.
	found := false
	for _, u := range reply.Updates {
		if u.ID == "s0" && u.State == StateAlive && u.Incarnation == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reply does not carry the refutation: %+v", reply.Updates)
	}

	// A dead rumor at a far-future incarnation is outranked the same way.
	obituary := &GossipMsg{
		Version: GossipVersion, Type: gossipPing,
		From:    Member{ID: "s1", Addr: "s1", Role: RoleShard},
		Updates: []Update{{Member: Member{ID: "s0", Addr: "s0", Role: RoleShard, Incarnation: 7, State: StateDead}, Epoch: 9}},
		Epoch:   9,
	}
	a.HandleMessage(obituary)
	if inc := a.Incarnation(); inc != 8 {
		t.Fatalf("dead rumor at inc 7: incarnation %d, want 8", inc)
	}
	if st := a.MembershipStats(); st.Refutations != 2 {
		t.Fatalf("refutations counter %d, want 2", st.Refutations)
	}
}

// TestGossipForceAlive: the rejoin bump is monotone and immediately visible.
func TestGossipForceAlive(t *testing.T) {
	net := newMemNet()
	a := memAgent(t, net, "s0", 1, nil)
	if inc := a.ForceAlive(); inc != 1 {
		t.Fatalf("first ForceAlive returned %d, want 1", inc)
	}
	if inc := a.ForceAlive(); inc != 2 {
		t.Fatalf("second ForceAlive returned %d, want 2", inc)
	}
	if a.Incarnation() != 2 {
		t.Fatalf("incarnation %d, want 2", a.Incarnation())
	}
}

// ---------------------------------------------------------------------------
// Failure detection
// ---------------------------------------------------------------------------

// TestGossipSuspicionExpiry: an unreachable member moves alive → suspect on
// the failed probe and suspect → dead once the (injected) clock passes the
// suspicion deadline; dead members leave the probe rotation.
func TestGossipSuspicionExpiry(t *testing.T) {
	clock := newFakeClock()
	net := newMemNet()
	a := memAgent(t, net, "s0", 1, clock.Now)
	// "ghost" is never registered: every exchange to it fails.
	a.Seed([]Member{{ID: "ghost", Addr: "ghost", Role: RoleShard}})

	a.TickOnce()
	m, ok := a.View().Find("ghost")
	if !ok || m.State != StateSuspect {
		t.Fatalf("after failed probe: %+v (found=%v), want suspect", m, ok)
	}
	st := a.MembershipStats()
	if st.SuspectsDeclared != 1 || st.PingTimeouts != 1 {
		t.Fatalf("suspects=%d timeouts=%d, want 1 and 1", st.SuspectsDeclared, st.PingTimeouts)
	}

	// Before the deadline the suspect survives further ticks.
	clock.Advance(200 * time.Millisecond)
	a.TickOnce()
	if m, _ := a.View().Find("ghost"); m.State == StateDead {
		t.Fatal("suspect confirmed dead before its deadline")
	}

	clock.Advance(400 * time.Millisecond) // 600ms total > 500ms window
	a.TickOnce()
	if m, _ := a.View().Find("ghost"); m.State != StateDead {
		t.Fatalf("suspect state %v after deadline, want dead", m.State)
	}
	if st := a.MembershipStats(); st.DeadConfirmed != 1 {
		t.Fatalf("deadConfirmed=%d, want 1", st.DeadConfirmed)
	}

	// Dead members are not probed again.
	before := a.MembershipStats().PingsSent
	a.TickOnce()
	a.TickOnce()
	if after := a.MembershipStats().PingsSent; after != before {
		t.Fatalf("dead member still probed: pings %d → %d", before, after)
	}
}

// TestGossipIndirectProbeSavesTarget: with the direct link cut but a relay
// path intact, the k-indirect ping-req keeps the target alive — the
// asymmetric-partition property at protocol scale.
func TestGossipIndirectProbeSavesTarget(t *testing.T) {
	net := newMemNet()
	a := memAgent(t, net, "a", 1, nil)
	memAgent(t, net, "b", 2, nil)
	memAgent(t, net, "c", 3, nil)
	members := []Member{
		{ID: "b", Addr: "b", Role: RoleShard},
		{ID: "c", Addr: "c", Role: RoleShard},
	}
	a.Seed(members)
	net.block("a", "b") // a's direct pings to b fail; c can still reach b

	for i := 0; i < 6; i++ { // ≥2 full rotations: b is probed at least twice
		a.TickOnce()
	}
	st := a.MembershipStats()
	if st.PingTimeouts < 1 {
		t.Fatalf("blocked link produced no direct-ping misses: %+v", st)
	}
	if st.IndirectAcks < 1 {
		t.Fatalf("no indirect ack saved the target: %+v", st)
	}
	if st.SuspectsDeclared != 0 {
		t.Fatalf("indirectly-reachable member was suspected %d times", st.SuspectsDeclared)
	}
	if m, _ := a.View().Find("b"); m.State != StateAlive {
		t.Fatalf("b state %v, want alive", m.State)
	}
}

// ---------------------------------------------------------------------------
// Dissemination and convergence
// ---------------------------------------------------------------------------

// TestGossipPiggybackBudget: no message carries more than MaxPiggyback
// rumors, and the retransmit budget drains the queue to empty.
func TestGossipPiggybackBudget(t *testing.T) {
	net := newMemNet()
	a := memAgent(t, net, "s0", 1, nil)
	var many []Member
	for i := 0; i < 20; i++ {
		many = append(many, Member{ID: fmt.Sprintf("m%02d", i), Addr: fmt.Sprintf("m%02d", i), Role: RoleShard})
	}
	a.Seed(many) // 20 queued rumors

	ping := &GossipMsg{
		Version: GossipVersion, Type: gossipPing,
		From: Member{ID: "px", Addr: "px", Role: RoleShard},
	}
	drained := false
	for i := 0; i < 300; i++ {
		reply := a.HandleMessage(ping)
		if reply.Type != gossipAck {
			t.Fatalf("ping answered with %q", reply.Type)
		}
		if len(reply.Updates) > 8 {
			t.Fatalf("reply carries %d updates, budget is 8", len(reply.Updates))
		}
		if len(reply.Updates) == 0 {
			drained = true
			break
		}
	}
	if !drained {
		t.Fatal("piggyback queue never drained; retransmit budget is not being spent")
	}
}

// TestGossipJoinAndConvergence: members joining through one seed converge to
// a single (epoch, digest) across the whole fabric; a later state change
// (a ForceAlive bump) re-converges everyone on a strictly higher epoch.
func TestGossipJoinAndConvergence(t *testing.T) {
	net := newMemNet()
	ids := []string{"m0", "m1", "m2", "m3"}
	agents := make([]*Agent, len(ids))
	for i, id := range ids {
		agents[i] = memAgent(t, net, id, int64(i+1), nil)
	}
	for _, a := range agents[1:] {
		if err := a.Join([]string{"m0"}); err != nil {
			t.Fatal(err)
		}
	}
	if st := agents[0].MembershipStats(); st.JoinsServed != 3 {
		t.Fatalf("seed served %d joins, want 3", st.JoinsServed)
	}

	converge := func(label string) uint64 {
		t.Helper()
		for round := 0; round < 400; round++ {
			views := make([]View, len(agents))
			all := true
			for i, a := range agents {
				views[i] = a.View()
				if len(views[i].Members) != len(ids) {
					all = false
				}
			}
			if all && ViewsConverged(views) {
				return views[0].Epoch
			}
			for _, a := range agents {
				a.TickOnce()
			}
		}
		t.Fatalf("%s: views did not converge within 400 rounds", label)
		return 0
	}

	epoch1 := converge("post-join")
	for _, a := range agents {
		for _, m := range a.View().Members {
			if m.State != StateAlive {
				t.Fatalf("converged view holds %s in state %v", m.ID, m.State)
			}
		}
	}

	agents[3].ForceAlive()
	epoch2 := converge("post-bump")
	if epoch2 <= epoch1 {
		t.Fatalf("epoch did not advance across a state change: %d → %d", epoch1, epoch2)
	}
	for _, a := range agents {
		m, ok := a.View().Find("m3")
		if !ok || m.Incarnation != 1 || m.State != StateAlive {
			t.Fatalf("agent %s sees m3 as %+v, want alive at inc 1", a.SelfID(), m)
		}
	}
}

// TestGossipSeedIgnoresJunk: seeding skips self and invalid entries rather
// than corrupting the table.
func TestGossipSeedIgnoresJunk(t *testing.T) {
	net := newMemNet()
	a := memAgent(t, net, "s0", 1, nil)
	a.Seed([]Member{
		{ID: "s0", Addr: "elsewhere", Role: RoleShard}, // self: ignored
		{ID: "", Addr: "x", Role: RoleShard},           // invalid: ignored
		{ID: "ok", Addr: "ok:1", Role: RoleShard},
	})
	v := a.View()
	if len(v.Members) != 2 {
		t.Fatalf("table has %d members, want 2 (self + ok): %+v", len(v.Members), v.Members)
	}
	if m, _ := v.Find("s0"); m.Addr != "s0" {
		t.Fatalf("seed overwrote self addr: %q", m.Addr)
	}
}

// ---------------------------------------------------------------------------
// Flag parsing (satellites)
// ---------------------------------------------------------------------------

// TestParseShardsDuplicates: duplicate ids and duplicate addresses are both
// configuration errors, not silent ring skew.
func TestParseShardsDuplicates(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string // "" = accepted
	}{
		{"distinct ok", "a=h:1,b=h:2,c=h:3", ""},
		{"dup id", "a=h:1,a=h:2", "duplicate shard id"},
		{"dup id later", "a=h:1,b=h:2,a=h:3", "duplicate shard id"},
		{"dup addr", "a=h:1,b=h:1", "duplicate shard address"},
		{"dup addr later", "a=h:1,b=h:2,c=h:2", "duplicate shard address"},
	}
	for _, tc := range cases {
		got, err := ParseShards(tc.spec)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted as %+v, want error about %q", tc.name, got, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %q, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestParseSeeds covers the -join flag form: bare addresses, no ids.
func TestParseSeeds(t *testing.T) {
	got, err := ParseSeeds(" h:1, h:2 ,h:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "h:1" || got[2] != "h:3" {
		t.Fatalf("parsed %v", got)
	}
	for _, bad := range []string{"", " , ", "id=h:1", "h:1,h:1"} {
		if _, err := ParseSeeds(bad); err == nil {
			t.Errorf("ParseSeeds(%q) accepted", bad)
		}
	}
}

// TestRouterProbeJitter (satellite): probe phases are deterministic per
// (seed, shard), land inside the probe window, and actually spread — a fleet
// must not probe in lockstep.
func TestRouterProbeJitter(t *testing.T) {
	shards := make([]Shard, 8)
	for i := range shards {
		shards[i] = Shard{ID: fmt.Sprintf("s%d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	mk := func(seed int64) *Router {
		r, err := NewRouter(testStore(t), shards, RouterConfig{
			ProbeEvery:      250 * time.Millisecond,
			ProbeJitterSeed: seed,
			Logf:            func(string, ...any) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(7), mk(7)
	offA, offB := a.ProbeOffsets(), b.ProbeOffsets()
	if len(offA) != len(shards) {
		t.Fatalf("offsets cover %d shards, want %d", len(offA), len(shards))
	}
	distinct := map[time.Duration]bool{}
	for id, off := range offA {
		if off < 0 || off >= 250*time.Millisecond {
			t.Fatalf("shard %s offset %v outside [0, ProbeEvery)", id, off)
		}
		if offB[id] != off {
			t.Fatalf("same seed, different phase for %s: %v vs %v", id, off, offB[id])
		}
		distinct[off] = true
	}
	if len(distinct) < len(shards)/2 {
		t.Fatalf("only %d distinct phases across %d shards; probes fire in lockstep", len(distinct), len(shards))
	}
	// A different seed reschedules the fleet.
	c := mk(8)
	moved := 0
	for id, off := range c.ProbeOffsets() {
		if off != offA[id] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing ProbeJitterSeed moved no phase")
	}
}
