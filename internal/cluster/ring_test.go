package cluster

import (
	"encoding/json"
	"math"
	"testing"
)

const testKeys = 4096 // key population for the ring property tests

// TestRingDeterministicAndOrderFree: two rings over the same member set —
// built in different insertion orders — must resolve every key identically,
// and rebuilding must be bit-stable.
func TestRingDeterministicAndOrderFree(t *testing.T) {
	a, err := NewRing(64, []string{"s0", "s1", "s2"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(64, []string{"s2", "s0", "s1"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRing(64, []string{"s1", "s2", "s0"})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < testKeys; k++ {
		oa, ob, oc := a.Owner(k), b.Owner(k), c.Owner(k)
		if oa != ob || oa != oc {
			t.Fatalf("key %d resolves differently per insertion order: %q %q %q", k, oa, ob, oc)
		}
		if oa == "" {
			t.Fatalf("key %d unowned on a 3-member ring", k)
		}
	}
}

// TestRingRejectsBadMembers: empty and duplicate ids must fail construction.
func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(8, []string{"a", ""}); err == nil {
		t.Fatal("empty node id accepted")
	}
	if _, err := NewRing(8, []string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate node id accepted")
	}
}

// TestRingMinimalDisruptionOnJoin: adding a member may move keys only ONTO
// the new member; every key that stays with an old member keeps its owner.
func TestRingMinimalDisruptionOnJoin(t *testing.T) {
	before, err := NewRing(64, []string{"s0", "s1", "s2"})
	if err != nil {
		t.Fatal(err)
	}
	after, err := before.WithNode("s3")
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k := 0; k < testKeys; k++ {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == oa {
			continue
		}
		if oa != "s3" {
			t.Fatalf("key %d moved %q→%q on join of s3 (may only move onto s3)", k, ob, oa)
		}
		moved++
	}
	// The joiner should take roughly its fair share (1/4), not nothing and
	// not everything.
	if moved == 0 || moved > testKeys/2 {
		t.Fatalf("join moved %d/%d keys; want a roughly fair, minimal share", moved, testKeys)
	}
}

// TestRingMinimalDisruptionOnLeave: removing a member may move only the
// departed member's keys; survivors' keys must not reshuffle among them.
func TestRingMinimalDisruptionOnLeave(t *testing.T) {
	before, err := NewRing(64, []string{"s0", "s1", "s2"})
	if err != nil {
		t.Fatal(err)
	}
	after, err := before.WithoutNode("s1")
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < testKeys; k++ {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == "s1" {
			if oa != "s0" && oa != "s2" {
				t.Fatalf("key %d orphaned: %q", k, oa)
			}
			continue
		}
		if ob != oa {
			t.Fatalf("key %d reshuffled %q→%q though its owner survived", k, ob, oa)
		}
	}
	// Leave then rejoin must restore the original assignment exactly.
	back, err := after.WithNode("s1")
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < testKeys; k++ {
		if before.Owner(k) != back.Owner(k) {
			t.Fatalf("key %d not restored after leave+rejoin", k)
		}
	}
}

// TestRingBalanceAndOwnedFraction: with 64 vnodes each, every member owns a
// non-degenerate share; the OwnedFraction arithmetic must sum to 1 and
// track the observed key distribution.
func TestRingBalanceAndOwnedFraction(t *testing.T) {
	nodes := []string{"s0", "s1", "s2"}
	r, err := NewRing(64, nodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for k := 0; k < testKeys; k++ {
		counts[r.Owner(k)]++
	}
	var fracSum float64
	for _, n := range nodes {
		frac := r.OwnedFraction(n)
		fracSum += frac
		observed := float64(counts[n]) / testKeys
		if frac < 0.05 || frac > 0.95 {
			t.Fatalf("node %s owns fraction %.3f; degenerate ring", n, frac)
		}
		if math.Abs(frac-observed) > 0.1 {
			t.Fatalf("node %s: owned fraction %.3f vs observed key share %.3f", n, frac, observed)
		}
	}
	if math.Abs(fracSum-1) > 1e-9 {
		t.Fatalf("owned fractions sum to %v, want 1", fracSum)
	}
	if f := r.OwnedFraction("absent"); f != 0 {
		t.Fatalf("absent node owns %v", f)
	}
}

// TestOwnedClustersMatchesOwner: the enumeration and the resolver must
// agree exactly.
func TestOwnedClustersMatchesOwner(t *testing.T) {
	r, err := NewRing(32, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	const total = 257
	seen := map[int]bool{}
	for _, n := range []string{"a", "b"} {
		for _, k := range r.OwnedClusters(n, total) {
			if r.Owner(k) != n {
				t.Fatalf("OwnedClusters(%s) lists %d but Owner says %q", n, k, r.Owner(k))
			}
			if seen[k] {
				t.Fatalf("cluster %d owned twice", k)
			}
			seen[k] = true
		}
	}
	if len(seen) != total {
		t.Fatalf("enumeration covered %d/%d clusters", len(seen), total)
	}
}

// TestOwnersForProperties pins the replica-group contract: owners[0] is
// Owner, owners are distinct, the count saturates at the member count, and
// — the property warm failover rests on — removing the primary promotes
// exactly owners[1] to primary for that key.
func TestOwnersForProperties(t *testing.T) {
	r, err := NewRing(64, []string{"s0", "s1", "s2", "s3"})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < testKeys; k++ {
		owners := r.OwnersFor(k, 2)
		if len(owners) != 2 {
			t.Fatalf("key %d: %d owners on a 4-member ring, want 2", k, len(owners))
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("key %d: owners[0]=%q != Owner=%q", k, owners[0], r.Owner(k))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %d: duplicate owner %q", k, owners[0])
		}
		// Failover promotion: without the primary, the replica is the owner.
		smaller, err := r.WithoutNode(owners[0])
		if err != nil {
			t.Fatal(err)
		}
		if got := smaller.Owner(k); got != owners[1] {
			t.Fatalf("key %d: removing primary %q promotes %q, want replica %q",
				k, owners[0], got, owners[1])
		}
	}
	// Saturation: asking for more owners than members returns all members.
	if got := r.OwnersFor(0, 99); len(got) != 4 {
		t.Fatalf("OwnersFor(_, 99) returned %d owners on a 4-member ring", len(got))
	}
	if got := r.OwnersFor(0, 0); got != nil {
		t.Fatalf("OwnersFor(_, 0) = %v, want nil", got)
	}
	empty := &Ring{}
	if got := empty.OwnersFor(0, 2); got != nil {
		t.Fatalf("empty ring OwnersFor = %v, want nil", got)
	}
}

// TestOwnersForDegenerate (satellite): the replica-group resolver at the
// edges ownership actually hits during failover — a single-member ring, and
// replica demand exceeding the live member count — must saturate cleanly,
// never pad, never duplicate.
func TestOwnersForDegenerate(t *testing.T) {
	single, err := NewRing(16, []string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 64; k++ {
		owners := single.OwnersFor(k, 3)
		if len(owners) != 1 || owners[0] != "only" {
			t.Fatalf("key %d on a 1-member ring: owners=%v, want [only]", k, owners)
		}
		if single.Owner(k) != "only" {
			t.Fatalf("key %d: Owner=%q on a 1-member ring", k, single.Owner(k))
		}
	}

	// n greater than the live count: every member appears exactly once.
	pair, err := NewRing(16, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 64; k++ {
		owners := pair.OwnersFor(k, 5)
		if len(owners) != 2 {
			t.Fatalf("key %d: %d owners for n=5 on a 2-member ring, want 2", k, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %d: duplicate owner %q", k, owners[0])
		}
		if owners[0] != pair.Owner(k) {
			t.Fatalf("key %d: owners[0]=%q != Owner=%q", k, owners[0], pair.Owner(k))
		}
	}

	// Shrinking a 2-member ring to 1 collapses the owner list with it: the
	// failover path where R=2 outlives the fleet that could satisfy it.
	down, err := pair.WithoutNode("b")
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 64; k++ {
		if owners := down.OwnersFor(k, 2); len(owners) != 1 || owners[0] != "a" {
			t.Fatalf("key %d after losing b: owners=%v, want [a]", k, owners)
		}
	}
}

// TestOwnersForBalance: replica placement must be roughly fair too — every
// member should appear as *some* key's replica with a non-degenerate share,
// and replica assignments must not move when an unrelated member joins
// (minimal disruption extends to the whole owner list).
func TestOwnersForBalance(t *testing.T) {
	nodes := []string{"s0", "s1", "s2"}
	r, err := NewRing(64, nodes)
	if err != nil {
		t.Fatal(err)
	}
	replicaCounts := map[string]int{}
	for k := 0; k < testKeys; k++ {
		replicaCounts[r.OwnersFor(k, 2)[1]]++
	}
	for _, n := range nodes {
		share := float64(replicaCounts[n]) / testKeys
		if share < 0.05 || share > 0.95 {
			t.Fatalf("node %s holds replica share %.3f; degenerate placement", n, share)
		}
	}
	// Minimal disruption for owner pairs: after a join, a key's owner pair
	// may only change if the joiner entered it.
	after, err := r.WithNode("s3")
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k := 0; k < testKeys; k++ {
		ob, oa := r.OwnersFor(k, 2), after.OwnersFor(k, 2)
		if ob[0] == oa[0] && ob[1] == oa[1] {
			continue
		}
		if oa[0] != "s3" && oa[1] != "s3" {
			t.Fatalf("key %d: owner pair %v→%v changed without s3 entering it", k, ob, oa)
		}
		moved++
	}
	if moved == 0 || moved > testKeys {
		t.Fatalf("join disrupted %d/%d owner pairs", moved, testKeys)
	}
}

// TestReplicatedClustersMatchesOwnersFor: the role-split enumeration and the
// resolver must agree exactly, and roles must partition.
func TestReplicatedClustersMatchesOwnersFor(t *testing.T) {
	r, err := NewRing(32, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	const total = 257
	covered := map[int]int{}
	for _, n := range []string{"a", "b", "c"} {
		primary, replica := r.ReplicatedClusters(n, total, 2)
		for _, k := range primary {
			if r.OwnersFor(k, 2)[0] != n {
				t.Fatalf("%s listed as primary of %d but OwnersFor disagrees", n, k)
			}
			covered[k]++
		}
		for _, k := range replica {
			if r.OwnersFor(k, 2)[1] != n {
				t.Fatalf("%s listed as replica of %d but OwnersFor disagrees", n, k)
			}
			covered[k]++
		}
	}
	for k := 0; k < total; k++ {
		if covered[k] != 2 {
			t.Fatalf("cluster %d covered by %d owners, want exactly 2", k, covered[k])
		}
	}
	// replicas=1 degenerates to OwnedClusters.
	p1, r1 := r.ReplicatedClusters("a", total, 1)
	own := r.OwnedClusters("a", total)
	if len(p1) != len(own) || len(r1) != 0 {
		t.Fatalf("replicas=1: primary %d replica %d, want %d and 0", len(p1), len(r1), len(own))
	}
}

// TestShardMapRoundtrip: serialize → parse → rebuild must reproduce the
// exact routing ring over the live members.
func TestShardMapRoundtrip(t *testing.T) {
	m := ShardMap{
		Version: ShardMapVersion,
		VNodes:  64,
		Shards: []ShardInfo{
			{ID: "s0", Addr: "127.0.0.1:1", Alive: true, OwnedFraction: 0.5, RingPositions: 64},
			{ID: "s1", Addr: "127.0.0.1:2", Alive: false},
			{ID: "s2", Addr: "127.0.0.1:3", Alive: true, OwnedFraction: 0.5, RingPositions: 64},
		},
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseShardMap(blob)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := parsed.Ring()
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewRing(64, []string{"s0", "s2"})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < testKeys; k++ {
		if ring.Owner(k) != want.Owner(k) {
			t.Fatalf("key %d: reconstructed ring resolves %q, want %q", k, ring.Owner(k), want.Owner(k))
		}
	}
}

// TestShardMapValidate rejects each class of structural damage.
func TestShardMapValidate(t *testing.T) {
	valid := func() ShardMap {
		return ShardMap{Version: ShardMapVersion, VNodes: 64,
			Shards: []ShardInfo{{ID: "a", Addr: "x:1", Alive: true, OwnedFraction: 1, RingPositions: 64}}}
	}
	cases := []struct {
		name   string
		mutate func(*ShardMap)
	}{
		{"bad version", func(m *ShardMap) { m.Version = 9 }},
		{"zero vnodes", func(m *ShardMap) { m.VNodes = 0 }},
		{"huge vnodes", func(m *ShardMap) { m.VNodes = 1 << 20 }},
		{"empty id", func(m *ShardMap) { m.Shards[0].ID = "" }},
		{"dup id", func(m *ShardMap) { m.Shards = append(m.Shards, m.Shards[0]) }},
		{"nan fraction", func(m *ShardMap) { m.Shards[0].OwnedFraction = math.NaN() }},
		{"fraction above 1", func(m *ShardMap) { m.Shards[0].OwnedFraction = 1.5 }},
		{"negative positions", func(m *ShardMap) { m.Shards[0].RingPositions = -1 }},
	}
	for _, tc := range cases {
		m := valid()
		tc.mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	m := valid()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
}

// TestParseShards covers the flag form.
func TestParseShards(t *testing.T) {
	got, err := ParseShards("s0=127.0.0.1:8080, s1=127.0.0.1:8081")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "s0" || got[1].Addr != "127.0.0.1:8081" {
		t.Fatalf("parsed %+v", got)
	}
	for _, bad := range []string{"", "justhost:1", "=addr", "id="} {
		if _, err := ParseShards(bad); err == nil {
			t.Errorf("ParseShards(%q) accepted", bad)
		}
	}
}
