package cluster

import (
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// FuzzDecodeGossip throws arbitrary bytes at the gossip wire decoder. The
// endpoint crosses trust boundaries (every member POSTs /v1/gossip to every
// other member), so the property is two-layered: decode never panics, and
// anything decode accepts is fully usable — it re-encodes and re-decodes
// cleanly, and a live agent can apply it (HandleMessage) without panicking
// and answers with a message that is itself wire-valid.
func FuzzDecodeGossip(f *testing.F) {
	seedMsg := func(m GossipMsg) []byte {
		blob, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		return blob
	}
	target := Member{ID: "s2", Addr: "127.0.0.1:3", Role: RoleShard}
	f.Add(seedMsg(GossipMsg{Version: GossipVersion, Type: "ping",
		From: Member{ID: "s0", Addr: "127.0.0.1:1", Role: RoleShard}, Epoch: 3,
		Updates: []Update{{Member: Member{ID: "s1", Addr: "127.0.0.1:2", Role: RoleShard, State: StateSuspect, Incarnation: 2}, Epoch: 2}}}))
	f.Add(seedMsg(GossipMsg{Version: GossipVersion, Type: "ping-req",
		From: Member{ID: "s0", Addr: "127.0.0.1:1", Role: RoleShard}, Target: &target, Epoch: 1}))
	f.Add(seedMsg(GossipMsg{Version: GossipVersion, Type: "join",
		From: Member{ID: "joiner", Addr: "127.0.0.1:9", Role: RoleShard}}))
	f.Add(seedMsg(GossipMsg{Version: GossipVersion, Type: "ack", Ack: true, Sync: true,
		From: Member{ID: "router", Addr: "127.0.0.1:4", Role: RoleRouter}, Epoch: 99}))
	// Rumors about the receiving agent itself exercise the refutation path.
	f.Add([]byte(`{"v":1,"type":"ping","from":{"id":"x","addr":"a:1","role":"shard"},"updates":[{"id":"fz","addr":"b:2","role":"shard","inc":7,"state":2,"epoch":5}],"epoch":5}`))
	f.Add([]byte(`{"v":1,"type":"ping-req","from":{"id":"x","addr":"a:1","role":"shard"}}`)) // no target
	f.Add([]byte(`{"v":2,"type":"ping","from":{"id":"x","addr":"a:1","role":"shard"}}`))
	f.Add([]byte(`null`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeGossip(data)
		if err != nil {
			return
		}
		// Accepted ⇒ re-encodable and still accepted.
		again, err := json.Marshal(msg)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if _, err := DecodeGossip(again); err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		// Accepted ⇒ appliable: a fresh agent (with a transport that always
		// fails, so ping-req relays go nowhere) handles it without panicking
		// and replies with a wire-valid message.
		a, err := NewAgent(Member{ID: "fz", Addr: "127.0.0.1:1", Role: RoleShard},
			GossipConfig{Transport: deadTransport{}})
		if err != nil {
			t.Fatal(err)
		}
		reply := a.HandleMessage(msg)
		if reply == nil {
			t.Fatal("HandleMessage returned no reply")
		}
		blob, err := json.Marshal(reply)
		if err != nil {
			t.Fatalf("reply marshal: %v", err)
		}
		if _, err := DecodeGossip(blob); err != nil {
			t.Fatalf("agent produced a wire-invalid reply: %v", err)
		}
	})
}

// deadTransport fails every exchange (the fuzz agent must not dial out).
type deadTransport struct{}

func (deadTransport) Exchange(string, *GossipMsg, time.Duration) (*GossipMsg, error) {
	return nil, errors.New("dead transport")
}

// FuzzParseShardMap throws arbitrary bytes at the shard-map decoder. The
// document crosses trust boundaries (any client can GET /v1/cluster from
// any router, and tooling rebuilds routing rings from it), so the property
// is: parse never panics, and anything it accepts is fully usable —
// Validate holds and Ring() reconstructs without error.
func FuzzParseShardMap(f *testing.F) {
	valid := ShardMap{
		Version: ShardMapVersion,
		VNodes:  64,
		Shards: []ShardInfo{
			{ID: "s0", Addr: "127.0.0.1:8080", Alive: true, OwnedFraction: 0.5, RingPositions: 64},
			{ID: "s1", Addr: "127.0.0.1:8081", Alive: true, OwnedFraction: 0.5, RingPositions: 64},
		},
	}
	blob, err := json.Marshal(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)*2/3])                                 // truncated JSON
	f.Add([]byte(`{"version":1,"vnodes":1048576,"shards":[]}`)) // vnodes over bound
	f.Add([]byte(`{"version":1,"vnodes":64,"shards":[{"id":"a"},{"id":"a"}]}`))
	f.Add([]byte(`{"version":1,"vnodes":64,"shards":[{"id":"a","owned_fraction":2}]}`))
	f.Add([]byte(`{"version":7,"vnodes":64}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseShardMap(data)
		if err != nil {
			return
		}
		// Accepted ⇒ validated ⇒ ring-buildable.
		if err := m.Validate(); err != nil {
			t.Fatalf("parsed map fails its own Validate: %v", err)
		}
		if _, err := m.Ring(); err != nil {
			t.Fatalf("parsed map cannot rebuild its ring: %v", err)
		}
		// And it round-trips: re-marshal + re-parse stays accepted.
		again, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if _, err := ParseShardMap(again); err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
	})
}
