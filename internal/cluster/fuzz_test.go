package cluster

import (
	"encoding/json"
	"testing"
)

// FuzzParseShardMap throws arbitrary bytes at the shard-map decoder. The
// document crosses trust boundaries (any client can GET /v1/cluster from
// any router, and tooling rebuilds routing rings from it), so the property
// is: parse never panics, and anything it accepts is fully usable —
// Validate holds and Ring() reconstructs without error.
func FuzzParseShardMap(f *testing.F) {
	valid := ShardMap{
		Version: ShardMapVersion,
		VNodes:  64,
		Shards: []ShardInfo{
			{ID: "s0", Addr: "127.0.0.1:8080", Alive: true, OwnedFraction: 0.5, RingPositions: 64},
			{ID: "s1", Addr: "127.0.0.1:8081", Alive: true, OwnedFraction: 0.5, RingPositions: 64},
		},
	}
	blob, err := json.Marshal(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)*2/3])                               // truncated JSON
	f.Add([]byte(`{"version":1,"vnodes":1048576,"shards":[]}`)) // vnodes over bound
	f.Add([]byte(`{"version":1,"vnodes":64,"shards":[{"id":"a"},{"id":"a"}]}`))
	f.Add([]byte(`{"version":1,"vnodes":64,"shards":[{"id":"a","owned_fraction":2}]}`))
	f.Add([]byte(`{"version":7,"vnodes":64}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseShardMap(data)
		if err != nil {
			return
		}
		// Accepted ⇒ validated ⇒ ring-buildable.
		if err := m.Validate(); err != nil {
			t.Fatalf("parsed map fails its own Validate: %v", err)
		}
		if _, err := m.Ring(); err != nil {
			t.Fatalf("parsed map cannot rebuild its ring: %v", err)
		}
		// And it round-trips: re-marshal + re-parse stays accepted.
		again, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if _, err := ParseShardMap(again); err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
	})
}
