package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

func mustUnmarshal(t *testing.T, blob []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(blob, v); err != nil {
		t.Fatalf("unmarshal %s: %v", blob, err)
	}
}

// linkRules is a mutable set of directed gossip blackholes shared by every
// member's wrapped transport: block(from, toAddr) cuts one directed link,
// blockAllTo(addr) cuts every inbound link to one member. The serve/HTTP
// tier is untouched — these partitions exist only on the membership plane,
// which is exactly the asymmetry the SWIM machinery must survive.
type linkRules struct {
	mu    sync.Mutex
	links map[string]bool // "from→toAddr"
	all   map[string]bool // toAddr blocked from every sender
}

func newLinkRules() *linkRules {
	return &linkRules{links: map[string]bool{}, all: map[string]bool{}}
}

func (r *linkRules) block(from, toAddr string) {
	r.mu.Lock()
	r.links[from+"→"+toAddr] = true
	r.mu.Unlock()
}

func (r *linkRules) blockAllTo(toAddr string) {
	r.mu.Lock()
	r.all[toAddr] = true
	r.mu.Unlock()
}

func (r *linkRules) healAllTo(toAddr string) {
	r.mu.Lock()
	delete(r.all, toAddr)
	r.mu.Unlock()
}

func (r *linkRules) dropped(from, toAddr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.all[toAddr] || r.links[from+"→"+toAddr]
}

type faultTransport struct {
	inner Transport
	self  string
	rules *linkRules
}

func (t faultTransport) Exchange(addr string, msg *GossipMsg, timeout time.Duration) (*GossipMsg, error) {
	if t.rules.dropped(t.self, addr) {
		return nil, fmt.Errorf("chaos: gossip link %s→%s blackholed", t.self, addr)
	}
	return t.inner.Exchange(addr, msg, timeout)
}

// startGossipCluster boots an n-shard topology with a live membership plane
// at test-speed timings. The router's own probe ticker is effectively off
// (one initial pass, then hourly), so ring changes during these tests come
// from gossip and in-request I/O — the inputs under test.
func startGossipCluster(t *testing.T, n int, g LocalGossipOptions) *LocalCluster {
	t.Helper()
	lc, err := StartLocal(testTemplate(), testStore(t), nil, LocalOptions{
		Shards: n,
		Serve:  fastServeConfig(),
		Router: RouterConfig{
			ProbeEvery:   time.Hour,
			ProbeTimeout: 2 * time.Second,
		},
		Gossip: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

func fleetCounters(lc *LocalCluster) (suspects, refutations, dead int64) {
	for _, a := range lc.LiveAgents() {
		st := a.MembershipStats()
		suspects += st.SuspectsDeclared
		refutations += st.Refutations
		dead += st.DeadConfirmed
	}
	return
}

// TestGossipChaosAsymmetricLinkIndirectProbe: cut the router→victim gossip
// link only. The router's direct pings to the victim all miss, but its
// indirect ping-reqs relayed through the other shards succeed — so the
// victim is never suspected by the router, never confirmed dead by anyone,
// and never leaves the ring. This is the single-prober false-positive the
// membership plane exists to remove.
func TestGossipChaosAsymmetricLinkIndirectProbe(t *testing.T) {
	rules := newLinkRules()
	lc := startGossipCluster(t, 3, LocalGossipOptions{
		Interval:         40 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		SuspicionTimeout: 2 * time.Second,
		WrapTransport: func(selfID string, tr Transport) Transport {
			return faultTransport{inner: tr, self: selfID, rules: rules}
		},
	})
	victim := lc.ShardID(0)
	rules.block("router", lc.ShardAddr(0))

	// Wait until the router has demonstrably exercised the indirect path:
	// several direct misses, several relayed acks.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := lc.RouterAgent().MembershipStats()
		if st.PingTimeouts >= 2 && st.IndirectAcks >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never exercised the indirect path: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, _, dead := fleetCounters(lc); dead != 0 {
		t.Fatalf("asymmetric partition produced %d dead-confirmations; indirect probes should have saved the victim", dead)
	}
	if m, ok := lc.RouterAgent().View().Find(victim); !ok || m.State == StateDead {
		t.Fatalf("router view of %s: %+v (found=%v), want not-dead", victim, m, ok)
	}
	if live := lc.Router().Stats().LiveShards; live != 3 {
		t.Fatalf("victim ejected from the ring: %d live shards, want 3", live)
	}
}

// TestGossipChaosInboundPartitionRefutation: cut EVERY inbound gossip link
// to the victim. Now the indirect path cannot save it — the fleet suspects
// it — but the victim's outbound links survive, it hears the rumor riding
// back on its own pings' acks, and refutes at a higher incarnation before
// the suspicion window closes. Property: a member that can still talk is
// never confirmed dead, and the ring never ejects it.
func TestGossipChaosInboundPartitionRefutation(t *testing.T) {
	rules := newLinkRules()
	lc := startGossipCluster(t, 3, LocalGossipOptions{
		Interval:         40 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		SuspicionTimeout: 1500 * time.Millisecond,
		WrapTransport: func(selfID string, tr Transport) Transport {
			return faultTransport{inner: tr, self: selfID, rules: rules}
		},
	})
	victim := lc.ShardID(0)
	victimAgent := lc.ShardAgent(0)
	rules.blockAllTo(lc.ShardAddr(0))

	// The victim must get suspected AND refute itself at least once.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if st := victimAgent.MembershipStats(); st.Refutations >= 1 {
			break
		}
		if time.Now().After(deadline) {
			suspects, refutes, dead := fleetCounters(lc)
			t.Fatalf("victim never refuted a suspicion (fleet: %d suspects, %d refutations, %d dead)",
				suspects, refutes, dead)
		}
		time.Sleep(10 * time.Millisecond)
	}

	suspects, _, dead := fleetCounters(lc)
	if suspects < 1 {
		t.Fatalf("full inbound partition raised no suspicion; the fault injected nothing")
	}
	if dead != 0 {
		t.Fatalf("victim confirmed dead %d times despite live outbound links; refutation failed", dead)
	}
	if inc := victimAgent.Incarnation(); inc < 1 {
		t.Fatalf("victim incarnation %d after refuting, want ≥1", inc)
	}
	if live := lc.Router().Stats().LiveShards; live != 3 {
		t.Fatalf("refuting victim was ejected: %d live shards, want 3", live)
	}

	// Heal and show the fleet re-converges on everyone alive.
	rules.healAllTo(lc.ShardAddr(0))
	if _, ok := lc.AwaitConverged(10*time.Second, func(v View) bool {
		m, found := v.Find(victim)
		return found && m.State == StateAlive
	}); !ok {
		t.Fatal("fleet did not re-converge on the victim alive after heal")
	}
}

// TestGossipChaosFlapMonotoneIncarnations: crash-stop and restart one shard
// twice while sampling the router's view of it. The observed lifecycle must
// pass through suspect and dead on each kill and return to alive on each
// restart, and — the linearizing property refutation rests on — the victim's
// incarnation as seen by the router must never move backwards.
func TestGossipChaosFlapMonotoneIncarnations(t *testing.T) {
	lc := startGossipCluster(t, 3, LocalGossipOptions{
		Interval:         40 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		SuspicionTimeout: 500 * time.Millisecond,
	})
	const victim = 1
	id := lc.ShardID(victim)

	type sample struct {
		inc uint64
		st  MemberState
	}
	var mu sync.Mutex
	var samples []sample
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if m, ok := lc.RouterAgent().View().Find(id); ok {
				mu.Lock()
				if n := len(samples); n == 0 || samples[n-1] != (sample{m.Incarnation, m.State}) {
					samples = append(samples, sample{m.Incarnation, m.State})
				}
				mu.Unlock()
			}
		}
	}()

	for flap := 0; flap < 2; flap++ {
		if err := lc.KillShard(victim); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			if m, ok := lc.RouterAgent().View().Find(id); ok && m.State == StateDead {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("flap %d: router never saw %s dead", flap, id)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if _, err := lc.RestartShard(victim); err != nil {
			t.Fatalf("flap %d: restart: %v", flap, err)
		}
	}
	close(stop)
	wg.Wait()

	// The sampler races the restart's re-admission wait (it may be stopped a
	// tick before the router applies the final alive record), so the closing
	// observation is taken authoritatively rather than trusted to the last
	// sampler tick. Once applied, precedence makes it sticky — no stale
	// lower-incarnation obituary can re-mask it.
	var final sample
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m, ok := lc.RouterAgent().View().Find(id); ok && m.State == StateAlive {
			final = sample{m.Incarnation, m.State}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never re-admitted %s after the final restart", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	samples = append(samples, final)
	if len(samples) < 5 {
		t.Fatalf("sampler observed only %d transitions: %+v", len(samples), samples)
	}
	sawSuspect, sawDead := false, false
	for i, s := range samples {
		if s.st == StateSuspect {
			sawSuspect = true
		}
		if s.st == StateDead {
			sawDead = true
		}
		if i > 0 && s.inc < samples[i-1].inc {
			t.Fatalf("incarnation moved backwards at transition %d: %+v", i, samples)
		}
	}
	if !sawSuspect || !sawDead {
		t.Fatalf("lifecycle incomplete (suspect=%v dead=%v): %+v", sawSuspect, sawDead, samples)
	}
	if final.inc < 2 {
		t.Fatalf("two flaps ended at incarnation %d, want ≥2 (one bump per rejoin)", final.inc)
	}
	lc.Router().ProbeOnce()
	if live := lc.Router().Stats().LiveShards; live != 3 {
		t.Fatalf("fleet did not recover: %d live shards", live)
	}
}

// TestGossipChaosJoinDuringKillChurn: the hardest convergence case the ISSUE
// names — a shard dies, a brand-new shard joins flag-free through the gossip
// plane while the fleet is still digesting the death, and the victim then
// rejoins — all under continuous client load. Properties: zero non-2xx
// throughout, the newcomer enters the ring via gossip alone, and every
// surviving view converges to one (epoch, digest) within a bounded window.
func TestGossipChaosJoinDuringKillChurn(t *testing.T) {
	lc := startGossipCluster(t, 3, LocalGossipOptions{
		Interval:         40 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		SuspicionTimeout: 600 * time.Millisecond,
	})

	drive := func(phase string, iters int) {
		t.Helper()
		for i := 0; i < iters; i++ {
			k := i % clusterCount
			code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(k))
			if code != http.StatusOK {
				t.Errorf("%s iter %d cluster %d: %d %s", phase, i, k, code, body)
			}
		}
	}

	drive("warm", clusterCount) // every range owned and trained

	const victim = 1
	if err := lc.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	drive("post-kill", 40) // ejection + retry path: still all 200

	// Join a brand-new shard while the victim is still dead. No flag
	// change anywhere: the newcomer dials a live peer, the router admits it
	// from the converged view.
	idx, _, err := lc.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 {
		t.Fatalf("new shard landed at index %d, want 3", idx)
	}
	drive("post-join", 40)

	if _, err := lc.RestartShard(victim); err != nil {
		t.Fatal(err)
	}
	drive("post-restart", 40)

	// Bounded convergence: every surviving agent (4 shards + router) must
	// agree on one epoch and one digest with all four shards alive.
	ids := []string{lc.ShardID(0), lc.ShardID(1), lc.ShardID(2), lc.ShardID(3)}
	dt, ok := lc.AwaitConverged(15*time.Second, func(v View) bool {
		for _, id := range ids {
			if m, found := v.Find(id); !found || m.State != StateAlive {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatalf("churned fleet did not converge on all-alive within 15s")
	}
	t.Logf("churn converged in %v", dt)

	lc.Router().ProbeOnce()
	st := lc.Router().Stats()
	if st.LiveShards != 4 {
		t.Fatalf("%d live shards after churn, want 4", st.LiveShards)
	}
	if st.GossipJoins < 1 {
		t.Fatalf("router admitted %d members via gossip, want ≥1 (the flag-free join)", st.GossipJoins)
	}
	if st.NoShard503s != 0 {
		t.Fatalf("router issued %d no-shard 503s with survivors present", st.NoShard503s)
	}
	if st.MembershipEpoch == 0 {
		t.Fatal("router stats carry no membership epoch")
	}
}

// TestGossipStatsSurfaced: the membership plane shows up on both stats
// surfaces — each shard's /v1/stats carries its agent's counters, and the
// router's carries the epoch plus its own agent view.
func TestGossipStatsSurfaced(t *testing.T) {
	lc := startGossipCluster(t, 2, LocalGossipOptions{})
	if _, ok := lc.AwaitConverged(10*time.Second, func(v View) bool {
		return len(v.Members) == 3 // 2 shards + router
	}); !ok {
		t.Fatal("fleet never converged on the full member table")
	}

	var shardStats struct {
		Membership *struct {
			Epoch   uint64 `json:"membership_epoch"`
			Members int    `json:"members"`
			Alive   int    `json:"alive"`
			Digest  string `json:"view_digest"`
		} `json:"membership"`
	}
	code, body := get(t, lc.ShardAddr(0), "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("shard stats: %d", code)
	}
	mustUnmarshal(t, body, &shardStats)
	if shardStats.Membership == nil {
		t.Fatalf("shard stats carry no membership section: %s", body)
	}
	if shardStats.Membership.Epoch < 1 || shardStats.Membership.Members != 3 || shardStats.Membership.Alive != 3 {
		t.Fatalf("shard membership stats: %+v", shardStats.Membership)
	}
	if shardStats.Membership.Digest == "" {
		t.Fatal("shard membership stats carry no view digest")
	}

	var routerStats struct {
		MembershipEpoch uint64 `json:"membership_epoch"`
		Membership      *struct {
			Members int `json:"members"`
		} `json:"membership"`
	}
	code, body = get(t, lc.Addr(), "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("router stats: %d", code)
	}
	mustUnmarshal(t, body, &routerStats)
	if routerStats.MembershipEpoch < 1 || routerStats.Membership == nil || routerStats.Membership.Members != 3 {
		t.Fatalf("router membership stats: epoch=%d membership=%+v",
			routerStats.MembershipEpoch, routerStats.Membership)
	}

	// The gossip endpoint itself answers on both tiers.
	if code, _ := post(t, lc.ShardAddr(0), GossipPath, []byte(`{not a gossip msg`)); code != http.StatusBadRequest {
		t.Fatalf("shard gossip endpoint answered %d to junk, want 400", code)
	}
}
