package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// MembershipManager keeps one shard's serve-side identity in lockstep with
// the gossip plane's converged view: whenever the effective member set
// changes (a join, a confirmed death, a refuted obituary) it re-runs
// AssignIdentity over the new full ring, re-targets the replication
// sender's peer resolution, and pulls warm state for any cluster ranges
// the shard just gained — the dynamic-membership equivalent of JoinWarm.
// This is what makes `-join host:port` a complete join: no other member
// needs a flag change for ownership, replication, and warm handoff to
// re-shape around the newcomer.
type MembershipManager struct {
	s         *serve.Server
	agent     *Agent
	self      Shard
	vnodes    int
	replicas  int
	pageLimit int
	timeout   time.Duration
	logf      func(format string, args ...any)

	// snap is the peer-resolution snapshot read by the replication
	// sender's PeersFor on every push — swapped wholesale per view change.
	snap atomic.Pointer[memberSnap]

	// pending is the latest unapplied view (latest-wins mailbox): view
	// callbacks must not block on network pulls, so the manager goroutine
	// does the heavy lifting.
	mu      sync.Mutex
	pending *View
	kick    chan struct{}

	// Applied-state bookkeeping, touched only by apply (constructor, then
	// the single manager goroutine).
	lastFP    string
	ownedPrev map[int]bool

	applies atomic.Int64 // view applications that reshaped identity
	pulls   atomic.Int64 // policies pulled across all reshapes
}

type memberSnap struct {
	ring     *Ring
	addrs    map[string]string
	selfID   string
	replicas int
}

// PeersFor resolves a cluster key's replica peers against the manager's
// current member snapshot. Handed to the replication sender once; every
// push reads the newest snapshot.
func (m *MembershipManager) PeersFor(cluster int) []string {
	sn := m.snap.Load()
	if sn == nil || sn.ring == nil || sn.ring.Len() == 0 {
		return nil
	}
	var out []string
	for _, owner := range sn.ring.OwnersFor(cluster, sn.replicas) {
		if owner == sn.selfID {
			continue
		}
		if addr := sn.addrs[owner]; addr != "" {
			out = append(out, addr)
		}
	}
	return out
}

// Applies counts the view changes that reshaped this shard's identity.
func (m *MembershipManager) Applies() int64 { return m.applies.Load() }

// Pulls counts the policies warm-pulled across all reshapes.
func (m *MembershipManager) Pulls() int64 { return m.pulls.Load() }

// ManageMembership wires a shard's server to its gossip agent and applies
// the current view synchronously (so the caller returns with identity
// assigned and, on a fresh join, warm state pulled — the returned count).
// It then follows every view change until ctx ends. Replication (when
// replicas >= 2) is enabled against the manager's dynamic peer resolution;
// if the server already replicates from a static bootstrap list, the
// sender is re-targeted in place.
func ManageMembership(ctx context.Context, s *serve.Server, agent *Agent, self Shard, vnodes, replicas, pageLimit int, timeout time.Duration, logf func(string, ...any)) (*MembershipManager, int, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	if replicas < 1 {
		replicas = 1
	}
	if timeout <= 0 {
		timeout = DefaultHandoffTimeout
	}
	m := &MembershipManager{
		s: s, agent: agent, self: self,
		vnodes: vnodes, replicas: replicas, pageLimit: pageLimit,
		timeout: timeout, logf: logf,
		kick:      make(chan struct{}, 1),
		ownedPrev: make(map[int]bool),
	}
	if replicas >= 2 {
		if err := s.EnableReplication(serve.ReplicationConfig{PeersFor: m.PeersFor, Logf: logf}); err != nil {
			// Already enabled from a static bootstrap list: re-target it.
			if err2 := s.SetReplicationPeers(m.PeersFor); err2 != nil {
				return nil, 0, fmt.Errorf("cluster: membership replication: %v (and %v)", err, err2)
			}
		}
	}
	s.SetMembership(agent.MembershipStats)
	pulled := m.apply(agent.View())
	go m.run(ctx)
	agent.Subscribe(m.offer)
	return m, pulled, nil
}

// offer is the agent's view-change callback: record the newest view and
// nudge the manager goroutine. Never blocks.
func (m *MembershipManager) offer(v View) {
	m.mu.Lock()
	m.pending = &v
	m.mu.Unlock()
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

func (m *MembershipManager) run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-m.kick:
		}
		m.mu.Lock()
		v := m.pending
		m.pending = nil
		m.mu.Unlock()
		if v != nil {
			m.apply(*v)
		}
	}
}

// apply reshapes identity around one view. Returns how many policies were
// warm-pulled for newly-gained ranges (zero when the effective member set
// didn't change — state flaps between alive and suspect don't move
// ownership).
func (m *MembershipManager) apply(v View) int {
	members := make([]Shard, 0, len(v.Members))
	selfIn := false
	for _, mem := range v.Members {
		if mem.Role != RoleShard || mem.State == StateDead || mem.Addr == "" {
			continue
		}
		members = append(members, Shard{ID: mem.ID, Addr: mem.Addr})
		if mem.ID == m.self.ID {
			selfIn = true
		}
	}
	if !selfIn {
		// Our own obituary is still converging (the refutation is in
		// flight); reshaping now would orphan every range.
		return 0
	}
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	var fp strings.Builder
	for _, sh := range members {
		fp.WriteString(sh.ID)
		fp.WriteByte('=')
		fp.WriteString(sh.Addr)
		fp.WriteByte(';')
	}
	if fp.String() == m.lastFP {
		return 0
	}

	ids := make([]string, 0, len(members))
	addrs := make(map[string]string, len(members))
	for _, sh := range members {
		ids = append(ids, sh.ID)
		addrs[sh.ID] = sh.Addr
	}
	ring, err := NewRing(m.vnodes, ids)
	if err != nil {
		m.logf("cluster: membership: ring over %d members: %v", len(members), err)
		return 0
	}
	m.snap.Store(&memberSnap{ring: ring, addrs: addrs, selfID: m.self.ID, replicas: m.replicas})

	primary, replica, err := AssignIdentity(m.s, m.self, members, m.vnodes, m.replicas)
	if err != nil {
		m.logf("cluster: membership: assign identity: %v", err)
		return 0
	}
	owned := make(map[int]bool, len(primary)+len(replica))
	var gainedP, gainedR []int
	for _, k := range primary {
		owned[k] = true
		if !m.ownedPrev[k] {
			gainedP = append(gainedP, k)
		}
	}
	for _, k := range replica {
		owned[k] = true
		if !m.ownedPrev[k] {
			gainedR = append(gainedR, k)
		}
	}
	m.ownedPrev = owned
	m.lastFP = fp.String()
	m.applies.Add(1)

	pulled := 0
	if len(gainedP)+len(gainedR) > 0 {
		var peers []Shard
		for _, sh := range members {
			if sh.ID != m.self.ID {
				peers = append(peers, sh)
			}
		}
		pulled = PullWarmState(m.s, peers, gainedP, gainedR, m.pageLimit, m.timeout, m.logf)
		m.pulls.Add(int64(pulled))
	}
	m.logf("cluster: membership: %s reshaped over %d members (epoch %d): %d primary, %d replica, %d gained ranges, %d pulled",
		m.self.ID, len(members), v.Epoch, len(primary), len(replica), len(gainedP)+len(gainedR), pulled)
	return pulled
}
