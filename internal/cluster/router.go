package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rawhttp"
	"repro/internal/serve"
)

// Shard names one dcta-server replica: a stable id (the ring placement
// key, so a shard that rejoins at a new address keeps its ranges) and the
// address the router proxies to.
type Shard struct {
	ID   string
	Addr string
}

// ParseShards parses the "-shards id=host:port,id=host:port" flag form.
// Duplicate ids and duplicate addresses are both rejected: two ring
// identities over one backend would silently skew ownership (the ring
// hands ~2/N of the keyspace to one process while the stats and replica
// placement believe they are distinct nodes).
func ParseShards(spec string) ([]Shard, error) {
	var out []Shard
	seenID := make(map[string]bool)
	seenAddr := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad shard %q (want id=host:port)", part)
		}
		if seenID[id] {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", id)
		}
		if prev, dup := seenAddr[addr]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard address %q (shards %q and %q)", addr, prev, id)
		}
		seenID[id] = true
		seenAddr[addr] = id
		out = append(out, Shard{ID: id, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no shards in %q", spec)
	}
	return out, nil
}

// ParseSeeds parses a "-join" seed list ("host:port,host:port,..."): bare
// addresses, no ids — a joiner only needs somewhere to dial, identities
// come back over the wire. Rejects duplicates.
func ParseSeeds(spec string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.Contains(part, "=") {
			return nil, fmt.Errorf("cluster: bad join seed %q (want host:port, no id)", part)
		}
		if seen[part] {
			return nil, fmt.Errorf("cluster: duplicate join seed %q", part)
		}
		seen[part] = true
		out = append(out, part)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no join seeds in %q", spec)
	}
	return out, nil
}

// RouterConfig tunes the routing tier.
type RouterConfig struct {
	// VNodes is the per-shard virtual-node count (default 64).
	VNodes int
	// ProbeEvery is the liveness probe cadence (default 250ms).
	ProbeEvery time.Duration
	// LivenessMisses ejects a shard after this many consecutive failed
	// healthz probes (default 3). Proxy I/O failures eject immediately —
	// probing exists to notice silent deaths and to re-admit rejoiners.
	LivenessMisses int
	// ProbeTimeout bounds one healthz probe (default 1s).
	ProbeTimeout time.Duration
	// ProxyTimeout bounds one proxied request round trip (default 30s —
	// a cold shard may train before answering).
	ProxyTimeout time.Duration
	// ConnsPerShard bounds each shard's idle proxy-connection pool
	// (default 64; excess connections are closed on release).
	ConnsPerShard int
	// MaxBodyBytes bounds proxied request bodies (default 8 MiB, matching
	// the serve front-end).
	MaxBodyBytes int64
	// ReplicaGroups is the deployment's owner count per cluster range (R),
	// surfaced in stats. Informational only: the ring's successor order
	// already makes a primary's ejection land its ranges on the replica, so
	// routing needs no R-awareness (default DefaultReplicaGroups).
	ReplicaGroups int
	// ProbeJitterSeed seeds the per-shard probe phase offsets (default 1).
	// Each shard's liveness probe fires at a deterministic offset within
	// the ProbeEvery window instead of every probe firing in lockstep, so
	// a large fleet never takes a synchronized probe storm.
	ProbeJitterSeed int64
	// Now is the stats clock (default time.Now).
	Now func() time.Time
	// Logf sinks membership transitions (default log.Printf).
	Logf func(format string, args ...any)
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.VNodes < 1 {
		c.VNodes = DefaultVNodes
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 250 * time.Millisecond
	}
	if c.LivenessMisses < 1 {
		c.LivenessMisses = 3
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 30 * time.Second
	}
	if c.ConnsPerShard < 1 {
		c.ConnsPerShard = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.ReplicaGroups < 1 {
		c.ReplicaGroups = DefaultReplicaGroups
	}
	if c.ProbeJitterSeed == 0 {
		c.ProbeJitterSeed = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// shardState is the router's view of one replica: its proxy-connection
// pool, liveness, and per-shard counters.
type shardState struct {
	id, addr string

	// alive is the router's local verdict (healthz probes and in-request
	// I/O outcomes). gossipDead is the membership plane's verdict: set
	// when the converged view confirms the member dead, cleared by a
	// gossip re-admission or by a locally successful probe (direct
	// evidence beats a stale rumor). A shard routes only while alive and
	// not gossipDead.
	alive      atomic.Bool
	gossipDead atomic.Bool

	poolMu sync.Mutex
	pool   []*rawhttp.Conn

	// probeMu serializes liveness probes of this shard: Run's ticker and a
	// test-driven ProbeOnce may overlap, and misses/probeConn are plain
	// fields. One probe pass per shard at a time also keeps the miss count
	// meaning "consecutive probe windows", not "concurrent attempts".
	probeMu   sync.Mutex
	misses    int           // consecutive failed probes; guarded by probeMu
	probeConn *rawhttp.Conn // guarded by probeMu

	proxied  atomic.Int64 // requests this shard answered (any status)
	hits     atomic.Int64 // answers served from a resident policy
	degraded atomic.Int64 // answers from the shard's degraded path
	nonOK    atomic.Int64 // non-2xx answers passed through
	ioErrors atomic.Int64 // proxy round trips that failed at the wire
}

func (ss *shardState) getConn(timeout time.Duration) (*rawhttp.Conn, error) {
	ss.poolMu.Lock()
	if n := len(ss.pool); n > 0 {
		c := ss.pool[n-1]
		ss.pool = ss.pool[:n-1]
		ss.poolMu.Unlock()
		return c, nil
	}
	ss.poolMu.Unlock()
	c, err := rawhttp.Dial(ss.addr)
	if err != nil {
		return nil, err
	}
	c.Timeout = timeout
	return c, nil
}

func (ss *shardState) putConn(c *rawhttp.Conn, limit int) {
	ss.poolMu.Lock()
	if len(ss.pool) < limit {
		ss.pool = append(ss.pool, c)
		ss.poolMu.Unlock()
		return
	}
	ss.poolMu.Unlock()
	c.Close()
}

// dropConns closes every pooled connection (the shard died; they are all
// suspect).
func (ss *shardState) dropConns() {
	ss.poolMu.Lock()
	conns := ss.pool
	ss.pool = nil
	ss.poolMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Router is the cluster front-end: it terminates /v1/allocate and
// /v1/feedback, resolves each request's signature to its cluster key
// against the same environment store the shards were built from, and
// proxies the raw body to the key's ring owner over a pooled persistent
// connection. Failures never surface as 5xx while any shard survives: a
// wire error or 503 ejects the shard from the ring and the request retries
// on the key's new owner, whose cold/degraded path answers.
type Router struct {
	cfg   RouterConfig
	store *core.EnvironmentStore

	ring atomic.Pointer[Ring] // live members only

	mu     sync.RWMutex // membership transitions; readers guard the map
	shards map[string]*shardState
	order  []string // stable iteration order

	// membership is the gossip agent whose converged view this router
	// subscribes to (nil when running on a static shard list alone). Set
	// via AttachMembership before serving.
	membership      *Agent
	membershipEpoch atomic.Uint64
	gossipJoins     atomic.Int64 // members learned from gossip, not flags

	started    time.Time
	requests   atomic.Int64
	retries    atomic.Int64
	ejections  atomic.Int64
	rejoins    atomic.Int64
	rebalances atomic.Int64 // ring rebuilds (ejections + rejoins)
	noShard    atomic.Int64 // 503s issued because no shard was live
	roundRobin atomic.Int64 // fallback routing for signature-less bodies

	wsPool sync.Pool // *proxyWS
}

// proxyWS is the pooled per-request proxy workspace.
type proxyWS struct {
	body  []byte
	frame []byte
	sig   struct {
		Signature []float64 `json:"signature"`
	}
}

// NewRouter builds a router over the deployment's environment store (every
// node derives the same store from the shared scenario seed, so router and
// shards agree on NearestIndex) and the initial member list. All members
// start live; the first failed round trip or missed probe window ejects.
// An empty shard list is a valid boot only when the member set arrives
// dynamically (AttachMembership): the router answers no-shard 503s until
// gossip populates the ring.
func NewRouter(store *core.EnvironmentStore, shards []Shard, cfg RouterConfig) (*Router, error) {
	if store == nil || store.Len() == 0 {
		return nil, core.ErrEmptyStore
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:     cfg,
		store:   store,
		shards:  make(map[string]*shardState, len(shards)),
		started: cfg.Now(),
	}
	var ids []string
	for _, s := range shards {
		if _, dup := r.shards[s.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", s.ID)
		}
		ss := &shardState{id: s.ID, addr: s.Addr}
		ss.alive.Store(true)
		r.shards[s.ID] = ss
		r.order = append(r.order, s.ID)
		ids = append(ids, s.ID)
	}
	sort.Strings(r.order)
	ring, err := NewRing(cfg.VNodes, ids)
	if err != nil {
		return nil, err
	}
	r.ring.Store(ring)
	r.wsPool.New = func() any { return &proxyWS{} }
	return r, nil
}

// Ring snapshots the current live ring.
func (r *Router) Ring() *Ring { return r.ring.Load() }

// rebuildRingLocked recomputes the live ring after a membership change. A
// shard routes while both failure-detection inputs clear it: the router's
// local verdict (probes + in-request I/O) and the gossip plane's (a
// confirmed-dead member is out even if this router's probes lag).
func (r *Router) rebuildRingLocked() {
	var live []string
	for _, id := range r.order {
		ss := r.shards[id]
		if ss.alive.Load() && !ss.gossipDead.Load() {
			live = append(live, id)
		}
	}
	ring, err := NewRing(r.cfg.VNodes, live)
	if err != nil {
		// Unreachable: ids were validated at construction.
		r.cfg.Logf("cluster: ring rebuild: %v", err)
		return
	}
	r.ring.Store(ring)
	r.rebalances.Add(1)
}

// eject marks a shard dead and reassigns its ranges to the survivors.
// Idempotent: concurrent failures eject once.
func (r *Router) eject(ss *shardState, why string) {
	r.mu.Lock()
	if !ss.alive.Load() {
		r.mu.Unlock()
		return
	}
	ss.alive.Store(false)
	r.rebuildRingLocked()
	r.mu.Unlock()
	r.ejections.Add(1)
	ss.dropConns()
	r.cfg.Logf("cluster: shard %s (%s) ejected: %s; %d live", ss.id, ss.addr, why, r.Ring().Len())
}

// readmit marks a recovered shard live and hands its ranges back. A
// successful probe is first-hand evidence, so it also clears a stale
// gossip obituary — the membership plane converges on the refutation
// moments later, but routing doesn't wait for it.
func (r *Router) readmit(ss *shardState) {
	r.mu.Lock()
	if ss.alive.Load() && !ss.gossipDead.Load() {
		r.mu.Unlock()
		return
	}
	ss.alive.Store(true)
	ss.gossipDead.Store(false)
	r.rebuildRingLocked()
	r.mu.Unlock()
	r.rejoins.Add(1)
	r.cfg.Logf("cluster: shard %s (%s) rejoined; %d live", ss.id, ss.addr, r.Ring().Len())
}

// AttachMembership subscribes the router to a gossip agent's converged
// view. From then on the router's private probes are one failure-detection
// input, not the sole authority: the ring gains members the gossip plane
// admits (flag-free joins), loses members it confirms dead, and the
// membership epoch rides along into RouterStats. Call before serving.
func (r *Router) AttachMembership(a *Agent) {
	r.membership = a
	a.Subscribe(r.applyMembershipView)
}

// applyMembershipView folds one converged view into the router's member
// set. Unknown shard-role members are admitted at their advertised address
// (this is how a `-join`ed shard reaches every router without a flag
// change); known members keep their configured dial address, so a fault
// proxy interposed at construction stays in the path. A confirmed-dead
// member is masked out of the ring even if this router's own probes
// haven't noticed; a re-admitted one (the member refuted its obituary)
// unmasks. Suspects stay in the ring — suspicion is a grace window, not a
// verdict, and ejecting on rumor is exactly the single-prober failure mode
// this plane exists to remove.
func (r *Router) applyMembershipView(v View) {
	r.membershipEpoch.Store(v.Epoch)
	r.mu.Lock()
	changed := false
	for _, m := range v.Members {
		if m.Role != RoleShard {
			continue
		}
		ss, known := r.shards[m.ID]
		if !known {
			if m.State == StateDead || m.Addr == "" {
				continue
			}
			ss = &shardState{id: m.ID, addr: m.Addr}
			ss.alive.Store(true)
			r.shards[m.ID] = ss
			r.order = append(r.order, m.ID)
			sort.Strings(r.order)
			r.gossipJoins.Add(1)
			changed = true
			r.cfg.Logf("cluster: shard %s (%s) admitted via gossip", m.ID, m.Addr)
			continue
		}
		dead := m.State == StateDead
		if ss.gossipDead.Load() == dead {
			continue
		}
		inRingBefore := ss.alive.Load() && !ss.gossipDead.Load()
		ss.gossipDead.Store(dead)
		inRingAfter := ss.alive.Load() && !ss.gossipDead.Load()
		changed = true
		if inRingBefore && !inRingAfter {
			r.ejections.Add(1)
			ss.dropConns()
			r.cfg.Logf("cluster: shard %s (%s) ejected: gossip confirmed dead at inc %d", ss.id, ss.addr, m.Incarnation)
		} else if !inRingBefore && inRingAfter {
			r.rejoins.Add(1)
			r.cfg.Logf("cluster: shard %s (%s) re-admitted via gossip at inc %d", ss.id, ss.addr, m.Incarnation)
		}
	}
	if changed {
		r.rebuildRingLocked()
	}
	r.mu.Unlock()
}

// ProbeOffset is shard id's deterministic phase within the ProbeEvery
// window: a hash of (ProbeJitterSeed, id) spreads a fleet's probes across
// the window instead of firing them all at the tick. Deterministic by
// construction — two routers with one seed schedule identically, and a
// shard keeps its phase when members come and go.
func (r *Router) ProbeOffset(id string) time.Duration {
	h := fnv1a64(fmt.Sprintf("%d\x00%s", r.cfg.ProbeJitterSeed, id))
	return time.Duration(h % uint64(r.cfg.ProbeEvery))
}

// ProbeOffsets snapshots every current member's probe phase.
func (r *Router) ProbeOffsets() map[string]time.Duration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]time.Duration, len(r.order))
	for _, id := range r.order {
		out[id] = r.ProbeOffset(id)
	}
	return out
}

// Run drives the liveness prober until ctx ends. An initial probe pass
// runs immediately so a topology that boots with a dead member converges
// before the first tick; after that each shard fires once per ProbeEvery
// window at its own jittered phase (ProbeOffset), so the fleet never takes
// a synchronized probe storm. Members learned from gossip mid-run enter
// the schedule on the next wakeup.
func (r *Router) Run(ctx context.Context) {
	r.ProbeOnce()
	next := make(map[string]time.Time)
	for {
		now := time.Now()
		wake := now.Add(r.cfg.ProbeEvery)
		var due []*shardState
		r.mu.RLock()
		ids := append([]string(nil), r.order...)
		states := make([]*shardState, len(ids))
		for i, id := range ids {
			states[i] = r.shards[id]
		}
		r.mu.RUnlock()
		for i, id := range ids {
			nd, ok := next[id]
			if !ok {
				nd = now.Add(r.ProbeOffset(id))
				next[id] = nd
			}
			if !nd.After(now) {
				due = append(due, states[i])
				for !nd.After(now) {
					nd = nd.Add(r.cfg.ProbeEvery)
				}
				next[id] = nd
			}
			if nd.Before(wake) {
				wake = nd
			}
		}
		if len(due) > 0 {
			var wg sync.WaitGroup
			for _, ss := range due {
				wg.Add(1)
				go func(ss *shardState) {
					defer wg.Done()
					r.probe(ss)
				}(ss)
			}
			wg.Wait()
		}
		sleep := time.Until(wake)
		if sleep < time.Millisecond {
			sleep = time.Millisecond
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(sleep):
		}
	}
}

// ProbeOnce probes every shard's /v1/healthz once, concurrently, applying
// the miss/eject/readmit rules. Exposed so tests can drive membership
// without timing dependence.
func (r *Router) ProbeOnce() {
	r.mu.RLock()
	states := make([]*shardState, 0, len(r.order))
	for _, id := range r.order {
		states = append(states, r.shards[id])
	}
	r.mu.RUnlock()
	var wg sync.WaitGroup
	for _, ss := range states {
		wg.Add(1)
		go func(ss *shardState) {
			defer wg.Done()
			r.probe(ss)
		}(ss)
	}
	wg.Wait()
}

var healthzFrame = rawhttp.BuildGetFrame("/healthz")

// probe runs one liveness check against one shard, serialized per shard by
// probeMu (Run's ticker and test-driven ProbeOnce calls may overlap). A
// cached connection that dies mid-probe gets one fresh-dial retry in the
// same pass: a restarted shard presents exactly that way (the stale
// connection fails at read, after the write already landed in the socket
// buffer), and one probe pass must be enough to re-admit it.
func (r *Router) probe(ss *shardState) {
	ss.probeMu.Lock()
	defer ss.probeMu.Unlock()
	ok := false
	for attempt := 0; attempt < 2 && !ok; attempt++ {
		if ss.probeConn == nil {
			c, err := rawhttp.Dial(ss.addr)
			if err != nil {
				break // unreachable at the wire; a second dial won't differ
			}
			c.Timeout = r.cfg.ProbeTimeout
			ss.probeConn = c
		}
		code, _, err := ss.probeConn.Do(healthzFrame)
		if err != nil {
			ss.probeConn.Close()
			ss.probeConn = nil
			continue
		}
		// A draining shard answers 503: treat as down so the ring
		// reassigns before its listener closes.
		ok = code == http.StatusOK
		break
	}
	if ok {
		ss.misses = 0
		r.readmit(ss)
		return
	}
	ss.misses++
	if ss.misses >= r.cfg.LivenessMisses && ss.alive.Load() {
		r.eject(ss, fmt.Sprintf("%d consecutive probe misses", ss.misses))
	}
}

// shardFor resolves the cluster key's live owner. key < 0 (no signature in
// the request) falls back to round-robin over the live set.
func (r *Router) shardFor(key int) *shardState {
	ring := r.ring.Load()
	if ring.Len() == 0 {
		return nil
	}
	var owner string
	if key >= 0 {
		owner = ring.Owner(key)
		if owner == "" {
			return nil
		}
	} else {
		nodes := ring.nodes
		owner = nodes[int(r.roundRobin.Add(1)-1)%len(nodes)]
	}
	r.mu.RLock()
	ss := r.shards[owner]
	r.mu.RUnlock()
	return ss
}

// Response-classification needles, mirroring loadgen's: the router counts
// per-shard outcomes by scanning the proxied body rather than decoding it.
var (
	routerNeedleDegraded = []byte(`"mode":"` + serve.ModeDegraded + `"`)
	routerNeedleHit      = []byte(`"cache":"` + serve.CacheHit + `"`)
	routerNeedleWarm     = []byte(`"cache":"` + serve.CacheWarm + `"`)
	routerNeedleSpec     = []byte(`"cache":"` + serve.CacheSpeculative + `"`)
	routerNeedleReplica  = []byte(`"cache":"` + serve.CacheReplica + `"`)
)

// forward proxies one request body to the key's owner, retrying on the
// next owner after ejecting a failed shard. It returns the upstream status
// and body (aliasing conn buffers — consumed before the conn is pooled by
// the caller via done), or ok=false when no shard is live.
func (r *Router) forward(path string, ws *proxyWS, key int) (code int, body []byte, release func(), ok bool) {
	ws.frame = rawhttp.AppendFrame(ws.frame, path, ws.body)
	// One attempt per initially-live shard plus one: every failed attempt
	// ejects, so the loop strictly shrinks the live set and terminates.
	r.mu.RLock()
	attempts := len(r.order) + 1
	r.mu.RUnlock()
	for try := 0; try < attempts; try++ {
		ss := r.shardFor(key)
		if ss == nil {
			return 0, nil, nil, false
		}
		conn, err := ss.getConn(r.cfg.ProxyTimeout)
		if err != nil {
			ss.ioErrors.Add(1)
			r.eject(ss, "dial: "+err.Error())
			r.retries.Add(1)
			continue
		}
		code, respBody, err := conn.Do(ws.frame)
		if err != nil {
			conn.Close()
			ss.ioErrors.Add(1)
			r.eject(ss, "proxy: "+err.Error())
			r.retries.Add(1)
			continue
		}
		if code == http.StatusServiceUnavailable {
			// Draining or refusing: the shard is alive at the wire but out
			// of service. Treat like a death so the ranges move.
			ss.putConn(conn, r.cfg.ConnsPerShard)
			ss.nonOK.Add(1)
			r.eject(ss, "503 from shard")
			r.retries.Add(1)
			continue
		}
		ss.proxied.Add(1)
		if code >= 300 {
			ss.nonOK.Add(1)
		} else {
			if bytes.Contains(respBody, routerNeedleDegraded) {
				ss.degraded.Add(1)
			}
			if bytes.Contains(respBody, routerNeedleHit) || bytes.Contains(respBody, routerNeedleWarm) ||
				bytes.Contains(respBody, routerNeedleSpec) || bytes.Contains(respBody, routerNeedleReplica) {
				ss.hits.Add(1)
			}
		}
		release = func() { ss.putConn(conn, r.cfg.ConnsPerShard) }
		return code, respBody, release, true
	}
	return 0, nil, nil, false
}

// handleProxy terminates one /v1/allocate or /v1/feedback request and
// relays it to its owning shard.
func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	r.requests.Add(1)
	ws := r.wsPool.Get().(*proxyWS)
	defer r.wsPool.Put(ws)
	var err error
	ws.body, err = readBody(ws.body[:0], http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	// Routing needs only the signature; everything else passes through
	// opaquely. A body without a decodable signature (including malformed
	// JSON) routes round-robin and lets the shard own the 400 — the router
	// never duplicates serve's validation.
	key := -1
	ws.sig.Signature = ws.sig.Signature[:0]
	if json.Unmarshal(ws.body, &ws.sig) == nil && len(ws.sig.Signature) > 0 {
		if k, _, err := r.store.NearestIndex(ws.sig.Signature); err == nil {
			key = k
		}
	}
	code, body, release, ok := r.forward(req.URL.Path, ws, key)
	if !ok {
		r.noShard.Add(1)
		writeJSONError(w, http.StatusServiceUnavailable, "no live shards")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body)
	release()
}

// readBody appends the reader's contents onto dst.
func readBody(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// ShardMap renders the wire-level cluster description.
func (r *Router) ShardMap() ShardMap {
	ring := r.ring.Load()
	m := ShardMap{Version: ShardMapVersion, VNodes: r.cfg.VNodes}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, id := range r.order {
		ss := r.shards[id]
		info := ShardInfo{ID: id, Addr: ss.addr, Alive: ss.alive.Load() && !ss.gossipDead.Load()}
		if info.Alive {
			info.OwnedFraction = ring.OwnedFraction(id)
			info.RingPositions = r.cfg.VNodes
		}
		m.Shards = append(m.Shards, info)
	}
	return m
}

// ShardCounters is one shard's routing telemetry.
type ShardCounters struct {
	ShardInfo
	Proxied  int64 `json:"proxied"`
	Hits     int64 `json:"hits"`
	Degraded int64 `json:"degraded"`
	NonOK    int64 `json:"non_2xx"`
	IOErrors int64 `json:"io_errors"`
}

// RouterStats is the router's /v1/stats payload: fleet-wide counters plus
// per-shard identity and outcomes. MembershipEpoch and Membership appear
// when the router gossips (AttachMembership); GossipJoins counts members
// the router learned from the membership plane rather than its flags.
type RouterStats struct {
	UptimeSeconds   float64                `json:"uptime_s"`
	Requests        int64                  `json:"requests"`
	Retries         int64                  `json:"retries"`
	Ejections       int64                  `json:"ejections"`
	Rejoins         int64                  `json:"rejoins"`
	Rebalances      int64                  `json:"rebalances"`
	NoShard503s     int64                  `json:"no_shard_503s"`
	LiveShards      int                    `json:"live_shards"`
	VNodes          int                    `json:"vnodes"`
	ReplicaGroups   int                    `json:"replica_groups"`
	MembershipEpoch uint64                 `json:"membership_epoch,omitempty"`
	GossipJoins     int64                  `json:"gossip_joins,omitempty"`
	Membership      *serve.MembershipStats `json:"membership,omitempty"`
	Shards          []ShardCounters        `json:"shards"`
}

// Stats snapshots the router counters.
func (r *Router) Stats() RouterStats {
	m := r.ShardMap()
	st := RouterStats{
		UptimeSeconds: r.cfg.Now().Sub(r.started).Seconds(),
		Requests:      r.requests.Load(),
		Retries:       r.retries.Load(),
		Ejections:     r.ejections.Load(),
		Rejoins:       r.rejoins.Load(),
		Rebalances:    r.rebalances.Load(),
		NoShard503s:   r.noShard.Load(),
		LiveShards:    r.ring.Load().Len(),
		VNodes:        r.cfg.VNodes,
		ReplicaGroups: r.cfg.ReplicaGroups,
	}
	if r.membership != nil {
		st.MembershipEpoch = r.membershipEpoch.Load()
		st.GossipJoins = r.gossipJoins.Load()
		st.Membership = r.membership.MembershipStats()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, info := range m.Shards {
		ss := r.shards[info.ID]
		st.Shards = append(st.Shards, ShardCounters{
			ShardInfo: info,
			Proxied:   ss.proxied.Load(),
			Hits:      ss.hits.Load(),
			Degraded:  ss.degraded.Load(),
			NonOK:     ss.nonOK.Load(),
			IOErrors:  ss.ioErrors.Load(),
		})
	}
	return st
}

// NewHandler wires the router's HTTP front-end:
//
//	POST /v1/allocate — proxied to the signature's owning shard
//	POST /v1/feedback — proxied to the signature's owning shard
//	GET  /v1/stats    — RouterStats
//	GET  /v1/cluster  — ShardMap (the wire format)
//	GET  /healthz     — 200 while at least one shard is live
func NewHandler(r *Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/allocate", r.handleProxy)
	mux.HandleFunc("/v1/feedback", r.handleProxy)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Stats())
	})
	mux.HandleFunc("/v1/cluster", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.ShardMap())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if r.ring.Load().Len() == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no live shards"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if r.membership != nil {
		mux.HandleFunc(GossipPath, r.membership.Handler())
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// ListenAndServe runs the router front-end and its liveness prober until
// ctx is canceled. The bound address is reported through ready (useful
// with ":0").
func ListenAndServe(ctx context.Context, addr string, r *Router, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	if ready != nil {
		ready(ln.Addr())
	}
	return ServeRouter(ctx, ln, r)
}

// ServeRouter is ListenAndServe over a pre-bound listener — LocalCluster
// binds first so the router's gossip agent can advertise a concrete address
// before serving starts.
func ServeRouter(ctx context.Context, ln net.Listener, r *Router) error {
	probeCtx, stopProbe := context.WithCancel(ctx)
	defer stopProbe()
	go r.Run(probeCtx)
	if r.membership != nil {
		go r.membership.Run(probeCtx)
	}
	hs := &http.Server{
		Handler:           NewHandler(r),
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return context.Background() },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(shutdownCtx)
}
