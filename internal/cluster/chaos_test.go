package cluster

import (
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/netfault"
)

// TestClusterChaosKillHeal drives a seeded workload through a topology whose
// router→shard links all run through netfault stream proxies, crash-stopping
// and healing shards mid-sweep. The availability contract under test: a
// cluster with at least one live shard never answers a well-formed request
// with anything but 200 — failures eject and retry inside the router, and
// healed shards are re-admitted with their ranges handed back.
func TestClusterChaosKillHeal(t *testing.T) {
	proxies := map[string]*netfault.StreamProxy{}
	lc := startCluster(t, 3, func(id, addr string) (string, func(), error) {
		p, err := netfault.NewStream(addr, nil, nil)
		if err != nil {
			return "", nil, err
		}
		proxies[id] = p
		return p.Addr(), func() { p.Close() }, nil
	})

	// The fault schedule targets shards that actually own ranges, so every
	// blackhole window forces at least one in-band ejection.
	ring := lc.Router().Ring()
	var owners []string
	for _, id := range ring.Nodes() {
		if len(ring.OwnedClusters(id, clusterCount)) > 0 {
			owners = append(owners, id)
		}
	}
	if len(owners) < 2 {
		// 8 clusters over 3 shards: at least two shards own ranges for any
		// hash layout this seed-free topology can produce.
		t.Fatalf("only %d shards own ranges", len(owners))
	}
	victimA, victimB := owners[0], owners[1]

	heal := func(id string) {
		proxies[id].SetBlackhole(false)
		// One probe pass re-admits a healed shard (fresh-dial retry inside).
		lc.Router().ProbeOnce()
		if st := lc.Router().Stats(); st.LiveShards != 3 {
			t.Fatalf("heal of %s did not restore the fleet: %d live", id, st.LiveShards)
		}
	}

	rng := rand.New(rand.NewSource(7))
	const iters = 240
	non200 := 0
	for i := 0; i < iters; i++ {
		switch i {
		case 60:
			proxies[victimA].SetBlackhole(true)
		case 120:
			heal(victimA)
		case 150:
			proxies[victimB].SetBlackhole(true)
		case 210:
			heal(victimB)
		}
		// Interleave a seeded pick with a full sweep position so every
		// range sees traffic during every fault window.
		k := i % clusterCount
		if i%3 == 0 {
			k = rng.Intn(clusterCount)
		}
		code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(k))
		if code != http.StatusOK {
			non200++
			t.Errorf("iter %d cluster %d: %d %s", i, k, code, body)
		}
	}
	if non200 != 0 {
		t.Fatalf("%d/%d well-formed requests answered non-200 under chaos", non200, iters)
	}

	st := lc.Router().Stats()
	if st.Ejections < 2 || st.Rejoins < 2 {
		t.Fatalf("chaos produced ejections=%d rejoins=%d; want ≥2 each (two kill/heal cycles)", st.Ejections, st.Rejoins)
	}
	if st.LiveShards != 3 {
		t.Fatalf("fleet did not fully recover: %d live", st.LiveShards)
	}
	if st.NoShard503s != 0 {
		t.Fatalf("router issued %d no-shard 503s with survivors present", st.NoShard503s)
	}
	for _, sc := range st.Shards {
		if !sc.Alive {
			t.Fatalf("shard %s still marked dead after heals", sc.ID)
		}
	}
	// The proxies must actually have dropped connections during the windows —
	// otherwise the test faulted nothing.
	droppedTotal := int64(0)
	for _, p := range proxies {
		droppedTotal += p.Counts().Dropped
	}
	if droppedTotal == 0 {
		t.Fatal("no connection passed through a fault window; chaos schedule is dead code")
	}
}
