package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/serve"
)

// The cluster test world mirrors internal/serve's: the tight 6-task /
// 2-processor TATIM template where an allocator must drop two of six tasks,
// over clusterCount well-separated one-dimensional signatures so requests
// exercise every ring range.
const clusterCount = 8

func testTemplate() *core.Problem {
	p := &core.Problem{TimeLimit: 2}
	for j := 0; j < 6; j++ {
		p.Tasks = append(p.Tasks, core.TaskSpec{ID: j, TimeCost: 1, Resource: 0.5})
	}
	for i := 0; i < 2; i++ {
		p.Processors = append(p.Processors, core.Processor{ID: i, Capacity: 2, SpeedFactor: 1})
	}
	return p
}

func testStore(t testing.TB) *core.EnvironmentStore {
	t.Helper()
	store := core.NewEnvironmentStore()
	for k := 0; k < clusterCount; k++ {
		imp := make([]float64, 6)
		for j := range imp {
			imp[j] = 0.05
		}
		for j := 0; j < 3; j++ {
			imp[3*(k%2)+j] = 0.9
		}
		if err := store.Add(&core.Environment{
			Importance: imp,
			Capacity:   []float64{2, 2},
			Signature:  []float64{float64(k)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// fastServeConfig keeps per-cluster training to a few milliseconds.
func fastServeConfig() serve.Config {
	cfg := serve.DefaultConfig()
	cfg.ClusterNeighborhood = 1
	cfg.Logf = func(string, ...any) {}
	cfg.CRL = core.CRLConfig{
		K:        1,
		Episodes: 8,
		Seed:     11,
		DQN: rl.DQNConfig{
			Hidden:      []int{16},
			BatchSize:   8,
			WarmupSteps: 16,
			Epsilon:     rl.EpsilonSchedule{Start: 1, End: 0.1, DecaySteps: 60},
			Seed:        12,
		},
	}
	return cfg
}

// startCluster boots an n-shard topology with deterministic membership: the
// probe ticker is effectively disabled, so liveness changes come only from
// proxy I/O errors and explicit ProbeOnce calls.
func startCluster(t *testing.T, n int, wrap func(id, addr string) (string, func(), error)) *LocalCluster {
	t.Helper()
	lc, err := StartLocal(testTemplate(), testStore(t), nil, LocalOptions{
		Shards: n,
		Serve:  fastServeConfig(),
		Router: RouterConfig{
			ProbeEvery:   time.Hour,
			ProbeTimeout: 2 * time.Second,
		},
		WrapShardAddr: wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

// allocBody renders an allocate/feedback request for one cluster signature.
func allocBody(k int) []byte {
	return []byte(fmt.Sprintf(`{"signature":[%d]}`, k))
}

func post(t testing.TB, addr, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+addr+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s read: %v", path, err)
	}
	return resp.StatusCode, out
}

func get(t testing.TB, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, out
}

// TestClusterRoutingDeterminism drives one allocate per cluster signature
// through the router and checks the observed per-shard request counts match
// the ring's predicted ownership exactly, and that the served shard map
// round-trips into the same ring.
func TestClusterRoutingDeterminism(t *testing.T) {
	lc := startCluster(t, 3, nil)

	want := map[string]int64{}
	ring := lc.Router().Ring()
	for k := 0; k < clusterCount; k++ {
		want[ring.Owner(k)]++
	}

	const rounds = 3 // repeats must land on the same owners
	for round := 0; round < rounds; round++ {
		for k := 0; k < clusterCount; k++ {
			code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(k))
			if code != http.StatusOK {
				t.Fatalf("allocate cluster %d: %d %s", k, code, body)
			}
		}
	}

	st := lc.Router().Stats()
	if st.Requests != rounds*clusterCount {
		t.Fatalf("router counted %d requests, want %d", st.Requests, rounds*clusterCount)
	}
	for _, sc := range st.Shards {
		if got, wantN := sc.Proxied, rounds*want[sc.ID]; got != wantN {
			t.Errorf("shard %s proxied %d requests, ring predicts %d", sc.ID, got, wantN)
		}
		if sc.NonOK != 0 || sc.IOErrors != 0 {
			t.Errorf("shard %s: non-2xx=%d io-errors=%d on a healthy run", sc.ID, sc.NonOK, sc.IOErrors)
		}
	}

	// The wire-format shard map must validate and rebuild the routing ring.
	code, body := get(t, lc.Addr(), "/v1/cluster")
	if code != http.StatusOK {
		t.Fatalf("/v1/cluster: %d", code)
	}
	m, err := ParseShardMap(body)
	if err != nil {
		t.Fatalf("served shard map invalid: %v", err)
	}
	rebuilt, err := m.Ring()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < clusterCount; k++ {
		if rebuilt.Owner(k) != ring.Owner(k) {
			t.Fatalf("cluster %d: rebuilt ring resolves %q, router routes %q", k, rebuilt.Owner(k), ring.Owner(k))
		}
	}

	if code, _ := get(t, lc.Addr(), "/healthz"); code != http.StatusOK {
		t.Fatalf("router healthz: %d", code)
	}

	// Every shard's own stats endpoint must expose its cluster identity,
	// and the identities must partition the store.
	ownedTotal := 0
	for i := 0; i < lc.Shards(); i++ {
		code, body := get(t, lc.ShardAddr(i), "/v1/stats")
		if code != http.StatusOK {
			t.Fatalf("shard %d stats: %d", i, code)
		}
		var st struct {
			Cluster *struct {
				NodeID        string  `json:"node_id"`
				RingPositions int     `json:"ring_positions"`
				OwnedClusters []int   `json:"owned_clusters"`
				OwnedFraction float64 `json:"owned_fraction"`
			} `json:"cluster"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Cluster == nil {
			t.Fatalf("shard %d stats carry no cluster identity", i)
		}
		if st.Cluster.NodeID != lc.ShardID(i) {
			t.Fatalf("shard %d identifies as %q, want %q", i, st.Cluster.NodeID, lc.ShardID(i))
		}
		if st.Cluster.RingPositions < 1 {
			t.Fatalf("shard %d reports %d ring positions", i, st.Cluster.RingPositions)
		}
		for _, k := range st.Cluster.OwnedClusters {
			if ring.Owner(k) != lc.ShardID(i) {
				t.Fatalf("shard %d claims cluster %d; ring says %q", i, k, ring.Owner(k))
			}
		}
		ownedTotal += len(st.Cluster.OwnedClusters)
	}
	if ownedTotal != clusterCount {
		t.Fatalf("identities cover %d/%d clusters", ownedTotal, clusterCount)
	}
}

// TestClusterFailoverAndWarmRejoin is the availability core: kill a shard
// mid-service, show its ranges fail over with zero non-200s, then restart
// it and show it rejoins warm — pulling the failed-over policies back from
// the survivors instead of retraining.
func TestClusterFailoverAndWarmRejoin(t *testing.T) {
	lc := startCluster(t, 3, nil)

	// Warm every cluster once so each owner holds its ranges' policies.
	for k := 0; k < clusterCount; k++ {
		if code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(k)); code != http.StatusOK {
			t.Fatalf("warm cluster %d: %d %s", k, code, body)
		}
	}

	// Pick a victim that owns at least one cluster, and one cluster it owns.
	ring := lc.Router().Ring()
	victim, victimKey := -1, -1
	for i := 0; i < lc.Shards(); i++ {
		if owned := ring.OwnedClusters(lc.ShardID(i), clusterCount); len(owned) > 0 {
			victim, victimKey = i, owned[0]
			break
		}
	}
	if victim < 0 {
		t.Fatal("no shard owns any cluster")
	}

	if err := lc.KillShard(victim); err != nil {
		t.Fatal(err)
	}

	// Every cluster — including the victim's — must still answer 200. The
	// first request into a dead range costs an ejection + retry.
	for k := 0; k < clusterCount; k++ {
		if code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(k)); code != http.StatusOK {
			t.Fatalf("failover cluster %d: %d %s", k, code, body)
		}
	}
	st := lc.Router().Stats()
	if st.Ejections < 1 || st.Retries < 1 {
		t.Fatalf("kill produced ejections=%d retries=%d; want ≥1 each", st.Ejections, st.Retries)
	}
	if st.LiveShards != 2 {
		t.Fatalf("%d live shards after kill, want 2", st.LiveShards)
	}

	// Restart: the failed-over clusters were retrained by their interim
	// owners, so the rejoiner must pull at least one policy warm.
	pulled, err := lc.RestartShard(victim)
	if err != nil {
		t.Fatal(err)
	}
	if pulled < 1 {
		t.Fatalf("warm rejoin pulled %d policies, want ≥1", pulled)
	}
	lc.Router().ProbeOnce()
	st = lc.Router().Stats()
	if st.Rejoins < 1 || st.LiveShards != 3 {
		t.Fatalf("rejoin not observed: rejoins=%d live=%d", st.Rejoins, st.LiveShards)
	}

	// The victim's first routed request after rejoin must serve from the
	// pulled policy — checkpoint-restored entries answer as "warm" — with
	// no retraining on the rejoin path.
	trainingsBefore := lc.Server(victim).Stats().Cache.Trainings
	code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(victimKey))
	if code != http.StatusOK {
		t.Fatalf("post-rejoin allocate: %d %s", code, body)
	}
	var resp serve.AllocateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cache != serve.CacheWarm || resp.Mode != serve.ModeNormal {
		t.Fatalf("post-rejoin answer cache=%q mode=%q, want a warm restored hit", resp.Cache, resp.Mode)
	}
	if after := lc.Server(victim).Stats().Cache.Trainings; after != trainingsBefore {
		t.Fatalf("rejoined shard trained %d policies; the pull should have made that unnecessary", after-trainingsBefore)
	}
	// And the handoff shows up in its stats.
	if st := lc.Server(victim).Stats(); st.Cluster == nil || st.Cluster.HandoffPulls < 1 {
		t.Fatalf("rejoined shard reports no handoff pulls: %+v", st.Cluster)
	}
}

// TestClusterMalformedBodyPassthrough: requests the router cannot route by
// signature go round-robin and the shard owns the 4xx; bad requests must
// never eject anyone.
func TestClusterMalformedBodyPassthrough(t *testing.T) {
	lc := startCluster(t, 3, nil)

	for _, body := range [][]byte{
		[]byte(`{not json`),
		[]byte(`{}`),
		[]byte(`{"signature":[]}`),
	} {
		code, resp := post(t, lc.Addr(), "/v1/allocate", body)
		if code != http.StatusBadRequest {
			t.Fatalf("body %q: code %d (%s), want 400 from the shard", body, code, resp)
		}
	}
	st := lc.Router().Stats()
	if st.Ejections != 0 || st.LiveShards != 3 {
		t.Fatalf("malformed bodies moved membership: ejections=%d live=%d", st.Ejections, st.LiveShards)
	}

	// GET on a proxy endpoint is the router's own 405.
	if code, _ := get(t, lc.Addr(), "/v1/allocate"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/allocate: %d, want 405", code)
	}
}

// TestClusterAllShardsDown: with every shard dead the router degrades to
// clean 503s (the one allowed non-2xx) and its own healthz reports it.
func TestClusterAllShardsDown(t *testing.T) {
	lc := startCluster(t, 1, nil)

	if code, _ := post(t, lc.Addr(), "/v1/allocate", allocBody(0)); code != http.StatusOK {
		t.Fatalf("healthy allocate: %d", code)
	}
	if err := lc.KillShard(0); err != nil {
		t.Fatal(err)
	}
	code, body := post(t, lc.Addr(), "/v1/allocate", allocBody(0))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("allocate with no shards: %d %s, want 503", code, body)
	}
	if code, _ := get(t, lc.Addr(), "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("router healthz with no shards: %d, want 503", code)
	}
	st := lc.Router().Stats()
	if st.NoShard503s < 1 || st.LiveShards != 0 {
		t.Fatalf("no-shard accounting: 503s=%d live=%d", st.NoShard503s, st.LiveShards)
	}
}
