package edgesim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
)

func TestNodeTypes(t *testing.T) {
	if RaspberryPiAPlus.SecPerBit() != 4.75e-7 {
		t.Fatalf("A+ sec/bit = %v, want the paper's 4.75e-7", RaspberryPiAPlus.SecPerBit())
	}
	order := []NodeType{Laptop, RaspberryPiBPlus, RaspberryPiB, RaspberryPiAPlus}
	for i := 1; i < len(order); i++ {
		if order[i-1].SecPerBit() >= order[i].SecPerBit() {
			t.Fatalf("%v should be faster than %v", order[i-1], order[i])
		}
	}
	for _, n := range order {
		if n.MemoryMB() <= 0 || n.String() == "" {
			t.Fatalf("node type %v metadata broken", n)
		}
	}
	if NodeType(99).SecPerBit() <= 0 || NodeType(99).MemoryMB() <= 0 {
		t.Fatal("unknown type should have safe defaults")
	}
}

func TestNewCluster(t *testing.T) {
	if _, err := NewCluster(0); !errors.Is(err, ErrBadCluster) {
		t.Fatalf("zero workers err = %v", err)
	}
	c, err := NewCluster(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Workers) != 9 || c.Controller.Type != Laptop {
		t.Fatalf("cluster = %+v", c)
	}
	// The worker mix should include all three Pi models (Fig. 8).
	seen := map[NodeType]bool{}
	for _, w := range c.Workers {
		seen[w.Type] = true
	}
	if !seen[RaspberryPiAPlus] || !seen[RaspberryPiB] || !seen[RaspberryPiBPlus] {
		t.Fatalf("worker mix incomplete: %+v", seen)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *c
	bad.BandwidthBps = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadCluster) {
		t.Fatalf("zero bandwidth err = %v", err)
	}
}

func TestProblemFor(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	imp := []float64{0.9, 0.1, 0.5}
	bits := []float64{8e6, 8e6, 16e6}
	p, err := c.ProblemFor(imp, bits, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks) != 3 || len(p.Processors) != 4 {
		t.Fatalf("problem shape %d/%d", len(p.Tasks), len(p.Processors))
	}
	// t_j is nominal Pi-B time.
	want := 8e6 * RaspberryPiB.SecPerBit()
	if math.Abs(p.Tasks[0].TimeCost-want) > 1e-9 {
		t.Fatalf("TimeCost = %v, want %v", p.Tasks[0].TimeCost, want)
	}
	// Speed factors: faster nodes have bigger factors.
	for i, w := range c.Workers {
		wantF := RaspberryPiB.SecPerBit() / w.Type.SecPerBit()
		if math.Abs(p.Processors[i].SpeedFactor-wantF) > 1e-9 {
			t.Fatalf("speed factor %d = %v, want %v", i, p.Processors[i].SpeedFactor, wantF)
		}
	}
	if _, err := c.ProblemFor(imp, bits[:2], 100); !errors.Is(err, ErrBadSimInput) {
		t.Fatalf("length mismatch err = %v", err)
	}
}

// fixture builds a 6-task problem on a 3-worker cluster.
func fixture(t *testing.T) (*Cluster, *core.Problem) {
	t.Helper()
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	imp := []float64{0.9, 0.8, 0.05, 0.04, 0.03, 0.02}
	bits := []float64{8e6, 8e6, 8e6, 8e6, 8e6, 8e6}
	p, err := c.ProblemFor(imp, bits, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestSimulateBasics(t *testing.T) {
	c, p := fixture(t)
	// Assign everything round-robin, no priority.
	a := make(core.Allocation, len(p.Tasks))
	for j := range a {
		a[j] = j % 3
	}
	res := &alloc.Result{Allocation: a, DecisionOps: 1e6}
	sim, err := Simulate(c, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if sim.DecisionTime <= 0 || sim.ProcessingTime < sim.DecisionTime {
		t.Fatalf("times: %+v", sim)
	}
	if sim.Makespan < sim.ProcessingTime-1e-9 && sim.FallbackTasks == 0 {
		t.Fatalf("PT %v beyond makespan %v without fallback", sim.ProcessingTime, sim.Makespan)
	}
	if len(sim.Completions) != 6 {
		t.Fatalf("completions = %d", len(sim.Completions))
	}
	for i := 1; i < len(sim.Completions); i++ {
		if sim.Completions[i].FinishTime < sim.Completions[i-1].FinishTime {
			t.Fatal("completions not time-ordered")
		}
	}
}

func TestPriorityAcceleratesDecision(t *testing.T) {
	c, p := fixture(t)
	// All six tasks on worker 0: order decides when the two important
	// tasks (0, 1) finish.
	a := make(core.Allocation, len(p.Tasks))
	for j := range a {
		a[j] = 0
	}
	important := &alloc.Result{
		Allocation: a,
		Priority:   []float64{0.9, 0.8, 0.05, 0.04, 0.03, 0.02},
	}
	reversed := &alloc.Result{
		Allocation: a,
		Priority:   []float64{0.02, 0.03, 0.04, 0.05, 0.8, 0.9},
	}
	simGood, err := Simulate(c, p, important, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	simBad, err := Simulate(c, p, reversed, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !(simGood.ProcessingTime < simBad.ProcessingTime) {
		t.Fatalf("importance-first PT %v should beat reversed PT %v",
			simGood.ProcessingTime, simBad.ProcessingTime)
	}
}

func TestFasterNodesFinishSooner(t *testing.T) {
	c, p := fixture(t)
	// Put the heavy-importance task on the B+ (index 2) vs A+ (index 0).
	onFast := make(core.Allocation, len(p.Tasks))
	onSlow := make(core.Allocation, len(p.Tasks))
	for j := range onFast {
		onFast[j] = core.Unassigned
		onSlow[j] = core.Unassigned
	}
	onFast[0] = 2 // B+
	onSlow[0] = 0 // A+
	fast, err := Simulate(c, p, &alloc.Result{Allocation: onFast}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Simulate(c, p, &alloc.Result{Allocation: onSlow}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.ProcessingTime < slow.ProcessingTime) {
		t.Fatalf("B+ PT %v should beat A+ PT %v", fast.ProcessingTime, slow.ProcessingTime)
	}
}

func TestBandwidthScalesTransmission(t *testing.T) {
	c, p := fixture(t)
	a := make(core.Allocation, len(p.Tasks))
	for j := range a {
		a[j] = j % 3
	}
	res := &alloc.Result{Allocation: a}
	slow := *c
	slow.BandwidthBps = 5e6
	fast := *c
	fast.BandwidthBps = 500e6
	sSlow, err := Simulate(&slow, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	sFast, err := Simulate(&fast, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !(sFast.ProcessingTime < sSlow.ProcessingTime) {
		t.Fatalf("more bandwidth should reduce PT: %v vs %v",
			sFast.ProcessingTime, sSlow.ProcessingTime)
	}
}

func TestFallbackWhenCoverageUnreachable(t *testing.T) {
	c, p := fixture(t)
	// Assign only the unimportant tail; the controller must re-run the
	// important tasks.
	a := make(core.Allocation, len(p.Tasks))
	for j := range a {
		a[j] = core.Unassigned
	}
	a[2], a[3] = 0, 1
	sim, err := Simulate(c, p, &alloc.Result{Allocation: a}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if sim.FallbackTasks == 0 {
		t.Fatal("expected controller fallback")
	}
	if sim.CoveredImportance < 0.8*p.TotalImportance() {
		t.Fatalf("fallback did not reach target: %v", sim.CoveredImportance)
	}
	if sim.ProcessingTime <= sim.Makespan {
		t.Fatal("fallback must extend PT beyond makespan")
	}
}

func TestSimulateValidation(t *testing.T) {
	c, p := fixture(t)
	if _, err := Simulate(c, p, nil, 0.8); !errors.Is(err, ErrBadSimInput) {
		t.Fatalf("nil result err = %v", err)
	}
	short := &alloc.Result{Allocation: core.Allocation{0}}
	if _, err := Simulate(c, p, short, 0.8); !errors.Is(err, ErrBadSimInput) {
		t.Fatalf("short allocation err = %v", err)
	}
	badProc := make(core.Allocation, len(p.Tasks))
	for j := range badProc {
		badProc[j] = 99
	}
	if _, err := Simulate(c, p, &alloc.Result{Allocation: badProc}, 0.8); !errors.Is(err, ErrBadSimInput) {
		t.Fatalf("bad worker err = %v", err)
	}
	// Out-of-range coverage target defaults rather than failing.
	ok := make(core.Allocation, len(p.Tasks))
	for j := range ok {
		ok[j] = j % 3
	}
	if _, err := Simulate(c, p, &alloc.Result{Allocation: ok}, -1); err != nil {
		t.Fatalf("default coverage err = %v", err)
	}
}
