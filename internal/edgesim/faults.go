package edgesim

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/mathx"
)

// NodeFault is a crash-stop failure of one worker at a given instant.
// Edge deployments fail routinely ("due to the instability of the sensing
// devices, data loss also occurs frequently", §VII); the fault simulator
// measures how gracefully each allocation strategy degrades.
type NodeFault struct {
	// Node is the worker index (into Cluster.Workers).
	Node int
	// At is the failure time in seconds from experiment start.
	At float64
}

// SampleFaults draws crash-stop faults: each worker independently fails
// with probability failProb at a uniform time in [0, horizon).
func SampleFaults(seed int64, workers int, failProb, horizon float64) []NodeFault {
	rng := mathx.NewRand(seed)
	var out []NodeFault
	for w := 0; w < workers; w++ {
		if rng.Float64() < failProb {
			out = append(out, NodeFault{Node: w, At: rng.Float64() * horizon})
		}
	}
	return out
}

// SimulateWithFaults runs Simulate under crash-stop faults: a failed
// worker's unfinished tasks are lost; the controller detects the failure
// (at the fault instant) and re-dispatches the lost tasks to surviving
// workers in priority order, re-transmitting their inputs over the shared
// channel. If every worker fails, the controller runs the lost tasks
// itself.
func SimulateWithFaults(c *Cluster, p *core.Problem, res *alloc.Result, coverageTarget float64, faults []NodeFault) (*SimResult, error) {
	base, err := Simulate(c, p, res, coverageTarget)
	if err != nil {
		return nil, err
	}
	if len(faults) == 0 {
		return base, nil
	}
	failAt := make(map[int]float64, len(faults))
	for _, f := range faults {
		if f.Node < 0 || f.Node >= len(c.Workers) {
			return nil, fmt.Errorf("fault on worker %d of %d: %w", f.Node, len(c.Workers), ErrBadSimInput)
		}
		if f.At < 0 {
			return nil, fmt.Errorf("fault at %.3f s: %w", f.At, ErrBadSimInput)
		}
		if prev, ok := failAt[f.Node]; !ok || f.At < prev {
			failAt[f.Node] = f.At
		}
	}
	// Partition the base completions into survived and lost. Node IDs in
	// completions are 1-based worker IDs (Cluster numbering); worker index
	// is ID-1.
	var survived []TaskCompletion
	var lost []int
	var lastFault float64
	for _, comp := range base.Completions {
		widx := comp.Node - 1
		if at, ok := failAt[widx]; ok && comp.FinishTime > at {
			lost = append(lost, comp.Task)
			if at > lastFault {
				lastFault = at
			}
		} else {
			survived = append(survived, comp)
		}
	}
	if len(lost) == 0 {
		return base, nil
	}
	// Survivors and their availability after their own queues drain.
	type nodeState struct {
		idx  int
		free float64
	}
	var survivors []nodeState
	nodeFree := make(map[int]float64)
	for _, comp := range survived {
		widx := comp.Node - 1
		if comp.FinishTime > nodeFree[widx] {
			nodeFree[widx] = comp.FinishTime
		}
	}
	for widx := range c.Workers {
		if _, failed := failAt[widx]; failed {
			continue
		}
		survivors = append(survivors, nodeState{idx: widx, free: nodeFree[widx]})
	}
	// Re-dispatch lost tasks in priority order after failure detection.
	prio := func(j int) float64 {
		if res.Priority != nil && j < len(res.Priority) {
			return res.Priority[j]
		}
		return -float64(j)
	}
	sort.Slice(lost, func(a, b int) bool {
		pa, pb := prio(lost[a]), prio(lost[b])
		if pa != pb {
			return pa > pb
		}
		return lost[a] < lost[b]
	})
	out := &SimResult{
		DecisionTime: base.DecisionTime,
		Completions:  survived,
		Makespan:     0,
	}
	channelFree := lastFault // retransmissions start at failure detection
	if channelFree < base.DecisionTime {
		channelFree = base.DecisionTime
	}
	for _, j := range lost {
		t := p.Tasks[j]
		if len(survivors) == 0 {
			// Controller fallback: run locally, serially.
			end := channelFree + t.InputBits*c.Controller.Type.SecPerBit()
			channelFree = end
			out.Completions = append(out.Completions, TaskCompletion{
				Task: j, Node: c.Controller.ID, FinishTime: end, Importance: t.Importance,
			})
			out.FallbackTasks++
			continue
		}
		// Earliest-available survivor.
		best := 0
		for i := 1; i < len(survivors); i++ {
			if survivors[i].free < survivors[best].free {
				best = i
			}
		}
		txEnd := channelFree + t.InputBits/c.BandwidthBps
		channelFree = txEnd
		start := txEnd
		if survivors[best].free > start {
			start = survivors[best].free
		}
		node := c.Workers[survivors[best].idx]
		end := start + t.InputBits*node.Type.SecPerBit()
		survivors[best].free = end
		out.Completions = append(out.Completions, TaskCompletion{
			Task: j, Node: node.ID, FinishTime: end, Importance: t.Importance,
		})
	}
	sort.Slice(out.Completions, func(a, b int) bool {
		return out.Completions[a].FinishTime < out.Completions[b].FinishTime
	})
	for _, comp := range out.Completions {
		if comp.FinishTime > out.Makespan {
			out.Makespan = comp.FinishTime
		}
	}
	// Recompute the decision-ready instant over the surviving + re-run set.
	if coverageTarget <= 0 || coverageTarget > 1 {
		coverageTarget = 0.8
	}
	target := coverageTarget * p.TotalImportance()
	var covered float64
	pt := out.DecisionTime
	reached := target <= 0
	for _, comp := range out.Completions {
		covered += comp.Importance
		pt = comp.FinishTime
		if covered >= target {
			reached = true
			break
		}
	}
	if !reached {
		// Unassigned importance re-run by the controller, as in Simulate.
		pt = out.Makespan
		missing := make([]int, 0)
		for j, proc := range res.Allocation {
			if proc == core.Unassigned {
				missing = append(missing, j)
			}
		}
		sort.Slice(missing, func(a, b int) bool {
			return p.Tasks[missing[a]].Importance > p.Tasks[missing[b]].Importance
		})
		for _, j := range missing {
			t := p.Tasks[j]
			pt += t.InputBits * c.Controller.Type.SecPerBit()
			covered += t.Importance
			out.FallbackTasks++
			if covered >= target {
				break
			}
		}
	}
	out.ProcessingTime = pt
	out.CoveredImportance = covered
	return out, nil
}
