package edgesim

import (
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/mathx"
)

// randomScenario builds a random feasible simulation input from a seed.
func randomScenario(seed int64) (*Cluster, *core.Problem, *alloc.Result, error) {
	rng := mathx.NewRand(seed%4096 + 1)
	workers := 1 + rng.Intn(5)
	c, err := NewCluster(workers)
	if err != nil {
		return nil, nil, nil, err
	}
	c.BandwidthBps = 1e6 * (1 + rng.Float64()*100)
	n := 1 + rng.Intn(12)
	imp := make([]float64, n)
	bits := make([]float64, n)
	for j := 0; j < n; j++ {
		imp[j] = rng.Float64()
		bits[j] = 1e5 * (1 + rng.Float64()*20)
	}
	p, err := c.ProblemFor(imp, bits, 1e6)
	if err != nil {
		return nil, nil, nil, err
	}
	a := make(core.Allocation, n)
	prio := make([]float64, n)
	for j := range a {
		if rng.Float64() < 0.2 {
			a[j] = core.Unassigned
		} else {
			a[j] = rng.Intn(workers)
		}
		prio[j] = rng.Float64()
	}
	res := &alloc.Result{Allocation: a, Priority: prio, DecisionOps: rng.Float64() * 1e6}
	return c, p, res, nil
}

// Property: simulation invariants hold for random feasible inputs —
// PT ≥ decision time, completions == assigned count, makespan ≥ every
// completion instant, covered importance reaches the target one way or
// another.
func TestSimulateInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		c, p, res, err := randomScenario(seed)
		if err != nil {
			return false
		}
		sim, err := Simulate(c, p, res, 0.8)
		if err != nil {
			return false
		}
		if sim.ProcessingTime < sim.DecisionTime-1e-9 {
			return false
		}
		assigned := 0
		for _, a := range res.Allocation {
			if a != core.Unassigned {
				assigned++
			}
		}
		if len(sim.Completions) != assigned {
			return false
		}
		for _, comp := range sim.Completions {
			if comp.FinishTime > sim.Makespan+1e-9 {
				return false
			}
		}
		return sim.CoveredImportance >= 0.8*p.TotalImportance()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: a higher coverage target never makes the decision ready sooner.
func TestCoverageMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		c, p, res, err := randomScenario(seed)
		if err != nil {
			return false
		}
		lo, err := Simulate(c, p, res, 0.5)
		if err != nil {
			return false
		}
		hi, err := Simulate(c, p, res, 0.95)
		if err != nil {
			return false
		}
		return hi.ProcessingTime >= lo.ProcessingTime-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: under a crash-stop fault, no work is lost — every assigned task
// still completes (off the dead node), coverage is still reached, and PT
// stays ≥ the decision time. Note that a fault CAN reduce PT relative to
// the fault-free run: re-dispatch places tasks earliest-available, which
// may beat a poor original placement (observed for RM in the robustness
// sweep), so "faults never help" is deliberately NOT asserted.
func TestFaultRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		c, p, res, err := randomScenario(seed)
		if err != nil {
			return false
		}
		if len(c.Workers) < 2 {
			return true // need a survivor
		}
		base, err := Simulate(c, p, res, 0.8)
		if err != nil {
			return false
		}
		faulted, err := SimulateWithFaults(c, p, res, 0.8, []NodeFault{{Node: 0, At: 0}})
		if err != nil {
			return false
		}
		if len(faulted.Completions) != len(base.Completions) {
			return false
		}
		for _, comp := range faulted.Completions {
			if comp.Node == c.Workers[0].ID {
				return false // completed on the dead node
			}
		}
		if faulted.ProcessingTime < faulted.DecisionTime-1e-9 {
			return false
		}
		return faulted.CoveredImportance >= 0.8*p.TotalImportance()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
