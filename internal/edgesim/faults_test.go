package edgesim

import (
	"errors"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
)

func TestSampleFaults(t *testing.T) {
	// p=0 → no faults; p=1 → all workers fail within the horizon.
	if got := SampleFaults(1, 5, 0, 100); len(got) != 0 {
		t.Fatalf("p=0 faults = %v", got)
	}
	all := SampleFaults(1, 5, 1, 100)
	if len(all) != 5 {
		t.Fatalf("p=1 faults = %d, want 5", len(all))
	}
	for _, f := range all {
		if f.At < 0 || f.At >= 100 {
			t.Fatalf("fault time %v outside horizon", f.At)
		}
	}
	// Deterministic per seed.
	again := SampleFaults(1, 5, 1, 100)
	for i := range all {
		if all[i] != again[i] {
			t.Fatal("same seed must give same faults")
		}
	}
}

func faultFixture(t *testing.T) (*Cluster, *core.Problem, *alloc.Result) {
	t.Helper()
	c, p := fixture(t)
	a := make(core.Allocation, len(p.Tasks))
	for j := range a {
		a[j] = j % 3
	}
	prio := make([]float64, len(p.Tasks))
	for j := range prio {
		prio[j] = p.Tasks[j].Importance
	}
	return c, p, &alloc.Result{Allocation: a, Priority: prio}
}

func TestSimulateWithFaultsNoFaultsIsIdentity(t *testing.T) {
	c, p, res := faultFixture(t)
	base, err := Simulate(c, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := SimulateWithFaults(c, p, res, 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.ProcessingTime != base.ProcessingTime {
		t.Fatalf("no-fault PT %v != base %v", faulted.ProcessingTime, base.ProcessingTime)
	}
}

func TestSimulateWithFaultsDelaysButRecovers(t *testing.T) {
	c, p, res := faultFixture(t)
	base, err := Simulate(c, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Kill worker 0 immediately: everything it held re-runs elsewhere.
	faulted, err := SimulateWithFaults(c, p, res, 0.8, []NodeFault{{Node: 0, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if faulted.ProcessingTime < base.ProcessingTime {
		t.Fatalf("fault should not speed things up: %v vs %v",
			faulted.ProcessingTime, base.ProcessingTime)
	}
	// All tasks still complete (on survivors), coverage reached.
	if len(faulted.Completions) != len(base.Completions) {
		t.Fatalf("lost tasks not re-run: %d vs %d completions",
			len(faulted.Completions), len(base.Completions))
	}
	if faulted.CoveredImportance < 0.8*p.TotalImportance() {
		t.Fatalf("coverage not reached after recovery: %v", faulted.CoveredImportance)
	}
	for _, comp := range faulted.Completions {
		if comp.Node == 1 { // worker index 0 has node ID 1
			t.Fatalf("task %d completed on the dead worker", comp.Task)
		}
	}
}

func TestSimulateWithFaultsLateFaultIsFree(t *testing.T) {
	c, p, res := faultFixture(t)
	base, err := Simulate(c, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// A fault after the makespan loses nothing.
	faulted, err := SimulateWithFaults(c, p, res, 0.8, []NodeFault{
		{Node: 0, At: base.Makespan + 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if faulted.ProcessingTime != base.ProcessingTime {
		t.Fatalf("late fault changed PT: %v vs %v", faulted.ProcessingTime, base.ProcessingTime)
	}
}

func TestSimulateWithFaultsAllNodesDead(t *testing.T) {
	c, p, res := faultFixture(t)
	faults := []NodeFault{{Node: 0, At: 0}, {Node: 1, At: 0}, {Node: 2, At: 0}}
	faulted, err := SimulateWithFaults(c, p, res, 0.8, faults)
	if err != nil {
		t.Fatal(err)
	}
	// Controller fallback ran everything.
	if faulted.FallbackTasks == 0 {
		t.Fatal("expected controller fallback")
	}
	if faulted.CoveredImportance < 0.8*p.TotalImportance() {
		t.Fatalf("coverage not reached: %v", faulted.CoveredImportance)
	}
	for _, comp := range faulted.Completions {
		if comp.Node != c.Controller.ID {
			t.Fatalf("task %d ran on worker %d after total failure", comp.Task, comp.Node)
		}
	}
}

func TestSimulateWithFaultsValidation(t *testing.T) {
	c, p, res := faultFixture(t)
	if _, err := SimulateWithFaults(c, p, res, 0.8, []NodeFault{{Node: 99, At: 0}}); !errors.Is(err, ErrBadSimInput) {
		t.Fatalf("bad node err = %v", err)
	}
	if _, err := SimulateWithFaults(c, p, res, 0.8, []NodeFault{{Node: 0, At: -1}}); !errors.Is(err, ErrBadSimInput) {
		t.Fatalf("negative time err = %v", err)
	}
}
