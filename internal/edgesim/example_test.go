package edgesim_test

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/edgesim"
)

// ExampleSimulate measures the processing time of a two-task plan on a
// two-Pi cluster: the important task goes first, so the decision is ready
// before the tail task finishes.
func ExampleSimulate() {
	cluster, err := edgesim.NewCluster(2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	problem, err := cluster.ProblemFor(
		[]float64{0.9, 0.1}, // importance
		[]float64{8e6, 8e6}, // input bits
		600,                 // time limit T
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	plan := &alloc.Result{
		Allocation: core.Allocation{0, 0},
		Priority:   []float64{0.9, 0.1},
	}
	sim, err := edgesim.Simulate(cluster, problem, plan, 0.8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("decision ready before makespan: %v\n", sim.ProcessingTime < sim.Makespan)
	fmt.Printf("completions: %d\n", len(sim.Completions))
	// Output:
	// decision ready before makespan: true
	// completions: 2
}
