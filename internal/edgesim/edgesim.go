// Package edgesim simulates the paper's testbed (§V-B, Fig. 8): nine
// Raspberry Pis (models A+, B, B+) and one laptop controller interconnected
// over WiFi in a star topology. It converts an allocator's decision into the
// paper's Processing Time (PT) metric — the time from experiment start until
// the industry decision can be made.
//
// The per-bit computation times follow the paper's setting from [33]
// (Raspberry Pi A+ computes at 4.75e-7 s/bit), with the other node types
// scaled by their relative hardware capability.
package edgesim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/core"
)

// Common errors.
var (
	// ErrBadCluster is returned for malformed cluster specs.
	ErrBadCluster = errors.New("edgesim: invalid cluster")
	// ErrBadSimInput is returned for inconsistent simulation inputs.
	ErrBadSimInput = errors.New("edgesim: invalid simulation input")
)

// NodeType identifies the hardware class of an edge node.
type NodeType int

// The testbed's hardware classes.
const (
	RaspberryPiAPlus NodeType = iota + 1
	RaspberryPiB
	RaspberryPiBPlus
	Laptop
)

// String names the node type.
func (n NodeType) String() string {
	switch n {
	case RaspberryPiAPlus:
		return "RPi-A+"
	case RaspberryPiB:
		return "RPi-B"
	case RaspberryPiBPlus:
		return "RPi-B+"
	case Laptop:
		return "laptop"
	default:
		return fmt.Sprintf("NodeType(%d)", int(n))
	}
}

// SecPerBit returns the node's computation time per input bit.
// The A+ figure is the paper's; B and B+ are faster in proportion to their
// CPU/memory uplift, and the laptop is ~20× faster than a Pi.
func (n NodeType) SecPerBit() float64 {
	switch n {
	case RaspberryPiAPlus:
		return 4.75e-7
	case RaspberryPiB:
		return 3.60e-7
	case RaspberryPiBPlus:
		return 2.40e-7
	case Laptop:
		return 2.0e-8
	default:
		return 4.75e-7
	}
}

// MemoryMB returns the node's memory resource capacity (the V_p of Eq. 4).
func (n NodeType) MemoryMB() float64 {
	switch n {
	case RaspberryPiAPlus:
		return 256
	case RaspberryPiB:
		return 512
	case RaspberryPiBPlus:
		return 512
	case Laptop:
		return 8192
	default:
		return 256
	}
}

// Node is one machine in the cluster.
type Node struct {
	ID   int
	Type NodeType
}

// Cluster is the star-topology testbed: workers execute tasks; the
// controller runs allocation decisions and the fallback path.
type Cluster struct {
	Controller Node
	Workers    []Node
	// BandwidthBps is each WiFi link's bandwidth in bits/second.
	BandwidthBps float64
	// ControllerOpsPerSec converts an allocator's DecisionOps into time.
	ControllerOpsPerSec float64
}

// DefaultBandwidthBps is the default WiFi link rate (50 Mbit/s).
const DefaultBandwidthBps = 50e6

// NewCluster builds the paper's topology with `workers` Raspberry Pis
// (cycling A+, B, B+ as in Fig. 8) and a laptop controller.
func NewCluster(workers int) (*Cluster, error) {
	if workers < 1 {
		return nil, fmt.Errorf("%d workers: %w", workers, ErrBadCluster)
	}
	cycle := []NodeType{RaspberryPiAPlus, RaspberryPiB, RaspberryPiBPlus}
	c := &Cluster{
		Controller:          Node{ID: 0, Type: Laptop},
		BandwidthBps:        DefaultBandwidthBps,
		ControllerOpsPerSec: 1e9,
	}
	for i := 0; i < workers; i++ {
		c.Workers = append(c.Workers, Node{ID: i + 1, Type: cycle[i%len(cycle)]})
	}
	return c, nil
}

// Validate checks the cluster spec.
func (c *Cluster) Validate() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("no workers: %w", ErrBadCluster)
	}
	if c.BandwidthBps <= 0 {
		return fmt.Errorf("bandwidth %.0f: %w", c.BandwidthBps, ErrBadCluster)
	}
	if c.ControllerOpsPerSec <= 0 {
		return fmt.Errorf("controller speed %.0f: %w", c.ControllerOpsPerSec, ErrBadCluster)
	}
	return nil
}

// ProblemFor converts a workload (per-task importance and input bits) and
// the cluster into a TATIM problem: t_j is the nominal execution time on a
// Raspberry Pi B, V_p is node memory, and T is the time limit.
func (c *Cluster) ProblemFor(importance, inputBits []float64, timeLimit float64) (*core.Problem, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(importance) != len(inputBits) {
		return nil, fmt.Errorf("%d importances vs %d sizes: %w",
			len(importance), len(inputBits), ErrBadSimInput)
	}
	ref := RaspberryPiB.SecPerBit()
	p := &core.Problem{TimeLimit: timeLimit}
	for j := range importance {
		p.Tasks = append(p.Tasks, core.TaskSpec{
			ID:         j,
			Importance: importance[j],
			TimeCost:   inputBits[j] * ref,
			Resource:   inputBits[j] / 8 / 1e6 * 4, // working set ≈ 4× input MB
			InputBits:  inputBits[j],
		})
	}
	for i, w := range c.Workers {
		p.Processors = append(p.Processors, core.Processor{
			ID:          i,
			Capacity:    w.Type.MemoryMB(),
			SpeedFactor: ref / w.Type.SecPerBit(),
		})
	}
	return p, nil
}

// TaskCompletion records when one task's output became available.
type TaskCompletion struct {
	Task       int
	Node       int
	FinishTime float64
	Importance float64
}

// SimResult is the outcome of simulating one allocation.
type SimResult struct {
	// ProcessingTime is the paper's PT: decision compute + the earliest
	// instant at which enough important task outputs are in to make the
	// industry decision (plus fallback work when the allocation cannot
	// cover the target).
	ProcessingTime float64
	// DecisionTime is the allocator's own computation time.
	DecisionTime float64
	// Makespan is when the last assigned task finished.
	Makespan float64
	// CoveredImportance is the importance executed by ProcessingTime.
	CoveredImportance float64
	// FallbackTasks counts tasks the controller had to re-run to reach the
	// coverage target.
	FallbackTasks int
	// Completions lists per-task finish events, time-ordered.
	Completions []TaskCompletion
}

// Simulate executes an allocation on the cluster and measures PT.
//
// Model: the controller first computes the allocation (DecisionOps), then
// streams each node's tasks over its dedicated WiFi link in the allocator's
// priority order; a node computes a task once received, pipelining transfer
// and computation. The industry decision is ready when the completed tasks'
// cumulative true importance reaches coverageTarget × total importance. If
// the allocation cannot reach the target, the controller re-runs the
// missing highest-importance tasks locally (fallback), extending PT.
func Simulate(c *Cluster, p *core.Problem, res *alloc.Result, coverageTarget float64) (*SimResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("edgesim: %w", err)
	}
	if res == nil || len(res.Allocation) != len(p.Tasks) {
		return nil, fmt.Errorf("allocation/task mismatch: %w", ErrBadSimInput)
	}
	if len(p.Processors) > len(c.Workers) {
		return nil, fmt.Errorf("%d processors for %d workers: %w",
			len(p.Processors), len(c.Workers), ErrBadSimInput)
	}
	if coverageTarget <= 0 || coverageTarget > 1 {
		coverageTarget = 0.8
	}
	out := &SimResult{DecisionTime: res.DecisionOps / c.ControllerOpsPerSec}
	// Build per-node queues in priority order.
	queues := make([][]int, len(c.Workers))
	for j, proc := range res.Allocation {
		if proc == core.Unassigned {
			continue
		}
		if proc < 0 || proc >= len(c.Workers) {
			return nil, fmt.Errorf("task %d on worker %d: %w", j, proc, ErrBadSimInput)
		}
		queues[proc] = append(queues[proc], j)
	}
	prio := func(j int) float64 {
		if res.Priority != nil && j < len(res.Priority) {
			return res.Priority[j]
		}
		return -float64(j) // index order
	}
	for _, q := range queues {
		sort.Slice(q, func(a, b int) bool {
			pa, pb := prio(q[a]), prio(q[b])
			if pa != pb {
				return pa > pb
			}
			return q[a] < q[b]
		})
	}
	// Event simulation. The WiFi star shares ONE medium: the controller's
	// transmissions to all workers serialize on the channel ("transmission
	// time is also the main component of processing time", §V-D), so every
	// extra task an allocator ships delays everything behind it. The
	// controller interleaves node queues by priority; each node computes a
	// task once received.
	type pending struct {
		task, proc int
	}
	var sendOrder []pending
	for proc, q := range queues {
		for _, j := range q {
			sendOrder = append(sendOrder, pending{task: j, proc: proc})
		}
	}
	sort.Slice(sendOrder, func(a, b int) bool {
		pa, pb := prio(sendOrder[a].task), prio(sendOrder[b].task)
		if pa != pb {
			return pa > pb
		}
		return sendOrder[a].task < sendOrder[b].task
	})
	channelFree := out.DecisionTime
	nodeFree := make([]float64, len(c.Workers))
	for i := range nodeFree {
		nodeFree[i] = out.DecisionTime
	}
	for _, s := range sendOrder {
		t := p.Tasks[s.task]
		node := c.Workers[s.proc]
		txEnd := channelFree + t.InputBits/c.BandwidthBps
		channelFree = txEnd
		start := txEnd
		if nodeFree[s.proc] > start {
			start = nodeFree[s.proc]
		}
		end := start + t.InputBits*node.Type.SecPerBit()
		nodeFree[s.proc] = end
		out.Completions = append(out.Completions, TaskCompletion{
			Task: s.task, Node: node.ID, FinishTime: end, Importance: t.Importance,
		})
		if end > out.Makespan {
			out.Makespan = end
		}
	}
	sort.Slice(out.Completions, func(a, b int) bool {
		return out.Completions[a].FinishTime < out.Completions[b].FinishTime
	})
	// Find the decision-ready instant.
	target := coverageTarget * p.TotalImportance()
	var covered float64
	pt := out.DecisionTime
	reached := target <= 0
	for _, comp := range out.Completions {
		covered += comp.Importance
		pt = comp.FinishTime
		if covered >= target {
			reached = true
			break
		}
	}
	if !reached {
		// Fallback: the controller re-runs the most important unexecuted
		// tasks serially until the target is met.
		pt = out.Makespan
		if pt < out.DecisionTime {
			pt = out.DecisionTime
		}
		missing := make([]int, 0)
		for j, proc := range res.Allocation {
			if proc == core.Unassigned {
				missing = append(missing, j)
			}
		}
		sort.Slice(missing, func(a, b int) bool {
			return p.Tasks[missing[a]].Importance > p.Tasks[missing[b]].Importance
		})
		for _, j := range missing {
			t := p.Tasks[j]
			pt += t.InputBits * c.Controller.Type.SecPerBit()
			covered += t.Importance
			out.FallbackTasks++
			if covered >= target {
				break
			}
		}
	}
	out.ProcessingTime = pt
	out.CoveredImportance = covered
	return out, nil
}
