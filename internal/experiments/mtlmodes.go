package experiments

import (
	"fmt"
	"time"

	"repro/internal/building"
	"repro/internal/mtl"
)

// MTLModeRow evaluates one (mode, learner) combination of the §V-B task
// kinds: how many of the 50 tasks become fittable and how good the overall
// decisions are.
type MTLModeRow struct {
	Mode    mtl.Mode
	Learner mtl.Learner
	// FittedTasks counts tasks with a usable model.
	FittedTasks int
	// MeanH is the mean overall decision performance across eval epochs.
	MeanH float64
	// FitSeconds is the wall-clock training cost.
	FitSeconds float64
}

// MTLModeComparison trains the task set under each MTL mode (and the ridge
// vs forest base learners) and scores the resulting decision performance —
// the §V-B "independent / self-adapted / clustered" setup as an experiment.
// Training uses a scarce data fraction so the transfer modes have something
// to transfer against.
func MTLModeComparison(s *Scenario) ([]MTLModeRow, error) {
	combos := []struct {
		mode    mtl.Mode
		learner mtl.Learner
	}{
		{mtl.ModeIndependent, mtl.LearnerRidge},
		{mtl.ModeSelfAdapted, mtl.LearnerRidge},
		{mtl.ModeClustered, mtl.LearnerRidge},
		{mtl.ModeSelfAdapted, mtl.LearnerForest},
		{mtl.ModeSelfAdapted, mtl.LearnerKNN},
	}
	seq := building.NewSequencer()
	rows := make([]MTLModeRow, 0, len(combos))
	for _, combo := range combos {
		cfg := mtl.DefaultEngineConfig()
		cfg.MaxTasks = s.Config.Tasks
		cfg.Seed = s.Config.Seed
		cfg.Mode = combo.mode
		cfg.Learner = combo.learner
		// Scarcity pressure: a tenth of each task's data.
		cfg.TrainFraction = 0.1
		engine, err := mtl.NewEngine(s.Trace, cfg)
		if err != nil {
			return nil, fmt.Errorf("mode %v: %w", combo.mode, err)
		}
		start := time.Now()
		if err := engine.Fit(); err != nil {
			return nil, fmt.Errorf("mode %v fit: %w", combo.mode, err)
		}
		row := MTLModeRow{
			Mode:       combo.mode,
			Learner:    combo.learner,
			FitSeconds: time.Since(start).Seconds(),
		}
		for _, task := range engine.Tasks() {
			if engine.HasModel(task.ID) {
				row.FittedTasks++
			}
		}
		var hSum float64
		for _, ep := range s.Eval {
			h, err := engine.OverallPerformance(seq, ep.Plant)
			if err != nil {
				return nil, fmt.Errorf("mode %v perf: %w", combo.mode, err)
			}
			hSum += h
		}
		row.MeanH = hSum / float64(len(s.Eval))
		rows = append(rows, row)
	}
	return rows, nil
}
