package experiments

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/mtl"
)

func mtlLearnerRidge() mtl.Learner { return mtl.LearnerRidge }

// fastConfig is a scaled-down scenario for unit tests.
func fastConfig(seed int64) ScenarioConfig {
	cfg := DefaultScenarioConfig(seed)
	cfg.Years = 1
	cfg.Tasks = 24
	cfg.HistoryContexts = 20
	cfg.EvalContexts = 4
	cfg.Workers = 5
	cfg.CRLEpisodes = 10
	return cfg
}

var (
	sharedOnce sync.Once
	sharedScn  *Scenario
	sharedErr  error
)

// sharedScenario builds one fast scenario reused across tests (a scenario
// build costs ~1s; tests only need read access).
func sharedScenario(t *testing.T) *Scenario {
	t.Helper()
	sharedOnce.Do(func() {
		sharedScn, sharedErr = NewScenario(fastConfig(1))
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedScn
}

func TestNewScenarioValidation(t *testing.T) {
	bad := fastConfig(1)
	bad.Years = 0
	if _, err := NewScenario(bad); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("years=0 err = %v", err)
	}
	bad = fastConfig(1)
	bad.HistoryContexts = 1
	if _, err := NewScenario(bad); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("history=1 err = %v", err)
	}
}

func TestScenarioShape(t *testing.T) {
	s := sharedScenario(t)
	if got := len(s.Engine.Tasks()); got != 24 {
		t.Fatalf("tasks = %d", got)
	}
	if len(s.History) != 20 || len(s.Eval) != 4 {
		t.Fatalf("epochs = %d/%d", len(s.History), len(s.Eval))
	}
	if len(s.InputBits) != 24 {
		t.Fatalf("input bits = %d", len(s.InputBits))
	}
	// Input sizes average to the configured mean.
	mean := mathx.Mean(s.InputBits)
	want := s.Config.AvgInputMbits * 1e6
	if mean < 0.9*want || mean > 1.1*want {
		t.Fatalf("mean input bits %v, want ≈%v", mean, want)
	}
	if s.Store.Len() != 20 {
		t.Fatalf("store = %d", s.Store.Len())
	}
	if !s.CRL.Trained() || !s.Local.Fitted() {
		t.Fatal("models not trained")
	}
	if len(s.Template.Processors) != 5 {
		t.Fatalf("template processors = %d", len(s.Template.Processors))
	}
}

func TestAllocatorsProduceFeasiblePlans(t *testing.T) {
	s := sharedScenario(t)
	allocators, err := s.Allocators()
	if err != nil {
		t.Fatal(err)
	}
	if len(allocators) != 4 {
		t.Fatalf("allocators = %d", len(allocators))
	}
	req, err := s.RequestFor(s.Eval[0])
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range allocators {
		res, err := a.Allocate(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		repairAllocation(req.Problem, res)
		if err := req.Problem.CheckFeasible(res.Allocation); err != nil {
			t.Fatalf("%s infeasible: %v", name, err)
		}
	}
}

func TestFig2LongTail(t *testing.T) {
	s := sharedScenario(t)
	r, err := Fig2LongTail(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SortedImportance) != 24 || len(r.CumulativeShare) != 24 {
		t.Fatalf("lengths %d/%d", len(r.SortedImportance), len(r.CumulativeShare))
	}
	// Sorted descending; cumulative non-decreasing and ending at ≈1.
	for i := 1; i < len(r.SortedImportance); i++ {
		if r.SortedImportance[i] > r.SortedImportance[i-1] {
			t.Fatal("importance not sorted")
		}
		if r.CumulativeShare[i] < r.CumulativeShare[i-1]-1e-12 {
			t.Fatal("cumulative share decreasing")
		}
	}
	last := r.CumulativeShare[len(r.CumulativeShare)-1]
	if last < 0.999 || last > 1.001 {
		t.Fatalf("cumulative share ends at %v", last)
	}
	// Observation 1: long tail.
	if r.Stats.TopFractionFor80 > 0.5 {
		t.Fatalf("top fraction for 80%% = %v, expected long tail", r.Stats.TopFractionFor80)
	}
}

func TestFig3AccurateVsRandom(t *testing.T) {
	s := sharedScenario(t)
	r, err := Fig3AccurateVsRandom(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerEpoch) != len(s.Eval) {
		t.Fatalf("epochs = %d", len(r.PerEpoch))
	}
	for _, ep := range r.PerEpoch {
		if ep.Accurate < 0 || ep.Accurate > 1 || ep.Random < 0 || ep.Random > 1 {
			t.Fatalf("H outside [0,1]: %+v", ep)
		}
	}
	// Observation 2: accurate allocation should not lose to random.
	if r.MeanAccurate < r.MeanRandom-1e-9 {
		t.Fatalf("accurate %v < random %v", r.MeanAccurate, r.MeanRandom)
	}
}

func TestFig45ImportanceByOperation(t *testing.T) {
	s := sharedScenario(t)
	rows, err := Fig45ImportanceByOperation(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 {
		t.Fatalf("rows = %d", len(rows))
	}
	anyVariance := false
	for _, r := range rows {
		if r.MeanImportance < 0 || r.StdImportance < 0 {
			t.Fatalf("negative stats: %+v", r)
		}
		if r.Machine == "" || r.Operation == "" {
			t.Fatalf("unlabeled row: %+v", r)
		}
		if r.StdImportance > 0 {
			anyVariance = true
		}
	}
	// Observation 3: importance fluctuates across operations.
	if !anyVariance {
		t.Fatal("no task shows importance variation")
	}
}

func TestEnvMismatchPenalties(t *testing.T) {
	s := sharedScenario(t)
	r, err := EnvMismatchPenalties(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.AccurateObjective <= 0 {
		t.Fatalf("accurate objective = %v", r.AccurateObjective)
	}
	// The stale environment must hurt more than the defined one, and both
	// must not beat the accurate reference.
	if r.StaleObjective > r.AccurateObjective+1e-9 {
		t.Fatalf("stale %v beats accurate %v", r.StaleObjective, r.AccurateObjective)
	}
	if r.DefinedObjective > r.AccurateObjective+1e-9 {
		t.Fatalf("defined %v beats accurate %v", r.DefinedObjective, r.AccurateObjective)
	}
	if r.CRLPenaltyPct > r.RLPenaltyPct+1e-9 {
		t.Fatalf("clustering penalty %v%% should not exceed stale penalty %v%%",
			r.CRLPenaltyPct, r.RLPenaltyPct)
	}
}

func TestTableIFeatures(t *testing.T) {
	s := sharedScenario(t)
	rows, err := TableIFeatures(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Feature == "" {
			t.Fatal("unnamed feature")
		}
	}
}

func TestLocalModelComparison(t *testing.T) {
	s := sharedScenario(t)
	rows, err := LocalModelComparison(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TrainAcc < 0.5 || r.TrainAcc > 1 {
			t.Fatalf("%s train acc = %v", r.Model, r.TrainAcc)
		}
		if r.TestAcc < 0.4 || r.TestAcc > 1 {
			t.Fatalf("%s test acc = %v", r.Model, r.TestAcc)
		}
	}
}

func TestFig10And11Sweeps(t *testing.T) {
	s := sharedScenario(t)
	f10, err := Fig10DataSizeSweep(s, []float64{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Points) != 2 {
		t.Fatalf("fig10 points = %d", len(f10.Points))
	}
	// More data → more PT for every method.
	for _, name := range MethodOrder {
		if f10.Points[1].MeanPT[name] <= f10.Points[0].MeanPT[name] {
			t.Fatalf("%s PT should grow with data size: %v vs %v",
				name, f10.Points[0].MeanPT[name], f10.Points[1].MeanPT[name])
		}
	}
	f11, err := Fig11BandwidthSweep(s, []float64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	// More bandwidth → less PT (or equal when compute-bound).
	for _, name := range MethodOrder {
		if f11.Points[1].MeanPT[name] > f11.Points[0].MeanPT[name]+1e-9 {
			t.Fatalf("%s PT should not grow with bandwidth: %v vs %v",
				name, f11.Points[0].MeanPT[name], f11.Points[1].MeanPT[name])
		}
	}
	if len(f11.SpeedupVs) == 0 {
		t.Fatal("missing speedup summary")
	}
}

func TestFig9WithWorkers(t *testing.T) {
	s := sharedScenario(t)
	f9, err := Fig9ProcessorSweep(s, []int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Points) != 2 {
		t.Fatalf("fig9 points = %d", len(f9.Points))
	}
	for _, pt := range f9.Points {
		for _, name := range MethodOrder {
			if pt.MeanPT[name] <= 0 {
				t.Fatalf("%s PT = %v at %v workers", name, pt.MeanPT[name], pt.X)
			}
		}
	}
	// DCTA beats the importance-blind baselines at every point; against CRL
	// we only require rough parity here — the tiny test scenario (24 tasks,
	// 10 CRL episodes, 4 eval epochs) is too noisy to assert the full
	// paper-scale gap, which the default-scale benchmark measures.
	for _, pt := range f9.Points {
		for _, base := range []string{"RM", "DML"} {
			if pt.MeanPT["DCTA"] > pt.MeanPT[base] {
				t.Fatalf("DCTA PT %v loses to %s %v at %v workers",
					pt.MeanPT["DCTA"], base, pt.MeanPT[base], pt.X)
			}
		}
		if pt.MeanPT["DCTA"] > 1.25*pt.MeanPT["CRL"] {
			t.Fatalf("DCTA PT %v far behind CRL %v at %v workers",
				pt.MeanPT["DCTA"], pt.MeanPT["CRL"], pt.X)
		}
	}
}

func TestWithWorkersReuse(t *testing.T) {
	s := sharedScenario(t)
	same, err := s.WithWorkers(s.Config.Workers)
	if err != nil {
		t.Fatal(err)
	}
	if same != s {
		t.Fatal("same worker count should return the receiver")
	}
	if _, err := s.WithWorkers(0); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("workers=0 err = %v", err)
	}
	re, err := s.WithWorkers(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Template.Processors) != 3 {
		t.Fatalf("re-deployed processors = %d", len(re.Template.Processors))
	}
	// World state is shared; deployment state is fresh.
	if re.Trace != s.Trace || re.Engine != s.Engine {
		t.Fatal("world state should be shared")
	}
	if re.CRL == s.CRL || re.Store == s.Store {
		t.Fatal("deployment state should be rebuilt")
	}
}

func TestRepairAllocation(t *testing.T) {
	s := sharedScenario(t)
	req, err := s.RequestFor(s.Eval[0])
	if err != nil {
		t.Fatal(err)
	}
	// Build a deliberately infeasible result: everything on processor 0.
	bad := make(core.Allocation, len(req.Problem.Tasks))
	prio := make([]float64, len(bad))
	for j := range bad {
		bad[j] = 0
		prio[j] = req.Problem.Tasks[j].Importance
	}
	res := &alloc.Result{Allocation: bad, Priority: prio}
	repairAllocation(req.Problem, res)
	if err := req.Problem.CheckFeasible(res.Allocation); err != nil {
		t.Fatalf("repair left infeasible plan: %v", err)
	}
	// The repaired plan keeps at least one task.
	kept := 0
	for _, p := range res.Allocation {
		if p != core.Unassigned {
			kept++
		}
	}
	if kept == 0 {
		t.Fatal("repair dropped everything")
	}
}

func TestOfflineVsOnlineModes(t *testing.T) {
	s := sharedScenario(t)
	r, err := OfflineVsOnlineModes(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.AccurateObjective <= 0 {
		t.Fatalf("accurate objective = %v", r.AccurateObjective)
	}
	if r.OnlineObjective > r.AccurateObjective+1e-9 ||
		r.OfflineObjective > r.AccurateObjective+1e-9 {
		t.Fatalf("belief-driven capture beats accurate: %+v", r)
	}
	// §VII claims the online mode is more accurate; under our heavy sensing
	// noise the offline mode's averaging can win instead (recorded as a
	// deviation in EXPERIMENTS.md). Either way the two must stay in the
	// same band — a blow-up in either direction indicates a harness bug.
	if r.OnlinePenaltyPct > r.OfflinePenaltyPct+25 ||
		r.OfflinePenaltyPct > r.OnlinePenaltyPct+25 {
		t.Fatalf("mode penalties diverged: online %v%% vs offline %v%%",
			r.OnlinePenaltyPct, r.OfflinePenaltyPct)
	}
	// Default cluster count path.
	if _, err := OfflineVsOnlineModes(s, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRobustnessSweep(t *testing.T) {
	s := sharedScenario(t)
	points, err := RobustnessSweep(s, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, name := range MethodOrder {
		zero := points[0].MeanPT[name]
		half := points[1].MeanPT[name]
		if zero <= 0 || half <= 0 {
			t.Fatalf("%s PT non-positive: %v / %v", name, zero, half)
		}
		if half < zero-1e-9 {
			t.Fatalf("%s faults should not speed things up: %v vs %v", name, zero, half)
		}
	}
	// Default probabilities path.
	if _, err := RobustnessSweep(s, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMTLModeComparison(t *testing.T) {
	s := sharedScenario(t)
	rows, err := MTLModeComparison(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMode := map[string]MTLModeRow{}
	for _, r := range rows {
		if r.MeanH < 0 || r.MeanH > 1 {
			t.Fatalf("%v/%v H = %v", r.Mode, r.Learner, r.MeanH)
		}
		if r.FittedTasks < 0 || r.FittedTasks > len(s.Engine.Tasks()) {
			t.Fatalf("%v fitted = %d", r.Mode, r.FittedTasks)
		}
		if r.FitSeconds < 0 {
			t.Fatalf("negative fit time")
		}
		if r.Learner == mtlLearnerRidge() {
			byMode[r.Mode.String()] = r
		}
	}
	// Under scarcity, the transfer modes must fit at least as many tasks as
	// independent training.
	indep := byMode["independent"].FittedTasks
	if byMode["self-adapted"].FittedTasks < indep || byMode["clustered"].FittedTasks < indep {
		t.Fatalf("transfer modes under independent: %+v", byMode)
	}
}

func TestSolverScaling(t *testing.T) {
	points, err := SolverScaling(1, []int{8, 16, 40}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Exact runs only within the branch-and-bound cap.
	if points[0].ExactMicros <= 0 || points[1].ExactMicros <= 0 {
		t.Fatalf("exact skipped on small sizes: %+v", points[:2])
	}
	if points[2].ExactMicros != 0 {
		t.Fatalf("exact should be skipped at n=40: %+v", points[2])
	}
	for _, p := range points {
		if p.GreedyMicros < 0 {
			t.Fatalf("greedy time %v", p.GreedyMicros)
		}
		if p.ExactMicros > 0 && (p.GreedyOptimality <= 0 || p.GreedyOptimality > 1+1e-9) {
			t.Fatalf("optimality ratio %v", p.GreedyOptimality)
		}
	}
	if _, err := SolverScaling(1, []int{0}, 3); err == nil {
		t.Fatal("size 0 accepted")
	}
	// Default sizes path.
	if _, err := SolverScaling(2, nil, 0); err != nil {
		t.Fatal(err)
	}
}
