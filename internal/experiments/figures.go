package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/building"
	"repro/internal/mathx"
	"repro/internal/mtl"
)

// Fig2Result reproduces Fig. 2: the distribution of task importance and its
// long-tail statistics (Observation 1).
type Fig2Result struct {
	// SortedImportance is the per-task mean importance, descending.
	SortedImportance []float64
	// CumulativeShare[i] is the share of total importance carried by the
	// top i+1 tasks.
	CumulativeShare []float64
	Stats           mtl.LongTailStats
}

// Fig2LongTail aggregates importance over all scenario epochs and analyzes
// the distribution.
func Fig2LongTail(s *Scenario) (*Fig2Result, error) {
	mean := meanImportance(s)
	sorted := mathx.Clone(mean)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	total := mathx.Sum(sorted)
	cum := make([]float64, len(sorted))
	run := 0.0
	for i, v := range sorted {
		run += v
		if total > 0 {
			cum[i] = run / total
		}
	}
	return &Fig2Result{
		SortedImportance: sorted,
		CumulativeShare:  cum,
		Stats:            mtl.AnalyzeLongTail(mean),
	}, nil
}

func meanImportance(s *Scenario) []float64 {
	n := len(s.Engine.Tasks())
	mean := make([]float64, n)
	all := append(append([]Epoch{}, s.History...), s.Eval...)
	for _, ep := range all {
		for i, v := range ep.Importance {
			if i < n {
				mean[i] += v
			}
		}
	}
	for i := range mean {
		mean[i] /= float64(len(all))
	}
	return mean
}

// Fig3Result reproduces Fig. 3: final decision performance with accurate
// (importance-aware) vs random task allocation under the same task budget
// (Observation 2; the paper reports ≈45.68% average improvement).
type Fig3Result struct {
	// PerEpoch pairs accurate/random H per evaluation epoch.
	PerEpoch []Fig3Epoch
	// MeanAccurate and MeanRandom are the aggregates.
	MeanAccurate float64
	MeanRandom   float64
	// ImprovementPct is (accurate−random)/random × 100.
	ImprovementPct float64
}

// Fig3Epoch is one bar pair of Fig. 3.
type Fig3Epoch struct {
	Label    string
	Accurate float64
	Random   float64
}

// subsetEstimator restricts the MTL engine to an allowed task subset; tasks
// outside it abstain, triggering the sequencer's prior fallback — exactly
// what "not conducting" a task means for the decision.
type subsetEstimator struct {
	engine  *mtl.Engine
	allowed map[int]bool
	byPair  map[[2]int]int // (chiller, band) → task ID
}

func newSubsetEstimator(engine *mtl.Engine, allowed map[int]bool) *subsetEstimator {
	byPair := make(map[[2]int]int)
	for _, t := range engine.Tasks() {
		byPair[[2]int{t.ChillerID, int(t.Band)}] = t.ID
	}
	return &subsetEstimator{engine: engine, allowed: allowed, byPair: byPair}
}

func (se *subsetEstimator) Estimate(chillerID int, band building.LoadBand, outdoorC float64) (float64, bool) {
	id, ok := se.byPair[[2]int{chillerID, int(band)}]
	if !ok || !se.allowed[id] {
		return 0, false
	}
	return se.engine.Estimate(chillerID, band, outdoorC)
}

// Fig3AccurateVsRandom compares decision performance when only an allocated
// subset of tasks runs: the accurate subset (top tasks by true importance —
// what an importance-aware allocator keeps under a tight edge budget) vs a
// uniformly random subset of the same size (the "current scheme" of random
// task allocation). The budget is a fifth of the task set, reflecting the
// long tail: that is all an edge deployment needs to conduct.
func Fig3AccurateVsRandom(s *Scenario) (*Fig3Result, error) {
	rng := mathx.NewRand(s.Config.Seed + 505)
	out := &Fig3Result{}
	var accSum, rndSum float64
	for _, ep := range s.Eval {
		prob := s.problemWithImportance(ep.Importance)
		count := len(prob.Tasks) / 5
		if count < 3 {
			count = 3
		}
		if count > len(prob.Tasks) {
			count = len(prob.Tasks)
		}
		// Accurate: the top-importance tasks.
		order := make([]int, len(prob.Tasks))
		for j := range order {
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool {
			ia, ib := prob.Tasks[order[a]].Importance, prob.Tasks[order[b]].Importance
			if ia != ib {
				return ia > ib
			}
			return order[a] < order[b]
		})
		accSet := make(map[int]bool, count)
		for _, j := range order[:count] {
			accSet[j] = true
		}
		// Random subset of identical cardinality (the "current scheme").
		perm := rng.Perm(len(prob.Tasks))
		rndSet := make(map[int]bool, count)
		for _, j := range perm[:count] {
			rndSet[j] = true
		}
		accH, err := performanceWithSubset(s, ep, accSet)
		if err != nil {
			return nil, err
		}
		rndH, err := performanceWithSubset(s, ep, rndSet)
		if err != nil {
			return nil, err
		}
		out.PerEpoch = append(out.PerEpoch, Fig3Epoch{
			Label:    ep.Plant.Time.Format("2006-01-02"),
			Accurate: accH,
			Random:   rndH,
		})
		accSum += accH
		rndSum += rndH
	}
	n := float64(len(out.PerEpoch))
	out.MeanAccurate = accSum / n
	out.MeanRandom = rndSum / n
	if out.MeanRandom > 0 {
		out.ImprovementPct = (out.MeanAccurate - out.MeanRandom) / out.MeanRandom * 100
	}
	return out, nil
}

// performanceWithSubset scores a task subset on the Fig. 3 energy-saving
// scale (what share of the achievable saving the decision realizes).
func performanceWithSubset(s *Scenario, ep Epoch, allowed map[int]bool) (float64, error) {
	est := newSubsetEstimator(s.Engine, allowed)
	var sum float64
	for _, ctx := range ep.Plant.Contexts {
		sv, err := building.SavingPerformance(s.Trace, s.Sequencer, ctx, est)
		if err != nil {
			return 0, fmt.Errorf("subset saving: %w", err)
		}
		sum += sv
	}
	return sum / float64(len(ep.Plant.Contexts)), nil
}

// Fig45Row is one (machine, operation) cell of Figs. 4 and 5.
type Fig45Row struct {
	ChillerID int
	Machine   string
	Operation string
	// MeanImportance is the Fig. 4 bar; StdImportance the Fig. 5 bar.
	MeanImportance float64
	StdImportance  float64
}

// Fig45ImportanceByOperation computes mean and variation of task importance
// per machine × operation across all epochs (Observation 3).
func Fig45ImportanceByOperation(s *Scenario) ([]Fig45Row, error) {
	all := append(append([]Epoch{}, s.History...), s.Eval...)
	pcs := make([]mtl.PlantContext, len(all))
	for i, ep := range all {
		pcs[i] = ep.Plant
	}
	// Reuse the epoch importance already computed instead of recomputing.
	n := len(s.Engine.Tasks())
	sums := make([]float64, n)
	sqs := make([]float64, n)
	for _, ep := range all {
		for i, v := range ep.Importance {
			sums[i] += v
			sqs[i] += v * v
		}
	}
	m := float64(len(all))
	rows := make([]Fig45Row, 0, n)
	for _, t := range s.Engine.Tasks() {
		mean := sums[t.ID] / m
		variance := sqs[t.ID]/m - mean*mean
		if variance < 0 {
			variance = 0
		}
		rows = append(rows, Fig45Row{
			ChillerID:      t.ChillerID,
			Machine:        fmt.Sprintf("chiller-%d(%s)", t.ChillerID, t.Model),
			Operation:      t.Band.String(),
			MeanImportance: mean,
			StdImportance:  sqrtf(variance),
		})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].ChillerID != rows[b].ChillerID {
			return rows[a].ChillerID < rows[b].ChillerID
		}
		return rows[a].Operation < rows[b].Operation
	})
	return rows, nil
}

func sqrtf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
