package experiments

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/mathx"
	"repro/internal/mlearn"
)

// TableIRow documents one Table-I feature with summary statistics over the
// evaluation epochs, demonstrating the extraction pipeline end to end.
type TableIRow struct {
	Feature string
	Mean    float64
	Std     float64
}

// TableIFeatures extracts the Table-I feature matrix over the eval epochs
// and summarizes each column.
func TableIFeatures(s *Scenario) ([]TableIRow, error) {
	names := features.Names()
	cols := make([][]float64, len(names))
	for _, ep := range s.Eval {
		vecs, err := s.Extractor.Vectors(ep.FeatureCtx)
		if err != nil {
			return nil, fmt.Errorf("table I: %w", err)
		}
		for _, v := range vecs {
			for c := range names {
				cols[c] = append(cols[c], v[c])
			}
		}
	}
	rows := make([]TableIRow, len(names))
	for c, name := range names {
		rows[c] = TableIRow{
			Feature: name,
			Mean:    mathx.Mean(cols[c]),
			Std:     mathx.StdDev(cols[c]),
		}
	}
	return rows, nil
}

// ModelComparisonRow is one §IV-B local-process candidate.
type ModelComparisonRow struct {
	Model    string
	TrainAcc float64
	TestAcc  float64
	// CVAcc and CVStd are 5-fold cross-validated accuracy on the training
	// epochs (mean ± std) — the robust comparison when epochs are scarce.
	CVAcc float64
	CVStd float64
}

// LocalModelComparison reproduces §IV-B's model selection: SVM vs AdaBoost
// vs Random Forest on the task-selection problem, trained on historical
// optimal decisions and tested on held-out epochs. The paper selects SVM
// "because of its highest accuracy".
func LocalModelComparison(s *Scenario) ([]ModelComparisonRow, error) {
	buildSet := func(epochs []Epoch) (*mlearn.Dataset, error) {
		oracle := alloc.NewOracleGreedy()
		var x [][]float64
		var y []float64
		for _, ep := range epochs {
			prob := s.problemWithImportance(ep.Importance)
			res, err := oracle.Allocate(alloc.Request{Problem: prob})
			if err != nil {
				return nil, err
			}
			vecs, err := s.Extractor.Vectors(ep.FeatureCtx)
			if err != nil {
				return nil, err
			}
			for taskID, proc := range res.Allocation {
				label := -1.0
				if proc != core.Unassigned {
					label = 1
				}
				v := mathx.Clone(vecs[taskID])
				features.Sanitize(v)
				x = append(x, v)
				y = append(y, label)
			}
		}
		return mlearn.NewDataset(x, y)
	}
	trainRaw, err := buildSet(s.History)
	if err != nil {
		return nil, fmt.Errorf("local comparison train set: %w", err)
	}
	testRaw, err := buildSet(s.Eval)
	if err != nil {
		return nil, fmt.Errorf("local comparison test set: %w", err)
	}
	var scaler mlearn.StandardScaler
	if err := scaler.Fit(trainRaw.X); err != nil {
		return nil, err
	}
	scale := func(d *mlearn.Dataset) (*mlearn.Dataset, error) {
		x, err := scaler.TransformAll(d.X)
		if err != nil {
			return nil, err
		}
		return mlearn.NewDataset(x, d.Y)
	}
	train, err := scale(trainRaw)
	if err != nil {
		return nil, err
	}
	test, err := scale(testRaw)
	if err != nil {
		return nil, err
	}
	candidates := []struct {
		name    string
		factory func() mlearn.Classifier
	}{
		{"SVM", func() mlearn.Classifier {
			svm := mlearn.NewSVM()
			svm.Seed = s.Config.Seed
			svm.C = 50
			svm.Epochs = 200
			svm.LearningRate = 0.02
			return svm
		}},
		{"AdaBoost", func() mlearn.Classifier {
			ada := mlearn.NewAdaBoost(40)
			ada.StumpDepth = 2
			return ada
		}},
		{"RandomForest", func() mlearn.Classifier {
			forest := mlearn.NewForest(30)
			forest.Seed = s.Config.Seed
			return forest
		}},
	}
	rows := make([]ModelComparisonRow, 0, len(candidates))
	for _, c := range candidates {
		model := c.factory()
		if err := model.Fit(train); err != nil {
			return nil, fmt.Errorf("%s fit: %w", c.name, err)
		}
		trainAcc, err := mlearn.Accuracy(model, train)
		if err != nil {
			return nil, fmt.Errorf("%s train acc: %w", c.name, err)
		}
		testAcc, err := mlearn.Accuracy(model, test)
		if err != nil {
			return nil, fmt.Errorf("%s test acc: %w", c.name, err)
		}
		cvAcc, cvStd, err := mlearn.CrossValidateClassifier(c.factory, train, 5, s.Config.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s cv: %w", c.name, err)
		}
		rows = append(rows, ModelComparisonRow{
			Model: c.name, TrainAcc: trainAcc, TestAcc: testAcc, CVAcc: cvAcc, CVStd: cvStd,
		})
	}
	return rows, nil
}
