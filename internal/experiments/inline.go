package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mathx"
)

// EnvMismatchResult reproduces the two inline environment-accuracy numbers:
// §III-C reports a 46.28% performance reduction when a plain RL model's
// environment is not accurate, and §IV-A a 28.84% reduction for CRL under
// residual mismatch.
type EnvMismatchResult struct {
	// AccurateObjective is the mean captured true importance when the
	// policy is given the true environment (reference).
	AccurateObjective float64
	// StaleObjective uses the most dissimilar historical environment —
	// what a non-clustered RL with a stale environment would see.
	StaleObjective float64
	// DefinedObjective uses the kNN-defined environment (CRL's own path).
	DefinedObjective float64
	// RLPenaltyPct = (accurate − stale)/accurate × 100.
	RLPenaltyPct float64
	// CRLPenaltyPct = (accurate − defined)/accurate × 100.
	CRLPenaltyPct float64
}

// EnvMismatchPenalties measures how much captured importance the trained
// allocation policy loses when its environment input is inaccurate: fully
// stale (plain RL with a fixed environment) vs kNN-defined (CRL). The
// clustered definition must recover a large share of the gap — that recovery
// is CRL's raison d'être.
func EnvMismatchPenalties(s *Scenario) (*EnvMismatchResult, error) {
	out := &EnvMismatchResult{}
	// allocateUnder models a converged allocation policy driven by a given
	// environment belief: keep the top fifth of tasks by believed
	// importance (the long-tail edge budget), then score the kept set
	// against the truth. A loose-capacity greedy would assign everything
	// and mask the belief entirely; the budget is what exposes it.
	allocateUnder := topBudgetCapture
	for _, ep := range s.Eval {
		prob := s.problemWithImportance(ep.Importance)
		// Accurate environment: the true importance.
		acc, err := allocateUnder(prob, ep.Importance)
		if err != nil {
			return nil, fmt.Errorf("accurate env: %w", err)
		}
		out.AccurateObjective += acc
		// Stale environment: the historically most dissimilar entry —
		// what a fixed-environment RL deployment degrades to over time.
		stale, err := farthestEnvironment(s, ep.Signature)
		if err != nil {
			return nil, err
		}
		st, err := allocateUnder(prob, stale.Importance)
		if err != nil {
			return nil, fmt.Errorf("stale env: %w", err)
		}
		out.StaleObjective += st
		// Defined environment: CRL's own kNN answer.
		defined, err := s.CRL.DefineEnvironment(ep.Signature)
		if err != nil {
			return nil, fmt.Errorf("define env: %w", err)
		}
		df, err := allocateUnder(prob, defined.Importance)
		if err != nil {
			return nil, fmt.Errorf("defined env: %w", err)
		}
		out.DefinedObjective += df
	}
	n := float64(len(s.Eval))
	out.AccurateObjective /= n
	out.StaleObjective /= n
	out.DefinedObjective /= n
	if out.AccurateObjective > 0 {
		out.RLPenaltyPct = (out.AccurateObjective - out.StaleObjective) /
			out.AccurateObjective * 100
		out.CRLPenaltyPct = (out.AccurateObjective - out.DefinedObjective) /
			out.AccurateObjective * 100
	}
	return out, nil
}

// ModeComparisonResult compares the §VII environment-definition modes:
// online (kNN at prediction time, the paper's adopted mode) vs offline
// (k-means clustering in advance).
type ModeComparisonResult struct {
	// AccurateObjective / OnlineObjective / OfflineObjective are the mean
	// captured true importances under each definition.
	AccurateObjective float64
	OnlineObjective   float64
	OfflineObjective  float64
	// OnlinePenaltyPct and OfflinePenaltyPct are relative to accurate.
	OnlinePenaltyPct  float64
	OfflinePenaltyPct float64
}

// OfflineVsOnlineModes reproduces the §VII discussion: the online mode
// "guarantees a high prediction accuracy" while the offline mode risks
// "possibly low prediction accuracy due to the offline clustering".
func OfflineVsOnlineModes(s *Scenario, clusters int) (*ModeComparisonResult, error) {
	if clusters < 1 {
		clusters = 6
	}
	offline, err := core.NewOfflineStore(s.Store, clusters, s.Config.Seed+808)
	if err != nil {
		return nil, fmt.Errorf("offline store: %w", err)
	}
	out := &ModeComparisonResult{}
	top := func(truth *core.Problem, believed []float64) float64 {
		v, _ := topBudgetCapture(truth, believed)
		return v
	}
	for _, ep := range s.Eval {
		prob := s.problemWithImportance(ep.Importance)
		out.AccurateObjective += top(prob, ep.Importance)
		online, err := s.CRL.DefineEnvironment(ep.Signature)
		if err != nil {
			return nil, fmt.Errorf("online define: %w", err)
		}
		out.OnlineObjective += top(prob, online.Importance)
		off, err := offline.Define(ep.Signature)
		if err != nil {
			return nil, fmt.Errorf("offline define: %w", err)
		}
		out.OfflineObjective += top(prob, off.Importance)
	}
	n := float64(len(s.Eval))
	out.AccurateObjective /= n
	out.OnlineObjective /= n
	out.OfflineObjective /= n
	if out.AccurateObjective > 0 {
		out.OnlinePenaltyPct = (out.AccurateObjective - out.OnlineObjective) /
			out.AccurateObjective * 100
		out.OfflinePenaltyPct = (out.AccurateObjective - out.OfflineObjective) /
			out.AccurateObjective * 100
	}
	return out, nil
}

// topBudgetCapture scores a believed importance ranking by the true
// importance its top-fifth budget captures (shared with
// EnvMismatchPenalties).
func topBudgetCapture(truth *core.Problem, believed []float64) (float64, error) {
	n := len(truth.Tasks)
	count := n / 5
	if count < 3 {
		count = 3
	}
	if count > n {
		count = n
	}
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool {
		ba, bb := 0.0, 0.0
		if order[a] < len(believed) {
			ba = believed[order[a]]
		}
		if order[b] < len(believed) {
			bb = believed[order[b]]
		}
		if ba != bb {
			return ba > bb
		}
		return order[a] < order[b]
	})
	var captured float64
	for _, j := range order[:count] {
		captured += truth.Tasks[j].Importance
	}
	return captured, nil
}

// farthestEnvironment returns the stored environment with the most distant
// signature from z.
func farthestEnvironment(s *Scenario, z []float64) (*core.Environment, error) {
	all := s.Store.All()
	if len(all) == 0 {
		return nil, core.ErrEmptyStore
	}
	best := all[0]
	bestD := -1.0
	for _, e := range all {
		d := mathx.EuclideanDistance(z, e.Signature)
		if d > bestD {
			bestD = d
			best = e
		}
	}
	return best, nil
}
