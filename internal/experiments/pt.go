package experiments

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/mathx"
)

// PTPoint is one x-axis point of a processing-time figure: the mean PT per
// allocation method over the evaluation epochs.
type PTPoint struct {
	// X is the sweep value (#processors, data size in Mb, bandwidth in Mbps).
	X float64
	// MeanPT maps method name → mean processing time (seconds).
	MeanPT map[string]float64
}

// PTSeries is a full figure: points ordered by X plus the headline speedup
// statistics the paper quotes.
type PTSeries struct {
	Figure string
	XLabel string
	Points []PTPoint
	// SpeedupVs maps a baseline name to DCTA's mean and max speedup over it
	// across the sweep (paper: 2.70/2.05/1.80 mean, 3.24/2.32/2.01 max for
	// RM/DML/CRL in Fig. 9).
	SpeedupVs map[string]Speedup
}

// Speedup summarizes PT(baseline)/PT(DCTA).
type Speedup struct {
	Mean float64
	Max  float64
}

// MethodOrder is the canonical method ordering in tables.
var MethodOrder = []string{"RM", "DML", "CRL", "DCTA"}

// evaluatePT measures the mean PT of every allocator on the scenario's
// evaluation epochs under the given cluster and problem scale.
func evaluatePT(s *Scenario, cluster *edgesim.Cluster, inputScale float64) (map[string]float64, error) {
	allocators, err := s.Allocators()
	if err != nil {
		return nil, err
	}
	sums := make(map[string]float64, len(allocators))
	for _, ep := range s.Eval {
		req, err := s.RequestFor(ep)
		if err != nil {
			return nil, fmt.Errorf("request: %w", err)
		}
		if inputScale != 1 {
			scaleProblem(req.Problem, inputScale)
		}
		for name, a := range allocators {
			res, err := a.Allocate(req)
			if err != nil {
				return nil, fmt.Errorf("%s allocate: %w", name, err)
			}
			repairAllocation(req.Problem, res)
			sim, err := edgesim.Simulate(cluster, req.Problem, res, s.Config.CoverageTarget)
			if err != nil {
				return nil, fmt.Errorf("%s simulate: %w", name, err)
			}
			sums[name] += sim.ProcessingTime
		}
	}
	n := float64(len(s.Eval))
	out := make(map[string]float64, len(sums))
	for name, v := range sums {
		out[name] = v / n
	}
	return out, nil
}

// scaleProblem multiplies every task's input size (and hence nominal time
// and resource demand) by `scale`.
func scaleProblem(p *core.Problem, scale float64) {
	for i := range p.Tasks {
		p.Tasks[i].InputBits *= scale
		p.Tasks[i].TimeCost *= scale
		p.Tasks[i].Resource *= scale
	}
}

// repairAllocation drops the lowest-priority tasks from overloaded
// processors until the allocation satisfies Eqs. (2)–(4). Data-driven
// policies trained on one problem scale may overshoot when the instance is
// rescaled; the controller must never ship an infeasible plan.
func repairAllocation(p *core.Problem, res *alloc.Result) {
	if p.CheckFeasible(res.Allocation) == nil {
		return
	}
	type assigned struct {
		task, proc int
		prio       float64
	}
	var list []assigned
	for j, proc := range res.Allocation {
		if proc == core.Unassigned {
			continue
		}
		prio := 0.0
		if res.Priority != nil && j < len(res.Priority) {
			prio = res.Priority[j]
		}
		list = append(list, assigned{task: j, proc: proc, prio: prio})
	}
	// Keep high-priority tasks; evict from the bottom.
	sort.Slice(list, func(a, b int) bool { return list[a].prio < list[b].prio })
	usedT := make([]float64, len(p.Processors))
	usedV := make([]float64, len(p.Processors))
	for j, proc := range res.Allocation {
		if proc != core.Unassigned {
			usedT[proc] += p.Tasks[j].TimeCost
			usedV[proc] += p.Tasks[j].Resource
		}
	}
	for _, a := range list {
		if p.CheckFeasible(res.Allocation) == nil {
			return
		}
		if usedT[a.proc] > p.TimeLimit || usedV[a.proc] > p.Processors[a.proc].Capacity {
			res.Allocation[a.task] = core.Unassigned
			usedT[a.proc] -= p.Tasks[a.task].TimeCost
			usedV[a.proc] -= p.Tasks[a.task].Resource
		}
	}
}

// speedups derives the DCTA speedup summary from a finished series.
func speedups(points []PTPoint) map[string]Speedup {
	out := make(map[string]Speedup)
	for _, base := range []string{"RM", "DML", "CRL"} {
		var ratios []float64
		for _, pt := range points {
			d := pt.MeanPT["DCTA"]
			b := pt.MeanPT[base]
			if d > 0 && b > 0 {
				ratios = append(ratios, b/d)
			}
		}
		if len(ratios) > 0 {
			out[base] = Speedup{Mean: mathx.Mean(ratios), Max: mathx.MaxOf(ratios)}
		}
	}
	return out
}

// Fig9ProcessorSweep reproduces Fig. 9: PT as a function of the number of
// processors. Every point rebuilds the deployment (store capacities, CRL,
// local model) because the MDP's dimensions depend on M; the points are
// independent, so they run in parallel.
func Fig9ProcessorSweep(s *Scenario, workerCounts []int) (*PTSeries, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{2, 4, 6, 8, 10}
	}
	series := &PTSeries{Figure: "Fig9", XLabel: "processors"}
	points, err := conc.Map(len(workerCounts), 0, func(i int) (PTPoint, error) {
		m := workerCounts[i]
		sm, err := s.WithWorkers(m)
		if err != nil {
			return PTPoint{}, fmt.Errorf("workers=%d: %w", m, err)
		}
		pt, err := evaluatePT(sm, sm.Cluster, 1)
		if err != nil {
			return PTPoint{}, fmt.Errorf("workers=%d: %w", m, err)
		}
		return PTPoint{X: float64(m), MeanPT: pt}, nil
	})
	if err != nil {
		return nil, err
	}
	series.Points = points
	series.SpeedupVs = speedups(series.Points)
	return series, nil
}

// Fig10DataSizeSweep reproduces Fig. 10: PT as a function of the average
// application input data size in Mb (split across the 50 tasks).
func Fig10DataSizeSweep(s *Scenario, totalMb []float64) (*PTSeries, error) {
	if len(totalMb) == 0 {
		totalMb = []float64{200, 400, 600, 800, 1000}
	}
	series := &PTSeries{Figure: "Fig10", XLabel: "avg input data size (Mb)"}
	baseTotal := s.Config.AvgInputMbits * float64(len(s.InputBits))
	for _, mb := range totalMb {
		scale := mb / baseTotal
		pt, err := evaluatePT(s, s.Cluster, scale)
		if err != nil {
			return nil, fmt.Errorf("datasize=%v: %w", mb, err)
		}
		series.Points = append(series.Points, PTPoint{X: mb, MeanPT: pt})
	}
	series.SpeedupVs = speedups(series.Points)
	return series, nil
}

// Fig11BandwidthSweep reproduces Fig. 11: PT as a function of the WiFi
// bandwidth limit in Mbps.
func Fig11BandwidthSweep(s *Scenario, mbps []float64) (*PTSeries, error) {
	if len(mbps) == 0 {
		mbps = []float64{10, 25, 50, 100, 200}
	}
	series := &PTSeries{Figure: "Fig11", XLabel: "bandwidth (Mbps)"}
	for _, bw := range mbps {
		cluster := *s.Cluster
		cluster.BandwidthBps = bw * 1e6
		pt, err := evaluatePT(s, &cluster, 1)
		if err != nil {
			return nil, fmt.Errorf("bandwidth=%v: %w", bw, err)
		}
		series.Points = append(series.Points, PTPoint{X: bw, MeanPT: pt})
	}
	series.SpeedupVs = speedups(series.Points)
	return series, nil
}
