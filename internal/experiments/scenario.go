// Package experiments contains one harness per table/figure of the paper's
// evaluation (§II observations and §V experiments), built on the
// green-building substrate, the MTL engine, the TATIM core, and the edge
// simulator. Each harness returns plain series/rows that cmd/dcta-bench and
// the top-level benchmarks render.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/alloc"
	"repro/internal/building"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/features"
	"repro/internal/mathx"
	"repro/internal/mtl"
	"repro/internal/rl"
)

// ErrBadScenario is returned for invalid scenario configurations.
var ErrBadScenario = errors.New("experiments: invalid scenario")

// ScenarioConfig sizes the end-to-end experimental setup.
type ScenarioConfig struct {
	// Seed drives every random component.
	Seed int64
	// Years and StepHours size the building trace.
	Years     int
	StepHours int
	// Tasks is the MTL task count (paper: 50).
	Tasks int
	// HistoryContexts is the number of historical decision epochs used to
	// build the environment store and train the local process.
	HistoryContexts int
	// EvalContexts is the number of held-out epochs evaluated.
	EvalContexts int
	// Workers is the default worker count (paper: 9 Pis).
	Workers int
	// AvgInputMbits is the mean per-task input size in megabits.
	AvgInputMbits float64
	// BandwidthBps is the WiFi link bandwidth.
	BandwidthBps float64
	// TimeLimit is the TATIM T in seconds.
	TimeLimit float64
	// CoverageTarget is the importance coverage that defines "decision
	// ready" in the PT metric.
	CoverageTarget float64
	// CRLEpisodes bounds CRL training.
	CRLEpisodes int
	// SignatureNoise is the relative sensing noise applied independently to
	// the stored and queried signatures Z. It models the imperfect
	// environment observations that make the clustered environment mismatch
	// reality (§III-C) — the failure mode the DCTA local process corrects.
	SignatureNoise float64
}

// DefaultScenarioConfig mirrors the paper's setup at a laptop-friendly
// scale: 50 tasks, 9 workers + laptop, four simulated years thinned to
// 3-hour sampling.
func DefaultScenarioConfig(seed int64) ScenarioConfig {
	return ScenarioConfig{
		Seed:            seed,
		Years:           2,
		StepHours:       3,
		Tasks:           50,
		HistoryContexts: 60,
		EvalContexts:    12,
		Workers:         9,
		AvgInputMbits:   400.0 / 50, // 400 Mb application input over 50 tasks
		BandwidthBps:    edgesim.DefaultBandwidthBps,
		TimeLimit:       60,
		CoverageTarget:  0.8,
		CRLEpisodes:     60,
		SignatureNoise:  0.30,
	}
}

// Scenario is the fully constructed experimental world shared by the
// figure harnesses.
type Scenario struct {
	Config    ScenarioConfig
	Trace     *building.Trace
	Engine    *mtl.Engine
	Sequencer *building.Sequencer
	Extractor *features.Extractor
	Store     *core.EnvironmentStore
	// History and Eval are the sampled decision epochs with their true
	// importance vectors.
	History []Epoch
	Eval    []Epoch
	// InputBits is the per-task input size in bits.
	InputBits []float64
	// CRL is the trained general process; Local the trained local process.
	CRL   *core.CRL
	Local *alloc.LocalModel
	// Cluster is the default testbed.
	Cluster *edgesim.Cluster
	// Template is the TATIM problem structure for the default cluster.
	Template *core.Problem
}

// Epoch is one decision context with ground truth attached.
type Epoch struct {
	Plant      mtl.PlantContext
	Importance []float64
	Signature  []float64
	FeatureCtx features.Context
}

// NewScenario builds the world: trace → engine → epochs (importance) →
// store → CRL + local model. It is deterministic in cfg.Seed.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.Years < 1 || cfg.Tasks < 1 || cfg.Workers < 1 {
		return nil, fmt.Errorf("years/tasks/workers: %w", ErrBadScenario)
	}
	if cfg.HistoryContexts < 2 || cfg.EvalContexts < 1 {
		return nil, fmt.Errorf("context counts: %w", ErrBadScenario)
	}
	if cfg.StepHours < 1 {
		cfg.StepHours = 3
	}
	if cfg.AvgInputMbits <= 0 {
		cfg.AvgInputMbits = 8
	}
	if cfg.BandwidthBps <= 0 {
		cfg.BandwidthBps = edgesim.DefaultBandwidthBps
	}
	if cfg.TimeLimit <= 0 {
		cfg.TimeLimit = 60
	}
	if cfg.CoverageTarget <= 0 || cfg.CoverageTarget > 1 {
		cfg.CoverageTarget = 0.8
	}
	if cfg.CRLEpisodes < 1 {
		cfg.CRLEpisodes = 60
	}
	s := &Scenario{Config: cfg, Sequencer: building.NewSequencer()}
	var err error
	s.Trace, err = building.Generate(building.Config{
		Seed: cfg.Seed, StartYear: 2015, Years: cfg.Years, StepHours: cfg.StepHours,
	})
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	engCfg := mtl.DefaultEngineConfig()
	engCfg.MaxTasks = cfg.Tasks
	engCfg.Seed = cfg.Seed
	s.Engine, err = mtl.NewEngine(s.Trace, engCfg)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if err := s.Engine.Fit(); err != nil {
		return nil, fmt.Errorf("engine fit: %w", err)
	}
	s.Extractor, err = features.NewExtractor(s.Trace, s.Engine)
	if err != nil {
		return nil, fmt.Errorf("extractor: %w", err)
	}
	if err := s.buildEpochs(); err != nil {
		return nil, err
	}
	s.buildInputBits()
	if err := s.buildCluster(); err != nil {
		return nil, err
	}
	if err := s.buildStore(); err != nil {
		return nil, err
	}
	if err := s.trainCRL(); err != nil {
		return nil, err
	}
	if err := s.trainLocal(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildEpochs samples decision epochs, splits history/eval, and computes
// each epoch's true importance vector, signature and feature context.
func (s *Scenario) buildEpochs() error {
	want := s.Config.HistoryContexts + s.Config.EvalContexts
	pcs := mtl.SampleContexts(s.Trace, 24*time.Hour, want)
	if len(pcs) < want {
		// Thin the cadence didn't yield enough epochs; sample more often.
		pcs = mtl.SampleContexts(s.Trace, 12*time.Hour, want)
	}
	if len(pcs) < want {
		return fmt.Errorf("only %d epochs available, need %d: %w", len(pcs), want, ErrBadScenario)
	}
	epochs := make([]Epoch, 0, want)
	noise := mathx.NewRand(s.Config.Seed + 606)
	for _, pc := range pcs[:want] {
		imp, err := s.Engine.ImportanceVector(s.Sequencer, pc)
		if err != nil {
			return fmt.Errorf("importance at %v: %w", pc.Time, err)
		}
		epochs = append(epochs, Epoch{
			Plant:      pc,
			Importance: imp,
			Signature:  noisySignature(noise, signatureOf(pc), s.Config.SignatureNoise),
			FeatureCtx: featureCtxOf(pc),
		})
	}
	s.History = epochs[:s.Config.HistoryContexts]
	s.Eval = epochs[s.Config.HistoryContexts:]
	return nil
}

// signatureOf builds the sensing vector Z for an epoch: calendar phase,
// outdoor temperature, and normalized per-building demands.
func signatureOf(pc mtl.PlantContext) []float64 {
	yearFrac := float64(pc.Time.YearDay()-1) / 365
	hourFrac := float64(pc.Time.Hour()) / 24
	sig := []float64{
		math.Sin(2 * math.Pi * yearFrac),
		math.Cos(2 * math.Pi * yearFrac),
		math.Sin(2 * math.Pi * hourFrac),
	}
	var temp, demand float64
	for _, ctx := range pc.Contexts {
		temp += ctx.OutdoorC
		demand += ctx.DemandKW
	}
	n := float64(len(pc.Contexts))
	if n > 0 {
		sig = append(sig, temp/n/40, demand/n/10000)
	} else {
		sig = append(sig, 0, 0)
	}
	return sig
}

func featureCtxOf(pc mtl.PlantContext) features.Context {
	ctx := features.Context{Time: pc.Time, Condition: building.WeatherMild}
	var temp float64
	for _, c := range pc.Contexts {
		temp += c.OutdoorC
	}
	if len(pc.Contexts) > 0 {
		ctx.OutdoorTempC = temp / float64(len(pc.Contexts))
	}
	switch {
	case ctx.OutdoorTempC < 18:
		ctx.Condition = building.WeatherCool
	case ctx.OutdoorTempC < 24:
		ctx.Condition = building.WeatherMild
	case ctx.OutdoorTempC < 29:
		ctx.Condition = building.WeatherWarm
	default:
		ctx.Condition = building.WeatherHotHumid
	}
	return ctx
}

// buildInputBits derives per-task input sizes: proportional to the task's
// backing data volume, scaled to the configured average.
func (s *Scenario) buildInputBits() {
	tasks := s.Engine.Tasks()
	raw := make([]float64, len(tasks))
	var sum float64
	for i, t := range tasks {
		raw[i] = 1 + float64(t.SampleCount)
		sum += raw[i]
	}
	mean := sum / float64(len(raw))
	target := s.Config.AvgInputMbits * 1e6 // bits
	s.InputBits = make([]float64, len(raw))
	for i, v := range raw {
		s.InputBits[i] = v / mean * target
	}
}

func (s *Scenario) buildCluster() error {
	c, err := edgesim.NewCluster(s.Config.Workers)
	if err != nil {
		return err
	}
	c.BandwidthBps = s.Config.BandwidthBps
	s.Cluster = c
	imp := make([]float64, len(s.InputBits)) // placeholder importance
	s.Template, err = c.ProblemFor(imp, s.InputBits, s.Config.TimeLimit)
	if err != nil {
		return err
	}
	return nil
}

// buildStore snapshots each historical epoch into the environment store ℰ.
// Stored signatures receive their own, independent sensing noise: the Z
// recorded months ago and the Z sensed right now never line up exactly.
func (s *Scenario) buildStore() error {
	s.Store = core.NewEnvironmentStore()
	caps := make([]float64, len(s.Template.Processors))
	for i, pr := range s.Template.Processors {
		caps[i] = pr.Capacity
	}
	noise := mathx.NewRand(s.Config.Seed + 707)
	for _, ep := range s.History {
		env := &core.Environment{
			Importance: mathx.Clone(ep.Importance),
			Capacity:   caps,
			Signature:  noisySignature(noise, ep.Signature, s.Config.SignatureNoise),
		}
		if err := s.Store.Add(env); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// noisySignature perturbs each signature component with relative Gaussian
// sensing noise.
func noisySignature(rng *rand.Rand, sig []float64, rel float64) []float64 {
	out := mathx.Clone(sig)
	if rel <= 0 {
		return out
	}
	for i := range out {
		out[i] += rng.NormFloat64() * rel * (0.5 + math.Abs(out[i]))
	}
	return out
}

func (s *Scenario) trainCRL() error {
	cfg := core.DefaultCRLConfig()
	cfg.Episodes = s.Config.CRLEpisodes
	cfg.Seed = s.Config.Seed + 101
	cfg.DQN = rl.DQNConfig{
		Hidden:          []int{48},
		BatchSize:       8,
		WarmupSteps:     64,
		TargetSyncEvery: 250,
		Epsilon: rl.EpsilonSchedule{
			Start: 1, End: 0.05,
			DecaySteps: s.Config.CRLEpisodes * (len(s.Template.Tasks) + s.Config.Workers) / 2,
		},
		Seed: s.Config.Seed + 202,
	}
	crl, err := core.NewCRL(s.Template.Clone(), s.Store, cfg)
	if err != nil {
		return fmt.Errorf("crl: %w", err)
	}
	if _, err := crl.Train(); err != nil {
		return fmt.Errorf("crl train: %w", err)
	}
	s.CRL = crl
	return nil
}

// trainLocal builds the local process from historical optimal decisions.
func (s *Scenario) trainLocal() error {
	oracle := alloc.NewOracleGreedy()
	var samples []alloc.LocalSample
	for _, ep := range s.History {
		prob := s.problemWithImportance(ep.Importance)
		res, err := oracle.Allocate(alloc.Request{Problem: prob})
		if err != nil {
			return fmt.Errorf("local oracle: %w", err)
		}
		vecs, err := s.Extractor.Vectors(ep.FeatureCtx)
		if err != nil {
			return fmt.Errorf("local features: %w", err)
		}
		samples = append(samples, alloc.SamplesFromDecision(vecs, res.Allocation)...)
		// Maintain the Past Success counters as decisions accumulate.
		for taskID, proc := range res.Allocation {
			if proc != core.Unassigned {
				if err := s.Extractor.RecordSuccess(taskID); err != nil {
					return err
				}
			}
		}
	}
	local := alloc.NewLocalModel(s.Config.Seed + 303)
	if err := local.Fit(samples); err != nil {
		return fmt.Errorf("local fit: %w", err)
	}
	s.Local = local
	return nil
}

// problemWithImportance clones the template and installs an importance
// vector.
func (s *Scenario) problemWithImportance(imp []float64) *core.Problem {
	p := s.Template.Clone()
	for i := range p.Tasks {
		v := 0.0
		if i < len(imp) {
			v = mathx.Clamp(imp[i], 0, 1)
		}
		p.Tasks[i].Importance = v
	}
	return p
}

// WithWorkers re-deploys the scenario on a cluster of a different size,
// reusing the expensive world state (trace, engine, epochs) and rebuilding
// everything that depends on the processor count: the cluster, the TATIM
// template, the environment store's capacities, the CRL policy (whose MDP
// dimensions include M) and the local model's Past Success counters.
func (s *Scenario) WithWorkers(workers int) (*Scenario, error) {
	if workers < 1 {
		return nil, fmt.Errorf("workers %d: %w", workers, ErrBadScenario)
	}
	if workers == s.Config.Workers {
		return s, nil
	}
	clone := *s
	clone.Config.Workers = workers
	var err error
	clone.Extractor, err = features.NewExtractor(clone.Trace, clone.Engine)
	if err != nil {
		return nil, fmt.Errorf("re-deploy extractor: %w", err)
	}
	if err := clone.buildCluster(); err != nil {
		return nil, fmt.Errorf("re-deploy cluster: %w", err)
	}
	if err := clone.buildStore(); err != nil {
		return nil, fmt.Errorf("re-deploy store: %w", err)
	}
	if err := clone.trainCRL(); err != nil {
		return nil, fmt.Errorf("re-deploy crl: %w", err)
	}
	if err := clone.trainLocal(); err != nil {
		return nil, fmt.Errorf("re-deploy local: %w", err)
	}
	return &clone, nil
}

// Allocators builds the four §V strategies against this scenario.
func (s *Scenario) Allocators() (map[string]alloc.Allocator, error) {
	crlAlloc, err := alloc.NewCRLAllocator(s.CRL)
	if err != nil {
		return nil, err
	}
	dcta, err := alloc.NewDCTA(s.CRL, s.Local)
	if err != nil {
		return nil, err
	}
	return map[string]alloc.Allocator{
		"RM":   alloc.NewRandomMapping(s.Config.Seed + 404),
		"DML":  alloc.NewDML(),
		"CRL":  crlAlloc,
		"DCTA": dcta,
	}, nil
}

// RequestFor assembles the allocation request for an epoch.
func (s *Scenario) RequestFor(ep Epoch) (alloc.Request, error) {
	vecs, err := s.Extractor.Vectors(ep.FeatureCtx)
	if err != nil {
		return alloc.Request{}, err
	}
	return alloc.Request{
		Problem:   s.problemWithImportance(ep.Importance),
		Signature: ep.Signature,
		Features:  vecs,
	}, nil
}
