package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/knapsack"
	"repro/internal/mathx"
)

// ScalingPoint measures solver cost at one TATIM size — the paper's central
// efficiency argument: the NP-complete solve recurs under varying contexts,
// so the data-driven fast path must stay cheap as N grows.
type ScalingPoint struct {
	// Tasks is N.
	Tasks int
	// ExactMicros is branch-and-bound time (0 when N exceeds its cap).
	ExactMicros float64
	// GreedyMicros is the density-greedy heuristic time.
	GreedyMicros float64
	// GreedyOptimality is greedy objective / exact objective (0 when exact
	// was skipped).
	GreedyOptimality float64
}

// SolverScaling times the exact and greedy TATIM solvers across problem
// sizes on random long-tail instances. It quantifies why Theorem 1 makes
// repeated exact solving untenable (exponential blow-up) while the
// data-driven path stays linear-ish.
func SolverScaling(seed int64, sizes []int, processors int) ([]ScalingPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{8, 12, 16, 20, 50, 100, 200}
	}
	if processors < 1 {
		processors = 3
	}
	rng := mathx.NewRand(seed)
	out := make([]ScalingPoint, 0, len(sizes))
	for _, n := range sizes {
		if n < 1 {
			return nil, fmt.Errorf("experiments: size %d", n)
		}
		p := &core.Problem{TimeLimit: float64(n) / float64(processors) / 2}
		for j := 0; j < n; j++ {
			imp := 0.02 * rng.Float64()
			if j%5 == 0 {
				imp = 0.5 + 0.5*rng.Float64()
			}
			p.Tasks = append(p.Tasks, core.TaskSpec{
				ID: j, Importance: imp,
				TimeCost: 0.5 + rng.Float64(),
				Resource: 0.2 + 0.3*rng.Float64(),
			})
		}
		for i := 0; i < processors; i++ {
			p.Processors = append(p.Processors, core.Processor{
				ID: i, Capacity: float64(n) / float64(processors), SpeedFactor: 1,
			})
		}
		pt := ScalingPoint{Tasks: n}
		start := time.Now()
		greedy, err := p.SolveGreedy()
		if err != nil {
			return nil, fmt.Errorf("greedy n=%d: %w", n, err)
		}
		pt.GreedyMicros = float64(time.Since(start).Microseconds())
		if n <= knapsack.MaxExactItems {
			start = time.Now()
			exact, err := p.SolveExact()
			if err != nil {
				return nil, fmt.Errorf("exact n=%d: %w", n, err)
			}
			pt.ExactMicros = float64(time.Since(start).Microseconds())
			if obj := p.Objective(exact); obj > 0 {
				pt.GreedyOptimality = p.Objective(greedy) / obj
			}
		}
		out = append(out, pt)
	}
	return out, nil
}
