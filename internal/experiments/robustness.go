package experiments

import (
	"fmt"

	"repro/internal/edgesim"
)

// RobustnessPoint is the mean PT per method at one worker-failure rate.
type RobustnessPoint struct {
	FailProb float64
	MeanPT   map[string]float64
}

// RobustnessSweep measures every allocation strategy's processing time
// under crash-stop worker failures (an extension beyond the paper's
// evaluation; §VII notes that edge sensing devices fail routinely). Faults
// are resampled per epoch and shared across methods so the comparison is
// paired.
func RobustnessSweep(s *Scenario, failProbs []float64) ([]RobustnessPoint, error) {
	if len(failProbs) == 0 {
		failProbs = []float64{0, 0.1, 0.25, 0.5}
	}
	allocators, err := s.Allocators()
	if err != nil {
		return nil, err
	}
	var out []RobustnessPoint
	for pi, prob := range failProbs {
		sums := make(map[string]float64, len(allocators))
		for ei, ep := range s.Eval {
			req, err := s.RequestFor(ep)
			if err != nil {
				return nil, fmt.Errorf("request: %w", err)
			}
			// A generous horizon: faults can strike any time within a
			// typical run.
			horizon := s.Config.TimeLimit
			faults := edgesim.SampleFaults(
				s.Config.Seed+int64(1000*pi+ei), len(s.Cluster.Workers), prob, horizon)
			for name, a := range allocators {
				res, err := a.Allocate(req)
				if err != nil {
					return nil, fmt.Errorf("%s allocate: %w", name, err)
				}
				repairAllocation(req.Problem, res)
				sim, err := edgesim.SimulateWithFaults(
					s.Cluster, req.Problem, res, s.Config.CoverageTarget, faults)
				if err != nil {
					return nil, fmt.Errorf("%s simulate: %w", name, err)
				}
				sums[name] += sim.ProcessingTime
			}
		}
		pt := RobustnessPoint{FailProb: prob, MeanPT: make(map[string]float64, len(sums))}
		for name, v := range sums {
			pt.MeanPT[name] = v / float64(len(s.Eval))
		}
		out = append(out, pt)
	}
	return out, nil
}
