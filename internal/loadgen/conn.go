package loadgen

import "repro/internal/rawhttp"

// The raw-HTTP frame machinery the closed loop is built on now lives in
// internal/rawhttp (the cluster router reuses it for its proxy hop); these
// aliases keep the loadgen names the commands and tests were written
// against.

// Conn is a persistent preassembled-frame HTTP/1.1 connection.
type Conn = rawhttp.Conn

// DialFast opens a persistent connection to addr ("host:port").
func DialFast(addr string) (*Conn, error) { return rawhttp.Dial(addr) }

// BuildFrame preassembles one complete POST request (headers + body).
func BuildFrame(path string, body []byte) []byte { return rawhttp.BuildFrame(path, body) }

// AppendFrame is BuildFrame into a caller-reused buffer.
func AppendFrame(dst []byte, path string, body []byte) []byte {
	return rawhttp.AppendFrame(dst, path, body)
}
