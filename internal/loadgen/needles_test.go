package loadgen

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/serve"
)

// TestNeedlesMatchWire pins the classification needles against the real
// serializer: if AllocateResponse's JSON tags or the outcome constants ever
// change, the warm loop's byte-scan classification must fail loudly here
// rather than silently reporting a 0% hit rate.
func TestNeedlesMatchWire(t *testing.T) {
	hit, err := json.Marshal(serve.AllocateResponse{Cache: serve.CacheHit, Mode: serve.ModeNormal})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(hit, needleCacheHit) {
		t.Fatalf("hit needle %q missing from wire %q", needleCacheHit, hit)
	}
	if bytes.Contains(hit, needleDegraded) {
		t.Fatalf("normal answer matched degraded needle: %q", hit)
	}
	warm, _ := json.Marshal(serve.AllocateResponse{Cache: serve.CacheWarm, Mode: serve.ModeNormal})
	if !bytes.Contains(warm, needleCacheWarm) {
		t.Fatalf("warm needle %q missing from wire %q", needleCacheWarm, warm)
	}
	repl, _ := json.Marshal(serve.AllocateResponse{Cache: serve.CacheReplica, Mode: serve.ModeNormal})
	if !bytes.Contains(repl, needleCacheReplica) {
		t.Fatalf("replica needle %q missing from wire %q", needleCacheReplica, repl)
	}
	deg, _ := json.Marshal(serve.AllocateResponse{Cache: "bypass", Mode: serve.ModeDegraded})
	if !bytes.Contains(deg, needleDegraded) {
		t.Fatalf("degraded needle %q missing from wire %q", needleDegraded, deg)
	}
	if bytes.Contains(deg, needleCacheHit) || bytes.Contains(deg, needleCacheWarm) {
		t.Fatalf("degraded answer matched a hit needle: %q", deg)
	}
}
