package loadgen

import (
	"bytes"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// FailoverResult is the warm-failover probe's aggregate: after killing the
// shard that primary-owns the most workload keys, how the replica-held
// answers for those keys came back.
type FailoverResult struct {
	// VictimID is the killed shard's ring identity.
	VictimID string
	// Requests is how many allocates were driven at the victim's ranges
	// while it was down.
	Requests int
	// Non2xx counts failed answers (the availability bar: should be zero —
	// the router retries onto the surviving replica).
	Non2xx int
	// Warm counts 200s answered by a resident policy (cache ∈ {hit, warm,
	// replica, speculative}) rather than a fresh demand training.
	Warm int
	// WarmFraction is Warm over the successful answers.
	WarmFraction float64
}

// FailoverProbe measures warm failover on a live in-process cluster: it waits
// for replication to settle, kills the shard that primary-owns the most
// workload keys, drives `requests` allocates at that shard's ranges through
// the router, classifies each answer, then restarts the victim and restores
// the fleet. The cluster must be fully live when the probe starts.
func FailoverProbe(topo *cluster.LocalCluster, store *core.EnvironmentStore, wl *Workload, requests int, logf func(format string, args ...any)) (*FailoverResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ring := topo.Router().Ring()
	if got := len(ring.Nodes()); got != topo.Shards() {
		return nil, fmt.Errorf("failover probe needs a fully live fleet: %d/%d shards in the ring", got, topo.Shards())
	}

	// Partition the workload's frames by primary owner and aim at the shard
	// owning the most keys — the worst-case single failure for this workload.
	frames := map[string][][]byte{}
	for i, req := range wl.Allocs {
		k, _, err := store.NearestIndex(req.Signature)
		if err != nil {
			return nil, fmt.Errorf("failover probe: key for request %d: %w", i, err)
		}
		owner := ring.Owner(k)
		frames[owner] = append(frames[owner], wl.AllocFrames[i])
	}
	victimID, most := "", 0
	for owner, fs := range frames {
		if len(fs) > most || (len(fs) == most && owner > victimID) {
			victimID, most = owner, len(fs)
		}
	}
	if most == 0 {
		return nil, fmt.Errorf("failover probe: no workload key resolves to a shard")
	}
	victim := -1
	for i := 0; i < topo.Shards(); i++ {
		if topo.ShardID(i) == victimID {
			victim = i
			break
		}
	}
	if victim < 0 {
		return nil, fmt.Errorf("failover probe: ring owner %q is not a local shard", victimID)
	}

	// The probe asserts on replica-held state, so the replicas must actually
	// hold it before the kill.
	if !topo.AwaitReplication(10 * time.Second) {
		return nil, fmt.Errorf("failover probe: replication queues did not settle")
	}
	if err := topo.KillShard(victim); err != nil {
		return nil, fmt.Errorf("failover probe: kill shard %s: %w", victimID, err)
	}
	logf("failover probe: killed %s (primary for %d/%d workload keys), driving %d requests at its ranges\n",
		victimID, most, len(wl.Allocs), requests)

	res := &FailoverResult{VictimID: victimID, Requests: requests}
	conn, err := DialFast(topo.Addr())
	if err != nil {
		return nil, fmt.Errorf("failover probe: dial router: %w", err)
	}
	victimFrames := frames[victimID]
	for i := 0; i < requests; i++ {
		code, body, err := conn.Do(victimFrames[i%len(victimFrames)])
		if err != nil {
			// The raw connection can be severed by the in-flight ejection;
			// redial once per failure and count the request against the run.
			conn.Close()
			if conn, err = DialFast(topo.Addr()); err != nil {
				return nil, fmt.Errorf("failover probe: redial router: %w", err)
			}
			res.Non2xx++
			continue
		}
		if code != http.StatusOK {
			res.Non2xx++
			continue
		}
		if bytes.Contains(body, needleCacheHit) || bytes.Contains(body, needleCacheWarm) ||
			bytes.Contains(body, needleCacheSpec) || bytes.Contains(body, needleCacheReplica) {
			res.Warm++
		}
	}
	conn.Close()
	if ok := requests - res.Non2xx; ok > 0 {
		res.WarmFraction = float64(res.Warm) / float64(ok)
	}

	// Restore the fleet so post-probe telemetry reads a healthy cluster.
	if _, err := topo.RestartShard(victim); err != nil {
		return nil, fmt.Errorf("failover probe: restart shard %s: %w", victimID, err)
	}
	topo.Router().ProbeOnce()
	if st := topo.Router().Stats(); st.LiveShards != topo.Shards() {
		return nil, fmt.Errorf("failover probe: %d/%d shards live after restart", st.LiveShards, topo.Shards())
	}
	logf("failover probe: %d requests, %d non-2xx, warm fraction %.3f; %s restarted and rejoined\n",
		res.Requests, res.Non2xx, res.WarmFraction, victimID)
	return res, nil
}
