package loadgen

import (
	"path/filepath"
	"testing"

	"repro/internal/serve"
)

func TestParseLevels(t *testing.T) {
	got, err := ParseLevels(" 1, 2,16 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "0", "a", "1,,2", "1,-3"} {
		if _, err := ParseLevels(bad); err == nil {
			t.Fatalf("ParseLevels(%q) accepted", bad)
		}
	}
}

func TestScenarioConfigScales(t *testing.T) {
	for _, scale := range []string{"fast", "default", "full"} {
		if _, err := ScenarioConfig(1, scale); err != nil {
			t.Fatalf("scale %s: %v", scale, err)
		}
	}
	if _, err := ScenarioConfig(1, "huge"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestBuildReportAggregation(t *testing.T) {
	cold := &ColdResult{
		Clusters:     2,
		TrainNs:      []float64{100, 300},
		ClientMeanNs: 150,
	}
	levels := []LevelResult{
		{Concurrency: 1, Requests: 100, Throughput: 1000, P50: 50, P95: 80, P99: 90, HitRate: 1},
		{Concurrency: 8, Requests: 100, Throughput: 4000, P50: 70, P95: 120, P99: 400, HitRate: 0.5,
			Degraded: 10, NonOK: 25},
	}
	stats := serve.Stats{}
	stats.Cache.WarmStarts = 3
	stats.Cache.EarlyStops = 2
	stats.Cache.SpeculativeInstalls = 1
	stats.Cache.SpeculativeHits = 4
	rep := BuildReport(cold, levels, &stats, 0.97)
	if rep.WarmP50Ns != 50 || rep.WarmP95Ns != 80 {
		t.Fatalf("p50/p95 should be the best level's: %+v", rep)
	}
	if rep.WarmStarts != 3 || rep.EarlyStops != 2 || rep.SpeculativeInstalls != 1 || rep.SpeculativeHits != 4 {
		t.Fatalf("server counters not forwarded: %+v", rep)
	}
	if rep.ValueParity != 0.97 || rep.ColdTrainings != 2 {
		t.Fatalf("parity/cold trainings not recorded: %+v", rep)
	}
	if rep.WarmP99Ns != 400 {
		t.Fatalf("p99 should be the worst level's: %+v", rep)
	}
	if rep.BestThroughputRPS != 4000 {
		t.Fatalf("throughput should be the max: %+v", rep)
	}
	if rep.WarmHitRate != 0.75 {
		t.Fatalf("hit rate should be request-weighted: %+v", rep)
	}
	if rep.DegradedRate != 0.05 {
		t.Fatalf("degraded rate: %+v", rep)
	}
	if rep.NonOKRate != 25.0/225.0 {
		t.Fatalf("non-2xx rate: %+v", rep)
	}
	if rep.ColdTrainP50Ns != 200 {
		t.Fatalf("cold train p50: %+v", rep)
	}
	if rep.ColdOverWarmP99 != 0.5 {
		t.Fatalf("cold/warm ratio: %+v", rep)
	}
	if rep.SweptConcurrencies != 2 {
		t.Fatalf("swept levels: %+v", rep)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep := Report{GoVersion: "go-test", GOMAXPROCS: 4, WarmP99Ns: 123456, BestThroughputRPS: 9876.5}
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != rep {
		t.Fatalf("round trip: got %+v, want %+v", got, rep)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func TestResolveSlack(t *testing.T) {
	cases := []struct {
		flag float64
		env  string
		want float64
		bad  bool
	}{
		{flag: -1, env: "", want: DefaultGateSlack},
		{flag: 0.5, env: "9", want: 0.5}, // explicit flag beats env
		{flag: 0, env: "9", want: 0},     // zero is a valid explicit choice
		{flag: -1, env: "1.5", want: 1.5},
		{flag: -1, env: "nope", bad: true},
		{flag: -1, env: "-0.5", bad: true},
	}
	for _, c := range cases {
		got, err := ResolveSlack(c.flag, c.env)
		if c.bad {
			if err == nil {
				t.Fatalf("flag=%v env=%q: want error", c.flag, c.env)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Fatalf("flag=%v env=%q: got %v, %v; want %v", c.flag, c.env, got, err, c.want)
		}
	}
}

func TestGate(t *testing.T) {
	base := Report{WarmP99Ns: 1000, BestThroughputRPS: 10000}

	if v := Gate(Report{WarmP99Ns: 1250, BestThroughputRPS: 8000}, base, 0.25); len(v) != 0 {
		t.Fatalf("at-the-limit run should pass: %v", v)
	}
	v := Gate(Report{WarmP99Ns: 1300, BestThroughputRPS: 10000}, base, 0.25)
	if len(v) != 1 || v[0].Metric != "serve_warm_p99_ns" {
		t.Fatalf("p99 regression not caught: %v", v)
	}
	if v[0].String() == "" {
		t.Fatal("violation should render")
	}
	v = Gate(Report{WarmP99Ns: 900, BestThroughputRPS: 7000}, base, 0.25)
	if len(v) != 1 || v[0].Metric != "serve_best_throughput_rps" {
		t.Fatalf("throughput regression not caught: %v", v)
	}
	v = Gate(Report{WarmP99Ns: 5000, BestThroughputRPS: 100}, base, 0.25)
	if len(v) != 2 {
		t.Fatalf("double regression: %v", v)
	}
	// Wider slack (the noisy-runner override) forgives the same run.
	if v := Gate(Report{WarmP99Ns: 5000, BestThroughputRPS: 2500}, base, 4); len(v) != 0 {
		t.Fatalf("slack=4 should forgive 5x: %v", v)
	}
	// A baseline without the metric cannot gate it.
	if v := Gate(Report{WarmP99Ns: 1e9}, Report{}, 0.25); len(v) != 0 {
		t.Fatalf("empty baseline gated: %v", v)
	}

	// Cold-start training p50 is gated once a baseline records it.
	coldBase := Report{ColdTrainP50Ns: 40e6}
	if v := Gate(Report{ColdTrainP50Ns: 50e6}, coldBase, 0.25); len(v) != 0 {
		t.Fatalf("at-the-limit cold p50 should pass: %v", v)
	}
	v = Gate(Report{ColdTrainP50Ns: 51e6}, coldBase, 0.25)
	if len(v) != 1 || v[0].Metric != "serve_cold_train_p50_ns" {
		t.Fatalf("cold p50 regression not caught: %v", v)
	}
	// Pre-PR7 baselines lack the field and must not gate fresh sweeps.
	if v := Gate(Report{ColdTrainP50Ns: 1e12}, Report{WarmP99Ns: 1000}, 0.25); len(v) != 0 {
		t.Fatalf("missing cold baseline gated: %v", v)
	}
}

func TestClusterGateFailover(t *testing.T) {
	single := Report{WarmP99Ns: 1000, BestThroughputRPS: 10000}
	good := Report{
		GOMAXPROCS:                  1,
		WarmP99Ns:                   1000,
		BestThroughputRPS:           10000,
		ClusterFailoverRequests:     200,
		ClusterFailoverWarmFraction: 0.95,
	}
	if v := ClusterGate(good, single, 0.25); len(v) != 0 {
		t.Fatalf("healthy failover run should pass: %v", v)
	}

	low := good
	low.ClusterFailoverWarmFraction = 0.8
	v := ClusterGate(low, single, 0.25)
	if len(v) != 1 || v[0].Metric != "cluster_failover_warm_fraction" {
		t.Fatalf("cold failover not caught: %v", v)
	}
	// Slack is a latency tolerance; it must not forgive a cold failover.
	if v := ClusterGate(low, single, 4); len(v) != 1 {
		t.Fatalf("slack forgave a cold failover: %v", v)
	}

	dropped := good
	dropped.ClusterFailoverNon2xx = 3
	v = ClusterGate(dropped, single, 0.25)
	if len(v) != 1 || v[0].Metric != "cluster_failover_non2xx" {
		t.Fatalf("failover non-2xx not caught: %v", v)
	}

	// A sweep that never ran the probe (pre-PR9 record) is not gated on it.
	noProbe := good
	noProbe.ClusterFailoverRequests = 0
	noProbe.ClusterFailoverWarmFraction = 0
	if v := ClusterGate(noProbe, single, 0.25); len(v) != 0 {
		t.Fatalf("probe-less sweep gated on failover: %v", v)
	}
}

func TestBaselineOptionsShape(t *testing.T) {
	o := BaselineOptions(7)
	if o.Seed != 7 || o.Scale != "fast" || len(o.Levels) == 0 || o.Requests < 1 {
		t.Fatalf("degenerate baseline options: %+v", o)
	}
	if _, err := ScenarioConfig(o.Seed, o.Scale); err != nil {
		t.Fatal(err)
	}
}
