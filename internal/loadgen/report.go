package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/mathx"
	"repro/internal/serve"
)

// Report is the flat machine-readable record (the BENCH_PR*.json shape)
// committed as the serving baseline. Field names are load-bearing: the tail
// gate reads old baselines by these keys, so renaming one silently breaks
// every committed record.
type Report struct {
	GoVersion          string  `json:"go_version"`
	GOMAXPROCS         int     `json:"gomaxprocs"`
	ColdTrainP50Ns     float64 `json:"serve_cold_train_p50_ns"`
	ColdClientMeanNs   float64 `json:"serve_cold_client_mean_ns"`
	WarmP50Ns          float64 `json:"serve_warm_p50_ns"`
	WarmP95Ns          float64 `json:"serve_warm_p95_ns"`
	WarmP99Ns          float64 `json:"serve_warm_p99_ns"`
	WarmHitRate        float64 `json:"serve_warm_hit_rate"`
	BestThroughputRPS  float64 `json:"serve_best_throughput_rps"`
	ColdOverWarmP99    float64 `json:"serve_cold_train_over_warm_p99"`
	SweptConcurrencies int     `json:"serve_swept_concurrencies"`
	DegradedRate       float64 `json:"serve_degraded_rate"`
	NonOKRate          float64 `json:"serve_non2xx_rate"`
	// Cold-start collapse metrics (PR-7; zero in older baselines, which the
	// gate therefore skips). ValueParity is the worst captured-importance
	// ratio of the collapsed cold-start path against full-budget scratch
	// training across ParityWorlds seeded worlds; the counters are the
	// server's own transfer telemetry for the sweep.
	ColdTrainings       int     `json:"serve_cold_trainings,omitempty"`
	WarmStarts          int64   `json:"serve_warm_starts,omitempty"`
	EarlyStops          int64   `json:"serve_early_stops,omitempty"`
	SpeculativeInstalls int64   `json:"serve_speculative_installs,omitempty"`
	SpeculativeHits     int64   `json:"serve_speculative_hits,omitempty"`
	ValueParity         float64 `json:"serve_value_parity,omitempty"`
	// Cluster scale-out metrics (PR-8; absent in single-node records). A
	// record with ClusterShards > 0 was measured through the router, so its
	// latency/throughput numbers include the proxy hop.
	ClusterShards     int   `json:"cluster_shards,omitempty"`
	ClusterRetries    int64 `json:"cluster_retries,omitempty"`
	ClusterRebalances int64 `json:"cluster_rebalances,omitempty"`
	// Replica-group metrics (PR-9; absent in older cluster records). The
	// failover fields come from the post-sweep warm-failover probe: kill the
	// busiest primary, drive its ranges, record what fraction of the
	// successful answers were served from a resident policy.
	ClusterReplicationPushes    int64   `json:"cluster_replication_pushes,omitempty"`
	ClusterReplicationDropped   int64   `json:"cluster_replication_dropped,omitempty"`
	ClusterFailoverRequests     int     `json:"cluster_failover_requests,omitempty"`
	ClusterFailoverNon2xx       int     `json:"cluster_failover_non2xx,omitempty"`
	ClusterFailoverWarmFraction float64 `json:"cluster_failover_warm_fraction,omitempty"`
	// Gossip membership metrics (PR-10; absent in older records). The
	// convergence number comes from the post-sweep membership probe: kill a
	// shard cold and time how long until every surviving agent's view agrees
	// on the obituary (one epoch, one digest). The counters are the fleet's
	// summed SWIM telemetry at probe end.
	ClusterMembershipEpoch uint64  `json:"cluster_membership_epoch,omitempty"`
	ClusterSuspects        int64   `json:"cluster_suspects_declared,omitempty"`
	ClusterRefutations     int64   `json:"cluster_refutations,omitempty"`
	ClusterDeadConfirmed   int64   `json:"cluster_dead_confirmed,omitempty"`
	ClusterKillConvergedNs float64 `json:"cluster_kill_converged_ns,omitempty"`
}

// BuildReport folds the per-level aggregates into the flat record. The
// per-request samples are gone by now, so the warm quantiles are derived
// conservatively from the per-level numbers: p99 is the WORST level's p99,
// p50/p95 the best level's, throughput the max. stats (may be nil) adds the
// server's cold-start transfer counters; parity > 0 records the value-parity
// measurement.
func BuildReport(cold *ColdResult, results []LevelResult, stats *serve.Stats, parity float64) Report {
	rep := Report{
		GoVersion:          runtime.Version(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		SweptConcurrencies: len(results),
		ValueParity:        parity,
	}
	if cold != nil {
		rep.ColdTrainP50Ns = mathx.Quantile(cold.TrainNs, 0.5)
		rep.ColdClientMeanNs = cold.ClientMeanNs
		rep.ColdTrainings = cold.Clusters
	}
	if stats != nil {
		rep.WarmStarts = stats.Cache.WarmStarts
		rep.EarlyStops = stats.Cache.EarlyStops
		rep.SpeculativeInstalls = stats.Cache.SpeculativeInstalls
		rep.SpeculativeHits = stats.Cache.SpeculativeHits
	}
	var total, hits, degraded, nonOK float64
	for i, r := range results {
		if i == 0 || r.P50 < rep.WarmP50Ns {
			rep.WarmP50Ns = r.P50
		}
		if i == 0 || r.P95 < rep.WarmP95Ns {
			rep.WarmP95Ns = r.P95
		}
		if r.P99 > rep.WarmP99Ns {
			rep.WarmP99Ns = r.P99
		}
		if r.Throughput > rep.BestThroughputRPS {
			rep.BestThroughputRPS = r.Throughput
		}
		total += float64(r.Requests)
		hits += r.HitRate * float64(r.Requests)
		degraded += float64(r.Degraded)
		nonOK += float64(r.NonOK)
	}
	if total > 0 {
		rep.WarmHitRate = hits / total
		rep.DegradedRate = degraded / total
		rep.NonOKRate = nonOK / (total + nonOK)
	}
	if rep.WarmP99Ns > 0 {
		rep.ColdOverWarmP99 = rep.ColdTrainP50Ns / rep.WarmP99Ns
	}
	return rep
}

// WriteReport writes the record as indented JSON.
func WriteReport(path string, rep Report) error {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(path, blob, 0o644)
}

// LoadReport reads a committed baseline record.
func LoadReport(path string) (Report, error) {
	var rep Report
	blob, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
