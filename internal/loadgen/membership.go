package loadgen

import (
	"fmt"
	"time"

	"repro/internal/cluster"
)

// ConvergenceResult is the membership probe's aggregate: how long the
// gossip plane took to converge every surviving view on a kill, and then on
// the victim's re-admission.
type ConvergenceResult struct {
	// VictimID is the killed shard's member id.
	VictimID string
	// KillConverged is kill → every live agent agrees the victim is dead on
	// one (epoch, digest). This is the failure-detection window the cluster
	// gate bounds.
	KillConverged time.Duration
	// RejoinConverged is restart → every view agrees the victim is alive
	// again (its refuted incarnation included).
	RejoinConverged time.Duration
	// Epoch is the fleet's converged membership epoch after the probe.
	Epoch uint64
	// Protocol counters summed across every live agent at probe end.
	Suspects      int64
	Refutations   int64
	DeadConfirmed int64
}

// ConvergenceProbe measures the membership plane on a live in-process
// cluster: kill one shard cold (its agent stops gossiping — survivors must
// detect the death, not be told), wait for every surviving view to converge
// on the obituary, then restart the victim and wait for the fleet to
// re-converge on its refuted, re-admitted self.
func ConvergenceProbe(topo *cluster.LocalCluster, timeout time.Duration, logf func(format string, args ...any)) (*ConvergenceResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if topo.RouterAgent() == nil {
		return nil, fmt.Errorf("membership probe: gossip plane disabled")
	}
	victim := topo.Shards() - 1
	id := topo.ShardID(victim)
	if err := topo.KillShard(victim); err != nil {
		return nil, fmt.Errorf("membership probe: kill %s: %w", id, err)
	}
	killDt, ok := topo.AwaitConverged(timeout, func(v cluster.View) bool {
		m, found := v.Find(id)
		return found && m.State == cluster.StateDead
	})
	if !ok {
		_, _ = topo.RestartShard(victim)
		return nil, fmt.Errorf("membership probe: views did not converge on %s dead within %v", id, timeout)
	}
	res := &ConvergenceResult{VictimID: id, KillConverged: killDt}

	if _, err := topo.RestartShard(victim); err != nil {
		return nil, fmt.Errorf("membership probe: restart %s: %w", id, err)
	}
	rejoinDt, ok := topo.AwaitConverged(timeout, func(v cluster.View) bool {
		m, found := v.Find(id)
		return found && m.State == cluster.StateAlive
	})
	if !ok {
		return nil, fmt.Errorf("membership probe: views did not converge on %s re-admitted within %v", id, timeout)
	}
	res.RejoinConverged = rejoinDt

	for _, a := range topo.LiveAgents() {
		ms := a.MembershipStats()
		res.Suspects += ms.SuspectsDeclared
		res.Refutations += ms.Refutations
		res.DeadConfirmed += ms.DeadConfirmed
	}
	res.Epoch = topo.RouterAgent().Epoch()
	topo.Router().ProbeOnce()
	logf("membership probe: %s dead-converged in %s, alive-converged after restart in %s (epoch %d; %d suspects, %d refutations, %d dead-confirms fleet-wide)\n",
		id, res.KillConverged.Round(time.Millisecond), res.RejoinConverged.Round(time.Millisecond),
		res.Epoch, res.Suspects, res.Refutations, res.DeadConfirmed)
	return res, nil
}
