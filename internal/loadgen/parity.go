package loadgen

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/serve"
)

// ParityResult is one world's value-parity measurement: the total captured
// importance of the collapsed cold-start path (neighbour warm-start +
// early stopping, the serving defaults) against a reference trained from
// scratch on the full episode budget.
type ParityResult struct {
	Seed    int64
	Scratch float64 // total captured importance, full-budget reference
	Fast    float64 // total captured importance, collapsed path
	Ratio   float64 // Fast / Scratch (1.0 = no transfer loss)
}

// ValueParity builds one world and replays its evaluation signatures through
// the CRL policy path of two in-process servers — full-budget scratch
// training versus the collapsed cold-start pipeline — and compares the total
// captured importance. The allocation requests force the CRL allocator so
// the comparison exercises the trained DQNs rather than the local process.
func ValueParity(seed int64, scale string, neighborhood int) (ParityResult, error) {
	scnCfg, err := ScenarioConfig(seed, scale)
	if err != nil {
		return ParityResult{}, err
	}
	scn, err := dcta.NewScenario(scnCfg)
	if err != nil {
		return ParityResult{}, fmt.Errorf("parity scenario seed %d: %w", seed, err)
	}
	wl, err := BuildWorkload(scn)
	if err != nil {
		return ParityResult{}, err
	}
	run := func(collapsed bool) (float64, error) {
		cfg := serve.DefaultConfig()
		cfg.ClusterNeighborhood = neighborhood
		cfg.Seed = seed
		cfg.CRL.Episodes = scnCfg.CRLEpisodes
		if !collapsed {
			cfg.DisableWarmStart = true
			cfg.CRL.StopWindow = -1 // burn the full budget: the reference
		}
		s, err := serve.NewServer(scn.Template, scn.Store, scn.Local, cfg)
		if err != nil {
			return 0, err
		}
		var total float64
		for _, req := range wl.Allocs {
			req.Allocator = "crl"
			resp, err := s.Allocate(context.Background(), req)
			if err != nil {
				return 0, err
			}
			total += resp.PredictedImportance
		}
		return total, nil
	}
	res := ParityResult{Seed: seed, Ratio: 1}
	if res.Scratch, err = run(false); err != nil {
		return res, fmt.Errorf("parity scratch run seed %d: %w", seed, err)
	}
	if res.Fast, err = run(true); err != nil {
		return res, fmt.Errorf("parity collapsed run seed %d: %w", seed, err)
	}
	if res.Scratch > 0 {
		res.Ratio = res.Fast / res.Scratch
	}
	return res, nil
}

// WorstParity measures ValueParity across `worlds` consecutive seeds and
// returns the minimum ratio — the number committed as serve_value_parity.
func WorstParity(seed int64, worlds int, scale string, neighborhood int,
	logf func(format string, args ...any)) (float64, error) {
	worst := 1.0
	for i := 0; i < worlds; i++ {
		r, err := ValueParity(seed+int64(i), scale, neighborhood)
		if err != nil {
			return 0, err
		}
		if logf != nil {
			logf("parity: seed %d  scratch %.4f  collapsed %.4f  ratio %.4f\n",
				r.Seed, r.Scratch, r.Fast, r.Ratio)
		}
		if r.Ratio < worst {
			worst = r.Ratio
		}
	}
	return worst, nil
}
