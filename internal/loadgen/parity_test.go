package loadgen

import "testing"

// TestValueParityWithinFivePercent is the transfer-quality acceptance bar:
// across three seeded worlds, the collapsed cold-start pipeline (neighbour
// warm-start + early stopping on a fraction of the episode budget) must
// capture at least 95% of the importance a full-budget scratch training
// captures on the same evaluation signatures.
func TestValueParityWithinFivePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("trains full-budget scratch reference policies")
	}
	worst, err := WorstParity(1, 3, "fast", 5, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if worst < 0.95 {
		t.Fatalf("worst value parity %.4f, want ≥ 0.95", worst)
	}
}
