// Package loadgen is the closed-loop load harness behind cmd/dcta-load and
// the tail-latency regression gate in cmd/dcta-bench. It builds the same
// experimental world as dcta-server, replays its held-out evaluation epochs
// as allocate (and periodic feedback) requests, sweeps a list of concurrency
// levels, and aggregates client-observed latency, throughput and hit rate
// into the flat BENCH_PR*.json record committed as the serving baseline.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/mathx"
	"repro/internal/serve"
)

// Options selects the world, the workload and the sweep shape for one run.
type Options struct {
	// Addr is an external server address; empty runs an in-process server
	// on a loopback port.
	Addr string
	// Scale is the scenario scale: fast, default or full.
	Scale string
	// Seed is the scenario seed (must match the server's for meaningful
	// requests when driving an external server).
	Seed int64
	// Levels are the concurrency levels to sweep, in order.
	Levels []int
	// Requests is the allocate budget per concurrency level.
	Requests int
	// FeedbackEvery posts a feedback request after every Nth allocate
	// (0 disables feedback entirely).
	FeedbackEvery int
	// Neighborhood is the in-process server's stored environments per
	// cluster sub-store.
	Neighborhood int
	// CRLEpisodes overrides the in-process server's per-cluster CRL
	// episodes (0 uses the scale default).
	CRLEpisodes int
	// DisableWarmStart turns off the in-process server's neighbour
	// warm-start (cold clusters then always train from scratch).
	DisableWarmStart bool
	// Speculate sets the in-process server's SpeculateNeighbors: after each
	// demand training, pre-train up to this many predicted-next clusters on
	// idle gate capacity (0 disables).
	Speculate int
	// PrioritizedReplay enables TD-error-prioritized experience replay
	// (α=0.6) in the in-process server's DQN trainings.
	PrioritizedReplay bool
	// Shards, when positive, replaces the single in-process server with an
	// in-process Shards-replica cluster fronted by the consistent-hash
	// router (the dcta-load -shards mode); the sweep then drives the router
	// and the report carries per-shard and rebalance telemetry. Ignored
	// when Addr points at an external server.
	Shards int
	// FailoverRequests, when positive in cluster mode, appends a warm-failover
	// probe after the level sweeps: replication settles, the shard
	// primary-owning the most workload keys is killed, this many allocates are
	// driven at its ranges, and the warm fraction of the answers is recorded
	// (then the victim restarts and rejoins). Ignored single-node.
	FailoverRequests int
	// ParityWorlds, when positive, appends a value-parity measurement over
	// this many consecutive seeds (see WorstParity) to the report.
	ParityWorlds int
	// Logf receives human-readable progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// BaselineOptions is the canonical sweep used to produce the committed
// BENCH_PR*.json baselines. The CI tail gate re-runs exactly this shape
// (same seed, scale, levels and budgets) so its numbers are comparable with
// the committed record — change it and the baseline must be regenerated.
//
// The shape is deliberately conservative for 1–2 core hosts: it sweeps only
// to concurrency 4 and posts no feedback. Beyond ~4 always-runnable workers
// on a single core, the closed loop measures the kernel's run-queue
// timeslicing (milliseconds per descheduled period), not the server; and
// feedback triggers local-model refits whose cost belongs to the write
// path, not the warm-read tail this baseline pins. Wider sweeps remain
// available via dcta-load's -levels/-feedback-every flags.
func BaselineOptions(seed int64) Options {
	return Options{
		Scale:        "fast",
		Seed:         seed,
		Levels:       []int{1, 2, 4},
		Requests:     2500,
		Neighborhood: 5,
		ParityWorlds: 3,
	}
}

// ClusterBaselineOptions is the canonical scale-out sweep behind
// BENCH_PR9.json and the CI cluster gate: the BaselineOptions shape driven
// through a 3-shard + router topology, ending with the 200-request
// warm-failover probe. Value parity is skipped — it is a single-node
// training property already pinned by the single-node gate.
func ClusterBaselineOptions(seed int64) Options {
	o := BaselineOptions(seed)
	o.Shards = 3
	o.ParityWorlds = 0
	o.FailoverRequests = 200
	return o
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// ParseLevels parses a comma-separated concurrency list ("1,2,4,8").
func ParseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no concurrency levels")
	}
	return out, nil
}

// ScenarioConfig maps a -scale preset to a scenario configuration, mirroring
// dcta-bench's figure presets.
func ScenarioConfig(seed int64, scale string) (dcta.ScenarioConfig, error) {
	cfg := dcta.DefaultScenarioConfig(seed)
	switch scale {
	case "fast":
		cfg.Years = 1
		cfg.Tasks = 24
		cfg.HistoryContexts = 20
		cfg.EvalContexts = 4
		cfg.Workers = 5
		cfg.CRLEpisodes = 10
	case "default":
	case "full":
		cfg.Years = 4
		cfg.StepHours = 1
		cfg.HistoryContexts = 120
		cfg.EvalContexts = 24
		cfg.CRLEpisodes = 150
	default:
		return cfg, fmt.Errorf("unknown scale %q (fast, default, full)", scale)
	}
	return cfg, nil
}

// Workload is the precomputed request population: one entry per evaluation
// epoch, replayed round-robin by the closed-loop workers. Allocate requests
// are preassembled into complete HTTP frames so the hot loop never touches
// the JSON encoder.
type Workload struct {
	Allocs      []serve.AllocateRequest
	AllocFrames [][]byte                // full POST /v1/allocate frames
	Feedbacks   []serve.FeedbackRequest // allocation filled in per response
}

// BuildWorkload extracts the allocate/feedback request pairs from a
// scenario's held-out evaluation epochs.
func BuildWorkload(scn *dcta.Scenario) (*Workload, error) {
	w := &Workload{}
	for _, ep := range scn.Eval {
		vecs, err := scn.Extractor.Vectors(ep.FeatureCtx)
		if err != nil {
			return nil, fmt.Errorf("features: %w", err)
		}
		req := serve.AllocateRequest{
			Signature: ep.Signature,
			Features:  vecs,
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("encode allocate: %w", err)
		}
		w.Allocs = append(w.Allocs, req)
		w.AllocFrames = append(w.AllocFrames, BuildFrame("/v1/allocate", body))
		w.Feedbacks = append(w.Feedbacks, serve.FeedbackRequest{
			Signature: ep.Signature,
			Features:  vecs,
		})
	}
	if len(w.Allocs) == 0 {
		return nil, fmt.Errorf("scenario has no evaluation epochs")
	}
	return w, nil
}

// LevelResult is one concurrency level's aggregate.
type LevelResult struct {
	Concurrency int
	Requests    int
	Throughput  float64 // allocates per second
	P50, P95    float64 // ns
	P99, Max    float64 // ns
	HitRate     float64 // (hit+warm) / requests
	Degraded    int     // 200s answered by the fallback path
	NonOK       int     // non-2xx responses (should be zero)
}

// ColdResult is the sequential cold sweep's aggregate.
type ColdResult struct {
	Clusters     int
	TrainNs      []float64 // server-reported training time per cold cluster
	SpecHits     int       // sweep requests answered by a pre-trained policy
	ClientP50Ns  float64
	ClientMeanNs float64
}

// Result bundles one full run: the cold sweep, every level's aggregate and
// the flat report derived from them.
type Result struct {
	Cold   *ColdResult
	Levels []LevelResult
	Report Report
	// Router is the routing tier's final telemetry in cluster mode (nil for
	// single-node runs).
	Router *cluster.RouterStats
	// Failover is the warm-failover probe's aggregate (nil unless cluster
	// mode ran with FailoverRequests > 0).
	Failover *FailoverResult
	// Membership is the gossip-convergence probe's aggregate (nil unless
	// cluster mode ran the probes with the gossip plane enabled).
	Membership *ConvergenceResult
}

// Run executes the two-phase sweep described by opts: build the world,
// start (or dial) the server, pay the cold training costs sequentially,
// then run one closed loop per concurrency level.
func Run(opts Options) (*Result, error) {
	if len(opts.Levels) == 0 {
		return nil, fmt.Errorf("no concurrency levels")
	}
	if opts.Requests < 1 {
		return nil, fmt.Errorf("requests per level must be positive")
	}
	scnCfg, err := ScenarioConfig(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	opts.logf("building scenario (seed=%d scale=%s: %d tasks, %d workers, %d stored environments)...\n",
		opts.Seed, opts.Scale, scnCfg.Tasks, scnCfg.Workers, scnCfg.HistoryContexts)
	scn, err := dcta.NewScenario(scnCfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	wl, err := BuildWorkload(scn)
	if err != nil {
		return nil, err
	}

	base := opts.Addr
	var topo *cluster.LocalCluster
	if base == "" {
		cfg := serve.DefaultConfig()
		cfg.ClusterNeighborhood = opts.Neighborhood
		cfg.Seed = opts.Seed
		cfg.CRL.Episodes = opts.CRLEpisodes
		if cfg.CRL.Episodes < 1 {
			cfg.CRL.Episodes = scnCfg.CRLEpisodes
		}
		cfg.DisableWarmStart = opts.DisableWarmStart
		cfg.SpeculateNeighbors = opts.Speculate
		if opts.PrioritizedReplay {
			cfg.CRL.DQN.PrioritizedReplay = true
			cfg.CRL.DQN.PriorityAlpha = 0.6
		}
		if opts.Shards > 0 {
			var err error
			topo, err = cluster.StartLocal(scn.Template, scn.Store, scn.Local, cluster.LocalOptions{
				Shards: opts.Shards,
				Serve:  cfg,
				Logf:   opts.Logf,
			})
			if err != nil {
				return nil, fmt.Errorf("in-process cluster: %w", err)
			}
			defer topo.Close()
			base = topo.Addr()
			opts.logf("in-process %d-shard cluster, router on %s\n", opts.Shards, base)
		} else {
			s, err := serve.NewServer(scn.Template, scn.Store, scn.Local, cfg)
			if err != nil {
				return nil, err
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ready := make(chan string, 1)
			errc := make(chan error, 1)
			go func() {
				errc <- serve.ListenAndServe(ctx, "127.0.0.1:0", s, serve.HTTPOptions{},
					func(a net.Addr) { ready <- a.String() })
			}()
			select {
			case a := <-ready:
				base = a
				opts.logf("in-process server on %s\n", base)
			case err := <-errc:
				return nil, fmt.Errorf("in-process server: %w", err)
			}
			defer func() {
				cancel()
				<-errc
			}()
		}
	}
	cold, err := ColdSweep(base, wl)
	if err != nil {
		return nil, err
	}
	opts.logf("cold sweep: %d distinct signatures, %d policy trainings (%d pre-trained), train p50 %s, client mean %s\n",
		len(wl.Allocs), cold.Clusters, cold.SpecHits, Ns(mathx.Quantile(cold.TrainNs, 0.5)), Ns(cold.ClientMeanNs))

	var results []LevelResult
	for _, c := range opts.Levels {
		r, err := RunLevel(base, wl, c, opts.Requests, opts.FeedbackEvery)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
		total := r.Requests + r.NonOK
		opts.logf("c=%-3d  %8.0f req/s  p50 %-10s p95 %-10s p99 %-10s max %-10s hit %.1f%%  degraded %.1f%%  non-2xx %.1f%%\n",
			r.Concurrency, r.Throughput, Ns(r.P50), Ns(r.P95), Ns(r.P99), Ns(r.Max), r.HitRate*100,
			100*float64(r.Degraded)/float64(max(1, r.Requests)), 100*float64(r.NonOK)/float64(max(1, total)))
	}

	// The server-side cold-start counters (warm starts, early stops,
	// speculation) ride along in the report so operators can see transfer
	// efficacy next to the latency numbers. In cluster mode they are summed
	// across the shards — snapshotted before the failover probe, whose victim
	// restart would zero that shard's counters — and the router's per-shard
	// ledger is reported so a scale-out run is observable end to end.
	var stats serve.Stats
	if topo != nil {
		stats = sumShardStats(topo)
	}

	// In cluster mode, the warm-failover probe runs after the level sweeps:
	// kill the busiest primary and measure how much of its traffic the
	// replica answers warm.
	var failover *FailoverResult
	if topo != nil && opts.FailoverRequests > 0 {
		failover, err = FailoverProbe(topo, scn.Store, wl, opts.FailoverRequests, opts.Logf)
		if err != nil {
			return nil, fmt.Errorf("failover probe: %w", err)
		}
	}

	// The membership probe rides the same cluster-probes knob: kill a shard
	// cold and time how long the gossip plane takes to converge every
	// surviving view on the death, then on the rejoin.
	var membership *ConvergenceResult
	if topo != nil && opts.FailoverRequests > 0 && topo.RouterAgent() != nil {
		membership, err = ConvergenceProbe(topo, 15*time.Second, opts.Logf)
		if err != nil {
			return nil, fmt.Errorf("membership probe: %w", err)
		}
	}

	var routerStats *cluster.RouterStats
	if topo != nil {
		rs := topo.Router().Stats()
		routerStats = &rs
		for _, sc := range rs.Shards {
			opts.logf("shard %s (%s): proxied %d (hit %d, degraded %d, non-2xx %d, io-errors %d), alive=%v, owns %.1f%% of the ring\n",
				sc.ID, sc.Addr, sc.Proxied, sc.Hits, sc.Degraded, sc.NonOK, sc.IOErrors, sc.Alive, sc.OwnedFraction*100)
		}
		opts.logf("router: %d requests, %d retries, %d ejections, %d rejoins, %d rebalances, %d no-shard 503s\n",
			rs.Requests, rs.Retries, rs.Ejections, rs.Rejoins, rs.Rebalances, rs.NoShard503s)
		if rs.Membership != nil {
			opts.logf("membership: epoch %d, %d/%d members alive (%d suspect, %d dead), %d gossip joins, %d refutations seen\n",
				rs.Membership.Epoch, rs.Membership.Alive, rs.Membership.Members,
				rs.Membership.Suspect, rs.Membership.Dead, rs.GossipJoins, rs.Membership.Refutations)
		}
	} else {
		stats, err = FetchStats(base)
		if err != nil {
			return nil, fmt.Errorf("stats: %w", err)
		}
	}
	opts.logf("server: %d trainings (%d warm-started, %d early-stopped), speculation %d trained / %d installed / %d hit\n",
		stats.Cache.Trainings, stats.Cache.WarmStarts, stats.Cache.EarlyStops,
		stats.Cache.SpeculativeTrainings, stats.Cache.SpeculativeInstalls, stats.Cache.SpeculativeHits)

	parity := 0.0
	if opts.ParityWorlds > 0 {
		if parity, err = WorstParity(opts.Seed, opts.ParityWorlds, opts.Scale, opts.Neighborhood, opts.Logf); err != nil {
			return nil, err
		}
		opts.logf("value parity: worst ratio %.4f over %d worlds (collapsed cold-start vs full-budget scratch)\n",
			parity, opts.ParityWorlds)
	}

	rep := BuildReport(cold, results, &stats, parity)
	if routerStats != nil {
		rep.ClusterShards = opts.Shards
		rep.ClusterRetries = routerStats.Retries
		rep.ClusterRebalances = routerStats.Rebalances
		if stats.Replication != nil {
			rep.ClusterReplicationPushes = stats.Replication.Pushes
			rep.ClusterReplicationDropped = stats.Replication.Dropped
		}
		if failover != nil {
			rep.ClusterFailoverRequests = failover.Requests
			rep.ClusterFailoverNon2xx = failover.Non2xx
			rep.ClusterFailoverWarmFraction = failover.WarmFraction
		}
		if membership != nil {
			rep.ClusterMembershipEpoch = membership.Epoch
			rep.ClusterSuspects = membership.Suspects
			rep.ClusterRefutations = membership.Refutations
			rep.ClusterDeadConfirmed = membership.DeadConfirmed
			rep.ClusterKillConvergedNs = float64(membership.KillConverged.Nanoseconds())
		}
	}
	return &Result{Cold: cold, Levels: results, Report: rep, Router: routerStats, Failover: failover, Membership: membership}, nil
}

// sumShardStats folds every shard's serve counters into one aggregate view
// (the fields the report and the progress log consume).
func sumShardStats(topo *cluster.LocalCluster) serve.Stats {
	var agg serve.Stats
	for i := 0; i < topo.Shards(); i++ {
		s := topo.Server(i)
		if s == nil {
			continue
		}
		st := s.Stats()
		agg.Allocates += st.Allocates
		agg.DegradedCount += st.DegradedCount
		agg.Feedbacks += st.Feedbacks
		agg.Cache.Trainings += st.Cache.Trainings
		agg.Cache.WarmStarts += st.Cache.WarmStarts
		agg.Cache.EarlyStops += st.Cache.EarlyStops
		agg.Cache.SpeculativeTrainings += st.Cache.SpeculativeTrainings
		agg.Cache.SpeculativeInstalls += st.Cache.SpeculativeInstalls
		agg.Cache.SpeculativeHits += st.Cache.SpeculativeHits
		agg.Cache.ReplicaInstalls += st.Cache.ReplicaInstalls
		agg.Cache.ReplicaHits += st.Cache.ReplicaHits
		if rs := st.Replication; rs != nil {
			if agg.Replication == nil {
				agg.Replication = &serve.ReplicationStats{}
			}
			agg.Replication.Enqueued += rs.Enqueued
			agg.Replication.Pushes += rs.Pushes
			agg.Replication.Dropped += rs.Dropped
			agg.Replication.Errors += rs.Errors
		}
	}
	return agg
}

// FetchStats retrieves the server's /v1/stats counters.
func FetchStats(addr string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: HTTP %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// ColdSweep touches every distinct evaluation signature once, sequentially,
// recording the server-reported training time of each cluster it warms.
func ColdSweep(addr string, wl *Workload) (*ColdResult, error) {
	conn, err := DialFast(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	cold := &ColdResult{}
	var lats []float64
	for i := range wl.AllocFrames {
		start := time.Now()
		code, body, err := conn.Do(wl.AllocFrames[i])
		if err != nil {
			return nil, fmt.Errorf("cold allocate %d: %w", i, err)
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("cold allocate %d: HTTP %d", i, code)
		}
		var resp serve.AllocateResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			return nil, fmt.Errorf("cold allocate %d: %w", i, err)
		}
		lats = append(lats, float64(time.Since(start).Nanoseconds()))
		if resp.TrainNanos > 0 {
			cold.Clusters++
			cold.TrainNs = append(cold.TrainNs, float64(resp.TrainNanos))
		}
		if resp.Cache == serve.CacheSpeculative {
			cold.SpecHits++
		}
	}
	cold.ClientP50Ns = mathx.Quantile(lats, 0.5)
	cold.ClientMeanNs = mathx.Mean(lats)
	return cold, nil
}

// Response-classification needles. The warm loop must not pay a full JSON
// decode per response (on a small host the decoder would cost more than the
// server's entire warm path), so outcomes are classified by scanning for
// the serialized fields. The compile-time checks below pin the constants
// these needles are built from; TestNeedlesMatchWire pins the wire format.
var (
	needleCacheHit     = []byte(`"cache":"` + serve.CacheHit + `"`)
	needleCacheWarm    = []byte(`"cache":"` + serve.CacheWarm + `"`)
	needleCacheSpec    = []byte(`"cache":"` + serve.CacheSpeculative + `"`)
	needleCacheReplica = []byte(`"cache":"` + serve.CacheReplica + `"`)
	needleDegraded     = []byte(`"mode":"` + serve.ModeDegraded + `"`)
)

// RunLevel runs one closed-loop phase: `concurrency` workers each looping
// allocate (plus every-Nth feedback) until the shared request budget
// drains. Every worker owns a private connection and private stat counters;
// the only shared state is the atomic ticket counter, so the harness itself
// adds no lock contention to the measurement.
func RunLevel(addr string, wl *Workload, concurrency, requests, feedbackNth int) (LevelResult, error) {
	type workerStats struct {
		lats     []float64
		hits     int
		degraded int
		nonOK    int
		err      error
	}
	var next atomic.Int64
	stats := make([]workerStats, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(st *workerStats) {
			defer wg.Done()
			conn, err := DialFast(addr)
			if err != nil {
				st.err = err
				return
			}
			defer conn.Close()
			st.lats = make([]float64, 0, requests/concurrency+1)
			var fbResp struct {
				Allocation []int `json:"allocation"`
			}
			var fbBody, fbFrame []byte
			for {
				ticket := int(next.Add(1)) - 1
				if ticket >= requests {
					return
				}
				t0 := time.Now()
				code, body, err := conn.Do(wl.AllocFrames[ticket%len(wl.AllocFrames)])
				if err != nil {
					st.err = fmt.Errorf("allocate: %w", err)
					return
				}
				if code != http.StatusOK {
					st.nonOK++
					continue
				}
				st.lats = append(st.lats, float64(time.Since(t0).Nanoseconds()))
				if bytes.Contains(body, needleCacheHit) || bytes.Contains(body, needleCacheWarm) ||
					bytes.Contains(body, needleCacheSpec) || bytes.Contains(body, needleCacheReplica) {
					st.hits++
				}
				if bytes.Contains(body, needleDegraded) {
					st.degraded++
				}
				if feedbackNth > 0 && ticket%feedbackNth == feedbackNth-1 {
					fbResp.Allocation = fbResp.Allocation[:0]
					if err := json.Unmarshal(body, &fbResp); err != nil {
						st.err = fmt.Errorf("decode allocate: %w", err)
						return
					}
					fb := wl.Feedbacks[ticket%len(wl.Feedbacks)]
					fb.Allocation = fbResp.Allocation
					fbBody, err = json.Marshal(fb)
					if err != nil {
						st.err = fmt.Errorf("encode feedback: %w", err)
						return
					}
					fbFrame = AppendFrame(fbFrame, "/v1/feedback", fbBody)
					code, _, err := conn.Do(fbFrame)
					if err != nil {
						st.err = fmt.Errorf("feedback: %w", err)
						return
					}
					if code != http.StatusOK {
						st.nonOK++
					}
				}
			}
		}(&stats[w])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	var lats []float64
	var hits, degraded, nonOK int
	for i := range stats {
		if stats[i].err != nil {
			return LevelResult{}, stats[i].err
		}
		lats = append(lats, stats[i].lats...)
		hits += stats[i].hits
		degraded += stats[i].degraded
		nonOK += stats[i].nonOK
	}
	if len(lats) == 0 {
		return LevelResult{}, fmt.Errorf("level %d: no successful requests", concurrency)
	}
	return LevelResult{
		Concurrency: concurrency,
		Requests:    len(lats),
		Throughput:  float64(len(lats)) / elapsed,
		P50:         mathx.Quantile(lats, 0.50),
		P95:         mathx.Quantile(lats, 0.95),
		P99:         mathx.Quantile(lats, 0.99),
		Max:         mathx.Quantile(lats, 1),
		HitRate:     float64(hits) / float64(len(lats)),
		Degraded:    degraded,
		NonOK:       nonOK,
	}, nil
}

// Ns renders a nanosecond float as a human duration.
func Ns(v float64) string { return time.Duration(v).String() }
