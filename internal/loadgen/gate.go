package loadgen

import (
	"fmt"
	"strconv"
)

// DefaultGateSlack is the tail gate's default tolerance: a fresh sweep may
// regress the committed baseline's warm p99 (or throughput) by at most 25%
// before the gate fails. Noisy shared runners can widen it via the
// -gate-slack flag or the DCTA_BENCH_GATE_SLACK environment variable.
const DefaultGateSlack = 0.25

// ResolveSlack picks the effective gate tolerance. Precedence: an explicit
// non-negative flag value wins; otherwise a non-empty env value (the
// documented DCTA_BENCH_GATE_SLACK override for noisy runners); otherwise
// DefaultGateSlack. Pass the flag's sentinel default (any negative number)
// to mean "not set".
func ResolveSlack(flagVal float64, env string) (float64, error) {
	if flagVal >= 0 {
		return flagVal, nil
	}
	if env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad DCTA_BENCH_GATE_SLACK %q: want a non-negative fraction like 0.25", env)
		}
		return v, nil
	}
	return DefaultGateSlack, nil
}

// GateViolation is one failed baseline comparison.
type GateViolation struct {
	Metric   string  // json key of the regressed metric
	Baseline float64 // committed value
	Current  float64 // fresh sweep's value
	Limit    float64 // the worst value the slack allowed
}

func (v GateViolation) String() string {
	return fmt.Sprintf("%s regressed: baseline %.0f, current %.0f, limit %.0f",
		v.Metric, v.Baseline, v.Current, v.Limit)
}

// Gate compares a fresh sweep against the committed baseline and returns the
// violated limits (empty = pass). Three guarantees are enforced: warm p99
// may not exceed baseline×(1+slack), best throughput may not fall below
// baseline/(1+slack), and the cold-start training p50 may not exceed
// baseline×(1+slack) — the PR-7 cold-start collapse is a gated property,
// not just a one-off number. Baseline fields that are zero or missing are
// skipped — an old record without a metric cannot gate it.
func Gate(current, baseline Report, slack float64) []GateViolation {
	var out []GateViolation
	if baseline.ColdTrainP50Ns > 0 {
		limit := baseline.ColdTrainP50Ns * (1 + slack)
		if current.ColdTrainP50Ns > limit {
			out = append(out, GateViolation{
				Metric:   "serve_cold_train_p50_ns",
				Baseline: baseline.ColdTrainP50Ns,
				Current:  current.ColdTrainP50Ns,
				Limit:    limit,
			})
		}
	}
	if baseline.WarmP99Ns > 0 {
		limit := baseline.WarmP99Ns * (1 + slack)
		if current.WarmP99Ns > limit {
			out = append(out, GateViolation{
				Metric:   "serve_warm_p99_ns",
				Baseline: baseline.WarmP99Ns,
				Current:  current.WarmP99Ns,
				Limit:    limit,
			})
		}
	}
	if baseline.BestThroughputRPS > 0 {
		floor := baseline.BestThroughputRPS / (1 + slack)
		if current.BestThroughputRPS < floor {
			out = append(out, GateViolation{
				Metric:   "serve_best_throughput_rps",
				Baseline: baseline.BestThroughputRPS,
				Current:  current.BestThroughputRPS,
				Limit:    floor,
			})
		}
	}
	return out
}

// ScaleOutBar is the aggregate-throughput multiple a 3-shard topology must
// clear over the committed single-node baseline, given the machine it runs
// on. The 2× bar assumes the shards actually get cores: on a ≥4-core host
// router + 3 shards can run concurrently, so 2× single-node is the honest
// floor for a scale-out tier that is pulling its weight. Below 4 cores the
// topology is time-sliced onto hardware that cannot run two shards at once
// — no software tier scales past the core count — so the bar degrades to
// procs/2 (on 1 core: half the single-node rate, i.e. the router hop may
// cost at most ~one extra service time per request).
func ScaleOutBar(procs int) float64 {
	if procs >= 4 {
		return 2.0
	}
	return float64(procs) / 2
}

// FailoverWarmBar is the floor on the warm-failover probe's warm fraction: at
// least 90% of the answers for a killed primary's ranges must come from a
// resident replica policy rather than a fresh retrain.
const FailoverWarmBar = 0.9

// ConvergenceBarNs is the ceiling on the membership probe's kill→converged
// window: every surviving gossip view must agree on a killed shard's
// obituary within 5 seconds (slack-widened). The in-process plane ticks at
// 40ms with a 600ms suspicion window, so a healthy run converges in ~1s;
// the bar catches dissemination regressions, not timing noise.
const ConvergenceBarNs = 5e9

// ClusterGate checks a cluster sweep against the committed single-node
// baseline: aggregate throughput must clear ScaleOutBar× the single-node
// rate (slack-relieved), warm p99 may cost at most 2× the single-node tail
// (the proxy hop plus one queueing epoch, slack-widened), and rebalancing
// must never have surfaced a non-2xx to the client. A sweep that ran the
// warm-failover probe (ClusterFailoverRequests > 0) additionally gates on
// availability through the kill window (zero non-2xx) and on the warm
// fraction clearing FailoverWarmBar — slack does not relieve either; they
// are correctness properties, not latency.
func ClusterGate(current, single Report, slack float64) []GateViolation {
	var out []GateViolation
	bar := ScaleOutBar(current.GOMAXPROCS)
	if single.BestThroughputRPS > 0 && bar > 0 {
		floor := single.BestThroughputRPS * bar / (1 + slack)
		if current.BestThroughputRPS < floor {
			out = append(out, GateViolation{
				Metric:   "cluster_throughput_vs_single",
				Baseline: single.BestThroughputRPS,
				Current:  current.BestThroughputRPS,
				Limit:    floor,
			})
		}
	}
	if single.WarmP99Ns > 0 {
		limit := single.WarmP99Ns * 2 * (1 + slack)
		if current.WarmP99Ns > limit {
			out = append(out, GateViolation{
				Metric:   "cluster_warm_p99_vs_single",
				Baseline: single.WarmP99Ns,
				Current:  current.WarmP99Ns,
				Limit:    limit,
			})
		}
	}
	if current.NonOKRate > 0 {
		out = append(out, GateViolation{
			Metric:   "serve_non2xx_rate",
			Baseline: 0,
			Current:  current.NonOKRate,
			Limit:    0,
		})
	}
	if current.ClusterFailoverRequests > 0 {
		if current.ClusterFailoverNon2xx > 0 {
			out = append(out, GateViolation{
				Metric:   "cluster_failover_non2xx",
				Baseline: 0,
				Current:  float64(current.ClusterFailoverNon2xx),
				Limit:    0,
			})
		}
		if current.ClusterFailoverWarmFraction < FailoverWarmBar {
			out = append(out, GateViolation{
				Metric:   "cluster_failover_warm_fraction",
				Baseline: FailoverWarmBar,
				Current:  current.ClusterFailoverWarmFraction,
				Limit:    FailoverWarmBar,
			})
		}
	}
	// Membership convergence is gated only when the sweep measured it (older
	// records and gossip-disabled runs carry a zero).
	if current.ClusterKillConvergedNs > 0 {
		limit := ConvergenceBarNs * (1 + slack)
		if current.ClusterKillConvergedNs > limit {
			out = append(out, GateViolation{
				Metric:   "cluster_kill_converged_ns",
				Baseline: ConvergenceBarNs,
				Current:  current.ClusterKillConvergedNs,
				Limit:    limit,
			})
		}
	}
	return out
}
