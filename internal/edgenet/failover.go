package edgenet

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
)

// ErrAllWorkersDown is returned when no worker remains to run the plan.
var ErrAllWorkersDown = fmt.Errorf("edgenet: all workers down")

// RunFaultTolerant executes the plan like Run, but survives worker
// crashes: when a worker's connection breaks, its unfinished tasks are
// re-dispatched to the surviving workers (earliest-available first). The
// run fails only when every worker is gone with work outstanding.
func (c *Controller) RunFaultTolerant(ctx context.Context, addrs []string, p *core.Problem, res *alloc.Result, coverageTarget float64) (*Report, error) {
	if len(addrs) == 0 {
		return nil, ErrNoWorkers
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("edgenet: %w", err)
	}
	if res == nil || len(res.Allocation) != len(p.Tasks) {
		return nil, fmt.Errorf("edgenet: allocation/task mismatch: %w", ErrPlanMismatch)
	}
	if coverageTarget <= 0 || coverageTarget > 1 {
		coverageTarget = 0.8
	}
	prio := func(j int) float64 {
		if res.Priority != nil && j < len(res.Priority) {
			return res.Priority[j]
		}
		return -float64(j)
	}
	// Initial queues per worker, priority-ordered.
	pending := make([][]int, len(addrs))
	assigned := 0
	for j, proc := range res.Allocation {
		if proc == core.Unassigned {
			continue
		}
		if proc < 0 || proc >= len(addrs) {
			return nil, fmt.Errorf("task %d on processor %d: %w", j, proc, ErrPlanMismatch)
		}
		pending[proc] = append(pending[proc], j)
		assigned++
	}
	for _, q := range pending {
		sort.Slice(q, func(a, b int) bool {
			pa, pb := prio(q[a]), prio(q[b])
			if pa != pb {
				return pa > pb
			}
			return q[a] < q[b]
		})
	}
	// Defer order matters: cancel must fire before wg.Wait so blocked
	// workers unblock (LIFO: register Wait first).
	var wg sync.WaitGroup
	defer wg.Wait()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	report := &Report{Workers: make(map[int]int, len(addrs))}
	start := time.Now()

	type workerEvent struct {
		proc int
		comp *Completion // nil for a failure event
		left []int       // unfinished tasks on failure
	}
	events := make(chan workerEvent, 1)
	sendEvent := func(ev workerEvent) {
		select {
		case events <- ev:
		case <-runCtx.Done():
		}
	}

	// spawn drives one worker until its queue (plus any re-dispatched
	// work pushed via its channel) is exhausted.
	type workerHandle struct {
		inbox chan int
		alive bool
	}
	handles := make([]*workerHandle, len(addrs))
	dialer := net.Dialer{Timeout: c.DialTimeout}
	for i, addr := range addrs {
		conn, err := dialer.DialContext(runCtx, "tcp", addr)
		if err != nil {
			// A worker that never answers counts as failed at t=0: its
			// queue is re-dispatched below.
			handles[i] = &workerHandle{alive: false}
			continue
		}
		hello, err := ReadFrame(conn)
		if err != nil || hello.Type != MsgHello {
			conn.Close()
			handles[i] = &workerHandle{alive: false}
			continue
		}
		report.Workers[i] = hello.WorkerID
		h := &workerHandle{inbox: make(chan int, len(p.Tasks)), alive: true}
		handles[i] = h
		wg.Add(1)
		go func(proc int, conn net.Conn, inbox chan int) {
			defer wg.Done()
			defer conn.Close()
			defer WriteFrame(conn, &Envelope{Type: MsgShutdown}) //nolint:errcheck
			// Close the connection when the run ends to unblock reads.
			connDone := make(chan struct{})
			defer close(connDone)
			go func() {
				select {
				case <-runCtx.Done():
					conn.Close()
				case <-connDone:
				}
			}()
			for {
				var j int
				var ok bool
				select {
				case j, ok = <-inbox:
					if !ok {
						return
					}
				case <-runCtx.Done():
					return
				}
				t := p.Tasks[j]
				if err := WriteFrame(conn, &Envelope{
					Type: MsgAssign, TaskID: j, InputBits: t.InputBits, Importance: t.Importance,
				}); err != nil {
					sendEvent(workerEvent{proc: proc, left: append([]int{j}, drain(inbox)...)})
					return
				}
				done, err := ReadFrame(conn)
				if err != nil || done.Type != MsgDone || done.TaskID != j {
					sendEvent(workerEvent{proc: proc, left: append([]int{j}, drain(inbox)...)})
					return
				}
				sendEvent(workerEvent{proc: proc, comp: &Completion{
					Task: j, WorkerID: done.WorkerID, Importance: t.Importance,
					At: time.Since(start),
				}})
			}
		}(i, conn, h.inbox)
	}
	// Seed the inboxes; queues of dead-on-arrival workers go to redispatch.
	var orphans []int
	for i, q := range pending {
		if handles[i].alive {
			for _, j := range q {
				handles[i].inbox <- j
			}
		} else {
			orphans = append(orphans, q...)
		}
	}
	redispatch := func(tasks []int) error {
		sort.Slice(tasks, func(a, b int) bool { return prio(tasks[a]) > prio(tasks[b]) })
		for _, j := range tasks {
			sent := false
			// Spread across the living, least-loaded inbox first.
			best := -1
			for i, h := range handles {
				if !h.alive {
					continue
				}
				if best == -1 || len(h.inbox) < len(handles[best].inbox) {
					best = i
				}
			}
			if best >= 0 {
				handles[best].inbox <- j
				sent = true
			}
			if !sent {
				return fmt.Errorf("task %d stranded: %w", j, ErrAllWorkersDown)
			}
		}
		return nil
	}
	if err := redispatch(orphans); err != nil {
		cancel()
		return nil, err
	}
	target := coverageTarget * p.TotalImportance()
	received := 0
	for received < assigned {
		select {
		case ev := <-events:
			if ev.comp != nil {
				received++
				report.Completions = append(report.Completions, *ev.comp)
				report.Covered += ev.comp.Importance
				if report.DecisionReadyAt == 0 && target > 0 && report.Covered >= target {
					report.DecisionReadyAt = ev.comp.At
				}
				continue
			}
			// Worker failure: mark dead, re-dispatch its leftovers.
			handles[ev.proc].alive = false
			if err := redispatch(ev.left); err != nil {
				cancel()
				return nil, err
			}
		case <-ctx.Done():
			cancel()
			return nil, fmt.Errorf("edgenet run: %w", ctx.Err())
		}
	}
	// All work done: close inboxes so worker goroutines exit.
	cancel()
	for _, h := range handles {
		if h.alive {
			close(h.inbox)
		}
	}
	return report, nil
}

// drain empties an inbox without blocking.
func drain(inbox chan int) []int {
	var out []int
	for {
		select {
		case j, ok := <-inbox:
			if !ok {
				return out
			}
			out = append(out, j)
		default:
			return out
		}
	}
}
