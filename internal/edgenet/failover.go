package edgenet

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
)

// ErrAllWorkersDown is returned when no worker remains to run the plan.
var ErrAllWorkersDown = fmt.Errorf("edgenet: all workers down")

// ftWorker is one dispatch-pool member. All fields below conn/out are owned
// by the event loop; the read/write goroutines touch only conn and the
// channels.
type ftWorker struct {
	slot int // dispatch-pool slot (key in Report.Workers)
	id   int // announced worker ID
	conn net.Conn
	out  chan *Envelope

	secPerBit float64
	timeScale float64
	beatEvery time.Duration // announced heartbeat cadence; 0 = no liveness tracking

	alive    bool
	busy     int   // task in flight, -1 when idle
	queue    []int // planned backlog, priority-ordered
	lastBeat time.Time
	misses   int // consecutive heartbeat windows missed
	corrupt  int // corrupt frames seen on this connection
}

type ftEventKind int

const (
	evDone ftEventKind = iota
	evBeat
	evCorrupt
	evGone
	evJoin
)

type ftEvent struct {
	w    *ftWorker
	kind ftEventKind
	env  *Envelope // evDone only
}

// ftTask is the event loop's view of one planned task.
type ftTask struct {
	planned  bool
	done     bool
	owners   int       // dispatched copies currently in flight
	deadline time.Time // hedge eligibility instant for the newest copy
}

// ftRun is the state of one fault-tolerant execution; everything in it is
// owned by the event loop goroutine.
type ftRun struct {
	c       *Controller
	p       *core.Problem
	prio    func(int) float64
	report  *Report
	start   time.Time
	runCtx  context.Context
	events  chan ftEvent
	wg      *sync.WaitGroup
	workers []*ftWorker
	tasks   []ftTask
	backlog []int // unowned tasks awaiting a worker, priority-ordered
	slots   int   // next dispatch-pool slot for a rejoining worker
	live    int
	done    int
	total   int
	target  float64
}

// RunFaultTolerant executes the plan like Run, but on a failure-detecting
// execution plane built for networks where nodes stall and links corrupt
// bytes rather than cleanly disconnecting:
//
//   - liveness: workers announce a heartbeat cadence in their hello; a
//     worker missing LivenessMisses consecutive windows is declared dead
//     and its work re-dispatched — a hung-but-connected node no longer
//     blocks the run until the caller's context expires.
//   - hedging: every dispatched task carries a completion deadline derived
//     from InputBits × SecPerBit × TimeScale; a straggling task is
//     speculatively re-sent to an idle healthy worker, first completion
//     wins, and duplicate completions are deduplicated.
//   - integrity: a frame failing its CRC (or message validation) is
//     counted and the in-flight assignment re-sent; a connection exceeding
//     MaxCorruptFrames is quarantined like a dead worker.
//   - rejoin: when Controller.RejoinListener is set, a recovered worker
//     can dial back mid-run and is re-admitted into the dispatch pool.
//
// The run fails only when every worker is gone with work outstanding (and
// no rejoin listener could replenish the pool), or the context expires.
func (c *Controller) RunFaultTolerant(ctx context.Context, addrs []string, p *core.Problem, res *alloc.Result, coverageTarget float64) (*Report, error) {
	if len(addrs) == 0 {
		return nil, ErrNoWorkers
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("edgenet: %w", err)
	}
	if res == nil || len(res.Allocation) != len(p.Tasks) {
		return nil, fmt.Errorf("edgenet: allocation/task mismatch: %w", ErrPlanMismatch)
	}
	if coverageTarget <= 0 || coverageTarget > 1 {
		coverageTarget = 0.8
	}
	queues, assigned, err := planQueues(p, res, len(addrs))
	if err != nil {
		return nil, err
	}

	// Defer order matters: cancel must fire before wg.Wait so blocked
	// reads/writes unblock (LIFO: register Wait first).
	var wg sync.WaitGroup
	defer wg.Wait()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	r := &ftRun{
		c:      c,
		p:      p,
		prio:   planPriority(res),
		report: &Report{Workers: make(map[int]int, len(addrs))},
		start:  time.Now(),
		runCtx: runCtx,
		events: make(chan ftEvent, 128),
		wg:     &wg,
		tasks:  make([]ftTask, len(p.Tasks)),
		slots:  len(addrs),
		total:  assigned,
		target: coverageTarget * p.TotalImportance(),
	}
	for j, proc := range res.Allocation {
		if proc != core.Unassigned {
			r.tasks[j].planned = true
		}
	}

	// Close every connection when the run ends so blocked frame reads and
	// writes unblock; worker goroutines then drain via evGone.
	defer func() {
		for _, w := range r.workers {
			w.conn.Close()
		}
	}()

	// Dial the initial pool. A worker that cannot be dialed or greeted
	// counts as failed at t=0: its queue lands in the backlog.
	dialer := net.Dialer{Timeout: c.DialTimeout}
	for i, addr := range addrs {
		conn, err := dialer.DialContext(runCtx, "tcp", addr)
		if err != nil {
			r.backlogTasks(queues[i])
			continue
		}
		hello, err := readHello(conn, c.DialTimeout)
		if err != nil {
			conn.Close()
			r.backlogTasks(queues[i])
			continue
		}
		w := ftWorkerFromHello(conn, hello, len(p.Tasks))
		w.slot = i
		w.queue = queues[i]
		r.admit(w)
	}
	if r.live == 0 && c.RejoinListener == nil && r.total > 0 {
		return nil, fmt.Errorf("%d tasks stranded: %w", r.total, ErrAllWorkersDown)
	}

	// Rejoin listener: recovered workers dial in, greet, and are admitted
	// into the pool by the event loop.
	if c.RejoinListener != nil {
		ln := c.RejoinListener
		defer ln.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					hello, err := readHello(conn, 5*time.Second)
					if err != nil {
						conn.Close()
						return
					}
					w := ftWorkerFromHello(conn, hello, len(p.Tasks))
					if !r.send(ftEvent{w: w, kind: evJoin}) {
						conn.Close()
					}
				}()
			}
		}()
	}

	// Seed the pool, then run the event loop: completions, heartbeats,
	// corruption and joins arrive as events; the ticker drives the
	// failure detector (hedge + liveness scans).
	for _, w := range r.workers {
		r.dispatch(w)
	}
	ticker := time.NewTicker(c.tick())
	defer ticker.Stop()
	for r.done < r.total {
		select {
		case ev := <-r.events:
			r.handle(ev)
		case <-ticker.C:
			r.scan(time.Now())
		case <-ctx.Done():
			return nil, fmt.Errorf("edgenet run: %w", ctx.Err())
		}
		if r.live == 0 && c.RejoinListener == nil && r.done < r.total {
			return nil, fmt.Errorf("%d tasks stranded: %w", r.total-r.done, ErrAllWorkersDown)
		}
	}
	// All work done: a best-effort goodbye, then the deferred cleanup
	// closes the connections.
	for _, w := range r.workers {
		if w.alive {
			select {
			case w.out <- &Envelope{Type: MsgShutdown}:
			default:
			}
		}
	}
	return r.report, nil
}

// readHello reads the worker's greeting, bounded by a read deadline so a
// connected-but-mute peer cannot stall admission.
func readHello(conn net.Conn, timeout time.Duration) (*Envelope, error) {
	if timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(timeout)) //nolint:errcheck
		defer conn.SetReadDeadline(time.Time{})       //nolint:errcheck
	}
	hello, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if hello.Type != MsgHello {
		return nil, fmt.Errorf("sent %q first: %w", hello.Type, ErrBadMessage)
	}
	return hello, nil
}

func ftWorkerFromHello(conn net.Conn, hello *Envelope, tasks int) *ftWorker {
	return &ftWorker{
		id:        hello.WorkerID,
		conn:      conn,
		out:       make(chan *Envelope, 2*tasks+16),
		secPerBit: hello.SecPerBit,
		timeScale: hello.TimeScale,
		beatEvery: time.Duration(hello.HeartbeatSec * float64(time.Second)),
		busy:      -1,
	}
}

// admit installs a worker into the pool and starts its IO goroutines.
func (r *ftRun) admit(w *ftWorker) {
	w.alive = true
	w.lastBeat = time.Now()
	r.workers = append(r.workers, w)
	r.live++
	r.report.Workers[w.slot] = w.id
	r.wg.Add(2)
	go func() {
		defer r.wg.Done()
		r.readLoop(w)
	}()
	go func() {
		defer r.wg.Done()
		r.writeLoop(w)
	}()
}

// readLoop turns one connection's frames into events. Aligned decode
// failures (checksum, validation) are survivable corruption; everything
// else ends the connection.
func (r *ftRun) readLoop(w *ftWorker) {
	for {
		env, err := ReadFrame(w.conn)
		if err != nil {
			if StreamAligned(err) {
				if !r.send(ftEvent{w: w, kind: evCorrupt}) {
					return
				}
				continue
			}
			r.send(ftEvent{w: w, kind: evGone})
			return
		}
		switch env.Type {
		case MsgDone:
			if !r.send(ftEvent{w: w, kind: evDone, env: env}) {
				return
			}
		case MsgHeartbeat:
			if !r.send(ftEvent{w: w, kind: evBeat}) {
				return
			}
		default:
			// A well-formed frame the worker should never send: treat it
			// like line corruption so a confused peer gets quarantined
			// rather than trusted.
			if !r.send(ftEvent{w: w, kind: evCorrupt}) {
				return
			}
		}
	}
}

func (r *ftRun) writeLoop(w *ftWorker) {
	for {
		select {
		case env := <-w.out:
			if err := WriteFrame(w.conn, env); err != nil {
				r.send(ftEvent{w: w, kind: evGone})
				return
			}
		case <-r.runCtx.Done():
			return
		}
	}
}

func (r *ftRun) send(ev ftEvent) bool {
	select {
	case r.events <- ev:
		return true
	case <-r.runCtx.Done():
		return false
	}
}

func (r *ftRun) handle(ev ftEvent) {
	w := ev.w
	switch ev.kind {
	case evJoin:
		w.slot = r.nextSlot()
		r.report.Rejoins++
		r.admit(w)
		r.dispatch(w)
	case evBeat:
		if w.alive {
			r.noteAlive(w)
		}
	case evDone:
		if w.alive {
			r.noteAlive(w)
			r.handleDone(w, ev.env)
		}
	case evCorrupt:
		if w.alive {
			r.noteAlive(w) // a corrupt frame is still a sign of life
			r.handleCorrupt(w)
		}
	case evGone:
		r.kill(w)
	}
}

func (r *ftRun) nextSlot() int {
	slot := r.slots
	r.slots++
	return slot
}

func (r *ftRun) noteAlive(w *ftWorker) {
	w.lastBeat = time.Now()
	w.misses = 0
}

func (r *ftRun) handleDone(w *ftWorker, env *Envelope) {
	j := env.TaskID
	if j < 0 || j >= len(r.tasks) || !r.tasks[j].planned {
		r.handleCorrupt(w) // checksummed-valid but nonsensical: distrust the peer
		return
	}
	if w.busy == j {
		w.busy = -1
	}
	st := &r.tasks[j]
	if st.owners > 0 {
		st.owners--
	}
	if st.done {
		r.report.DuplicateDone++
	} else {
		st.done = true
		r.done++
		comp := Completion{
			Task:       j,
			WorkerID:   w.id,
			Importance: r.p.Tasks[j].Importance,
			At:         time.Since(r.start),
		}
		r.report.Completions = append(r.report.Completions, comp)
		r.report.Covered += comp.Importance
		if r.report.DecisionReadyAt == 0 && r.target > 0 && r.report.Covered >= r.target {
			r.report.DecisionReadyAt = comp.At
		}
	}
	r.dispatch(w)
}

func (r *ftRun) handleCorrupt(w *ftWorker) {
	r.report.CorruptFrames++
	w.corrupt++
	if w.corrupt >= r.c.maxCorruptFrames() {
		r.kill(w)
		return
	}
	if w.busy >= 0 && !r.tasks[w.busy].done {
		// The lost frame may have been the completion of the in-flight
		// task; re-sending the assignment makes the worker re-execute and
		// re-report it. If the lost frame was something else, dedup
		// swallows the extra completion.
		r.report.Retries++
		r.resend(w, w.busy)
	}
}

// kill removes a worker from the pool and re-dispatches its unfinished
// work. Idempotent: late evGone events for an already-dead worker no-op.
func (r *ftRun) kill(w *ftWorker) {
	if !w.alive {
		return
	}
	w.alive = false
	r.live--
	r.report.DeadWorkers++
	w.conn.Close() // unblocks its read/write goroutines
	if w.busy >= 0 {
		st := &r.tasks[w.busy]
		if st.owners > 0 {
			st.owners--
		}
		if !st.done && st.owners == 0 {
			r.pushBacklog(w.busy)
		}
		w.busy = -1
	}
	r.backlogTasks(w.queue)
	w.queue = nil
	for _, v := range r.workers {
		if v.alive && v.busy < 0 {
			r.dispatch(v)
		}
	}
}

// scan is the periodic failure detector: hedge stragglers, then declare
// heartbeat-silent workers dead. Hedging runs first so a task whose owner
// is about to be declared dead is speculatively duplicated rather than
// merely re-queued.
func (r *ftRun) scan(now time.Time) {
	for j := range r.tasks {
		st := &r.tasks[j]
		if st.done || st.owners == 0 || now.Before(st.deadline) {
			continue
		}
		w := r.idleWorker()
		if w == nil {
			break // no spare capacity this tick; retry next scan
		}
		r.report.Hedges++
		r.assign(w, j)
	}
	for _, w := range r.workers {
		if !w.alive || w.beatEvery <= 0 {
			continue
		}
		if missed := int(now.Sub(w.lastBeat) / w.beatEvery); missed > w.misses {
			r.report.HeartbeatMisses += missed - w.misses
			w.misses = missed
		}
		if w.misses >= r.c.livenessMisses() {
			r.kill(w)
		}
	}
}

func (r *ftRun) idleWorker() *ftWorker {
	for _, w := range r.workers {
		if w.alive && w.busy < 0 {
			return w
		}
	}
	return nil
}

// dispatch hands an idle worker its next task: the higher-priority of its
// own planned queue and the orphan backlog, stealing from the most loaded
// peer when both are empty (work conservation for rejoined workers).
func (r *ftRun) dispatch(w *ftWorker) {
	if !w.alive || w.busy >= 0 {
		return
	}
	j := r.nextTask(w)
	if j < 0 {
		return
	}
	r.assign(w, j)
}

func (r *ftRun) nextTask(w *ftWorker) int {
	w.queue = trimDone(w.queue, r.tasks)
	r.backlog = trimDone(r.backlog, r.tasks)
	switch {
	case len(w.queue) > 0 && (len(r.backlog) == 0 || r.prio(w.queue[0]) >= r.prio(r.backlog[0])):
		j := w.queue[0]
		w.queue = w.queue[1:]
		return j
	case len(r.backlog) > 0:
		j := r.backlog[0]
		r.backlog = r.backlog[1:]
		return j
	}
	// Steal the tail half of the longest peer queue.
	var victim *ftWorker
	for _, v := range r.workers {
		if v.alive && v != w && len(v.queue) > 1 && (victim == nil || len(v.queue) > len(victim.queue)) {
			victim = v
		}
	}
	if victim == nil {
		return -1
	}
	cut := len(victim.queue) - len(victim.queue)/2
	w.queue = append(w.queue, victim.queue[cut:]...)
	victim.queue = victim.queue[:cut]
	j := w.queue[0]
	w.queue = w.queue[1:]
	return j
}

func trimDone(q []int, tasks []ftTask) []int {
	for len(q) > 0 && tasks[q[0]].done {
		q = q[1:]
	}
	return q
}

// assign marks w busy on task j (as one more in-flight copy) and queues
// the assignment frame. The out channel is sized so this never blocks the
// event loop; a full channel means the writer is long gone, so the worker
// is treated as dead.
func (r *ftRun) assign(w *ftWorker, j int) {
	w.busy = j
	r.tasks[j].owners++
	t := r.p.Tasks[j]
	r.tasks[j].deadline = time.Now().Add(r.deadlineFor(w, t))
	env := &Envelope{Type: MsgAssign, TaskID: j, InputBits: t.InputBits, Importance: t.Importance}
	select {
	case w.out <- env:
	default:
		r.kill(w)
	}
}

// resend re-queues the in-flight assignment after a corrupt frame without
// touching the owner count (the same worker still holds the same task).
func (r *ftRun) resend(w *ftWorker, j int) {
	t := r.p.Tasks[j]
	r.tasks[j].deadline = time.Now().Add(r.deadlineFor(w, t))
	env := &Envelope{Type: MsgAssign, TaskID: j, InputBits: t.InputBits, Importance: t.Importance}
	select {
	case w.out <- env:
	default:
		r.kill(w)
	}
}

// deadlineFor derives the task's completion deadline from the expected
// execution time the worker announced in its hello.
func (r *ftRun) deadlineFor(w *ftWorker, t core.TaskSpec) time.Duration {
	expected := t.InputBits * w.secPerBit * w.timeScale
	return r.c.hedgeMinDeadline() + time.Duration(r.c.hedgeFactor()*expected*float64(time.Second))
}

func (r *ftRun) pushBacklog(j int) {
	r.backlog = append(r.backlog, j)
	sort.Slice(r.backlog, func(a, b int) bool {
		pa, pb := r.prio(r.backlog[a]), r.prio(r.backlog[b])
		if pa != pb {
			return pa > pb
		}
		return r.backlog[a] < r.backlog[b]
	})
}

func (r *ftRun) backlogTasks(q []int) {
	for _, j := range q {
		if !r.tasks[j].done {
			r.pushBacklog(j)
		}
	}
}
