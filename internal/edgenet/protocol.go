// Package edgenet is a runnable network implementation of the paper's edge
// system (Fig. 8): a controller that dials worker nodes over TCP, streams
// task assignments in allocation-priority order, and declares the industry
// decision ready once the completed tasks cover the importance target — the
// same PT semantics as internal/edgesim, but over real sockets with real
// goroutines, timeouts and graceful shutdown.
//
// The protocol is length-prefixed JSON frames. Workers simulate task
// execution by sleeping InputBits × SecPerBit × TimeScale, so a demo runs in
// milliseconds while preserving the relative timing structure.
package edgenet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Common errors.
var (
	// ErrFrameTooLarge guards against corrupt or hostile length prefixes.
	ErrFrameTooLarge = errors.New("edgenet: frame too large")
	// ErrBadMessage is returned for messages that fail validation.
	ErrBadMessage = errors.New("edgenet: invalid message")
)

// MaxFrameBytes bounds a single protocol frame.
const MaxFrameBytes = 1 << 20

// MsgType discriminates protocol messages.
type MsgType string

// Protocol message types.
const (
	// MsgHello is the worker's greeting after accepting a connection.
	MsgHello MsgType = "hello"
	// MsgAssign carries one task assignment, controller → worker.
	MsgAssign MsgType = "assign"
	// MsgDone reports one task completion, worker → controller.
	MsgDone MsgType = "done"
	// MsgShutdown asks the worker to finish its queue and exit the
	// connection, controller → worker.
	MsgShutdown MsgType = "shutdown"
)

// Envelope is the wire representation of every message.
type Envelope struct {
	Type MsgType `json:"type"`
	// Hello fields.
	WorkerID  int     `json:"workerId,omitempty"`
	NodeType  string  `json:"nodeType,omitempty"`
	SecPerBit float64 `json:"secPerBit,omitempty"`
	// Assign/Done fields.
	TaskID     int     `json:"taskId,omitempty"`
	InputBits  float64 `json:"inputBits,omitempty"`
	Importance float64 `json:"importance,omitempty"`
	// Done fields.
	ElapsedMicros int64 `json:"elapsedMicros,omitempty"`
}

// WriteFrame serializes one envelope as a length-prefixed JSON frame.
func WriteFrame(w io.Writer, env *Envelope) error {
	payload, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("edgenet marshal: %w", err)
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("%d bytes: %w", len(payload), ErrFrameTooLarge)
	}
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], uint32(len(payload)))
	if _, err := w.Write(head[:]); err != nil {
		return fmt.Errorf("edgenet write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("edgenet write payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed JSON frame.
func ReadFrame(r io.Reader) (*Envelope, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err // io.EOF propagates unchanged for clean shutdown
	}
	n := binary.BigEndian.Uint32(head[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%d bytes: %w", n, ErrFrameTooLarge)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("edgenet read payload: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, fmt.Errorf("edgenet unmarshal: %w", err)
	}
	if env.Type == "" {
		return nil, fmt.Errorf("missing type: %w", ErrBadMessage)
	}
	return &env, nil
}
