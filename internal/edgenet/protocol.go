// Package edgenet is a runnable network implementation of the paper's edge
// system (Fig. 8): a controller that dials worker nodes over TCP, streams
// task assignments in allocation-priority order, and declares the industry
// decision ready once the completed tasks cover the importance target — the
// same PT semantics as internal/edgesim, but over real sockets with real
// goroutines, timeouts and graceful shutdown.
//
// The wire format is versioned. Frame v2 (the default since PR 5) is
//
//	0xED 'g' 0x02 | uint32 payload length | uint32 CRC32-C | JSON payload
//
// (all integers big-endian). The CRC covers the payload, so a flipped bit
// anywhere in the JSON is detected by the receiver without losing stream
// alignment — the frame is consumed, reported as ErrChecksum, and the next
// frame reads cleanly. The legacy v1 format was a bare
// uint32-length-prefixed JSON payload; since MaxFrameBytes is 1 MiB a valid
// v1 frame always starts with a 0x00 byte, so ReadFrame sniffs the first
// byte and accepts both formats transparently.
//
// Workers simulate task execution by sleeping InputBits × SecPerBit ×
// TimeScale, so a demo runs in milliseconds while preserving the relative
// timing structure.
package edgenet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Common errors.
var (
	// ErrFrameTooLarge guards against corrupt or hostile length prefixes.
	// The stream cannot be resynchronized after it.
	ErrFrameTooLarge = errors.New("edgenet: frame too large")
	// ErrBadMessage is returned for messages that fail validation. The
	// offending frame was fully consumed: the stream stays aligned.
	ErrBadMessage = errors.New("edgenet: invalid message")
	// ErrChecksum is returned when a v2 frame's payload fails its CRC —
	// the bytes were corrupted in flight. The frame was fully consumed:
	// the stream stays aligned and the next ReadFrame is safe.
	ErrChecksum = errors.New("edgenet: frame checksum mismatch")
	// ErrNonFinite is returned when a message carries NaN or ±Inf in a
	// numeric field; non-finite numbers would silently poison deadline and
	// coverage arithmetic downstream.
	ErrNonFinite = errors.New("edgenet: non-finite number")
)

// MaxFrameBytes bounds a single protocol frame.
const MaxFrameBytes = 1 << 20

// Frame v2 constants.
const (
	frameMagic0  = 0xED // never a valid v1 length high byte (v1 ≤ 1 MiB)
	frameMagic1  = 'g'
	frameVersion = 2
	// v2Header is magic(2) + version(1) + length(4) + crc(4).
	v2Header = 11
	// v1Header is the bare big-endian length prefix.
	v1Header = 4
)

// frameCRC is CRC32-Castagnoli, hardware-accelerated on amd64/arm64.
var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// MsgType discriminates protocol messages.
type MsgType string

// Protocol message types.
const (
	// MsgHello is the worker's greeting after accepting a connection (or
	// after dialing a controller's rejoin listener).
	MsgHello MsgType = "hello"
	// MsgAssign carries one task assignment, controller → worker.
	MsgAssign MsgType = "assign"
	// MsgDone reports one task completion, worker → controller.
	MsgDone MsgType = "done"
	// MsgHeartbeat is the worker's periodic liveness beacon, worker →
	// controller, interleaved with completions on the same stream.
	MsgHeartbeat MsgType = "beat"
	// MsgShutdown asks the worker to finish its queue and exit the
	// connection, controller → worker.
	MsgShutdown MsgType = "shutdown"
)

// Envelope is the wire representation of every message.
type Envelope struct {
	Type MsgType `json:"type"`
	// Hello fields.
	WorkerID  int     `json:"workerId,omitempty"`
	NodeType  string  `json:"nodeType,omitempty"`
	SecPerBit float64 `json:"secPerBit,omitempty"`
	// TimeScale is the worker's execution time scale; with SecPerBit it
	// lets the controller derive per-task completion deadlines.
	TimeScale float64 `json:"timeScale,omitempty"`
	// HeartbeatSec announces the worker's heartbeat cadence in seconds;
	// 0 means the worker sends no heartbeats (legacy workers).
	HeartbeatSec float64 `json:"heartbeatSec,omitempty"`
	// Assign/Done fields.
	TaskID     int     `json:"taskId,omitempty"`
	InputBits  float64 `json:"inputBits,omitempty"`
	Importance float64 `json:"importance,omitempty"`
	// Done fields.
	ElapsedMicros int64 `json:"elapsedMicros,omitempty"`
}

// Validate rejects envelopes that would poison downstream arithmetic: every
// numeric field must be finite. Both WriteFrame and ReadFrame call it, so
// non-finite numbers are stopped at the trust boundary in either direction.
func (env *Envelope) Validate() error {
	if env.Type == "" {
		return fmt.Errorf("missing type: %w", ErrBadMessage)
	}
	for _, f := range [...]struct {
		name string
		v    float64
	}{
		{"secPerBit", env.SecPerBit},
		{"timeScale", env.TimeScale},
		{"heartbeatSec", env.HeartbeatSec},
		{"inputBits", env.InputBits},
		{"importance", env.Importance},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("%s = %v: %w: %w", f.name, f.v, ErrBadMessage, ErrNonFinite)
		}
	}
	return nil
}

// WriteFrame serializes one envelope as a v2 checksummed frame.
func WriteFrame(w io.Writer, env *Envelope) error {
	if err := env.Validate(); err != nil {
		return fmt.Errorf("edgenet write: %w", err)
	}
	payload, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("edgenet marshal: %w", err)
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("%d bytes: %w", len(payload), ErrFrameTooLarge)
	}
	frame := make([]byte, v2Header+len(payload))
	frame[0], frame[1], frame[2] = frameMagic0, frameMagic1, frameVersion
	binary.BigEndian.PutUint32(frame[3:7], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[7:11], crc32.Checksum(payload, frameCRC))
	copy(frame[v2Header:], payload)
	// One Write keeps header+payload in a single TCP segment when possible.
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("edgenet write frame: %w", err)
	}
	return nil
}

// WriteFrameLegacy serializes one envelope in the v1 bare-length format.
// It exists for compatibility tests and for talking to pre-v2 nodes.
func WriteFrameLegacy(w io.Writer, env *Envelope) error {
	if err := env.Validate(); err != nil {
		return fmt.Errorf("edgenet write: %w", err)
	}
	payload, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("edgenet marshal: %w", err)
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("%d bytes: %w", len(payload), ErrFrameTooLarge)
	}
	frame := make([]byte, v1Header+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	copy(frame[v1Header:], payload)
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("edgenet write frame: %w", err)
	}
	return nil
}

// ReadRawFrame reads one whole frame — v2 or legacy v1, sniffed from the
// first byte — returning its raw wire bytes and the offset where the JSON
// payload starts. It performs no checksum or content validation; the
// fault-injection proxy uses it to relay (and corrupt) frames byte-exactly.
func ReadRawFrame(r io.Reader) (frame []byte, payloadOff int, err error) {
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return nil, 0, err // io.EOF propagates unchanged for clean shutdown
	}
	if first[0] == frameMagic0 {
		head := make([]byte, v2Header)
		head[0] = first[0]
		if _, err := io.ReadFull(r, head[1:]); err != nil {
			return nil, 0, fmt.Errorf("edgenet read v2 header: %w", err)
		}
		if head[1] != frameMagic1 {
			return nil, 0, fmt.Errorf("bad magic 0x%02x%02x: %w", head[0], head[1], ErrBadMessage)
		}
		if head[2] != frameVersion {
			return nil, 0, fmt.Errorf("edgenet: unsupported frame version %d", head[2])
		}
		n := binary.BigEndian.Uint32(head[3:7])
		if n > MaxFrameBytes {
			return nil, 0, fmt.Errorf("%d bytes: %w", n, ErrFrameTooLarge)
		}
		frame = make([]byte, v2Header+int(n))
		copy(frame, head)
		if _, err := io.ReadFull(r, frame[v2Header:]); err != nil {
			return nil, 0, fmt.Errorf("edgenet read payload: %w", err)
		}
		return frame, v2Header, nil
	}
	// Legacy v1: the byte we sniffed is the length's high byte.
	var rest [3]byte
	if _, err := io.ReadFull(r, rest[:]); err != nil {
		return nil, 0, fmt.Errorf("edgenet read header: %w", err)
	}
	n := uint32(first[0])<<24 | uint32(rest[0])<<16 | uint32(rest[1])<<8 | uint32(rest[2])
	if n > MaxFrameBytes {
		return nil, 0, fmt.Errorf("%d bytes: %w", n, ErrFrameTooLarge)
	}
	frame = make([]byte, v1Header+int(n))
	binary.BigEndian.PutUint32(frame[:4], n)
	if _, err := io.ReadFull(r, frame[v1Header:]); err != nil {
		return nil, 0, fmt.Errorf("edgenet read payload: %w", err)
	}
	return frame, v1Header, nil
}

// ReadFrame reads one frame (either format) and decodes its envelope.
//
// Error contract for failure handling upstream: ErrChecksum and
// ErrBadMessage mean the offending frame was fully consumed and the stream
// is still aligned — the caller may keep reading (and count the corruption).
// Every other error means framing itself is lost and the connection must be
// dropped. StreamAligned reports which side of the contract an error is on.
func ReadFrame(r io.Reader) (*Envelope, error) {
	frame, off, err := ReadRawFrame(r)
	if err != nil {
		return nil, err
	}
	payload := frame[off:]
	if off == v2Header {
		want := binary.BigEndian.Uint32(frame[7:11])
		if got := crc32.Checksum(payload, frameCRC); got != want {
			return nil, fmt.Errorf("crc 0x%08x, want 0x%08x: %w", got, want, ErrChecksum)
		}
	}
	var env Envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		// The frame was fully consumed (length prefix was plausible), so
		// the stream stays aligned whichever format it was.
		return nil, fmt.Errorf("edgenet unmarshal: %v: %w", err, ErrBadMessage)
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	return &env, nil
}

// StreamAligned reports whether err (from ReadFrame) left the stream
// aligned on a frame boundary, i.e. whether it is safe to keep reading from
// the same connection.
func StreamAligned(err error) bool {
	return errors.Is(err, ErrChecksum) || errors.Is(err, ErrBadMessage)
}
