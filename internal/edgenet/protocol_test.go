package edgenet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/edgesim"
)

func TestLegacyFrameRoundTrip(t *testing.T) {
	// A v1 writer and a v2 writer can share one stream: ReadFrame sniffs
	// each frame's format from its first byte.
	var buf bytes.Buffer
	legacy := &Envelope{Type: MsgDone, TaskID: 3, WorkerID: 9}
	modern := &Envelope{Type: MsgAssign, TaskID: 4, InputBits: 1000}
	if err := WriteFrameLegacy(&buf, legacy); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, modern); err != nil {
		t.Fatal(err)
	}
	out1, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *out1 != *legacy || *out2 != *modern {
		t.Fatalf("mixed-format stream: %+v / %+v", out1, out2)
	}
}

func TestChecksumCorruptionKeepsStreamAligned(t *testing.T) {
	var buf bytes.Buffer
	first := &Envelope{Type: MsgDone, TaskID: 1}
	second := &Envelope{Type: MsgDone, TaskID: 2}
	if err := WriteFrame(&buf, first); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the first frame, leaving its CRC stale.
	wire := buf.Bytes()
	wire[v2Header+len(wire[v2Header:])/2] ^= 0xFF
	if err := WriteFrame(&buf, second); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(&buf)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted frame err = %v, want ErrChecksum", err)
	}
	if !StreamAligned(err) {
		t.Fatalf("checksum error should leave the stream aligned: %v", err)
	}
	// The stream stays aligned: the next frame reads cleanly.
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *second {
		t.Fatalf("frame after corruption = %+v, want %+v", out, second)
	}
}

func TestStreamAlignedClassification(t *testing.T) {
	if !StreamAligned(ErrChecksum) || !StreamAligned(ErrBadMessage) {
		t.Fatal("checksum/validation failures must be survivable")
	}
	if StreamAligned(io.EOF) || StreamAligned(ErrFrameTooLarge) || StreamAligned(nil) {
		t.Fatal("framing loss must not be survivable")
	}
}

func TestReadRawFrameOffsets(t *testing.T) {
	var buf bytes.Buffer
	env := &Envelope{Type: MsgHeartbeat, WorkerID: 5}
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)
	frame, off, err := ReadRawFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if off != v2Header || !bytes.Equal(frame, wire) {
		t.Fatalf("v2 raw frame off=%d, bytes preserved=%v", off, bytes.Equal(frame, wire))
	}
	buf.Reset()
	if err := WriteFrameLegacy(&buf, env); err != nil {
		t.Fatal(err)
	}
	wire = append([]byte(nil), buf.Bytes()...)
	frame, off, err = ReadRawFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if off != v1Header || !bytes.Equal(frame, wire) {
		t.Fatalf("v1 raw frame off=%d, bytes preserved=%v", off, bytes.Equal(frame, wire))
	}
}

func TestEnvelopeRejectsNonFinite(t *testing.T) {
	cases := []Envelope{
		{Type: MsgAssign, InputBits: math.NaN()},
		{Type: MsgAssign, InputBits: math.Inf(1)},
		{Type: MsgHello, SecPerBit: math.NaN()},
		{Type: MsgHello, TimeScale: math.Inf(-1)},
		{Type: MsgHello, HeartbeatSec: math.NaN()},
		{Type: MsgDone, Importance: math.Inf(1)},
	}
	for _, env := range cases {
		if err := env.Validate(); !errors.Is(err, ErrNonFinite) {
			t.Fatalf("Validate(%+v) = %v, want ErrNonFinite", env, err)
		}
		if err := WriteFrame(io.Discard, &env); !errors.Is(err, ErrNonFinite) {
			t.Fatalf("WriteFrame(%+v) = %v, want ErrNonFinite", env, err)
		}
	}
	ok := Envelope{Type: MsgAssign, InputBits: 1000, Importance: 0.5}
	if err := ok.Validate(); err != nil {
		t.Fatalf("finite envelope rejected: %v", err)
	}
}

// TestHeartbeatsInterleaveStrictRun: a v2 worker beats on the same stream
// as its completions; the strict Run path must skip the beats rather than
// treat them as protocol violations.
func TestHeartbeatsInterleaveStrictRun(t *testing.T) {
	w := &Worker{ID: 1, Type: edgesim.RaspberryPiB, HeartbeatEvery: 2 * time.Millisecond}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Serve(l); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })

	p, res := testPlan(3, 1)
	ctrl := NewController()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	report, err := ctrl.Run(ctx, []string{w.Addr()}, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Completions) != 3 {
		t.Fatalf("completions = %d, want 3", len(report.Completions))
	}
}

// TestLegacyWorkerCompat: a pre-v2 node that still writes bare
// length-prefixed frames interoperates with a v2 controller — rolling
// upgrades must not need a flag day.
func TestLegacyWorkerCompat(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if err := WriteFrameLegacy(conn, &Envelope{Type: MsgHello, WorkerID: 42}); err != nil {
			return
		}
		for {
			env, err := ReadFrame(conn) // sniffing reader: accepts the v2 assigns
			if err != nil {
				return
			}
			switch env.Type {
			case MsgAssign:
				done := &Envelope{Type: MsgDone, WorkerID: 42, TaskID: env.TaskID}
				if err := WriteFrameLegacy(conn, done); err != nil {
					return
				}
			case MsgShutdown:
				return
			}
		}
	}()

	p, res := testPlan(3, 1)
	ctrl := NewController()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	report, err := ctrl.Run(ctx, []string{l.Addr().String()}, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Completions) != 3 {
		t.Fatalf("completions = %d, want 3", len(report.Completions))
	}
	if report.Workers[0] != 42 {
		t.Fatalf("legacy hello not honoured: %v", report.Workers)
	}
}
