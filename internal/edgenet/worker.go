package edgenet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/edgesim"
)

// Worker is one edge node process: it accepts a controller connection,
// announces its hardware class, and executes assigned tasks sequentially
// (edge devices in the testbed are single-board computers).
type Worker struct {
	// ID identifies the worker to the controller.
	ID int
	// Type sets the per-bit computation time (edgesim constants).
	Type edgesim.NodeType
	// TimeScale scales simulated execution: a task busy-waits
	// InputBits × SecPerBit × TimeScale of wall-clock time. 0 runs
	// instantly (tests); 1 is real-time.
	TimeScale float64
	// HeartbeatEvery is the cadence of MsgHeartbeat liveness beacons sent
	// on every controller connection (from a goroutine concurrent with
	// task execution, so a busy worker still beats). 0 disables
	// heartbeats — the legacy behaviour; the controller then cannot
	// distinguish this worker hanging from it computing.
	HeartbeatEvery time.Duration

	mu       sync.Mutex
	listener net.Listener
	done     chan struct{}
	closed   bool
	conns    map[net.Conn]struct{} // all live protocol connections
	handlers sync.WaitGroup        // rejoin handlers (accept-side ones are waited via done)
}

// Serve starts accepting controller connections on l and returns
// immediately; Close shuts the worker down and waits for the serve loop.
func (w *Worker) Serve(l net.Listener) error {
	w.mu.Lock()
	if w.listener != nil {
		w.mu.Unlock()
		return fmt.Errorf("edgenet: worker %d already serving", w.ID)
	}
	w.listener = l
	w.done = make(chan struct{})
	w.mu.Unlock()
	go w.acceptLoop(l, w.done)
	return nil
}

// Rejoin dials a controller's rejoin listener and serves the protocol on
// the outbound connection — how a recovered node re-enters a running
// fault-tolerant dispatch pool. It returns once the connection is
// established; the protocol runs in the background until the controller
// hangs up or the worker is closed.
func (w *Worker) Rejoin(ctx context.Context, controllerAddr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", controllerAddr)
	if err != nil {
		return fmt.Errorf("edgenet: worker %d rejoin %s: %w", w.ID, controllerAddr, err)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		conn.Close()
		return fmt.Errorf("edgenet: worker %d is closed", w.ID)
	}
	w.handlers.Add(1)
	w.mu.Unlock()
	go func() {
		defer w.handlers.Done()
		defer conn.Close()
		w.handle(conn)
	}()
	return nil
}

func (w *Worker) acceptLoop(l net.Listener, done chan struct{}) {
	defer close(done)
	var conns sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			// Listener closed: drain connections and exit.
			conns.Wait()
			return
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			defer conn.Close()
			w.handle(conn)
		}()
	}
}

// track registers a live connection so Close can unblock its handler;
// it reports false when the worker is already closed.
func (w *Worker) track(conn net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	if w.conns == nil {
		w.conns = make(map[net.Conn]struct{})
	}
	w.conns[conn] = struct{}{}
	return true
}

func (w *Worker) untrack(conn net.Conn) {
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
}

// handle speaks the protocol on one controller connection.
func (w *Worker) handle(conn net.Conn) {
	if !w.track(conn) {
		return
	}
	defer w.untrack(conn)
	// Heartbeats and completions share the stream; wm serializes frames.
	var wm sync.Mutex
	hello := &Envelope{
		Type:         MsgHello,
		WorkerID:     w.ID,
		NodeType:     w.Type.String(),
		SecPerBit:    w.Type.SecPerBit(),
		TimeScale:    w.TimeScale,
		HeartbeatSec: w.HeartbeatEvery.Seconds(),
	}
	if err := WriteFrame(conn, hello); err != nil {
		return
	}
	if w.HeartbeatEvery > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			ticker := time.NewTicker(w.HeartbeatEvery)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					wm.Lock()
					err := WriteFrame(conn, &Envelope{Type: MsgHeartbeat, WorkerID: w.ID})
					wm.Unlock()
					if err != nil {
						return
					}
				}
			}
		}()
	}
	for {
		env, err := ReadFrame(conn)
		if err != nil {
			if StreamAligned(err) {
				// A frame corrupted in flight: whatever it carried is
				// lost, but the stream is intact. The controller's
				// deadline/hedging machinery recovers the lost work;
				// dropping the connection here would turn one flipped
				// bit into a dead worker.
				continue
			}
			return // EOF, broken pipe, or framing lost
		}
		switch env.Type {
		case MsgAssign:
			start := time.Now()
			w.execute(env.InputBits)
			done := &Envelope{
				Type:          MsgDone,
				WorkerID:      w.ID,
				TaskID:        env.TaskID,
				Importance:    env.Importance,
				ElapsedMicros: time.Since(start).Microseconds(),
			}
			wm.Lock()
			err := WriteFrame(conn, done)
			wm.Unlock()
			if err != nil {
				return
			}
		case MsgShutdown:
			return
		default:
			return // protocol violation: drop the connection
		}
	}
}

// execute simulates the task's computation.
func (w *Worker) execute(inputBits float64) {
	if w.TimeScale <= 0 {
		return
	}
	d := time.Duration(inputBits * w.Type.SecPerBit() * w.TimeScale * float64(time.Second))
	if d > 0 {
		time.Sleep(d)
	}
}

// Close stops accepting connections, closes live protocol connections
// (unblocking any handler stuck on a stalled peer), and waits for all
// handlers — accepted and rejoined. It is idempotent.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	l, done := w.listener, w.done
	for conn := range w.conns {
		conn.Close()
	}
	w.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
		<-done
	}
	w.handlers.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("edgenet worker close: %w", err)
	}
	return nil
}

// Addr returns the listener address ("" before Serve).
func (w *Worker) Addr() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.listener == nil {
		return ""
	}
	return w.listener.Addr().String()
}
