package edgenet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/edgesim"
)

// Worker is one edge node process: it accepts a controller connection,
// announces its hardware class, and executes assigned tasks sequentially
// (edge devices in the testbed are single-board computers).
type Worker struct {
	// ID identifies the worker to the controller.
	ID int
	// Type sets the per-bit computation time (edgesim constants).
	Type edgesim.NodeType
	// TimeScale scales simulated execution: a task busy-waits
	// InputBits × SecPerBit × TimeScale of wall-clock time. 0 runs
	// instantly (tests); 1 is real-time.
	TimeScale float64

	mu       sync.Mutex
	listener net.Listener
	done     chan struct{}
	closed   bool
}

// Serve starts accepting controller connections on l and returns
// immediately; Close shuts the worker down and waits for the serve loop.
func (w *Worker) Serve(l net.Listener) error {
	w.mu.Lock()
	if w.listener != nil {
		w.mu.Unlock()
		return fmt.Errorf("edgenet: worker %d already serving", w.ID)
	}
	w.listener = l
	w.done = make(chan struct{})
	w.mu.Unlock()
	go w.acceptLoop(l, w.done)
	return nil
}

func (w *Worker) acceptLoop(l net.Listener, done chan struct{}) {
	defer close(done)
	var conns sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			// Listener closed: drain connections and exit.
			conns.Wait()
			return
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			defer conn.Close()
			w.handle(conn)
		}()
	}
}

// handle speaks the protocol on one controller connection.
func (w *Worker) handle(conn net.Conn) {
	hello := &Envelope{
		Type:      MsgHello,
		WorkerID:  w.ID,
		NodeType:  w.Type.String(),
		SecPerBit: w.Type.SecPerBit(),
	}
	if err := WriteFrame(conn, hello); err != nil {
		return
	}
	for {
		env, err := ReadFrame(conn)
		if err != nil {
			return // EOF or broken pipe: controller went away
		}
		switch env.Type {
		case MsgAssign:
			start := time.Now()
			w.execute(env.InputBits)
			done := &Envelope{
				Type:          MsgDone,
				WorkerID:      w.ID,
				TaskID:        env.TaskID,
				Importance:    env.Importance,
				ElapsedMicros: time.Since(start).Microseconds(),
			}
			if err := WriteFrame(conn, done); err != nil {
				return
			}
		case MsgShutdown:
			return
		default:
			return // protocol violation: drop the connection
		}
	}
}

// execute simulates the task's computation.
func (w *Worker) execute(inputBits float64) {
	if w.TimeScale <= 0 {
		return
	}
	d := time.Duration(inputBits * w.Type.SecPerBit() * w.TimeScale * float64(time.Second))
	if d > 0 {
		time.Sleep(d)
	}
}

// Close stops accepting connections and waits for in-flight handlers.
// It is idempotent.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed || w.listener == nil {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	l, done := w.listener, w.done
	w.mu.Unlock()
	err := l.Close()
	<-done
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("edgenet worker close: %w", err)
	}
	return nil
}

// Addr returns the listener address ("" before Serve).
func (w *Worker) Addr() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.listener == nil {
		return ""
	}
	return w.listener.Addr().String()
}
