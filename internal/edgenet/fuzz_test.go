package edgenet

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder. The decoder
// sits directly on the network, so it must never panic, never allocate an
// unbounded frame, and must honour the alignment contract: an aligned error
// (checksum, validation) means the whole frame was consumed and the stream
// is still readable.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: valid v2 and v1 frames, plus the classic corruptions.
	var buf bytes.Buffer
	WriteFrame(&buf, &Envelope{Type: MsgAssign, TaskID: 3, InputBits: 1000, Importance: 0.5}) //nolint:errcheck
	f.Add(append([]byte(nil), buf.Bytes()...))
	flipped := append([]byte(nil), buf.Bytes()...)
	flipped[len(flipped)-2] ^= 0xFF // stale CRC
	f.Add(flipped)
	buf.Reset()
	WriteFrameLegacy(&buf, &Envelope{Type: MsgDone, TaskID: 1, WorkerID: 7}) //nolint:errcheck
	f.Add(append([]byte(nil), buf.Bytes()...))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})                        // oversized v1 length
	f.Add([]byte{frameMagic0, frameMagic1, 9, 0, 0, 0, 0})       // future version
	f.Add([]byte{frameMagic0, 'x', frameVersion, 0, 0, 0, 0})    // bad magic
	f.Add([]byte{0, 0, 0, 2, '{', '}'})                          // typeless v1
	f.Add([]byte{frameMagic0, frameMagic1, frameVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // oversized v2

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		env, err := ReadFrame(r)
		if err == nil {
			// Whatever decoded must be re-encodable and validated.
			if env.Type == "" {
				t.Fatal("decoded envelope with empty type")
			}
			if verr := env.Validate(); verr != nil {
				t.Fatalf("decoded envelope fails validation: %v", verr)
			}
			return
		}
		if StreamAligned(err) {
			// Alignment contract: the erroneous frame was fully consumed, so
			// a frame appended after it must decode cleanly.
			follow := &Envelope{Type: MsgHeartbeat, WorkerID: 1}
			var rest bytes.Buffer
			if werr := WriteFrame(&rest, follow); werr != nil {
				t.Fatal(werr)
			}
			consumed := len(data) - r.Len()
			stream := bytes.NewBuffer(append(append([]byte(nil), data[consumed:]...), rest.Bytes()...))
			// Skip whatever tail garbage remains, reading frame by frame; the
			// appended frame must eventually surface unless framing is lost.
			for {
				got, rerr := ReadFrame(stream)
				if rerr == nil && got.Type == MsgHeartbeat && got.WorkerID == 1 {
					return
				}
				if rerr != nil && !StreamAligned(rerr) {
					return // framing lost in the garbage tail: also a valid outcome
				}
			}
		}
	})
}

// FuzzDecodeRawFrame checks the lower layer never over-reads: the raw frame
// returned must be exactly the bytes consumed from the stream.
func FuzzDecodeRawFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, &Envelope{Type: MsgHello, WorkerID: 2, SecPerBit: 1e-7}) //nolint:errcheck
	f.Add(append([]byte(nil), buf.Bytes()...))
	head := make([]byte, 4)
	binary.BigEndian.PutUint32(head, 5)
	f.Add(append(head, 'h', 'e', 'l', 'l', 'o'))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		frame, off, err := ReadRawFrame(r)
		if err != nil {
			return
		}
		if off != v1Header && off != v2Header {
			t.Fatalf("payload offset %d is neither v1 nor v2", off)
		}
		if len(frame) > MaxFrameBytes+v2Header {
			t.Fatalf("frame of %d bytes exceeds the bound", len(frame))
		}
		if consumed := len(data) - r.Len(); consumed != len(frame) {
			t.Fatalf("consumed %d bytes but returned a %d-byte frame", consumed, len(frame))
		}
	})
}
