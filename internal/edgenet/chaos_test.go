package edgenet_test

// Chaos suite for the fault-tolerant execution plane: every failure mode
// the paper's WiFi testbed exhibits — hung nodes, corrupted bytes, crashed
// processes, recovered nodes rejoining — injected through the
// internal/netfault proxy, with the controller's report counters checked
// against the proxy's exact fault ledger.

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/edgenet"
	"repro/internal/edgesim"
	"repro/internal/netfault"
)

// chaosWorker launches one in-process worker on a loopback listener.
func chaosWorker(t *testing.T, id int, beat time.Duration, timeScale float64) *edgenet.Worker {
	t.Helper()
	w := &edgenet.Worker{
		ID:             id,
		Type:           edgesim.RaspberryPiB,
		TimeScale:      timeScale,
		HeartbeatEvery: beat,
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Serve(l); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("worker %d close: %v", id, err)
		}
	})
	return w
}

// chaosPlan builds n tasks round-robined over m workers, task importance
// descending so priority ordering is observable.
func chaosPlan(n, m int) (*core.Problem, *alloc.Result) {
	p := &core.Problem{TimeLimit: 1000}
	for j := 0; j < n; j++ {
		p.Tasks = append(p.Tasks, core.TaskSpec{
			ID: j, Importance: 1 - float64(j)/float64(2*n), TimeCost: 1, InputBits: 1000,
		})
	}
	for i := 0; i < m; i++ {
		p.Processors = append(p.Processors, core.Processor{ID: i, Capacity: 1000, SpeedFactor: 1})
	}
	a := make(core.Allocation, n)
	prio := make([]float64, n)
	for j := range a {
		a[j] = j % m
		prio[j] = p.Tasks[j].Importance
	}
	return p, &alloc.Result{Allocation: a, Priority: prio}
}

// onlyDone returns a netfault decider applying action to the k-th MsgDone
// frame (0-based) and every later one when every is true.
func onlyDone(action netfault.Action, k int, every bool) netfault.Decider {
	dones := 0
	return func(i int, env *edgenet.Envelope) netfault.Action {
		if env == nil || env.Type != edgenet.MsgDone {
			return netfault.Pass
		}
		dones++
		if dones-1 == k || (every && dones-1 > k) {
			return action
		}
		return netfault.Pass
	}
}

// assertUniqueCompletions checks every planned task completed exactly once
// and coverage was counted once per task.
func assertUniqueCompletions(t *testing.T, report *edgenet.Report, p *core.Problem, want int) {
	t.Helper()
	if len(report.Completions) != want {
		t.Fatalf("completions = %d, want %d", len(report.Completions), want)
	}
	seen := make(map[int]bool, want)
	sum := 0.0
	for _, comp := range report.Completions {
		if seen[comp.Task] {
			t.Fatalf("task %d completed twice in the report", comp.Task)
		}
		seen[comp.Task] = true
		sum += p.Tasks[comp.Task].Importance
	}
	if math.Abs(sum-report.Covered) > 1e-9 {
		t.Fatalf("covered %v, but unique completions sum to %v", report.Covered, sum)
	}
}

// TestChaosHangCorruptCrashRejoin is the acceptance chaos run: worker 1
// hangs mid-task (stream stalls, heartbeats stop), worker 2's first
// completion frame is corrupted in flight, worker 3 crashes after its first
// completion and then rejoins through the controller's rejoin listener,
// worker 4 stays healthy. The run must reach the coverage target well
// before the context deadline, count every task exactly once, and report
// failure counters matching the proxies' fault ledgers exactly.
func TestChaosHangCorruptCrashRejoin(t *testing.T) {
	const beat = 20 * time.Millisecond
	hangW := chaosWorker(t, 1, beat, 0)
	corruptW := chaosWorker(t, 2, beat, 0)
	crashW := chaosWorker(t, 3, beat, 0)
	healthyW := chaosWorker(t, 4, beat, 0)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	hangP, err := netfault.New(hangW.Addr(), onlyDone(netfault.Hang, 0, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hangP.Close() })
	corruptP, err := netfault.New(corruptW.Addr(), onlyDone(netfault.Corrupt, 0, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { corruptP.Close() })

	rejoinLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rejoinAddr := rejoinLn.Addr().String()
	var rejoinWG sync.WaitGroup
	t.Cleanup(rejoinWG.Wait)
	crashP, err := netfault.New(crashW.Addr(), onlyDone(netfault.Drop, 0, false), func(a netfault.Action) {
		if a != netfault.Drop {
			return
		}
		rejoinWG.Add(1)
		go func() {
			defer rejoinWG.Done()
			if err := crashW.Rejoin(ctx, rejoinAddr); err != nil {
				t.Errorf("rejoin: %v", err)
			}
		}()
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { crashP.Close() })

	ctrl := edgenet.NewController()
	ctrl.Tick = 5 * time.Millisecond
	ctrl.LivenessMisses = 5               // hang declared dead after ~100ms of silence
	ctrl.HedgeMinDeadline = 2 * time.Second // hangs recover via liveness here, not hedging
	ctrl.RejoinListener = rejoinLn

	p, res := chaosPlan(12, 4)
	addrs := []string{hangP.Addr(), corruptP.Addr(), crashP.Addr(), healthyW.Addr()}
	report, err := ctrl.RunFaultTolerant(ctx, addrs, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}

	assertUniqueCompletions(t, report, p, 12)
	if report.DecisionReadyAt <= 0 {
		t.Fatal("decision never became ready")
	}
	if target := 0.8 * p.TotalImportance(); report.Covered < target {
		t.Fatalf("covered %v below target %v", report.Covered, target)
	}

	// The report's failure counters must match the injected fault ledger.
	if got := hangP.Counts(); got.Hung != 1 {
		t.Fatalf("hang ledger = %+v, want exactly 1 hang", got)
	}
	if got := corruptP.Counts(); got.Corrupted != 1 {
		t.Fatalf("corrupt ledger = %+v, want exactly 1 corruption", got)
	}
	if got := crashP.Counts(); got.Dropped != 1 {
		t.Fatalf("crash ledger = %+v, want exactly 1 drop", got)
	}
	if report.CorruptFrames != 1 {
		t.Fatalf("CorruptFrames = %d, want 1 (the injected corruption)", report.CorruptFrames)
	}
	if report.Retries != 1 {
		t.Fatalf("Retries = %d, want 1 (re-assign after the corrupt frame)", report.Retries)
	}
	if report.DeadWorkers != 2 {
		t.Fatalf("DeadWorkers = %d, want 2 (the hang and the crash)", report.DeadWorkers)
	}
	if report.Rejoins != 1 {
		t.Fatalf("Rejoins = %d, want 1", report.Rejoins)
	}
	if report.HeartbeatMisses < ctrl.LivenessMisses {
		t.Fatalf("HeartbeatMisses = %d, want >= %d (the hung worker's silence)",
			report.HeartbeatMisses, ctrl.LivenessMisses)
	}
	if report.DuplicateDone != 0 {
		t.Fatalf("DuplicateDone = %d, want 0 (no duplicate completions injected)", report.DuplicateDone)
	}
	// The rejoined worker occupies the next dispatch-pool slot under its
	// announced ID.
	if report.Workers[4] != crashW.ID {
		t.Fatalf("Workers = %v, want slot 4 -> rejoined worker %d", report.Workers, crashW.ID)
	}
}

// TestHedgeStragglerFirstDoneWins pins down hedged re-dispatch: a worker
// whose completion frame is delayed far past the task deadline gets its
// task speculatively re-sent to an idle healthy worker; the first
// completion wins and the late duplicate is discarded by dedup, counted
// once in coverage.
func TestHedgeStragglerFirstDoneWins(t *testing.T) {
	// No heartbeats on the straggler: its link is slow, not dead, and this
	// test isolates the deadline/hedging path from the liveness detector.
	stragglerW := chaosWorker(t, 1, 0, 0)
	healthyW := chaosWorker(t, 2, 0, 0)
	// slowW holds a genuinely long task so the run outlives the delayed
	// duplicate completion (and its expected-time-derived deadline keeps
	// it from being hedged itself).
	slowTask := 0.5 / (1000 * edgesim.RaspberryPiB.SecPerBit()) // ≈500ms per 1000-bit task
	slowW := chaosWorker(t, 3, 0, slowTask)

	delayP, err := netfault.New(stragglerW.Addr(), onlyDone(netfault.Delay, 0, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	delayP.SetDelay(300 * time.Millisecond)
	t.Cleanup(func() { delayP.Close() })

	ctrl := edgenet.NewController()
	ctrl.Tick = 5 * time.Millisecond
	ctrl.HedgeMinDeadline = 100 * time.Millisecond

	p, res := chaosPlan(4, 3) // tasks 0,3 -> straggler, task 1 -> healthy, task 2 -> slow
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	report, err := ctrl.RunFaultTolerant(ctx, []string{delayP.Addr(), healthyW.Addr(), slowW.Addr()}, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}

	assertUniqueCompletions(t, report, p, 4)
	if report.Hedges < 1 {
		t.Fatalf("Hedges = %d, want >= 1 (straggling task re-dispatched)", report.Hedges)
	}
	if report.DuplicateDone < 1 {
		t.Fatalf("DuplicateDone = %d, want >= 1 (the straggler's late completion)", report.DuplicateDone)
	}
	if report.DeadWorkers != 0 {
		t.Fatalf("DeadWorkers = %d, want 0 (slow is not dead)", report.DeadWorkers)
	}
	if got := delayP.Counts(); got.Delayed != 1 {
		t.Fatalf("delay ledger = %+v, want exactly 1 delayed frame", got)
	}
}

// TestCorruptQuarantine pins down the flaky-link policy: every corrupt
// frame is counted and retried, and a connection exceeding
// MaxCorruptFrames is quarantined — the worker is removed and its tasks
// finish elsewhere, rather than the stream poisoning results forever.
func TestCorruptQuarantine(t *testing.T) {
	flakyW := chaosWorker(t, 1, 0, 0)
	healthyW := chaosWorker(t, 2, 0, 0)

	corruptP, err := netfault.New(flakyW.Addr(), onlyDone(netfault.Corrupt, 0, true), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { corruptP.Close() })

	ctrl := edgenet.NewController()
	ctrl.Tick = 5 * time.Millisecond
	ctrl.MaxCorruptFrames = 3

	p, res := chaosPlan(4, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	report, err := ctrl.RunFaultTolerant(ctx, []string{corruptP.Addr(), healthyW.Addr()}, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}

	assertUniqueCompletions(t, report, p, 4)
	if report.CorruptFrames != 3 {
		t.Fatalf("CorruptFrames = %d, want 3 (quarantine threshold)", report.CorruptFrames)
	}
	if got := corruptP.Counts(); got.Corrupted != 3 {
		t.Fatalf("corrupt ledger = %+v, want exactly 3 corruptions", got)
	}
	if report.Retries != 2 {
		t.Fatalf("Retries = %d, want 2 (third corruption quarantines instead)", report.Retries)
	}
	if report.DeadWorkers != 1 {
		t.Fatalf("DeadWorkers = %d, want 1 (the quarantined link)", report.DeadWorkers)
	}
	for _, comp := range report.Completions {
		if comp.WorkerID == flakyW.ID {
			t.Fatalf("completion accepted from the quarantined worker: %+v", comp)
		}
	}
}

// TestRejoinCompletesRun pins down mid-run re-admission: the only worker
// crashes, so the pool is empty with work outstanding — but because a
// rejoin listener is configured the run waits, the recovered worker dials
// back in, and the whole plan completes on the rejoined connection.
func TestRejoinCompletesRun(t *testing.T) {
	w := chaosWorker(t, 7, 20*time.Millisecond, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	rejoinLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rejoinAddr := rejoinLn.Addr().String()
	var rejoinWG sync.WaitGroup
	t.Cleanup(rejoinWG.Wait)
	dropP, err := netfault.New(w.Addr(), onlyDone(netfault.Drop, 0, false), func(a netfault.Action) {
		if a != netfault.Drop {
			return
		}
		rejoinWG.Add(1)
		go func() {
			defer rejoinWG.Done()
			if err := w.Rejoin(ctx, rejoinAddr); err != nil {
				t.Errorf("rejoin: %v", err)
			}
		}()
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dropP.Close() })

	ctrl := edgenet.NewController()
	ctrl.Tick = 5 * time.Millisecond
	ctrl.RejoinListener = rejoinLn

	p, res := chaosPlan(4, 1)
	report, err := ctrl.RunFaultTolerant(ctx, []string{dropP.Addr()}, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}

	assertUniqueCompletions(t, report, p, 4)
	if report.Rejoins != 1 || report.DeadWorkers != 1 {
		t.Fatalf("Rejoins/DeadWorkers = %d/%d, want 1/1", report.Rejoins, report.DeadWorkers)
	}
	for _, comp := range report.Completions {
		if comp.WorkerID != w.ID {
			t.Fatalf("completion from unknown worker: %+v", comp)
		}
	}
	if report.Workers[1] != w.ID {
		t.Fatalf("Workers = %v, want rejoin slot 1 -> worker %d", report.Workers, w.ID)
	}
}
