package edgenet

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/edgesim"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Envelope{Type: MsgAssign, TaskID: 7, InputBits: 123.5, Importance: 0.9}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
}

func TestReadFrameErrors(t *testing.T) {
	// Oversized length prefix.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize err = %v", err)
	}
	// Truncated payload.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 'x'})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Bad JSON.
	buf.Reset()
	payload := []byte("not json")
	buf.Write([]byte{0, 0, 0, byte(len(payload))})
	buf.Write(payload)
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("bad json accepted")
	}
	// Missing type.
	buf.Reset()
	payload = []byte("{}")
	buf.Write([]byte{0, 0, 0, byte(len(payload))})
	buf.Write(payload)
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("typeless err = %v", err)
	}
	// EOF propagates for clean shutdown detection.
	buf.Reset()
	if _, err := ReadFrame(&buf); !errors.Is(err, errEOF()) {
		t.Fatalf("eof err = %v", err)
	}
}

func errEOF() error {
	var b bytes.Buffer
	_, err := b.Read(make([]byte, 1))
	return err
}

// startWorkers launches n in-process workers on loopback listeners.
func startWorkers(t *testing.T, n int) ([]*Worker, []string) {
	t.Helper()
	types := []edgesim.NodeType{
		edgesim.RaspberryPiAPlus, edgesim.RaspberryPiB, edgesim.RaspberryPiBPlus,
	}
	workers := make([]*Worker, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w := &Worker{ID: i + 1, Type: types[i%len(types)], TimeScale: 0}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Serve(l); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			if err := w.Close(); err != nil {
				t.Errorf("worker close: %v", err)
			}
		})
		workers[i] = w
		addrs[i] = w.Addr()
	}
	return workers, addrs
}

func testPlan(n, m int) (*core.Problem, *alloc.Result) {
	p := &core.Problem{TimeLimit: 100}
	for j := 0; j < n; j++ {
		imp := 0.05
		if j < 2 {
			imp = 0.8
		}
		p.Tasks = append(p.Tasks, core.TaskSpec{
			ID: j, Importance: imp, TimeCost: 1, Resource: 0, InputBits: 1000,
		})
	}
	for i := 0; i < m; i++ {
		p.Processors = append(p.Processors, core.Processor{ID: i, Capacity: 100, SpeedFactor: 1})
	}
	a := make(core.Allocation, n)
	prio := make([]float64, n)
	for j := range a {
		a[j] = j % m
		prio[j] = p.Tasks[j].Importance
	}
	return p, &alloc.Result{Allocation: a, Priority: prio}
}

func TestControllerRunsPlan(t *testing.T) {
	_, addrs := startWorkers(t, 3)
	p, res := testPlan(9, 3)
	ctrl := NewController()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	report, err := ctrl.Run(ctx, addrs, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Completions) != 9 {
		t.Fatalf("completions = %d, want 9", len(report.Completions))
	}
	if report.DecisionReadyAt <= 0 {
		t.Fatal("decision never became ready")
	}
	if report.Covered < 0.8*p.TotalImportance() {
		t.Fatalf("covered %v below target", report.Covered)
	}
	// Every processor maps to an announced worker ID.
	for i := 0; i < 3; i++ {
		if report.Workers[i] != i+1 {
			t.Fatalf("worker map = %v", report.Workers)
		}
	}
	// Priority order per worker: the two important tasks complete first on
	// their nodes, so the decision is ready before all completions.
	last := report.Completions[len(report.Completions)-1].At
	if report.DecisionReadyAt > last {
		t.Fatalf("decision after last completion: %v vs %v", report.DecisionReadyAt, last)
	}
}

func TestControllerValidation(t *testing.T) {
	ctrl := NewController()
	ctx := context.Background()
	p, res := testPlan(4, 2)
	if _, err := ctrl.Run(ctx, nil, p, res, 0.8); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("no workers err = %v", err)
	}
	_, addrs := startWorkers(t, 2)
	short := &alloc.Result{Allocation: core.Allocation{0}}
	if _, err := ctrl.Run(ctx, addrs, p, short, 0.8); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("short plan err = %v", err)
	}
	badProc := &alloc.Result{Allocation: core.Allocation{5, 0, 0, 0}}
	if _, err := ctrl.Run(ctx, addrs, p, badProc, 0.8); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("bad processor err = %v", err)
	}
	// Dead address.
	deadCtrl := NewController()
	deadCtrl.DialTimeout = 200 * time.Millisecond
	if _, err := deadCtrl.Run(ctx, []string{"127.0.0.1:1"}, p, res, 0.8); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

func TestControllerContextCancel(t *testing.T) {
	// A slow worker plus a cancelled context must abort promptly.
	w := &Worker{ID: 1, Type: edgesim.RaspberryPiAPlus, TimeScale: 1} // real-time: slow
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Serve(l); err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	p, res := testPlan(2, 1)
	// 3e6 bits × 4.75e-7 s/bit ≈ 1.4 s per task: beyond the deadline but
	// short enough that worker cleanup stays quick.
	for j := range p.Tasks {
		p.Tasks[j].InputBits = 3e6
	}
	ctrl := NewController()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = ctrl.Run(ctx, []string{w.Addr()}, p, res, 0.8)
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if elapsed := time.Since(start); elapsed > 1*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestWorkerLifecycle(t *testing.T) {
	w := &Worker{ID: 9, Type: edgesim.Laptop}
	if w.Addr() != "" {
		t.Fatal("address before Serve should be empty")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Serve(l); err != nil {
		t.Fatal(err)
	}
	if err := w.Serve(l); err == nil {
		t.Fatal("double Serve accepted")
	}
	if !strings.Contains(w.Addr(), "127.0.0.1") {
		t.Fatalf("Addr = %q", w.Addr())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent close.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerRejectsProtocolViolation(t *testing.T) {
	_, addrs := startWorkers(t, 1)
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := ReadFrame(conn); err != nil { // hello
		t.Fatal(err)
	}
	// Send an unexpected message type: the worker must drop the connection.
	if err := WriteFrame(conn, &Envelope{Type: MsgHello}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ReadFrame(conn); err == nil {
		t.Fatal("worker kept talking after protocol violation")
	}
}
