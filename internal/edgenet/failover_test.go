package edgenet

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// flakyWorker speaks the protocol but drops the connection after serving
// `serve` tasks — a crash-stop failure mid-run.
func flakyWorker(t *testing.T, id, serve int) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if err := WriteFrame(conn, &Envelope{Type: MsgHello, WorkerID: id}); err != nil {
					return
				}
				for done := 0; done < serve; {
					env, err := ReadFrame(conn)
					if err != nil {
						return
					}
					switch env.Type {
					case MsgAssign:
						if err := WriteFrame(conn, &Envelope{
							Type: MsgDone, WorkerID: id, TaskID: env.TaskID,
						}); err != nil {
							return
						}
						done++
					case MsgShutdown:
						return
					}
				}
				// Crash: drop the connection without a goodbye.
			}()
		}
	}()
	return l.Addr().String()
}

func TestRunFaultTolerantSurvivesCrash(t *testing.T) {
	// Worker 0 crashes after 1 task; workers 1 and 2 are healthy.
	crashAddr := flakyWorker(t, 99, 1)
	_, healthy := startWorkers(t, 2)
	addrs := append([]string{crashAddr}, healthy...)
	p, res := testPlan(9, 3)
	ctrl := NewController()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	report, err := ctrl.RunFaultTolerant(ctx, addrs, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Completions) != 9 {
		t.Fatalf("completions = %d, want 9 (crashed worker's tasks re-run)", len(report.Completions))
	}
	if report.Covered < 0.8*p.TotalImportance() {
		t.Fatalf("coverage %v below target", report.Covered)
	}
	// Exactly one task ran on the flaky worker before the crash.
	flakyDone := 0
	for _, comp := range report.Completions {
		if comp.WorkerID == 99 {
			flakyDone++
		}
	}
	if flakyDone != 1 {
		t.Fatalf("flaky worker completed %d tasks, want 1", flakyDone)
	}
}

func TestRunFaultTolerantDeadOnArrival(t *testing.T) {
	// One address never answers; the plan still completes on the others.
	_, healthy := startWorkers(t, 2)
	dead := "127.0.0.1:1"
	addrs := append([]string{dead}, healthy...)
	p, res := testPlan(6, 3)
	ctrl := NewController()
	ctrl.DialTimeout = 300 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	report, err := ctrl.RunFaultTolerant(ctx, addrs, p, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Completions) != 6 {
		t.Fatalf("completions = %d, want 6", len(report.Completions))
	}
	for _, comp := range report.Completions {
		if comp.WorkerID == 0 {
			t.Fatal("task completed on the dead worker")
		}
	}
}

func TestRunFaultTolerantAllDown(t *testing.T) {
	p, res := testPlan(4, 2)
	ctrl := NewController()
	ctrl.DialTimeout = 200 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := ctrl.RunFaultTolerant(ctx, []string{"127.0.0.1:1", "127.0.0.1:1"}, p, res, 0.8)
	if !errors.Is(err, ErrAllWorkersDown) {
		t.Fatalf("all-down err = %v", err)
	}
}

func TestRunFaultTolerantValidation(t *testing.T) {
	ctrl := NewController()
	ctx := context.Background()
	p, res := testPlan(4, 2)
	if _, err := ctrl.RunFaultTolerant(ctx, nil, p, res, 0.8); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("no workers err = %v", err)
	}
	_, addrs := startWorkers(t, 2)
	bad := *res
	bad.Allocation = bad.Allocation[:1]
	if _, err := ctrl.RunFaultTolerant(ctx, addrs, p, &bad, 0.8); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("short plan err = %v", err)
	}
}
